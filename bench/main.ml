(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (see DESIGN.md section 4 for the experiment
   index).  Run a single experiment by name, or everything:

     dune exec bench/main.exe -- [table1|table2|figure3|nops|strategies|
                                  breakeven|readwrite|ablations|smoke|
                                  telemetry|replay|profile|timeseries|verify|
                                  service|micro|all]
                                 [-j N] [--json FILE] [--chrome-trace FILE]
                                 [--span-set]

   Cells run on a pool of [-j] worker domains (default: [DBP_JOBS] or
   [Domain.recommended_domain_count ()]; [-j 1] is fully serial).  The
   tables printed on stdout are byte-identical for every [-j]; timing
   (wall seconds, aggregate simulated MIPS) goes to stderr, and
   [--json] writes a per-cell report including simulated-MIPS plus the
   merged telemetry report (dbp-telemetry/6).

   Every instrumented cell's telemetry report is absorbed into its
   worker domain's sink ([Pool.telemetry_sink]); the merged summary
   printed after the tables is a commutative sum over those sinks, so
   it too is byte-identical for every [-j].  The same holds for the
   audit verdict summary (commutative pointwise sum) and, with
   [--span-set], for the phase-span name multiset; [--chrome-trace]
   writes every domain's pipeline spans as one Perfetto-loadable
   trace. *)

let usage () =
  prerr_endline
    "usage: main.exe [table1|table2|figure3|nops|strategies|breakeven|readwrite|ablations|smoke|telemetry|replay|profile|timeseries|verify|service|micro|all] [-j N] [--json FILE] [--chrome-trace FILE] [--span-set]";
  exit 2

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Per-cell simulated-throughput report; schema documented in README. *)
let write_json ~experiment path =
  let cells = Runner.cells () in
  let agg_instrs, agg_wall, agg_mips = Runner.aggregate () in
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"schema\": \"dbp-bench/1\",\n";
  p "  \"experiment\": \"%s\",\n" (json_escape experiment);
  p "  \"jobs\": %d,\n" (Pool.jobs ());
  p "  \"cells\": [\n";
  List.iteri
    (fun i (c : Runner.cell) ->
      p "    {\"label\": \"%s\", \"cycles\": %d, \"instrs\": %d, "
        (json_escape c.Runner.label) c.Runner.c_cycles c.Runner.c_instrs;
      (match c.Runner.overhead_pct with
      | Some o -> p "\"overhead_pct\": %.2f, " o
      | None -> p "\"overhead_pct\": null, ");
      p "\"wall_s\": %.4f, \"simulated_mips\": %.2f}%s\n" c.Runner.c_wall_s
        c.Runner.c_mips
        (if i = List.length cells - 1 then "" else ","))
    cells;
  p "  ],\n";
  p "  \"telemetry\": %s,\n" (Export.to_json_string (Pool.merged_report ()));
  (* Service-daemon latency percentiles, present when the service
     experiment ran (wall-clock, so JSON/stderr only — never stdout). *)
  Option.iter (fun frag -> p "  \"service\": %s,\n" frag) (Service.json_fragment ());
  (* Provenance-verdict counts summed over every instrumented cell's
     audit journal (canonical order; commutative merge, so
     [-j]-independent). *)
  let summary = Pool.merged_audit_summary () in
  p "  \"audit_summary\": {";
  List.iteri
    (fun i (name, count) ->
      p "%s\"%s\": %d" (if i = 0 then "" else ", ") (json_escape name) count)
    summary;
  p "},\n";
  p "  \"aggregate\": {\"instrs\": %d, \"wall_s\": %.4f, \"simulated_mips\": %.2f}\n"
    agg_instrs agg_wall agg_mips;
  p "}\n";
  close_out oc

let () =
  let experiment = ref None in
  let json_path = ref None in
  let chrome_path = ref None in
  let span_set = ref false in
  let rec parse = function
    | [] -> ()
    | "-j" :: n :: rest ->
      (match Pool.parse_jobs n with
      | Some n -> Pool.set_jobs n
      | None -> usage ());
      parse rest
    | "--json" :: path :: rest ->
      json_path := Some path;
      parse rest
    | "--chrome-trace" :: path :: rest ->
      chrome_path := Some path;
      parse rest
    | "--span-set" :: rest ->
      span_set := true;
      parse rest
    | arg :: rest when !experiment = None && String.length arg > 0 && arg.[0] <> '-' ->
      experiment := Some arg;
      parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let which = Option.value ~default:"all" !experiment in
  let t0 = Unix.gettimeofday () in
  (match which with
  | "table1" -> Tables.table1 ()
  | "table2" -> Tables.table2 ()
  | "figure3" -> Tables.figure3 ()
  | "nops" -> Tables.nops ()
  | "strategies" -> Tables.strategies ()
  | "breakeven" -> Tables.breakeven ()
  | "readwrite" -> Tables.readwrite ()
  | "ablations" -> Tables.ablations ()
  | "smoke" -> Tables.smoke ()
  | "telemetry" -> Tables.telemetry ()
  | "replay" -> Tables.replay ()
  | "profile" -> Tables.profile ()
  | "timeseries" -> Tables.timeseries_sampler ()
  | "verify" -> Tables.verify ()
  | "service" -> Service.run ()
  | "micro" -> Micro.run ()
  | "all" ->
    Tables.table1 ();
    Tables.figure3 ();
    Tables.table2 ();
    Tables.nops ();
    Tables.strategies ();
    Tables.breakeven ();
    Tables.readwrite ();
    Tables.ablations ();
    Tables.telemetry ();
    Tables.replay ();
    Tables.profile ();
    Tables.timeseries_sampler ();
    Tables.verify ();
    Micro.run ()
  | _ -> usage ());
  (* The merged telemetry summary is a sum over per-domain sinks —
     commutative, so byte-identical for every [-j]. *)
  let merged = Pool.merged_report () in
  Printf.printf "\n== Telemetry (merged across all instrumented runs) ==\n";
  print_string (Export.to_text merged);
  Printf.printf "\n== Audit (provenance verdicts, merged) ==\n";
  List.iter
    (fun (name, count) -> Printf.printf "%-16s%10d\n" name count)
    (Pool.merged_audit_summary ());
  (* The span-name multiset is scheduling-independent even though which
     domain records which span is not; printing it on stdout puts it
     under the byte-identity diff of the [-j] parity rules. *)
  if !span_set then begin
    Printf.printf "\n== Phase spans (multiset across all instrumented runs) ==\n";
    List.iter
      (fun (name, count) -> Printf.printf "%-16s%10d\n" name count)
      (Trace.span_set (Pool.tracers ()))
  end;
  (* Timing is host-dependent, so it goes to stderr: stdout stays
     byte-identical across [-j] values (the bench-smoke alias and the
     acceptance check diff it). *)
  let agg_instrs, agg_wall, agg_mips = Runner.aggregate () in
  Printf.eprintf
    "(total bench time: %.1fs; %d simulated Minstrs in %.1fs of simulator time, %.1f MIPS aggregate, -j %d)\n"
    (Unix.gettimeofday () -. t0)
    (agg_instrs / 1_000_000)
    agg_wall agg_mips (Pool.jobs ());
  Option.iter (fun path -> write_json ~experiment:which path) !json_path;
  Option.iter
    (fun path ->
      let oc = open_out path in
      output_string oc (Trace.to_chrome_string (Pool.tracers ()));
      close_out oc)
    !chrome_path
