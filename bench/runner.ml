open Dbp

(* Run workloads under instrumentation configurations, with caching of
   uninstrumented baselines.

   The harness may run cells on several domains at once (see [Pool]),
   so the two pieces of shared state here — the baseline cache and the
   observability log — are mutex-protected.  The simulator itself is
   deterministic and shares nothing between [Cpu.t] instances, so a
   duplicated baseline computation (two domains missing the cache for
   the same workload at the same time) is merely redundant work that
   stores the same value twice. *)

let fuel = 200_000_000

type run = {
  cycles : int;
  instrs : int;
  stores : int;
  exit_code : int;
  wall_s : float;  (** host seconds spent inside the simulator run *)
}

let simulated_mips { instrs; wall_s; _ } =
  if wall_s <= 0.0 then 0.0 else float_of_int instrs /. wall_s /. 1e6

(* --- observability: per-cell log and aggregate throughput ------------------ *)

type cell = {
  label : string;  (** e.g. ["008.espresso/bitmap-inline-regs"] *)
  c_cycles : int;
  c_instrs : int;
  overhead_pct : float option;  (** vs the uninstrumented baseline *)
  c_wall_s : float;
  c_mips : float;
}

let log_mu = Mutex.create ()
let log : cell list ref = ref []
let agg_instrs = ref 0
let agg_wall = ref 0.0

let record ~label ?overhead_pct (r : run) =
  let c =
    {
      label;
      c_cycles = r.cycles;
      c_instrs = r.instrs;
      overhead_pct;
      c_wall_s = r.wall_s;
      c_mips = simulated_mips r;
    }
  in
  Mutex.protect log_mu (fun () ->
      log := c :: !log;
      agg_instrs := !agg_instrs + r.instrs;
      agg_wall := !agg_wall +. r.wall_s)

let cells () = Mutex.protect log_mu (fun () -> List.rev !log)

let aggregate () =
  Mutex.protect log_mu (fun () ->
      let mips =
        if !agg_wall <= 0.0 then 0.0
        else float_of_int !agg_instrs /. !agg_wall /. 1e6
      in
      (!agg_instrs, !agg_wall, mips))

(* --- baseline runs --------------------------------------------------------- *)

let cache_mu = Mutex.create ()
let baseline_cache : (string, run) Hashtbl.t = Hashtbl.create 16

let baseline (w : Workloads.Workload.t) : run =
  match
    Mutex.protect cache_mu (fun () -> Hashtbl.find_opt baseline_cache w.name)
  with
  | Some r -> r
  | None ->
    let linked = Minic.Compile.compile_and_link w.source in
    let cpu = Machine.Cpu.create linked.image in
    Machine.Cpu.install_basic_services cpu;
    let t0 = Unix.gettimeofday () in
    let exit_code = Machine.Cpu.run ~fuel cpu in
    let wall_s = Unix.gettimeofday () -. t0 in
    (match w.expected_exit with
    | Some e when e <> exit_code ->
      failwith (Printf.sprintf "%s: baseline exit %d <> expected %d" w.name exit_code e)
    | _ -> ());
    let s = Machine.Cpu.stats cpu in
    let r =
      { cycles = s.Machine.Cpu.cycles; instrs = s.Machine.Cpu.instrs;
        stores = s.Machine.Cpu.stores; exit_code; wall_s }
    in
    Mutex.protect cache_mu (fun () -> Hashtbl.replace baseline_cache w.name r);
    record ~label:(w.name ^ "/baseline") r;
    r

let options_for (w : Workloads.Workload.t) ?(opt = Instrument.O0)
    ?(check_aliases = false) ?(nop_padding = 0) ?(seg_bits = Layout.default_seg_bits)
    ?(monitor_reads = false) ?(disabled_guard = true) ?(single_cache = false)
    strategy =
  {
    Instrument.strategy;
    opt;
    check_aliases;
    layout = Layout.v ~seg_bits ();
    fortran_idiom = Workloads.Workload.fortran_idiom w;
    instrument_runtime = true;
    nop_padding;
    exclude = w.library_functions;
    monitor_reads;
    disabled_guard;
    single_cache;
  }

let overhead (w : Workloads.Workload.t) run = Stats.pct (baseline w).cycles run.cycles

(* Run instrumented; [enable] turns monitoring on with no regions (the
   monitor-miss steady state Table 1 measures).  [telemetry] overrides
   the session's registry (the telemetry-overhead experiment passes a
   disabled one); either way the session's final report is absorbed
   into this domain's sink so the harness can print one merged,
   scheduling-independent telemetry summary at the end. *)
let instrumented ?(enable = true) ?telemetry ?(tag = "") ?(profile = false)
    ?sample_every ?(heatmap = false) ?(best_of = 1) options
    (w : Workloads.Workload.t) : run * Session.t =
  let once () =
    let session =
      Session.create ?telemetry ~trace:(Pool.trace_sink ()) ~options ~profile
        ?sample_every ~heatmap w.source
    in
    if enable then Mrs.enable session.Session.mrs;
    let t0 = Unix.gettimeofday () in
    let exit_code, _ = Session.run ~fuel session in
    let wall_s = Unix.gettimeofday () -. t0 in
    (match w.expected_exit with
    | Some e when e <> exit_code ->
      failwith
        (Printf.sprintf "%s under %s: exit %d <> expected %d" w.name
           (Strategy.to_string options.Instrument.strategy) exit_code e)
    | _ -> ());
    let s = Session.stats session in
    let r =
      { cycles = s.Machine.Cpu.cycles; instrs = s.Machine.Cpu.instrs;
        stores = s.Machine.Cpu.stores; exit_code; wall_s }
    in
    (r, session)
  in
  (* Repeats are identical simulations, so every run yields the same
     simulated counts; only the host wall clock differs.  Keeping the
     minimum-wall run is the standard robust estimator for cells whose
     single-run time is within scheduler-noise range (the overhead
     experiments on small workloads).  Only the kept run's telemetry,
     audit and profile state is absorbed. *)
  let best = ref (once ()) in
  for _ = 2 to best_of do
    let ((r, _) as cand) = once () in
    if r.wall_s < (fst !best).wall_s then best := cand
  done;
  let r, session = !best in
  let label =
    Printf.sprintf "%s/%s%s%s" w.name
      (Strategy.to_string options.Instrument.strategy)
      (if enable then "" else "/disabled")
      (if tag = "" then "" else "/" ^ tag)
  in
  record ~label ~overhead_pct:(overhead w r) r;
  Telemetry.absorb (Pool.telemetry_sink ()) (Session.report session);
  Pool.absorb_audit_summary (Audit.summary session.Session.audit);
  (r, session)
