(* The service experiment: drive K concurrent debug sessions through a
   loopback dbreakd engine and measure per-command latency.

   For each fleet size K in {1, 8, 64} a fresh engine is spun up with
   [Pool.jobs ()] shards and a TCP listener on an ephemeral loopback
   port; K scripted clients each run the same five-command session
   (open → arm → run to completion → last-write query → close) through
   a single-threaded select loop that interleaves client FSM steps with
   [Daemon.server_poll] — exactly the daemon's own serving discipline,
   with the heavy lifting on the shard domains.

   Output discipline matches the rest of the harness: stdout is
   byte-identical for every [-j] (session s1's full reply transcript,
   per-session reply summaries, and the engine's merged telemetry —
   absorbed into this domain's [Pool.telemetry_sink], so the trailing
   merged summary and [--json] telemetry cover it under the bench-smoke
   diff); wall-clock latency percentiles and throughput go to stderr
   and the [--json] report only. *)

let fleet_sizes = [ 1; 8; 64 ]
let commands_per_session = 5

(* ~200 watched-global writes per session: enough hit traffic to be a
   real stream, small enough that K=64 stays snappy. *)
let program = {|
int counter;
int total;

int bump(int k) {
  counter = counter + k;
  return counter;
}

int main() {
  int i;
  i = 0;
  total = 0;
  while (i < 200) {
    total = total + bump(1);
    i = i + 1;
  }
  return counter;
}
|}

let percentile xs p =
  (* Nearest-rank on a sorted copy; [] -> 0. *)
  match xs with
  | [] -> 0.0
  | _ ->
    let a = Array.of_list xs in
    Array.sort compare a;
    let n = Array.length a in
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    a.(max 0 (min (n - 1) (rank - 1)))

type fleet_result = {
  fr_sessions : int;
  fr_commands : int;
  fr_wall_s : float;
  fr_p50_ms : float;
  fr_p99_ms : float;
  fr_mean_ms : float;
}

let results : fleet_result list ref = ref []

(* One scripted client connection. *)
type cstate = {
  sid : string;
  fd : Unix.file_descr;
  rbuf : Buffer.t;  (* unconsumed reply bytes *)
  mutable script : string list;  (* commands not yet sent *)
  mutable sent_at : float;  (* send time of the in-flight command *)
  mutable in_flight : bool;
  mutable transcript : string list;  (* reverse order *)
  mutable latencies : float list;
  mutable hits : int;
  mutable replies : int;
  mutable exit_code : int option;
  mutable last_write_insn : int option;
  mutable done_ : bool;
}

let session_script sid =
  [
    Proto.encode_command
      (Proto.Open
         {
           sid;
           source = Proto.Program program;
           strategy = "BitmapInlineRegisters";
           opt = "none";
         });
    Proto.encode_command (Proto.Arm { sid; target = Proto.Var "counter" });
    Proto.encode_command (Proto.Run { sid; fuel = 100_000_000 });
    Proto.encode_command (Proto.Query_last_write { sid; target = "counter" });
    Proto.encode_command (Proto.Close { sid });
  ]

let send_next c =
  match c.script with
  | [] ->
    c.done_ <- true;
    c.in_flight <- false
  | cmd :: rest ->
    c.script <- rest;
    let frame = cmd ^ "\n" in
    (* Loopback socket buffers dwarf our largest frame (the escaped
       program source); a single write always takes it all. *)
    ignore (Unix.write_substring c.fd frame 0 (String.length frame));
    c.sent_at <- Unix.gettimeofday ();
    c.in_flight <- true

let note_reply c line =
  c.replies <- c.replies + 1;
  c.transcript <- line :: c.transcript;
  let terminal =
    match Proto.decode_reply line with
    | Error _ -> true
    | Ok { Proto.r_body; _ } -> (
      (match r_body with
      | Proto.Hit _ -> c.hits <- c.hits + 1
      | Proto.Exited { code; _ } -> c.exit_code <- Some code
      | Proto.Last_write { insn; _ } -> c.last_write_insn <- Some insn
      | _ -> ());
      Proto.terminal r_body)
  in
  if terminal && c.in_flight then begin
    c.latencies <- (Unix.gettimeofday () -. c.sent_at) :: c.latencies;
    c.in_flight <- false;
    send_next c
  end

let pump_client c =
  let chunk = Bytes.create 8192 in
  let rec read_all () =
    match Unix.read c.fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | k ->
      Buffer.add_subbytes c.rbuf chunk 0 k;
      read_all ()
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
      ()
  in
  read_all ();
  let data = Buffer.contents c.rbuf in
  Buffer.clear c.rbuf;
  let rec split start =
    match String.index_from_opt data start '\n' with
    | None ->
      if start < String.length data then
        Buffer.add_substring c.rbuf data start (String.length data - start)
    | Some i ->
      note_reply c (String.sub data start (i - start));
      split (i + 1)
  in
  split 0

let run_fleet k =
  let engine = Daemon.create ~shards:(Pool.jobs ()) () in
  let srv = Daemon.listen engine ~port:0 () in
  let port = Daemon.server_port srv in
  let clients =
    List.init k (fun i ->
        let sid = Printf.sprintf "s%d" (i + 1) in
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        Unix.set_nonblock fd;
        {
          sid;
          fd;
          rbuf = Buffer.create 4096;
          script = session_script sid;
          sent_at = 0.0;
          in_flight = false;
          transcript = [];
          latencies = [];
          hits = 0;
          replies = 0;
          exit_code = None;
          last_write_insn = None;
          done_ = false;
        })
  in
  let t0 = Unix.gettimeofday () in
  List.iter send_next clients;
  while not (List.for_all (fun c -> c.done_) clients) do
    (try
       ignore
         (Unix.select
            (Daemon.server_fds srv @ List.map (fun c -> c.fd) clients)
            [] [] 0.01)
     with Unix.Unix_error (Unix.EINTR, _, _) -> ());
    Daemon.server_poll srv;
    List.iter (fun c -> if not c.done_ then pump_client c) clients
  done;
  let wall = Unix.gettimeofday () -. t0 in
  List.iter (fun c -> try Unix.close c.fd with _ -> ()) clients;
  Daemon.server_close srv;
  Daemon.drain engine;
  (* Fold this fleet's engine telemetry into the bench harness's own
     sink: the trailing merged summary and --json stay the single
     source of truth, and both are under the -j parity diff. *)
  Telemetry.absorb (Pool.telemetry_sink ()) (Daemon.merged_report engine);
  Daemon.shutdown engine;

  (* Deterministic stdout: one full transcript + per-session digests. *)
  Printf.printf "\n== service: %d concurrent sessions ==\n" k;
  let s1 = List.hd clients in
  Printf.printf "--- transcript %s ---\n" s1.sid;
  List.iter print_endline (List.rev s1.transcript);
  Printf.printf "--- sessions ---\n";
  List.iter
    (fun c ->
      Printf.printf "%-4s replies=%d hits=%d exit=%s last-write-insn=%s\n"
        c.sid c.replies c.hits
        (match c.exit_code with Some e -> string_of_int e | None -> "?")
        (match c.last_write_insn with
        | Some i -> string_of_int i
        | None -> "?"))
    clients;

  (* Wall-clock numbers: stderr + JSON only. *)
  let lat_ms =
    List.concat_map (fun c -> List.map (fun s -> s *. 1000.0) c.latencies)
      clients
  in
  let r =
    {
      fr_sessions = k;
      fr_commands = List.length lat_ms;
      fr_wall_s = wall;
      fr_p50_ms = percentile lat_ms 50.0;
      fr_p99_ms = percentile lat_ms 99.0;
      fr_mean_ms = Stats.mean lat_ms;
    }
  in
  results := !results @ [ r ];
  Printf.eprintf
    "(service %2d sessions: %d commands in %.2fs, p50 %.2fms, p99 %.2fms, \
     %.1f sessions/s)\n"
    k r.fr_commands wall r.fr_p50_ms r.fr_p99_ms
    (float_of_int k /. wall)

let run () = List.iter run_fleet fleet_sizes

(* JSON fragment embedded by [Main.write_json] under the "service"
   key; empty when the experiment did not run. *)
let json_fragment () =
  match !results with
  | [] -> None
  | rs ->
    let b = Buffer.create 512 in
    Buffer.add_string b "[\n";
    List.iteri
      (fun i r ->
        Buffer.add_string b
          (Printf.sprintf
             "    {\"sessions\": %d, \"commands\": %d, \"wall_s\": %.4f, \
              \"p50_ms\": %.3f, \"p99_ms\": %.3f, \"mean_ms\": %.3f, \
              \"sessions_per_s\": %.2f}%s\n"
             r.fr_sessions r.fr_commands r.fr_wall_s r.fr_p50_ms r.fr_p99_ms
             r.fr_mean_ms
             (float_of_int r.fr_sessions /. r.fr_wall_s)
             (if i = List.length rs - 1 then "" else ",")))
      rs;
    Buffer.add_string b "  ]";
    Some (Buffer.contents b)
