open Dbp

(* Reproduction of every table and figure in the paper's evaluation.
   Overheads are ratios of simulated cycle counts (see DESIGN.md §2);
   the paper's corresponding numbers are printed alongside each table
   in EXPERIMENTS.md.

   Every experiment is phrased compute-then-print: the per-row (or
   per-sweep-point) cell computations go through {!Pool.map}, which
   shards them across worker domains and returns results in input
   order, so the printed tables are byte-identical for every [-j]. *)

let workloads = Workloads.Spec.all

let lang_tag (w : Workloads.Workload.t) =
  Printf.sprintf "(%s) %s" (Workloads.Workload.lang_to_string w.lang) w.name

let averages rows =
  (* rows: (workload, float list); returns (c_avg, f_avg, all_avg) per column *)
  let cols = List.length (snd (List.hd rows)) in
  let avg filt col =
    let vals =
      List.filter_map
        (fun ((w : Workloads.Workload.t), xs) ->
          if filt w then Some (List.nth xs col) else None)
        rows
    in
    Stats.mean vals
  in
  let line name filt =
    (name, List.init cols (fun c -> avg filt c))
  in
  [
    line "C AVERAGE" (fun w -> w.Workloads.Workload.lang = Workloads.Workload.C);
    line "FORTRAN AVERAGE" (fun w -> w.Workloads.Workload.lang = Workloads.Workload.Fortran);
    line "OVERALL AVERAGE" (fun _ -> true);
  ]

let print_table ~title ~headers rows_with_names =
  Printf.printf "\n== %s ==\n" title;
  Printf.printf "%-18s" "Programs";
  List.iter (fun h -> Printf.printf "%12s" h) headers;
  print_newline ();
  List.iter
    (fun (name, values) ->
      Printf.printf "%-18s" name;
      List.iter (fun v -> Printf.printf "%11.1f%%" v) values;
      print_newline ())
    rows_with_names

(* --- nop-insertion cache-effects experiment (sigma of Table 1) ---------------- *)

let nop_sigma (w : Workloads.Workload.t) =
  let points =
    List.map
      (fun n ->
        let o = { (Runner.options_for w Strategy.Nocheck) with Instrument.nop_padding = n } in
        let r, _ = Runner.instrumented ~enable:false o w in
        (float_of_int n, Runner.overhead w r))
      [ 2; 4; 8; 16; 32 ]
  in
  let _, _, sigma = Stats.linreg points in
  sigma

(* --- Table 1: write check implementations ----------------------------------- *)

(* The disabled column and the five strategy variants of Table 1, plus
   the cache-alignment sigma from the nop experiment. *)
let table1 () =
  let strategies =
    [
      Strategy.Bitmap;
      Strategy.Bitmap_inline;
      Strategy.Bitmap_inline_registers;
      Strategy.Cache;
      Strategy.Cache_inline;
    ]
  in
  let rows =
    Pool.map
      (fun (w : Workloads.Workload.t) ->
        let disabled =
          let o = Runner.options_for w Strategy.Bitmap_inline_registers in
          let r, _ = Runner.instrumented ~enable:false o w in
          Runner.overhead w r
        in
        let per_strategy =
          List.map
            (fun s ->
              let r, _ = Runner.instrumented (Runner.options_for w s) w in
              Runner.overhead w r)
            strategies
        in
        let sigma = nop_sigma w in
        (w, disabled :: per_strategy @ [ sigma ]))
      workloads
  in
  let printable =
    List.map (fun (w, xs) -> (lang_tag w, xs)) rows @ averages rows
  in
  print_table ~title:"Table 1: monitored region service overhead"
    ~headers:
      [ "Disabled"; "Bitmap"; "BmpInline"; "BmpInlRegs"; "Cache"; "CacheInl"; "sigma" ]
    printable

let nops () =
  let rows =
    Pool.map
      (fun (w : Workloads.Workload.t) ->
        let points =
          List.map
            (fun n ->
              let o =
                { (Runner.options_for w Strategy.Nocheck) with Instrument.nop_padding = n }
              in
              let r, _ = Runner.instrumented ~enable:false o w in
              (float_of_int n, Runner.overhead w r))
            [ 2; 4; 8; 16; 32 ]
        in
        let _, slope, sigma = Stats.linreg points in
        (w, points, slope, sigma))
      workloads
  in
  Printf.printf "\n== Nop-insertion experiment (cache alignment effects, sec 3.3.1) ==\n";
  Printf.printf "%-18s%10s%10s%10s%10s%10s%12s%10s\n" "Programs" "2" "4" "8" "16"
    "32" "slope/nop" "sigma";
  List.iter
    (fun (w, points, slope, sigma) ->
      Printf.printf "%-18s" (lang_tag w);
      List.iter (fun (_, y) -> Printf.printf "%9.1f%%" y) points;
      Printf.printf "%11.2f%%%9.2f%%\n" slope sigma)
    rows

(* --- Figure 3: segment cache locality vs segment size -------------------------- *)

(* The miss count comes from the telemetry registry's
   [Cache_misses_by_type] counter — [Session.create] probes the
   per-write-type miss handlers itself for segment-cache strategies, so
   Figure 3 and the telemetry reports share one definition of a miss. *)
let cache_hit_rate (w : Workloads.Workload.t) ~seg_bits =
  let o = Runner.options_for w ~seg_bits Strategy.Cache in
  let _, session = Runner.instrumented o w in
  let misses =
    Array.fold_left ( + ) 0
      (Telemetry.get_typed session.Session.telemetry
         Telemetry.Cache_misses_by_type)
  in
  let total = Session.total_site_executions session in
  if total = 0 then 0.0
  else 100.0 *. (1.0 -. (float_of_int misses /. float_of_int total))

let figure3 () =
  let sizes = [ 7; 8; 9; 10; 11; 12 ] in
  let rows =
    Pool.map
      (fun (w : Workloads.Workload.t) ->
        (w, List.map (fun sb -> cache_hit_rate w ~seg_bits:sb) sizes))
      workloads
  in
  Printf.printf "\n== Figure 3: segment cache locality (hit %%) vs segment size ==\n";
  Printf.printf "%-18s" "Programs";
  List.iter (fun sb -> Printf.printf "%9dw" ((1 lsl sb) / 4)) sizes;
  print_newline ();
  let all_rates =
    List.map
      (fun ((w : Workloads.Workload.t), rates) ->
        Printf.printf "%-18s" (lang_tag w);
        List.iter (fun r -> Printf.printf "%9.1f%%" r) rates;
        print_newline ();
        rates)
      rows
  in
  Printf.printf "%-18s" "AVERAGE";
  List.iteri
    (fun i _ ->
      let col = List.map (fun rates -> List.nth rates i) all_rates in
      Printf.printf "%9.1f%%" (Stats.mean col))
    sizes;
  print_newline ()

(* --- Table 2: write check elimination -------------------------------------------- *)

let table2 () =
  let rows =
    Pool.map
      (fun (w : Workloads.Workload.t) ->
        (* Full optimization run. *)
        let o_full =
          Runner.options_for w ~opt:Instrument.O_full Strategy.Bitmap_inline_registers
        in
        let full_run, session = Runner.instrumented o_full w in
        let plan = session.Session.plan in
        let total = float_of_int (max 1 (Session.total_site_executions session)) in
        let sym = float_of_int (Session.sym_eliminated_site_executions session) in
        (* Split loop-eliminated executions into LI vs Range by each
           origin's planned check kind. *)
        let kind_of_origin =
          let tbl = Hashtbl.create 64 in
          List.iter
            (fun (p : Loopopt.loop_plan) ->
              List.iter
                (fun c ->
                  match c with
                  | Loopopt.Inv { origin; _ } -> Hashtbl.replace tbl origin `LI
                  | Loopopt.Rng { origin; _ } -> Hashtbl.replace tbl origin `Range)
                p.checks)
            plan.Instrument.loop_plans;
          tbl
        in
        let li_dyn = ref 0 and range_dyn = ref 0 in
        List.iter
          (fun (s : Instrument.site) ->
            match s.status with
            | Instrument.Loop_eliminated _ -> (
              let n = Session.site_executions session s.origin in
              match Hashtbl.find_opt kind_of_origin s.origin with
              | Some `LI -> li_dyn := !li_dyn + n
              | Some `Range -> range_dyn := !range_dyn + n
              | None -> ())
            | Instrument.Checked | Instrument.Sym_eliminated _ -> ())
          plan.Instrument.sites;
        (* Dynamic pre-header checks generated. *)
        let gen_li = ref 0 and gen_range = ref 0 in
        List.iter
          (fun (p : Loopopt.loop_plan) ->
            let entries = Mrs.loop_entry_count session.Session.mrs p.loop_id in
            List.iter
              (fun c ->
                match c with
                | Loopopt.Inv _ -> gen_li := !gen_li + entries
                | Loopopt.Rng _ -> gen_range := !gen_range + entries)
              p.checks)
          plan.Instrument.loop_plans;
        let full_ovh = Runner.overhead w full_run in
        (* Symbol-only run. *)
        let o_sym =
          Runner.options_for w ~opt:Instrument.O_symbol Strategy.Bitmap_inline_registers
        in
        let sym_run, _ = Runner.instrumented o_sym w in
        let sym_ovh = Runner.overhead w sym_run in
        let p x = 100.0 *. (x /. total) in
        ( w,
          [
            p sym;
            p (float_of_int !li_dyn);
            p (float_of_int !range_dyn);
            p (sym +. float_of_int (!li_dyn + !range_dyn));
            p (float_of_int !gen_li);
            p (float_of_int !gen_range);
            full_ovh;
            sym_ovh;
          ] ))
      workloads
  in
  let printable = List.map (fun (w, xs) -> (lang_tag w, xs)) rows @ averages rows in
  print_table ~title:"Table 2: write check elimination"
    ~headers:[ "Symbol"; "LI"; "Range"; "Total"; "GenLI"; "GenRng"; "Full"; "Sym" ]
    printable

(* --- Strategy comparison (sec 1 / Wahbe's pilot study) ----------------------------- *)

let strategies () =
  let rows =
    Pool.map
      (fun (w : Workloads.Workload.t) ->
        let base = Runner.baseline w in
      let bitmap =
        let r, _ =
          Runner.instrumented (Runner.options_for w Strategy.Bitmap_inline_registers) w
        in
        Runner.overhead w r
      in
      let hash =
        let r, _ = Runner.instrumented (Runner.options_for w Strategy.Hash_table) w in
        Runner.overhead w r
      in
      ignore base;
      (* Trap-per-write, measured: every store raises a trap and the
         check runs in the "kernel" (the OCaml MRS), charged a 400-cycle
         context switch on top of the trap cost. *)
      let trap_ovh =
        let r, _ = Runner.instrumented (Runner.options_for w Strategy.Trap_check) w in
        Runner.overhead w r
      in
      (* VM page protection: watch this workload's [seed] word; every
         store to its 4 KiB page faults (~1500 cycles with the fault
         round trip). *)
      let pageprot =
        let linked = Minic.Compile.compile_and_link w.source in
        let watched =
          match Sparc.Assembler.addr_of_label linked.image "seed" with
          | Some a -> Some a
          | None -> (
            match Sparc.Symtab.globals linked.symtab with
            | { Sparc.Symtab.location = Sparc.Symtab.Absolute a; _ } :: _ -> Some a
            | _ -> None)
        in
        match watched with
        | None -> nan
        | Some seed_addr ->
          let page = seed_addr lsr 12 in
          let cpu = Machine.Cpu.create linked.image in
          Machine.Cpu.install_basic_services cpu;
          let faults = ref 0 in
          Machine.Cpu.set_store_hook cpu (fun _ ~addr ~width:_ ->
              if addr lsr 12 = page then incr faults);
          ignore (Machine.Cpu.run ~fuel:Runner.fuel cpu);
          let s = Machine.Cpu.stats cpu in
          Stats.pct base.Runner.cycles (s.Machine.Cpu.cycles + (!faults * 1500))
      in
      (* Hardware watchpoints: measured zero-overhead when a scalar
         fits the registers; capacity fails for anything bigger. *)
      let hw =
        let o = Runner.options_for w (Strategy.Hardware_watch 4) in
        let r, _ = Runner.instrumented o w in
        Runner.overhead w r
      in
        (w, bitmap, hash, trap_ovh, pageprot, hw))
      workloads
  in
  Printf.printf
    "\n== Implementation strategy comparison (sec 1; Wahbe ASPLOS'92 pilot) ==\n";
  Printf.printf "%-18s%14s%14s%14s%14s%14s\n" "Programs" "Bitmap(regs)" "HashTable"
    "TrapPerWrite" "VM-pageprot" "HW-watch";
  List.iter
    (fun (w, bitmap, hash, trap_ovh, pageprot, hw) ->
      Printf.printf "%-18s%13.1f%%%13.1f%%%13.1f%%%13.1f%%%13.1f%%\n" (lang_tag w)
        bitmap hash trap_ovh pageprot hw)
    rows;
  Printf.printf
    "\n(dbx-style single-step checking is a constant factor of ~%.0fx, the paper's\n\
     measured value -- 8,500,000%% overhead, off this table's scale.)\n"
    85000.0;
  Printf.printf
    "(HW watchpoints: SPARC/R4000 watch 1 word, i386 watches 4 -- e.g. watching\n\
     matrix300's %d-word output array is unsupported in hardware.)\n"
    (22 * 22)

(* --- Ablations of the paper's design choices ------------------------------------------ *)

(* Two decisions DESIGN.md calls out, removed one at a time:
   1. the disabled-flag guard (§2.1) — 2 extra instructions per check
      that buy an almost-free "no breakpoints" mode;
   2. per-write-type segment caches (§3.1) vs one shared cache. *)
let ablations () =
  let rows =
    Pool.map
      (fun (w : Workloads.Workload.t) ->
        let bir =
          let r, _ =
            Runner.instrumented (Runner.options_for w Strategy.Bitmap_inline_registers) w
          in
          Runner.overhead w r
        in
        let bir_noguard =
          let o =
            Runner.options_for w ~disabled_guard:false
              Strategy.Bitmap_inline_registers
          in
          let r, _ = Runner.instrumented o w in
          Runner.overhead w r
        in
        let bir_disabled =
          let o = Runner.options_for w Strategy.Bitmap_inline_registers in
          let r, _ = Runner.instrumented ~enable:false o w in
          Runner.overhead w r
        in
        let cache4 =
          let r, _ = Runner.instrumented (Runner.options_for w Strategy.Cache_inline) w in
          Runner.overhead w r
        in
        let cache1 =
          let o = Runner.options_for w ~single_cache:true Strategy.Cache_inline in
          let r, _ = Runner.instrumented o w in
          Runner.overhead w r
        in
        (w, [ bir; bir_noguard; bir_disabled; cache4; cache1 ]))
      workloads
  in
  Printf.printf "\n== Ablations ==\n";
  Printf.printf "%-18s%12s%12s%14s%12s%14s\n" "Programs" "BIR" "BIR-noguard"
    "BIR-disabled" "Cache4" "Cache-shared";
  List.iter
    (fun (w, xs) ->
      Printf.printf "%-18s" (lang_tag w);
      (match xs with
      | [ bir; bir_noguard; bir_disabled; cache4; cache1 ] ->
        Printf.printf "%11.1f%%%11.1f%%%13.1f%%%11.1f%%%13.1f%%\n" bir
          bir_noguard bir_disabled cache4 cache1
      | _ -> assert false))
    rows;
  let rows = List.map snd rows in
  let col i = Stats.mean (List.map (fun xs -> List.nth xs i) rows) in
  Printf.printf "%-18s%11.1f%%%11.1f%%%13.1f%%%11.1f%%%13.1f%%\n" "AVERAGE"
    (col 0) (col 1) (col 2) (col 3) (col 4);
  Printf.printf
    "(the guard costs ~%.1f points of steady-state overhead but keeps the\n\
    \ disabled mode at ~%.1f%%; a single shared cache loses ~%.1f points to\n\
    \ inter-type interference)\n"
    (col 0 -. col 1) (col 2) (col 4 -. col 3)

(* --- Read monitoring (sec 5 extension) ----------------------------------------------- *)

(* The paper closes by noting that applications like access-anomaly
   detection need read monitoring too, that reads outnumber writes 2-3x
   dynamically, and that straightforward extensions of the techniques
   handle them.  This table measures that extension: checking every
   read and write vs. writes only. *)
let readwrite () =
  let rows =
    Pool.map
      (fun (w : Workloads.Workload.t) ->
        let base = Runner.baseline w in
        let wo =
          let r, _ =
            Runner.instrumented (Runner.options_for w Strategy.Bitmap_inline_registers) w
          in
          Runner.overhead w r
        in
        let rw =
          let o =
            Runner.options_for w ~monitor_reads:true Strategy.Bitmap_inline_registers
          in
          let r, _ = Runner.instrumented o w in
          Runner.overhead w r
        in
        ignore base;
        let ls =
          (* measured loads/stores of the uninstrumented run *)
          let linked = Minic.Compile.compile_and_link w.source in
          let cpu = Machine.Cpu.create linked.image in
          Machine.Cpu.install_basic_services cpu;
          ignore (Machine.Cpu.run ~fuel:Runner.fuel cpu);
          let st = Machine.Cpu.stats cpu in
          float_of_int st.Machine.Cpu.loads /. float_of_int (max 1 st.Machine.Cpu.stores)
        in
        (w, ls, [ wo; rw ]))
      workloads
  in
  Printf.printf "\n== Read+write monitoring (sec 5 extension) ==\n";
  Printf.printf "%-18s%12s%14s%14s%12s\n" "Programs" "loads/store" "writes-only"
    "reads+writes" "ratio";
  List.iter
    (fun (w, ls, xs) ->
      let wo = List.nth xs 0 and rw = List.nth xs 1 in
      Printf.printf "%-18s%12.2f%13.1f%%%13.1f%%%12.2f\n" (lang_tag w) ls wo rw
        (rw /. wo))
    rows;
  let rows = List.map (fun (w, _, xs) -> (w, xs)) rows in
  let c_w = Stats.mean (List.filter_map (fun ((w : Workloads.Workload.t), xs) ->
      if w.lang = Workloads.Workload.C then Some (List.nth xs 0) else None) rows) in
  let c_rw = Stats.mean (List.filter_map (fun ((w : Workloads.Workload.t), xs) ->
      if w.lang = Workloads.Workload.C then Some (List.nth xs 1) else None) rows) in
  let a_w = Stats.mean (List.map (fun (_, xs) -> List.nth xs 0) rows) in
  let a_rw = Stats.mean (List.map (fun (_, xs) -> List.nth xs 1) rows) in
  Printf.printf "%-18s%12s%13.1f%%%13.1f%%%12.2f\n" "C AVERAGE" "" c_w c_rw (c_rw /. c_w);
  Printf.printf "%-18s%12s%13.1f%%%13.1f%%%12.2f\n" "OVERALL AVERAGE" "" a_w a_rw
    (a_rw /. a_w)

(* --- Break-even analysis (sec 3.3.3) ------------------------------------------------- *)

let breakeven () =
  let rows =
    Pool.map
      (fun ratio ->
      (* A monitored region sits in array b's segment (on a word the
         loop never writes), so stores to b need full lookups while
         stores to a are segment cache hits. *)
      let source =
        Printf.sprintf
          {|
int a[128];
int apad[128];
int b[128];
int bpad[128];
int main() {
  int k;
  register int i;
  for (k = 0; k < 150; k = k + 1) {
    for (i = 0; i < 120; i = i + 1) {
      if (i %% %d == 0) { b[i] = i; } else { a[i] = i; }
    }
  }
  return 0;
}
|}
          ratio
      in
      let w =
        {
          Workloads.Workload.name = Printf.sprintf "synthetic-%d" ratio;
          lang = Workloads.Workload.C;
          description = "";
          source;
          expected_exit = Some 0;
          library_functions = [];
        }
      in
      let watch_b (session : Session.t) =
        match Sparc.Symtab.lookup session.Session.symtab "b" with
        | Some { Sparc.Symtab.location = Sparc.Symtab.Absolute addr; _ } ->
          (* Monitor the last word only: same segment, never written. *)
          Mrs.create_region session.Session.mrs
            (Region.v ~addr:(addr + (4 * 127)) ~size_bytes:4 ());
          Mrs.enable session.Session.mrs
        | _ -> failwith "no b"
      in
      let run_with strategy =
        let o = Runner.options_for w strategy in
        let session = Session.create ~options:o w.source in
        watch_b session;
        (* Full lookups are checks whose target segment holds a
           monitored region: count stores into b's segment. *)
        let b_seg =
          match Sparc.Symtab.lookup session.Session.symtab "b" with
          | Some { Sparc.Symtab.location = Sparc.Symtab.Absolute a; _ } ->
            (a + (4 * 127)) lsr 9
          | _ -> -1
        in
        let full = ref 0 in
        Machine.Cpu.set_store_hook session.Session.cpu (fun _ ~addr ~width:_ ->
            if addr lsr 9 = b_seg then incr full);
        ignore (Session.run ~fuel:Runner.fuel session);
        let s = Session.stats session in
        (s.Machine.Cpu.cycles, !full, Session.total_site_executions session)
      in
      let cache_cycles, full_lookups, total = run_with Strategy.Cache in
      let bir_cycles, _, _ = run_with Strategy.Bitmap_inline_registers in
      let base = (Runner.baseline w).Runner.cycles in
      let full_pct = 100.0 *. float_of_int full_lookups /. float_of_int (max 1 total) in
      let co = Stats.pct base cache_cycles and bo = Stats.pct base bir_cycles in
      (ratio, full_pct, co, bo))
      [ 120; 16; 8; 4; 2; 1 ]
  in
  Printf.printf
    "\n== Break-even: segment caching vs BitmapInlineRegisters (sec 3.3.3) ==\n";
  Printf.printf "%-10s%14s%14s%14s%16s\n" "ratio" "full-lookup%" "Cache ovh"
    "BmpInlRegs ovh" "winner";
  List.iter
    (fun (ratio, full_pct, co, bo) ->
      Printf.printf "%-10d%13.1f%%%13.1f%%%13.1f%%%16s\n" ratio full_pct co bo
        (if co < bo then "Cache" else "BmpInlRegs"))
    rows

(* --- Smoke subset (bench-smoke alias, BENCH_smoke.json) -------------------------- *)

(* A fast subset of Table 1 — the two cheapest workloads under three
   strategies — for quick regression checks: the [bench-smoke] dune
   alias runs it with [-j 1] and [-j 2] and diffs the output, and
   [--json] snapshots it as BENCH_smoke.json. *)
let smoke () =
  let names = [ "023.eqntott"; "030.matrix300" ] in
  let ws =
    List.filter_map
      (fun n ->
        match Workloads.Spec.find n with
        | Some w -> Some w
        | None -> failwith ("smoke: unknown workload " ^ n))
      names
  in
  let strategies =
    [ Strategy.Bitmap; Strategy.Bitmap_inline_registers; Strategy.Cache ]
  in
  let cells =
    List.concat_map (fun w -> List.map (fun s -> (w, s)) strategies) ws
  in
  let rows =
    Pool.map
      (fun ((w : Workloads.Workload.t), s) ->
        let r, _ = Runner.instrumented (Runner.options_for w s) w in
        (w, s, Runner.overhead w r))
      cells
  in
  Printf.printf "\n== Smoke subset (monitored, no regions) ==\n";
  Printf.printf "%-18s%22s%12s\n" "Programs" "Strategy" "Overhead";
  List.iter
    (fun ((w : Workloads.Workload.t), s, ovh) ->
      Printf.printf "%-18s%22s%11.1f%%\n" (lang_tag w) (Strategy.to_string s)
        ovh)
    rows

(* --- Checkpoint/replay: interval vs query latency (BENCH_replay.json) ------------ *)

(* The time-travel tradeoff of DESIGN.md §9: a shorter checkpoint
   interval costs more recording bytes but bounds how far a retroactive
   query has to re-execute.  Every column printed on stdout is
   simulated/deterministic (checkpoint counts, COW page/byte totals,
   the deep-copy baseline, the exact hit, instructions replayed by the
   query), so the table is byte-identical for every [-j] — the
   [replay-smoke] dune alias diffs it.  Wall-clock (record and query
   seconds) goes to the cell log and thence to [--json]
   (BENCH_replay.json).

   The deep-copy baseline is what the pre-COW [Memory.snapshot] would
   have paid: every checkpoint copies the whole resident image.  The
   COW figure is [Journal.captured_bytes] — pages actually copied
   (plus register/cache overhead) with everything else shared.  The
   acceptance bound is COW < 2x deep-copy at the default interval;
   in practice it is far below 1x. *)
let replay () =
  let targets = [ ("030.matrix300", "c"); ("022.li", "mark_count") ] in
  let intervals = [ 2_000; 10_000; 50_000 ] in
  let cells =
    List.concat_map
      (fun (name, var) ->
        match Workloads.Spec.find name with
        | None -> failwith ("replay: unknown workload " ^ name)
        | Some w -> List.map (fun i -> (w, var, i)) intervals)
      targets
  in
  let rows =
    Pool.map
      (fun ((w : Workloads.Workload.t), var, interval) ->
        let telemetry = Telemetry.create () in
        let options = Runner.options_for w Strategy.Bitmap_inline_registers in
        let session =
          Session.create ~options ~telemetry ~trace:(Pool.trace_sink ())
            ~checkpoint_every:interval w.source
        in
        Mrs.enable session.Session.mrs;
        let t0 = Unix.gettimeofday () in
        let exit_code, _ = Session.run ~fuel:Runner.fuel session in
        let record_wall = Unix.gettimeofday () -. t0 in
        (match w.expected_exit with
        | Some e when e <> exit_code ->
          failwith
            (Printf.sprintf "%s under replay: exit %d <> expected %d" w.name
               exit_code e)
        | _ -> ());
        let s = Session.stats session in
        Runner.record
          ~label:(Printf.sprintf "%s/replay-i%d/record" w.name interval)
          {
            Runner.cycles = s.Machine.Cpu.cycles;
            instrs = s.Machine.Cpu.instrs;
            stores = s.Machine.Cpu.stores;
            exit_code;
            wall_s = record_wall;
          };
        let r =
          match Session.replay session with
          | Some r -> r
          | None -> assert false
        in
        let journal = Replay.journal r in
        let snaps = Journal.snapshots journal in
        let deep_bytes =
          List.fold_left
            (fun acc snap -> acc + Snapshot.bytes ~prev:None snap)
            0 snaps
        in
        let cow_bytes = Journal.captured_bytes journal in
        let addr =
          match Session.resolve_addr session var with
          | Some a -> a
          | None -> failwith (Printf.sprintf "replay: no global %s" var)
        in
        let t1 = Unix.gettimeofday () in
        let hit = Session.last_write session ~addr in
        let query_wall = Unix.gettimeofday () -. t1 in
        let lw_replayed = Replay.replayed_insns r in
        Runner.record
          ~label:(Printf.sprintf "%s/replay-i%d/last-write" w.name interval)
          {
            Runner.cycles = 0;
            instrs = lw_replayed;
            stores = 0;
            exit_code;
            wall_s = query_wall;
          };
        (* Travel into the middle of the run: the re-execution gap is
           bounded by the checkpoint interval, so this column is the
           interval-vs-latency tradeoff in its purest form. *)
        let t2 = Unix.gettimeofday () in
        let travel_replayed =
          Session.time_travel session ~insn:(Replay.end_insn r / 2)
        in
        let travel_wall = Unix.gettimeofday () -. t2 in
        Runner.record
          ~label:(Printf.sprintf "%s/replay-i%d/travel-mid" w.name interval)
          {
            Runner.cycles = 0;
            instrs = travel_replayed;
            stores = 0;
            exit_code;
            wall_s = travel_wall;
          };
        Telemetry.absorb (Pool.telemetry_sink ()) (Session.report session);
        Pool.absorb_audit_summary (Audit.summary session.Session.audit);
        ( w,
          var,
          interval,
          List.length snaps,
          Journal.captured_delta_pages journal,
          Journal.captured_shared_pages journal,
          cow_bytes,
          deep_bytes,
          hit,
          lw_replayed,
          travel_replayed ))
      cells
  in
  Printf.printf
    "\n== Checkpoint/replay: interval vs retroactive-query latency (sec 9) ==\n";
  Printf.printf "%-18s%9s%7s%7s%8s%10s%11s%7s%21s%10s%10s\n" "Programs"
    "interval" "ckpts" "pages" "shared" "COW-B" "deep-B" "COW%" "last-write"
    "lw-repl" "tvl-repl";
  List.iter
    (fun ((w : Workloads.Workload.t), var, interval, n, pages, shared, cow,
          deep, hit, lw_replayed, travel_replayed) ->
      let hit_str =
        match hit with
        | None -> var ^ ": never"
        | Some { Session.wr_hit = h; _ } ->
          Printf.sprintf "%s@%d" var h.Replay.h_insn
      in
      Printf.printf "%-18s%9d%7d%7d%8d%10d%11d%6.1f%%%21s%10d%10d\n"
        (lang_tag w) interval n pages shared cow deep
        (100.0 *. float_of_int cow /. float_of_int (max 1 deep))
        hit_str lw_replayed travel_replayed)
    rows;
  Printf.printf
    "(COW-B = bytes actually captured (copy-on-write deltas + register/cache\n\
    \ state); deep-B = what per-checkpoint full-image copies would cost;\n\
    \ lw-repl = instructions re-executed to answer the last-write query and\n\
    \ return to the recorded end state; tvl-repl = instructions re-executed\n\
    \ to travel to the middle of the run, bounded by the interval)\n"

(* --- Telemetry overhead (BENCH_telemetry.json) ----------------------------------- *)

(* Same workload and strategy, one run with the telemetry registry
   enabled and one with it disabled.  The simulated columns (cycles,
   check executions seen by the registry) are deterministic: probes
   cost no simulated cycles, so the cycle counts of the two rows are
   identical by construction and the registry only changes what the
   host pays.  That host cost — simulated MIPS — is wall-clock and so
   goes to [--json] (BENCH_telemetry.json), never to stdout; the
   acceptance bound is that the disabled-registry MIPS stays within
   noise of the PR 1 harness. *)
let telemetry () =
  let names = [ "023.eqntott"; "030.matrix300" ] in
  let ws =
    List.filter_map
      (fun n ->
        match Workloads.Spec.find n with
        | Some w -> Some w
        | None -> failwith ("telemetry: unknown workload " ^ n))
      names
  in
  let cells =
    List.concat_map (fun w -> [ (w, true); (w, false) ]) ws
  in
  let rows =
    Pool.map
      (fun ((w : Workloads.Workload.t), enabled) ->
        let tel = Telemetry.create ~enabled () in
        let tag = if enabled then "telemetry-on" else "telemetry-off" in
        let r, session =
          Runner.instrumented ~telemetry:tel ~tag
            (Runner.options_for w Strategy.Bitmap_inline_registers)
            w
        in
        let rep = Session.report session in
        let counter name =
          match List.assoc_opt name rep.Telemetry.r_counters with
          | Some v -> v
          | None -> 0
        in
        (w, enabled, r, counter "check_execs", counter "probe_dispatches"))
      cells
  in
  Printf.printf "\n== Telemetry registry overhead (enabled vs disabled) ==\n";
  Printf.printf "%-18s%12s%14s%14s%14s\n" "Programs" "Registry" "Cycles"
    "CheckExecs" "ProbeDisp";
  List.iter
    (fun ((w : Workloads.Workload.t), enabled, (r : Runner.run), checks, probes) ->
      Printf.printf "%-18s%12s%14d%14d%14d\n" (lang_tag w)
        (if enabled then "on" else "off")
        r.Runner.cycles checks probes)
    rows

(* --- Hot-path profiler overhead (BENCH_profile.json) ----------------------------- *)

(* Same workload and strategy, one run with the profiler attached and
   one without.  Profiling adds no simulated cycles (the counters live
   outside the machine's cost model), so the cycle column is identical
   by construction between the two rows — what the profiler costs is
   host time, which goes to [--json] (BENCH_profile.json) as per-cell
   simulated MIPS; the acceptance bound is <= 10% MIPS drop for the
   profiled rows.  Everything printed on stdout is simulated and
   deterministic: block/edge/transfer counts, the hottest function and
   back-edge, the full dbp-profile/1 JSON for the matrix300 kernel, and
   the folded stacks merged across cells ([Profile.merge_folded], a
   commutative multiset sum) — so the [profile-smoke] alias can diff
   [-j 1] against [-j 4] byte-for-byte. *)
let profile () =
  let names = [ "030.matrix300"; "022.li" ] in
  let ws =
    List.filter_map
      (fun n ->
        match Workloads.Spec.find n with
        | Some w -> Some w
        | None -> failwith ("profile: unknown workload " ^ n))
      names
  in
  let cells = List.concat_map (fun w -> [ (w, true); (w, false) ]) ws in
  let rows =
    Pool.map
      (fun ((w : Workloads.Workload.t), on) ->
        let tag = if on then "profile-on" else "profile-off" in
        let r, session =
          Runner.instrumented ~tag ~profile:on ~best_of:20
            (Runner.options_for w Strategy.Bitmap_inline_registers)
            w
        in
        let rep =
          if on then begin
            let rep = Session.profile_report session in
            Pool.absorb_profile rep.Profile.p_folded;
            Some rep
          end
          else None
        in
        (w, on, r, rep))
      cells
  in
  Printf.printf "\n== Hot-path profiler (attached vs detached) ==\n";
  Printf.printf "%-18s%10s%14s%14s%9s%8s%11s\n" "Programs" "Profiler" "Cycles"
    "Instrs" "Blocks" "Edges" "Transfers";
  List.iter
    (fun ((w : Workloads.Workload.t), on, (r : Runner.run), rep) ->
      match rep with
      | Some (p : Profile.report) ->
        Printf.printf "%-18s%10s%14d%14d%9d%8d%11d\n" (lang_tag w)
          (if on then "on" else "off")
          r.Runner.cycles r.Runner.instrs
          (List.length p.Profile.p_blocks)
          (List.length p.Profile.p_edges)
          (List.fold_left
             (fun acc (f : Profile.fn_report) -> acc + f.Profile.fr_calls)
             0 p.Profile.p_functions)
      | None ->
        Printf.printf "%-18s%10s%14d%14d%9s%8s%11s\n" (lang_tag w)
          (if on then "on" else "off")
          r.Runner.cycles r.Runner.instrs "-" "-" "-")
    rows;
  Printf.printf "\n== Hottest paths ==\n";
  List.iter
    (fun ((w : Workloads.Workload.t), _, _, rep) ->
      match rep with
      | None -> ()
      | Some (p : Profile.report) ->
        (match p.Profile.p_functions with
        | f :: _ ->
          Printf.printf "%-18s hottest function %s (%d instrs exclusive)\n"
            (lang_tag w) f.Profile.fr_name f.Profile.fr_excl_instrs
        | [] -> ());
        (match p.Profile.p_backedges with
        | be :: _ ->
          Printf.printf
            "%-18s hottest back-edge 0x%x -> 0x%x (%d taken, %d blocks, %d \
             check execs in body)\n"
            (lang_tag w) be.Profile.be_from_pc be.Profile.be_to_pc
            be.Profile.be_count
            (List.length be.Profile.be_blocks)
            be.Profile.be_check_execs
        | [] -> ()))
    rows;
  (* The kernel workload's full report, under the [-j] byte-parity
     diff: block/edge/function tables and the superblock-candidate
     back-edges are all simulated quantities. *)
  (match
     List.find_map
       (fun ((w : Workloads.Workload.t), _, _, rep) ->
         if w.name = "030.matrix300" then rep else None)
       rows
   with
  | Some p ->
    Printf.printf "\n== dbp-profile/1 (030.matrix300) ==\n%s\n"
      (Profile.to_json_string ~indent:1 p)
  | None -> ());
  Printf.printf "\n== Folded stacks (merged across profiled cells) ==\n";
  List.iter
    (fun (path, count) -> Printf.printf "%s %d\n" path count)
    (Pool.merged_profile ())

(* --- Time-series sampler & heatmap overhead (BENCH_timeseries.json) -------------- *)

(* Same workload and strategy, one run with the sampler and heatmap
   attached (one sample every 50k executed instructions) and one
   without.  Like the profiler, sampling adds no simulated cycles —
   the dispatch-loop test lives outside the machine's cost model, so
   the cycle column is identical by construction between the two rows;
   what sampling costs is host time, which goes to [--json]
   (BENCH_timeseries.json) as per-cell simulated MIPS under the same
   <= 10% acceptance bound as the profiler.  Everything printed on
   stdout is simulated and deterministic: sample counts, the ring's
   closing values (equal to the end-of-run registry counters — the
   conservation property the test suite pins), windowed peak rates,
   and the per-page heatmap totals — so the [timeseries-smoke] alias
   can diff [-j 1] against [-j 4] byte-for-byte.  The merged-sink
   sample multiset in the trailing telemetry summary is sorted on
   merge (concatenate, then sort by instruction count), which is what
   keeps that section [-j]-independent too. *)
let sample_interval = 50_000

let timeseries_sampler () =
  let names = [ "030.matrix300"; "022.li" ] in
  let ws =
    List.filter_map
      (fun n ->
        match Workloads.Spec.find n with
        | Some w -> Some w
        | None -> failwith ("timeseries: unknown workload " ^ n))
      names
  in
  let cells = List.concat_map (fun w -> [ (w, true); (w, false) ]) ws in
  let rows =
    Pool.map
      (fun ((w : Workloads.Workload.t), on) ->
        let tag = if on then "timeseries-on" else "timeseries-off" in
        let r, session =
          Runner.instrumented ~tag
            ?sample_every:(if on then Some sample_interval else None)
            ~heatmap:on ~best_of:20
            (Runner.options_for w Strategy.Bitmap_inline_registers)
            w
        in
        let extra =
          if not on then None
          else begin
            let rep = Session.report session in
            Session.heatmap_sync_regions session;
            let hm = Option.get session.Session.heatmap in
            let conserved =
              Heatmap.total_writes hm = r.Runner.stores
              && (match List.rev rep.Telemetry.r_samples with
                 | last :: _ ->
                   List.assoc_opt "check_execs" last.Telemetry.s_values
                   = List.assoc_opt "check_execs" rep.Telemetry.r_counters
                 | [] -> false)
            in
            Some
              ( rep,
                ( Heatmap.n_pages hm,
                  Heatmap.total_writes hm,
                  Heatmap.total_checks hm,
                  Heatmap.total_hits hm,
                  List.length (Heatmap.never_fired hm) ),
                conserved )
          end
        in
        (w, on, r, extra))
      cells
  in
  Printf.printf "\n== Time-series sampler (attached vs detached) ==\n";
  Printf.printf "%-18s%10s%14s%14s%10s%10s\n" "Programs" "Sampler" "Cycles"
    "Instrs" "Samples" "Dropped";
  List.iter
    (fun ((w : Workloads.Workload.t), on, (r : Runner.run), extra) ->
      match extra with
      | Some (rep, _, _) ->
        Printf.printf "%-18s%10s%14d%14d%10d%10d\n" (lang_tag w)
          (if on then "on" else "off")
          r.Runner.cycles r.Runner.instrs
          (List.length rep.Telemetry.r_samples)
          rep.Telemetry.r_samples_dropped
      | None ->
        Printf.printf "%-18s%10s%14d%14d%10s%10s\n" (lang_tag w)
          (if on then "on" else "off")
          r.Runner.cycles r.Runner.instrs "-" "-")
    rows;
  Printf.printf "\n== Windowed rates (per %d instrs) ==\n" sample_interval;
  List.iter
    (fun ((w : Workloads.Workload.t), _, _, extra) ->
      match extra with
      | None -> ()
      | Some (rep, _, _) ->
        Printf.printf "%s:\n%s" (lang_tag w)
          (Timeseries.summary_text ~window:sample_interval rep))
    rows;
  Printf.printf "\n== Address-space heatmap ==\n";
  Printf.printf "%-18s%8s%12s%12s%10s%18s%14s\n" "Programs" "Pages" "Writes"
    "Checks" "Hits" "MonitoredSilent" "Conservation";
  List.iter
    (fun ((w : Workloads.Workload.t), _, _, extra) ->
      match extra with
      | None -> ()
      | Some (_, (pages, writes, checks, hits, silent), conserved) ->
        Printf.printf "%-18s%8d%12d%12d%10d%18d%14s\n" (lang_tag w) pages
          writes checks hits silent
          (if conserved then "ok" else "VIOLATED"))
    rows

(* --- Plan verification: translation-validation gate (BENCH_verify.json) ---------- *)

(* Two tables, both pure analysis (no simulation).  First, every
   workload's O_full plan is re-proved by the independent checker: one
   row per workload, and the gate line must read [refuted=0 unknown=0]
   on all ten (CI greps for exactly that).  Second, the mutation-kill
   matrix: every operator of {!Verify_mutate.all} is applied to the
   three workloads that jointly exercise them all, and each applied
   mutant must be refuted — a surviving mutant names a missing proof
   obligation.  Everything printed is deterministic, so the
   [verify-smoke] alias diffs -j 1 against -j 2 byte-for-byte. *)
let verify () =
  let rows =
    Pool.map
      (fun (w : Workloads.Workload.t) ->
        let options =
          Runner.options_for w ~opt:Instrument.O_full
            Strategy.Bitmap_inline_registers
        in
        let session = Session.create ~options w.Workloads.Workload.source in
        let rep =
          Verify.run
            ~audit:(Audit.report session.Session.audit)
            ~tags:[ ("workload", w.name) ]
            session.Session.plan
        in
        (w, rep))
      workloads
  in
  Printf.printf "\n== Plan verification (O_full, all obligations) ==\n";
  Printf.printf "%-18s%14s%10s%10s%10s\n" "Programs" "Obligations" "Proved"
    "Refuted" "Unknown";
  List.iter
    (fun ((w : Workloads.Workload.t), (rep : Verify.report)) ->
      Printf.printf "%-18s%14d%10d%10d%10d\n" (lang_tag w)
        (List.length rep.Verify.v_obligations)
        rep.Verify.v_proved rep.Verify.v_refuted rep.Verify.v_unknown)
    rows;
  List.iter
    (fun ((w : Workloads.Workload.t), rep) ->
      Printf.printf "%s: %s\n" w.Workloads.Workload.name
        (Verify.summary_line rep))
    rows;
  (* Mutation kills.  The three workloads jointly make every operator
     applicable: matrix300 (range checks + sym matches), espresso
     (invariant checks, several plans), li (sym-only, no loop plans). *)
  let mutation_names = [ "030.matrix300"; "008.espresso"; "022.li" ] in
  let sessions =
    Pool.map
      (fun name ->
        match Workloads.Spec.find name with
        | None -> failwith ("verify: unknown workload " ^ name)
        | Some w ->
          let options =
            Runner.options_for w ~opt:Instrument.O_full
              Strategy.Bitmap_inline_registers
          in
          (name, Session.create ~options w.Workloads.Workload.source))
      mutation_names
  in
  let cells =
    List.concat_map
      (fun m ->
        List.map
          (fun (name, session) -> (m, name, session))
          sessions)
      Verify_mutate.all
  in
  let kills =
    Pool.map
      (fun ((m : Verify_mutate.mutant), name, (session : Session.t)) ->
        let audit = Some (Audit.report session.Session.audit) in
        match m.Verify_mutate.m_apply session.Session.plan audit with
        | None -> (m.Verify_mutate.m_name, name, `NA)
        | Some (inst', audit') ->
          let rep = Verify.run ?audit:audit' inst' in
          ( m.Verify_mutate.m_name,
            name,
            if rep.Verify.v_refuted > 0 then `Killed else `Survived ))
      cells
  in
  Printf.printf "\n== Mutation kills (operator x workload) ==\n";
  Printf.printf "%-26s%16s%16s%16s\n" "Mutant" "030.matrix300" "008.espresso"
    "022.li";
  let status m name =
    match
      List.find_map
        (fun (m', n, s) ->
          if String.equal m m' && String.equal n name then Some s else None)
        kills
    with
    | Some `Killed -> "killed"
    | Some `Survived -> "SURVIVED"
    | Some `NA | None -> "-"
  in
  List.iter
    (fun (mut : Verify_mutate.mutant) ->
      let m = mut.Verify_mutate.m_name in
      Printf.printf "%-26s%16s%16s%16s\n" m
        (status m "030.matrix300")
        (status m "008.espresso")
        (status m "022.li"))
    Verify_mutate.all;
  let applied =
    List.filter (fun (_, _, s) -> s <> `NA) kills
  in
  let killed =
    List.filter (fun (_, _, s) -> s = `Killed) applied
  in
  Printf.printf "mutation kill rate: %d/%d (%d%%)\n" (List.length killed)
    (List.length applied)
    (if applied = [] then 0
     else 100 * List.length killed / List.length applied)
