(* Domain-based worker pool for the benchmark harness.

   Every experiment in [Tables] is a list of independent cells (one per
   workload row, or per sweep point); [map] shards them across worker
   domains pulling indices from an atomic counter.  The simulator is
   deterministic and the library keeps no global mutable state, so the
   only cross-domain coordination the harness needs is [Runner]'s
   baseline cache (mutex-protected there).

   Results are returned in input order and exceptions are re-raised in
   input order, so output is byte-identical for every [-j] value. *)

(* --- per-domain telemetry sinks -------------------------------------------- *)

(* Each worker domain lazily creates one sink registry (via DLS) and
   registers it here; [Runner.instrumented] absorbs every session's
   report into its domain's sink.  [merged_report] folds the sinks into
   one report — counter addition is commutative, so the merge does not
   depend on which domain ran which cell and the harness output stays
   byte-identical across [-j] values. *)

let sinks_mu = Mutex.create ()
let sinks : Telemetry.t list ref = ref []

let sink_key =
  Domain.DLS.new_key (fun () ->
      let t = Telemetry.create () in
      (* Absorbed sample rings land here too; sized so no experiment's
         samples ever drop — a drop would make the merged multiset
         depend on which domain absorbed which cell. *)
      Telemetry.set_sample_capacity t 65536;
      Mutex.protect sinks_mu (fun () -> sinks := t :: !sinks);
      t)

let telemetry_sink () = Domain.DLS.get sink_key

let merged_report () =
  let regs = Mutex.protect sinks_mu (fun () -> !sinks) in
  Telemetry.merge (List.map Telemetry.report regs)

(* --- audit-summary sink ------------------------------------------------------- *)

(* Each instrumented session's provenance-verdict counts are absorbed
   here; [merged_audit_summary] is a pointwise sum in canonical verdict
   order, so it too is byte-identical for every [-j]. *)

let audit_mu = Mutex.create ()
let audit_summaries : (string * int) list list ref = ref []

let absorb_audit_summary s =
  Mutex.protect audit_mu (fun () -> audit_summaries := s :: !audit_summaries)

let merged_audit_summary () =
  Audit.merge_summaries (Mutex.protect audit_mu (fun () -> !audit_summaries))

(* --- folded-profile sink ----------------------------------------------------- *)

(* Profiled cells absorb their folded call stacks here;
   [merged_profile] is a multiset sum keyed by call path
   ([Profile.merge_folded] — commutative and sorted), so the merged
   flamegraph is byte-identical for every [-j]. *)

let profiles_mu = Mutex.create ()
let profiles : (string * int) list list ref = ref []

let absorb_profile folded =
  Mutex.protect profiles_mu (fun () -> profiles := folded :: !profiles)

let merged_profile () =
  Profile.merge_folded (Mutex.protect profiles_mu (fun () -> !profiles))

(* --- per-domain phase-span tracers --------------------------------------------- *)

(* One tracer per worker domain (same DLS pattern as the telemetry
   sinks); every instrumented cell's pipeline spans land in its
   domain's tracer.  Which spans land where depends on scheduling, but
   the multiset of span names ([Trace.span_set]) does not — the
   [-j]-parity diff rule asserts exactly that. *)

let traces_mu = Mutex.create ()
let traces : Trace.t list ref = ref []

let trace_key =
  Domain.DLS.new_key (fun () ->
      let t = Trace.create ~clock:Unix.gettimeofday () in
      Mutex.protect traces_mu (fun () -> traces := t :: !traces);
      t)

let trace_sink () = Domain.DLS.get trace_key

let tracers () = Mutex.protect traces_mu (fun () -> !traces)

let parse_jobs s =
  match int_of_string_opt (String.trim s) with
  | Some n when n >= 1 -> Some n
  | _ -> None

let env_jobs () =
  match Sys.getenv_opt "DBP_JOBS" with
  | Some s -> (
    match parse_jobs s with
    | Some n -> n
    | None ->
      Printf.eprintf "warning: ignoring invalid DBP_JOBS=%S\n%!" s;
      Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

(* 0 = not yet resolved; the [-j] flag (see [Main]) overrides the
   [DBP_JOBS] environment variable, which overrides
   [Domain.recommended_domain_count]. *)
let requested = ref 0

let set_jobs n = requested := max 1 n

let jobs () =
  if !requested = 0 then requested := env_jobs ();
  !requested

let map : 'a 'b. ('a -> 'b) -> 'a list -> 'b list =
 fun f xs ->
  let n = List.length xs in
  let j = min (jobs ()) n in
  if j <= 1 then List.map f xs
  else begin
    let input = Array.of_list xs in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (* Each slot is written by exactly one domain (the index comes
           from the shared counter), so plain array stores suffice; the
           joins below publish them to the parent. *)
        (results.(i) <-
           Some
             (match f input.(i) with
             | v -> Ok v
             | exception e -> Error (e, Printexc.get_raw_backtrace ())));
        worker ()
      end
    in
    let others = Array.init (j - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join others;
    Array.to_list
      (Array.map
         (function
           | Some (Ok v) -> v
           | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
           | None -> assert false)
         results)
  end

