(* Time travel: run a program with NO watchpoint armed, then answer
   "who wrote this variable, and when?" after the fact.

   The session records the run through a copy-on-write checkpoint
   journal ([~checkpoint_every]); a retroactive query restores the
   nearest checkpoint and re-executes the window under an invisible
   host-side watch, so the replay is byte-identical to the recorded
   run (a determinism guard checks the state digest at every retained
   checkpoint it crosses).

   Run with:  dune exec examples/time_travel.exe *)

open Dbp

let program = {|
int balance;

int deposit(int amount) {
  balance = balance + amount;
  return balance;
}

int withdraw(int amount) {
  balance = balance - amount;
  return balance;
}

int main() {
  int day;
  deposit(100);
  for (day = 0; day < 3; day = day + 1) {
    deposit(10 + day);
    withdraw(5);
  }
  withdraw(50);
  return balance;
}
|}

let () =
  (* No Debugger.watch anywhere: at run time nobody knew balance would
     matter.  [checkpoint_every] is all the foresight required. *)
  let session = Session.create ~checkpoint_every:200 program in
  let exit_code, _output = Session.run session in
  Printf.printf "program exited with %d — no watchpoints were armed\n"
    exit_code;

  let replay = Option.get (Session.replay session) in
  let journal = Replay.journal replay in
  Printf.printf
    "recorded %d instructions; %d checkpoints retained (interval %d)\n\n"
    (Replay.end_insn replay)
    (Journal.length journal)
    (Replay.interval replay);

  let addr = Option.get (Session.resolve_addr session "balance") in

  (* Retroactive query #1: the paper's motivating question, asked too
     late — who performed the final write? *)
  (match Session.last_write session ~addr with
  | None -> print_endline "balance was never written"
  | Some { wr_hit = h; wr_write_type } ->
      Printf.printf
        "last write to balance: insn %d pc 0x%x  %d -> %d  (%s write in %s)\n"
        h.Replay.h_insn h.Replay.h_pc h.Replay.h_old h.Replay.h_new
        (match wr_write_type with
        | Some t -> Write_type.to_string t
        | None -> "untyped")
        (Option.value ~default:"?"
           (Debugger.function_of_pc session h.Replay.h_pc)));

  (* Retroactive query #2: the complete story, oldest first. *)
  let history = Session.write_history session ~lo:addr ~hi:(addr + 4) in
  Printf.printf "\nfull write history (%d writes):\n" (List.length history);
  List.iter
    (fun { Session.wr_hit = h; _ } ->
      Printf.printf "  insn %-6d %4d -> %4d  (%s)\n" h.Replay.h_insn
        h.Replay.h_old h.Replay.h_new
        (Option.value ~default:"?"
           (Debugger.function_of_pc session h.Replay.h_pc)))
    history;

  (* Time travel: park the machine just after the third write and read
     the variable as it was at that moment. *)
  (match history with
  | _ :: _ :: { Session.wr_hit = h; _ } :: _ ->
      let re_executed = Session.time_travel session ~insn:h.Replay.h_insn in
      let value =
        Machine.Memory.read_word
          (Machine.Cpu.mem session.Session.cpu)
          addr
      in
      Printf.printf
        "\ntravelled to insn %d (replayed %d instructions): balance = %d\n"
        h.Replay.h_insn re_executed value
  | _ -> ());

  Printf.printf "%d instructions re-executed across all queries\n"
    (Replay.replayed_insns replay)
