(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (see DESIGN.md section 4 for the experiment
   index).  Run a single experiment by name, or everything:

     dune exec bench/main.exe [table1|table2|figure3|nops|strategies|
                               breakeven|readwrite|ablations|micro|all]
*)

let usage () =
  prerr_endline
    "usage: main.exe [table1|table2|figure3|nops|strategies|breakeven|readwrite|ablations|micro|all]";
  exit 2

let () =
  let which = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  let t0 = Unix.gettimeofday () in
  (match which with
  | "table1" -> Tables.table1 ()
  | "table2" -> Tables.table2 ()
  | "figure3" -> Tables.figure3 ()
  | "nops" -> Tables.nops ()
  | "strategies" -> Tables.strategies ()
  | "breakeven" -> Tables.breakeven ()
  | "readwrite" -> Tables.readwrite ()
  | "ablations" -> Tables.ablations ()
  | "micro" -> Micro.run ()
  | "all" ->
    Tables.table1 ();
    Tables.figure3 ();
    Tables.table2 ();
    Tables.nops ();
    Tables.strategies ();
    Tables.breakeven ();
    Tables.readwrite ();
    Tables.ablations ();
    Micro.run ()
  | _ -> usage ());
  Printf.printf "\n(total bench time: %.1fs)\n" (Unix.gettimeofday () -. t0)
