(* Bechamel microbenchmarks of the MRS runtime data structures
   themselves (host-native performance, complementing the simulated
   tables). *)

open Bechamel
open Toolkit

let segbitmap_ops () =
  let layout = Dbp.Layout.v () in
  let mem = Machine.Memory.create () in
  let bm = Dbp.Segbitmap.create layout mem in
  let region = Dbp.Region.v ~addr:0x40_0000 ~size_bytes:64 () in
  Staged.stage (fun () ->
      Dbp.Segbitmap.add_region bm region;
      ignore (Dbp.Segbitmap.monitored bm 0x40_0020);
      Dbp.Segbitmap.remove_region bm region)

let region_set_ops () =
  let regions =
    List.init 64 (fun i -> Dbp.Region.v ~addr:(0x40_0000 + (i * 64)) ~size_bytes:16 ())
  in
  let set = List.fold_left Dbp.Region.add Dbp.Region.empty regions in
  Staged.stage (fun () ->
      ignore (Dbp.Region.find_containing set 0x40_0808);
      ignore (Dbp.Region.intersects_range set ~lo:0x40_0100 ~hi:0x40_0200))

let simulator_step () =
  let src = "int main() { int i; for (i = 0; i < 1000; i = i + 1) { } return 0; }" in
  let linked = Minic.Compile.compile_and_link src in
  Staged.stage (fun () ->
      let cpu = Machine.Cpu.create linked.image in
      Machine.Cpu.install_basic_services cpu;
      ignore (Machine.Cpu.run cpu))

let run () =
  let tests =
    [
      Test.make ~name:"segbitmap add/query/remove" (segbitmap_ops ());
      Test.make ~name:"region set lookup" (region_set_ops ());
      Test.make ~name:"simulate 1k-iteration loop" (simulator_step ());
    ]
  in
  Printf.printf "\n== Host-native microbenchmarks (bechamel) ==\n";
  let benchmark test =
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 10) () in
    Benchmark.all cfg Instance.[ monotonic_clock ] test
  in
  let analyze results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    Analyze.all ols Instance.monotonic_clock results
  in
  List.iter
    (fun test ->
      let results = analyze (benchmark test) in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "%-34s %12.1f ns/run\n" name est
          | _ -> Printf.printf "%-34s (no estimate)\n" name)
        results)
    tests
