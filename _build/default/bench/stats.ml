(* Small statistics helpers for the harness. *)

let mean xs =
  match xs with
  | [] -> 0.0
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

(* Least-squares fit y = a + b x; returns (a, b, residual stddev). *)
let linreg points =
  let n = float_of_int (List.length points) in
  if n < 2.0 then (0.0, 0.0, 0.0)
  else begin
    let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 points in
    let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 points in
    let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 points in
    let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 points in
    let denom = (n *. sxx) -. (sx *. sx) in
    if abs_float denom < 1e-9 then (0.0, 0.0, 0.0)
    else begin
      let b = ((n *. sxy) -. (sx *. sy)) /. denom in
      let a = (sy -. (b *. sx)) /. n in
      let residuals =
        List.map (fun (x, y) -> y -. (a +. (b *. x))) points
      in
      let var = mean (List.map (fun r -> r *. r) residuals) in
      (a, b, sqrt var)
    end
  end

let pct base v = 100.0 *. (float_of_int v /. float_of_int base -. 1.0)
