bench/main.ml: Array Micro Printf Sys Tables Unix
