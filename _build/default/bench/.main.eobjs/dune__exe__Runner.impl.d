bench/runner.ml: Dbp Hashtbl Instrument Layout Machine Minic Mrs Printf Session Stats Strategy Workloads
