bench/tables.ml: Dbp Hashtbl Instrument List Loopopt Machine Minic Mrs Printf Region Runner Session Sparc Stats Strategy Workloads Write_type
