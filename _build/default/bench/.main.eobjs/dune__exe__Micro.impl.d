bench/micro.ml: Analyze Bechamel Benchmark Dbp Hashtbl Instance List Machine Measure Minic Printf Staged Test Time Toolkit
