bench/main.mli:
