bench/stats.ml: List
