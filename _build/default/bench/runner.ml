open Dbp

(* Run workloads under instrumentation configurations, with caching of
   uninstrumented baselines. *)

let fuel = 200_000_000

type run = {
  cycles : int;
  instrs : int;
  stores : int;
  exit_code : int;
}

let baseline_cache : (string, run) Hashtbl.t = Hashtbl.create 16

let baseline (w : Workloads.Workload.t) : run =
  match Hashtbl.find_opt baseline_cache w.name with
  | Some r -> r
  | None ->
    let linked = Minic.Compile.compile_and_link w.source in
    let cpu = Machine.Cpu.create linked.image in
    Machine.Cpu.install_basic_services cpu;
    let exit_code = Machine.Cpu.run ~fuel cpu in
    (match w.expected_exit with
    | Some e when e <> exit_code ->
      failwith (Printf.sprintf "%s: baseline exit %d <> expected %d" w.name exit_code e)
    | _ -> ());
    let s = Machine.Cpu.stats cpu in
    let r =
      { cycles = s.Machine.Cpu.cycles; instrs = s.Machine.Cpu.instrs;
        stores = s.Machine.Cpu.stores; exit_code }
    in
    Hashtbl.replace baseline_cache w.name r;
    r

let options_for (w : Workloads.Workload.t) ?(opt = Instrument.O0)
    ?(check_aliases = false) ?(nop_padding = 0) ?(seg_bits = Layout.default_seg_bits)
    ?(monitor_reads = false) ?(disabled_guard = true) ?(single_cache = false)
    strategy =
  {
    Instrument.strategy;
    opt;
    check_aliases;
    layout = Layout.v ~seg_bits ();
    fortran_idiom = Workloads.Workload.fortran_idiom w;
    instrument_runtime = true;
    nop_padding;
    exclude = w.library_functions;
    monitor_reads;
    disabled_guard;
    single_cache;
  }

(* Run instrumented; [enable] turns monitoring on with no regions (the
   monitor-miss steady state Table 1 measures). *)
let instrumented ?(enable = true) options (w : Workloads.Workload.t) :
    run * Session.t =
  let session = Session.create ~options w.source in
  if enable then Mrs.enable session.Session.mrs;
  let exit_code, _ = Session.run ~fuel session in
  (match w.expected_exit with
  | Some e when e <> exit_code ->
    failwith
      (Printf.sprintf "%s under %s: exit %d <> expected %d" w.name
         (Strategy.to_string options.Instrument.strategy) exit_code e)
  | _ -> ());
  let s = Session.stats session in
  ( { cycles = s.Machine.Cpu.cycles; instrs = s.Machine.Cpu.instrs;
      stores = s.Machine.Cpu.stores; exit_code },
    session )

let overhead (w : Workloads.Workload.t) run = Stats.pct (baseline w).cycles run.cycles
