(** Address-space layout of the monitored region service structures
    (segment table, bitmap segment arena, shadow stack, hash table).
    All live in the debugged program's simulated address space, as in
    the paper (§2.1). *)

type t = {
  seg_bits : int;       (** log2 of the segment size in bytes; 9 = 128 words *)
  table_base : int;
  segments_base : int;
  shadow_base : int;
  hash_base : int;
  hash_buckets : int;
}

val default_seg_bits : int

val v : ?seg_bits:int -> unit -> t
(** @raise Invalid_argument if [seg_bits] is outside [7, 16]. *)

val segment_words : t -> int
val segment_bitmap_bytes : t -> int

val segment_of : t -> int -> int
(** Segment number of an address ([addr >> seg_bits], unsigned). *)

val n_segments : t -> int
val table_entry_addr : t -> int -> int
val word_in_segment : t -> int -> int
