(* Memory layout of the monitored region service's own data structures.

   The MRS lives in the debugged program's address space (§2.1), in an
   arena far above program data and stack.  The MRS protects itself by
   creating internal monitored regions over these structures. *)

type t = {
  seg_bits : int;          (* log2 of segment size in BYTES; 9 = 128 words *)
  table_base : int;        (* segment table: one word per segment *)
  segments_base : int;     (* bitmap segment arena, bump-allocated *)
  shadow_base : int;       (* shadow stack for %fp / return checking *)
  hash_base : int;         (* hash-table lookup structure (baseline) *)
  hash_buckets : int;
}

let default_seg_bits = 9  (* 512 bytes = 128 words, the paper's choice *)

let v ?(seg_bits = default_seg_bits) () =
  if seg_bits < 7 || seg_bits > 16 then invalid_arg "Layout.v: seg_bits";
  {
    seg_bits;
    table_base = 0x9000_0000;
    segments_base = 0xA000_0000;
    shadow_base = 0xB000_0000;
    hash_base = 0xB800_0000;
    hash_buckets = 1024;
  }

let segment_words t = (1 lsl t.seg_bits) / 4

(* Bitmap segment: one bit per word -> segment_words/8 bytes, rounded to
   a word multiple. *)
let segment_bitmap_bytes t = ((segment_words t + 31) / 32) * 4

let segment_of t addr = Sparc.Word.to_unsigned addr lsr t.seg_bits

let n_segments t = 1 lsl (32 - t.seg_bits)

let table_entry_addr t addr = t.table_base + (4 * segment_of t addr)

(* Word index within its segment. *)
let word_in_segment t addr =
  Sparc.Word.to_unsigned addr lsr 2 land (segment_words t - 1)
