(** Loop check-elimination planning (§4.3).

    Runs the IR pipeline (CFG + asserts, dominators, natural loops,
    SSA, Figure-4 bound propagation) on one function and turns each
    optimizable loop into a {!loop_plan}: which store sites lose their
    in-loop checks, and which invariant/range checks the pre-header
    must run instead.  Loops are processed innermost-first, and a loop
    qualifies only when every entry falls through into its header (so
    pre-header code inserted before the header label runs exactly on
    entry). *)

type check =
  | Inv of { expr : Ir.Bounds.bexpr; width : Sparc.Insn.width; origin : int }
      (** a loop-invariant address: one standard check per entry *)
  | Rng of {
      lo : Ir.Bounds.bexpr;
      hi : Ir.Bounds.bexpr;
      width : Sparc.Insn.width;
      origin : int;
    }  (** a monotonic/bounded address: one range check per entry *)

type loop_plan = {
  loop_id : int;
  fname : string;
  header_item : int;
  checks : check list;
  eliminated : int list;
  alias_pseudos : string list;
      (** memory homes the bound expressions depend on; alias-checked
          runs create internal regions over them for the loop's
          duration (§4.5) *)
  exit_items : int list;
  contains_ret : bool;
}

type stats = {
  loops_seen : int;
  loops_optimized : int;
  invariant_checks : int;
  range_checks : int;
}

type fn_input = {
  fname : string;
  tac : Ir.Tac.instr list;  (** after symbol-table rewriting *)
  items : (int * Sparc.Asm.item) list;
  extra_call_defs : Ir.Tac.name list;
}

val analyze : next_loop_id:(unit -> int) -> fn_input -> loop_plan list * stats
