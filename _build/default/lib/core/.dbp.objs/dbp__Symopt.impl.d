lib/core/symopt.ml: Hashtbl Insn Ir List Option Reg Set Sparc String Symtab
