lib/core/loopopt.mli: Ir Sparc
