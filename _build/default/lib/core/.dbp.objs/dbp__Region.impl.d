lib/core/region.ml: Fmt Int List Map Sparc
