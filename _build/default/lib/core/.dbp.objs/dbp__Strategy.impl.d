lib/core/strategy.ml: Fmt Printf
