lib/core/session.ml: Assembler Cpu Hashtbl Insn Instrument List Machine Minic Mrs Region Sparc Symtab
