lib/core/write_type.ml: Array Asm Fmt Insn List Reg Sparc
