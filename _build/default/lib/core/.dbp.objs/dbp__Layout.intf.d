lib/core/layout.mli:
