lib/core/segbitmap.ml: Hashtbl Layout Machine Memory Option Region Sparc
