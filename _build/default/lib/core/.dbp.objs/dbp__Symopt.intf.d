lib/core/symopt.mli: Ir Set Sparc
