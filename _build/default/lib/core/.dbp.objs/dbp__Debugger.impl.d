lib/core/debugger.ml: Assembler Hashtbl Instrument List Machine Mrs Option Region Session Sparc Symtab
