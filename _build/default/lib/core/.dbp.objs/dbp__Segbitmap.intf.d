lib/core/segbitmap.mli: Layout Machine Region
