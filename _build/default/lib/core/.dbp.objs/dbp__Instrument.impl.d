lib/core/instrument.ml: Array Asm Checkgen Cond Hashtbl Insn Ir Layout List Loopopt Minic Option Printf Reg Sparc Strategy Symopt Traps Write_type
