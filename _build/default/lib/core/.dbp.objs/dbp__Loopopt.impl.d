lib/core/loopopt.ml: Hashtbl Ir List Sparc
