lib/core/mrs.mli: Instrument Ir Machine Region Sparc
