lib/core/write_type.mli: Format Sparc
