lib/core/mrs.ml: Assembler Cond Cpu Hashtbl Insn Instrument Ir Layout List Loopopt Machine Memory Option Reg Region Segbitmap Sparc Strategy String Symtab Traps Word Write_type
