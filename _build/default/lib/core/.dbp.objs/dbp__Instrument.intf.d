lib/core/instrument.mli: Layout Loopopt Minic Sparc Strategy Write_type
