lib/core/session.mli: Hashtbl Instrument Machine Mrs Sparc
