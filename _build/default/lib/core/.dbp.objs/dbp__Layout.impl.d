lib/core/layout.ml: Sparc
