lib/core/traps.mli:
