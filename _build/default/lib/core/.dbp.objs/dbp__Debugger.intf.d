lib/core/debugger.mli: Machine Mrs Region Session
