lib/core/traps.ml:
