lib/core/checkgen.mli: Layout Sparc Strategy Write_type
