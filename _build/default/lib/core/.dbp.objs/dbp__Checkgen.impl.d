lib/core/checkgen.ml: Asm Cond Insn Layout List Printf Reg Sparc Strategy Traps Write_type
