(* Trap numbers used by the monitored region service.  Numbers 0-3 are
   the machine's basic services. *)

let monitor_hit = 16
let loop_entry = 17
let loop_exit = 18
let control_violation = 19
let read_hit = 20
let trap_check = 21
