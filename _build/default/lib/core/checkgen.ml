open Sparc

(* Generation of write-check code (§3).

   Register contract (see DESIGN.md):
   - %g5 target address, %g6 disabled flag, %g7 check-in-progress;
   - %g1-%g4: segment caches (Cache strategies) or lookup temporaries +
     table base (BitmapInlineRegisters);
   - %o3-%o5: dead at every compiled store site, used as inline
     temporaries by the cache test and by the "unreserved" variants
     after spilling them (Bitmap_inline plays by no-reserved-register
     rules: it spills and rematerializes the table base each check). *)

type env = {
  layout : Layout.t;
  strategy : Strategy.t;
  disabled_guard : bool;
      (* ablation: emit checks without the branch-around-when-disabled
         guard of §2.1 *)
  single_cache : bool;
      (* ablation: one shared segment cache instead of §3.1's four
         per-write-type caches *)
  mutable counter : int;
}

let make_env ?(disabled_guard = true) ?(single_cache = false) ~layout ~strategy
    () =
  { layout; strategy; disabled_guard; single_cache; counter = 0 }

let fresh env tag =
  env.counter <- env.counter + 1;
  Printf.sprintf ".Ldbp_%s%d" tag env.counter

let g5 = Reg.g 5
let g6 = Reg.g 6
let g7 = Reg.g 7
let table_base_reg = Reg.g 4

let o3 = Reg.o 3
let o4 = Reg.o 4
let o5 = Reg.o 5

let i insn = Asm.Insn insn

let cache_miss_routine write_type =
  let tag =
    match (write_type : Write_type.t) with
    | Write_type.Bss -> "bss"
    | Write_type.Stack -> "stack"
    | Write_type.Heap -> "heap"
    | Write_type.Bss_var -> "bss_var"
  in
  "__dbp_cache_miss_" ^ tag

(* Recompute the store's effective address into %g5.  The store's
   source registers are still live immediately after it executes, and
   checks are placed after the write (§2.1). *)
let address_items (st : Insn.t) ~word =
  match st with
  | Insn.St { rs1; off; _ } ->
    let base = [ i (Asm.add rs1 off g5) ] in
    if word = 0 then base else base @ [ i (Asm.add g5 (Insn.Imm (4 * word)) g5) ]
  | _ -> invalid_arg "Checkgen.address_items: not a store"

(* The core segmented-bitmap lookup (§3): with the target address in
   %g5 and the segment table base in [base], falls through to a
   monitor-hit trap or branches to [miss_label].  Twelve register
   instructions and two loads on the full path.  The three temporaries
   are reused so three registers suffice. *)
let lookup_body ?(hit_trap = Traps.monitor_hit) env ~base ~t1 ~t2 ~t3 ~miss_label =
  let sb = env.layout.Layout.seg_bits in
  let seg_words = Layout.segment_words env.layout in
  [
    i (Asm.srl g5 (Insn.Imm sb) t1);
    i (Asm.sll t1 (Insn.Imm 2) t1);
    i (Asm.ld base (Insn.Reg t1) t2);
    i (Asm.and_ ~cc:true t2 (Insn.Imm 1) Reg.g0);
    i (Asm.branch Cond.E miss_label);
    i (Asm.srl g5 (Insn.Imm 2) t3);
    i (Asm.and_ t3 (Insn.Imm (seg_words - 1)) t3);
    i (Asm.srl t3 (Insn.Imm 5) t1);
    i (Asm.sll t1 (Insn.Imm 2) t1);
    i (Asm.alu Insn.Andn t2 (Insn.Imm 1) t2);
    i (Asm.ld t2 (Insn.Reg t1) t2);
    i (Asm.and_ t3 (Insn.Imm 31) t3);
    i (Asm.srl t2 (Insn.Reg t3) t2);
    i (Asm.and_ ~cc:true t2 (Insn.Imm 1) Reg.g0);
    i (Asm.branch Cond.E miss_label);
    i (Asm.trap hit_trap);
  ]

let disabled_guard env skip =
  if env.disabled_guard then [ i (Asm.tst g6); i (Asm.branch Cond.Ne skip) ]
  else []

let cache_reg_for env write_type =
  if env.single_cache then Reg.g 1 else Write_type.cache_reg write_type

(* One check body (for one word of the store's footprint). *)
let body_for_word env ~write_type ~skip =
  match env.strategy with
  | Strategy.Nocheck | Strategy.Hardware_watch _ -> []
  | Strategy.Trap_check -> [ i (Asm.trap Traps.trap_check) ]
  | Strategy.Bitmap -> [ i (Asm.call "__dbp_check_word"); i Asm.nop ]
  | Strategy.Hash_table -> [ i (Asm.call "__dbp_hash_check"); i Asm.nop ]
  | Strategy.Bitmap_inline ->
    (* No reserved registers: spill three temporaries below the stack
       pointer and rematerialize the table base. *)
    let reload = fresh env "reload" in
    [
      i (Asm.st o3 Reg.sp (Insn.Imm (-4)));
      i (Asm.st o4 Reg.sp (Insn.Imm (-8)));
      i (Asm.st o5 Reg.sp (Insn.Imm (-12)));
    ]
    @ List.map i (Asm.set env.layout.Layout.table_base o3)
    @ lookup_body env ~base:o3 ~t1:o4 ~t2:o5 ~t3:o3 ~miss_label:reload
    @ [
        Asm.Label reload;
        i (Asm.ld Reg.sp (Insn.Imm (-4)) o3);
        i (Asm.ld Reg.sp (Insn.Imm (-8)) o4);
        i (Asm.ld Reg.sp (Insn.Imm (-12)) o5);
      ]
  | Strategy.Bitmap_inline_registers ->
    lookup_body env ~base:table_base_reg ~t1:(Reg.g 1) ~t2:(Reg.g 2)
      ~t3:(Reg.g 3) ~miss_label:skip
  | Strategy.Cache ->
    let creg = cache_reg_for env write_type in
    [
      i (Asm.srl g5 (Insn.Imm env.layout.Layout.seg_bits) o3);
      i (Asm.cmp o3 (Insn.Reg creg));
      i (Asm.branch Cond.E skip);
      i (Asm.call (cache_miss_routine write_type));
      i Asm.nop;
    ]
  | Strategy.Cache_inline ->
    let creg = cache_reg_for env write_type in
    let full = fresh env "full" in
    let sb = env.layout.Layout.seg_bits in
    let seg_words = Layout.segment_words env.layout in
    [
      i (Asm.srl g5 (Insn.Imm sb) o3);
      i (Asm.cmp o3 (Insn.Reg creg));
      i (Asm.branch Cond.E skip);
      (* Cache miss: consult the unmonitored flag. *)
      i (Asm.sll o3 (Insn.Imm 2) o4);
    ]
    @ List.map i (Asm.set env.layout.Layout.table_base o5)
    @ [
        i (Asm.ld o5 (Insn.Reg o4) o4);
        i (Asm.and_ ~cc:true o4 (Insn.Imm 1) Reg.g0);
        i (Asm.branch Cond.Ne full);
        (* Unmonitored: install in the cache (§3.1's algorithm — the
           cache is only updated on a miss to an unmonitored segment). *)
        i (Asm.mov (Insn.Reg o3) creg);
        i (Asm.ba skip);
        Asm.Label full;
        i (Asm.srl g5 (Insn.Imm 2) o5);
        i (Asm.and_ o5 (Insn.Imm (seg_words - 1)) o5);
        i (Asm.srl o5 (Insn.Imm 5) o3);
        i (Asm.sll o3 (Insn.Imm 2) o3);
        i (Asm.alu Insn.Andn o4 (Insn.Imm 1) o4);
        i (Asm.ld o4 (Insn.Reg o3) o4);
        i (Asm.and_ o5 (Insn.Imm 31) o5);
        i (Asm.srl o4 (Insn.Reg o5) o4);
        i (Asm.and_ ~cc:true o4 (Insn.Imm 1) Reg.g0);
        i (Asm.branch Cond.E skip);
        i (Asm.trap Traps.monitor_hit);
      ]

(* The full check sequence for a store instruction: disabled-flag
   guard, address computation, strategy body — once per word written. *)
let check_items env ~write_type (st : Insn.t) : Asm.item list =
  match env.strategy with
  | Strategy.Nocheck | Strategy.Hardware_watch _ -> []
  | _ ->
    let words =
      match st with
      | Insn.St { width = Insn.Double; _ } -> [ 0; 1 ]
      | Insn.St _ -> [ 0 ]
      | _ -> invalid_arg "Checkgen.check_items: not a store"
    in
    let skip = fresh env "skip" in
    disabled_guard env skip
    @ List.concat_map
        (fun w -> address_items st ~word:w @ body_for_word env ~write_type ~skip)
        words
    @ [ Asm.Label skip ]

(* Read checks (the §5 extension) run BEFORE the load — a read cannot
   corrupt state, and the destination register may alias the base, so
   post-checking would lose the address.  They clobber no compiled-code
   scratch registers: the address lives in %g5 and the lookup happens in
   a called routine's fresh window (for the inline-register strategy the
   reserved %g1-%g3 are used as usual; for the cache strategies the
   cache test sacrifices %g5 and recomputes the address on a miss). *)
let read_check_items env ~write_type (ld : Insn.t) : Asm.item list =
  match env.strategy with
  | Strategy.Nocheck | Strategy.Hardware_watch _ -> []
  | _ ->
    let rs1, off =
      match ld with
      | Insn.Ld { rs1; off; _ } -> (rs1, off)
      | _ -> invalid_arg "Checkgen.read_check_items: not a load"
    in
    let addr = [ i (Asm.add rs1 off g5) ] in
    let skip = fresh env "rskip" in
    let body =
      match env.strategy with
      | Strategy.Nocheck | Strategy.Hardware_watch _ -> []
      | Strategy.Trap_check -> addr @ [ i (Asm.trap Traps.trap_check) ]
      | Strategy.Bitmap | Strategy.Bitmap_inline ->
        addr @ [ i (Asm.call "__dbp_check_word_rd"); i Asm.nop ]
      | Strategy.Bitmap_inline_registers ->
        addr
        @ lookup_body ~hit_trap:Traps.read_hit env ~base:table_base_reg
            ~t1:(Reg.g 1) ~t2:(Reg.g 2) ~t3:(Reg.g 3) ~miss_label:skip
      | Strategy.Hash_table ->
        addr @ [ i (Asm.call "__dbp_hash_check_rd"); i Asm.nop ]
      | Strategy.Cache | Strategy.Cache_inline ->
        let creg = cache_reg_for env write_type in
        addr
        @ [
            i (Asm.srl g5 (Insn.Imm env.layout.Layout.seg_bits) g5);
            i (Asm.cmp g5 (Insn.Reg creg));
            i (Asm.branch Cond.E skip);
          ]
        @ addr
        @ [ i (Asm.call (cache_miss_routine write_type ^ "_rd")); i Asm.nop ]
    in
    disabled_guard env skip @ body @ [ Asm.Label skip ]

(* --- monitor library --------------------------------------------------------- *)

(* Call-based routines, emitted once per program.  Each pushes a
   register window (that cost is the point of the reserved-register
   comparison), raises the check-in-progress flag (§2.1) and uses
   window locals as lookup temporaries. *)

let routine_check_word ?(suffix = "") ?hit_trap env =
  let miss = fresh env "cw_miss" in
  [ Asm.Label ("__dbp_check_word" ^ suffix); i (Asm.save 96); i (Asm.mov (Insn.Imm 1) g7) ]
  @ List.map i (Asm.set env.layout.Layout.table_base (Reg.l 0))
  @ lookup_body ?hit_trap env ~base:(Reg.l 0) ~t1:(Reg.l 1) ~t2:(Reg.l 2) ~t3:(Reg.l 3)
      ~miss_label:miss
  @ [
      Asm.Label miss;
      i (Asm.mov (Insn.Imm 0) g7);
      i Asm.restore;
      i Asm.retl;
    ]

let routine_cache_miss ?(suffix = "") ?hit_trap env write_type =
  let creg = cache_reg_for env write_type in
  let name = cache_miss_routine write_type ^ suffix in
  let full = fresh env "cm_full" in
  let out = fresh env "cm_out" in
  let sb = env.layout.Layout.seg_bits in
  [ Asm.Label name; i (Asm.save 96); i (Asm.mov (Insn.Imm 1) g7) ]
  @ List.map i (Asm.set env.layout.Layout.table_base (Reg.l 0))
  @ [
      i (Asm.srl g5 (Insn.Imm sb) (Reg.l 1));
      i (Asm.sll (Reg.l 1) (Insn.Imm 2) (Reg.l 2));
      i (Asm.ld (Reg.l 0) (Insn.Reg (Reg.l 2)) (Reg.l 3));
      i (Asm.and_ ~cc:true (Reg.l 3) (Insn.Imm 1) Reg.g0);
      i (Asm.branch Cond.Ne full);
      (* Unmonitored segment: update this write type's cache. *)
      i (Asm.mov (Insn.Reg (Reg.l 1)) creg);
      i (Asm.ba out);
      Asm.Label full;
    ]
  @ lookup_body ?hit_trap env ~base:(Reg.l 0) ~t1:(Reg.l 1) ~t2:(Reg.l 2) ~t3:(Reg.l 3)
      ~miss_label:out
  @ [
      Asm.Label out;
      i (Asm.mov (Insn.Imm 0) g7);
      i Asm.restore;
      i Asm.retl;
    ]

(* Hash-table lookup baseline.  Buckets of {lo, hi, next} nodes; a
   multiplicative hash over the word address. *)
let routine_hash_check ?(suffix = "") ?(hit_trap = Traps.monitor_hit) env =
  let loop = fresh env "h_loop" in
  let next = fresh env "h_next" in
  let hit = fresh env "h_hit" in
  let miss = fresh env "h_miss" in
  let buckets = env.layout.Layout.hash_buckets in
  let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2) in
  [ Asm.Label ("__dbp_hash_check" ^ suffix); i (Asm.save 96); i (Asm.mov (Insn.Imm 1) g7) ]
  @ [ i (Asm.srl g5 (Insn.Imm 2) (Reg.l 0)) ]
  @ List.map i (Asm.set 0x9E3779B1 (Reg.l 1))
  @ [
      i (Asm.smul (Reg.l 0) (Insn.Reg (Reg.l 1)) (Reg.l 0));
      i (Asm.srl (Reg.l 0) (Insn.Imm (32 - log2 buckets)) (Reg.l 0));
      i (Asm.sll (Reg.l 0) (Insn.Imm 2) (Reg.l 0));
    ]
  @ List.map i (Asm.set env.layout.Layout.hash_base (Reg.l 1))
  @ [
      i (Asm.ld (Reg.l 1) (Insn.Reg (Reg.l 0)) (Reg.l 2));
      Asm.Label loop;
      i (Asm.tst (Reg.l 2));
      i (Asm.branch Cond.E miss);
      i (Asm.ld (Reg.l 2) (Insn.Imm 0) (Reg.l 3));
      i (Asm.cmp g5 (Insn.Reg (Reg.l 3)));
      i (Asm.branch Cond.Cs next);  (* unsigned g5 < lo *)
      i (Asm.ld (Reg.l 2) (Insn.Imm 4) (Reg.l 3));
      i (Asm.cmp g5 (Insn.Reg (Reg.l 3)));
      i (Asm.branch Cond.Leu hit);  (* unsigned g5 <= hi *)
      Asm.Label next;
      i (Asm.ld (Reg.l 2) (Insn.Imm 8) (Reg.l 2));
      i (Asm.ba loop);
      Asm.Label hit;
      i (Asm.trap hit_trap);
      Asm.Label miss;
      i (Asm.mov (Insn.Imm 0) g7);
      i Asm.restore;
      i Asm.retl;
    ]

(* Shadow-stack routines for the symbol-table optimization's control
   checks (§4.2): frame_enter records (%fp, %i7) after each save;
   frame_exit pops and verifies both before the restore/return, which
   also validates the indirect return jump (the window overlap makes
   the callee's %i7 the caller's %o7). *)
let routine_frame_enter env =
  [
    Asm.Label "__dbp_frame_enter";
  ]
  @ List.map i (Asm.set env.layout.Layout.shadow_base o3)
  @ [
      i (Asm.ld o3 (Insn.Imm 0) o4);
      i (Asm.add o4 (Insn.Imm 8) o4);
      i (Asm.st o4 o3 (Insn.Imm 0));
      i (Asm.add o3 (Insn.Reg o4) o5);
      i (Asm.st Reg.fp o5 (Insn.Imm 0));
      i (Asm.st Reg.i7 o5 (Insn.Imm 4));
      i Asm.retl;
    ]

let routine_frame_exit env =
  let ok1 = fresh env "fx_ok1" in
  let ok2 = fresh env "fx_ok2" in
  [
    Asm.Label "__dbp_frame_exit";
  ]
  @ List.map i (Asm.set env.layout.Layout.shadow_base o3)
  @ [
      i (Asm.ld o3 (Insn.Imm 0) o4);
      i (Asm.add o3 (Insn.Reg o4) o5);
      i (Asm.sub o4 (Insn.Imm 8) o4);
      i (Asm.st o4 o3 (Insn.Imm 0));
      i (Asm.ld o5 (Insn.Imm 0) o4);
      i (Asm.cmp o4 (Insn.Reg Reg.fp));
      i (Asm.branch Cond.E ok1);
      i (Asm.trap Traps.control_violation);
      Asm.Label ok1;
      i (Asm.ld o5 (Insn.Imm 4) o4);
      i (Asm.cmp o4 (Insn.Reg Reg.i7));
      i (Asm.branch Cond.E ok2);
      i (Asm.trap Traps.control_violation);
      Asm.Label ok2;
      i Asm.retl;
    ]

let monitor_library env ~control_checks ~monitor_reads : Asm.item list =
  let strategy_routines =
    match env.strategy with
    | Strategy.Nocheck | Strategy.Bitmap_inline
    | Strategy.Bitmap_inline_registers | Strategy.Cache_inline
    | Strategy.Trap_check | Strategy.Hardware_watch _ ->
      []
    | Strategy.Bitmap -> routine_check_word env
    | Strategy.Hash_table -> routine_hash_check env
    | Strategy.Cache ->
      List.concat_map (routine_cache_miss env) Write_type.all
  in
  (* Read monitoring (§5) uses call-based lookups raising the read-hit
     trap; the segment-cache strategies share the cache registers but
     call read-specific miss handlers. *)
  let read_routines =
    if not monitor_reads then []
    else
      match env.strategy with
      | Strategy.Nocheck | Strategy.Trap_check | Strategy.Hardware_watch _ -> []
      | Strategy.Bitmap | Strategy.Bitmap_inline
      | Strategy.Bitmap_inline_registers ->
        routine_check_word ~suffix:"_rd" ~hit_trap:Traps.read_hit env
      | Strategy.Hash_table ->
        routine_hash_check ~suffix:"_rd" ~hit_trap:Traps.read_hit env
      | Strategy.Cache | Strategy.Cache_inline ->
        List.concat_map
          (routine_cache_miss ~suffix:"_rd" ~hit_trap:Traps.read_hit env)
          Write_type.all
  in
  let control =
    if control_checks then routine_frame_enter env @ routine_frame_exit env
    else []
  in
  strategy_routines @ read_routines @ control
