(** Monitored regions: word-aligned, non-overlapping byte ranges (§2),
    plus the OCaml-side mirror set used for bookkeeping and range
    queries. *)

exception Invalid of string

type kind =
  | User      (** created by the debugger for a break condition *)
  | Internal  (** created by the MRS to protect itself or alias homes *)

type t = private { lo : int; hi : int; kind : kind }
(** Inclusive unsigned byte range; [hi - lo + 1] is a word multiple. *)

val v : ?kind:kind -> addr:int -> size_bytes:int -> unit -> t
(** @raise Invalid on misaligned address or non-positive/odd size. *)

val size_bytes : t -> int
val overlaps : t -> t -> bool
val contains : t -> int -> bool
val equal : t -> t -> bool

type set

val empty : set

val add : set -> t -> set
(** @raise Invalid when the region overlaps an existing one. *)

val remove : set -> t -> set
(** @raise Invalid when no equal region is present. *)

val find_containing : set -> int -> t option

val intersects_range : set -> lo:int -> hi:int -> bool
(** Does any region intersect the inclusive range? — the semantic the
    paper's pre-header range checks need. *)

val iter : (t -> unit) -> set -> unit
val cardinal : set -> int
val elements : set -> t list
val pp : Format.formatter -> t -> unit
