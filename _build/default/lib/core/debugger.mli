(** The debugger front end: source-level break conditions on top of the
    monitored region service (§2), plus the fault-isolation application
    sketched in §5. *)

type watchpoint = {
  wname : string;
  region : Region.t;
  pseudo : string option;
  condition : (int -> bool) option;
}

type event = {
  watch : watchpoint;
  addr : int;
  pc : int;  (** address of the access that hit *)
  in_function : string option;
  access : Mrs.access;  (** write, or read when read monitoring is on *)
  value : int;
      (** the word at [addr] when the hit fired: the just-written value
          (checks run after the store, §2.1) or the value being read *)
}

type breakpoint_event = { fname : string; count : int }

exception No_such_variable of string

type t

val create : Session.t -> t
(** Hooks the session's NotificationCallBack. *)

val watch : t -> ?condition:(int -> bool) -> string -> watchpoint
(** Watch a global variable's whole footprint.  Creates the monitored
    region, arms PreMonitor when the variable's writes were eliminated
    by symbol matching, and enables the MRS.  With [condition], only
    hits whose value satisfies the predicate produce events ("stop when
    x > 100").
    @raise No_such_variable for unknown names. *)

val watch_field : t -> string -> string -> watchpoint
(** [watch_field t "s" "f"] — the paper's motivating condition: stop
    when field [f] of structure [s] is modified. *)

val watch_addr :
  t -> ?condition:(int -> bool) -> name:string -> addr:int -> size_bytes:int ->
  unit -> watchpoint
(** Watch an arbitrary range (heap objects, allocator metadata). *)

val watch_local :
  t -> ?condition:(int -> bool) -> func:string -> var:string -> fp:int ->
  unit -> watchpoint
(** Watch a local variable of a live frame (its [%fp] typically taken
    inside a {!break_at} callback).  Disarm before the frame dies. *)

val break_at :
  t -> string -> (breakpoint_event -> Machine.Cpu.t -> unit) -> unit
(** Control breakpoint on a function entry (simulator breakpoint — the
    baseline mechanism the paper contrasts data breakpoints with).
    @raise No_such_variable for unknown functions. *)

val break_count : t -> string -> int

val disarm : t -> watchpoint -> unit

val restrict_writers : t -> watchpoint -> writers:string list -> unit
(** Fault isolation: any subsequent write to the watchpoint from a
    function outside [writers] is recorded as a violation. *)

val events : t -> event list
val violations : t -> (string * string option) list
val set_on_event : t -> (event -> unit) -> unit

val function_of_pc : Session.t -> int -> string option
