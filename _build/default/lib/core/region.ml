exception Invalid of string

type kind = User | Internal

type t = { lo : int; hi : int; kind : kind }
(* [lo, hi] inclusive byte range; both word-aligned bounds with
   hi = lo + 4k - 1. *)

let v ?(kind = User) ~addr ~size_bytes () =
  if addr land 3 <> 0 then raise (Invalid "region address not word aligned");
  if size_bytes <= 0 || size_bytes land 3 <> 0 then
    raise (Invalid "region size not a positive word multiple");
  { lo = Sparc.Word.to_unsigned addr; hi = Sparc.Word.to_unsigned addr + size_bytes - 1; kind }

let size_bytes t = t.hi - t.lo + 1

let overlaps a b = a.lo <= b.hi && b.lo <= a.hi

let contains t addr =
  let addr = Sparc.Word.to_unsigned addr in
  t.lo <= addr && addr <= t.hi

let equal a b = a.lo = b.lo && a.hi = b.hi && a.kind = b.kind

(* A set of non-overlapping regions, ordered by [lo].  The tree is the
   OCaml-side mirror of the in-memory bitmap; range queries here stand
   in for the paper's three-access range-check structure (§4.3). *)
module Set_ = Map.Make (Int)

type set = t Set_.t

let empty = Set_.empty

let add set region =
  let conflict =
    Set_.exists (fun _ r -> overlaps r region) set
  in
  if conflict then raise (Invalid "regions must not overlap");
  Set_.add region.lo region set

let remove set region =
  match Set_.find_opt region.lo set with
  | Some r when equal r region -> Set_.remove region.lo set
  | Some _ | None -> raise (Invalid "no such region")

let find_containing set addr =
  let addr = Sparc.Word.to_unsigned addr in
  match Set_.find_last_opt (fun lo -> lo <= addr) set with
  | Some (_, r) when contains r addr -> Some r
  | Some _ | None -> None

let intersects_range set ~lo ~hi =
  let lo = Sparc.Word.to_unsigned lo and hi = Sparc.Word.to_unsigned hi in
  (* Any region with r.lo <= hi and r.hi >= lo. *)
  match Set_.find_last_opt (fun rlo -> rlo <= hi) set with
  | Some (_, r) -> r.hi >= lo
  | None -> false

let iter f set = Set_.iter (fun _ r -> f r) set

let cardinal = Set_.cardinal

let elements set = List.map snd (Set_.bindings set)

let pp ppf t =
  Fmt.pf ppf "[0x%08x, 0x%08x]%s" t.lo t.hi
    (match t.kind with User -> "" | Internal -> " (internal)")
