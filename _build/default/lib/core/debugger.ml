open Sparc

(* The debugger front end: maps source-language names from break
   conditions to monitored regions, arms PreMonitor patch lists, and
   interprets notifications (§2).  Also provides the fault-isolation
   application from §5: restricting which code may write a structure. *)

type watchpoint = {
  wname : string;
  region : Region.t;
  pseudo : string option;  (* armed via PreMonitor when matched *)
  condition : (int -> bool) option;
      (* conditional break: only values satisfying the predicate
         produce events ("stop when x > 100") *)
}

type event = {
  watch : watchpoint;
  addr : int;
  pc : int;
  in_function : string option;
  access : Mrs.access;
  value : int;  (* word at [addr] when the hit was reported: the just-
                   written value, or the value being read *)
}

exception No_such_variable of string

let function_of_pc (session : Session.t) pc =
  let image = session.Session.image in
  (* Function labels sort below pc; pick the greatest one. *)
  let best = ref None in
  List.iter
    (fun f ->
      match Assembler.addr_of_label image f with
      | Some a when a <= pc -> (
        match !best with
        | Some (_, ba) when ba >= a -> ()
        | _ -> best := Some (f, a))
      | Some _ | None -> ())
    ("_start" :: session.Session.functions);
  Option.map fst !best

type breakpoint_event = { fname : string; count : int }

type t = {
  session : Session.t;
  mutable watchpoints : watchpoint list;
  mutable events : event list;
  mutable on_event : (event -> unit) option;
  mutable allowed_writers : (string * string list) list;
      (* watchpoint name -> functions allowed to write it *)
  mutable violations : (string * string option) list;
  break_counts : (string, int) Hashtbl.t;
}

let create (session : Session.t) =
  let t =
    {
      session;
      watchpoints = [];
      events = [];
      on_event = None;
      allowed_writers = [];
      violations = [];
      break_counts = Hashtbl.create 8;
    }
  in
  Mrs.set_callback session.Session.mrs (fun (hit : Mrs.hit) ->
      match
        List.find_opt (fun w -> Region.contains w.region hit.Mrs.addr) t.watchpoints
      with
      | Some watch ->
        let value =
          Machine.Memory.read_word
            (Machine.Cpu.mem session.Session.cpu)
            (hit.Mrs.addr land lnot 3)
        in
        let passes =
          match watch.condition with Some p -> p value | None -> true
        in
        if passes then begin
          let in_function = function_of_pc session hit.Mrs.pc in
          let event =
            { watch; addr = hit.Mrs.addr; pc = hit.Mrs.pc; in_function;
              access = hit.Mrs.access; value }
          in
          t.events <- event :: t.events;
          (match List.assoc_opt watch.wname t.allowed_writers with
          | Some allowed ->
            let ok =
              match in_function with Some f -> List.mem f allowed | None -> false
            in
            if not ok then
              t.violations <- (watch.wname, in_function) :: t.violations
          | None -> ());
          match t.on_event with Some f -> f event | None -> ()
        end
      | None -> ());
  t

let arm t (w : watchpoint) =
  Mrs.create_region t.session.Session.mrs w.region;
  (match w.pseudo with
  | Some p -> Mrs.pre_monitor t.session.Session.mrs p
  | None -> ());
  Mrs.enable t.session.Session.mrs;
  t.watchpoints <- w :: t.watchpoints;
  w

let disarm t (w : watchpoint) =
  Mrs.delete_region t.session.Session.mrs w.region;
  (match w.pseudo with
  | Some p -> Mrs.post_monitor t.session.Session.mrs p
  | None -> ());
  t.watchpoints <- List.filter (fun x -> x != w) t.watchpoints;
  if t.watchpoints = [] then Mrs.disable t.session.Session.mrs

(* Watch a global variable (whole footprint). *)
let watch t ?condition name =
  let symtab = t.session.Session.symtab in
  match Symtab.lookup symtab name with
  | Some ({ Symtab.location = Symtab.Absolute a; _ } as e) ->
    let pseudo =
      if List.mem_assoc name t.session.Session.plan.Instrument.sites_by_pseudo
      then Some name
      else None
    in
    arm t
      {
        wname = name;
        region = Region.v ~addr:a ~size_bytes:(Symtab.size_bytes e) ();
        pseudo;
        condition;
      }
  | Some _ | None -> raise (No_such_variable name)

(* Watch one field of a global struct: the motivating query "stop when
   field f of structure s is modified". *)
let watch_field t sname fname =
  let symtab = t.session.Session.symtab in
  match Symtab.lookup symtab sname with
  | Some ({ Symtab.location = Symtab.Absolute a; _ } as e) -> (
    match Symtab.field_offset e fname with
    | Some woff ->
      arm t
        {
          wname = sname ^ "." ^ fname;
          region = Region.v ~addr:(a + (4 * woff)) ~size_bytes:4 ();
          pseudo = None;
          condition = None;
        }
    | None -> raise (No_such_variable (sname ^ "." ^ fname)))
  | Some _ | None -> raise (No_such_variable sname)

(* Watch an arbitrary address range (heap objects, allocator metadata). *)
let watch_addr t ?condition ~name ~addr ~size_bytes () =
  arm t
    { wname = name; region = Region.v ~addr ~size_bytes (); pseudo = None;
      condition }

(* A control breakpoint on function entry, via the simulator's
   breakpoint support (a real debugger would use ptrace; data
   breakpoints are this system's contribution, control breakpoints its
   baseline).  The callback may inspect machine state — e.g. arm a
   watchpoint on a local of the newly entered frame. *)
let break_at t fname callback =
  match Assembler.addr_of_label t.session.Session.image fname with
  | None -> raise (No_such_variable fname)
  | Some addr ->
    Machine.Cpu.add_probe t.session.Session.cpu addr (fun cpu ->
        let count =
          1 + Option.value ~default:0 (Hashtbl.find_opt t.break_counts fname)
        in
        Hashtbl.replace t.break_counts fname count;
        callback { fname; count } cpu)

let break_count t fname =
  Option.value ~default:0 (Hashtbl.find_opt t.break_counts fname)

(* Watch a local variable of the frame whose %fp is given — typically
   from a control-breakpoint callback after the prologue has run, or
   the current frame.  The region lives on the stack, so the caller
   must disarm it before the frame dies (or accept stale hits). *)
let watch_local t ?condition ~func ~var ~fp () =
  let symtab = t.session.Session.symtab in
  match Symtab.lookup symtab ~func var with
  | Some ({ Symtab.location = Symtab.Fp_offset off; _ } as e) ->
    arm t
      {
        wname = func ^ "." ^ var;
        region =
          Region.v
            ~addr:(Sparc.Word.add fp off)
            ~size_bytes:(Symtab.size_bytes e) ();
        pseudo =
          (let p = func ^ "." ^ var in
           if List.mem_assoc p t.session.Session.plan.Instrument.sites_by_pseudo
           then Some p
           else None);
        condition;
      }
  | Some _ | None -> raise (No_such_variable (func ^ "." ^ var))

(* Fault isolation: after this, any write to [w] from a function not in
   [writers] is recorded as a violation. *)
let restrict_writers t (w : watchpoint) ~writers =
  t.allowed_writers <- (w.wname, writers) :: t.allowed_writers

let events t = List.rev t.events
let violations t = List.rev t.violations
let set_on_event t f = t.on_event <- Some f
