(** Trap numbers reserved for the monitored region service. *)

val monitor_hit : int
(** Raised by check code on a monitor hit; target address in [%g5]. *)

val loop_entry : int
(** Pre-header check of a loop-optimized loop; loop id in [%g5]. *)

val loop_exit : int
(** Exit bookkeeping for alias regions; loop id in [%g5]. *)

val control_violation : int
(** Frame-pointer or return-target verification failure (§4.2). *)

val read_hit : int
(** Raised by read-check code on a monitor hit (§5's read-monitoring
    extension); target address in [%g5]. *)

val trap_check : int
(** Raised once per store by the {!Strategy.Trap_check} baseline: the
    address check happens in the "operating system" (the OCaml MRS),
    as in Wahbe's pilot-study trap variant. *)
