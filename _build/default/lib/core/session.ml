open Sparc
open Machine

(* End-to-end orchestration: compile mini-C, instrument, assemble,
   load, install the MRS, and run — with per-site execution counters
   (zero-cost probes) and an optional store oracle for validation. *)

type t = {
  plan : Instrument.t;
  image : Assembler.image;
  symtab : Symtab.t;
  cpu : Cpu.t;
  mrs : Mrs.t;
  site_exec : (int, int ref) Hashtbl.t;
  mutable expected_hits : (int * int) list;  (* oracle: addr, access pc *)
  functions : string list;
}

let create ?config ?(options = Instrument.default_options) ?(protect_mrs = false)
    source =
  let out = Minic.Compile.compile source in
  let plan = Instrument.run options out in
  let image =
    try Assembler.assemble plan.Instrument.program
    with Assembler.Error m ->
      failwith ("Session.create: assembly of instrumented program failed: " ^ m)
  in
  let symtab =
    Symtab.resolve_data_labels
      ~addr_of_label:(Assembler.addr_of_label image)
      out.Minic.Codegen.symtab
  in
  let cpu = Cpu.create ?config image in
  Cpu.install_basic_services cpu;
  let mrs = Mrs.install ~protect_self:protect_mrs ~plan ~image ~symtab cpu in
  let site_exec = Hashtbl.create 256 in
  List.iter
    (fun (s : Instrument.site) ->
      match Assembler.addr_of_label image (Instrument.site_label s.origin) with
      | Some addr ->
        let counter = ref 0 in
        Hashtbl.replace site_exec s.origin counter;
        Cpu.add_probe cpu addr (fun _ -> incr counter)
      | None -> ())
    plan.Instrument.sites;
  {
    plan;
    image;
    symtab;
    cpu;
    mrs;
    site_exec;
    expected_hits = [];
    functions = plan.Instrument.functions;
  }

let site_executions t origin =
  match Hashtbl.find_opt t.site_exec origin with Some r -> !r | None -> 0

let total_site_executions t =
  Hashtbl.fold (fun _ r acc -> acc + !r) t.site_exec 0

let eliminated_site_executions t =
  List.fold_left
    (fun acc (s : Instrument.site) ->
      match s.status with
      | Instrument.Checked -> acc
      | Instrument.Sym_eliminated _ | Instrument.Loop_eliminated _ ->
        acc + site_executions t s.origin)
    0 t.plan.Instrument.sites

let sym_eliminated_site_executions t =
  List.fold_left
    (fun acc (s : Instrument.site) ->
      match s.status with
      | Instrument.Sym_eliminated _ -> acc + site_executions t s.origin
      | Instrument.Checked | Instrument.Loop_eliminated _ -> acc)
    0 t.plan.Instrument.sites

let loop_eliminated_site_executions t =
  List.fold_left
    (fun acc (s : Instrument.site) ->
      match s.status with
      | Instrument.Loop_eliminated _ -> acc + site_executions t s.origin
      | Instrument.Checked | Instrument.Sym_eliminated _ -> acc)
    0 t.plan.Instrument.sites

(* The oracle: record every program store that lands in a user region;
   at the end of the run, every one of them must have produced a
   notification (assuming the debugger armed the regions through the
   proper interface).  Patched-out stores execute inside their patch
   stub, so stub addresses count as program stores too. *)
let install_oracle t =
  let covered addr bytes =
    let rec go a =
      if a >= addr + bytes then false
      else
        match Region.find_containing (Mrs.regions t.mrs) a with
        | Some { Region.kind = Region.User; _ } -> true
        | Some _ | None -> go (a + 1)
    in
    go addr
  in
  let program_store_pcs = Hashtbl.create 256 in
  List.iter
    (fun (s : Instrument.site) ->
      (match Assembler.addr_of_label t.image (Instrument.site_label s.origin) with
      | Some a -> Hashtbl.replace program_store_pcs a ()
      | None -> ());
      match Assembler.addr_of_label t.image (Instrument.patch_label s.origin) with
      | Some a -> Hashtbl.replace program_store_pcs a ()
      | None -> ())
    t.plan.Instrument.sites;
  Cpu.set_store_hook t.cpu (fun cpu ~addr ~width ->
      if Hashtbl.mem program_store_pcs (Cpu.pc cpu) then begin
        if covered addr (Insn.width_bytes width) then
          t.expected_hits <- (addr, Cpu.pc cpu) :: t.expected_hits
      end);
  if t.plan.Instrument.options.monitor_reads then begin
    let program_load_pcs = Hashtbl.create 256 in
    List.iter
      (fun (r : Instrument.read_site) ->
        match
          Assembler.addr_of_label t.image (Instrument.read_site_label r.r_origin)
        with
        | Some a -> Hashtbl.replace program_load_pcs a ()
        | None -> ())
      t.plan.Instrument.read_sites;
    Cpu.set_load_hook t.cpu (fun cpu ~addr ~width ->
        if Hashtbl.mem program_load_pcs (Cpu.pc cpu) then begin
          if covered addr (Insn.width_bytes width) then
            t.expected_hits <- (addr, Cpu.pc cpu) :: t.expected_hits
        end)
  end

let run ?fuel t =
  let code = Cpu.run ?fuel t.cpu in
  (code, Cpu.output t.cpu)

let missed_hits t =
  let actual = (Mrs.counters t.mrs).Mrs.user_hits in
  max 0 (List.length t.expected_hits - actual)

let stats t = Cpu.stats t.cpu
