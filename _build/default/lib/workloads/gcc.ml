(* 001.gcc (1.35) analogue: a miniature compiler front end.

   Tokenizes a synthetic source stream, builds expression trees in
   heap nodes, folds constants, and emits pseudo-instructions into a
   buffer.  The profile is what made gcc hard for the paper's
   optimizations: many short functions, call-heavy control flow,
   pointer-linked structures, and register-declared locals. *)

let source = {|
int seed;
int tokens[600];
int ntokens;
int emit_buf[2048];
int emitted;
int fold_count;

struct node {
  int op;          /* 0 = leaf, 1 = add, 2 = mul, 3 = sub */
  int value;
  struct node *left;
  struct node *right;
};

int next_rand() {
  seed = seed * 1103515245 + 12345;
  return (seed >> 16) & 32767;
}

int tokenize() {
  register int i;
  int n;
  n = 600;
  for (i = 0; i < n; i = i + 1) {
    tokens[i] = next_rand() & 63;
  }
  ntokens = n;
  return n;
}

struct node *mknode_ptr(int op, int value) {
  struct node *n;
  n = malloc(16);
  n->op = op;
  n->value = value;
  n->left = 0;
  n->right = 0;
  return n;
}

/* Recursive-descent-ish tree builder over the token stream. */
struct node *parse_ptr(int lo, int hi) {
  struct node *n;
  struct node *l;
  struct node *r;
  int mid;
  if (hi - lo <= 1) {
    return mknode_ptr(0, tokens[lo]);
  }
  mid = (lo + hi) / 2;
  l = parse_ptr(lo, mid);
  r = parse_ptr(mid, hi);
  n = mknode_ptr(1 + (tokens[lo] & 3) % 3, 0);
  n->left = l;
  n->right = r;
  return n;
}

int is_leaf(struct node *n) {
  if (n->op == 0) { return 1; }
  return 0;
}

/* Constant folding: rewrite interior nodes whose children are leaves. */
int fold(struct node *n) {
  int a;
  int b;
  if (n == 0) { return 0; }
  if (is_leaf(n)) { return n->value; }
  a = fold(n->left);
  b = fold(n->right);
  if (is_leaf(n->left) && is_leaf(n->right)) {
    if (n->op == 1) { n->value = a + b; }
    if (n->op == 2) { n->value = (a * b) & 65535; }
    if (n->op == 3) { n->value = a - b; }
    n->op = 0;
    fold_count = fold_count + 1;
    return n->value;
  }
  if (n->op == 1) { return a + b; }
  if (n->op == 2) { return (a * b) & 65535; }
  return a - b;
}

int emit(int insn) {
  emit_buf[emitted & 2047] = insn;
  emitted = emitted + 1;
  return 0;
}

int codegen(struct node *n) {
  if (n == 0) { return 0; }
  if (is_leaf(n)) {
    emit(n->value | 4096);
    return 1;
  }
  codegen(n->left);
  codegen(n->right);
  emit(n->op);
  return 1;
}

int free_tree(struct node *n) {
  if (n == 0) { return 0; }
  free_tree(n->left);
  free_tree(n->right);
  free(n);
  return 0;
}

int main() {
  struct node *tree;
  int rounds;
  int acc;
  seed = 1234;
  acc = 0;
  for (rounds = 0; rounds < 6; rounds = rounds + 1) {
    tokenize();
    tree = parse_ptr(0, ntokens);
    acc = acc + fold(tree);
    codegen(tree);
    free_tree(tree);
  }
  return (acc + emitted + fold_count) & 255;
}
|}

let workload =
  {
    Workload.name = "001.gcc1.35";
    lang = Workload.C;
    description = "mini compiler: tokenize, tree build, fold, emit; call-heavy";
    source;
    library_functions = [];
    expected_exit = Some 6;
  }
