(* 013.spice2g6 analogue: sparse-matrix circuit solve.

   Sparse matrix-vector products with indirect column indices (whose
   write targets are NOT statically boundable), Gauss-Seidel-style
   relaxation sweeps, and scalar bookkeeping — reproducing spice's
   profile of high symbol elimination but little range elimination. *)

let source = {|
int rowptr[65];
int colidx[640];
int val[640];
int x[64];
int y[64];
int seed;
int nnz;

int next_rand() {
  seed = seed * 1103515245 + 12345;
  return (seed >> 16) & 32767;
}

int build_matrix() {
  int r;
  int k;
  int c;
  nnz = 0;
  for (r = 0; r < 64; r = r + 1) {
    rowptr[r] = nnz;
    for (k = 0; k < 10; k = k + 1) {
      c = next_rand() & 63;
      colidx[nnz] = c;
      val[nnz] = (next_rand() & 255) - 128;
      nnz = nnz + 1;
    }
  }
  rowptr[64] = nnz;
  return nnz;
}

/* y = A * x with indirect accesses. */
int spmv() {
  int r;
  int k;
  int sum;
  for (r = 0; r < 64; r = r + 1) {
    sum = 0;
    for (k = rowptr[r]; k < rowptr[r + 1]; k = k + 1) {
      sum = sum + val[k] * x[colidx[k]];
    }
    y[r] = sum / 16;
  }
  return 0;
}

/* Scatter with indirect targets: unboundable writes. */
int scatter() {
  int k;
  for (k = 0; k < nnz; k = k + 1) {
    x[colidx[k]] = x[colidx[k]] + (val[k] >> 4);
  }
  return 0;
}

int relax() {
  int i;
  for (i = 1; i < 63; i = i + 1) {
    x[i] = (x[i - 1] + x[i] + x[i + 1] + y[i]) / 4;
  }
  return 0;
}

int main() {
  int iter;
  int i;
  int acc;
  seed = 777;
  build_matrix();
  for (i = 0; i < 64; i = i + 1) {
    x[i] = next_rand() & 511;
  }
  for (iter = 0; iter < 12; iter = iter + 1) {
    spmv();
    scatter();
    relax();
  }
  acc = 0;
  for (i = 0; i < 64; i = i + 1) {
    acc = acc + x[i];
  }
  return acc & 255;
}
|}

let workload =
  {
    Workload.name = "013.spice2g6";
    lang = Workload.Fortran;
    description = "sparse matrix solve: indirect indices, relaxation sweeps";
    source;
    library_functions = [];
    expected_exit = Some 2;
  }
