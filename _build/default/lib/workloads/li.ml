(* 022.li analogue: a small Lisp interpreter kernel.

   Cons-cell allocation, recursive list construction and reduction, and
   a mark phase over the heap — the highest dynamic store density in
   the suite (the paper's worst case for checking every write). *)

let source = {|
int seed;
int mark_count;

struct cell {
  int tag;            /* 0 = number, 1 = cons */
  int value;
  struct cell *car;
  struct cell *cdr;
  int mark;
};

int next_rand() {
  seed = seed * 1103515245 + 12345;
  return (seed >> 16) & 32767;
}

struct cell *num_ptr(int v) {
  struct cell *c;
  c = malloc(20);
  c->tag = 0;
  c->value = v;
  c->car = 0;
  c->cdr = 0;
  c->mark = 0;
  return c;
}

struct cell *cons_ptr(struct cell *a, struct cell *d) {
  struct cell *c;
  c = malloc(20);
  c->tag = 1;
  c->value = 0;
  c->car = a;
  c->cdr = d;
  c->mark = 0;
  return c;
}

/* (iota n): build the list (n-1 ... 1 0). */
struct cell *iota_ptr(int n) {
  struct cell *lst;
  int i;
  lst = 0;
  for (i = 0; i < n; i = i + 1) {
    lst = cons_ptr(num_ptr(i), lst);
  }
  return lst;
}

/* (mapcar (lambda (x) (* x x)) lst) */
struct cell *mapsq_ptr(struct cell *lst) {
  if (lst == 0) { return 0; }
  return cons_ptr(num_ptr(lst->car->value * lst->car->value), mapsq_ptr(lst->cdr));
}

int reduce_sum(struct cell *lst) {
  if (lst == 0) { return 0; }
  return lst->car->value + reduce_sum(lst->cdr);
}

int mark(struct cell *c) {
  if (c == 0) { return 0; }
  if (c->mark != 0) { return 0; }
  c->mark = 1;
  mark_count = mark_count + 1;
  if (c->tag == 1) {
    mark(c->car);
    mark(c->cdr);
  }
  return 0;
}

int sweep(struct cell *c) {
  struct cell *next;
  while (c != 0) {
    next = c->cdr;
    if (c->tag == 1) { sweep(c->car); }
    c->mark = 0;
    free(c);
    c = next;
  }
  return 0;
}

int main() {
  struct cell *lst;
  struct cell *sq;
  int rounds;
  int acc;
  seed = 5;
  acc = 0;
  for (rounds = 0; rounds < 10; rounds = rounds + 1) {
    lst = iota_ptr(60 + (next_rand() & 15));
    sq = mapsq_ptr(lst);
    acc = acc + reduce_sum(sq);
    mark(lst);
    mark(sq);
    sweep(sq);
    sweep(lst);
  }
  return (acc + mark_count) & 255;
}
|}

let workload =
  {
    Workload.name = "022.li";
    lang = Workload.C;
    description = "lisp kernel: cons cells, recursion, mark/sweep; store-heavy";
    source;
    library_functions = [];
    expected_exit = Some 54;
  }
