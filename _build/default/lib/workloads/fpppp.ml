(* 042.fpppp analogue: two-electron integral kernel.

   The real fpppp is dominated by enormous straight-line basic blocks
   of floating-point scalar arithmetic; here the same shape in fixed
   point — long unrolled update chains over many distinct scalars, with
   a small array pass between blocks. *)

let source = {|
int table[64];
int seed;

int next_rand() {
  seed = seed * 1103515245 + 12345;
  return (seed >> 16) & 32767;
}

/* One "integral block": a long straight-line chain of scalar updates
   (the compiler keeps each in its frame home, so every statement is a
   matched stack write). */
int block(int x, int y) {
  int t1; int t2; int t3; int t4; int t5; int t6; int t7; int t8;
  int t9; int t10; int t11; int t12;
  t1 = x * 3 + y;
  t2 = t1 * t1 / 64 + x;
  t3 = t2 - y * 7;
  t4 = (t3 << 2) + t1;
  t5 = t4 / 3 + t2;
  t6 = t5 - t4 / 5;
  t7 = (t6 & 8191) * 3;
  t8 = t7 + t3 - t1;
  t9 = t8 / 7 + t6;
  t10 = (t9 ^ t5) & 16383;
  t11 = t10 + t8 / 3;
  t12 = t11 - t9 / 9;
  t1 = t12 + t10 / 2;
  t2 = t1 - t11 / 4;
  t3 = (t2 & 4095) + t12;
  t4 = t3 + t1 / 6;
  t5 = t4 - t2 / 8;
  t6 = (t5 ^ t3) & 8191;
  return t6 + t4 % 97;
}

int main() {
  int i;
  int j;
  int acc;
  int v;
  seed = 271828;
  for (i = 0; i < 64; i = i + 1) {
    table[i] = next_rand();
  }
  acc = 0;
  for (i = 0; i < 40; i = i + 1) {
    for (j = 0; j < 32; j = j + 1) {
      v = block(table[j], table[j + 32]);
      acc = (acc + v) & 1048575;
    }
    table[i & 63] = acc & 32767;
  }
  return acc & 255;
}
|}

let workload =
  {
    Workload.name = "042.fpppp";
    lang = Workload.Fortran;
    description = "integral kernel: long straight-line scalar blocks";
    source;
    library_functions = [];
    expected_exit = Some 167;
  }
