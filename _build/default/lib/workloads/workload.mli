(** Benchmark workload descriptors: mini-C analogues of the paper's
    SPEC'89/'92 programs (see DESIGN.md §2 for the substitution
    argument). *)

type lang = C | Fortran

type t = {
  name : string;
  lang : lang;
  description : string;
  source : string;
  expected_exit : int option;
      (** locked-in result; the harness refuses runs that disagree *)
  library_functions : string list;
      (** functions treated as unpatched library code, like the paper's
          standard libraries (e.g. eqntott's qsort) *)
}

val lang_to_string : lang -> string

val fortran_idiom : t -> bool
(** Whether the BSS-VAR write type applies (§3.1). *)

val pp : Format.formatter -> t -> unit
