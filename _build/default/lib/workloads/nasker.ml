(* 020.nasker analogue: the NAS kernel mix.

   Several distinct loop kernels — MXM-style products, a Cholesky-like
   sweep, a GMTRY-style strided update, an EMIT-style gather — giving
   the blend of monotonic sweeps and guarded scalar loops the paper
   reports for nasker (42.6% symbol + 34.5% range eliminated). *)

let source = {|
int va[512];
int vb[512];
int vc[512];
int mat[256];   /* 16 x 16 */
int seed;

int next_rand() {
  seed = seed * 1103515245 + 12345;
  return (seed >> 16) & 32767;
}

int kernel_mxm() {
  int i;
  int j;
  int k;
  int sum;
  for (i = 0; i < 16; i = i + 1) {
    for (j = 0; j < 16; j = j + 1) {
      sum = 0;
      for (k = 0; k < 16; k = k + 1) {
        sum = sum + mat[i * 16 + k] * mat[k * 16 + j];
      }
      vc[i * 16 + j] = sum & 65535;
    }
  }
  return 0;
}

int kernel_cholesky() {
  int i;
  int j;
  int d;
  for (i = 0; i < 16; i = i + 1) {
    d = mat[i * 16 + i] | 1;
    for (j = i; j < 16; j = j + 1) {
      mat[i * 16 + j] = mat[i * 16 + j] / d + 1;
    }
  }
  return 0;
}

int kernel_gmtry(int stride) {
  int i;
  for (i = 0; i < 512; i = i + stride) {
    va[i] = va[i] + vb[i] * 3;
  }
  return 0;
}

int accbox[2];

/* EMIT-style gather: the running total lives behind a loop-invariant
   pointer, so its per-iteration store is movable to the pre-header. */
int kernel_emit() {
  int i;
  int *ap;
  ap = &accbox[0];
  *ap = 0;
  for (i = 0; i < 512; i = i + 1) {
    *ap = *ap + va[i] * vb[511 - i];
    vc[i] = *ap & 131071;
  }
  return *ap;
}

int kernel_vpenta() {
  int i;
  for (i = 2; i < 510; i = i + 1) {
    va[i] = (va[i - 2] + va[i - 1] * 2 + va[i] * 3 + va[i + 1] * 2 + va[i + 2]) / 9;
  }
  return 0;
}

int main() {
  int i;
  int pass;
  int acc;
  seed = 6502;
  for (i = 0; i < 512; i = i + 1) {
    va[i] = next_rand() & 2047;
    vb[i] = next_rand() & 2047;
  }
  for (i = 0; i < 256; i = i + 1) {
    mat[i] = (next_rand() & 255) + 1;
  }
  acc = 0;
  for (pass = 0; pass < 3; pass = pass + 1) {
    kernel_mxm();
    kernel_cholesky();
    kernel_gmtry(2);
    kernel_gmtry(3);
    acc = acc + kernel_emit();
    kernel_vpenta();
  }
  return acc & 255;
}
|}

let workload =
  {
    Workload.name = "020.nasker";
    lang = Workload.Fortran;
    description = "NAS kernel mix: matmul, cholesky sweep, strided updates";
    source;
    library_functions = [];
    expected_exit = Some 180;
  }
