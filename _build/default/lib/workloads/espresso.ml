(* 008.espresso analogue: two-level logic minimization over cube sets.

   Cubes are bit-vector rows; the inner loops intersect, cover-check and
   merge cubes through pointers, with register-declared counters (the
   real espresso uses C's register class heavily, which the paper notes
   reduces both the need and the opportunity for check elimination). *)

let source = {|
int seed;
int cubes[512];      /* 128 cubes x 4 words */
int cover[512];
int ncubes;

int next_rand() {
  seed = seed * 1103515245 + 12345;
  return (seed >> 16) & 32767;
}

/* Does cube a contain cube b?  Pure register loop over the words. */
int contains(int *a, int *b) {
  register int k;
  register int av;
  register int bv;
  for (k = 0; k < 4; k = k + 1) {
    av = a[k];
    bv = b[k];
    if ((av | bv) != av) { return 0; }
  }
  return 1;
}

int op_stats[2];

/* Intersect cubes a and b into out; returns 1 when non-empty.  The
   operation counter is bumped through a loop-invariant pointer — the
   kind of write the optimizer's invariant-check motion targets. */
int intersect(int *a, int *b, int *out) {
  register int k;
  register int v;
  int nonzero;
  int *ops;
  ops = &op_stats[0];
  nonzero = 0;
  for (k = 0; k < 4; k = k + 1) {
    v = a[k] & b[k];
    out[k] = v;
    *ops = *ops + 1;
    if (v != 0) { nonzero = 1; }
  }
  return nonzero;
}

int popcount(int v) {
  register int c;
  c = 0;
  while (v != 0) {
    c = c + (v & 1);
    v = (v >> 1) & 2147483647;
  }
  return c;
}

int expand_pass() {
  register int i;
  register int j;
  int gained;
  int tmp[4];
  gained = 0;
  for (i = 0; i < ncubes; i = i + 1) {
    for (j = 0; j < ncubes; j = j + 1) {
      if (i != j) {
        if (intersect(&cubes[i * 4], &cubes[j * 4], tmp)) {
          if (contains(&cubes[i * 4], tmp)) {
            gained = gained + popcount(tmp[0] ^ tmp[3]);
          }
        }
      }
    }
  }
  return gained;
}

int irredundant_pass() {
  register int i;
  register int j;
  int kept;
  kept = 0;
  for (i = 0; i < ncubes; i = i + 1) {
    j = 0;
    while (j < ncubes && (j == i || contains(&cubes[j * 4], &cubes[i * 4]) == 0)) {
      j = j + 1;
    }
    if (j == ncubes) {
      cover[kept * 4] = cubes[i * 4];
      cover[kept * 4 + 1] = cubes[i * 4 + 1];
      cover[kept * 4 + 2] = cubes[i * 4 + 2];
      cover[kept * 4 + 3] = cubes[i * 4 + 3];
      kept = kept + 1;
    }
  }
  return kept;
}

int main() {
  int i;
  int passes;
  int score;
  seed = 7;
  ncubes = 44;
  for (i = 0; i < ncubes * 4; i = i + 1) {
    cubes[i] = next_rand() | (next_rand() << 15);
  }
  score = 0;
  for (passes = 0; passes < 2; passes = passes + 1) {
    score = score + expand_pass();
    score = score + irredundant_pass();
  }
  return score & 255;
}
|}

let workload =
  {
    Workload.name = "008.espresso";
    lang = Workload.C;
    description = "cube-set logic minimization; register loops over bit vectors";
    source;
    library_functions = [];
    expected_exit = Some 160;
  }
