(* 015.doduc analogue: Monte-Carlo reactor kernel in fixed point.

   Scalar-dominated nested loops with short array passes; high symbol
   elimination plus a modest range-check contribution, like the paper's
   doduc row (84.7% symbol, 10.6% range). *)

let source = {|
int flux[128];
int absorb[128];
int seed;

int next_rand() {
  seed = seed * 1103515245 + 12345;
  return (seed >> 16) & 32767;
}

/* One particle history: a chain of scalar state updates. */
int history(int energy) {
  int pos;
  int weight;
  int collisions;
  int sigma;
  pos = 0;
  weight = 4096;
  collisions = 0;
  while (weight > 64 && collisions < 40) {
    sigma = 600 + (energy & 255);
    pos = pos + (next_rand() % 17) - 8;
    if (pos < 0) { pos = -pos; }
    if (pos > 127) { pos = 255 - pos; }
    weight = (weight * 939) / 1024;
    energy = energy - (energy / (sigma & 31 | 1));
    if (energy < 0) { energy = -energy; }
    collisions = collisions + 1;
  }
  return collisions;
}

int tally(int n) {
  int i;
  int e;
  int total;
  total = 0;
  for (i = 0; i < n; i = i + 1) {
    e = next_rand();
    total = total + history(e);
  }
  return total;
}

int smooth() {
  int i;
  for (i = 1; i < 127; i = i + 1) {
    flux[i] = (flux[i - 1] + flux[i] * 2 + flux[i + 1]) / 4;
  }
  return 0;
}

int main() {
  int pass;
  int acc;
  int i;
  seed = 31415;
  for (i = 0; i < 128; i = i + 1) {
    flux[i] = next_rand() & 1023;
    absorb[i] = next_rand() & 511;
  }
  acc = 0;
  for (pass = 0; pass < 3; pass = pass + 1) {
    acc = acc + tally(120);
    smooth();
    for (i = 0; i < 128; i = i + 1) {
      absorb[i] = absorb[i] + (flux[i] >> 3);
    }
  }
  return (acc + absorb[64]) & 255;
}
|}

let workload =
  {
    Workload.name = "015.doduc";
    lang = Workload.Fortran;
    description = "Monte-Carlo particle histories; scalar-heavy nested loops";
    source;
    library_functions = [];
    expected_exit = Some 88;
  }
