(* 047.tomcatv analogue: vectorized mesh generation.

   Jacobi-style relaxation over 2D meshes stored row-major, with
   doubly-nested monotonic loops; strong symbol + range elimination as
   in the paper's tomcatv row. *)

let n = 24

let source = Printf.sprintf {|
int xm[%d];
int ym[%d];
int rxm[%d];
int rym[%d];
int seed;

int next_rand() {
  seed = seed * 1103515245 + 12345;
  return (seed >> 16) & 32767;
}

int init() {
  int i;
  for (i = 0; i < %d; i = i + 1) {
    xm[i] = next_rand() & 1023;
    ym[i] = next_rand() & 1023;
  }
  return 0;
}

int residuals() {
  int i;
  int j;
  int p;
  for (i = 1; i < %d; i = i + 1) {
    for (j = 1; j < %d; j = j + 1) {
      p = i * %d + j;
      rxm[p] = xm[p - 1] + xm[p + 1] + xm[p - %d] + xm[p + %d] - 4 * xm[p];
      rym[p] = ym[p - 1] + ym[p + 1] + ym[p - %d] + ym[p + %d] - 4 * ym[p];
    }
  }
  return 0;
}

int update() {
  int i;
  int j;
  int p;
  for (i = 1; i < %d; i = i + 1) {
    for (j = 1; j < %d; j = j + 1) {
      p = i * %d + j;
      xm[p] = xm[p] + rxm[p] / 8;
      ym[p] = ym[p] + rym[p] / 8;
    }
  }
  return 0;
}

int main() {
  int iter;
  int i;
  int acc;
  seed = 42;
  init();
  for (iter = 0; iter < 6; iter = iter + 1) {
    residuals();
    update();
  }
  acc = 0;
  for (i = 0; i < %d; i = i + 1) {
    acc = acc + xm[i] + ym[i];
  }
  return acc & 255;
}
|}
  (n * n) (n * n) (n * n) (n * n)  (* arrays *)
  (n * n)                          (* init bound *)
  (n - 1) (n - 1) n n n n n        (* residuals *)
  (n - 1) (n - 1) n                (* update *)
  (n * n)                          (* checksum *)

let workload =
  {
    Workload.name = "047.tomcatv";
    lang = Workload.Fortran;
    description = "2D mesh relaxation; nested monotonic sweeps";
    source;
    library_functions = [];
    expected_exit = Some 249;
  }
