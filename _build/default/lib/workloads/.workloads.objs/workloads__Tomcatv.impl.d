lib/workloads/tomcatv.ml: Printf Workload
