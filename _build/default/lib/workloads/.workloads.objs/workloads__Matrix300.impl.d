lib/workloads/matrix300.ml: Printf Workload
