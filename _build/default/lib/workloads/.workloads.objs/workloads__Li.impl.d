lib/workloads/li.ml: Workload
