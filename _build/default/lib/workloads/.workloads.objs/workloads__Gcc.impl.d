lib/workloads/gcc.ml: Workload
