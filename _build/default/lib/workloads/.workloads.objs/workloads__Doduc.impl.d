lib/workloads/doduc.ml: Workload
