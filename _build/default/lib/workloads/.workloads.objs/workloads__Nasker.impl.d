lib/workloads/nasker.ml: Workload
