lib/workloads/fpppp.ml: Workload
