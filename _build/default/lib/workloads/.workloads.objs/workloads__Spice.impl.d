lib/workloads/spice.ml: Workload
