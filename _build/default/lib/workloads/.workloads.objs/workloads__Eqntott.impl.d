lib/workloads/eqntott.ml: Workload
