lib/workloads/spec.ml: Doduc Eqntott Espresso Fpppp Gcc Li List Matrix300 Nasker Spice String Tomcatv Workload
