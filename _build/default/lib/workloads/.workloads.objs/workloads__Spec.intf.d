lib/workloads/spec.mli: Workload
