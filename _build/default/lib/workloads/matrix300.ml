(* 030.matrix300 analogue: dense matrix multiply.

   Pure monotonic array sweeps with memory-homed FORTRAN-style loop
   indices; the paper eliminates 100% of its dynamic write checks
   (51.7% symbol + 48.3% range). *)

let n = 22

let source = Printf.sprintf {|
int a[%d];
int b[%d];
int c[%d];

int init() {
  int i;
  int v;
  v = 1;
  for (i = 0; i < %d; i = i + 1) {
    a[i] = v & 1023;
    b[i] = (v * 3) & 1023;
    v = v * 17 + 7;
  }
  return 0;
}

int matmul() {
  int i;
  int j;
  int k;
  int sum;
  for (i = 0; i < %d; i = i + 1) {
    for (j = 0; j < %d; j = j + 1) {
      sum = 0;
      for (k = 0; k < %d; k = k + 1) {
        sum = sum + a[i * %d + k] * b[k * %d + j];
      }
      c[i * %d + j] = sum;
    }
  }
  return 0;
}

int checksum() {
  int i;
  int s;
  s = 0;
  for (i = 0; i < %d; i = i + 1) {
    s = s + c[i];
  }
  return s;
}

int main() {
  init();
  matmul();
  return checksum() & 255;
}
|} (n * n) (n * n) (n * n) (n * n) n n n n n n (n * n)

let workload =
  {
    Workload.name = "030.matrix300";
    lang = Workload.Fortran;
    description = "dense matmul; fully monotonic loop nests";
    source;
    library_functions = [];
    expected_exit = Some 158;
  }
