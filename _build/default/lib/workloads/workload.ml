type lang = C | Fortran

type t = {
  name : string;
  lang : lang;
  description : string;
  source : string;
  expected_exit : int option;
      (* locked-in result for regression checking; [None] until
         calibrated *)
  library_functions : string list;
      (* functions treated as unpatched library code, like the paper's
         standard libraries (e.g. eqntott's qsort) *)
}

let lang_to_string = function C -> "C" | Fortran -> "F"

let fortran_idiom t = t.lang = Fortran

let pp ppf t = Fmt.pf ppf "(%s) %s" (lang_to_string t.lang) t.name
