(** The benchmark registry, in Table 1's order. *)

val all : Workload.t list
val c_programs : Workload.t list
val fortran_programs : Workload.t list
val find : string -> Workload.t option
