(* 023.eqntott analogue: truth-table minterm sorting and comparison.

   The real program spends its time in qsort/cmppt over bit patterns,
   with register-resident loop counters and very few memory writes per
   instruction — the paper's lowest-overhead benchmark. *)

let source = {|
int seed;
int terms[256];

int next_rand() {
  seed = seed * 1103515245 + 12345;
  return (seed >> 16) & 32767;
}

/* Compare two minterms the way cmppt does: bit-pair at a time, all in
   registers. */
int cmppt(int a, int b) {
  register int i;
  register int x;
  register int y;
  i = 0;
  while (i < 16) {
    x = (a >> (i * 2)) & 3;
    y = (b >> (i * 2)) & 3;
    if (x < y) { return -1; }
    if (x > y) { return 1; }
    i = i + 1;
  }
  return 0;
}

/* Shell sort standing in for libc qsort: like the paper's unpatched
   standard library, its stores are not checked (the harness excludes
   this function from instrumentation). */
int qsort_lib(int n) {
  int gap;
  int tmp;
  register int i;
  register int j;
  gap = n / 2;
  while (gap > 0) {
    for (i = gap; i < n; i = i + 1) {
      tmp = terms[i];
      j = i;
      while (j >= gap && cmppt(terms[j - gap], tmp) > 0) {
        terms[j] = terms[j - gap];
        j = j - gap;
      }
      terms[j] = tmp;
    }
    gap = gap / 2;
  }
  return 0;
}

int count_transitions(int n) {
  register int i;
  register int acc;
  acc = 0;
  for (i = 1; i < n; i = i + 1) {
    if (cmppt(terms[i - 1], terms[i]) != 0) {
      acc = acc + 1;
    }
  }
  return acc;
}

int main() {
  int n;
  int i;
  int total;
  n = 256;
  seed = 99;
  total = 0;
  for (i = 0; i < n; i = i + 1) {
    terms[i] = next_rand() * (next_rand() & 15);
  }
  qsort_lib(n);
  total = count_transitions(n);
  /* Verify sortedness the register-heavy way. */
  for (i = 1; i < n; i = i + 1) {
    if (cmppt(terms[i - 1], terms[i]) > 0) {
      return -1;
    }
  }
  return total;
}
|}

let workload =
  {
    Workload.name = "023.eqntott";
    lang = Workload.C;
    description = "minterm sort/compare; register-heavy, few stores";
    source;
    library_functions = [ "qsort_lib" ];
    expected_exit = Some 232;
  }
