(* The benchmark registry: one analogue per SPEC program measured in
   the paper, in Table 1's order. *)

let all : Workload.t list =
  [
    Eqntott.workload;
    Espresso.workload;
    Gcc.workload;
    Li.workload;
    Doduc.workload;
    Fpppp.workload;
    Matrix300.workload;
    Nasker.workload;
    Spice.workload;
    Tomcatv.workload;
  ]

let c_programs = List.filter (fun w -> w.Workload.lang = Workload.C) all

let fortran_programs =
  List.filter (fun w -> w.Workload.lang = Workload.Fortran) all

let find name =
  List.find_opt (fun w -> String.equal w.Workload.name name) all
