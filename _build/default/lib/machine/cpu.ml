open Sparc

type config = {
  cache_size : int;
  line_bytes : int;
  load_cycles : int;
  store_cycles : int;
  miss_penalty : int;
  mul_cycles : int;
  div_cycles : int;
  trap_cycles : int;
  spill_cycles : int;
  nwindows : int;
}

let default_config =
  {
    cache_size = 64 * 1024;
    line_bytes = 32;
    load_cycles = 1;
    store_cycles = 1;
    miss_penalty = 10;
    mul_cycles = 5;
    div_cycles = 20;
    trap_cycles = 50;
    spill_cycles = 40;
    nwindows = 8;
  }

exception Fault of { pc : int; reason : string }

exception Out_of_fuel of { executed : int }

type t = {
  mem : Memory.t;
  cache : Cache.t;
  win : Windows.t;
  mutable pc : int;
  mutable icc : Cond.icc;
  mutable halted : int option;
  mutable ninstrs : int;
  mutable cycles : int;
  mutable nloads : int;
  mutable nstores : int;
  mutable nbranches : int;
  mutable ntraps : int;
  text : Insn.t array;
  text_base : int;
  traps : (int, t -> unit) Hashtbl.t;
  probes : (int, (t -> unit) list ref) Hashtbl.t;
  out : Buffer.t;
  mutable brk : int;
  config : config;
  mutable store_hooks : (t -> addr:int -> width:Insn.width -> unit) list;
  mutable load_hooks : (t -> addr:int -> width:Insn.width -> unit) list;
}

let faultf t fmt =
  Format.kasprintf (fun reason -> raise (Fault { pc = t.pc; reason })) fmt

let create ?(config = default_config) (image : Assembler.image) =
  let mem = Memory.create () in
  List.iter (fun (addr, v) -> Memory.write_word mem addr v) image.data_init;
  let t =
    {
      mem;
      cache = Cache.create ~size_bytes:config.cache_size ~line_bytes:config.line_bytes ();
      win = Windows.create ~nwindows:config.nwindows ();
      pc = image.entry;
      icc = Cond.icc_zero;
      halted = None;
      ninstrs = 0;
      cycles = 0;
      nloads = 0;
      nstores = 0;
      nbranches = 0;
      ntraps = 0;
      text = Array.copy image.text;
      text_base = image.text_base;
      traps = Hashtbl.create 16;
      probes = Hashtbl.create 64;
      out = Buffer.create 256;
      brk = (image.data_limit + 7) land lnot 7;
      config;
      store_hooks = [];
      load_hooks = [];
    }
  in
  Windows.set t.win Reg.sp 0x7FFF_FF00;
  t

let get t r = Windows.get t.win r
let set t r v = Windows.set t.win r v

let operand t = function
  | Insn.Reg r -> get t r
  | Insn.Imm i -> Word.norm i

let on_trap t number handler = Hashtbl.replace t.traps number handler

let add_probe t addr f =
  match Hashtbl.find_opt t.probes addr with
  | Some l -> l := f :: !l
  | None -> Hashtbl.add t.probes addr (ref [ f ])

let output t = Buffer.contents t.out
let print_string t s = Buffer.add_string t.out s

let sbrk t bytes =
  let old = t.brk in
  t.brk <- (t.brk + bytes + 7) land lnot 7;
  old

let text_index t addr =
  let off = addr - t.text_base in
  if off < 0 || off land 3 <> 0 || off / 4 >= Array.length t.text then
    faultf t "pc 0x%x outside text" (Word.to_unsigned addr)
  else off / 4

let fetch_at t addr = t.text.(text_index t addr)

let patch t addr insn = t.text.(text_index t addr) <- insn

let add_cycles t n = t.cycles <- t.cycles + n

let data_access t addr =
  if not (Cache.access t.cache addr) then add_cycles t t.config.miss_penalty

let alu_result t op a b =
  match op with
  | Insn.Add -> Word.add a b
  | Insn.Sub -> Word.sub a b
  | Insn.And -> Word.logand a b
  | Insn.Or -> Word.logor a b
  | Insn.Xor -> Word.logxor a b
  | Insn.Andn -> Word.logand a (Word.lognot b)
  | Insn.Orn -> Word.logor a (Word.lognot b)
  | Insn.Xnor -> Word.lognot (Word.logxor a b)
  | Insn.Sll -> Word.sll a b
  | Insn.Srl -> Word.srl a b
  | Insn.Sra -> Word.sra a b
  | Insn.Smul ->
    add_cycles t (t.config.mul_cycles - 1);
    Word.mul a b
  | Insn.Umul ->
    add_cycles t (t.config.mul_cycles - 1);
    Word.umul a b
  | Insn.Sdiv ->
    add_cycles t (t.config.div_cycles - 1);
    (try Word.sdiv a b with Division_by_zero -> faultf t "division by zero")
  | Insn.Udiv ->
    add_cycles t (t.config.div_cycles - 1);
    (try Word.udiv a b with Division_by_zero -> faultf t "division by zero")

let set_icc t op a b r =
  let n = r < 0 and z = r = 0 in
  let v, c =
    match op with
    | Insn.Add -> (Word.add_overflow a b, Word.add_carry a b)
    | Insn.Sub -> (Word.sub_overflow a b, Word.sub_carry a b)
    | Insn.And | Insn.Or | Insn.Xor | Insn.Andn | Insn.Orn | Insn.Xnor
    | Insn.Sll | Insn.Srl | Insn.Sra | Insn.Smul | Insn.Umul | Insn.Sdiv
    | Insn.Udiv ->
      (false, false)
  in
  t.icc <- { Cond.n; z; v; c }

let resolved t = function
  | Insn.Abs a -> a
  | Insn.Sym s -> faultf t "unresolved label %s at runtime" s

let pair_reg t rd =
  let i = Reg.index rd in
  if i land 1 <> 0 then faultf t "odd register %s in double access" (Reg.to_string rd)
  else Reg.of_index (i + 1)

let double_align t ea = if ea land 7 <> 0 then faultf t "misaligned double access 0x%x" ea

let step t =
  (match Hashtbl.find_opt t.probes t.pc with
  | Some fs -> List.iter (fun f -> f t) (List.rev !fs)
  | None -> ());
  let insn = fetch_at t t.pc in
  if not (Cache.access t.cache t.pc) then add_cycles t t.config.miss_penalty;
  t.ninstrs <- t.ninstrs + 1;
  add_cycles t 1;
  let next = t.pc + 4 in
  (match insn with
  | Insn.Nop -> t.pc <- next
  | Insn.Alu { op; cc; rs1; op2; rd } ->
    let a = get t rs1 and b = operand t op2 in
    let r = alu_result t op a b in
    set t rd r;
    if cc then set_icc t op a b r;
    t.pc <- next
  | Insn.Sethi { imm; rd } ->
    set t rd (Word.norm (imm lsl 10));
    t.pc <- next
  | Insn.Ld { width; signed; rs1; off; rd } ->
    let ea = Word.add (get t rs1) (operand t off) in
    t.nloads <- t.nloads + 1;
    add_cycles t t.config.load_cycles;
    (try
       (match width with
       | Insn.Double ->
         double_align t ea;
         let odd = pair_reg t rd in
         data_access t ea;
         data_access t (ea + 4);
         set t rd (Memory.read_word t.mem ea);
         set t odd (Memory.read_word t.mem (ea + 4))
       | Insn.Word | Insn.Byte | Insn.Half ->
         data_access t ea;
         let v =
           if signed then Memory.read_signed t.mem ea width
           else Memory.read_unsigned t.mem ea width
         in
         set t rd v)
     with Memory.Misaligned { addr; width } ->
       faultf t "misaligned %d-byte load at 0x%x" width (Word.to_unsigned addr));
    List.iter (fun hook -> hook t ~addr:ea ~width) t.load_hooks;
    t.pc <- next
  | Insn.St { width; rd; rs1; off } ->
    let ea = Word.add (get t rs1) (operand t off) in
    t.nstores <- t.nstores + 1;
    add_cycles t t.config.store_cycles;
    (try
       (match width with
       | Insn.Double ->
         double_align t ea;
         let odd = pair_reg t rd in
         data_access t ea;
         data_access t (ea + 4);
         Memory.write_word t.mem ea (get t rd);
         Memory.write_word t.mem (ea + 4) (get t odd)
       | Insn.Word ->
         data_access t ea;
         Memory.write_word t.mem ea (get t rd)
       | Insn.Byte ->
         data_access t ea;
         Memory.write_byte t.mem ea (get t rd land 0xFF)
       | Insn.Half ->
         data_access t ea;
         Memory.write_half t.mem ea (get t rd land 0xFFFF))
     with Memory.Misaligned { addr; width } ->
       faultf t "misaligned %d-byte store at 0x%x" width (Word.to_unsigned addr));
    List.iter (fun hook -> hook t ~addr:ea ~width) t.store_hooks;
    t.pc <- next
  | Insn.Branch { cond; target } ->
    t.nbranches <- t.nbranches + 1;
    if Cond.eval cond t.icc then t.pc <- resolved t target else t.pc <- next
  | Insn.Call { target } ->
    set t Reg.o7 t.pc;
    t.pc <- resolved t target
  | Insn.Jmpl { rs1; off; rd } ->
    let dest = Word.add (get t rs1) (operand t off) in
    if dest land 3 <> 0 then faultf t "misaligned jump to 0x%x" (Word.to_unsigned dest);
    set t rd t.pc;
    t.pc <- dest
  | Insn.Save { rs1; op2; rd } ->
    let v = Word.add (get t rs1) (operand t op2) in
    let spills = Windows.spills t.win in
    Windows.save t.win;
    if Windows.spills t.win > spills then add_cycles t t.config.spill_cycles;
    set t rd v;
    t.pc <- next
  | Insn.Restore { rs1; op2; rd } ->
    let v = Word.add (get t rs1) (operand t op2) in
    let fills = Windows.fills t.win in
    (try Windows.restore t.win
     with Windows.Underflow -> faultf t "register window underflow");
    if Windows.fills t.win > fills then add_cycles t t.config.spill_cycles;
    set t rd v;
    t.pc <- next
  | Insn.Trap { number } ->
    t.ntraps <- t.ntraps + 1;
    add_cycles t t.config.trap_cycles;
    t.pc <- next;
    (match Hashtbl.find_opt t.traps number with
    | Some handler -> handler t
    | None -> faultf t "unhandled trap %d" number))

let halt t code = t.halted <- Some code

let run ?(fuel = 200_000_000) t =
  let rec loop n =
    match t.halted with
    | Some code -> code
    | None ->
      if n >= fuel then raise (Out_of_fuel { executed = n })
      else begin
        step t;
        loop (n + 1)
      end
  in
  loop 0

let install_basic_services t =
  on_trap t 0 (fun t -> halt t (get t (Reg.o 0)));
  on_trap t 1 (fun t -> print_string t (string_of_int (get t (Reg.o 0))));
  on_trap t 2 (fun t ->
      print_string t (String.make 1 (Char.chr (get t (Reg.o 0) land 0xFF))));
  on_trap t 3 (fun t -> set t (Reg.o 0) (sbrk t (get t (Reg.o 0))))

let mem t = t.mem
let config t = t.config

(* Checkpoint/replay support (the paper's §5 mentions checkpointing
   data for replayed execution as a data-breakpoint application). *)
type checkpoint = {
  cp_mem : Memory.t;
  cp_win : Windows.t;
  cp_pc : int;
  cp_icc : Cond.icc;
  cp_halted : int option;
  cp_ninstrs : int;
  cp_cycles : int;
  cp_nloads : int;
  cp_nstores : int;
  cp_nbranches : int;
  cp_ntraps : int;
  cp_text : Insn.t array;
  cp_out : string;
  cp_brk : int;
}

let checkpoint t =
  {
    cp_mem = Memory.snapshot t.mem;
    cp_win = Windows.copy t.win;
    cp_pc = t.pc;
    cp_icc = t.icc;
    cp_halted = t.halted;
    cp_ninstrs = t.ninstrs;
    cp_cycles = t.cycles;
    cp_nloads = t.nloads;
    cp_nstores = t.nstores;
    cp_nbranches = t.nbranches;
    cp_ntraps = t.ntraps;
    cp_text = Array.copy t.text;
    cp_out = Buffer.contents t.out;
    cp_brk = t.brk;
  }

let rollback t cp =
  Memory.restore t.mem cp.cp_mem;
  Windows.restore_from t.win cp.cp_win;
  t.pc <- cp.cp_pc;
  t.icc <- cp.cp_icc;
  t.halted <- cp.cp_halted;
  t.ninstrs <- cp.cp_ninstrs;
  t.cycles <- cp.cp_cycles;
  t.nloads <- cp.cp_nloads;
  t.nstores <- cp.cp_nstores;
  t.nbranches <- cp.cp_nbranches;
  t.ntraps <- cp.cp_ntraps;
  Array.blit cp.cp_text 0 t.text 0 (Array.length t.text);
  Buffer.clear t.out;
  Buffer.add_string t.out cp.cp_out;
  t.brk <- cp.cp_brk;
  (* The cache holds no architectural state; flushing makes the replay
     deterministic from the checkpoint. *)
  Cache.flush t.cache
let pc t = t.pc
let set_pc t pc = t.pc <- pc
let brk t = t.brk
let halted t = t.halted
let set_store_hook t hook = t.store_hooks <- t.store_hooks @ [ hook ]
let set_load_hook t hook = t.load_hooks <- t.load_hooks @ [ hook ]

type stats = {
  instrs : int;
  cycles : int;
  loads : int;
  stores : int;
  branches : int;
  traps : int;
  cache_hits : int;
  cache_misses : int;
  window_spills : int;
}

let stats t =
  {
    instrs = t.ninstrs;
    cycles = t.cycles;
    loads = t.nloads;
    stores = t.nstores;
    branches = t.nbranches;
    traps = t.ntraps;
    cache_hits = Cache.hits t.cache;
    cache_misses = Cache.misses t.cache;
    window_spills = Windows.spills t.win;
  }
