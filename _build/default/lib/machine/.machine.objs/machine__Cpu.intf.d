lib/machine/cpu.mli: Memory Sparc
