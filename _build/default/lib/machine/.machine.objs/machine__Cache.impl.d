lib/machine/cache.ml: Array Sparc Word
