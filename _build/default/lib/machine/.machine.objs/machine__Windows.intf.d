lib/machine/windows.mli: Sparc
