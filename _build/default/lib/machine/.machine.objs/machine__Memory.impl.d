lib/machine/memory.ml: Array Hashtbl Insn Sparc Word
