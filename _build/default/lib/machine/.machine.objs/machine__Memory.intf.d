lib/machine/memory.mli: Sparc
