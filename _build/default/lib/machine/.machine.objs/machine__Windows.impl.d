lib/machine/windows.ml: Array List Reg Sparc Word
