lib/machine/cache.mli:
