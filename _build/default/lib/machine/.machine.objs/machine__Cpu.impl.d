lib/machine/cpu.ml: Array Assembler Buffer Cache Char Cond Format Hashtbl Insn List Memory Reg Sparc String Windows Word
