open Sparc

type t = {
  line_bits : int;
  lines : int;
  tags : int array;
  valid : bool array;
  mutable hits : int;
  mutable misses : int;
}

let create ?(size_bytes = 64 * 1024) ?(line_bytes = 32) () =
  if size_bytes mod line_bytes <> 0 then invalid_arg "Cache.create";
  let lines = size_bytes / line_bytes in
  let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2) in
  {
    line_bits = log2 line_bytes;
    lines;
    tags = Array.make lines 0;
    valid = Array.make lines false;
    hits = 0;
    misses = 0;
  }

let access t addr =
  let line_addr = Word.to_unsigned addr lsr t.line_bits in
  let idx = line_addr mod t.lines in
  if t.valid.(idx) && t.tags.(idx) = line_addr then begin
    t.hits <- t.hits + 1;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    t.valid.(idx) <- true;
    t.tags.(idx) <- line_addr;
    false
  end

let hits t = t.hits
let misses t = t.misses

let reset_counters t =
  t.hits <- 0;
  t.misses <- 0

let flush t =
  Array.fill t.valid 0 t.lines false;
  reset_counters t
