(** The mini-C runtime library (allocator and word-block helpers),
    itself written in mini-C so that its stores are instrumented like
    any other program code. *)

val source : string

val function_names : string list
