type typ =
  | Tint
  | Tptr of typ
  | Tstruct of string
  | Tarray of typ * int

type binop =
  | Add | Sub | Mul | Div | Mod
  | Band | Bor | Bxor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge
  | Land | Lor

type unop = Neg | Lnot | Bnot

type expr =
  | Int of int
  | Var of string
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Call of string * expr list
  | Index of expr * expr
  | Field of expr * string
  | Arrow of expr * string
  | Deref of expr
  | Addr of expr

type stmt =
  | Sexpr of expr
  | Sassign of expr * expr
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sfor of stmt option * expr option * stmt option * stmt list
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sblock of stmt list
  | Sprint_str of string

type vardecl = {
  vname : string;
  vtyp : typ;
  register : bool;
  init : int option;
}

type func = {
  fname : string;
  params : (string * typ) list;
  locals : vardecl list;
  body : stmt list;
}

type struct_decl = { sname : string; sfields : (string * typ) list }

type program = {
  structs : struct_decl list;
  globals : vardecl list;
  funcs : func list;
}

let rec typ_to_string = function
  | Tint -> "int"
  | Tptr t -> typ_to_string t ^ "*"
  | Tstruct s -> "struct " ^ s
  | Tarray (t, n) -> Printf.sprintf "%s[%d]" (typ_to_string t) n

let binop_to_string = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Band -> "&" | Bor -> "|" | Bxor -> "^" | Shl -> "<<" | Shr -> ">>"
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | Land -> "&&" | Lor -> "||"
