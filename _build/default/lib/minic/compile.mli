(** Compilation driver: source → typed AST → assembly → loadable image.

    By default the mini-C runtime library ({!Runtime.source}) is
    appended to every program, providing [malloc]/[free] and the word
    block helpers. *)

type error = { phase : string; message : string }

exception Error of error

val front : ?runtime:bool -> string -> Typecheck.tprogram
(** Parse and typecheck. @raise Error tagged with the failing phase. *)

val compile : ?runtime:bool -> string -> Codegen.output
(** Compile to (unassembled) annotated assembly plus symbol table. *)

type linked = {
  image : Sparc.Assembler.image;
  symtab : Sparc.Symtab.t;  (** data labels resolved to absolute addresses *)
  functions : string list;
}

val link : Codegen.output -> linked

val compile_and_link : ?runtime:bool -> string -> linked

val run :
  ?runtime:bool ->
  ?fuel:int ->
  ?config:Machine.Cpu.config ->
  string ->
  int * string
(** Compile, link and execute uninstrumented; returns (exit code,
    captured output).  Convenience for tests and examples. *)
