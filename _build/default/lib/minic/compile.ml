type error = { phase : string; message : string }

exception Error of error

let fail phase message = raise (Error { phase; message })

let front ?(runtime = true) source =
  let full = if runtime then source ^ "\n" ^ Runtime.source else source in
  let ast =
    try Parser.program_of_string full with
    | Parser.Error { line; message } ->
      fail "parse" (Printf.sprintf "line %d: %s" line message)
    | Lexer.Error { line; message } ->
      fail "lex" (Printf.sprintf "line %d: %s" line message)
  in
  try Typecheck.check_program ast
  with Typecheck.Error m -> fail "typecheck" m

let compile ?runtime source =
  let typed = front ?runtime source in
  try Codegen.gen_program typed with Codegen.Error m -> fail "codegen" m

type linked = {
  image : Sparc.Assembler.image;
  symtab : Sparc.Symtab.t;
  functions : string list;
}

let link (out : Codegen.output) =
  let image =
    try Sparc.Assembler.assemble out.program
    with Sparc.Assembler.Error m -> fail "assemble" m
  in
  let symtab =
    Sparc.Symtab.resolve_data_labels
      ~addr_of_label:(Sparc.Assembler.addr_of_label image)
      out.symtab
  in
  { image; symtab; functions = out.functions }

let compile_and_link ?runtime source = link (compile ?runtime source)

let run ?runtime ?fuel ?config source =
  let { image; _ } = compile_and_link ?runtime source in
  let cpu = Machine.Cpu.create ?config image in
  Machine.Cpu.install_basic_services cpu;
  let code = Machine.Cpu.run ?fuel cpu in
  (code, Machine.Cpu.output cpu)
