(** Naive debug code generation (the "cc -g" the paper assumes).

    Every non-[register] variable has a memory home: parameters are
    stored to their frame slots on entry, locals live at fixed [%fp]
    offsets, and every read/write goes through memory.  Expressions are
    evaluated on a register stack ([%l0]-[%l5], spilling to the frame),
    so the emitted stores have exactly the shapes the paper's analyses
    consume: [st r, [%fp-20]] for scalars, [sethi/or]-based addresses
    for globals, and register-indexed stores for arrays and pointers.
    Registers [%g4]-[%g7] are never used, leaving them free for the
    monitored region service to reserve. *)

exception Error of string

type output = {
  program : Sparc.Asm.program;  (** entry point [_start], which calls [main] *)
  symtab : Sparc.Symtab.t;      (** globals and frame homes of every function *)
  functions : string list;
}

val gen_program : Typecheck.tprogram -> output
