(** Hand-written lexer for mini-C. *)

type token =
  | INT of int
  | IDENT of string
  | STRING of string
  | KW_INT | KW_STRUCT | KW_REGISTER
  | KW_IF | KW_ELSE | KW_WHILE | KW_FOR | KW_RETURN | KW_BREAK | KW_CONTINUE
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA | DOT | ARROW
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMP | PIPE | CARET | SHL | SHR | TILDE
  | EQ | EQEQ | NE | LT | LE | GT | GE
  | AMPAMP | PIPEPIPE | BANG
  | EOF

exception Error of { line : int; message : string }

val tokens : string -> (token * int) list
(** Tokenize a whole source; each token is paired with its 1-based line.
    Supports decimal/hex integers, char literals, strings, [//] and
    [/* */] comments.  The result always ends with [EOF].
    @raise Error on malformed input. *)

val token_to_string : token -> string
