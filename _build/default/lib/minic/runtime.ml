(* The mini-C runtime library.

   Compiled together with every program (unless disabled), so that heap
   management is ordinary instrumented code — its stores are checked and
   its data structures can be monitored, which the fault-isolation
   example relies on.

   Heap block layout: one header word holding the payload size in
   words, followed by the payload.  Free blocks are chained through
   payload word 0; [__free_list] points at the first free block's
   header. *)

let source = {|
int __free_list;

int *malloc(int nbytes) {
  int nwords;
  int *p;
  int *prev;
  int *cur;
  int *tail;
  nwords = (nbytes + 3) / 4;
  if (nwords < 1) { nwords = 1; }
  prev = 0;
  cur = __free_list;
  while (cur != 0) {
    if (cur[0] >= nwords) {
      if (cur[0] >= nwords + 2) {
        /* Split: carve the tail into a new free block. */
        tail = cur + 1 + nwords;
        tail[0] = cur[0] - nwords - 1;
        tail[1] = cur[1];
        cur[0] = nwords;
        if (prev == 0) { __free_list = tail; }
        else { prev[1] = tail; }
      } else {
        if (prev == 0) { __free_list = cur[1]; }
        else { prev[1] = cur[1]; }
      }
      return cur + 1;
    }
    prev = cur;
    cur = cur[1];
  }
  p = sbrk((nwords + 1) * 4);
  p[0] = nwords;
  return p + 1;
}

int free(int *p) {
  int *block;
  if (p == 0) { return 0; }
  block = p - 1;
  block[1] = __free_list;
  __free_list = block;
  return 0;
}

int memset_words(int *dst, int value, int nwords) {
  int i;
  for (i = 0; i < nwords; i = i + 1) {
    dst[i] = value;
  }
  return 0;
}

int memcpy_words(int *dst, int *src, int nwords) {
  int i;
  for (i = 0; i < nwords; i = i + 1) {
    dst[i] = src[i];
  }
  return 0;
}
|}

(* Functions the runtime contributes; used to keep them out of
   per-workload statistics when desired. *)
let function_names = [ "malloc"; "free"; "memset_words"; "memcpy_words" ]
