(** Recursive-descent parser for mini-C.

    Standard C expression precedence; declarations (optionally
    [register]) must precede statements in a function body; [if]/
    [while]/[for] bodies may be blocks or single statements. *)

exception Error of { line : int; message : string }

val program_of_string : string -> Ast.program
(** @raise Error with a 1-based line number on syntax errors. *)
