(** Type checking and elaboration to a typed AST.

    Beyond checking, elaboration resolves struct-field offsets, rewrites
    [p->f] as a field access through a dereference, classifies builtin
    calls, and validates lvalues
    (including the rule that a [register] variable has no address). *)

exception Error of string

type builtin = Print_int | Print_char | Sbrk | Exit

type texpr = { desc : tdesc; typ : Ast.typ }

and tdesc =
  | Tint_lit of int
  | Tvar of string
  | Tbinop of Ast.binop * texpr * texpr
  | Tunop of Ast.unop * texpr
  | Tcall of string * texpr list
  | Tbuiltin of builtin * texpr list
  | Tindex of texpr * texpr
  | Tfield of texpr * string * int  (** base, field name, word offset *)
  | Tderef of texpr
  | Taddr of texpr

type tstmt =
  | TSexpr of texpr
  | TSassign of texpr * texpr
  | TSif of texpr * tstmt list * tstmt list
  | TSwhile of texpr * tstmt list
  | TSfor of tstmt option * texpr option * tstmt option * tstmt list
  | TSreturn of texpr option
  | TSbreak
  | TScontinue
  | TSblock of tstmt list
  | TSprint_str of string

type tfunc = {
  name : string;
  params : (string * Ast.typ) list;
  locals : Ast.vardecl list;
  body : tstmt list;
}

type tprogram = {
  struct_fields : (string * (string * Ast.typ) list) list;
  globals : Ast.vardecl list;
  funcs : tfunc list;
}

val check_program : Ast.program -> tprogram
(** @raise Error on any type or scope violation, including a missing
    [main]. *)
