open Lexer

exception Error of { line : int; message : string }

type t = { mutable toks : (token * int) list }

let errorf t fmt =
  let line = match t.toks with (_, l) :: _ -> l | [] -> 0 in
  Format.kasprintf (fun message -> raise (Error { line; message })) fmt

let peek t = match t.toks with (tok, _) :: _ -> tok | [] -> EOF

let peek2 t = match t.toks with _ :: (tok, _) :: _ -> tok | _ -> EOF

let advance t = match t.toks with _ :: rest -> t.toks <- rest | [] -> ()

let eat t tok =
  if peek t = tok then advance t
  else
    errorf t "expected %s, found %s" (token_to_string tok)
      (token_to_string (peek t))

let ident t =
  match peek t with
  | IDENT s ->
    advance t;
    s
  | tok -> errorf t "expected identifier, found %s" (token_to_string tok)

let int_lit t =
  match peek t with
  | INT v ->
    advance t;
    v
  | MINUS ->
    advance t;
    (match peek t with
    | INT v ->
      advance t;
      -v
    | tok -> errorf t "expected integer, found %s" (token_to_string tok))
  | tok -> errorf t "expected integer, found %s" (token_to_string tok)

(* type := ("int" | "struct" IDENT) "*"* *)
let parse_base_type t =
  match peek t with
  | KW_INT ->
    advance t;
    Ast.Tint
  | KW_STRUCT ->
    advance t;
    Ast.Tstruct (ident t)
  | tok -> errorf t "expected type, found %s" (token_to_string tok)

let parse_stars t base =
  let rec loop ty = if peek t = STAR then (advance t; loop (Ast.Tptr ty)) else ty in
  loop base

let parse_type t = parse_stars t (parse_base_type t)

(* --- expressions --------------------------------------------------------- *)

let rec parse_expr t = parse_lor t

and parse_lor t =
  let rec loop lhs =
    if peek t = PIPEPIPE then begin
      advance t;
      loop (Ast.Binop (Ast.Lor, lhs, parse_land t))
    end
    else lhs
  in
  loop (parse_land t)

and parse_land t =
  let rec loop lhs =
    if peek t = AMPAMP then begin
      advance t;
      loop (Ast.Binop (Ast.Land, lhs, parse_bor t))
    end
    else lhs
  in
  loop (parse_bor t)

and parse_bor t =
  let rec loop lhs =
    if peek t = PIPE then begin
      advance t;
      loop (Ast.Binop (Ast.Bor, lhs, parse_bxor t))
    end
    else lhs
  in
  loop (parse_bxor t)

and parse_bxor t =
  let rec loop lhs =
    if peek t = CARET then begin
      advance t;
      loop (Ast.Binop (Ast.Bxor, lhs, parse_band t))
    end
    else lhs
  in
  loop (parse_band t)

and parse_band t =
  let rec loop lhs =
    if peek t = AMP then begin
      advance t;
      loop (Ast.Binop (Ast.Band, lhs, parse_equality t))
    end
    else lhs
  in
  loop (parse_equality t)

and parse_equality t =
  let rec loop lhs =
    match peek t with
    | EQEQ ->
      advance t;
      loop (Ast.Binop (Ast.Eq, lhs, parse_relational t))
    | NE ->
      advance t;
      loop (Ast.Binop (Ast.Ne, lhs, parse_relational t))
    | _ -> lhs
  in
  loop (parse_relational t)

and parse_relational t =
  let rec loop lhs =
    match peek t with
    | LT -> advance t; loop (Ast.Binop (Ast.Lt, lhs, parse_shift t))
    | LE -> advance t; loop (Ast.Binop (Ast.Le, lhs, parse_shift t))
    | GT -> advance t; loop (Ast.Binop (Ast.Gt, lhs, parse_shift t))
    | GE -> advance t; loop (Ast.Binop (Ast.Ge, lhs, parse_shift t))
    | _ -> lhs
  in
  loop (parse_shift t)

and parse_shift t =
  let rec loop lhs =
    match peek t with
    | SHL -> advance t; loop (Ast.Binop (Ast.Shl, lhs, parse_additive t))
    | SHR -> advance t; loop (Ast.Binop (Ast.Shr, lhs, parse_additive t))
    | _ -> lhs
  in
  loop (parse_additive t)

and parse_additive t =
  let rec loop lhs =
    match peek t with
    | PLUS -> advance t; loop (Ast.Binop (Ast.Add, lhs, parse_multiplicative t))
    | MINUS -> advance t; loop (Ast.Binop (Ast.Sub, lhs, parse_multiplicative t))
    | _ -> lhs
  in
  loop (parse_multiplicative t)

and parse_multiplicative t =
  let rec loop lhs =
    match peek t with
    | STAR -> advance t; loop (Ast.Binop (Ast.Mul, lhs, parse_unary t))
    | SLASH -> advance t; loop (Ast.Binop (Ast.Div, lhs, parse_unary t))
    | PERCENT -> advance t; loop (Ast.Binop (Ast.Mod, lhs, parse_unary t))
    | _ -> lhs
  in
  loop (parse_unary t)

and parse_unary t =
  match peek t with
  | MINUS ->
    advance t;
    Ast.Unop (Ast.Neg, parse_unary t)
  | BANG ->
    advance t;
    Ast.Unop (Ast.Lnot, parse_unary t)
  | TILDE ->
    advance t;
    Ast.Unop (Ast.Bnot, parse_unary t)
  | STAR ->
    advance t;
    Ast.Deref (parse_unary t)
  | AMP ->
    advance t;
    Ast.Addr (parse_unary t)
  | _ -> parse_postfix t

and parse_postfix t =
  let rec loop e =
    match peek t with
    | LBRACKET ->
      advance t;
      let idx = parse_expr t in
      eat t RBRACKET;
      loop (Ast.Index (e, idx))
    | DOT ->
      advance t;
      loop (Ast.Field (e, ident t))
    | ARROW ->
      advance t;
      loop (Ast.Arrow (e, ident t))
    | _ -> e
  in
  loop (parse_primary t)

and parse_primary t =
  match peek t with
  | INT v ->
    advance t;
    Ast.Int v
  | LPAREN ->
    advance t;
    let e = parse_expr t in
    eat t RPAREN;
    e
  | IDENT name when peek2 t = LPAREN ->
    advance t;
    advance t;
    let rec args acc =
      if peek t = RPAREN then List.rev acc
      else begin
        let a = parse_expr t in
        if peek t = COMMA then begin
          advance t;
          args (a :: acc)
        end
        else List.rev (a :: acc)
      end
    in
    let actuals = args [] in
    eat t RPAREN;
    Ast.Call (name, actuals)
  | IDENT name ->
    advance t;
    Ast.Var name
  | tok -> errorf t "expected expression, found %s" (token_to_string tok)

(* --- statements ----------------------------------------------------------- *)

let rec parse_stmt t : Ast.stmt =
  match peek t with
  | SEMI ->
    advance t;
    Ast.Sblock []
  | LBRACE -> Ast.Sblock (parse_block t)
  | KW_IF ->
    advance t;
    eat t LPAREN;
    let cond = parse_expr t in
    eat t RPAREN;
    let then_ = parse_block_or_stmt t in
    let else_ =
      if peek t = KW_ELSE then begin
        advance t;
        parse_block_or_stmt t
      end
      else []
    in
    Ast.Sif (cond, then_, else_)
  | KW_WHILE ->
    advance t;
    eat t LPAREN;
    let cond = parse_expr t in
    eat t RPAREN;
    Ast.Swhile (cond, parse_block_or_stmt t)
  | KW_FOR ->
    advance t;
    eat t LPAREN;
    let init = if peek t = SEMI then None else Some (parse_simple t) in
    eat t SEMI;
    let cond = if peek t = SEMI then None else Some (parse_expr t) in
    eat t SEMI;
    let step = if peek t = RPAREN then None else Some (parse_simple t) in
    eat t RPAREN;
    Ast.Sfor (init, cond, step, parse_block_or_stmt t)
  | KW_RETURN ->
    advance t;
    if peek t = SEMI then begin
      advance t;
      Ast.Sreturn None
    end
    else begin
      let e = parse_expr t in
      eat t SEMI;
      Ast.Sreturn (Some e)
    end
  | KW_BREAK ->
    advance t;
    eat t SEMI;
    Ast.Sbreak
  | KW_CONTINUE ->
    advance t;
    eat t SEMI;
    Ast.Scontinue
  | IDENT "print_str" when peek2 t = LPAREN ->
    advance t;
    advance t;
    let s =
      match peek t with
      | STRING s ->
        advance t;
        s
      | tok -> errorf t "print_str expects a string literal, found %s" (token_to_string tok)
    in
    eat t RPAREN;
    eat t SEMI;
    Ast.Sprint_str s
  | _ ->
    let s = parse_simple t in
    eat t SEMI;
    s

and parse_simple t : Ast.stmt =
  let e = parse_expr t in
  if peek t = EQ then begin
    advance t;
    let rhs = parse_expr t in
    Ast.Sassign (e, rhs)
  end
  else Ast.Sexpr e

and parse_block t =
  eat t LBRACE;
  let rec loop acc =
    if peek t = RBRACE then begin
      advance t;
      List.rev acc
    end
    else loop (parse_stmt t :: acc)
  in
  loop []

and parse_block_or_stmt t =
  if peek t = LBRACE then parse_block t else [ parse_stmt t ]

(* --- declarations ----------------------------------------------------------- *)

let parse_vardecl t ~register : Ast.vardecl =
  let base = parse_type t in
  let name = ident t in
  let typ =
    if peek t = LBRACKET then begin
      advance t;
      let n = int_lit t in
      eat t RBRACKET;
      Ast.Tarray (base, n)
    end
    else base
  in
  let init =
    if peek t = EQ then begin
      advance t;
      Some (int_lit t)
    end
    else None
  in
  eat t SEMI;
  { Ast.vname = name; vtyp = typ; register; init }

let parse_local_decls t =
  let rec loop acc =
    match peek t with
    | KW_REGISTER ->
      advance t;
      loop (parse_vardecl t ~register:true :: acc)
    | KW_INT | KW_STRUCT -> loop (parse_vardecl t ~register:false :: acc)
    | _ -> List.rev acc
  in
  loop []

let parse_func t ~ret_typ:_ ~name : Ast.func =
  eat t LPAREN;
  let rec params acc =
    if peek t = RPAREN then List.rev acc
    else begin
      let typ = parse_type t in
      let pname = ident t in
      if peek t = COMMA then begin
        advance t;
        params ((pname, typ) :: acc)
      end
      else List.rev ((pname, typ) :: acc)
    end
  in
  let formals = params [] in
  eat t RPAREN;
  eat t LBRACE;
  let locals = parse_local_decls t in
  let rec body acc =
    if peek t = RBRACE then begin
      advance t;
      List.rev acc
    end
    else body (parse_stmt t :: acc)
  in
  { Ast.fname = name; params = formals; locals; body = body [] }

let parse_struct_decl t : Ast.struct_decl =
  eat t KW_STRUCT;
  let name = ident t in
  eat t LBRACE;
  let rec fields acc =
    if peek t = RBRACE then begin
      advance t;
      List.rev acc
    end
    else begin
      (* Every field is one word: int or pointer. *)
      let field_type = parse_type t in
      let f = ident t in
      eat t SEMI;
      fields ((f, field_type) :: acc)
    end
  in
  let sfields = fields [] in
  eat t SEMI;
  { Ast.sname = name; sfields }

let program_of_string src : Ast.program =
  let t = { toks = Lexer.tokens src } in
  let structs = ref [] in
  let globals = ref [] in
  let funcs = ref [] in
  let rec loop () =
    match peek t with
    | EOF -> ()
    | KW_STRUCT when peek2 t <> EOF && (match t.toks with
        | _ :: (IDENT _, _) :: (LBRACE, _) :: _ -> true
        | _ -> false) ->
      structs := parse_struct_decl t :: !structs;
      loop ()
    | KW_INT | KW_STRUCT ->
      (* Global variable or function: decided by the token after the name. *)
      let typ = parse_type t in
      let name = ident t in
      if peek t = LPAREN then begin
        funcs := parse_func t ~ret_typ:typ ~name :: !funcs;
        loop ()
      end
      else begin
        let vtyp =
          if peek t = LBRACKET then begin
            advance t;
            let n = int_lit t in
            eat t RBRACKET;
            Ast.Tarray (typ, n)
          end
          else typ
        in
        let init =
          if peek t = EQ then begin
            advance t;
            Some (int_lit t)
          end
          else None
        in
        eat t SEMI;
        globals := { Ast.vname = name; vtyp; register = false; init } :: !globals;
        loop ()
      end
    | KW_REGISTER -> errorf t "register storage class is not allowed at top level"
    | tok -> errorf t "expected declaration, found %s" (token_to_string tok)
  in
  (try loop ()
   with Lexer.Error { line; message } -> raise (Error { line; message }));
  { Ast.structs = List.rev !structs; globals = List.rev !globals; funcs = List.rev !funcs }
