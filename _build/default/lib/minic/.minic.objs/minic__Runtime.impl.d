lib/minic/runtime.ml:
