lib/minic/typecheck.ml: Ast Format Hashtbl List Option String
