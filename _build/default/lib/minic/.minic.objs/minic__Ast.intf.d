lib/minic/ast.mli:
