lib/minic/runtime.mli:
