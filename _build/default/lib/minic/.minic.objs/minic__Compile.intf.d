lib/minic/compile.mli: Codegen Machine Sparc Typecheck
