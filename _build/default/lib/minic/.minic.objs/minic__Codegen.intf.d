lib/minic/codegen.mli: Sparc Typecheck
