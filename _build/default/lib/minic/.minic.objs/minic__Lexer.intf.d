lib/minic/lexer.mli:
