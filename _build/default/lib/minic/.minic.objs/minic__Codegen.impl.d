lib/minic/codegen.ml: Array Asm Ast Char Cond Format Hashtbl Insn List Option Printf Reg Sparc String Symtab Typecheck
