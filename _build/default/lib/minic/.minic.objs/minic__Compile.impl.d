lib/minic/compile.ml: Codegen Lexer Machine Parser Printf Runtime Sparc Typecheck
