open Sparc
open Typecheck

exception Error of string

let errorf fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

(* Register conventions of the naive debug compiler:
   - %l0-%l5: expression evaluation stack (spills past six deep)
   - %l6,%l7: the first two [register]-class locals
   - %o0-%o5: outgoing arguments, loaded immediately before each call
   - %o3-%o5: transient scratch (dead at every store site)
   - %g1-%g7: never touched — all seven globals are available for the
     monitored region service to reserve (caches, flags, target address) *)

let expr_stack_regs = [| Reg.l 0; Reg.l 1; Reg.l 2; Reg.l 3; Reg.l 4; Reg.l 5 |]
let register_var_regs = [ Reg.l 6; Reg.l 7 ]
let scratch1 = Reg.o 3
let scratch2 = Reg.o 4
let scratch3 = Reg.o 5

let max_spill = 32

type loc = Lreg of Reg.t | Lspill of int  (* fp offset *)

type gctx = {
  structs : (string * (string * Ast.typ) list) list;
  global_types : (string, Ast.typ) Hashtbl.t;
  mutable label_counter : int;
}

type fctx = {
  g : gctx;
  fname : string;
  offsets : (string, int) Hashtbl.t;
  regvars : (string, Reg.t) Hashtbl.t;
  local_types : (string, Ast.typ) Hashtbl.t;
  spill_base : int;
  frame : int;
  mutable depth : int;
  mutable code : Asm.item list;  (* reversed *)
  mutable loops : (string * string) list;  (* break, continue *)
}

let emit f item = f.code <- item :: f.code
let emit_insn f insn = emit f (Asm.Insn insn)
let emit_insns f insns = List.iter (emit_insn f) insns

let fresh_label f tag =
  f.g.label_counter <- f.g.label_counter + 1;
  Printf.sprintf ".L%s_%s%d" f.fname tag f.g.label_counter

(* --- expression stack --------------------------------------------------- *)

let loc_of_depth f d =
  if d < Array.length expr_stack_regs then Lreg expr_stack_regs.(d)
  else begin
    let slot = d - Array.length expr_stack_regs in
    if slot >= max_spill then errorf "%s: expression too deep" f.fname;
    Lspill (f.spill_base - (4 * slot))
  end

let push f =
  let loc = loc_of_depth f f.depth in
  f.depth <- f.depth + 1;
  loc

let pop f =
  if f.depth = 0 then errorf "%s: internal stack underflow" f.fname;
  f.depth <- f.depth - 1;
  loc_of_depth f f.depth

(* Materialize a stack location into a register, loading spills into the
   given scratch register. *)
let into_reg f loc scratch =
  match loc with
  | Lreg r -> r
  | Lspill off ->
    emit_insn f (Asm.ld Reg.fp (Insn.Imm off) scratch);
    scratch

(* Run [gen] with a register destination, storing to the spill slot
   afterwards when the target is spilled. *)
let with_dest f loc gen =
  match loc with
  | Lreg r -> gen r
  | Lspill off ->
    gen scratch1;
    emit_insn f (Asm.st scratch1 Reg.fp (Insn.Imm off))

(* --- types and sizes ------------------------------------------------------ *)

let struct_size g name =
  match List.assoc_opt name g.structs with
  | Some fields -> List.length fields
  | None -> errorf "unknown struct %s" name

let rec size_words g = function
  | Ast.Tint | Ast.Tptr _ -> 1
  | Ast.Tstruct s -> struct_size g s
  | Ast.Tarray (t, n) -> n * size_words g t

let elem_size_bytes g = function
  | Ast.Tptr t | Ast.Tarray (t, _) -> 4 * size_words g t
  | Ast.Tint | Ast.Tstruct _ -> 4

let is_ptr = function
  | Ast.Tptr _ | Ast.Tarray _ -> true
  | Ast.Tint | Ast.Tstruct _ -> false

let var_kind f name =
  if Hashtbl.mem f.regvars name then `Register (Hashtbl.find f.regvars name)
  else if Hashtbl.mem f.offsets name then `Stack (Hashtbl.find f.offsets name)
  else if Hashtbl.mem f.g.global_types name then `Global
  else errorf "%s: unknown variable %s" f.fname name

(* Multiply the value in [r] by constant [n] in place. *)
let scale_reg f r n =
  if n = 1 then ()
  else begin
    let rec log2 v = if v <= 1 then 0 else 1 + log2 (v / 2) in
    if n > 0 && n land (n - 1) = 0 then
      emit_insn f (Asm.sll r (Insn.Imm (log2 n)) r)
    else begin
      (* scratch3 so that [r] may itself be scratch1 or scratch2. *)
      emit_insns f (Asm.set n scratch3);
      emit_insn f (Asm.smul r (Insn.Reg scratch3) r)
    end
  end

(* --- expressions ----------------------------------------------------------- *)

let cond_of_binop = function
  | Ast.Eq -> Cond.E
  | Ast.Ne -> Cond.Ne
  | Ast.Lt -> Cond.L
  | Ast.Le -> Cond.Le
  | Ast.Gt -> Cond.G
  | Ast.Ge -> Cond.Ge
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod | Ast.Band | Ast.Bor
  | Ast.Bxor | Ast.Shl | Ast.Shr | Ast.Land | Ast.Lor ->
    invalid_arg "cond_of_binop"

let alu_of_binop = function
  | Ast.Add -> Insn.Add
  | Ast.Sub -> Insn.Sub
  | Ast.Mul -> Insn.Smul
  | Ast.Div -> Insn.Sdiv
  | Ast.Band -> Insn.And
  | Ast.Bor -> Insn.Or
  | Ast.Bxor -> Insn.Xor
  | Ast.Shl -> Insn.Sll
  | Ast.Shr -> Insn.Sra
  | Ast.Mod | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Land
  | Ast.Lor ->
    invalid_arg "alu_of_binop"

(* Literal operands small enough for a simm13 immediate avoid a
   materializing mov, matching real debug-compiler output. *)
let as_imm (e : texpr) =
  match e.desc with
  | Tint_lit v when Asm.fits_simm13 v -> Some v
  | _ -> None

let rec gen_expr f (e : texpr) : unit =
  match e.desc with
  | Tint_lit v ->
    let dst = push f in
    with_dest f dst (fun r -> emit_insns f (Asm.set v r))
  | Tvar name -> (
    match var_kind f name with
    | `Register r ->
      let dst = push f in
      with_dest f dst (fun d -> emit_insn f (Asm.mov (Insn.Reg r) d))
    | `Stack off -> (
      match e.typ with
      | Ast.Tarray _ | Ast.Tstruct _ ->
        (* Decay to the address. *)
        let dst = push f in
        with_dest f dst (fun d -> emit_insn f (Asm.add Reg.fp (Insn.Imm off) d))
      | Ast.Tint | Ast.Tptr _ ->
        let dst = push f in
        with_dest f dst (fun d -> emit_insn f (Asm.ld Reg.fp (Insn.Imm off) d)))
    | `Global -> (
      match e.typ with
      | Ast.Tarray _ | Ast.Tstruct _ ->
        let dst = push f in
        with_dest f dst (fun d ->
            emit f (Asm.Set_label { label = name; offset = 0; rd = d }))
      | Ast.Tint | Ast.Tptr _ ->
        let dst = push f in
        with_dest f dst (fun d ->
            emit f (Asm.Set_label { label = name; offset = 0; rd = d });
            emit_insn f (Asm.ld d (Insn.Imm 0) d))))
  | Tbinop (op, a, b) -> gen_binop f op a b
  | Tunop (op, a) -> gen_unop f op a
  | Tcall (name, args) ->
    gen_args f args;
    emit_insn f (Asm.call name);
    emit_insn f Asm.nop;
    let dst = push f in
    with_dest f dst (fun d -> emit_insn f (Asm.mov (Insn.Reg (Reg.o 0)) d))
  | Tbuiltin (b, args) -> gen_builtin f b args
  | Tindex _ | Tfield _ | Tderef _ ->
    gen_addr f e;
    let a = pop f in
    let dst = push f in
    let ra = into_reg f a scratch1 in
    with_dest f dst (fun d -> emit_insn f (Asm.ld ra (Insn.Imm 0) d))
  | Taddr inner -> gen_addr f inner

(* Push the address of an lvalue expression. *)
and gen_addr f (e : texpr) : unit =
  match e.desc with
  | Tvar name -> (
    match var_kind f name with
    | `Register _ -> errorf "%s: address of register variable %s" f.fname name
    | `Stack off ->
      let dst = push f in
      with_dest f dst (fun d -> emit_insn f (Asm.add Reg.fp (Insn.Imm off) d))
    | `Global ->
      let dst = push f in
      with_dest f dst (fun d ->
          emit f (Asm.Set_label { label = name; offset = 0; rd = d })))
  | Tindex (base, idx) -> (
    let scale = elem_size_bytes f.g base.typ in
    match as_imm idx with
    | Some v when Asm.fits_simm13 (v * scale) ->
      gen_addr_or_value f base;
      let lb = pop f in
      let dst = push f in
      let rb = into_reg f lb scratch2 in
      with_dest f dst (fun d -> emit_insn f (Asm.add rb (Insn.Imm (v * scale)) d))
    | Some _ | None ->
      gen_addr_or_value f base;
      gen_expr f idx;
      let li = pop f in
      let lb = pop f in
      let dst = push f in
      let ri = into_reg f li scratch1 in
      scale_reg f ri scale;
      let rb = into_reg f lb scratch2 in
      with_dest f dst (fun d -> emit_insn f (Asm.add rb (Insn.Reg ri) d)))
  | Tfield (base, _, word_off) ->
    (match base.desc with
    | Tderef p -> gen_expr f p
    | _ -> gen_addr f base);
    let lb = pop f in
    let dst = push f in
    let rb = into_reg f lb scratch1 in
    with_dest f dst (fun d -> emit_insn f (Asm.add rb (Insn.Imm (4 * word_off)) d))
  | Tderef p -> gen_expr f p
  | Tint_lit _ | Tbinop _ | Tunop _ | Tcall _ | Tbuiltin _ | Taddr _ ->
    errorf "%s: not an lvalue" f.fname

(* For an array-typed base expression, its "value" is its address —
   [gen_expr] already implements the decay for variables, the only
   array-typed expressions mini-C can produce. *)
and gen_addr_or_value f (base : texpr) = gen_expr f base

and gen_binop f op a b =
  match op with
  | Ast.Land ->
    let out = fresh_label f "and_out" in
    let false_ = fresh_label f "and_false" in
    gen_expr f a;
    let la = pop f in
    let ra = into_reg f la scratch1 in
    emit_insn f (Asm.tst ra);
    emit_insn f (Asm.branch Cond.E false_);
    gen_expr f b;
    let lb = pop f in
    let rb = into_reg f lb scratch1 in
    emit_insn f (Asm.tst rb);
    emit_insn f (Asm.branch Cond.E false_);
    let dst = push f in
    with_dest f dst (fun d ->
        emit_insn f (Asm.mov (Insn.Imm 1) d);
        emit_insn f (Asm.ba out);
        emit f (Asm.Label false_);
        emit_insn f (Asm.mov (Insn.Imm 0) d);
        emit f (Asm.Label out))
  | Ast.Lor ->
    let out = fresh_label f "or_out" in
    let true_ = fresh_label f "or_true" in
    gen_expr f a;
    let la = pop f in
    let ra = into_reg f la scratch1 in
    emit_insn f (Asm.tst ra);
    emit_insn f (Asm.branch Cond.Ne true_);
    gen_expr f b;
    let lb = pop f in
    let rb = into_reg f lb scratch1 in
    emit_insn f (Asm.tst rb);
    emit_insn f (Asm.branch Cond.Ne true_);
    let dst = push f in
    with_dest f dst (fun d ->
        emit_insn f (Asm.mov (Insn.Imm 0) d);
        emit_insn f (Asm.ba out);
        emit f (Asm.Label true_);
        emit_insn f (Asm.mov (Insn.Imm 1) d);
        emit f (Asm.Label out))
  | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
    let dst =
      match as_imm b with
      | Some v ->
        gen_expr f a;
        let la = pop f in
        let dst = push f in
        let ra = into_reg f la scratch1 in
        emit_insn f (Asm.cmp ra (Insn.Imm v));
        dst
      | None ->
        gen_expr f a;
        gen_expr f b;
        let lb = pop f in
        let la = pop f in
        let dst = push f in
        let rb = into_reg f lb scratch2 in
        let ra = into_reg f la scratch1 in
        emit_insn f (Asm.cmp ra (Insn.Reg rb));
        dst
    in
    let yes = fresh_label f "cmp" in
    with_dest f dst (fun d ->
        emit_insn f (Asm.mov (Insn.Imm 1) d);
        emit_insn f (Asm.branch (cond_of_binop op) yes);
        emit_insn f (Asm.mov (Insn.Imm 0) d);
        emit f (Asm.Label yes))
  | Ast.Mod ->
    (* a - (a/b)*b *)
    gen_expr f a;
    gen_expr f b;
    let lb = pop f in
    let la = pop f in
    let dst = push f in
    let rb = into_reg f lb scratch2 in
    let ra = into_reg f la scratch1 in
    with_dest f dst (fun d ->
        emit_insn f (Asm.sdiv ra (Insn.Reg rb) scratch3);
        emit_insn f (Asm.smul scratch3 (Insn.Reg rb) scratch3);
        emit_insn f (Asm.sub ra (Insn.Reg scratch3) d))
  | Ast.Add | Ast.Sub
    when is_ptr a.typ || is_ptr b.typ ->
    gen_ptr_arith f op a b
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Band | Ast.Bor | Ast.Bxor
  | Ast.Shl | Ast.Shr -> (
    match as_imm b with
    | Some v ->
      gen_expr f a;
      let la = pop f in
      let dst = push f in
      let ra = into_reg f la scratch1 in
      with_dest f dst (fun d ->
          emit_insn f (Asm.alu (alu_of_binop op) ra (Insn.Imm v) d))
    | None ->
      gen_expr f a;
      gen_expr f b;
      let lb = pop f in
      let la = pop f in
      let dst = push f in
      let rb = into_reg f lb scratch2 in
      let ra = into_reg f la scratch1 in
      with_dest f dst (fun d ->
          emit_insn f (Asm.alu (alu_of_binop op) ra (Insn.Reg rb) d)))

and gen_ptr_arith f op a b =
  let scale = elem_size_bytes f.g (if is_ptr a.typ then a.typ else b.typ) in
  match op, is_ptr a.typ, is_ptr b.typ with
  | Ast.Sub, true, true ->
    (* pointer difference: (a - b) / scale *)
    gen_addr_or_value f a;
    gen_addr_or_value f b;
    let lb = pop f in
    let la = pop f in
    let dst = push f in
    let rb = into_reg f lb scratch2 in
    let ra = into_reg f la scratch1 in
    with_dest f dst (fun d ->
        emit_insn f (Asm.sub ra (Insn.Reg rb) d);
        if scale = 4 then emit_insn f (Asm.sra d (Insn.Imm 2) d)
        else begin
          emit_insns f (Asm.set scale scratch3);
          emit_insn f (Asm.sdiv d (Insn.Reg scratch3) d)
        end)
  | (Ast.Add | Ast.Sub), true, false ->
    gen_addr_or_value f a;
    gen_expr f b;
    let lb = pop f in
    let la = pop f in
    let dst = push f in
    let rb = into_reg f lb scratch2 in
    scale_reg f rb scale;
    let ra = into_reg f la scratch1 in
    with_dest f dst (fun d ->
        emit_insn f (Asm.alu (alu_of_binop op) ra (Insn.Reg rb) d))
  | Ast.Add, false, true ->
    gen_expr f a;
    gen_addr_or_value f b;
    let lb = pop f in
    let la = pop f in
    let dst = push f in
    let ra = into_reg f la scratch1 in
    scale_reg f ra scale;
    let rb = into_reg f lb scratch2 in
    with_dest f dst (fun d -> emit_insn f (Asm.add rb (Insn.Reg ra) d))
  | _ -> errorf "%s: unsupported pointer arithmetic" f.fname

and gen_unop f op a =
  gen_expr f a;
  let la = pop f in
  let dst = push f in
  let ra = into_reg f la scratch1 in
  match op with
  | Ast.Neg -> with_dest f dst (fun d -> emit_insn f (Asm.sub Reg.g0 (Insn.Reg ra) d))
  | Ast.Bnot ->
    with_dest f dst (fun d ->
        emit_insn f (Asm.alu Insn.Xnor ra (Insn.Reg Reg.g0) d))
  | Ast.Lnot ->
    let yes = fresh_label f "lnot" in
    emit_insn f (Asm.tst ra);
    with_dest f dst (fun d ->
        emit_insn f (Asm.mov (Insn.Imm 1) d);
        emit_insn f (Asm.branch Cond.E yes);
        emit_insn f (Asm.mov (Insn.Imm 0) d);
        emit f (Asm.Label yes))

(* Evaluate arguments onto the expression stack, then move them into
   %o0..%o5 (last popped first, so argument k lands in %ok). *)
and gen_args f args =
  List.iter (gen_expr f) args;
  let n = List.length args in
  for k = n - 1 downto 0 do
    let loc = pop f in
    match loc with
    | Lreg r -> emit_insn f (Asm.mov (Insn.Reg r) (Reg.o k))
    | Lspill off -> emit_insn f (Asm.ld Reg.fp (Insn.Imm off) (Reg.o k))
  done

and gen_builtin f b args =
  gen_args f args;
  (match b with
  | Print_int -> emit_insn f (Asm.trap 1)
  | Print_char -> emit_insn f (Asm.trap 2)
  | Sbrk -> emit_insn f (Asm.trap 3)
  | Exit -> emit_insn f (Asm.trap 0));
  let dst = push f in
  with_dest f dst (fun d ->
      match b with
      | Sbrk -> emit_insn f (Asm.mov (Insn.Reg (Reg.o 0)) d)
      | Print_int | Print_char | Exit -> emit_insn f (Asm.mov (Insn.Imm 0) d))

(* --- statements ------------------------------------------------------------ *)

(* Conditions compile to direct compare-and-branch sequences (as cc -g
   does), so conditional branches carry the compare the analysis tool
   turns into assert definitions.  Falling back to materializing the
   boolean would hide loop bounds from the optimizer. *)
let rec gen_branch_if_false f (cond : texpr) ~label =
  match cond.desc with
  | Tbinop ((Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op, a, b)
    ->
    (match as_imm b with
    | Some v ->
      gen_expr f a;
      let la = pop f in
      let ra = into_reg f la scratch1 in
      emit_insn f (Asm.cmp ra (Insn.Imm v))
    | None ->
      gen_expr f a;
      gen_expr f b;
      let lb = pop f in
      let la = pop f in
      let rb = into_reg f lb scratch2 in
      let ra = into_reg f la scratch1 in
      emit_insn f (Asm.cmp ra (Insn.Reg rb)));
    emit_insn f (Asm.branch (Cond.negate (cond_of_binop op)) label)
  | Tbinop (Ast.Land, a, b) ->
    gen_branch_if_false f a ~label;
    gen_branch_if_false f b ~label
  | Tbinop (Ast.Lor, a, b) ->
    let ltrue = fresh_label f "ortrue" in
    gen_branch_if_true f a ~label:ltrue;
    gen_branch_if_false f b ~label;
    emit f (Asm.Label ltrue)
  | Tunop (Ast.Lnot, a) -> gen_branch_if_true f a ~label
  | _ ->
    gen_expr f cond;
    let lc = pop f in
    let rc = into_reg f lc scratch1 in
    emit_insn f (Asm.tst rc);
    emit_insn f (Asm.branch Cond.E label)

and gen_branch_if_true f (cond : texpr) ~label =
  match cond.desc with
  | Tbinop ((Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op, a, b)
    ->
    (match as_imm b with
    | Some v ->
      gen_expr f a;
      let la = pop f in
      let ra = into_reg f la scratch1 in
      emit_insn f (Asm.cmp ra (Insn.Imm v))
    | None ->
      gen_expr f a;
      gen_expr f b;
      let lb = pop f in
      let la = pop f in
      let rb = into_reg f lb scratch2 in
      let ra = into_reg f la scratch1 in
      emit_insn f (Asm.cmp ra (Insn.Reg rb)));
    emit_insn f (Asm.branch (cond_of_binop op) label)
  | Tbinop (Ast.Land, a, b) ->
    let lfalse = fresh_label f "andfalse" in
    gen_branch_if_false f a ~label:lfalse;
    gen_branch_if_true f b ~label;
    emit f (Asm.Label lfalse)
  | Tbinop (Ast.Lor, a, b) ->
    gen_branch_if_true f a ~label;
    gen_branch_if_true f b ~label
  | Tunop (Ast.Lnot, a) -> gen_branch_if_false f a ~label
  | _ ->
    gen_expr f cond;
    let lc = pop f in
    let rc = into_reg f lc scratch1 in
    emit_insn f (Asm.tst rc);
    emit_insn f (Asm.branch Cond.Ne label)

let gen_condition f (cond : texpr) ~false_label =
  gen_branch_if_false f cond ~label:false_label

let rec gen_stmt f (s : tstmt) : unit =
  match s with
  | TSexpr e ->
    gen_expr f e;
    ignore (pop f)
  | TSassign (lhs, rhs) -> gen_assign f lhs rhs
  | TSif (cond, then_, else_) ->
    let lelse = fresh_label f "else" in
    let lend = fresh_label f "endif" in
    gen_condition f cond ~false_label:lelse;
    List.iter (gen_stmt f) then_;
    if else_ = [] then emit f (Asm.Label lelse)
    else begin
      emit_insn f (Asm.ba lend);
      emit f (Asm.Label lelse);
      List.iter (gen_stmt f) else_;
      emit f (Asm.Label lend)
    end
  | TSwhile (cond, body) ->
    let lhead = fresh_label f "while" in
    let lend = fresh_label f "wend" in
    emit f (Asm.Label lhead);
    gen_condition f cond ~false_label:lend;
    f.loops <- (lend, lhead) :: f.loops;
    List.iter (gen_stmt f) body;
    f.loops <- List.tl f.loops;
    emit_insn f (Asm.ba lhead);
    emit f (Asm.Label lend)
  | TSfor (init, cond, step, body) ->
    let lhead = fresh_label f "for" in
    let lstep = fresh_label f "fstep" in
    let lend = fresh_label f "fend" in
    Option.iter (gen_stmt f) init;
    emit f (Asm.Label lhead);
    Option.iter (fun c -> gen_condition f c ~false_label:lend) cond;
    f.loops <- (lend, lstep) :: f.loops;
    List.iter (gen_stmt f) body;
    f.loops <- List.tl f.loops;
    emit f (Asm.Label lstep);
    Option.iter (gen_stmt f) step;
    emit_insn f (Asm.ba lhead);
    emit f (Asm.Label lend)
  | TSreturn e ->
    (match e with
    | Some e ->
      gen_expr f e;
      let l = pop f in
      let r = into_reg f l scratch1 in
      emit_insn f (Asm.mov (Insn.Reg r) (Reg.i_ 0))
    | None -> emit_insn f (Asm.mov (Insn.Imm 0) (Reg.i_ 0)));
    emit_insn f Asm.restore;
    emit_insn f Asm.retl
  | TSbreak -> (
    match f.loops with
    | (lend, _) :: _ -> emit_insn f (Asm.ba lend)
    | [] -> errorf "%s: break outside loop" f.fname)
  | TScontinue -> (
    match f.loops with
    | (_, lcont) :: _ -> emit_insn f (Asm.ba lcont)
    | [] -> errorf "%s: continue outside loop" f.fname)
  | TSblock body -> List.iter (gen_stmt f) body
  | TSprint_str s ->
    String.iter
      (fun c ->
        emit_insn f (Asm.mov (Insn.Imm (Char.code c)) (Reg.o 0));
        emit_insn f (Asm.trap 2))
      s

and gen_assign f lhs rhs =
  gen_expr f rhs;
  match lhs.desc with
  | Tvar name -> (
    match var_kind f name with
    | `Register r ->
      let l = pop f in
      let rv = into_reg f l scratch1 in
      emit_insn f (Asm.mov (Insn.Reg rv) r)
    | `Stack off ->
      let l = pop f in
      let rv = into_reg f l scratch1 in
      emit_insn f (Asm.st rv Reg.fp (Insn.Imm off))
    | `Global ->
      let l = pop f in
      let rv = into_reg f l scratch1 in
      emit f (Asm.Set_label { label = name; offset = 0; rd = scratch2 });
      emit_insn f (Asm.st rv scratch2 (Insn.Imm 0)))
  | Tindex _ | Tfield _ | Tderef _ ->
    gen_addr f lhs;
    let laddr = pop f in
    let lval = pop f in
    let raddr = into_reg f laddr scratch2 in
    let rval = into_reg f lval scratch1 in
    emit_insn f (Asm.st rval raddr (Insn.Imm 0))
  | Tint_lit _ | Tbinop _ | Tunop _ | Tcall _ | Tbuiltin _ | Taddr _ ->
    errorf "%s: assignment to non-lvalue" f.fname

(* --- functions and program -------------------------------------------------- *)

let align8 n = (n + 7) land lnot 7

let gen_func g (fn : tfunc) : Asm.item list * Symtab.entry list =
  (* Assign frame slots: parameters first, then stack locals. *)
  let offsets = Hashtbl.create 16 in
  let regvars = Hashtbl.create 4 in
  let local_types = Hashtbl.create 16 in
  let cursor = ref 0 in
  let alloc name typ =
    let bytes = 4 * size_words g typ in
    cursor := !cursor - bytes;
    Hashtbl.replace offsets name !cursor;
    Hashtbl.replace local_types name typ
  in
  List.iter (fun (name, typ) -> alloc name typ) fn.params;
  let available_regvars = ref register_var_regs in
  List.iter
    (fun (d : Ast.vardecl) ->
      Hashtbl.replace local_types d.vname d.vtyp;
      if d.register then (
        match !available_regvars with
        | r :: rest ->
          available_regvars := rest;
          Hashtbl.replace regvars d.vname r
        | [] -> alloc d.vname d.vtyp)
      else alloc d.vname d.vtyp)
    fn.locals;
  let spill_base = !cursor - 4 in
  let frame = align8 (- !cursor + (4 * max_spill) + 16 + 64) in
  let f =
    {
      g;
      fname = fn.name;
      offsets;
      regvars;
      local_types;
      spill_base;
      frame;
      depth = 0;
      code = [];
      loops = [];
    }
  in
  emit f (Asm.Label fn.name);
  emit_insn f (Asm.save frame);
  (* Give every parameter a memory home, like cc -g. *)
  List.iteri
    (fun i (name, _) ->
      emit_insn f (Asm.st (Reg.i_ i) Reg.fp (Insn.Imm (Hashtbl.find offsets name))))
    fn.params;
  (* Initialize register-class locals to zero for determinism. *)
  Hashtbl.iter (fun _ r -> emit_insn f (Asm.mov (Insn.Imm 0) r)) regvars;
  List.iter (gen_stmt f) fn.body;
  (* Implicit return 0. *)
  emit_insn f (Asm.mov (Insn.Imm 0) (Reg.i_ 0));
  emit_insn f Asm.restore;
  emit_insn f Asm.retl;
  let symbols =
    let ctype_of = function
      | Ast.Tint -> Symtab.Scalar
      | Ast.Tptr _ -> Symtab.Pointer
      | Ast.Tarray (t, n) -> Symtab.Array { elems = n * size_words g t }
      | Ast.Tstruct s ->
        Symtab.Struct
          { fields = List.mapi (fun i (fl, _) -> (fl, i)) (List.assoc s g.structs) }
    in
    List.filter_map
      (fun (name, typ) ->
        match Hashtbl.find_opt offsets name with
        | Some off ->
          Some
            {
              Symtab.name;
              func = Some fn.name;
              location = Symtab.Fp_offset off;
              size_words = size_words g typ;
              ctype = ctype_of typ;
            }
        | None -> None)
      (fn.params
      @ List.map (fun (d : Ast.vardecl) -> (d.vname, d.vtyp)) fn.locals)
  in
  (List.rev f.code, symbols)

type output = {
  program : Asm.program;
  symtab : Symtab.t;
  functions : string list;
}

let gen_program (p : tprogram) : output =
  let g =
    {
      structs = p.struct_fields;
      global_types = Hashtbl.create 16;
      label_counter = 0;
    }
  in
  List.iter
    (fun (d : Ast.vardecl) -> Hashtbl.replace g.global_types d.vname d.vtyp)
    p.globals;
  let start =
    [
      Asm.Label "_start";
      Asm.Insn (Asm.call "main");
      Asm.Insn Asm.nop;
      Asm.Insn (Asm.trap 0);
    ]
  in
  let bodies = List.map (gen_func g) p.funcs in
  let text = start @ List.concat_map fst bodies in
  let data =
    List.map
      (fun (d : Ast.vardecl) ->
        {
          Asm.name = d.vname;
          size = 4 * size_words g d.vtyp;
          init = (match d.init with Some v -> [ v ] | None -> []);
        })
      p.globals
  in
  let ctype_of = function
    | Ast.Tint -> Symtab.Scalar
    | Ast.Tptr _ -> Symtab.Pointer
    | Ast.Tarray (t, n) -> Symtab.Array { elems = n * size_words g t }
    | Ast.Tstruct s ->
      Symtab.Struct
        { fields = List.mapi (fun i (fl, _) -> (fl, i)) (List.assoc s g.structs) }
  in
  let global_syms =
    List.map
      (fun (d : Ast.vardecl) ->
        {
          Symtab.name = d.vname;
          func = None;
          location = Symtab.Data_label (d.vname, 0);
          size_words = size_words g d.vtyp;
          ctype = ctype_of d.vtyp;
        })
      p.globals
  in
  let local_syms = List.concat_map snd bodies in
  {
    program = { Asm.text; data; entry = "_start" };
    symtab = Symtab.of_list (global_syms @ local_syms);
    functions = List.map (fun (fn : tfunc) -> fn.name) p.funcs;
  }
