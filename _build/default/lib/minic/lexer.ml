type token =
  | INT of int
  | IDENT of string
  | STRING of string
  | KW_INT | KW_STRUCT | KW_REGISTER
  | KW_IF | KW_ELSE | KW_WHILE | KW_FOR | KW_RETURN | KW_BREAK | KW_CONTINUE
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA | DOT | ARROW
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMP | PIPE | CARET | SHL | SHR | TILDE
  | EQ | EQEQ | NE | LT | LE | GT | GE
  | AMPAMP | PIPEPIPE | BANG
  | EOF

exception Error of { line : int; message : string }

type t = { src : string; mutable pos : int; mutable line : int }

let create src = { src; pos = 0; line = 1 }

let errorf t fmt =
  Format.kasprintf (fun message -> raise (Error { line = t.line; message })) fmt

let peek_char t = if t.pos < String.length t.src then Some t.src.[t.pos] else None

let advance t =
  (if t.pos < String.length t.src && t.src.[t.pos] = '\n' then
     t.line <- t.line + 1);
  t.pos <- t.pos + 1

let is_digit c = c >= '0' && c <= '9'

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || is_digit c

let keyword = function
  | "int" -> Some KW_INT
  | "struct" -> Some KW_STRUCT
  | "register" -> Some KW_REGISTER
  | "if" -> Some KW_IF
  | "else" -> Some KW_ELSE
  | "while" -> Some KW_WHILE
  | "for" -> Some KW_FOR
  | "return" -> Some KW_RETURN
  | "break" -> Some KW_BREAK
  | "continue" -> Some KW_CONTINUE
  | _ -> None

let rec skip_ws_and_comments t =
  match peek_char t with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance t;
    skip_ws_and_comments t
  | Some '/' when t.pos + 1 < String.length t.src -> (
    match t.src.[t.pos + 1] with
    | '/' ->
      while peek_char t <> None && peek_char t <> Some '\n' do advance t done;
      skip_ws_and_comments t
    | '*' ->
      advance t;
      advance t;
      let rec loop () =
        match peek_char t with
        | None -> errorf t "unterminated comment"
        | Some '*' when t.pos + 1 < String.length t.src && t.src.[t.pos + 1] = '/'
          ->
          advance t;
          advance t
        | Some _ ->
          advance t;
          loop ()
      in
      loop ();
      skip_ws_and_comments t
    | _ -> ())
  | Some _ | None -> ()

let lex_number t =
  let start = t.pos in
  if
    peek_char t = Some '0'
    && t.pos + 1 < String.length t.src
    && (t.src.[t.pos + 1] = 'x' || t.src.[t.pos + 1] = 'X')
  then begin
    advance t;
    advance t;
    while
      match peek_char t with
      | Some c -> is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
      | None -> false
    do
      advance t
    done
  end
  else
    while match peek_char t with Some c -> is_digit c | None -> false do
      advance t
    done;
  let s = String.sub t.src start (t.pos - start) in
  match int_of_string_opt s with
  | Some v -> INT v
  | None -> errorf t "bad number %S" s

let lex_char_literal t =
  advance t;
  let v =
    match peek_char t with
    | Some '\\' ->
      advance t;
      (match peek_char t with
      | Some 'n' -> 10
      | Some 't' -> 9
      | Some '0' -> 0
      | Some '\\' -> 92
      | Some '\'' -> 39
      | Some c -> errorf t "bad escape \\%c" c
      | None -> errorf t "unterminated char literal")
    | Some c -> Char.code c
    | None -> errorf t "unterminated char literal"
  in
  advance t;
  if peek_char t <> Some '\'' then errorf t "unterminated char literal";
  advance t;
  INT v

let lex_string t =
  advance t;
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek_char t with
    | None -> errorf t "unterminated string"
    | Some '"' -> advance t
    | Some '\\' ->
      advance t;
      (match peek_char t with
      | Some 'n' -> Buffer.add_char buf '\n'
      | Some 't' -> Buffer.add_char buf '\t'
      | Some '\\' -> Buffer.add_char buf '\\'
      | Some '"' -> Buffer.add_char buf '"'
      | Some c -> errorf t "bad escape \\%c" c
      | None -> errorf t "unterminated string");
      advance t;
      loop ()
    | Some c ->
      Buffer.add_char buf c;
      advance t;
      loop ()
  in
  loop ();
  STRING (Buffer.contents buf)

let next t =
  skip_ws_and_comments t;
  let two c1 c2 tok1 tok2 =
    advance t;
    if peek_char t = Some c2 then begin
      advance t;
      tok2
    end
    else begin
      ignore c1;
      tok1
    end
  in
  match peek_char t with
  | None -> EOF
  | Some c when is_digit c -> lex_number t
  | Some '\'' -> lex_char_literal t
  | Some '"' -> lex_string t
  | Some c when is_ident_start c ->
    let start = t.pos in
    while match peek_char t with Some c -> is_ident_char c | None -> false do
      advance t
    done;
    let s = String.sub t.src start (t.pos - start) in
    (match keyword s with Some k -> k | None -> IDENT s)
  | Some '(' -> advance t; LPAREN
  | Some ')' -> advance t; RPAREN
  | Some '{' -> advance t; LBRACE
  | Some '}' -> advance t; RBRACE
  | Some '[' -> advance t; LBRACKET
  | Some ']' -> advance t; RBRACKET
  | Some ';' -> advance t; SEMI
  | Some ',' -> advance t; COMMA
  | Some '.' -> advance t; DOT
  | Some '+' -> advance t; PLUS
  | Some '-' -> two '-' '>' MINUS ARROW
  | Some '*' -> advance t; STAR
  | Some '/' -> advance t; SLASH
  | Some '%' -> advance t; PERCENT
  | Some '~' -> advance t; TILDE
  | Some '^' -> advance t; CARET
  | Some '&' -> two '&' '&' AMP AMPAMP
  | Some '|' -> two '|' '|' PIPE PIPEPIPE
  | Some '=' -> two '=' '=' EQ EQEQ
  | Some '!' -> two '!' '=' BANG NE
  | Some '<' ->
    advance t;
    (match peek_char t with
    | Some '=' -> advance t; LE
    | Some '<' -> advance t; SHL
    | Some _ | None -> LT)
  | Some '>' ->
    advance t;
    (match peek_char t with
    | Some '=' -> advance t; GE
    | Some '>' -> advance t; SHR
    | Some _ | None -> GT)
  | Some c -> errorf t "unexpected character %C" c

let tokens src =
  let t = create src in
  let rec loop acc =
    let line = t.line in
    match next t with
    | EOF -> List.rev ((EOF, line) :: acc)
    | tok -> loop ((tok, line) :: acc)
  in
  loop []

let token_to_string = function
  | INT i -> string_of_int i
  | IDENT s -> s
  | STRING s -> Printf.sprintf "%S" s
  | KW_INT -> "int" | KW_STRUCT -> "struct" | KW_REGISTER -> "register"
  | KW_IF -> "if" | KW_ELSE -> "else" | KW_WHILE -> "while" | KW_FOR -> "for"
  | KW_RETURN -> "return" | KW_BREAK -> "break" | KW_CONTINUE -> "continue"
  | LPAREN -> "(" | RPAREN -> ")" | LBRACE -> "{" | RBRACE -> "}"
  | LBRACKET -> "[" | RBRACKET -> "]"
  | SEMI -> ";" | COMMA -> "," | DOT -> "." | ARROW -> "->"
  | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/" | PERCENT -> "%"
  | AMP -> "&" | PIPE -> "|" | CARET -> "^" | SHL -> "<<" | SHR -> ">>"
  | TILDE -> "~"
  | EQ -> "=" | EQEQ -> "==" | NE -> "!=" | LT -> "<" | LE -> "<=" | GT -> ">"
  | GE -> ">="
  | AMPAMP -> "&&" | PIPEPIPE -> "||" | BANG -> "!"
  | EOF -> "<eof>"
