exception Error of string

let errorf fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

type builtin = Print_int | Print_char | Sbrk | Exit

type texpr = { desc : tdesc; typ : Ast.typ }

and tdesc =
  | Tint_lit of int
  | Tvar of string
  | Tbinop of Ast.binop * texpr * texpr
  | Tunop of Ast.unop * texpr
  | Tcall of string * texpr list
  | Tbuiltin of builtin * texpr list
  | Tindex of texpr * texpr
  | Tfield of texpr * string * int
  | Tderef of texpr
  | Taddr of texpr

type tstmt =
  | TSexpr of texpr
  | TSassign of texpr * texpr
  | TSif of texpr * tstmt list * tstmt list
  | TSwhile of texpr * tstmt list
  | TSfor of tstmt option * texpr option * tstmt option * tstmt list
  | TSreturn of texpr option
  | TSbreak
  | TScontinue
  | TSblock of tstmt list
  | TSprint_str of string

type tfunc = {
  name : string;
  params : (string * Ast.typ) list;
  locals : Ast.vardecl list;
  body : tstmt list;
}

type tprogram = {
  struct_fields : (string * (string * Ast.typ) list) list;
  globals : Ast.vardecl list;
  funcs : tfunc list;
}

type ctx = {
  structs : (string, (string * Ast.typ) list) Hashtbl.t;
  funcs : (string, Ast.typ list) Hashtbl.t;  (* parameter types; returns are untracked ints/ptrs *)
  globals : (string, Ast.typ) Hashtbl.t;
  mutable scope : (string * (Ast.typ * bool (* register *))) list;
}

let builtin_of_name = function
  | "print_int" -> Some Print_int
  | "print_char" -> Some Print_char
  | "sbrk" -> Some Sbrk
  | "exit" -> Some Exit
  | _ -> None

let struct_fields ctx name =
  match Hashtbl.find_opt ctx.structs name with
  | Some fields -> fields
  | None -> errorf "unknown struct %s" name

let rec size_words ctx = function
  | Ast.Tint | Ast.Tptr _ -> 1
  | Ast.Tstruct s -> List.length (struct_fields ctx s)
  | Ast.Tarray (t, n) -> n * size_words ctx t

let elem_type = function
  | Ast.Tptr t | Ast.Tarray (t, _) -> t
  | (Ast.Tint | Ast.Tstruct _) as t ->
    errorf "cannot index value of type %s" (Ast.typ_to_string t)

let is_scalar = function
  | Ast.Tint | Ast.Tptr _ -> true
  | Ast.Tstruct _ | Ast.Tarray _ -> false

let decay = function Ast.Tarray (t, _) -> Ast.Tptr t | t -> t

(* Assignment/argument compatibility is deliberately lax between
   pointers and ints (the workloads are C in spirit); structs are never
   assignable, arrays decay to pointers on the right-hand side. *)
let compatible a b = is_scalar a && is_scalar (decay b)

let lookup_var ctx name =
  match List.assoc_opt name ctx.scope with
  | Some (t, reg) -> (t, reg)
  | None -> (
    match Hashtbl.find_opt ctx.globals name with
    | Some t -> (t, false)
    | None -> errorf "unknown variable %s" name)

let rec is_lvalue ctx e =
  match e.desc with
  | Tvar _ -> true
  | Tindex _ -> true
  | Tderef _ -> true
  | Tfield (base, _, _) -> is_lvalue ctx base || (match base.desc with Tderef _ -> true | _ -> false)
  | Tint_lit _ | Tbinop _ | Tunop _ | Tcall _ | Tbuiltin _ | Taddr _ -> false

let rec check_expr ctx (e : Ast.expr) : texpr =
  match e with
  | Ast.Int v -> { desc = Tint_lit v; typ = Ast.Tint }
  | Ast.Var name ->
    let typ, _ = lookup_var ctx name in
    { desc = Tvar name; typ }
  | Ast.Binop (op, a, b) -> check_binop ctx op a b
  | Ast.Unop (op, a) ->
    let ta = check_expr ctx a in
    if not (is_scalar ta.typ) then
      errorf "unary %s on non-scalar"
        (match op with Ast.Neg -> "-" | Ast.Lnot -> "!" | Ast.Bnot -> "~");
    { desc = Tunop (op, ta); typ = Ast.Tint }
  | Ast.Call (name, args) -> check_call ctx name args
  | Ast.Index (base, idx) ->
    let tbase = check_expr ctx base in
    let tidx = check_expr ctx idx in
    if tidx.typ <> Ast.Tint then errorf "array index must be int";
    let elem = elem_type tbase.typ in
    { desc = Tindex (tbase, tidx); typ = elem }
  | Ast.Field (base, field) ->
    let tbase = check_expr ctx base in
    (match tbase.typ with
    | Ast.Tstruct s ->
      let fields = struct_fields ctx s in
      (match List.find_index (fun (f, _) -> String.equal field f) fields with
      | Some i ->
        let _, ftyp = List.nth fields i in
        { desc = Tfield (tbase, field, i); typ = ftyp }
      | None -> errorf "struct %s has no field %s" s field)
    | t -> errorf "field access on non-struct %s" (Ast.typ_to_string t))
  | Ast.Arrow (base, field) ->
    (* p->f is ( *p ).f *)
    check_expr ctx (Ast.Field (Ast.Deref base, field))
  | Ast.Deref ptr ->
    let tptr = check_expr ctx ptr in
    (match tptr.typ with
    | Ast.Tptr t | Ast.Tarray (t, _) -> { desc = Tderef tptr; typ = t }
    | t -> errorf "dereference of non-pointer %s" (Ast.typ_to_string t))
  | Ast.Addr inner ->
    let tinner = check_expr ctx inner in
    if not (is_lvalue ctx tinner) then errorf "cannot take address of non-lvalue";
    (match tinner.desc with
    | Tvar name ->
      let _, reg = lookup_var ctx name in
      if reg then errorf "cannot take address of register variable %s" name
    | _ -> ());
    { desc = Taddr tinner; typ = Ast.Tptr tinner.typ }

and check_binop ctx op a b =
  let ta = check_expr ctx a and tb = check_expr ctx b in
  let scalar e = if not (is_scalar (decay e.typ)) then errorf "non-scalar operand" in
  scalar ta;
  scalar tb;
  let ptr t = match t with Ast.Tptr _ | Ast.Tarray _ -> true | Ast.Tint | Ast.Tstruct _ -> false in
  let typ =
    match op with
    | Ast.Add | Ast.Sub ->
      (match ptr ta.typ, ptr tb.typ with
      | true, false -> ta.typ
      | false, true -> if op = Ast.Add then tb.typ else errorf "int - pointer"
      | true, true ->
        if op = Ast.Sub then Ast.Tint else errorf "pointer + pointer"
      | false, false -> Ast.Tint)
    | Ast.Mul | Ast.Div | Ast.Mod | Ast.Band | Ast.Bor | Ast.Bxor | Ast.Shl
    | Ast.Shr ->
      Ast.Tint
    | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Land | Ast.Lor
      ->
      Ast.Tint
  in
  { desc = Tbinop (op, ta, tb); typ }

and check_call ctx name args =
  let targs = List.map (check_expr ctx) args in
  List.iter
    (fun a -> if not (is_scalar (decay a.typ)) then errorf "non-scalar argument to %s" name)
    targs;
  match builtin_of_name name with
  | Some b ->
    let arity = 1 in
    if List.length targs <> arity then
      errorf "builtin %s expects %d argument(s)" name arity;
    let typ = match b with Sbrk -> Ast.Tptr Ast.Tint | Print_int | Print_char | Exit -> Ast.Tint in
    { desc = Tbuiltin (b, targs); typ }
  | None -> (
    match Hashtbl.find_opt ctx.funcs name with
    | Some param_types ->
      if List.length targs <> List.length param_types then
        errorf "%s expects %d arguments, got %d" name (List.length param_types)
          (List.length targs);
      if List.length targs > 6 then errorf "%s: more than 6 arguments" name;
      (* Return type convention: functions named *alloc* and ones whose
         name ends in _ptr return pointers; everything else int.  This
         keeps mini-C signatures to a single line while letting malloc
         results index without casts. *)
      let returns_ptr =
        let has_sub sub =
          let n = String.length sub and m = String.length name in
          let rec at i = i + n <= m && (String.sub name i n = sub || at (i + 1)) in
          at 0
        in
        has_sub "alloc" ||
        (String.length name > 4 && String.sub name (String.length name - 4) 4 = "_ptr")
      in
      let typ = if returns_ptr then Ast.Tptr Ast.Tint else Ast.Tint in
      { desc = Tcall (name, targs); typ }
    | None -> errorf "unknown function %s" name)

let rec check_stmt ctx ~in_loop (s : Ast.stmt) : tstmt =
  match s with
  | Ast.Sexpr e -> TSexpr (check_expr ctx e)
  | Ast.Sassign (lhs, rhs) ->
    let tl = check_expr ctx lhs in
    let tr = check_expr ctx rhs in
    if not (is_lvalue ctx tl) then errorf "assignment to non-lvalue";
    (match tl.desc with
    | Tvar name ->
      let _, _reg = lookup_var ctx name in
      ()
    | _ -> ());
    if not (compatible tl.typ tr.typ) then
      errorf "incompatible assignment: %s := %s" (Ast.typ_to_string tl.typ)
        (Ast.typ_to_string tr.typ);
    TSassign (tl, tr)
  | Ast.Sif (cond, then_, else_) ->
    let tc = check_expr ctx cond in
    if not (is_scalar tc.typ) then errorf "non-scalar condition";
    TSif (tc, check_stmts ctx ~in_loop then_, check_stmts ctx ~in_loop else_)
  | Ast.Swhile (cond, body) ->
    let tc = check_expr ctx cond in
    if not (is_scalar tc.typ) then errorf "non-scalar condition";
    TSwhile (tc, check_stmts ctx ~in_loop:true body)
  | Ast.Sfor (init, cond, step, body) ->
    let tinit = Option.map (check_stmt ctx ~in_loop) init in
    let tcond = Option.map (check_expr ctx) cond in
    (match tcond with
    | Some c when not (is_scalar c.typ) -> errorf "non-scalar condition"
    | Some _ | None -> ());
    let tstep = Option.map (check_stmt ctx ~in_loop) step in
    TSfor (tinit, tcond, tstep, check_stmts ctx ~in_loop:true body)
  | Ast.Sreturn e ->
    let te = Option.map (check_expr ctx) e in
    (match te with
    | Some t when not (is_scalar (decay t.typ)) -> errorf "returning non-scalar"
    | Some _ | None -> ());
    TSreturn te
  | Ast.Sbreak ->
    if not in_loop then errorf "break outside loop";
    TSbreak
  | Ast.Scontinue ->
    if not in_loop then errorf "continue outside loop";
    TScontinue
  | Ast.Sblock body -> TSblock (check_stmts ctx ~in_loop body)
  | Ast.Sprint_str s -> TSprint_str s

and check_stmts ctx ~in_loop stmts = List.map (check_stmt ctx ~in_loop) stmts

let check_func ctx (f : Ast.func) : tfunc =
  if List.length f.params > 6 then
    errorf "%s: more than 6 parameters unsupported" f.fname;
  let saved = ctx.scope in
  ctx.scope <-
    List.map (fun (n, t) -> (n, (t, false))) f.params
    @ List.map (fun d -> (d.Ast.vname, (d.Ast.vtyp, d.Ast.register))) f.locals;
  List.iter
    (fun (d : Ast.vardecl) ->
      match d.vtyp, d.register with
      | (Ast.Tarray _ | Ast.Tstruct _), true ->
        errorf "%s: register array/struct %s" f.fname d.vname
      | _, _ -> ())
    f.locals;
  let dup =
    let names = List.map fst f.params @ List.map (fun d -> d.Ast.vname) f.locals in
    let sorted = List.sort String.compare names in
    let rec find = function
      | a :: (b :: _ as rest) -> if a = b then Some a else find rest
      | [ _ ] | [] -> None
    in
    find sorted
  in
  (match dup with
  | Some n -> errorf "%s: duplicate declaration of %s" f.fname n
  | None -> ());
  let body = check_stmts ctx ~in_loop:false f.body in
  ctx.scope <- saved;
  { name = f.fname; params = f.params; locals = f.locals; body }

let check_program (p : Ast.program) : tprogram =
  let ctx =
    {
      structs = Hashtbl.create 16;
      funcs = Hashtbl.create 16;
      globals = Hashtbl.create 16;
      scope = [];
    }
  in
  List.iter
    (fun (s : Ast.struct_decl) ->
      if Hashtbl.mem ctx.structs s.sname then errorf "duplicate struct %s" s.sname;
      if s.sfields = [] then errorf "empty struct %s" s.sname;
      List.iter
        (fun (f, t) ->
          match t with
          | Ast.Tint | Ast.Tptr _ -> ()
          | Ast.Tstruct _ | Ast.Tarray _ ->
            errorf "struct %s: field %s must be one word" s.sname f)
        s.sfields;
      Hashtbl.add ctx.structs s.sname s.sfields)
    p.structs;
  List.iter
    (fun (d : Ast.vardecl) ->
      if Hashtbl.mem ctx.globals d.vname then errorf "duplicate global %s" d.vname;
      ignore (size_words ctx d.vtyp);
      Hashtbl.add ctx.globals d.vname d.vtyp)
    p.globals;
  List.iter
    (fun (f : Ast.func) ->
      if Hashtbl.mem ctx.funcs f.fname then errorf "duplicate function %s" f.fname;
      if builtin_of_name f.fname <> None then
        errorf "%s shadows a builtin" f.fname;
      Hashtbl.add ctx.funcs f.fname (List.map snd f.params))
    p.funcs;
  if not (Hashtbl.mem ctx.funcs "main") then errorf "no main function";
  let funcs = List.map (check_func ctx) p.funcs in
  {
    struct_fields = List.map (fun (s : Ast.struct_decl) -> (s.sname, s.sfields)) p.structs;
    globals = p.globals;
    funcs;
  }
