(** Abstract syntax of mini-C, the workload source language.

    Mini-C is a small C subset rich enough to exhibit the write
    populations the paper measures: word-sized integers, pointers with
    C-style scaled arithmetic, fixed-size arrays, flat structs (int
    fields only), functions, and C89-style declarations at the top of
    each function body.  The [register] storage class is honoured by the
    naive compiler — such variables live in registers and never produce
    checked memory writes (cf. the paper's discussion of 001.gcc and
    008.espresso in §4.6.1). *)

type typ =
  | Tint
  | Tptr of typ
  | Tstruct of string
  | Tarray of typ * int  (** declaration-only; decays to pointer in expressions *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Band | Bor | Bxor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge
  | Land | Lor  (** short-circuiting *)

type unop = Neg | Lnot | Bnot

type expr =
  | Int of int
  | Var of string
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Call of string * expr list
  | Index of expr * expr
  | Field of expr * string
  | Arrow of expr * string
  | Deref of expr
  | Addr of expr  (** operand must be an lvalue; checked by {!Typecheck} *)

type stmt =
  | Sexpr of expr
  | Sassign of expr * expr  (** lhs must be an lvalue *)
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sfor of stmt option * expr option * stmt option * stmt list
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sblock of stmt list
  | Sprint_str of string
      (** [print_str("...")] — compiled to a sequence of print-char traps *)

type vardecl = {
  vname : string;
  vtyp : typ;
  register : bool;
  init : int option;  (** globals only: initial word value *)
}

type func = {
  fname : string;
  params : (string * typ) list;
  locals : vardecl list;
  body : stmt list;
}

type struct_decl = { sname : string; sfields : (string * typ) list }
(** Every field is one word: [int] or a pointer type. *)

type program = {
  structs : struct_decl list;
  globals : vardecl list;
  funcs : func list;
}

val typ_to_string : typ -> string
val binop_to_string : binop -> string
