type operand = Reg of Reg.t | Imm of int

type target = Sym of string | Abs of int

type alu =
  | Add | Sub | And | Or | Xor | Andn | Orn | Xnor
  | Sll | Srl | Sra
  | Smul | Umul | Sdiv | Udiv

type width = Byte | Half | Word | Double

type t =
  | Alu of { op : alu; cc : bool; rs1 : Reg.t; op2 : operand; rd : Reg.t }
  | Sethi of { imm : int; rd : Reg.t }
  | Ld of { width : width; signed : bool; rs1 : Reg.t; off : operand; rd : Reg.t }
  | St of { width : width; rd : Reg.t; rs1 : Reg.t; off : operand }
  | Branch of { cond : Cond.t; target : target }
  | Call of { target : target }
  | Jmpl of { rs1 : Reg.t; off : operand; rd : Reg.t }
  | Save of { rs1 : Reg.t; op2 : operand; rd : Reg.t }
  | Restore of { rs1 : Reg.t; op2 : operand; rd : Reg.t }
  | Trap of { number : int }
  | Nop

let width_bytes = function Byte -> 1 | Half -> 2 | Word -> 4 | Double -> 8

let operand_uses = function Reg r -> [ r ] | Imm _ -> []

let uses = function
  | Alu { rs1; op2; _ } -> rs1 :: operand_uses op2
  | Sethi _ -> []
  | Ld { rs1; off; _ } -> rs1 :: operand_uses off
  | St { rd; rs1; off; width } ->
    let base = rd :: rs1 :: operand_uses off in
    if width = Double then Reg.of_index (Reg.index rd + 1) :: base else base
  | Branch _ -> []
  | Call _ -> []
  | Jmpl { rs1; off; _ } -> rs1 :: operand_uses off
  | Save { rs1; op2; _ } -> rs1 :: operand_uses op2
  | Restore { rs1; op2; _ } -> rs1 :: operand_uses op2
  | Trap _ -> []
  | Nop -> []

let defs = function
  | Alu { rd; _ } -> [ rd ]
  | Sethi { rd; _ } -> [ rd ]
  | Ld { rd; width; _ } ->
    if width = Double then [ rd; Reg.of_index (Reg.index rd + 1) ] else [ rd ]
  | St _ -> []
  | Branch _ -> []
  | Call _ -> [ Reg.o7 ]
  | Jmpl { rd; _ } -> [ rd ]
  | Save { rd; _ } | Restore { rd; _ } -> [ rd ]
  | Trap _ -> []
  | Nop -> []

let sets_cc = function
  | Alu { cc; _ } -> cc
  | Sethi _ | Ld _ | St _ | Branch _ | Call _ | Jmpl _ | Save _ | Restore _
  | Trap _ | Nop ->
    false

let is_store = function
  | St _ -> true
  | Alu _ | Sethi _ | Ld _ | Branch _ | Call _ | Jmpl _ | Save _ | Restore _
  | Trap _ | Nop ->
    false

let store_address = function
  | St { rs1; off; _ } -> Some (rs1, off)
  | Alu _ | Sethi _ | Ld _ | Branch _ | Call _ | Jmpl _ | Save _ | Restore _
  | Trap _ | Nop ->
    None

let is_control = function
  | Branch _ | Call _ | Jmpl _ | Trap _ -> true
  | Alu _ | Sethi _ | Ld _ | St _ | Save _ | Restore _ | Nop -> false

let map_target f = function
  | Branch b -> Branch { b with target = f b.target }
  | Call c -> Call { target = f c.target }
  | (Alu _ | Sethi _ | Ld _ | St _ | Jmpl _ | Save _ | Restore _ | Trap _ | Nop)
    as insn ->
    insn

let target = function
  | Branch { target; _ } | Call { target; _ } -> Some target
  | Alu _ | Sethi _ | Ld _ | St _ | Jmpl _ | Save _ | Restore _ | Trap _ | Nop
    ->
    None

let alu_to_string = function
  | Add -> "add"
  | Sub -> "sub"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Andn -> "andn"
  | Orn -> "orn"
  | Xnor -> "xnor"
  | Sll -> "sll"
  | Srl -> "srl"
  | Sra -> "sra"
  | Smul -> "smul"
  | Umul -> "umul"
  | Sdiv -> "sdiv"
  | Udiv -> "udiv"

let alu_of_string = function
  | "add" -> Add
  | "sub" -> Sub
  | "and" -> And
  | "or" -> Or
  | "xor" -> Xor
  | "andn" -> Andn
  | "orn" -> Orn
  | "xnor" -> Xnor
  | "sll" -> Sll
  | "srl" -> Srl
  | "sra" -> Sra
  | "smul" -> Smul
  | "umul" -> Umul
  | "sdiv" -> Sdiv
  | "udiv" -> Udiv
  | s -> invalid_arg (Printf.sprintf "Insn.alu_of_string: %S" s)

let equal_operand a b =
  match a, b with
  | Reg r1, Reg r2 -> Reg.equal r1 r2
  | Imm i1, Imm i2 -> i1 = i2
  | (Reg _ | Imm _), _ -> false

let equal_target a b =
  match a, b with
  | Sym s1, Sym s2 -> String.equal s1 s2
  | Abs a1, Abs a2 -> a1 = a2
  | (Sym _ | Abs _), _ -> false

let equal (a : t) (b : t) =
  match a, b with
  | Alu x, Alu y ->
    x.op = y.op && x.cc = y.cc && Reg.equal x.rs1 y.rs1
    && equal_operand x.op2 y.op2 && Reg.equal x.rd y.rd
  | Sethi x, Sethi y -> x.imm = y.imm && Reg.equal x.rd y.rd
  | Ld x, Ld y ->
    (* [signed] only affects sub-word widths. *)
    let signed_matters = match x.width with Byte | Half -> true | Word | Double -> false in
    x.width = y.width
    && ((not signed_matters) || x.signed = y.signed)
    && Reg.equal x.rs1 y.rs1
    && equal_operand x.off y.off && Reg.equal x.rd y.rd
  | St x, St y ->
    x.width = y.width && Reg.equal x.rd y.rd && Reg.equal x.rs1 y.rs1
    && equal_operand x.off y.off
  | Branch x, Branch y -> Cond.equal x.cond y.cond && equal_target x.target y.target
  | Call x, Call y -> equal_target x.target y.target
  | Jmpl x, Jmpl y ->
    Reg.equal x.rs1 y.rs1 && equal_operand x.off y.off && Reg.equal x.rd y.rd
  | Save x, Save y ->
    Reg.equal x.rs1 y.rs1 && equal_operand x.op2 y.op2 && Reg.equal x.rd y.rd
  | Restore x, Restore y ->
    Reg.equal x.rs1 y.rs1 && equal_operand x.op2 y.op2 && Reg.equal x.rd y.rd
  | Trap x, Trap y -> x.number = y.number
  | Nop, Nop -> true
  | ( ( Alu _ | Sethi _ | Ld _ | St _ | Branch _ | Call _ | Jmpl _ | Save _
      | Restore _ | Trap _ | Nop ),
      _ ) ->
    false
