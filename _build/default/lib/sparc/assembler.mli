(** Two-pass assembler: lays out text and static data, resolves symbolic
    labels, and produces a loadable image of decoded instructions. *)

type image = {
  text : Insn.t array;  (** decoded text, one instruction per word *)
  text_base : int;      (** address of [text.(0)]; instruction [k] lives
                            at [text_base + 4k] *)
  data_base : int;
  data_limit : int;     (** first address past static data — the heap
                            break handed to the allocator *)
  data_init : (int * int) list;  (** initialized data words [(addr, value)] *)
  labels : (string, int) Hashtbl.t;
  entry : int;          (** resolved entry-point address *)
  source : Asm.item list;  (** the item list the image was assembled from *)
  insn_items : int array;  (** [insn_items.(k)] is the index into [source]
                               of the item that produced text word [k] *)
}

exception Error of string

val default_text_base : int
val default_data_base : int

val assemble : ?text_base:int -> ?data_base:int -> Asm.program -> image
(** @raise Error on duplicate or undefined labels and malformed data. *)

val addr_of_label : image -> string -> int option
val label_of_addr : image -> int -> string option

val text_limit : image -> int
(** First address past the text segment. *)

val in_text : image -> int -> bool
