(** Debugger symbol tables (the paper's STAB entries).

    The compiler records, for every source variable, where it lives —
    an absolute data address or a frame-pointer offset — together with
    its size and enough type structure to resolve [s.f]-style break
    conditions.  The symbol-table pattern-matching optimization (§4.2)
    matches store-address expression DAGs against these entries. *)

type location =
  | Absolute of int            (** resolved static address *)
  | Fp_offset of int           (** [%fp + offset]; locals and parameters *)
  | Data_label of string * int (** static address, pre-assembly *)

type ctype =
  | Scalar
  | Pointer
  | Array of { elems : int }   (** word elements *)
  | Struct of { fields : (string * int) list }
      (** field name, word offset within the struct *)

type entry = {
  name : string;
  func : string option;  (** [None] for globals, [Some f] for locals of [f] *)
  location : location;
  size_words : int;
  ctype : ctype;
}

type t

val empty : t
val add : entry -> t -> t
val of_list : entry list -> t
val entries : t -> entry list

val scalar : ?func:string -> name:string -> location -> entry
(** Convenience constructor for a one-word variable. *)

val lookup : t -> ?func:string -> string -> entry option
(** Exact-scope lookup: [?func:None] finds globals only. *)

val lookup_visible : t -> func:string -> string -> entry option
(** Source-language visibility: locals of [func] shadow globals. *)

val globals : t -> entry list
val locals_of : t -> string -> entry list

val size_bytes : entry -> int

val field_offset : entry -> string -> int option
(** Word offset of a struct field, if [entry] is a struct. *)

val resolve_data_labels : addr_of_label:(string -> int option) -> t -> t
(** Replace {!Data_label} locations with {!Absolute} addresses using the
    assembler's label map. *)

val pp_location : Format.formatter -> location -> unit
val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit
