(** SPARC integer registers.

    Thirty-two registers are visible at any time: eight globals and the
    current window's eight each of {i out}, {i local} and {i in}
    registers.  [%g0] reads as zero and ignores writes; [%o6] is the
    stack pointer, [%i6] the frame pointer, [%o7]/[%i7] hold return
    addresses across [call]/[save]. *)

type t =
  | G of int  (** [%g0..%g7]; [%g0] is hardwired to zero *)
  | O of int  (** [%o0..%o7]; [%o6] = [%sp], [%o7] = call return address *)
  | L of int  (** [%l0..%l7] *)
  | I of int  (** [%i0..%i7]; [%i6] = [%fp], [%i7] = callee return address *)

val g : int -> t
val o : int -> t
val l : int -> t
val i_ : int -> t
(** Checked constructors. @raise Invalid_argument if the index is not in [0,8). *)

val g0 : t
val sp : t
val fp : t
val o7 : t
val i7 : t

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val index : t -> int
(** Dense index in [0,32): globals, outs, locals, ins. *)

val of_index : int -> t
(** Inverse of {!index}. @raise Invalid_argument outside [0,32). *)

val to_string : t -> string
(** Assembly syntax, e.g. ["%o3"]; [%o6]/[%i6] print as ["%sp"]/["%fp"]. *)

val of_string : string -> t
(** Inverse of {!to_string}. @raise Invalid_argument on malformed input. *)

val pp : Format.formatter -> t -> unit

val all : t list
(** All 32 registers in {!index} order. *)

val is_global : t -> bool

val is_windowed : t -> bool
(** True for out/local/in registers, which rotate on [save]/[restore]. *)
