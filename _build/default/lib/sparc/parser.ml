exception Error of { line : int; message : string }

let errorf line fmt =
  Format.kasprintf (fun message -> raise (Error { line; message })) fmt

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '.' || c = '$'

let parse_int line s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> errorf line "bad integer %S" s

(* Split an operand list on commas, then trim.  Brackets never contain
   commas in this syntax, so a flat split is safe. *)
let split_operands s =
  String.split_on_char ',' s
  |> List.map String.trim
  |> List.filter (fun s -> s <> "")

let parse_reg line s =
  try Reg.of_string s with Invalid_argument _ -> errorf line "bad register %S" s

let parse_operand line s =
  if String.length s > 0 && s.[0] = '%' then Insn.Reg (parse_reg line s)
  else Insn.Imm (parse_int line s)

(* Addresses: [%r], [%r+imm], [%r-imm], [%r+%r2]. *)
let parse_address line s =
  let n = String.length s in
  if n < 2 || s.[0] <> '[' || s.[n - 1] <> ']' then
    errorf line "bad address %S" s
  else begin
    let body = String.sub s 1 (n - 2) in
    let split_at i =
      let base = String.trim (String.sub body 0 i) in
      let rest = String.trim (String.sub body i (String.length body - i)) in
      (base, rest)
    in
    let rec find_sep i =
      if i >= String.length body then None
      else if (body.[i] = '+' || body.[i] = '-') && i > 0 then Some i
      else find_sep (i + 1)
    in
    match find_sep 0 with
    | None -> (parse_reg line (String.trim body), Insn.Imm 0)
    | Some i ->
      let base, rest = split_at i in
      let base = parse_reg line base in
      if String.length rest > 1 && rest.[1] = '%' then
        (* "+%rN" — register offset. *)
        (base, Insn.Reg (parse_reg line (String.sub rest 1 (String.length rest - 1))))
      else (base, Insn.Imm (parse_int line rest))
  end

let parse_target line s =
  if String.length s >= 2 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X') then
    Insn.Abs (parse_int line s)
  else Insn.Sym s

(* "label" | "label+off" | "label-off" for the set pseudo. *)
let parse_label_offset line s =
  let rec find i =
    if i >= String.length s then None
    else if s.[i] = '+' || s.[i] = '-' then Some i
    else find (i + 1)
  in
  match find 1 with
  | None -> (s, 0)
  | Some i ->
    let label = String.sub s 0 i in
    let off = parse_int line (String.sub s i (String.length s - i)) in
    (label, off)

let parse_hi line s =
  (* %hi(0x...) *)
  let prefix = "%hi(" in
  let n = String.length s in
  if n > 5 && String.sub s 0 4 = prefix && s.[n - 1] = ')' then
    let v = parse_int line (String.sub s 4 (n - 5)) in
    Word.to_unsigned v lsr 10
  else errorf line "bad sethi operand %S" s

let ld_widths =
  [
    ("ld", (Insn.Word, true));
    ("ldsb", (Insn.Byte, true));
    ("ldub", (Insn.Byte, false));
    ("ldsh", (Insn.Half, true));
    ("lduh", (Insn.Half, false));
    ("ldd", (Insn.Double, true));
  ]

let st_widths =
  [ ("st", Insn.Word); ("stb", Insn.Byte); ("sth", Insn.Half); ("std", Insn.Double) ]

let parse_insn line mnemonic operands : Asm.item list =
  let ops = split_operands operands in
  let expect n =
    if List.length ops <> n then
      errorf line "%s: expected %d operands, got %d" mnemonic n (List.length ops)
  in
  let alu_item ?cc op =
    expect 3;
    match ops with
    | [ a; b; c ] ->
      [ Asm.Insn (Asm.alu ?cc op (parse_reg line a) (parse_operand line b) (parse_reg line c)) ]
    | _ -> assert false
  in
  let strip_cc m = String.sub m 0 (String.length m - 2) in
  match mnemonic with
  | "nop" -> [ Asm.Insn Asm.nop ]
  | "ret" -> [ Asm.Insn Asm.ret ]
  | "retl" -> [ Asm.Insn Asm.retl ]
  | "sethi" -> (
    expect 2;
    match ops with
    | [ hi; rd ] ->
      [ Asm.Insn (Asm.sethi (parse_hi line hi) (parse_reg line rd)) ]
    | _ -> assert false)
  | "set" -> (
    expect 2;
    match ops with
    | [ v; rd ] ->
      let rd = parse_reg line rd in
      if String.length v > 0 && (v.[0] = '-' || (v.[0] >= '0' && v.[0] <= '9'))
      then Asm.insns (Asm.set (parse_int line v) rd)
      else
        let label, offset = parse_label_offset line v in
        [ Asm.Set_label { label; offset; rd } ]
    | _ -> assert false)
  | "mov" -> (
    expect 2;
    match ops with
    | [ a; rd ] ->
      [ Asm.Insn (Asm.mov (parse_operand line a) (parse_reg line rd)) ]
    | _ -> assert false)
  | "cmp" -> (
    expect 2;
    match ops with
    | [ a; b ] -> [ Asm.Insn (Asm.cmp (parse_reg line a) (parse_operand line b)) ]
    | _ -> assert false)
  | "tst" -> (
    expect 1;
    match ops with
    | [ a ] -> [ Asm.Insn (Asm.tst (parse_reg line a)) ]
    | _ -> assert false)
  | "call" -> (
    expect 1;
    match ops with
    | [ t ] -> [ Asm.Insn (Insn.Call { target = parse_target line t }) ]
    | _ -> assert false)
  | "jmpl" -> (
    expect 2;
    match ops with
    | [ addr; rd ] ->
      (* "rs1+off" without brackets *)
      let base, off = parse_address line ("[" ^ addr ^ "]") in
      [ Asm.Insn (Asm.jmpl base off (parse_reg line rd)) ]
    | _ -> assert false)
  | "save" -> (
    expect 3;
    match ops with
    | [ a; b; c ] ->
      [
        Asm.Insn
          (Insn.Save
             {
               rs1 = parse_reg line a;
               op2 = parse_operand line b;
               rd = parse_reg line c;
             });
      ]
    | _ -> assert false)
  | "restore" ->
    if ops = [] then [ Asm.Insn Asm.restore ]
    else (
      expect 3;
      match ops with
      | [ a; b; c ] ->
        [
          Asm.Insn
            (Insn.Restore
               {
                 rs1 = parse_reg line a;
                 op2 = parse_operand line b;
                 rd = parse_reg line c;
               });
        ]
      | _ -> assert false)
  | "ta" -> (
    expect 1;
    match ops with
    | [ n ] -> [ Asm.Insn (Asm.trap (parse_int line n)) ]
    | _ -> assert false)
  | m when List.mem_assoc m ld_widths -> (
    expect 2;
    let width, signed = List.assoc m ld_widths in
    match ops with
    | [ addr; rd ] ->
      let rs1, off = parse_address line addr in
      [ Asm.Insn (Asm.ld ~width ~signed rs1 off (parse_reg line rd)) ]
    | _ -> assert false)
  | m when List.mem_assoc m st_widths -> (
    expect 2;
    let width = List.assoc m st_widths in
    match ops with
    | [ rd; addr ] ->
      let rs1, off = parse_address line addr in
      [ Asm.Insn (Asm.st ~width (parse_reg line rd) rs1 off) ]
    | _ -> assert false)
  | m
    when String.length m > 2
         && String.sub m (String.length m - 2) 2 = "cc"
         && (try ignore (Insn.alu_of_string (strip_cc m)); true
             with Invalid_argument _ -> false) ->
    alu_item ~cc:true (Insn.alu_of_string (strip_cc m))
  | m when (try ignore (Insn.alu_of_string m); true with Invalid_argument _ -> false)
    ->
    alu_item (Insn.alu_of_string m)
  | m when String.length m > 1 && m.[0] = 'b' -> (
    let cond =
      try Cond.of_string (String.sub m 1 (String.length m - 1))
      with Invalid_argument _ -> errorf line "unknown mnemonic %S" m
    in
    expect 1;
    match ops with
    | [ t ] -> [ Asm.Insn (Insn.Branch { cond; target = parse_target line t }) ]
    | _ -> assert false)
  | m -> errorf line "unknown mnemonic %S" m

type section = Text | Data

let program_of_string src : Asm.program =
  let text = ref [] in
  let data = ref [] in
  let entry = ref "main" in
  let section = ref Text in
  let current_data : (string * int ref * int list ref) option ref = ref None in
  let flush_data () =
    match !current_data with
    | None -> ()
    | Some (name, size, init) ->
      let size = if !size = 0 then 4 * List.length !init else !size in
      data := { Asm.name; size; init = List.rev !init } :: !data;
      current_data := None
  in
  let lines = String.split_on_char '\n' src in
  List.iteri
    (fun lineno raw ->
      let line = lineno + 1 in
      (* Strip inline comments introduced by '!'.  A line that is only a
         comment is preserved as a Comment item. *)
      let body, comment =
        match String.index_opt raw '!' with
        | Some i ->
          ( String.sub raw 0 i,
            Some (String.trim (String.sub raw (i + 1) (String.length raw - i - 1))) )
        | None -> (raw, None)
      in
      let body = String.trim body in
      if body = "" then begin
        match comment with
        | Some c when !section = Text -> text := Asm.Comment c :: !text
        | Some _ | None -> ()
      end
      else begin
        (* Leading label? *)
        let body =
          match String.index_opt body ':' with
          | Some i
            when i > 0
                 && String.for_all is_ident_char (String.sub body 0 i) ->
            let label = String.sub body 0 i in
            (match !section with
            | Text -> text := Asm.Label label :: !text
            | Data ->
              flush_data ();
              current_data := Some (label, ref 0, ref []));
            String.trim (String.sub body (i + 1) (String.length body - i - 1))
          | Some _ | None -> body
        in
        if body = "" then ()
        else if body.[0] = '.' then begin
          let parts =
            String.split_on_char ' ' body
            |> List.concat_map (String.split_on_char '\t')
            |> List.filter (fun s -> s <> "")
          in
          match parts with
          | [ ".text" ] ->
            flush_data ();
            section := Text
          | [ ".data" ] -> section := Data
          | [ ".entry"; name ] -> entry := name
          | [ ".skip"; n ] -> (
            match !current_data with
            | Some (_, size, init) -> size := (4 * List.length !init) + parse_int line n
            | None -> errorf line ".skip outside a data definition")
          | [ ".word"; n ] -> (
            match !current_data with
            | Some (_, _, init) -> init := parse_int line n :: !init
            | None -> errorf line ".word outside a data definition")
          | _ -> errorf line "bad directive %S" body
        end
        else begin
          match !section with
          | Data -> errorf line "instruction in data section"
          | Text ->
            let mnemonic, operands =
              match String.index_opt body ' ' with
              | None -> (body, "")
              | Some i ->
                ( String.sub body 0 i,
                  String.trim (String.sub body (i + 1) (String.length body - i - 1))
                )
            in
            let items = parse_insn line mnemonic operands in
            List.iter (fun item -> text := item :: !text) items
        end
      end)
    lines;
  flush_data ();
  { Asm.text = List.rev !text; data = List.rev !data; entry = !entry }
