lib/sparc/word.mli: Format
