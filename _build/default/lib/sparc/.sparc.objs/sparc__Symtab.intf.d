lib/sparc/symtab.mli: Format
