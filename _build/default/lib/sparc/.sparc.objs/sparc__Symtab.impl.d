lib/sparc/symtab.ml: Fmt List String Word
