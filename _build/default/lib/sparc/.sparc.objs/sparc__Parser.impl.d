lib/sparc/parser.ml: Asm Cond Format Insn List Reg String Word
