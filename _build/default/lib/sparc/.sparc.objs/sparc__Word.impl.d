lib/sparc/word.ml: Fmt
