lib/sparc/printer.mli: Asm Format Insn
