lib/sparc/asm.ml: Cond Insn List Reg Word
