lib/sparc/insn.ml: Cond Printf Reg String
