lib/sparc/cond.ml: Fmt Printf
