lib/sparc/asm.mli: Cond Insn Reg
