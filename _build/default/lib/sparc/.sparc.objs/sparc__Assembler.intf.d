lib/sparc/assembler.mli: Asm Hashtbl Insn
