lib/sparc/printer.ml: Asm Cond Fmt Insn List Printf Reg Word
