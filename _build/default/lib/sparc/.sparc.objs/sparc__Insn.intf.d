lib/sparc/insn.mli: Cond Reg
