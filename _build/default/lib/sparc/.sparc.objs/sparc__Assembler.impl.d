lib/sparc/assembler.ml: Array Asm Format Hashtbl Insn List String Word
