lib/sparc/cond.mli: Format
