lib/sparc/parser.mli: Asm
