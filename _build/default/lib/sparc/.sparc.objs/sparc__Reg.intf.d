lib/sparc/reg.mli: Format
