lib/sparc/reg.ml: Char Fmt List Printf String
