(* 32-bit machine arithmetic on top of OCaml's native [int].

   The simulator stores register and memory values as OCaml [int]s
   normalized to the signed 32-bit range [-2^31, 2^31).  All arithmetic
   must go through [norm] (or the wrappers below) so that overflow wraps
   exactly as it would on a 32-bit SPARC. *)

let norm x =
  let v = x land 0xFFFFFFFF in
  if v land 0x80000000 <> 0 then v - 0x1_0000_0000 else v

let to_unsigned x = x land 0xFFFFFFFF

let of_unsigned = norm

let add a b = norm (a + b)
let sub a b = norm (a - b)
let mul a b = norm (a * b)

let sdiv a b = if b = 0 then raise Division_by_zero else norm (a / b)

let udiv a b =
  let ua = to_unsigned a and ub = to_unsigned b in
  if ub = 0 then raise Division_by_zero else norm (ua / ub)

let umul a b = norm (to_unsigned a * to_unsigned b)

let logand a b = norm (a land b)
let logor a b = norm (a lor b)
let logxor a b = norm (a lxor b)
let lognot a = norm (lnot a)

let shift_amount n = n land 31

let sll a n = norm (a lsl shift_amount n)
let srl a n = norm (to_unsigned a lsr shift_amount n)

let sra a n =
  (* [a] is already sign-normalized, so OCaml's arithmetic shift works. *)
  norm (a asr shift_amount n)

(* Carry and overflow for the condition codes, computed on the unsigned
   33-bit result as the hardware would. *)

let add_carry a b =
  to_unsigned a + to_unsigned b > 0xFFFFFFFF

let add_overflow a b =
  let r = add a b in
  (a >= 0 && b >= 0 && r < 0) || (a < 0 && b < 0 && r >= 0)

let sub_carry a b =
  (* Borrow: set when unsigned a < unsigned b. *)
  to_unsigned a < to_unsigned b

let sub_overflow a b =
  let r = sub a b in
  (a >= 0 && b < 0 && r < 0) || (a < 0 && b >= 0 && r >= 0)

let compare_unsigned a b = compare (to_unsigned a) (to_unsigned b)

let pp_hex ppf x = Fmt.pf ppf "0x%08x" (to_unsigned x)
