open Insn

let operand_to_string = function
  | Reg r -> Reg.to_string r
  | Imm i -> string_of_int i

let target_to_string = function
  | Sym s -> s
  | Abs a -> Printf.sprintf "0x%x" (Word.to_unsigned a)

let address_to_string rs1 off =
  match rs1, off with
  | r, Imm 0 -> Printf.sprintf "[%s]" (Reg.to_string r)
  | r, Imm i when i < 0 -> Printf.sprintf "[%s%d]" (Reg.to_string r) i
  | r, Imm i -> Printf.sprintf "[%s+%d]" (Reg.to_string r) i
  | r, Reg r2 -> Printf.sprintf "[%s+%s]" (Reg.to_string r) (Reg.to_string r2)

let ld_mnemonic width signed =
  match width, signed with
  | Byte, true -> "ldsb"
  | Byte, false -> "ldub"
  | Half, true -> "ldsh"
  | Half, false -> "lduh"
  | Word, _ -> "ld"
  | Double, _ -> "ldd"

let st_mnemonic = function
  | Byte -> "stb"
  | Half -> "sth"
  | Word -> "st"
  | Double -> "std"

let insn_to_string = function
  | Alu { op; cc; rs1; op2; rd } ->
    Printf.sprintf "%s%s %s, %s, %s" (alu_to_string op)
      (if cc then "cc" else "")
      (Reg.to_string rs1) (operand_to_string op2) (Reg.to_string rd)
  | Sethi { imm; rd } ->
    Printf.sprintf "sethi %%hi(0x%x), %s" (Word.to_unsigned (imm lsl 10)) (Reg.to_string rd)
  | Ld { width; signed; rs1; off; rd } ->
    Printf.sprintf "%s %s, %s" (ld_mnemonic width signed)
      (address_to_string rs1 off) (Reg.to_string rd)
  | St { width; rd; rs1; off } ->
    Printf.sprintf "%s %s, %s" (st_mnemonic width) (Reg.to_string rd)
      (address_to_string rs1 off)
  | Branch { cond; target } ->
    Printf.sprintf "b%s %s" (Cond.to_string cond) (target_to_string target)
  | Call { target } -> Printf.sprintf "call %s" (target_to_string target)
  | Jmpl { rs1; off; rd } ->
    let addr =
      match off with
      | Imm i when i < 0 -> Printf.sprintf "%s%d" (Reg.to_string rs1) i
      | Imm i -> Printf.sprintf "%s+%d" (Reg.to_string rs1) i
      | Reg r -> Printf.sprintf "%s+%s" (Reg.to_string rs1) (Reg.to_string r)
    in
    Printf.sprintf "jmpl %s, %s" addr (Reg.to_string rd)
  | Save { rs1; op2; rd } ->
    Printf.sprintf "save %s, %s, %s" (Reg.to_string rs1)
      (operand_to_string op2) (Reg.to_string rd)
  | Restore { rs1; op2; rd } ->
    Printf.sprintf "restore %s, %s, %s" (Reg.to_string rs1)
      (operand_to_string op2) (Reg.to_string rd)
  | Trap { number } -> Printf.sprintf "ta %d" number
  | Nop -> "nop"

let item_to_string = function
  | Asm.Insn i -> "\t" ^ insn_to_string i
  | Asm.Label l -> l ^ ":"
  | Asm.Set_label { label; offset = 0; rd } ->
    Printf.sprintf "\tset %s, %s" label (Reg.to_string rd)
  | Asm.Set_label { label; offset; rd } ->
    Printf.sprintf "\tset %s%+d, %s" label offset (Reg.to_string rd)
  | Asm.Comment c -> "\t! " ^ c

let pp_insn ppf i = Fmt.string ppf (insn_to_string i)
let pp_item ppf i = Fmt.string ppf (item_to_string i)

let pp_program ppf (p : Asm.program) =
  Fmt.pf ppf "\t.text\n";
  List.iter (fun item -> Fmt.pf ppf "%s\n" (item_to_string item)) p.text;
  if p.data <> [] then begin
    Fmt.pf ppf "\t.data\n";
    List.iter
      (fun { Asm.name; size; init } ->
        Fmt.pf ppf "%s:" name;
        if init = [] then Fmt.pf ppf "\t.skip %d\n" size
        else begin
          List.iter (fun w -> Fmt.pf ppf "\t.word %d\n" w) init;
          let remaining = size - (4 * List.length init) in
          if remaining > 0 then Fmt.pf ppf "\t.skip %d\n" remaining
        end)
      p.data
  end;
  Fmt.pf ppf "\t.entry %s\n" p.entry

let program_to_string p = Fmt.str "%a" pp_program p
