type image = {
  text : Insn.t array;
  text_base : int;
  data_base : int;
  data_limit : int;
  data_init : (int * int) list;
  labels : (string, int) Hashtbl.t;
  entry : int;
  source : Asm.item list;
  insn_items : int array;
}

exception Error of string

let errorf fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

let default_text_base = 0x0001_0000
let default_data_base = 0x0040_0000

let align8 n = (n + 7) land lnot 7

let layout_data ~data_base data =
  let labels = ref [] in
  let init = ref [] in
  let addr = ref data_base in
  List.iter
    (fun { Asm.name; size; init = words } ->
      if size <= 0 then errorf "data %s: non-positive size %d" name size;
      if List.length words * 4 > size then
        errorf "data %s: %d init words exceed size %d" name (List.length words) size;
      labels := (name, !addr) :: !labels;
      List.iteri (fun i w -> init := (!addr + (4 * i), Word.norm w) :: !init) words;
      addr := align8 (!addr + size))
    data;
  (List.rev !labels, List.rev !init, !addr)

let assemble ?(text_base = default_text_base) ?(data_base = default_data_base)
    (program : Asm.program) =
  let labels = Hashtbl.create 97 in
  let add_label name addr =
    if Hashtbl.mem labels name then errorf "duplicate label %s" name
    else Hashtbl.add labels name addr
  in
  (* Pass 1: assign addresses to text labels. *)
  let pc = ref text_base in
  List.iter
    (fun item ->
      (match item with
      | Asm.Label name -> add_label name !pc
      | Asm.Insn _ | Asm.Set_label _ | Asm.Comment _ -> ());
      pc := !pc + Asm.item_size item)
    program.text;
  let data_labels, data_init, data_limit = layout_data ~data_base program.data in
  List.iter (fun (name, addr) -> add_label name addr) data_labels;
  let resolve_label name =
    match Hashtbl.find_opt labels name with
    | Some addr -> addr
    | None -> errorf "undefined label %s" name
  in
  let resolve_target = function
    | Insn.Sym name -> Insn.Abs (resolve_label name)
    | Insn.Abs _ as t -> t
  in
  (* Pass 2: emit instructions with resolved targets.  [insn_items.(k)]
     records the index in [program.text] that produced text word [k],
     letting clients map between source items and text addresses. *)
  let out = ref [] in
  let origins = ref [] in
  let emit item_idx insn =
    out := insn :: !out;
    origins := item_idx :: !origins
  in
  List.iteri
    (fun idx item ->
      match item with
      | Asm.Insn insn -> emit idx (Insn.map_target resolve_target insn)
      | Asm.Set_label { label; offset; rd } ->
        let v = Word.norm (resolve_label label + offset) in
        let u = Word.to_unsigned v in
        let hi = u lsr 10 and lo = u land 0x3FF in
        emit idx (Insn.Sethi { imm = hi; rd });
        emit idx (Asm.or_ rd (Insn.Imm lo) rd)
      | Asm.Label _ | Asm.Comment _ -> ())
    program.text;
  let text = Array.of_list (List.rev !out) in
  let insn_items = Array.of_list (List.rev !origins) in
  let entry = resolve_label program.entry in
  {
    text;
    text_base;
    data_base;
    data_limit;
    data_init;
    labels;
    entry;
    source = program.text;
    insn_items;
  }

let addr_of_label image name =
  match Hashtbl.find_opt image.labels name with
  | Some a -> Some a
  | None -> None

let label_of_addr image addr =
  Hashtbl.fold
    (fun name a best ->
      if a = addr then
        match best with
        | Some b when String.compare b name <= 0 -> best
        | Some _ | None -> Some name
      else best)
    image.labels None

let text_limit image = image.text_base + (4 * Array.length image.text)

let in_text image addr = addr >= image.text_base && addr < text_limit image
