type t =
  | G of int  (* %g0..%g7, %g0 hardwired to zero *)
  | O of int  (* %o0..%o7, %o6 = %sp, %o7 = call return address *)
  | L of int  (* %l0..%l7 *)
  | I of int  (* %i0..%i7, %i6 = %fp, %i7 = callee return address *)

let in_range i = i >= 0 && i < 8

let g i = if in_range i then G i else invalid_arg "Reg.g"
let o i = if in_range i then O i else invalid_arg "Reg.o"
let l i = if in_range i then L i else invalid_arg "Reg.l"
let i_ i = if in_range i then I i else invalid_arg "Reg.i_"

let g0 = G 0
let sp = O 6
let fp = I 6
let o7 = O 7
let i7 = I 7

let equal a b =
  match a, b with
  | G x, G y | O x, O y | L x, L y | I x, I y -> x = y
  | (G _ | O _ | L _ | I _), _ -> false

let index = function
  | G i -> i
  | O i -> 8 + i
  | L i -> 16 + i
  | I i -> 24 + i

let of_index n =
  if n < 0 || n > 31 then invalid_arg "Reg.of_index"
  else if n < 8 then G n
  else if n < 16 then O (n - 8)
  else if n < 24 then L (n - 16)
  else I (n - 24)

let compare a b = compare (index a) (index b)
let hash = index

let to_string = function
  | O 6 -> "%sp"
  | I 6 -> "%fp"
  | G i -> Printf.sprintf "%%g%d" i
  | O i -> Printf.sprintf "%%o%d" i
  | L i -> Printf.sprintf "%%l%d" i
  | I i -> Printf.sprintf "%%i%d" i

let of_string s =
  let fail () = invalid_arg (Printf.sprintf "Reg.of_string: %S" s) in
  match s with
  | "%sp" -> sp
  | "%fp" -> fp
  | _ ->
    if String.length s <> 3 || s.[0] <> '%' then fail ()
    else begin
      let i = Char.code s.[2] - Char.code '0' in
      if not (in_range i) then fail ()
      else
        match s.[1] with
        | 'g' -> G i
        | 'o' -> O i
        | 'l' -> L i
        | 'i' -> I i
        | _ -> fail ()
    end

let pp ppf r = Fmt.string ppf (to_string r)

let all = List.init 32 of_index

let is_global = function G _ -> true | O _ | L _ | I _ -> false

let is_windowed r = not (is_global r)
