(** Parser for the textual assembly syntax produced by {!Printer}.

    The grammar is line-oriented: optional [label:] prefix, one
    instruction or directive per line, ['!'] comments.  Directives:
    [.text], [.data], [.entry name], and within a data definition
    [.word n] / [.skip n].  Pseudo-instructions [set], [mov], [cmp],
    [tst], [ret], [retl] are accepted and expanded. *)

exception Error of { line : int; message : string }

val program_of_string : string -> Asm.program
(** @raise Error with a 1-based line number on malformed input. *)
