(** 32-bit machine arithmetic.

    The simulator represents every 32-bit register or memory word as an
    OCaml [int] normalized to the signed range [-2{^31}, 2{^31}).  All
    operations below return normalized values and wrap on overflow
    exactly like SPARC integer arithmetic. *)

val norm : int -> int
(** Truncate to 32 bits and sign-extend into the canonical range. *)

val to_unsigned : int -> int
(** Reinterpret a normalized value as unsigned, in [0, 2{^32}). *)

val of_unsigned : int -> int
(** Inverse of {!to_unsigned} (same as {!norm}). *)

val add : int -> int -> int
val sub : int -> int -> int
val mul : int -> int -> int

val sdiv : int -> int -> int
(** Signed division. @raise Division_by_zero on zero divisor. *)

val udiv : int -> int -> int
(** Unsigned division. @raise Division_by_zero on zero divisor. *)

val umul : int -> int -> int

val logand : int -> int -> int
val logor : int -> int -> int
val logxor : int -> int -> int
val lognot : int -> int

val sll : int -> int -> int
(** Logical shift left; the shift amount is taken modulo 32. *)

val srl : int -> int -> int
(** Logical shift right; the shift amount is taken modulo 32. *)

val sra : int -> int -> int
(** Arithmetic shift right; the shift amount is taken modulo 32. *)

val add_carry : int -> int -> bool
(** Carry out of bit 31 for [a + b]. *)

val add_overflow : int -> int -> bool
(** Signed overflow for [a + b]. *)

val sub_carry : int -> int -> bool
(** Borrow for [a - b], i.e. unsigned [a < b]. *)

val sub_overflow : int -> int -> bool
(** Signed overflow for [a - b]. *)

val compare_unsigned : int -> int -> int

val pp_hex : Format.formatter -> int -> unit
