(** Surface assembly programs: instruction streams with symbolic labels,
    plus builders for the common pseudo-instructions ([set], [mov],
    [cmp], [ret], ...) used by the compiler and by the monitored region
    service's check generators.

    This is the representation the instrumentation tool rewrites — the
    paper's "extra processing stage between the compiler and the
    assembler" (§2.1). *)

type item =
  | Insn of Insn.t
  | Label of string
  | Set_label of { label : string; offset : int; rd : Reg.t }
      (** [rd := address-of label + offset]; expands to a fixed two-word
          [sethi]/[or] pair once the assembler knows the address. *)
  | Comment of string

type ddef = { name : string; size : int; init : int list }
(** A static-data definition: [size] bytes (word-aligned), with leading
    words initialized from [init] and the rest zeroed. *)

type program = { text : item list; data : ddef list; entry : string }
(** [entry] names the label where execution starts. *)

val simm13_min : int
val simm13_max : int

val fits_simm13 : int -> bool
(** Whether [v] fits a SPARC 13-bit signed immediate. *)

(** {1 Instruction builders} *)

val alu : ?cc:bool -> Insn.alu -> Reg.t -> Insn.operand -> Reg.t -> Insn.t

val add : ?cc:bool -> Reg.t -> Insn.operand -> Reg.t -> Insn.t
val sub : ?cc:bool -> Reg.t -> Insn.operand -> Reg.t -> Insn.t
val and_ : ?cc:bool -> Reg.t -> Insn.operand -> Reg.t -> Insn.t
val or_ : ?cc:bool -> Reg.t -> Insn.operand -> Reg.t -> Insn.t
val xor : ?cc:bool -> Reg.t -> Insn.operand -> Reg.t -> Insn.t
val sll : Reg.t -> Insn.operand -> Reg.t -> Insn.t
val srl : Reg.t -> Insn.operand -> Reg.t -> Insn.t
val sra : Reg.t -> Insn.operand -> Reg.t -> Insn.t
val smul : Reg.t -> Insn.operand -> Reg.t -> Insn.t
val sdiv : Reg.t -> Insn.operand -> Reg.t -> Insn.t

val mov : Insn.operand -> Reg.t -> Insn.t
val sethi : int -> Reg.t -> Insn.t

val set : int -> Reg.t -> Insn.t list
(** Load an arbitrary 32-bit constant: one [mov] when it fits simm13,
    otherwise [sethi] (+ [or] if the low bits are non-zero). *)

val cmp : Reg.t -> Insn.operand -> Insn.t
(** [subcc rs1, op2, %g0]. *)

val tst : Reg.t -> Insn.t
(** [orcc %g0, r, %g0]. *)

val ld : ?width:Insn.width -> ?signed:bool -> Reg.t -> Insn.operand -> Reg.t -> Insn.t
val st : ?width:Insn.width -> Reg.t -> Reg.t -> Insn.operand -> Insn.t
(** [st rd, [rs1+off]] — note the stored register comes first, as in
    SPARC assembly syntax. *)

val branch : Cond.t -> string -> Insn.t
val ba : string -> Insn.t
val call : string -> Insn.t
val jmpl : Reg.t -> Insn.operand -> Reg.t -> Insn.t

val ret : Insn.t
(** [jmpl %i7+8, %g0]. *)

val retl : Insn.t
(** [jmpl %o7+8, %g0] — leaf-routine return. *)

val save : int -> Insn.t
(** [save %sp, -frame, %sp]. *)

val restore : Insn.t
val trap : int -> Insn.t
val nop : Insn.t

(** {1 Item-level helpers} *)

val insns : Insn.t list -> item list

val item_size : item -> int
(** Encoded size in bytes: 4 per instruction, 8 for {!Set_label}, 0 for
    labels and comments. *)

val text_size : item list -> int

val stores : item list -> int
(** Static count of store instructions. *)

val map_insns : (Insn.t -> Insn.t) -> item list -> item list
