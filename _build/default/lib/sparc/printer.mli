(** Pretty-printing of instructions and programs in SPARC assembly
    syntax.  {!Parser.program_of_string} parses this format back; the
    round trip is exercised by the property tests. *)

val operand_to_string : Insn.operand -> string
val target_to_string : Insn.target -> string
val insn_to_string : Insn.t -> string
val item_to_string : Asm.item -> string

val pp_insn : Format.formatter -> Insn.t -> unit
val pp_item : Format.formatter -> Asm.item -> unit
val pp_program : Format.formatter -> Asm.program -> unit
val program_to_string : Asm.program -> string
