type location =
  | Absolute of int
  | Fp_offset of int
  | Data_label of string * int

type ctype =
  | Scalar
  | Pointer
  | Array of { elems : int }
  | Struct of { fields : (string * int) list }

type entry = {
  name : string;
  func : string option;
  location : location;
  size_words : int;
  ctype : ctype;
}

type t = { entries : entry list }

let empty = { entries = [] }

let add entry t = { entries = entry :: t.entries }

let of_list entries = { entries }

let entries t = t.entries

let scalar ?func ~name location = {
  name;
  func;
  location;
  size_words = 1;
  ctype = Scalar;
}

let same_scope func entry =
  match func, entry.func with
  | None, None -> true
  | Some f, Some g -> String.equal f g
  | None, Some _ | Some _, None -> false

let lookup t ?func name =
  List.find_opt
    (fun e -> String.equal e.name name && same_scope func e)
    t.entries

let lookup_visible t ~func name =
  match lookup t ~func name with
  | Some _ as e -> e
  | None -> lookup t name

let globals t = List.filter (fun e -> e.func = None) t.entries

let locals_of t func =
  List.filter (fun e -> same_scope (Some func) e) t.entries

let size_bytes e = e.size_words * 4

let field_offset e field =
  match e.ctype with
  | Struct { fields } ->
    List.assoc_opt field fields
  | Scalar | Pointer | Array _ -> None

let resolve_data_labels ~addr_of_label t =
  let resolve e =
    match e.location with
    | Data_label (label, off) -> (
      match addr_of_label label with
      | Some a -> { e with location = Absolute (a + off) }
      | None -> e)
    | Absolute _ | Fp_offset _ -> e
  in
  { entries = List.map resolve t.entries }

let pp_location ppf = function
  | Absolute a -> Fmt.pf ppf "@0x%08x" (Word.to_unsigned a)
  | Fp_offset o -> Fmt.pf ppf "%%fp%+d" o
  | Data_label (l, 0) -> Fmt.pf ppf "&%s" l
  | Data_label (l, o) -> Fmt.pf ppf "&%s%+d" l o

let pp_entry ppf e =
  let scope = match e.func with None -> "global" | Some f -> f in
  Fmt.pf ppf "%s:%s %a (%d words)" scope e.name pp_location e.location
    e.size_words

let pp ppf t = Fmt.(list ~sep:(any "@\n") pp_entry) ppf t.entries
