type item =
  | Insn of Insn.t
  | Label of string
  | Set_label of { label : string; offset : int; rd : Reg.t }
  | Comment of string

type ddef = { name : string; size : int; init : int list }

type program = { text : item list; data : ddef list; entry : string }

let simm13_min = -4096
let simm13_max = 4095

let fits_simm13 v = v >= simm13_min && v <= simm13_max

(* --- instruction builders --------------------------------------------- *)

let alu ?(cc = false) op rs1 op2 rd = Insn.Alu { op; cc; rs1; op2; rd }

let add ?cc rs1 op2 rd = alu ?cc Insn.Add rs1 op2 rd
let sub ?cc rs1 op2 rd = alu ?cc Insn.Sub rs1 op2 rd
let and_ ?cc rs1 op2 rd = alu ?cc Insn.And rs1 op2 rd
let or_ ?cc rs1 op2 rd = alu ?cc Insn.Or rs1 op2 rd
let xor ?cc rs1 op2 rd = alu ?cc Insn.Xor rs1 op2 rd
let sll rs1 op2 rd = alu Insn.Sll rs1 op2 rd
let srl rs1 op2 rd = alu Insn.Srl rs1 op2 rd
let sra rs1 op2 rd = alu Insn.Sra rs1 op2 rd
let smul rs1 op2 rd = alu Insn.Smul rs1 op2 rd
let sdiv rs1 op2 rd = alu Insn.Sdiv rs1 op2 rd

let mov op2 rd = or_ Reg.g0 op2 rd

let sethi imm rd = Insn.Sethi { imm; rd }

let set value rd =
  if fits_simm13 value then [ mov (Insn.Imm value) rd ]
  else
    let u = Word.to_unsigned value in
    let hi = u lsr 10 and lo = u land 0x3FF in
    let head = sethi hi rd in
    if lo = 0 then [ head ] else [ head; or_ rd (Insn.Imm lo) rd ]

let cmp rs1 op2 = sub ~cc:true rs1 op2 Reg.g0
let tst r = or_ ~cc:true Reg.g0 (Insn.Reg r) Reg.g0

let ld ?(width = Insn.Word) ?(signed = true) rs1 off rd =
  Insn.Ld { width; signed; rs1; off; rd }

let st ?(width = Insn.Word) rd rs1 off = Insn.St { width; rd; rs1; off }

let branch cond label = Insn.Branch { cond; target = Insn.Sym label }
let ba label = branch Cond.A label
let call label = Insn.Call { target = Insn.Sym label }
let jmpl rs1 off rd = Insn.Jmpl { rs1; off; rd }
let ret = jmpl Reg.i7 (Insn.Imm 8) Reg.g0
let retl = jmpl Reg.o7 (Insn.Imm 8) Reg.g0
let save frame = Insn.Save { rs1 = Reg.sp; op2 = Insn.Imm (-frame); rd = Reg.sp }
let restore = Insn.Restore { rs1 = Reg.g0; op2 = Insn.Imm 0; rd = Reg.g0 }
let trap number = Insn.Trap { number }
let nop = Insn.Nop

(* --- item-level helpers ------------------------------------------------ *)

let insns l = List.map (fun i -> Insn i) l

let item_size = function
  | Insn _ -> 4
  | Label _ | Comment _ -> 0
  | Set_label _ -> 8

let text_size items = List.fold_left (fun a i -> a + item_size i) 0 items

let stores items =
  List.filter (function Insn i -> Insn.is_store i | Label _ | Set_label _ | Comment _ -> false) items
  |> List.length

let map_insns f items =
  List.map (function Insn i -> Insn (f i) | (Label _ | Set_label _ | Comment _) as x -> x) items
