(** The simulated SPARC-subset instruction set.

    The subset covers what the naive debug compiler emits plus what the
    monitored-region-service check sequences need: the integer ALU (with
    and without condition-code update), [sethi], loads and stores of
    byte/half/word/double width, conditional branches, [call], indirect
    jumps ([jmpl]), register-window [save]/[restore], and unconditional
    traps.

    Control-transfer semantics differ from real SPARC v8 in one
    documented way: there are no branch delay slots.  [call] records the
    address of the call instruction itself in [%o7] and transfers
    immediately; the conventional return [jmpl %i7+8] therefore skips
    the padding word emitted after each call.  See DESIGN.md §2. *)

type operand = Reg of Reg.t | Imm of int

type target =
  | Sym of string  (** unresolved label; assembler resolves to {!Abs} *)
  | Abs of int     (** absolute byte address *)

type alu =
  | Add | Sub | And | Or | Xor | Andn | Orn | Xnor
  | Sll | Srl | Sra
  | Smul | Umul | Sdiv | Udiv

type width = Byte | Half | Word | Double

type t =
  | Alu of { op : alu; cc : bool; rs1 : Reg.t; op2 : operand; rd : Reg.t }
      (** [rd := rs1 op op2]; sets the condition codes when [cc]. *)
  | Sethi of { imm : int; rd : Reg.t }
      (** [rd := imm lsl 10] (the 22-bit [sethi] immediate). *)
  | Ld of { width : width; signed : bool; rs1 : Reg.t; off : operand; rd : Reg.t }
      (** [rd := mem[rs1 + off]]; [signed] selects sign extension for
          sub-word widths.  [Double] loads the even/odd pair [rd],[rd+1]. *)
  | St of { width : width; rd : Reg.t; rs1 : Reg.t; off : operand }
      (** [mem[rs1 + off] := rd].  [Double] stores the pair [rd],[rd+1]. *)
  | Branch of { cond : Cond.t; target : target }
  | Call of { target : target }
      (** [%o7 := pc; pc := target]. *)
  | Jmpl of { rs1 : Reg.t; off : operand; rd : Reg.t }
      (** [rd := pc; pc := rs1 + off] — indirect jump, used for returns. *)
  | Save of { rs1 : Reg.t; op2 : operand; rd : Reg.t }
      (** Push a register window, then [rd := rs1 + op2] (computed in the
          {e old} window, written in the new one). *)
  | Restore of { rs1 : Reg.t; op2 : operand; rd : Reg.t }
      (** Pop a register window; [rd := rs1 + op2] computed in the old
          window, written in the restored one. *)
  | Trap of { number : int }
      (** [ta number] — unconditional trap into the machine services. *)
  | Nop

val width_bytes : width -> int

val uses : t -> Reg.t list
(** Registers read, including the stored value register(s) of a store. *)

val defs : t -> Reg.t list
(** Registers written.  [Call] defines [%o7]. *)

val sets_cc : t -> bool

val is_store : t -> bool

val store_address : t -> (Reg.t * operand) option
(** [(base, offset)] of a store's effective address, if [t] is a store. *)

val is_control : t -> bool
(** Branch, call, indirect jump or trap. *)

val map_target : (target -> target) -> t -> t
(** Rewrite the branch/call target, if any. *)

val target : t -> target option

val alu_to_string : alu -> string
val alu_of_string : string -> alu
(** @raise Invalid_argument on unknown mnemonics. *)

val equal_operand : operand -> operand -> bool
val equal_target : target -> target -> bool
val equal : t -> t -> bool
