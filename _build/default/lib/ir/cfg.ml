exception Error of string

let errorf fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

type block = {
  id : int;
  labels : string list;
  mutable body : Tac.instr list;  (* no Label instrs *)
  mutable succs : int list;
  mutable preds : int list;
}

type t = {
  blocks : block array;
  entry : int;
  by_label : (string, int) Hashtbl.t;
}

let block t id = t.blocks.(id)
let n_blocks t = Array.length t.blocks

let is_terminator = function
  | Tac.Branch _ | Tac.Jump _ | Tac.Ret _ -> true
  | Tac.Label _ | Tac.Def _ | Tac.Store _ | Tac.Assert _ | Tac.Call _
  | Tac.Effect _ ->
    false

let build (instrs : Tac.instr list) : t =
  (* Group the stream into (labels, body) runs. *)
  let groups = ref [] in
  let labels = ref [] in
  let body = ref [] in
  let flush () =
    if !labels <> [] || !body <> [] then begin
      groups := (List.rev !labels, List.rev !body) :: !groups;
      labels := [];
      body := []
    end
  in
  List.iter
    (fun instr ->
      match instr with
      | Tac.Label l ->
        if !body <> [] then flush ();
        labels := l :: !labels
      | _ ->
        body := instr :: !body;
        if is_terminator instr then flush ())
    instrs;
  flush ();
  let groups = Array.of_list (List.rev !groups) in
  let blocks =
    Array.mapi
      (fun id (labels, body) -> { id; labels; body; succs = []; preds = [] })
      groups
  in
  let by_label = Hashtbl.create 64 in
  Array.iter
    (fun b -> List.iter (fun l -> Hashtbl.replace by_label l b.id) b.labels)
    blocks;
  let resolve l =
    match Hashtbl.find_opt by_label l with
    | Some id -> id
    | None -> errorf "branch to label %s outside function" l
  in
  let n = Array.length blocks in
  Array.iteri
    (fun id b ->
      let last = match List.rev b.body with [] -> None | x :: _ -> Some x in
      let succs =
        match last with
        | Some (Tac.Jump { target; _ }) -> [ resolve target ]
        | Some (Tac.Branch { target; _ }) ->
          let fall = if id + 1 < n then [ id + 1 ] else [] in
          resolve target :: fall
        | Some (Tac.Ret _) -> []
        | Some (Tac.Label _ | Tac.Def _ | Tac.Store _ | Tac.Assert _
               | Tac.Call _ | Tac.Effect _)
        | None ->
          if id + 1 < n then [ id + 1 ] else []
      in
      b.succs <- succs)
    blocks;
  Array.iter
    (fun b -> List.iter (fun s -> blocks.(s).preds <- b.id :: blocks.(s).preds) b.succs)
    blocks;
  { blocks; entry = 0; by_label }

(* --- assert insertion ------------------------------------------------------ *)

let relops_for cond =
  (* Refinements valid when a branch on [cond] over compare (a, b) is
     taken: a list of (refine-first-operand?, relop).  Unsigned and
     overflow conditions yield nothing. *)
  match (cond : Sparc.Cond.t) with
  | Sparc.Cond.E -> [ (true, Tac.Req); (false, Tac.Req) ]
  | Sparc.Cond.L -> [ (true, Tac.Rlt); (false, Tac.Rgt) ]
  | Sparc.Cond.Le -> [ (true, Tac.Rle); (false, Tac.Rge) ]
  | Sparc.Cond.G -> [ (true, Tac.Rgt); (false, Tac.Rlt) ]
  | Sparc.Cond.Ge -> [ (true, Tac.Rge); (false, Tac.Rle) ]
  | Sparc.Cond.Ne | Sparc.Cond.A | Sparc.Cond.N | Sparc.Cond.Gu
  | Sparc.Cond.Leu | Sparc.Cond.Cc | Sparc.Cond.Cs | Sparc.Cond.Pos
  | Sparc.Cond.Neg | Sparc.Cond.Vc | Sparc.Cond.Vs ->
    []

(* Resolve an operand through the copy chain inside [body] (scanning
   backwards from the end): [%l0 := $i; ...; cmp %l0, _] refines the
   pseudo [$i], not the transient register — essential because loop
   bodies reload matched variables from their memory homes, so only a
   refinement on the pseudo name reaches the address computation. *)
let resolve_copy body op =
  let rev = List.rev body in
  let rec defs_of name = function
    | [] -> None
    | Tac.Def { dst; rhs; _ } :: rest when Tac.name_equal dst name -> Some (rhs, rest)
    | Tac.Assert { dst; src; _ } :: rest when Tac.name_equal dst name ->
      Some (Tac.Mov (Tac.Name src), rest)
    | Tac.Call _ :: rest | Tac.Effect _ :: rest -> (
      (* Conservatively stop at clobber points for machine registers. *)
      match name with
      | Tac.Machine _ -> None
      | Tac.Pseudo _ -> defs_of name rest)
    | _ :: rest -> defs_of name rest
  in
  let rec chase depth name instrs =
    if depth > 16 then Tac.Name name
    else
      match defs_of name instrs with
      | Some (Tac.Mov (Tac.Name n'), rest) -> chase (depth + 1) n' rest
      | Some (Tac.Mov ((Tac.Imm _ | Tac.Lab _) as v), _) -> v
      | Some ((Tac.Bin _ | Tac.Load _ | Tac.Callret), _) | None -> Tac.Name name
  in
  match op with
  | Tac.Name n -> chase 0 n rev
  | Tac.Imm _ | Tac.Lab _ -> op

let asserts_for ~origin cond (a, b) =
  relops_for cond
  |> List.filter_map (fun (first, rel) ->
         let src, bound = if first then (a, b) else (b, a) in
         match src with
         | Tac.Name n -> Some (Tac.Assert { dst = n; src = n; rel; bound; origin })
         | Tac.Imm _ | Tac.Lab _ -> None)

(* Split each conditional edge that carries compare information,
   inserting a block holding the corresponding assert definitions.
   New blocks are appended; ids of existing blocks are preserved. *)
let insert_asserts (t : t) : t =
  let extra = ref [] in
  let next_id = ref (Array.length t.blocks) in
  Array.iter
    (fun b ->
      match List.rev b.body with
      | Tac.Branch { cond; compare = Some (ca, cb); origin; target = _ } :: _ -> (
        let cmp = (resolve_copy b.body ca, resolve_copy b.body cb) in
        let taken, fall =
          match b.succs with
          | [ taken; fall ] -> (taken, Some fall)
          | [ taken ] -> (taken, None)
          | _ -> errorf "conditional block with %d successors" (List.length b.succs)
        in
        let split cond_for_edge succ =
          let asserts = asserts_for ~origin cond_for_edge cmp in
          if asserts = [] then None
          else begin
            let id = !next_id in
            incr next_id;
            let nb = { id; labels = []; body = asserts; succs = [ succ ]; preds = [ b.id ] } in
            extra := nb :: !extra;
            Some nb
          end
        in
        (match split cond taken with
        | Some nb ->
          b.succs <- List.map (fun s -> if s = taken then nb.id else s) b.succs;
          t.blocks.(taken).preds <-
            List.map (fun p -> if p = b.id then nb.id else p) t.blocks.(taken).preds
        | None -> ());
        match fall with
        | Some fall -> (
          match split (Sparc.Cond.negate cond) fall with
          | Some nb ->
            b.succs <- List.map (fun s -> if s = fall then nb.id else s) b.succs;
            t.blocks.(fall).preds <-
              List.map (fun p -> if p = b.id then nb.id else p) t.blocks.(fall).preds
          | None -> ())
        | None -> ())
      | _ -> ())
    t.blocks;
  let blocks = Array.append t.blocks (Array.of_list (List.rev !extra)) in
  { t with blocks }

let reverse_postorder (t : t) : int list =
  let visited = Array.make (n_blocks t) false in
  let order = ref [] in
  let rec dfs id =
    if not visited.(id) then begin
      visited.(id) <- true;
      List.iter dfs t.blocks.(id).succs;
      order := id :: !order
    end
  in
  dfs t.entry;
  !order

let reachable (t : t) : bool array =
  let seen = Array.make (n_blocks t) false in
  let rec dfs id =
    if not seen.(id) then begin
      seen.(id) <- true;
      List.iter dfs t.blocks.(id).succs
    end
  in
  dfs t.entry;
  seen

let pp ppf t =
  Array.iter
    (fun b ->
      Fmt.pf ppf "block %d%a (preds %a, succs %a):@\n" b.id
        Fmt.(list ~sep:nop (any " " ++ string))
        b.labels
        Fmt.(list ~sep:comma int)
        b.preds
        Fmt.(list ~sep:comma int)
        b.succs;
      List.iter (fun i -> Fmt.pf ppf "%a@\n" Tac.pp i) b.body)
    t.blocks
