open Sparc

exception Error of string

let errorf fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

(* A function slice: the contiguous run of items from the function's
   label to the next function label.  Item indices are into the whole
   program's text list, so analysis results can be mapped back. *)
type slice = { fname : string; items : (int * Asm.item) list }

let slice_program ~function_labels (items : Asm.item list) : slice list =
  let is_function l = List.mem l function_labels in
  let indexed = List.mapi (fun i item -> (i, item)) items in
  let rec split acc current = function
    | [] -> List.rev (match current with None -> acc | Some s -> s :: acc)
    | ((_, Asm.Label l) as x) :: rest when is_function l ->
      let acc = match current with None -> acc | Some s -> s :: acc in
      split acc (Some { fname = l; items = [ x ] }) rest
    | x :: rest -> (
      match current with
      | None -> split acc current rest  (* preamble before first function *)
      | Some s -> split acc (Some { s with items = x :: s.items }) rest)
  in
  split [] None indexed
  |> List.map (fun s -> { s with items = List.rev s.items })

let reg_operand r = if Reg.equal r Reg.g0 then Tac.Imm 0 else Tac.Name (Tac.Machine r)

let operand = function
  | Insn.Reg r -> reg_operand r
  | Insn.Imm i -> Tac.Imm i

(* The compare operands implied by a cc-setting ALU instruction: subcc
   compares its operands; any other op compares its result with zero. *)
let compare_of_alu op rs1 op2 rd =
  match (op : Insn.alu) with
  | Insn.Sub -> Some (reg_operand rs1, operand op2)
  | Insn.Or when Reg.equal rs1 Reg.g0 -> Some (operand op2, Tac.Imm 0)
  | Insn.Add | Insn.And | Insn.Or | Insn.Xor | Insn.Andn | Insn.Orn
  | Insn.Xnor | Insn.Sll | Insn.Srl | Insn.Sra | Insn.Smul | Insn.Umul
  | Insn.Sdiv | Insn.Udiv ->
    if Reg.equal rd Reg.g0 then None
    else Some (Tac.Name (Tac.Machine rd), Tac.Imm 0)

let target_label = function
  | Insn.Sym s -> s
  | Insn.Abs a -> errorf "absolute branch target 0x%x in pre-assembly code" a

let lift_slice (s : slice) : Tac.instr list =
  let out = ref [] in
  let emit i = out := i :: !out in
  (* Last cc-setting compare, cleared at labels and calls, and
     invalidated when either operand's register is overwritten before
     the branch (its recorded name would no longer denote the compared
     value). *)
  let compare = ref None in
  let invalidate_compare rd =
    match !compare with
    | Some (a, b)
      when a = Tac.Name (Tac.Machine rd) || b = Tac.Name (Tac.Machine rd) ->
      compare := None
    | Some _ | None -> ()
  in
  List.iter
    (fun (origin, item) ->
      match item with
      | Asm.Comment _ -> ()
      | Asm.Label l ->
        compare := None;
        emit (Tac.Label l)
      | Asm.Set_label { label; offset; rd } ->
        invalidate_compare rd;
        emit (Tac.Def { dst = Tac.Machine rd; rhs = Tac.Mov (Tac.Lab (label, offset)); origin })
      | Asm.Insn insn -> (
        match insn with
        | Insn.Nop -> ()
        | Insn.Alu { op; cc; rs1; op2; rd } ->
          if cc then compare := compare_of_alu op rs1 op2 rd
          else invalidate_compare rd;
          if not (Reg.equal rd Reg.g0) then begin
            (* Canonicalize the mov idioms so copy chains are visible:
               or/add with %g0 or a zero immediate are plain moves. *)
            let rhs =
              match op, Reg.equal rs1 Reg.g0, op2 with
              | (Insn.Or | Insn.Add), true, op2 -> Tac.Mov (operand op2)
              | (Insn.Or | Insn.Add), false, Insn.Imm 0 ->
                Tac.Mov (reg_operand rs1)
              | _, _, _ -> Tac.Bin (op, reg_operand rs1, operand op2)
            in
            emit (Tac.Def { dst = Tac.Machine rd; rhs; origin })
          end
        | Insn.Sethi { imm; rd } ->
          invalidate_compare rd;
          emit
            (Tac.Def
               {
                 dst = Tac.Machine rd;
                 rhs = Tac.Mov (Tac.Imm (Word.norm (imm lsl 10)));
                 origin;
               })
        | Insn.Ld { width; rs1; off; rd; signed = _ } ->
          invalidate_compare rd;
          emit
            (Tac.Def
               {
                 dst = Tac.Machine rd;
                 rhs = Tac.Load { base = reg_operand rs1; off = operand off; width };
                 origin;
               })
        | Insn.St { width; rd; rs1; off } ->
          emit
            (Tac.Store
               {
                 base = reg_operand rs1;
                 off = operand off;
                 src = reg_operand rd;
                 width;
                 origin;
               })
        | Insn.Branch { cond = Cond.A; target } ->
          emit (Tac.Jump { target = target_label target; origin })
        | Insn.Branch { cond = Cond.N; target = _ } -> ()
        | Insn.Branch { cond; target } ->
          emit
            (Tac.Branch
               { cond; target = target_label target; compare = !compare; origin })
        | Insn.Call { target } ->
          compare := None;
          emit (Tac.Call { target = target_label target; origin })
        | Insn.Jmpl _ ->
          (* In compiler output, indirect jumps are returns. *)
          emit (Tac.Ret { origin })
        | Insn.Save { rs1; op2; rd }
          when Reg.equal rs1 Reg.sp && Reg.equal rd Reg.sp ->
          (* After save, the caller's %sp is the new %fp, so the new
             %sp is %fp + op2. *)
          emit
            (Tac.Def
               {
                 dst = Tac.Machine Reg.sp;
                 rhs = Tac.Bin (Insn.Add, Tac.Name (Tac.Machine Reg.fp), operand op2);
                 origin;
               })
        | Insn.Save _ | Insn.Restore _ -> emit (Tac.Effect { origin })
        | Insn.Trap _ ->
          compare := None;
          emit (Tac.Effect { origin })))
    s.items;
  List.rev !out
