(* Cooper-Harvey-Kennedy "A Simple, Fast Dominance Algorithm". *)

type t = {
  idom : int array;          (* idom.(entry) = entry; -1 for unreachable *)
  rpo_index : int array;     (* position in reverse postorder; -1 unreachable *)
  children : int list array; (* dominator-tree children *)
  frontier : int list array; (* dominance frontier *)
}

let compute (cfg : Cfg.t) : t =
  let n = Cfg.n_blocks cfg in
  let rpo = Cfg.reverse_postorder cfg in
  let rpo_index = Array.make n (-1) in
  List.iteri (fun i id -> rpo_index.(id) <- i) rpo;
  let idom = Array.make n (-1) in
  idom.(cfg.entry) <- cfg.entry;
  let intersect a b =
    let a = ref a and b = ref b in
    while !a <> !b do
      while rpo_index.(!a) > rpo_index.(!b) do a := idom.(!a) done;
      while rpo_index.(!b) > rpo_index.(!a) do b := idom.(!b) done
    done;
    !a
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun id ->
        if id <> cfg.entry then begin
          let preds =
            List.filter (fun p -> idom.(p) <> -1 && rpo_index.(p) <> -1)
              (Cfg.block cfg id).preds
          in
          match preds with
          | [] -> ()
          | first :: rest ->
            let new_idom = List.fold_left intersect first rest in
            if idom.(id) <> new_idom then begin
              idom.(id) <- new_idom;
              changed := true
            end
        end)
      rpo
  done;
  let children = Array.make n [] in
  Array.iteri
    (fun id d ->
      if d <> -1 && id <> cfg.entry then children.(d) <- id :: children.(d))
    idom;
  (* Dominance frontier (Cytron et al. / CHK formulation). *)
  let frontier = Array.make n [] in
  Array.iter
    (fun (b : Cfg.block) ->
      if rpo_index.(b.id) <> -1 && List.length b.preds >= 2 then
        List.iter
          (fun p ->
            if idom.(p) <> -1 then begin
              let runner = ref p in
              while !runner <> idom.(b.id) do
                if not (List.mem b.id frontier.(!runner)) then
                  frontier.(!runner) <- b.id :: frontier.(!runner);
                runner := idom.(!runner)
              done
            end)
          (List.filter (fun p -> rpo_index.(p) <> -1) b.preds))
    cfg.blocks;
  { idom; rpo_index; children; frontier }

let idom t id = t.idom.(id)

let dominates t a b =
  (* a dominates b: walk b's idom chain. *)
  if t.rpo_index.(a) = -1 || t.rpo_index.(b) = -1 then false
  else begin
    let rec walk x = if x = a then true else if t.idom.(x) = x then false else walk t.idom.(x) in
    walk b
  end

let frontier t id = t.frontier.(id)
let children t id = t.children.(id)
let reachable t id = t.rpo_index.(id) <> -1
