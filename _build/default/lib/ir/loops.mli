(** Natural-loop detection.

    Loops are identified from back edges (edges to a dominator) and
    returned innermost-first, the order in which the paper's optimizer
    processes loop nests so that checks moved out of an inner loop can
    be considered again at the next level (§4.3.2). *)

type loop = {
  header : int;
  body : int list;           (** sorted; includes the header *)
  back_edges : int list;     (** latch blocks *)
  outside_preds : int list;  (** header predecessors outside the loop *)
  depth : int;               (** 1 = outermost *)
}

val in_loop : loop -> int -> bool

val find : Cfg.t -> Dominance.t -> loop list

val pp : Format.formatter -> loop -> unit
