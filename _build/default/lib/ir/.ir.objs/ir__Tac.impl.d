lib/ir/tac.ml: Cond Fmt Insn List Reg Sparc String
