lib/ir/tac.mli: Format Sparc
