lib/ir/loops.mli: Cfg Dominance Format
