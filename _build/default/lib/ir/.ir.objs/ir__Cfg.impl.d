lib/ir/cfg.ml: Array Fmt Format Hashtbl List Sparc Tac
