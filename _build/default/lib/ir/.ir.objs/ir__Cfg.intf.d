lib/ir/cfg.mli: Format Hashtbl Tac
