lib/ir/ssa.ml: Array Cfg Dominance Fmt Hashtbl List Map Option Queue Sparc Tac
