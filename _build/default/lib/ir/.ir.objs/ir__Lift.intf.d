lib/ir/lift.mli: Sparc Tac
