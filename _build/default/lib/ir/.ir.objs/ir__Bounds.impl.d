lib/ir/bounds.ml: Array Fmt Hashtbl Insn List Loops Option Queue Sparc Ssa String Tac Word
