lib/ir/ssa.mli: Cfg Dominance Format Hashtbl Sparc Tac
