lib/ir/bounds.mli: Format Hashtbl Loops Sparc Ssa
