lib/ir/loops.ml: Array Cfg Dominance Fmt Hashtbl List Option
