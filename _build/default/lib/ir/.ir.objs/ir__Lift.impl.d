lib/ir/lift.ml: Asm Cond Format Insn List Reg Sparc Tac Word
