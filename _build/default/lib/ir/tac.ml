open Sparc

type name =
  | Machine of Reg.t
  | Pseudo of string

type operand =
  | Name of name
  | Imm of int
  | Lab of string * int

type relop = Req | Rlt | Rle | Rgt | Rge

type rhs =
  | Mov of operand
  | Bin of Insn.alu * operand * operand
  | Load of { base : operand; off : operand; width : Insn.width }
  | Callret

type instr =
  | Label of string
  | Def of { dst : name; rhs : rhs; origin : int }
  | Store of {
      base : operand;
      off : operand;
      src : operand;
      width : Insn.width;
      origin : int;
    }
  | Assert of { dst : name; src : name; rel : relop; bound : operand; origin : int }
  | Branch of {
      cond : Cond.t;
      target : string;
      compare : (operand * operand) option;
      origin : int;
    }
  | Jump of { target : string; origin : int }
  | Call of { target : string; origin : int }
  | Ret of { origin : int }
  | Effect of { origin : int }  (* trap or other opaque instruction *)

let name_equal a b =
  match a, b with
  | Machine r1, Machine r2 -> Reg.equal r1 r2
  | Pseudo s1, Pseudo s2 -> String.equal s1 s2
  | (Machine _ | Pseudo _), _ -> false

let name_compare a b =
  match a, b with
  | Machine r1, Machine r2 -> Reg.compare r1 r2
  | Pseudo s1, Pseudo s2 -> String.compare s1 s2
  | Machine _, Pseudo _ -> -1
  | Pseudo _, Machine _ -> 1

let operand_names = function
  | Name n -> [ n ]
  | Imm _ | Lab _ -> []

(* Registers conservatively clobbered by a call: the out registers
   (shared with the callee's ins), the scratch globals, and %o7. *)
let call_clobbered_regs =
  List.map (fun i -> Machine (Reg.o i)) [ 0; 1; 2; 3; 4; 5; 7 ]
  @ [ Machine (Reg.g 1); Machine (Reg.g 2); Machine (Reg.g 3) ]

let uses = function
  | Label _ -> []
  | Def { rhs; _ } -> (
    match rhs with
    | Mov op -> operand_names op
    | Bin (_, a, b) -> operand_names a @ operand_names b
    | Load { base; off; _ } -> operand_names base @ operand_names off
    | Callret -> [])
  | Store { base; off; src; _ } ->
    operand_names base @ operand_names off @ operand_names src
  | Assert { src; bound; _ } -> src :: operand_names bound
  | Branch { compare; _ } -> (
    match compare with
    | Some (a, b) -> operand_names a @ operand_names b
    | None -> [])
  | Jump _ -> []
  | Call _ ->
    (* Arguments are read by the callee. *)
    List.map (fun i -> Machine (Reg.o i)) [ 0; 1; 2; 3; 4; 5 ]
  | Ret _ -> [ Machine (Reg.i_ 0) ]
  | Effect _ -> [ Machine (Reg.o 0) ]

(* [extra_call_defs] lets the client extend call clobbers with pseudo
   names the callee might redefine (e.g. matched globals). *)
let defs ?(extra_call_defs = []) = function
  | Label _ -> []
  | Def { dst; _ } -> [ dst ]
  | Store _ -> []
  | Assert { dst; _ } -> [ dst ]
  | Branch _ | Jump _ | Ret _ -> []
  | Call _ -> call_clobbered_regs @ extra_call_defs
  | Effect _ -> [ Machine (Reg.o 0) ]

let origin = function
  | Label _ -> None
  | Def { origin; _ }
  | Store { origin; _ }
  | Assert { origin; _ }
  | Branch { origin; _ }
  | Jump { origin; _ }
  | Call { origin; _ }
  | Ret { origin; _ }
  | Effect { origin; _ } ->
    Some origin

let relop_to_string = function
  | Req -> "=="
  | Rlt -> "<"
  | Rle -> "<="
  | Rgt -> ">"
  | Rge -> ">="

let pp_name ppf = function
  | Machine r -> Reg.pp ppf r
  | Pseudo s -> Fmt.pf ppf "$%s" s

let pp_operand ppf = function
  | Name n -> pp_name ppf n
  | Imm i -> Fmt.int ppf i
  | Lab (l, 0) -> Fmt.pf ppf "&%s" l
  | Lab (l, o) -> Fmt.pf ppf "&%s%+d" l o

let pp_rhs ppf = function
  | Mov op -> pp_operand ppf op
  | Bin (op, a, b) ->
    Fmt.pf ppf "%a %s %a" pp_operand a (Insn.alu_to_string op) pp_operand b
  | Load { base; off; _ } -> Fmt.pf ppf "mem[%a + %a]" pp_operand base pp_operand off
  | Callret -> Fmt.string ppf "callret"

let pp ppf = function
  | Label l -> Fmt.pf ppf "%s:" l
  | Def { dst; rhs; _ } -> Fmt.pf ppf "  %a := %a" pp_name dst pp_rhs rhs
  | Store { base; off; src; _ } ->
    Fmt.pf ppf "  mem[%a + %a] := %a" pp_operand base pp_operand off pp_operand
      src
  | Assert { dst; src; rel; bound; _ } ->
    Fmt.pf ppf "  %a := assert(%a %s %a)" pp_name dst pp_name src
      (relop_to_string rel) pp_operand bound
  | Branch { cond; target; compare; _ } -> (
    match compare with
    | Some (a, b) ->
      Fmt.pf ppf "  if %a %s %a goto %s" pp_operand a (Cond.to_string cond)
        pp_operand b target
    | None -> Fmt.pf ppf "  b%s %s" (Cond.to_string cond) target)
  | Jump { target; _ } -> Fmt.pf ppf "  goto %s" target
  | Call { target; _ } -> Fmt.pf ppf "  call %s" target
  | Ret _ -> Fmt.pf ppf "  ret"
  | Effect _ -> Fmt.pf ppf "  effect"
