(** Control-flow graphs over {!Tac} instruction streams, and the
    paper's assert-definition insertion (§4.3.1): each conditional edge
    whose branch carries compare operands gets a synthetic block of
    [Assert] re-definitions, so SSA renaming gives every refinement its
    own variable version. *)

exception Error of string

type block = {
  id : int;
  labels : string list;
  mutable body : Tac.instr list;  (** terminator last; never [Label] *)
  mutable succs : int list;
  mutable preds : int list;
}

type t = {
  blocks : block array;
  entry : int;
  by_label : (string, int) Hashtbl.t;
}

val build : Tac.instr list -> t
(** @raise Error on branches to labels outside the instruction list. *)

val insert_asserts : t -> t
(** Split conditional edges with assert blocks.  Existing block ids are
    preserved; assert blocks are appended at the end. *)

val block : t -> int -> block
val n_blocks : t -> int

val reverse_postorder : t -> int list
(** Reachable blocks only, entry first. *)

val reachable : t -> bool array

val pp : Format.formatter -> t -> unit
