(** Static single assignment construction (Cytron et al., as cited by
    the paper §4.1): iterated-dominance-frontier phi placement and
    dominator-tree renaming.

    Every name has an implicit version-0 definition at function entry,
    so uninitialized paths are well-formed.  Calls define fresh versions
    of their clobbered registers and of any [extra_call_defs] pseudo
    names (matched globals that the callee might write). *)

type var = { name : Tac.name; version : int }

val var_equal : var -> var -> bool
val var_compare : var -> var -> int

type operand = Ovar of var | Oimm of int | Olab of string * int

type rhs =
  | Mov of operand
  | Bin of Sparc.Insn.alu * operand * operand
  | Load of { base : operand; off : operand; width : Sparc.Insn.width }
  | Callret

type phi = { dst : var; args : (int * var) list }
(** [args] pairs a predecessor block id with the version flowing in. *)

type instr =
  | Def of { dst : var; rhs : rhs; origin : int }
  | Store of {
      base : operand;
      off : operand;
      src : operand;
      width : Sparc.Insn.width;
      origin : int;
    }
  | Assert of { dst : var; src : var; rel : Tac.relop; bound : operand; origin : int }
  | Call of { target : string; defs : var list; origin : int }
  | Effect of { defs : var list; origin : int }
  | Control of { origin : int }

type block = { mutable phis : phi list; mutable body : instr list }

type def_site =
  | Dphi of int * phi
  | Dinstr of int * instr
  | Dentry

type t = {
  cfg : Cfg.t;
  dom : Dominance.t;
  blocks : block array;
  live_in : (int * (Tac.name * var) list) list;
  defs : (var, def_site) Hashtbl.t;
}

val construct : ?extra_call_defs:Tac.name list -> Cfg.t -> Dominance.t -> t

val block : t -> int -> block

val live_in_var : t -> int -> Tac.name -> var
(** The version of [name] reaching the start of a block (before its
    phis) — used to decide whether a bound expression is evaluable in a
    loop pre-header. *)

val def_site : t -> var -> def_site option

val instr_uses : instr -> var list
val instr_defs : instr -> var list

val iter_instrs : t -> (int -> [ `Phi of phi | `Instr of instr ] -> unit) -> unit

val pp_var : Format.formatter -> var -> unit
val pp_operand : Format.formatter -> operand -> unit
