type loop = {
  header : int;
  body : int list;           (* includes header *)
  back_edges : int list;     (* sources of the latch edges *)
  outside_preds : int list;  (* predecessors of the header not in the loop *)
  depth : int;               (* 1 for outermost *)
}

let in_loop l id = List.mem id l.body

(* Natural loop of back edge (u -> h): h plus all nodes that reach u
   without passing through h. *)
let natural_loop (cfg : Cfg.t) h u =
  let body = Hashtbl.create 16 in
  Hashtbl.replace body h ();
  let rec add id =
    if not (Hashtbl.mem body id) then begin
      Hashtbl.replace body id ();
      List.iter add (Cfg.block cfg id).preds
    end
  in
  add u;
  body

let find (cfg : Cfg.t) (dom : Dominance.t) : loop list =
  (* Collect back edges and group by header. *)
  let by_header = Hashtbl.create 8 in
  Array.iter
    (fun (b : Cfg.block) ->
      if Dominance.reachable dom b.id then
        List.iter
          (fun s ->
            if Dominance.dominates dom s b.id then
              Hashtbl.replace by_header s
                (b.id :: Option.value ~default:[] (Hashtbl.find_opt by_header s)))
          b.succs)
    cfg.blocks;
  let loops =
    Hashtbl.fold
      (fun header latches acc ->
        let body = Hashtbl.create 16 in
        List.iter
          (fun u ->
            Hashtbl.iter (fun k () -> Hashtbl.replace body k ())
              (natural_loop cfg header u))
          latches;
        let members = Hashtbl.fold (fun k () l -> k :: l) body [] in
        let outside_preds =
          List.filter (fun p -> not (Hashtbl.mem body p)) (Cfg.block cfg header).preds
        in
        { header; body = List.sort compare members; back_edges = latches;
          outside_preds; depth = 0 }
        :: acc)
      by_header []
  in
  (* Nesting depth: number of loops strictly containing this one. *)
  let contains outer inner =
    outer.header <> inner.header
    && List.for_all (fun b -> List.mem b outer.body) inner.body
  in
  let loops =
    List.map
      (fun l ->
        let depth = 1 + List.length (List.filter (fun o -> contains o l) loops) in
        { l with depth })
      loops
  in
  (* Inner loops first, as the paper processes loop nests inside-out. *)
  List.sort (fun a b -> compare b.depth a.depth) loops

let pp ppf l =
  Fmt.pf ppf "loop header=%d depth=%d body=[%a] latches=[%a] entries=[%a]"
    l.header l.depth
    Fmt.(list ~sep:comma int) l.body
    Fmt.(list ~sep:comma int) l.back_edges
    Fmt.(list ~sep:comma int) l.outside_preds
