(** Lifting assembly to {!Tac}.

    Per-function lifting mirrors the paper's analysis tool, which
    consumes the compiler's assembly stream.  Condition-code dataflow is
    resolved here: conditional branches carry the operands of the last
    cc-setting instruction, and [save] is rewritten as the frame-pointer
    arithmetic it performs. *)

exception Error of string

type slice = { fname : string; items : (int * Sparc.Asm.item) list }
(** Items of one function, each paired with its index into the whole
    program's text list. *)

val slice_program : function_labels:string list -> Sparc.Asm.item list -> slice list
(** Split a program's text at function labels.  Items before the first
    function label are dropped (there are none in compiler output). *)

val lift_slice : slice -> Tac.instr list
(** @raise Error on constructs that cannot appear in pre-assembly
    compiler output (absolute branch targets). *)
