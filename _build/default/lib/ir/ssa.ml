type var = { name : Tac.name; version : int }

let var_equal a b = a.version = b.version && Tac.name_equal a.name b.name

let var_compare a b =
  match compare a.version b.version with
  | 0 -> Tac.name_compare a.name b.name
  | c -> c

type operand = Ovar of var | Oimm of int | Olab of string * int

type rhs =
  | Mov of operand
  | Bin of Sparc.Insn.alu * operand * operand
  | Load of { base : operand; off : operand; width : Sparc.Insn.width }
  | Callret

type phi = { dst : var; args : (int * var) list }

type instr =
  | Def of { dst : var; rhs : rhs; origin : int }
  | Store of {
      base : operand;
      off : operand;
      src : operand;
      width : Sparc.Insn.width;
      origin : int;
    }
  | Assert of { dst : var; src : var; rel : Tac.relop; bound : operand; origin : int }
  | Call of { target : string; defs : var list; origin : int }
  | Effect of { defs : var list; origin : int }
  | Control of { origin : int }

type block = { mutable phis : phi list; mutable body : instr list }

type def_site =
  | Dphi of int * phi        (* block id *)
  | Dinstr of int * instr
  | Dentry                   (* implicit version-0 definition at entry *)

type t = {
  cfg : Cfg.t;
  dom : Dominance.t;
  blocks : block array;
  live_in : (int * (Tac.name * var) list) list;
      (* per reachable block: versions reaching block start (before phis) *)
  defs : (var, def_site) Hashtbl.t;
}

let live_in t id =
  match List.assoc_opt id t.live_in with Some l -> l | None -> []

(* Names never defined keep the implicit entry version. *)
let live_in_var t id name =
  match List.find_opt (fun (n, _) -> Tac.name_equal n name) (live_in t id) with
  | Some (_, v) -> v
  | None -> { name; version = 0 }

let def_site t v = Hashtbl.find_opt t.defs v

let operand_of_tac rename = function
  | Tac.Name n -> Ovar (rename n)
  | Tac.Imm i -> Oimm i
  | Tac.Lab (l, o) -> Olab (l, o)

let rhs_of_tac rename = function
  | Tac.Mov op -> Mov (operand_of_tac rename op)
  | Tac.Bin (alu, a, b) -> Bin (alu, operand_of_tac rename a, operand_of_tac rename b)
  | Tac.Load { base; off; width } ->
    Load { base = operand_of_tac rename base; off = operand_of_tac rename off; width }
  | Tac.Callret -> Callret

let construct ?(extra_call_defs = []) (cfg : Cfg.t) (dom : Dominance.t) : t =
  let n = Cfg.n_blocks cfg in
  let reachable = Cfg.reachable cfg in
  (* 1. names and their def blocks (every name is implicitly defined at
     entry with version 0). *)
  let module NameMap = Map.Make (struct
    type t = Tac.name

    let compare = Tac.name_compare
  end) in
  let def_blocks = ref NameMap.empty in
  let note_def name blk =
    def_blocks :=
      NameMap.update name
        (function None -> Some [ blk ] | Some l -> Some (blk :: l))
        !def_blocks
  in
  Array.iter
    (fun (b : Cfg.block) ->
      if reachable.(b.id) then
        List.iter
          (fun i ->
            List.iter (fun nm -> note_def nm b.id) (Tac.defs ~extra_call_defs i);
            List.iter (fun nm -> note_def nm cfg.entry) (Tac.uses i))
          b.body)
    cfg.blocks;
  (* 2. phi placement via iterated dominance frontiers. *)
  let needs_phi : (int, Tac.name list) Hashtbl.t = Hashtbl.create 64 in
  NameMap.iter
    (fun name blocks ->
      let blocks = cfg.entry :: blocks in
      let placed = Hashtbl.create 8 in
      let work = Queue.create () in
      List.iter (fun b -> Queue.add b work) (List.sort_uniq compare blocks);
      while not (Queue.is_empty work) do
        let b = Queue.pop work in
        List.iter
          (fun d ->
            if reachable.(d) && not (Hashtbl.mem placed d) then begin
              Hashtbl.replace placed d ();
              Hashtbl.replace needs_phi d
                (name :: Option.value ~default:[] (Hashtbl.find_opt needs_phi d));
              Queue.add d work
            end)
          (Dominance.frontier dom b)
      done)
    !def_blocks;
  (* 3. renaming. *)
  let blocks = Array.init n (fun _ -> { phis = []; body = [] }) in
  let counters : (Tac.name, int) Hashtbl.t = Hashtbl.create 64 in
  let stacks : (Tac.name, var list) Hashtbl.t = Hashtbl.create 64 in
  let top name =
    match Hashtbl.find_opt stacks name with
    | Some (v :: _) -> v
    | Some [] | None -> { name; version = 0 }
  in
  let fresh name =
    let c = Option.value ~default:0 (Hashtbl.find_opt counters name) + 1 in
    Hashtbl.replace counters name c;
    let v = { name; version = c } in
    Hashtbl.replace stacks name (v :: Option.value ~default:[] (Hashtbl.find_opt stacks name));
    v
  in
  let pop name =
    match Hashtbl.find_opt stacks name with
    | Some (_ :: rest) -> Hashtbl.replace stacks name rest
    | Some [] | None -> ()
  in
  let defs_table : (var, def_site) Hashtbl.t = Hashtbl.create 256 in
  let live_in_acc = ref [] in
  (* Initialize phis (dst filled during rename of the block). *)
  Array.iteri
    (fun id b ->
      match Hashtbl.find_opt needs_phi id with
      | Some names ->
        b.phis <-
          List.map
            (fun name -> { dst = { name; version = 0 }; args = [] })
            (List.sort_uniq Tac.name_compare names)
      | None -> ())
    blocks;
  let phi_names_of id = List.map (fun p -> p.dst.name) blocks.(id).phis in
  let rec rename id =
    let b = blocks.(id) in
    let snapshot =
      (* Live-in versions for every name with a definition somewhere. *)
      NameMap.fold (fun name _ acc -> (name, top name) :: acc) !def_blocks []
    in
    live_in_acc := (id, snapshot) :: !live_in_acc;
    let pushed = ref [] in
    b.phis <-
      List.map
        (fun p ->
          let dst = fresh p.dst.name in
          pushed := p.dst.name :: !pushed;
          let p = { p with dst } in
          Hashtbl.replace defs_table dst (Dphi (id, p));
          p)
        b.phis;
    let body =
      List.filter_map
        (fun (i : Tac.instr) ->
          match i with
          | Tac.Label _ -> None
          | Tac.Def { dst; rhs; origin } ->
            let rhs = rhs_of_tac top rhs in
            let dst = fresh dst in
            pushed := dst.name :: !pushed;
            let instr = Def { dst; rhs; origin } in
            Hashtbl.replace defs_table dst (Dinstr (id, instr));
            Some instr
          | Tac.Store { base; off; src; width; origin } ->
            Some
              (Store
                 {
                   base = operand_of_tac top base;
                   off = operand_of_tac top off;
                   src = operand_of_tac top src;
                   width;
                   origin;
                 })
          | Tac.Assert { dst; src; rel; bound; origin } ->
            let src = top src in
            let bound = operand_of_tac top bound in
            let dst = fresh dst in
            pushed := dst.name :: !pushed;
            let instr = Assert { dst; src; rel; bound; origin } in
            Hashtbl.replace defs_table dst (Dinstr (id, instr));
            Some instr
          | Tac.Call { target; origin } ->
            let defs =
              List.map
                (fun nm ->
                  let v = fresh nm in
                  pushed := nm :: !pushed;
                  v)
                (Tac.defs ~extra_call_defs i)
            in
            let instr = Call { target; defs; origin } in
            List.iter (fun v -> Hashtbl.replace defs_table v (Dinstr (id, instr))) defs;
            Some instr
          | Tac.Effect { origin } ->
            let defs =
              List.map
                (fun nm ->
                  let v = fresh nm in
                  pushed := nm :: !pushed;
                  v)
                (Tac.defs i)
            in
            let instr = Effect { defs; origin } in
            List.iter (fun v -> Hashtbl.replace defs_table v (Dinstr (id, instr))) defs;
            Some instr
          | Tac.Branch { origin; _ } | Tac.Jump { origin; _ } | Tac.Ret { origin }
            ->
            Some (Control { origin }))
        (Cfg.block cfg id).body
    in
    b.body <- body;
    (* Fill successor phi arguments. *)
    List.iter
      (fun s ->
        List.iter
          (fun name ->
            blocks.(s).phis <-
              List.map
                (fun p ->
                  if Tac.name_equal p.dst.name name then
                    { p with args = (id, top name) :: p.args }
                  else p)
                blocks.(s).phis)
          (phi_names_of s))
      (Cfg.block cfg id).succs;
    List.iter rename (Dominance.children dom id);
    List.iter pop !pushed
  in
  rename cfg.entry;
  (* Register implicit entry definitions. *)
  NameMap.iter
    (fun name _ -> Hashtbl.replace defs_table { name; version = 0 } Dentry)
    !def_blocks;
  { cfg; dom; blocks; live_in = !live_in_acc; defs = defs_table }

let block t id = t.blocks.(id)

(* --- well-formedness (used by the property tests) -------------------------- *)

let operand_vars = function
  | Ovar v -> [ v ]
  | Oimm _ | Olab _ -> []

let instr_uses = function
  | Def { rhs; _ } -> (
    match rhs with
    | Mov op -> operand_vars op
    | Bin (_, a, b) -> operand_vars a @ operand_vars b
    | Load { base; off; _ } -> operand_vars base @ operand_vars off
    | Callret -> [])
  | Store { base; off; src; _ } ->
    operand_vars base @ operand_vars off @ operand_vars src
  | Assert { src; bound; _ } -> src :: operand_vars bound
  | Call _ | Effect _ | Control _ -> []

let instr_defs = function
  | Def { dst; _ } -> [ dst ]
  | Assert { dst; _ } -> [ dst ]
  | Call { defs; _ } | Effect { defs; _ } -> defs
  | Store _ | Control _ -> []

let iter_instrs t f =
  Array.iteri
    (fun id b ->
      List.iter (fun p -> f id (`Phi p)) b.phis;
      List.iter (fun i -> f id (`Instr i)) b.body)
    t.blocks

let pp_var ppf v = Fmt.pf ppf "%a.%d" Tac.pp_name v.name v.version

let pp_operand ppf = function
  | Ovar v -> pp_var ppf v
  | Oimm i -> Fmt.int ppf i
  | Olab (l, 0) -> Fmt.pf ppf "&%s" l
  | Olab (l, o) -> Fmt.pf ppf "&%s%+d" l o
