(** Dominator trees and dominance frontiers, via the Cooper-Harvey-
    Kennedy iterative algorithm. *)

type t

val compute : Cfg.t -> t

val idom : t -> int -> int
(** Immediate dominator; the entry is its own idom, unreachable blocks
    return [-1]. *)

val dominates : t -> int -> int -> bool
(** [dominates t a b] — reflexive. False if either block is unreachable. *)

val frontier : t -> int -> int list
val children : t -> int -> int list
val reachable : t -> int -> bool
