(** Three-address intermediate representation.

    SPARC instructions lift into this IR for analysis (§4.1 of the
    paper): ALU operations become [Def]s over machine-register names,
    loads/stores keep explicit base+offset address expressions, and
    condition-code/branch pairs carry their compare operands so that
    {!Cfg.insert_asserts} can materialize the paper's {i assert
    definitions}.  After symbol-table matching, memory homes of matched
    variables appear as [Pseudo] names. *)

type name =
  | Machine of Sparc.Reg.t
  | Pseudo of string
      (** a matched variable's memory home, e.g. ["main.i"] *)

type operand =
  | Name of name
  | Imm of int
  | Lab of string * int  (** address of a data/text label plus offset *)

type relop = Req | Rlt | Rle | Rgt | Rge

type rhs =
  | Mov of operand
  | Bin of Sparc.Insn.alu * operand * operand
  | Load of { base : operand; off : operand; width : Sparc.Insn.width }
  | Callret  (** the value a call leaves in [%o0] *)

type instr =
  | Label of string
  | Def of { dst : name; rhs : rhs; origin : int }
  | Store of {
      base : operand;
      off : operand;
      src : operand;
      width : Sparc.Insn.width;
      origin : int;
    }
  | Assert of { dst : name; src : name; rel : relop; bound : operand; origin : int }
      (** [dst := src], recording that [src rel bound] holds here. *)
  | Branch of {
      cond : Sparc.Cond.t;
      target : string;
      compare : (operand * operand) option;
      origin : int;
    }
  | Jump of { target : string; origin : int }
  | Call of { target : string; origin : int }
  | Ret of { origin : int }
  | Effect of { origin : int }

val name_equal : name -> name -> bool
val name_compare : name -> name -> int

val call_clobbered_regs : name list

val uses : instr -> name list

val defs : ?extra_call_defs:name list -> instr -> name list
(** [extra_call_defs] adds pseudo names a call may redefine (matched
    globals, address-taken locals). *)

val origin : instr -> int option
(** Index of the assembly item this instruction came from. *)

val relop_to_string : relop -> string
val pp_name : Format.formatter -> name -> unit
val pp_operand : Format.formatter -> operand -> unit
val pp : Format.formatter -> instr -> unit
