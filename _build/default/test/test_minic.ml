let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let run ?(fuel = 10_000_000) src = Minic.Compile.run ~fuel src

let exit_code src =
  let code, _ = run src in
  code

let output src =
  let _, out = run src in
  out

let test_return () =
  check_int "constant" 42 (exit_code "int main() { return 42; }");
  check_int "arith" 7 (exit_code "int main() { return 1 + 2 * 3; }");
  check_int "parens" 9 (exit_code "int main() { return (1 + 2) * 3; }");
  check_int "division" 5 (exit_code "int main() { return 17 / 3; }");
  check_int "modulo" 2 (exit_code "int main() { return 17 % 3; }");
  check_int "negative mod" (-2) (exit_code "int main() { return -17 % 3; }");
  check_int "shifts" 20 (exit_code "int main() { return (5 << 3) >> 1; }");
  check_int "bitops" 6 (exit_code "int main() { return (12 & 7) | (3 ^ 1); }");
  check_int "unary" (-5) (exit_code "int main() { return -(2 + 3); }");
  check_int "bnot" (-1) (exit_code "int main() { return ~0; }");
  check_int "implicit return" 0 (exit_code "int main() { 1 + 1; }")

let test_locals () =
  check_int "local" 10
    (exit_code "int main() { int x; x = 4; x = x + 6; return x; }");
  check_int "two locals" 30
    (exit_code "int main() { int a; int b; a = 10; b = 20; return a + b; }");
  check_int "register local" 15
    (exit_code
       "int main() { register int i; int s; s = 0; for (i = 1; i <= 5; i = i \
        + 1) { s = s + i; } return s; }")

let test_globals () =
  check_int "global init" 7 (exit_code "int g = 7; int main() { return g; }");
  check_int "global update" 12
    (exit_code "int g = 5; int main() { g = g + 7; return g; }");
  check_int "global array" 45
    (exit_code
       "int a[10]; int main() { int i; int s; s = 0; for (i = 0; i < 10; i = \
        i + 1) { a[i] = i; } for (i = 0; i < 10; i = i + 1) { s = s + a[i]; \
        } return s; }")

let test_control_flow () =
  check_int "if true" 1 (exit_code "int main() { if (2 > 1) { return 1; } return 2; }");
  check_int "if false" 2 (exit_code "int main() { if (1 > 2) { return 1; } return 2; }");
  check_int "if else" 5
    (exit_code "int main() { if (0) { return 4; } else { return 5; } }");
  check_int "while" 10
    (exit_code "int main() { int i; i = 0; while (i < 10) { i = i + 1; } return i; }");
  check_int "break" 3
    (exit_code
       "int main() { int i; for (i = 0; i < 10; i = i + 1) { if (i == 3) { \
        break; } } return i; }");
  check_int "continue" 25
    (exit_code
       "int main() { int i; int s; s = 0; for (i = 0; i < 10; i = i + 1) { \
        if (i % 2 == 0) { continue; } s = s + i; } return s; }");
  check_int "nested loops" 100
    (exit_code
       "int main() { int i; int j; int n; n = 0; for (i = 0; i < 10; i = i + \
        1) { for (j = 0; j < 10; j = j + 1) { n = n + 1; } } return n; }")

let test_logical () =
  check_int "and true" 1 (exit_code "int main() { return 1 && 2; }");
  check_int "and false" 0 (exit_code "int main() { return 1 && 0; }");
  check_int "or" 1 (exit_code "int main() { return 0 || 3; }");
  check_int "not" 1 (exit_code "int main() { return !0; }");
  (* Short circuit: g must not be incremented. *)
  check_int "short circuit" 5
    (exit_code
       "int g = 5; int bump() { g = g + 1; return 1; } int main() { 0 && \
        bump(); return g; }");
  check_int "or short circuit" 5
    (exit_code
       "int g = 5; int bump() { g = g + 1; return 1; } int main() { 1 || \
        bump(); return g; }")

let test_functions () =
  check_int "call" 42
    (exit_code "int f(int x) { return x * 2; } int main() { return f(21); }");
  check_int "six args" 21
    (exit_code
       "int sum6(int a, int b, int c, int d, int e, int f) { return a + b + \
        c + d + e + f; } int main() { return sum6(1, 2, 3, 4, 5, 6); }");
  check_int "recursion" 120
    (exit_code
       "int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); \
        } int main() { return fact(5); }");
  check_int "fib" 55
    (exit_code
       "int fib(int n) { if (n < 2) { return n; } return fib(n - 1) + fib(n \
        - 2); } int main() { return fib(10); }");
  check_int "mutual recursion" 1
    (exit_code
       "int is_even(int n) { if (n == 0) { return 1; } \
        return is_odd(n - 1); } int is_odd(int n) { if (n == 0) { return 0; \
        } return is_even(n - 1); } int main() { return is_even(10); }")

let test_pointers () =
  check_int "address and deref" 9
    (exit_code "int main() { int x; int *p; x = 4; p = &x; *p = 9; return x; }");
  check_int "pointer arith" 30
    (exit_code
       "int a[4]; int main() { int *p; p = &a[0]; *p = 10; *(p + 1) = 20; \
        return a[0] + a[1]; }");
  check_int "pointer indexing" 7
    (exit_code "int a[5]; int main() { int *p; p = a; p[3] = 7; return a[3]; }");
  check_int "pointer difference" 3
    (exit_code "int a[8]; int main() { int *p; int *q; p = &a[1]; q = &a[4]; return q - p; }");
  check_int "pointer through function" 11
    (exit_code
       "int set(int *p, int v) { *p = v; return 0; } int main() { int x; \
        set(&x, 11); return x; }")

let test_structs () =
  check_int "fields" 30
    (exit_code
       "struct point { int x; int y; }; struct point p; int main() { p.x = \
        10; p.y = 20; return p.x + p.y; }");
  check_int "local struct" 12
    (exit_code
       "struct pair { int a; int b; }; int main() { struct pair q; q.a = 5; \
        q.b = 7; return q.a + q.b; }");
  check_int "arrow" 15
    (exit_code
       "struct node { int v; int next; }; struct node n; int main() { struct \
        node *p; p = &n; p->v = 15; return n.v; }");
  check_int "array of structs" 6
    (exit_code
       "struct cell { int a; int b; }; struct cell cells[3]; int main() { \
        int i; int s; for (i = 0; i < 3; i = i + 1) { cells[i].a = i; \
        cells[i].b = i; } s = 0; for (i = 0; i < 3; i = i + 1) { s = s + \
        cells[i].a + cells[i].b; } return s; }")

let test_typed_struct_fields () =
  (* Pointer-typed fields support chained arrows without temporaries. *)
  check_int "chained arrows" 42
    (exit_code
       "struct n { int v; struct n *next; }; int main() { struct n a; struct         n b; struct n c; a.next = &b; b.next = &c; c.v = 42; return         a.next->next->v; }");
  (* Field order determines offsets regardless of type. *)
  check_int "mixed field kinds" 11
    (exit_code
       "struct p { int *q; int v; }; int g; int main() { struct p s; s.q =         &g; s.v = 4; *s.q = 7; return g + s.v; }")

let test_malloc () =
  check_int "malloc basic" 5
    (exit_code
       "int main() { int *p; p = malloc(40); p[9] = 5; return p[9]; }");
  check_int "malloc distinct" 30
    (exit_code
       "int main() { int *p; int *q; p = malloc(16); q = malloc(16); p[0] = \
        10; q[0] = 20; return p[0] + q[0]; }");
  check_int "free and reuse" 1
    (exit_code
       "int main() { int *p; int *q; p = malloc(64); free(p); q = \
        malloc(64); return p == q; }");
  check_int "linked list" 15
    (exit_code
       "struct node { int v; struct node *next; }; int main() { struct node \
        *head; struct node *n; int i; int s; head = 0; for (i = 1; i <= 5; i \
        = i + 1) { n = malloc(8); n->v = i; n->next = head; head = n; } s = \
        0; n = head; while (n != 0) { s = s + n->v; n = n->next; } return s; \
        }")

let test_builtins_output () =
  check_string "print_int" "42" (output "int main() { print_int(42); return 0; }");
  check_string "print_char" "hi"
    (output "int main() { print_char('h'); print_char('i'); return 0; }");
  check_string "print_str" "hello\n"
    (output "int main() { print_str(\"hello\\n\"); return 0; }");
  check_string "negative int" "-7" (output "int main() { print_int(-7); return 0; }")

let test_char_literals () =
  check_int "char" 97 (exit_code "int main() { return 'a'; }");
  check_int "newline" 10 (exit_code "int main() { return '\\n'; }")

let test_memset_memcpy () =
  check_int "memset" 35
    (exit_code
       "int a[7]; int main() { int i; int s; memset_words(a, 5, 7); s = 0; \
        for (i = 0; i < 7; i = i + 1) { s = s + a[i]; } return s; }");
  check_int "memcpy" 6
    (exit_code
       "int a[3]; int b[3]; int main() { a[0] = 1; a[1] = 2; a[2] = 3; \
        memcpy_words(b, a, 3); return b[0] + b[1] + b[2]; }")

let test_spill_deep_expr () =
  (* Forces expression-stack spills past the six register slots. *)
  check_int "deep expression" 78
    (exit_code
       "int main() { return 1 + (2 + (3 + (4 + (5 + (6 + (7 + (8 + (9 + (10 \
        + (11 + 12)))))))))); }")

let test_comments_and_hex () =
  check_int "comments" 3
    (exit_code
       "// line comment\nint main() { /* block\ncomment */ return 3; }");
  check_int "hex" 255 (exit_code "int main() { return 0xFF; }");
  (* Large constants exercise the sethi/or materialization. *)
  check_int "large negative" (-100000)
    (exit_code "int main() { return -100000; }");
  check_int "large positive" 123456789
    (exit_code "int main() { return 123456789; }");
  check_int "int32 min" (-2147483648)
    (exit_code "int main() { return -2147483647 - 1; }");
  check_int "wraparound" (-2147483648)
    (exit_code "int main() { return 2147483647 + 1; }")

let expect_error phase src =
  match Minic.Compile.run src with
  | exception Minic.Compile.Error e ->
    check_string ("phase for " ^ src) phase e.Minic.Compile.phase
  | _ -> Alcotest.failf "expected %s error for %s" phase src

let test_errors () =
  expect_error "parse" "int main() { return 1 }";
  expect_error "parse" "int main( { }";
  expect_error "typecheck" "int main() { return x; }";
  expect_error "typecheck" "int main() { foo(); }";
  expect_error "typecheck" "int f() { return 0; }";  (* no main *)
  expect_error "typecheck" "int main() { int x; return x[0]; }";
  expect_error "typecheck" "struct s { int a; }; int main() { struct s v; return v; }";
  expect_error "typecheck" "int main() { register int r; return &r; }";
  expect_error "typecheck" "int main(int a, int a) { return 0; }";
  expect_error "typecheck" "int print_int(int x) { return x; } int main() { return 0; }";
  expect_error "typecheck" "int main() { 1 = 2; }"

let test_register_vs_stack_semantics () =
  (* The same source with and without register must agree. *)
  let body decl =
    Printf.sprintf
      "int acc; int main() { %s int i; acc = 0; for (i = 0; i < 100; i = i \
       + 1) { acc = acc + i; } return acc %% 251; }"
      decl
  in
  let with_reg = body "register int unused;" in
  let without = body "int unused;" in
  check_int "same result" (exit_code without) (exit_code with_reg)

let prop_arith_matches_ocaml =
  QCheck.Test.make ~name:"compiled arithmetic matches OCaml semantics" ~count:60
    QCheck.(
      triple (int_range (-1000) 1000) (int_range (-1000) 1000)
        (int_range 1 100))
    (fun (a, b, c) ->
      let src =
        Printf.sprintf
          "int main() { int a; int b; int c; a = %d; b = %d; c = %d; return \
           (a + b * c - (a / c)) %% 256; }"
          a b c
      in
      let expected = (a + (b * c) - (a / c)) mod 256 in
      let got = exit_code src in
      (* Exit codes are full ints in the simulator. *)
      got = expected)

let suites =
  [
    ( "minic.exec",
      [
        Alcotest.test_case "returns and arithmetic" `Quick test_return;
        Alcotest.test_case "locals" `Quick test_locals;
        Alcotest.test_case "globals" `Quick test_globals;
        Alcotest.test_case "control flow" `Quick test_control_flow;
        Alcotest.test_case "logical operators" `Quick test_logical;
        Alcotest.test_case "functions" `Quick test_functions;
        Alcotest.test_case "pointers" `Quick test_pointers;
        Alcotest.test_case "structs" `Quick test_structs;
        Alcotest.test_case "typed struct fields" `Quick test_typed_struct_fields;
        Alcotest.test_case "malloc/free" `Quick test_malloc;
        Alcotest.test_case "builtin output" `Quick test_builtins_output;
        Alcotest.test_case "char literals" `Quick test_char_literals;
        Alcotest.test_case "memset/memcpy" `Quick test_memset_memcpy;
        Alcotest.test_case "deep expressions spill" `Quick test_spill_deep_expr;
        Alcotest.test_case "comments and hex" `Quick test_comments_and_hex;
        Alcotest.test_case "register/stack equivalence" `Quick
          test_register_vs_stack_semantics;
        QCheck_alcotest.to_alcotest prop_arith_matches_ocaml;
      ] );
    ("minic.errors", [ Alcotest.test_case "rejects bad programs" `Quick test_errors ]);
  ]
