test/test_fuzz.ml: Dbp Debugger Instrument List Minic Printf QCheck QCheck_alcotest Session Strategy String
