test/test_sparc.ml: Alcotest Array Asm Cond Insn List Option Printer Printf QCheck QCheck_alcotest Reg Sparc Symtab Word
