test/test_main.ml: Alcotest Test_core_units Test_dbp Test_fuzz Test_ir Test_machine Test_minic Test_sparc Test_workloads
