test/test_core_units.ml: Alcotest Array Asm Assembler Checkgen Dbp Insn Instrument Ir Layout List Minic Mrs Option Parser Printer Reg Session Sparc Strategy String Symopt Symtab Traps Write_type
