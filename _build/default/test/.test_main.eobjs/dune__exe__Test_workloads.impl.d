test/test_workloads.ml: Alcotest Dbp Instrument List Machine Minic Mrs Printf Session Sparc Strategy Workloads
