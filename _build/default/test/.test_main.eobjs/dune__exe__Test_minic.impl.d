test/test_minic.ml: Alcotest Minic Printf QCheck QCheck_alcotest
