test/test_ir.ml: Alcotest Array Hashtbl Insn Ir List Minic Reg Sparc
