test/test_machine.ml: Alcotest Asm Assembler Cache Char Cond Cpu Insn List Machine Memory Option Reg Sparc Windows Word
