test/test_dbp.ml: Alcotest Array Dbp Debugger Hashtbl Instrument Layout List Machine Minic Mrs Option Printf QCheck QCheck_alcotest Region Segbitmap Session Sparc Strategy Write_type
