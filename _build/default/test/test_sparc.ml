open Sparc

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* --- Word ------------------------------------------------------------- *)

let test_word_norm () =
  check_int "wrap positive" (-2147483648) (Word.norm 0x80000000);
  check_int "wrap add" (-2147483648) (Word.add 0x7FFFFFFF 1);
  check_int "identity" 42 (Word.norm 42);
  check_int "negative" (-1) (Word.norm 0xFFFFFFFF);
  check_int "unsigned round trip" 0xFFFFFFFF (Word.to_unsigned (-1))

let test_word_shifts () =
  check_int "sll" 8 (Word.sll 1 3);
  check_int "sll mod 32" 2 (Word.sll 1 33);
  check_int "srl of negative" 0x7FFFFFFF (Word.srl (-1) 1);
  check_int "sra of negative" (-1) (Word.sra (-1) 5);
  check_int "sra positive" 4 (Word.sra 16 2)

let test_word_carry () =
  check_bool "add carry" true (Word.add_carry (-1) 1);
  check_bool "no add carry" false (Word.add_carry 1 1);
  check_bool "add overflow" true (Word.add_overflow 0x7FFFFFFF 1);
  check_bool "sub borrow" true (Word.sub_carry 0 1);
  check_bool "sub overflow" true (Word.sub_overflow (-2147483648) 1)

let test_word_divides () =
  check_int "sdiv" (-3) (Word.sdiv (-7) 2);
  check_int "udiv" 0x7FFFFFFF (Word.udiv (-2) 2);
  Alcotest.check_raises "sdiv by zero" Division_by_zero (fun () ->
      ignore (Word.sdiv 1 0))

(* --- Reg ---------------------------------------------------------------- *)

let test_reg_roundtrip () =
  List.iter
    (fun r ->
      let r' = Reg.of_string (Reg.to_string r) in
      check_bool (Reg.to_string r) true (Reg.equal r r'))
    Reg.all;
  List.iteri
    (fun i r -> check_int "index" i (Reg.index r))
    Reg.all

let test_reg_aliases () =
  check_string "sp" "%sp" (Reg.to_string Reg.sp);
  check_string "fp" "%fp" (Reg.to_string Reg.fp);
  check_bool "sp is o6" true (Reg.equal Reg.sp (Reg.o 6));
  check_bool "fp is i6" true (Reg.equal Reg.fp (Reg.i_ 6));
  Alcotest.check_raises "bad index" (Invalid_argument "Reg.of_index") (fun () ->
      ignore (Reg.of_index 32))

(* --- Cond --------------------------------------------------------------- *)

let icc_of_cmp a b =
  let r = Word.sub a b in
  {
    Cond.n = r < 0;
    z = r = 0;
    v = Word.sub_overflow a b;
    c = Word.sub_carry a b;
  }

let test_cond_signed () =
  let pairs = [ (1, 2); (2, 1); (0, 0); (-5, 3); (3, -5); (min_int land 0xFFFFFFFF, 1) ] in
  List.iter
    (fun (a, b) ->
      let a = Word.norm a and b = Word.norm b in
      let icc = icc_of_cmp a b in
      check_bool (Printf.sprintf "%d<%d" a b) (a < b) (Cond.eval Cond.L icc);
      check_bool (Printf.sprintf "%d<=%d" a b) (a <= b) (Cond.eval Cond.Le icc);
      check_bool (Printf.sprintf "%d>%d" a b) (a > b) (Cond.eval Cond.G icc);
      check_bool (Printf.sprintf "%d>=%d" a b) (a >= b) (Cond.eval Cond.Ge icc);
      check_bool (Printf.sprintf "%d=%d" a b) (a = b) (Cond.eval Cond.E icc))
    pairs

let test_cond_unsigned () =
  let pairs = [ (1, 2); (-1, 1); (1, -1); (0, 0) ] in
  List.iter
    (fun (a, b) ->
      let a = Word.norm a and b = Word.norm b in
      let ua = Word.to_unsigned a and ub = Word.to_unsigned b in
      let icc = icc_of_cmp a b in
      check_bool "gu" (ua > ub) (Cond.eval Cond.Gu icc);
      check_bool "leu" (ua <= ub) (Cond.eval Cond.Leu icc);
      check_bool "cc/geu" (ua >= ub) (Cond.eval Cond.Cc icc);
      check_bool "cs/lu" (ua < ub) (Cond.eval Cond.Cs icc))
    pairs

let test_cond_negate () =
  List.iter
    (fun c ->
      List.iter
        (fun icc ->
          check_bool "negate" (not (Cond.eval c icc)) (Cond.eval (Cond.negate c) icc))
        [
          Cond.icc_zero;
          { Cond.n = true; z = false; v = false; c = true };
          { Cond.n = false; z = true; v = false; c = false };
          { Cond.n = true; z = false; v = true; c = false };
        ])
    Cond.all

(* --- Asm / Assembler ----------------------------------------------------- *)

let test_set_expansion () =
  (match Asm.set 42 (Reg.l 0) with
  | [ Insn.Alu { op = Insn.Or; op2 = Insn.Imm 42; _ } ] -> ()
  | _ -> Alcotest.fail "small set should be one mov");
  (match Asm.set 0x12345678 (Reg.l 0) with
  | [ Insn.Sethi _; Insn.Alu { op = Insn.Or; _ } ] -> ()
  | _ -> Alcotest.fail "large set should be sethi+or");
  (* sethi+or must reconstruct the value *)
  let v = 0x12345678 in
  let hi = v lsr 10 and lo = v land 0x3FF in
  check_int "reconstruct" v ((hi lsl 10) lor lo)

let simple_program body =
  { Asm.text = Asm.Label "main" :: body; data = []; entry = "main" }

let test_assemble_resolves_labels () =
  let prog =
    simple_program
      [
        Asm.Insn (Asm.ba "done_");
        Asm.Insn Asm.nop;
        Asm.Label "done_";
        Asm.Insn (Asm.trap 0);
      ]
  in
  let image = Sparc.Assembler.assemble prog in
  check_int "text length" 3 (Array.length image.text);
  (match image.text.(0) with
  | Insn.Branch { target = Insn.Abs a; _ } ->
    check_int "branch target" (image.text_base + 8) a
  | _ -> Alcotest.fail "expected branch");
  check_int "entry" image.text_base image.entry

let test_assemble_data () =
  let prog =
    {
      Asm.text = [ Asm.Label "main"; Asm.Insn (Asm.trap 0) ];
      data =
        [
          { Asm.name = "x"; size = 4; init = [ 7 ] };
          { Asm.name = "arr"; size = 40; init = [] };
        ];
      entry = "main";
    }
  in
  let image = Sparc.Assembler.assemble prog in
  let x = Option.get (Sparc.Assembler.addr_of_label image "x") in
  let arr = Option.get (Sparc.Assembler.addr_of_label image "arr") in
  check_int "x addr" image.data_base x;
  check_int "arr addr" (image.data_base + 8) arr;
  check_bool "init" true (List.mem (x, 7) image.data_init);
  check_int "limit" (arr + 40) image.data_limit

let test_assemble_duplicate_label () =
  let prog =
    simple_program [ Asm.Label "dup"; Asm.Label "dup"; Asm.Insn (Asm.trap 0) ]
  in
  (try
     ignore (Sparc.Assembler.assemble prog);
     Alcotest.fail "expected duplicate label error"
   with Sparc.Assembler.Error _ -> ())

let test_assemble_undefined_label () =
  let prog = simple_program [ Asm.Insn (Asm.ba "nowhere") ] in
  (try
     ignore (Sparc.Assembler.assemble prog);
     Alcotest.fail "expected undefined label error"
   with Sparc.Assembler.Error _ -> ())

let test_set_label_size () =
  let prog =
    {
      Asm.text =
        [
          Asm.Label "main";
          Asm.Set_label { label = "x"; offset = 0; rd = Reg.l 0 };
          Asm.Insn (Asm.trap 0);
        ];
      data = [ { Asm.name = "x"; size = 4; init = [] } ];
      entry = "main";
    }
  in
  let image = Sparc.Assembler.assemble prog in
  check_int "set expands to two words" 3 (Array.length image.text);
  (* Executing sethi+or must produce the label address; verified in
     machine tests, here just check decode shape. *)
  (match image.text.(0), image.text.(1) with
  | Insn.Sethi _, Insn.Alu { op = Insn.Or; _ } -> ()
  | _ -> Alcotest.fail "set_label should expand to sethi+or")

(* --- Printer / Parser round trip ------------------------------------------ *)

let test_print_parse_roundtrip () =
  let items =
    [
      Asm.Label "main";
      Asm.Insn (Asm.save 96);
      Asm.Insn (Asm.mov (Insn.Imm 5) (Reg.o 0));
      Asm.Insn (Asm.st (Reg.o 0) Reg.fp (Insn.Imm (-20)));
      Asm.Insn (Asm.ld Reg.fp (Insn.Imm (-20)) (Reg.o 1));
      Asm.Insn (Asm.add (Reg.o 1) (Insn.Imm 1) (Reg.o 1));
      Asm.Insn (Asm.cmp (Reg.o 1) (Insn.Imm 10));
      Asm.Insn (Asm.branch Cond.L "main");
      Asm.Insn (Asm.st ~width:Insn.Byte (Reg.o 1) (Reg.l 2) (Insn.Reg (Reg.l 3)));
      Asm.Insn (Asm.sethi 0x48 (Reg.g 1));
      Asm.Insn (Asm.call "main");
      Asm.Insn Asm.nop;
      Asm.Insn Asm.ret;
      Asm.Insn Asm.restore;
      Asm.Insn (Asm.trap 0);
      Asm.Set_label { label = "glob"; offset = 4; rd = Reg.l 5 };
    ]
  in
  let prog =
    { Asm.text = items; data = [ { Asm.name = "glob"; size = 8; init = [ 1; 2 ] } ];
      entry = "main" }
  in
  let printed = Printer.program_to_string prog in
  let reparsed = Sparc.Parser.program_of_string printed in
  check_int "same item count" (List.length prog.text) (List.length reparsed.text);
  List.iter2
    (fun a b ->
      match a, b with
      | Asm.Insn x, Asm.Insn y ->
        check_bool (Printer.insn_to_string x) true (Insn.equal x y)
      | Asm.Label x, Asm.Label y -> check_string "label" x y
      | Asm.Set_label x, Asm.Set_label y ->
        check_string "set label" x.label y.label;
        check_int "set offset" x.offset y.offset
      | _ -> Alcotest.fail "item class mismatch")
    prog.text reparsed.text;
  check_string "entry" prog.entry reparsed.entry;
  (match reparsed.data with
  | [ d1 ] ->
    check_string "data name" "glob" d1.Asm.name;
    check_int "data size" 8 d1.size;
    check_bool "data init" true (d1.init = [ 1; 2 ])
  | _ -> Alcotest.fail "expected one data def")

(* Random instruction generator for the qcheck round trip. *)
let gen_reg = QCheck.Gen.(map Reg.of_index (int_bound 31))

let gen_operand =
  QCheck.Gen.(
    oneof [ map (fun r -> Insn.Reg r) gen_reg; map (fun i -> Insn.Imm i) (int_range (-4096) 4095) ])

let gen_insn =
  QCheck.Gen.(
    oneof
      [
        return Insn.Nop;
        (let* op =
           oneofl
             [ Insn.Add; Insn.Sub; Insn.And; Insn.Or; Insn.Xor; Insn.Sll; Insn.Srl;
               Insn.Sra; Insn.Smul; Insn.Sdiv ]
         and* cc = bool
         and* rs1 = gen_reg
         and* op2 = gen_operand
         and* rd = gen_reg in
         return (Insn.Alu { op; cc; rs1; op2; rd }));
        (let* rs1 = gen_reg
         and* off = gen_operand
         and* rd = gen_reg
         and* width = oneofl [ Insn.Word; Insn.Byte; Insn.Half ]
         and* signed = bool in
         return (Insn.Ld { width; signed; rs1; off; rd }));
        (let* rs1 = gen_reg
         and* off = gen_operand
         and* rd = gen_reg
         and* width = oneofl [ Insn.Word; Insn.Byte; Insn.Half ] in
         return (Insn.St { width; rd; rs1; off }));
        (let* cond = oneofl Cond.all in
         return (Insn.Branch { cond; target = Insn.Sym "target" }));
        return (Insn.Call { target = Insn.Sym "target" });
        (let* rs1 = gen_reg and* off = gen_operand and* rd = gen_reg in
         return (Insn.Jmpl { rs1; off; rd }));
        (let* n = int_bound 127 in
         return (Insn.Trap { number = n }));
        (let* imm = int_bound 0x3FFFFF and* rd = gen_reg in
         return (Insn.Sethi { imm; rd }));
      ])

let arb_insn = QCheck.make ~print:Printer.insn_to_string gen_insn

let prop_roundtrip =
  QCheck.Test.make ~name:"printer/parser insn round trip" ~count:500 arb_insn
    (fun insn ->
      let printed = Printer.insn_to_string insn in
      let src = Printf.sprintf "target:\n\t%s\n" printed in
      let prog = Sparc.Parser.program_of_string src in
      match prog.text with
      | [ Asm.Label "target"; Asm.Insn parsed ] ->
        (* ld defaults to signed for sub-word widths; printing uses
           distinct mnemonics so equality must hold exactly. *)
        Insn.equal insn parsed
      | _ -> false)

(* --- Symtab -------------------------------------------------------------- *)

let test_symtab_scopes () =
  let t =
    Symtab.of_list
      [
        Symtab.scalar ~name:"x" (Symtab.Data_label ("x", 0));
        Symtab.scalar ~func:"f" ~name:"x" (Symtab.Fp_offset (-20));
        Symtab.scalar ~func:"f" ~name:"y" (Symtab.Fp_offset (-24));
      ]
  in
  (match Symtab.lookup t "x" with
  | Some { Symtab.location = Symtab.Data_label ("x", 0); _ } -> ()
  | _ -> Alcotest.fail "global x");
  (match Symtab.lookup t ~func:"f" "x" with
  | Some { Symtab.location = Symtab.Fp_offset (-20); _ } -> ()
  | _ -> Alcotest.fail "local x");
  (match Symtab.lookup_visible t ~func:"g" "x" with
  | Some { Symtab.func = None; _ } -> ()
  | _ -> Alcotest.fail "fall back to global");
  check_int "globals" 1 (List.length (Symtab.globals t));
  check_int "locals of f" 2 (List.length (Symtab.locals_of t "f"))

let test_symtab_resolution () =
  let t = Symtab.of_list [ Symtab.scalar ~name:"g" (Symtab.Data_label ("g", 8)) ] in
  let t =
    Symtab.resolve_data_labels
      ~addr_of_label:(fun l -> if l = "g" then Some 0x400000 else None)
      t
  in
  (match Symtab.lookup t "g" with
  | Some { Symtab.location = Symtab.Absolute a; _ } ->
    check_int "resolved" 0x400008 a
  | _ -> Alcotest.fail "resolution failed")

let test_symtab_struct () =
  let e =
    {
      Symtab.name = "s";
      func = None;
      location = Symtab.Data_label ("s", 0);
      size_words = 3;
      ctype = Symtab.Struct { fields = [ ("a", 0); ("f", 1); ("b", 2) ] };
    }
  in
  check_int "field f" 1 (Option.get (Symtab.field_offset e "f"));
  check_bool "missing field" true (Symtab.field_offset e "zz" = None)

let suites =
  [
    ( "sparc.word",
      [
        Alcotest.test_case "norm" `Quick test_word_norm;
        Alcotest.test_case "shifts" `Quick test_word_shifts;
        Alcotest.test_case "carry/overflow" `Quick test_word_carry;
        Alcotest.test_case "division" `Quick test_word_divides;
      ] );
    ( "sparc.reg",
      [
        Alcotest.test_case "round trip" `Quick test_reg_roundtrip;
        Alcotest.test_case "aliases" `Quick test_reg_aliases;
      ] );
    ( "sparc.cond",
      [
        Alcotest.test_case "signed" `Quick test_cond_signed;
        Alcotest.test_case "unsigned" `Quick test_cond_unsigned;
        Alcotest.test_case "negate" `Quick test_cond_negate;
      ] );
    ( "sparc.asm",
      [
        Alcotest.test_case "set expansion" `Quick test_set_expansion;
        Alcotest.test_case "label resolution" `Quick test_assemble_resolves_labels;
        Alcotest.test_case "data layout" `Quick test_assemble_data;
        Alcotest.test_case "duplicate label" `Quick test_assemble_duplicate_label;
        Alcotest.test_case "undefined label" `Quick test_assemble_undefined_label;
        Alcotest.test_case "set_label expansion" `Quick test_set_label_size;
      ] );
    ( "sparc.printer",
      [
        Alcotest.test_case "program round trip" `Quick test_print_parse_roundtrip;
        QCheck_alcotest.to_alcotest prop_roundtrip;
      ] );
    ( "sparc.symtab",
      [
        Alcotest.test_case "scopes" `Quick test_symtab_scopes;
        Alcotest.test_case "resolution" `Quick test_symtab_resolution;
        Alcotest.test_case "struct fields" `Quick test_symtab_struct;
      ] );
  ]
