open Dbp

let check_int = Alcotest.(check int)

(* Every workload must compile, terminate, and reproduce its locked-in
   result. *)
let test_plain_results () =
  List.iter
    (fun (w : Workloads.Workload.t) ->
      let code, _ = Minic.Compile.run ~fuel:50_000_000 w.source in
      match w.expected_exit with
      | Some expect -> check_int w.name expect code
      | None -> ())
    Workloads.Spec.all

(* Instrumentation must not change workload results; checked on one
   C-class and one FORTRAN-class program across the optimization
   levels (the benchmark harness exercises the full matrix). *)
let test_instrumented_results () =
  let subjects =
    [ Workloads.Li.workload; Workloads.Matrix300.workload ]
  in
  let option_sets =
    [
      { Instrument.default_options with strategy = Strategy.Bitmap };
      { Instrument.default_options with strategy = Strategy.Cache_inline };
      { Instrument.default_options with opt = Instrument.O_full };
    ]
  in
  List.iter
    (fun (w : Workloads.Workload.t) ->
      List.iter
        (fun o ->
          let o =
            { o with Instrument.fortran_idiom = Workloads.Workload.fortran_idiom w }
          in
          let session = Session.create ~options:o w.source in
          Mrs.enable session.Session.mrs;
          let code, _ = Session.run ~fuel:50_000_000 session in
          match w.expected_exit with
          | Some expect ->
            check_int
              (w.name ^ " under " ^ Strategy.to_string o.Instrument.strategy)
              expect code
          | None -> ())
        option_sets)
    subjects

(* Elimination sanity on the two poles of Table 2: matrix300 should
   eliminate nearly all dynamic checks, the lisp kernel far fewer. *)
let eliminated_fraction (w : Workloads.Workload.t) =
  let o =
    {
      Instrument.default_options with
      opt = Instrument.O_full;
      fortran_idiom = Workloads.Workload.fortran_idiom w;
    }
  in
  let session = Session.create ~options:o w.source in
  ignore (Session.run ~fuel:50_000_000 session);
  let total = Session.total_site_executions session in
  let elim = Session.eliminated_site_executions session in
  float_of_int elim /. float_of_int (max 1 total)

let test_elimination_extremes () =
  let m = eliminated_fraction Workloads.Matrix300.workload in
  Alcotest.(check bool)
    (Printf.sprintf "matrix300 eliminates most checks (%.2f)" m)
    true (m > 0.85);
  let l = eliminated_fraction Workloads.Li.workload in
  Alcotest.(check bool)
    (Printf.sprintf "li eliminates fewer checks than matrix300 (%.2f)" l)
    true (l < m)

(* The textual assembly pipeline: print a whole instrumented workload
   to SPARC assembly text, parse it back, assemble and run — the result
   must be identical.  This exercises the printer/parser on tens of
   thousands of real instructions. *)
let test_assembly_text_roundtrip () =
  let w = Workloads.Fpppp.workload in
  let out = Minic.Compile.compile w.source in
  let plan =
    Instrument.run
      { Instrument.default_options with
        fortran_idiom = Workloads.Workload.fortran_idiom w }
      out
  in
  let printed = Sparc.Printer.program_to_string plan.Instrument.program in
  let reparsed = Sparc.Parser.program_of_string printed in
  let image = Sparc.Assembler.assemble reparsed in
  let cpu = Machine.Cpu.create image in
  Machine.Cpu.install_basic_services cpu;
  (* No MRS on this copy: raise the disabled flag so the guard skips
     every check body. *)
  Machine.Cpu.set cpu (Sparc.Reg.g 6) 1;
  let code = Machine.Cpu.run ~fuel:50_000_000 cpu in
  match w.expected_exit with
  | Some e -> check_int "round-tripped result" e code
  | None -> ()

let suites =
  [
    ( "workloads",
      [
        Alcotest.test_case "locked results" `Quick test_plain_results;
        Alcotest.test_case "instrumented results" `Slow test_instrumented_results;
        Alcotest.test_case "elimination extremes" `Slow test_elimination_extremes;
        Alcotest.test_case "assembly text round trip" `Quick
          test_assembly_text_roundtrip;
      ] );
  ]
