(* Calibration: run each workload uninstrumented, print exit codes,
   instruction counts and store density. *)

let () =
  List.iter
    (fun (w : Workloads.Workload.t) ->
      try
        let linked = Minic.Compile.compile_and_link w.source in
        let cpu = Machine.Cpu.create linked.image in
        Machine.Cpu.install_basic_services cpu;
        let code = Machine.Cpu.run ~fuel:100_000_000 cpu in
        let s = Machine.Cpu.stats cpu in
        Printf.printf "%-16s exit=%-6d instrs=%-9d cycles=%-9d stores=%-8d store%%=%.1f\n"
          w.name code s.Machine.Cpu.instrs s.Machine.Cpu.cycles s.Machine.Cpu.stores
          (100.0 *. float_of_int s.Machine.Cpu.stores /. float_of_int s.Machine.Cpu.instrs)
      with
      | Minic.Compile.Error e ->
        Printf.printf "%-16s COMPILE ERROR (%s): %s\n" w.name e.phase e.message
      | Machine.Cpu.Fault { pc; reason } ->
        Printf.printf "%-16s FAULT at 0x%x: %s\n" w.name pc reason
      | Machine.Cpu.Out_of_fuel _ -> Printf.printf "%-16s OUT OF FUEL\n" w.name)
    Workloads.Spec.all
