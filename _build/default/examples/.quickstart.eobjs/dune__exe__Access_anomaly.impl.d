examples/access_anomaly.ml: Dbp Debugger Hashtbl Instrument List Mrs Option Printf Session Sparc
