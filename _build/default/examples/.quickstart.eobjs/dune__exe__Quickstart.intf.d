examples/quickstart.mli:
