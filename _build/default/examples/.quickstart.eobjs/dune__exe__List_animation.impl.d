examples/list_animation.ml: Buffer Dbp Debugger Hashtbl Machine Option Printf Session Sparc
