examples/access_anomaly.mli:
