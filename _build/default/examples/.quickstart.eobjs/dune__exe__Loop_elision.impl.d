examples/loop_elision.ml: Dbp Fmt Instrument Ir List Loopopt Mrs Printf Session Write_type
