examples/watch_struct_field.ml: Dbp Debugger Machine Mrs Option Printf Session
