examples/watch_struct_field.mli:
