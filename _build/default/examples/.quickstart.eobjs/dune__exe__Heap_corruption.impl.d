examples/heap_corruption.ml: Dbp Debugger List Machine Option Printf Session
