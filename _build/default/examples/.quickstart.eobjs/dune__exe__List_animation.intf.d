examples/list_animation.mli:
