examples/quickstart.ml: Dbp Debugger Machine Mrs Option Printf Session
