(* Data-structure animation (§5): redraw a linked list every time it
   changes, without instrumenting the program with print statements —
   a data breakpoint on the list head plus watches on the cells makes
   the structure narrate its own evolution.

   Run with:  dune exec examples/list_animation.exe *)

open Dbp

let program = {|
struct node { int v; struct node *next; };

struct node *head_ptr;

int push(int v) {
  struct node *n;
  n = malloc(8);
  n->v = v;
  n->next = head_ptr;
  head_ptr = n;
  return 0;
}

int pop() {
  struct node *n;
  int v;
  if (head_ptr == 0) { return -1; }
  n = head_ptr;
  head_ptr = n->next;
  v = n->v;
  free(n);
  return v;
}

/* In-place reversal: the classic pointer shuffle worth animating. */
int reverse() {
  struct node *prev;
  struct node *cur;
  struct node *nxt;
  prev = 0;
  cur = head_ptr;
  while (cur != 0) {
    nxt = cur->next;
    cur->next = prev;
    prev = cur;
    cur = nxt;
  }
  head_ptr = prev;
  return 0;
}

int main() {
  push(1); push(2); push(3);
  reverse();
  pop();
  push(9);
  return pop();
}
|}

let () =
  let session = Session.create program in
  let dbg = Debugger.create session in
  let mem = Machine.Cpu.mem session.Session.cpu in

  (* Render the list by walking simulated memory from head_ptr. *)
  let head_addr =
    match Sparc.Symtab.lookup session.Session.symtab "head_ptr" with
    | Some { Sparc.Symtab.location = Sparc.Symtab.Absolute a; _ } -> a
    | _ -> failwith "no head_ptr"
  in
  let render () =
    let buf = Buffer.create 64 in
    let rec walk p n =
      if p = 0 then Buffer.add_string buf "·"
      else if n > 8 then Buffer.add_string buf "..."
      else begin
        Buffer.add_string buf (Printf.sprintf "%d → " (Machine.Memory.read_word mem p));
        walk (Machine.Memory.read_word mem (p + 4)) (n + 1)
      end
    in
    walk (Machine.Memory.read_word mem head_addr) 0;
    Buffer.contents buf
  in

  (* Animate on every change of the head or of any live cell.  Cells
     are discovered as they are linked in. *)
  let watched_cells = Hashtbl.create 8 in
  let animate (e : Debugger.event) =
    Printf.printf "%-28s (%s wrote %s)\n" (render ())
      (Option.value ~default:"?" e.Debugger.in_function)
      e.Debugger.watch.Debugger.wname;
    (* Follow the structure: watch any newly reachable cell. *)
    let rec discover p n =
      if p <> 0 && n < 16 && not (Hashtbl.mem watched_cells p) then begin
        Hashtbl.replace watched_cells p ();
        ignore
          (Debugger.watch_addr dbg ~name:(Printf.sprintf "cell@0x%x" p) ~addr:p
             ~size_bytes:8 ());
        discover (Machine.Memory.read_word mem (p + 4)) (n + 1)
      end
    in
    discover (Machine.Memory.read_word mem head_addr) 0
  in
  ignore (Debugger.watch dbg "head_ptr");
  Debugger.set_on_event dbg animate;

  let exit_code, _ = Session.run session in
  Printf.printf "\nfinal pop() = %d\n" exit_code
