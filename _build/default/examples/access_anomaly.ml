(* Access-anomaly detection (§5): with read monitoring — the paper's
   "straightforward extension" to read instructions — data breakpoints
   can catch a consumer reading shared data the producer has not
   written yet, the essence of the access-anomaly detectors the paper
   cites (Dinning & Schonberg).

   Here a double-buffered pipeline swaps buffers with an off-by-one:
   one consumer round reads a cell its producer round never filled.
   The detector keeps a written-set per cell and flags any monitored
   READ of a never-written cell.

   Run with:  dune exec examples/access_anomaly.exe *)

open Dbp

let program = {|
int shared[16];

int produce(int round) {
  int i;
  /* BUG: fills only 15 of the 16 cells. */
  for (i = 0; i < 15; i = i + 1) {
    shared[i] = round * 100 + i;
  }
  return 0;
}

int consume() {
  int i;
  int s;
  s = 0;
  for (i = 0; i < 16; i = i + 1) {
    s = s + shared[i];
  }
  return s;
}

int main() {
  int total;
  produce(1);
  total = consume();
  return total & 255;
}
|}

let () =
  let options =
    { Instrument.default_options with Instrument.monitor_reads = true }
  in
  let session = Session.create ~options program in
  let dbg = Debugger.create session in
  let _wp = Debugger.watch dbg "shared" in

  (* The detector: a written-set over the watched array. *)
  let written = Hashtbl.create 16 in
  let anomalies = ref [] in
  Debugger.set_on_event dbg (fun e ->
      match e.Debugger.access with
      | Mrs.Write -> Hashtbl.replace written e.Debugger.addr ()
      | Mrs.Read ->
        if not (Hashtbl.mem written e.Debugger.addr) then
          anomalies := (e.Debugger.addr, e.Debugger.in_function) :: !anomalies);

  let exit_code, _ = Session.run session in
  let c = Mrs.counters session.Session.mrs in
  Printf.printf "exit %d; %d writes and %d reads of 'shared' monitored\n"
    exit_code
    (c.Mrs.user_hits - c.Mrs.read_hits)
    c.Mrs.read_hits;
  match List.rev !anomalies with
  | [] -> print_endline "no anomalies"
  | l ->
    List.iter
      (fun (addr, f) ->
        Printf.printf
          "ANOMALY: read of never-written cell shared[%d] in %s\n"
          ((addr - (match Sparc.Symtab.lookup session.Session.symtab "shared" with
                    | Some { Sparc.Symtab.location = Sparc.Symtab.Absolute a; _ } -> a
                    | _ -> 0)) / 4)
          (Option.value ~default:"?" f))
      l
