(* Quickstart: set a data breakpoint on a global variable and print
   every update — the paper's motivating debugging task, "print the
   value of x every time it is updated", without hunting for the
   statements that might write it.

   Run with:  dune exec examples/quickstart.exe *)

open Dbp

let program = {|
int balance;

int deposit(int amount) {
  balance = balance + amount;
  return balance;
}

int withdraw(int amount) {
  balance = balance - amount;
  return balance;
}

int main() {
  int day;
  deposit(100);
  for (day = 0; day < 3; day = day + 1) {
    deposit(10 + day);
    withdraw(5);
  }
  withdraw(50);
  return balance;
}
|}

let () =
  (* Compile, instrument every write with the recommended strategy
     (inlined segmented-bitmap lookup with reserved registers), load
     into the simulator, and install the monitored region service. *)
  let session = Session.create program in
  let dbg = Debugger.create session in

  (* "watch balance" *)
  let _wp = Debugger.watch dbg "balance" in

  (* Print each hit as it happens: the written value and which function
     performed the write. *)
  Debugger.set_on_event dbg (fun e ->
      let value =
        Machine.Memory.read_word (Machine.Cpu.mem session.Session.cpu) e.Debugger.addr
      in
      Printf.printf "balance <- %4d   (written by %s at pc 0x%x)\n" value
        (Option.value ~default:"?" e.Debugger.in_function)
        e.Debugger.pc);

  let exit_code, _output = Session.run session in
  Printf.printf "\nprogram exited with %d; %d writes caught, 0 missed (oracle: %d)\n"
    exit_code
    (Mrs.counters session.Session.mrs).Mrs.user_hits
    (Session.missed_hits session)
