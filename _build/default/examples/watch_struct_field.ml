(* The paper's headline break condition: "stop when field f of
   structure s is modified" (§1, §5) — tedious with control breakpoints
   because s.f is also updated through pointers, but a single data
   breakpoint on the field's word.

   Run with:  dune exec examples/watch_struct_field.exe *)

open Dbp

let program = {|
struct config {
  int verbosity;
  int max_depth;     /* the field under suspicion */
  int seed;
};

struct config cfg;

/* Direct update. */
int set_depth(int d) {
  cfg.max_depth = d;
  return d;
}

/* Updates through a pointer — invisible to a search for "max_depth". */
int clamp_all(struct config *c) {
  if (c->max_depth > 10) {
    c->max_depth = 10;
  }
  c->verbosity = 1;
  return 0;
}

/* A stray write through pointer arithmetic: the actual bug. */
int reset_verbosity(struct config *c) {
  int *p;
  p = c;
  p[1] = -1;          /* meant p[0]! silently kills max_depth */
  return 0;
}

int main() {
  cfg.verbosity = 2;
  set_depth(99);
  clamp_all(&cfg);
  reset_verbosity(&cfg);
  return cfg.max_depth;
}
|}

let () =
  let session = Session.create program in
  let dbg = Debugger.create session in

  (* "watch cfg.max_depth" — one word of the structure. *)
  let _wp = Debugger.watch_field dbg "cfg" "max_depth" in

  Debugger.set_on_event dbg (fun e ->
      let v =
        Machine.Memory.read_word (Machine.Cpu.mem session.Session.cpu) e.Debugger.addr
      in
      Printf.printf "cfg.max_depth <- %3d   in %s\n" v
        (Option.value ~default:"?" e.Debugger.in_function));

  let exit_code, _ = Session.run session in
  Printf.printf "\nfinal cfg.max_depth = %d\n" exit_code;
  Printf.printf
    "(the last writer above is the culprit; note the write in\n\
    \ reset_verbosity never mentions max_depth in the source)\n";
  (* Updates to OTHER fields of cfg must not trigger. *)
  assert ((Mrs.counters session.Session.mrs).Mrs.user_hits = 3)
