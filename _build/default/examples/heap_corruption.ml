(* Fault isolation (§5): protect the memory allocator's metadata from
   the rest of the program.

   The buggy program writes one element past the end of a heap block,
   smashing the size header of the next block — the classic corruption
   that normally surfaces thousands of instructions later inside the
   allocator.  Data breakpoints on the free-list head and on the
   neighbouring block header catch the stray write the moment it
   happens and name the function that did it.

   Run with:  dune exec examples/heap_corruption.exe *)

open Dbp

let program = {|
int result;

int fill(int *buf, int n) {
  int i;
  /* BUG: writes buf[0..n] inclusive — one word too many. */
  for (i = 0; i <= n; i = i + 1) {
    buf[i] = 1000 + i;
  }
  return 0;
}

int sum(int *buf, int n) {
  int i;
  int s;
  s = 0;
  for (i = 0; i < n; i = i + 1) { s = s + buf[i]; }
  return s;
}

int main() {
  int *a;
  int *b;
  a = malloc(28);   /* 7 words + 1 header word = exactly 32 bytes */
  b = malloc(28);
  fill(a, 7);       /* clobbers the size header of b's block */
  result = sum(a, 7) + sum(b, 7);
  free(b);          /* the allocator now traverses poisoned metadata */
  free(a);
  return result & 255;
}
|}

let () =
  let session = Session.create program in
  let dbg = Debugger.create session in

  (* Watch the allocator's free-list head: only malloc and free are
     legitimate writers. *)
  let freelist = Debugger.watch dbg "__free_list" in
  Debugger.restrict_writers dbg freelist ~writers:[ "malloc"; "free" ];

  (* The first block is carved at the initial heap break, so the second
     block's header lands exactly 32 bytes later; put it under the same
     policy.  (A real debugger would arm this from a breakpoint on
     malloc's return.) *)
  let brk0 = Machine.Cpu.brk session.Session.cpu in
  let hdr =
    Debugger.watch_addr dbg ~name:"b-block-header" ~addr:(brk0 + 32) ~size_bytes:4 ()
  in
  Debugger.restrict_writers dbg hdr ~writers:[ "malloc"; "free" ];

  let exit_code, _ = Session.run session in
  Printf.printf "program exited with %d\n\n" exit_code;
  List.iter
    (fun (e : Debugger.event) ->
      Printf.printf "write to %-16s by %-8s (pc 0x%x)\n" e.watch.Debugger.wname
        (Option.value ~default:"?" e.in_function)
        e.pc)
    (Debugger.events dbg);
  print_newline ();
  match Debugger.violations dbg with
  | [] -> print_endline "no violations (bug fixed?)"
  | vs ->
    List.iter
      (fun (what, who) ->
        Printf.printf "VIOLATION: %s written by %s — not an allowed writer!\n"
          what
          (Option.value ~default:"<unknown>" who))
      vs
