(* A look inside the optimizer (§4): compile a small numeric kernel,
   run the symbol-table and loop analyses, and show which write checks
   were eliminated, which became pre-header checks, and what it costs
   at runtime.

   Run with:  dune exec examples/loop_elision.exe *)

open Dbp

let program = {|
int image[1024];
int histogram[64];

int blur() {
  int i;
  for (i = 1; i < 1023; i = i + 1) {
    image[i] = (image[i - 1] + image[i] + image[i + 1]) / 3;
  }
  return 0;
}

int histo() {
  int i;
  int bucket;
  for (i = 0; i < 1024; i = i + 1) {
    bucket = (image[i] >> 4) & 63;
    histogram[bucket] = histogram[bucket] + 1;
  }
  return 0;
}

int main() {
  int i;
  int seed;
  seed = 7;
  for (i = 0; i < 1024; i = i + 1) {
    seed = seed * 1103515245 + 12345;
    image[i] = (seed >> 16) & 255;
  }
  blur();
  histo();
  return histogram[10] & 255;
}
|}

let describe_status = function
  | Instrument.Checked -> "checked at every execution"
  | Instrument.Sym_eliminated p -> "eliminated (symbol match on " ^ p ^ ")"
  | Instrument.Loop_eliminated id -> Printf.sprintf "eliminated (loop %d pre-header)" id

let () =
  let options = { Instrument.default_options with opt = Instrument.O_full } in
  let session = Session.create ~options program in
  Mrs.enable session.Session.mrs;
  let plan = session.Session.plan in

  Printf.printf "static write sites and their disposition:\n";
  List.iter
    (fun (s : Instrument.site) ->
      Printf.printf "  site@item %-4d [%-7s] %s\n" s.origin
        (Write_type.to_string s.write_type)
        (describe_status s.status))
    plan.Instrument.sites;

  Printf.printf "\nloop plans (pre-header checks):\n";
  List.iter
    (fun (p : Loopopt.loop_plan) ->
      Printf.printf "  loop %d in %s: %d check(s), %d store site(s) eliminated\n"
        p.loop_id p.fname (List.length p.checks) (List.length p.eliminated);
      List.iter
        (fun c ->
          match c with
          | Loopopt.Inv { expr; _ } ->
            Fmt.pr "      invariant check on %a@." Ir.Bounds.pp_bexpr expr
          | Loopopt.Rng { lo; hi; _ } ->
            Fmt.pr "      range check [%a, %a]@." Ir.Bounds.pp_bexpr lo
              Ir.Bounds.pp_bexpr hi)
        p.checks)
    plan.Instrument.loop_plans;

  let exit_code, _ = Session.run session in
  let total = Session.total_site_executions session in
  let elim = Session.eliminated_site_executions session in
  Printf.printf "\nexit code %d\n" exit_code;
  Printf.printf "dynamic writes:            %8d\n" total;
  Printf.printf "checks eliminated:         %8d (%.1f%%)\n" elim
    (100.0 *. float_of_int elim /. float_of_int (max 1 total));
  Printf.printf "pre-header checks run:     %8d\n"
    (Mrs.counters session.Session.mrs).Mrs.loop_entries;
  Printf.printf "range checks that fired:   %8d (no regions are set)\n"
    (Mrs.counters session.Session.mrs).Mrs.loop_triggers
