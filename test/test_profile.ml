open Dbp

(* Tests for the hot-path profiler: exact conservation of the packed
   block/edge counters against the machine's architectural stats,
   call-stack attribution, determinism of the exports, the
   zero-added-work contract when profiling is off, the per-block MRS
   check-density join, the Chrome-trace edge cases, and the
   dbp-telemetry/4 schema bump. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let workload name =
  match Workloads.Spec.find name with
  | Some w -> w
  | None -> Alcotest.failf "unknown workload %s" name

let options =
  { Instrument.default_options with strategy = Strategy.Bitmap_inline_registers }

let run_profiled ?(options = options) src =
  let session = Session.create ~options ~profile:true src in
  Mrs.enable session.Session.mrs;
  let code, _ = Session.run ~fuel:20_000_000 session in
  (session, code)

let fn rep name =
  match
    List.find_opt (fun f -> f.Profile.fr_name = name) rep.Profile.p_functions
  with
  | Some f -> f
  | None -> Alcotest.failf "profile has no function %S" name

(* --- conservation against the machine ------------------------------------------- *)

(* Every architectural event the profiler double-books must reconcile
   exactly: block instruction counts, folded stack self counts and the
   per-slot exec counters all sum to the machine's retired-instruction
   count, and the per-slot taken/exec counters over branch slots sum to
   the machine's branch count.  Run on the matrix kernel under a real
   strategy so MRS patching (and hence the packed-kind repatch path) is
   exercised too. *)
let test_conservation_matrix300 () =
  let w = workload "030.matrix300" in
  let options =
    { options with fortran_idiom = Workloads.Workload.fortran_idiom w }
  in
  let session, code = run_profiled ~options w.Workloads.Workload.source in
  (match w.Workloads.Workload.expected_exit with
  | Some e -> check_int "exit" e code
  | None -> ());
  let cpu = session.Session.cpu in
  let stats = Machine.Cpu.stats cpu in
  let p = Option.get session.Session.profiler in
  check_int "profiled_instrs = instr_count" (Machine.Cpu.instr_count cpu)
    (Profile.profiled_instrs p);
  let rep = Session.profile_report session in
  check_int "report total = instr_count" (Machine.Cpu.instr_count cpu)
    rep.Profile.p_total_instrs;
  check_int "sum of block instrs = total"
    rep.Profile.p_total_instrs
    (List.fold_left (fun acc b -> acc + b.Profile.bb_instrs) 0
       rep.Profile.p_blocks);
  check_int "sum of folded stacks = total" rep.Profile.p_total_instrs
    (List.fold_left (fun acc (_, n) -> acc + n) 0 rep.Profile.p_folded);
  (* Per-slot: branch-kind exec counts sum to the machine's branch
     stat; taken never exceeds exec. *)
  let info = Machine.Cpu.profile_static cpu in
  let taken = Profile.taken_array p in
  let branch_execs = ref 0 in
  Array.iteri
    (fun i (k, _) ->
      let e = Profile.exec_count p i in
      if k = Profile.kind_branch then begin
        branch_execs := !branch_execs + e;
        check_bool "taken <= exec" true (taken.(i) <= e)
      end)
    info;
  check_int "sum of branch-slot execs = stats.branches" stats.Machine.Cpu.branches
    !branch_execs;
  (* Every taken edge in the report comes from the taken counters, so
     the two sums reconcile exactly. *)
  check_int "sum of taken edges = sum of taken counters"
    (Array.fold_left ( + ) 0 taken)
    (List.fold_left
       (fun acc e ->
         if e.Profile.ed_kind = "taken" then acc + e.Profile.ed_count else acc)
       0 rep.Profile.p_edges);
  (* The kernel's innermost loop dominates: hottest function is matmul
     and the hottest back-edge is its k-loop, taken n^3 times. *)
  check_string "hottest function" "matmul"
    (List.hd rep.Profile.p_functions).Profile.fr_name;
  match rep.Profile.p_backedges with
  | [] -> Alcotest.fail "no back-edges on a triple loop nest"
  | be :: _ ->
    check_int "k-loop back-edge taken n^3 times" (22 * 22 * 22)
      be.Profile.be_count;
    check_bool "loop body is non-empty" true (be.Profile.be_blocks <> [])

(* --- zero added work when disabled ----------------------------------------------- *)

(* A profiled and an unprofiled run of the same program must agree on
   every architectural stat — profiling adds exactly zero simulated
   work (and never touches [stats], which the differential fuzz
   harness separately relies on). *)
let test_stats_parity () =
  let src =
    "int g; int main() { int i; for (i = 0; i < 50; i = i + 1) { g = g + i; \
     } return g % 256; }"
  in
  let with_profile profile =
    let session = Session.create ~options ~profile src in
    Mrs.enable session.Session.mrs;
    let code, _ = Session.run ~fuel:20_000_000 session in
    (code, Machine.Cpu.stats session.Session.cpu)
  in
  let code_on, on = with_profile true in
  let code_off, off = with_profile false in
  check_int "exit" code_off code_on;
  check_bool "stats identical with and without profiler" true (on = off)

(* --- call-stack attribution ------------------------------------------------------- *)

let test_call_attribution () =
  let src =
    "int f(int x) { return x + 1; } int main() { int s; int i; s = 0; for (i \
     = 0; i < 10; i = i + 1) { s = f(s); } return s; }"
  in
  let session, code = run_profiled src in
  check_int "exit" 10 code;
  let rep = Session.profile_report session in
  let f = fn rep "f" and main = fn rep "main" in
  check_int "f called 10 times" 10 f.Profile.fr_calls;
  check_int "main called once" 1 main.Profile.fr_calls;
  check_bool "f does work" true (f.Profile.fr_excl_instrs > 0);
  check_bool "leaf: inclusive = exclusive" true
    (f.Profile.fr_incl_instrs = f.Profile.fr_excl_instrs);
  check_bool "main inclusive > exclusive" true
    (main.Profile.fr_incl_instrs > main.Profile.fr_excl_instrs);
  check_bool "main inclusive covers f" true
    (main.Profile.fr_incl_instrs
    >= main.Profile.fr_excl_instrs + f.Profile.fr_incl_instrs);
  (* The folded export names the path through main. *)
  check_bool "folded has _start;main;f" true
    (List.mem_assoc "_start;main;f" rep.Profile.p_folded)

(* Recursion: the inclusive interval of a recursive function is charged
   once per outermost activation, so it can never exceed the total. *)
let test_recursion_inclusive () =
  let src =
    "int fib(int n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - \
     2); } int main() { return fib(12); }"
  in
  let session, code = run_profiled src in
  check_int "exit" 144 code;
  let rep = Session.profile_report session in
  let fib = fn rep "fib" in
  check_bool "many activations" true (fib.Profile.fr_calls > 100);
  check_bool "inclusive >= exclusive" true
    (fib.Profile.fr_incl_instrs >= fib.Profile.fr_excl_instrs);
  check_bool "inclusive <= total" true
    (fib.Profile.fr_incl_instrs <= rep.Profile.p_total_instrs);
  (* Self-recursive paths fold into one tree path per depth, and their
     self counts still sum to fib's exclusive total. *)
  let fib_self =
    List.fold_left
      (fun acc (path, n) ->
        if String.length path >= 4 && String.sub path (String.length path - 4) 4 = ";fib"
        then acc + n
        else acc)
      0 rep.Profile.p_folded
  in
  check_int "folded fib self = exclusive" fib.Profile.fr_excl_instrs fib_self

(* --- determinism of the exports --------------------------------------------------- *)

let test_deterministic_reports () =
  let w = workload "030.matrix300" in
  let options =
    { options with fortran_idiom = Workloads.Workload.fortran_idiom w }
  in
  let once () =
    let session, _ = run_profiled ~options w.Workloads.Workload.source in
    let rep = Session.profile_report session in
    (Profile.to_json_string rep, Profile.folded_to_string rep)
  in
  let j1, f1 = once () in
  let j2, f2 = once () in
  check_string "JSON byte-identical across sessions" j1 j2;
  check_string "folded byte-identical across sessions" f1 f2

let test_report_idempotent () =
  let session, _ = run_profiled "int main() { return 7; }" in
  let r1 = Session.profile_report session in
  let r2 = Session.profile_report session in
  check_string "taking the report twice changes nothing"
    (Profile.to_json_string r1) (Profile.to_json_string r2)

let test_merge_folded () =
  Alcotest.(check (list (pair string int)))
    "multiset sum, sorted"
    [ ("a", 4); ("a;b", 2); ("c", 1) ]
    (Profile.merge_folded
       [ [ ("a", 1); ("a;b", 2) ]; [ ("c", 1); ("a", 3) ]; [] ]);
  Alcotest.(check (list (pair string int)))
    "commutative"
    (Profile.merge_folded [ [ ("x", 1) ]; [ ("y", 2) ] ])
    (Profile.merge_folded [ [ ("y", 2) ]; [ ("x", 1) ] ])

(* --- MRS check-density join -------------------------------------------------------- *)

let test_site_check_join () =
  let src =
    "int g; int main() { int i; for (i = 0; i < 25; i = i + 1) { g = g + 2; \
     } return g; }"
  in
  let session = Session.create ~options ~profile:true src in
  Session.install_oracle session;
  let dbg = Debugger.create session in
  let (_ : Debugger.watchpoint) = Debugger.watch dbg "g" in
  let code, _ = Session.run ~fuel:20_000_000 session in
  check_int "exit" 50 code;
  let rep = Session.profile_report session in
  let sites = List.fold_left (fun a b -> a + b.Profile.bb_check_sites) 0 rep.Profile.p_blocks in
  let execs = List.fold_left (fun a b -> a + b.Profile.bb_check_execs) 0 rep.Profile.p_blocks in
  check_bool "some block carries a check site" true (sites > 0);
  check_bool "check executions cover the 25 stores" true (execs >= 25);
  (* The loop back-edge's body carries those check executions — the
     superblock-candidate signal. *)
  match rep.Profile.p_backedges with
  | [] -> Alcotest.fail "loop has no back-edge"
  | be :: _ ->
    check_bool "hot loop body shows check density" true
      (be.Profile.be_check_execs >= 25)

(* --- error contract ----------------------------------------------------------------- *)

let test_profile_report_requires_profile () =
  let session = Session.create "int main() { return 0; }" in
  let code, _ = Session.run ~fuel:1_000_000 session in
  check_int "exit" 0 code;
  check_bool "profile_report without ~profile rejected" true
    (match Session.profile_report session with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_enable_uninstalled_rejected () =
  let linked = Minic.Compile.compile_and_link "int main() { return 0; }" in
  let cpu = Machine.Cpu.create linked.Minic.Compile.image in
  check_bool "set_enabled without install rejected" true
    (match Machine.Cpu.profile_set_enabled cpu true with
    | exception Invalid_argument _ -> true
    | _ -> false);
  (* Disabling when nothing is installed is a harmless no-op. *)
  Machine.Cpu.profile_set_enabled cpu false;
  check_bool "not enabled" false (Machine.Cpu.profile_enabled cpu)

(* --- Chrome-trace edge cases -------------------------------------------------------- *)

let span_events json =
  match json with
  | Export.List evs ->
    List.map
      (fun ev ->
        match ev with
        | Export.Obj fields ->
          let int k =
            match List.assoc_opt k fields with
            | Some (Export.Int n) -> n
            | _ -> Alcotest.failf "event missing int field %S" k
          in
          let str k =
            match List.assoc_opt k fields with
            | Some (Export.Str s) -> s
            | _ -> Alcotest.failf "event missing string field %S" k
          in
          (str "ph", int "ts", (match List.assoc_opt "dur" fields with
                                | Some (Export.Int d) -> d
                                | _ -> 0))
        | _ -> Alcotest.fail "trace event is not an object")
      evs
  | _ -> Alcotest.fail "chrome trace is not a JSON array"

let test_chrome_empty () =
  check_bool "no tracers -> empty event array" true
    (match Trace.to_chrome_json [] with Export.List [] -> true | _ -> false);
  (* A tracer that never recorded a span is the same. *)
  let t = Trace.create ~clock:(fun () -> 1.0) () in
  check_bool "empty tracer -> empty event array" true
    (match Trace.to_chrome_json [ t ] with
    | Export.List [] -> true
    | _ -> false)

let test_chrome_zero_duration () =
  let t = Trace.create ~clock:(fun () -> 42.0) () in
  Trace.begin_span t "blink";
  Trace.end_span t;
  match span_events (Trace.to_chrome_json [ t ]) with
  | [ (ph, ts, dur) ] ->
    check_string "complete event" "X" ph;
    check_int "ts rebased to 0" 0 ts;
    check_int "zero duration survives" 0 dur
  | evs -> Alcotest.failf "expected one event, got %d" (List.length evs)

(* Sub-microsecond nesting: floor-rounding equal-timestamp spans must
   keep children inside parents (monotone quantization). *)
let test_chrome_nesting_after_rounding () =
  let ticks = ref [ 10.0; 10.0000003; 10.0000006; 10.0000009 ] in
  let clock () =
    match !ticks with
    | [] -> 11.0
    | t :: rest ->
      ticks := rest;
      t
  in
  let t = Trace.create ~clock () in
  Trace.begin_span t "outer";
  Trace.begin_span t "inner";
  Trace.end_span t;
  Trace.end_span t;
  let evs = span_events (Trace.to_chrome_json [ t ]) in
  check_int "two events" 2 (List.length evs);
  List.iter
    (fun (_, ts, dur) ->
      check_bool "ts >= 0" true (ts >= 0);
      check_bool "dur >= 0" true (dur >= 0))
    evs;
  (* Pairwise: every interval pair is nested or disjoint. *)
  List.iteri
    (fun i (_, ts1, d1) ->
      List.iteri
        (fun j (_, ts2, d2) ->
          if i <> j then
            check_bool "well-nested after rounding" true
              (ts1 + d1 <= ts2 (* disjoint *)
              || ts2 + d2 <= ts1
              || (ts1 <= ts2 && ts2 + d2 <= ts1 + d1) (* 2 inside 1 *)
              || (ts2 <= ts1 && ts1 + d1 <= ts2 + d2)))
        evs)
    evs

let test_chrome_counters () =
  let t = Trace.create ~clock:(fun () -> 10.0) () in
  Trace.begin_span t "run";
  Trace.end_span t;
  (* A counter sample predating the first span still rebases to ts >= 0. *)
  let json =
    Trace.to_chrome_json ~counters:[ ("sim_instrs", 9.9999, 5) ] [ t ]
  in
  match json with
  | Export.List evs ->
    let phs =
      List.filter_map
        (function
          | Export.Obj fields -> (
            match (List.assoc_opt "ph" fields, List.assoc_opt "ts" fields) with
            | Some (Export.Str ph), Some (Export.Int ts) -> Some (ph, ts)
            | _ -> None)
          | _ -> None)
        evs
    in
    check_bool "has a counter event" true (List.mem_assoc "C" phs);
    List.iter (fun (_, ts) -> check_bool "ts >= 0" true (ts >= 0)) phs
  | _ -> Alcotest.fail "not an array"

(* --- dbp-telemetry/4 ----------------------------------------------------------------- *)

let test_telemetry_v4_counters () =
  check_string "schema bumped" "dbp-telemetry/6" Telemetry.schema_version;
  let reg = Telemetry.create () in
  Telemetry.set reg Telemetry.Profiled_instrs 123;
  Telemetry.set reg Telemetry.Prof_transfers 7;
  let rep = Telemetry.report reg in
  check_int "profiled_instrs exported" 123
    (List.assoc "profiled_instrs" rep.Telemetry.r_counters);
  check_int "prof_transfers exported" 7
    (List.assoc "prof_transfers" rep.Telemetry.r_counters)

let test_telemetry_v4_merge_commutes () =
  let mk a b =
    let reg = Telemetry.create () in
    Telemetry.set reg Telemetry.Profiled_instrs a;
    Telemetry.set reg Telemetry.Prof_transfers b;
    Telemetry.set reg Telemetry.Probe_dispatches (a + b);
    Telemetry.incr reg Telemetry.User_hits;
    Telemetry.report reg
  in
  let r1 = mk 10 3 and r2 = mk 5 7 in
  let m12 = Telemetry.merge [ r1; r2 ] and m21 = Telemetry.merge [ r2; r1 ] in
  check_string "merge is order-independent" (Export.to_json_string m12)
    (Export.to_json_string m21);
  check_int "profiled_instrs summed" 15
    (List.assoc "profiled_instrs" m12.Telemetry.r_counters);
  check_int "prof_transfers summed" 10
    (List.assoc "prof_transfers" m12.Telemetry.r_counters);
  check_int "probe_dispatches summed" 25
    (List.assoc "probe_dispatches" m12.Telemetry.r_counters)

let suites =
  [
    ( "profile.counters",
      [
        Alcotest.test_case "conservation on matrix300" `Slow
          test_conservation_matrix300;
        Alcotest.test_case "stats parity on/off" `Quick test_stats_parity;
        Alcotest.test_case "site-check density join" `Quick
          test_site_check_join;
      ] );
    ( "profile.stacks",
      [
        Alcotest.test_case "call attribution" `Quick test_call_attribution;
        Alcotest.test_case "recursion inclusive once" `Quick
          test_recursion_inclusive;
      ] );
    ( "profile.exports",
      [
        Alcotest.test_case "deterministic across sessions" `Slow
          test_deterministic_reports;
        Alcotest.test_case "report is idempotent" `Quick test_report_idempotent;
        Alcotest.test_case "merge_folded" `Quick test_merge_folded;
        Alcotest.test_case "profile_report requires ~profile" `Quick
          test_profile_report_requires_profile;
        Alcotest.test_case "enable without install rejected" `Quick
          test_enable_uninstalled_rejected;
      ] );
    ( "profile.chrome",
      [
        Alcotest.test_case "empty trace" `Quick test_chrome_empty;
        Alcotest.test_case "zero-duration span" `Quick test_chrome_zero_duration;
        Alcotest.test_case "nesting after floor-rounding" `Quick
          test_chrome_nesting_after_rounding;
        Alcotest.test_case "counter tracks" `Quick test_chrome_counters;
      ] );
    ( "profile.telemetry4",
      [
        Alcotest.test_case "v4 counters exported" `Quick
          test_telemetry_v4_counters;
        Alcotest.test_case "v4 merge commutes" `Quick
          test_telemetry_v4_merge_commutes;
      ] );
  ]
