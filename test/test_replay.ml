(* The checkpoint/replay subsystem (DESIGN.md §9).

   Three layers of evidence, mirroring the acceptance criteria:

   1. Units: COW page snapshots really share unwritten pages and
      restore exactly; the journal's exponential-thinning eviction
      keeps the endpoints and its byte accounting consistent.

   2. The determinism guard: replaying every checkpoint-to-checkpoint
      window of two real workloads (matrix300 and li) reproduces a
      byte-identical architectural digest AND an identical [Cpu.stats]
      record at the target — with and without a watch armed during the
      re-execution (Price's invisibility property), and the guard
      *does* fire when a saboteur hook perturbs the replay.

   3. Retroactive queries: [last_write]/[write_history] answers are
      checked against ground truth from a full-trace run — a second,
      identically-instrumented session whose store hook records every
      store to the target word as it happens. *)

open Dbp

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* --- units: COW memory snapshots --------------------------------------------- *)

let test_memory_cow_sharing () =
  let open Machine in
  let mem = Memory.create () in
  Memory.write_word mem 0x1000 11;
  Memory.write_word mem 0x80_0000 22;
  let v0 = Memory.snapshot_cow mem in
  check_int "v0 pages" 2 (Memory.view_pages v0);
  (* Writing one page after the snapshot copies only that page. *)
  let copies0 = Memory.cow_copies mem in
  Memory.write_word mem 0x1004 33;
  Memory.write_word mem 0x1008 44;
  check_int "one COW copy for two writes to one page" (copies0 + 1)
    (Memory.cow_copies mem);
  let v1 = Memory.snapshot_cow mem in
  check_int "delta = 1 page" 1 (Memory.view_diff v0 v1);
  check_int "shared = 1 page" (Memory.view_pages v1 - 1) (Memory.view_diff v0 v1);
  (* The old view still reads the old contents. *)
  check_int "v0 old word" 0 (Memory.view_read_word v0 0x1004);
  check_int "v1 new word" 33 (Memory.view_read_word v1 0x1004);
  (* Restore v0: memory reads as at the first snapshot. *)
  Memory.restore_cow mem v0;
  check_int "restored word" 0 (Memory.read_word mem 0x1004);
  check_int "restored untouched page" 22 (Memory.read_word mem 0x80_0000);
  (* Writes after a restore do not bleed into retained views. *)
  Memory.write_word mem 0x1000 99;
  check_int "v0 immutable" 11 (Memory.view_read_word v0 0x1000);
  check_int "v1 immutable" 11 (Memory.view_read_word v1 0x1000)

let test_cpu_checkpoint_exact () =
  let src =
    "int g; int a[64];\n\
     int main() { int i; for (i = 0; i < 200; i = i + 1) { g = g + i; a[i % \
     64] = g; } return g % 100; }"
  in
  let linked = Minic.Compile.compile_and_link src in
  let cpu = Machine.Cpu.create linked.Minic.Compile.image in
  Machine.Cpu.install_basic_services cpu;
  (* Run halfway, checkpoint, note the digest/stats. *)
  for _ = 1 to 500 do
    Machine.Cpu.step cpu
  done;
  let cp = Machine.Cpu.checkpoint cpu in
  let mid_digest = Machine.Cpu.state_digest cpu in
  let mid_stats = Machine.Cpu.stats cpu in
  (* Run to completion, then roll back: everything must be bit-exact,
     including the cache-model tags and hit/miss counters inside
     [Cpu.stats]. *)
  let code1 = Machine.Cpu.run cpu in
  let end_stats = Machine.Cpu.stats cpu in
  Machine.Cpu.rollback cpu cp;
  check_string "digest restored" mid_digest (Machine.Cpu.state_digest cpu);
  check_bool "stats restored exactly" true (Machine.Cpu.stats cpu = mid_stats);
  let code2 = Machine.Cpu.run cpu in
  check_int "same exit after rollback" code1 code2;
  check_bool "same end stats after rollback" true
    (Machine.Cpu.stats cpu = end_stats)

(* --- units: journal + eviction ------------------------------------------------ *)

let snap_cpu () =
  let linked = Minic.Compile.compile_and_link "int main() { return 7; }" in
  let cpu = Machine.Cpu.create linked.Minic.Compile.image in
  Machine.Cpu.install_basic_services cpu;
  cpu

let test_journal_basics () =
  let cpu = snap_cpu () in
  let j = Journal.create ~interval:100 () in
  check_int "interval" 100 (Journal.interval j);
  let take seq =
    let s = Snapshot.capture ~seq cpu in
    Journal.record j s;
    s
  in
  let s0 = take 0 in
  Machine.Cpu.step cpu;
  Machine.Cpu.step cpu;
  let s2 = take 1 in
  Machine.Cpu.step cpu;
  let s3 = take 2 in
  check_int "length" 3 (Journal.length j);
  check_bool "snapshots oldest-first" true
    (List.map Snapshot.insn (Journal.snapshots j)
    = [ Snapshot.insn s0; Snapshot.insn s2; Snapshot.insn s3 ]);
  check_bool "nearest 1 = s0" true
    (Journal.nearest j ~insn:1 = Some s0);
  check_bool "nearest 2 = s2" true (Journal.nearest j ~insn:2 = Some s2);
  check_bool "find exact only" true
    (Journal.find j ~insn:2 = Some s2 && Journal.find j ~insn:1 = None);
  check_bool "first snapshot full, rest deltas" true
    (Journal.captured_delta_pages j >= Snapshot.pages s0);
  Alcotest.check_raises "interval must be positive"
    (Invalid_argument "Journal.create: interval must be positive") (fun () ->
      ignore (Journal.create ~interval:0 ()))

let test_journal_eviction () =
  (* Checkpoint a real recording under a byte budget tight enough to
     force eviction; the endpoints must survive, the retained byte
     accounting must stay consistent with a recount, and the evicted
     snapshots' pages must be re-attributed to their successors. *)
  let src =
    "int a[512]; int main() { int i; int k; for (k = 0; k < 40; k = k + 1) { \
     for (i = 0; i < 512; i = i + 1) { a[i] = a[i] + k + i; } } return 9; }"
  in
  let linked = Minic.Compile.compile_and_link src in
  let cpu = Machine.Cpu.create linked.Minic.Compile.image in
  Machine.Cpu.install_basic_services cpu;
  let r = Replay.create ~checkpoint_every:2_000 cpu in
  let code = Replay.record r in
  check_int "exit" 9 code;
  let unbounded = Journal.retained_bytes (Replay.journal r) in
  (* Same program again under a quarter of the unbounded footprint. *)
  let cpu2 = Machine.Cpu.create linked.Minic.Compile.image in
  Machine.Cpu.install_basic_services cpu2;
  let budget = unbounded / 4 in
  let r2 = Replay.create ~budget_bytes:budget ~checkpoint_every:2_000 cpu2 in
  let j2 = Replay.journal r2 in
  let code2 = Replay.record r2 in
  check_int "exit under budget" 9 code2;
  check_bool "evictions happened" true (Journal.evictions j2 > 0);
  check_bool "budget respected" true (Journal.retained_bytes j2 <= budget);
  (* Endpoints retained. *)
  let snaps = Journal.snapshots j2 in
  check_int "first checkpoint retained" 0 (Snapshot.insn (List.hd snaps));
  check_int "halt checkpoint retained" (Replay.end_insn r2)
    (Snapshot.insn (List.nth snaps (List.length snaps - 1)));
  (* Byte accounting equals a from-scratch recount over the survivors. *)
  let recount, _ =
    List.fold_left
      (fun (acc, prev) s -> (acc + Snapshot.bytes ~prev s, Some s))
      (0, None) snaps
  in
  check_int "retained_bytes consistent after eviction" recount
    (Journal.retained_bytes j2);
  (* The thinned journal still answers queries correctly. *)
  let t = Replay.travel r2 ~insn:(Replay.end_insn r2 / 3) in
  check_bool "travel through thinned journal" true (t >= 0);
  check_int "landed exactly" (Replay.end_insn r2 / 3)
    (Machine.Cpu.instr_count cpu2)

(* --- determinism guard over real workloads ------------------------------------ *)

let workload name =
  match Workloads.Spec.find name with
  | Some w -> w
  | None -> Alcotest.failf "unknown workload %s" name

let record_session ?checkpoint_budget ~interval (w : Workloads.Workload.t) =
  let options =
    { Instrument.default_options with
      strategy = Strategy.Bitmap_inline_registers;
      fortran_idiom = Workloads.Workload.fortran_idiom w }
  in
  let session =
    Session.create ~options ~checkpoint_every:interval ?checkpoint_budget
      w.Workloads.Workload.source
  in
  Mrs.enable session.Session.mrs;
  let code, _ = Session.run session in
  (match w.Workloads.Workload.expected_exit with
  | Some e -> check_int (w.name ^ " exit") e code
  | None -> ());
  let r = Option.get (Session.replay session) in
  (session, r)

(* Replay every checkpoint-to-checkpoint window under the digest guard
   and compare the architectural stats at each target with the stats
   the recorder saw — once bare, and once with an (invisible) watch
   armed over the whole data space.  [Cpu.stats] equality is strictly
   stronger than the digest: it includes the cache-model tags'
   hit/miss history. *)
let check_all_windows (session : Session.t) r ~watch =
  let cpu = session.Session.cpu in
  let snaps = Array.of_list (Journal.snapshots (Replay.journal r)) in
  Alcotest.(check bool) "at least 5 checkpoints" true (Array.length snaps >= 5);
  (* Recorded truth at each checkpoint: restoring is exact (verified by
     [test_cpu_checkpoint_exact]), so collect stats via restore. *)
  let recorded_stats =
    Array.map
      (fun s ->
        Snapshot.restore cpu s;
        Machine.Cpu.stats cpu)
      snaps
  in
  for i = 1 to Array.length snaps - 1 do
    let target = Snapshot.insn snaps.(i) in
    if watch then Replay.arm r ~lo:0x40_0000 ~hi:0x50_0000;
    let replayed = Replay.replay_from r snaps.(i - 1) ~insn:target in
    if watch then Replay.disarm r;
    check_int
      (Printf.sprintf "window %d replays its full gap" i)
      (target - Snapshot.insn snaps.(i - 1))
      replayed;
    (* The guard inside [replay_from] has already compared digests;
       stats equality is the stronger architectural check. *)
    check_bool
      (Printf.sprintf "stats identical at checkpoint %d (watch=%b)" i watch)
      true
      (Machine.Cpu.stats cpu = recorded_stats.(i))
  done

let test_determinism_matrix300 () =
  let session, r = record_session ~interval:25_000 (workload "030.matrix300") in
  check_all_windows session r ~watch:false;
  check_all_windows session r ~watch:true

let test_determinism_li () =
  let session, r = record_session ~interval:50_000 (workload "022.li") in
  check_all_windows session r ~watch:false;
  check_all_windows session r ~watch:true

let test_guard_fires_on_divergence () =
  (* A saboteur store hook perturbs simulated memory during replay
     only: the digest at the target checkpoint can no longer match. *)
  let session, r = record_session ~interval:10_000 (workload "030.matrix300") in
  let cpu = session.Session.cpu in
  let sabotage = ref false in
  Machine.Cpu.set_store_hook cpu (fun cpu ~addr:_ ~width:_ ->
      if !sabotage then
        Machine.Memory.write_word (Machine.Cpu.mem cpu) 0xF0_0000 0xDEAD);
  let snaps = Array.of_list (Journal.snapshots (Replay.journal r)) in
  sabotage := true;
  (match Replay.replay_from r snaps.(0) ~insn:(Snapshot.insn snaps.(1)) with
  | _ -> Alcotest.fail "guard did not fire on a perturbed replay"
  | exception Replay.Determinism_violation { insn; expected; actual } ->
    check_int "violation at the window's checkpoint" (Snapshot.insn snaps.(1))
      insn;
    check_bool "digests differ" true (expected <> actual));
  sabotage := false;
  (* ...and with the saboteur off the same window replays clean. *)
  ignore (Replay.replay_from r snaps.(0) ~insn:(Snapshot.insn snaps.(1)))

(* --- retroactive queries vs full-trace ground truth --------------------------- *)

type gt_hit = { g_insn : int; g_pc : int; g_old : int; g_new : int }

(* Ground truth: run the identical instrumented program in a second
   session whose store hook records every store overlapping the target
   word as it happens — the full-trace answer replay must reproduce. *)
let ground_truth_writes (w : Workloads.Workload.t) ~var =
  let options =
    { Instrument.default_options with
      strategy = Strategy.Bitmap_inline_registers;
      fortran_idiom = Workloads.Workload.fortran_idiom w }
  in
  let session = Session.create ~options w.Workloads.Workload.source in
  Mrs.enable session.Session.mrs;
  let addr =
    match Session.resolve_addr session var with
    | Some a -> a
    | None -> Alcotest.failf "no global %s in %s" var w.name
  in
  let word = addr land lnot 3 in
  let cpu = session.Session.cpu in
  let shadow = ref (Machine.Memory.read_word (Machine.Cpu.mem cpu) word) in
  let hits = ref [] in
  Machine.Cpu.set_store_hook cpu (fun cpu ~addr:a ~width ->
      let last = a + Sparc.Insn.width_bytes width in
      if word + 4 > a land lnot 3 && word < last then begin
        let nv = Machine.Memory.read_word (Machine.Cpu.mem cpu) word in
        hits :=
          {
            g_insn = Machine.Cpu.instr_count cpu;
            g_pc = Machine.Cpu.pc cpu;
            g_old = !shadow;
            g_new = nv;
          }
          :: !hits;
        shadow := nv
      end);
  ignore (Session.run session);
  (addr, List.rev !hits)

let check_queries_against_ground_truth ~interval (wname, var) =
  let w = workload wname in
  let truth_addr, truth = ground_truth_writes w ~var in
  check_bool (var ^ " is written at least once") true (truth <> []);
  let session, r = record_session ~interval w in
  let addr =
    match Session.resolve_addr session var with
    | Some a -> a
    | None -> Alcotest.failf "no global %s" var
  in
  check_int "same address in both sessions" truth_addr addr;
  (* last_write: the exact (insn, pc, old, new) of the final store. *)
  (match Session.last_write session ~addr with
  | None -> Alcotest.failf "last_write found nothing for %s" var
  | Some { Session.wr_hit = h; wr_write_type } ->
    let final = List.nth truth (List.length truth - 1) in
    check_int "final write insn" final.g_insn h.Replay.h_insn;
    check_int "final write pc" final.g_pc h.Replay.h_pc;
    check_int "final write old value" final.g_old h.Replay.h_old;
    check_int "final write new value" final.g_new h.Replay.h_new;
    check_bool "write site classified" true (wr_write_type <> None));
  (* write_history: every store to the word, in execution order. *)
  let word = addr land lnot 3 in
  let history = Session.write_history session ~lo:word ~hi:(word + 4) in
  check_int (var ^ " history length") (List.length truth) (List.length history);
  List.iter2
    (fun g { Session.wr_hit = h; _ } ->
      check_int "history insn" g.g_insn h.Replay.h_insn;
      check_int "history pc" g.g_pc h.Replay.h_pc;
      check_int "history old" g.g_old h.Replay.h_old;
      check_int "history new" g.g_new h.Replay.h_new)
    truth history;
  (* Queries end back at the recorded end state. *)
  check_int "machine at recorded end" (Replay.end_insn r)
    (Machine.Cpu.instr_count session.Session.cpu)

let test_last_write_matrix300 () =
  check_queries_against_ground_truth ~interval:25_000 ("030.matrix300", "c")

let test_last_write_li () =
  check_queries_against_ground_truth ~interval:50_000 ("022.li", "mark_count")

let test_queries_survive_eviction () =
  (* With a byte budget forcing eviction, windows get wider but the
     answers must not change. *)
  let w = workload "030.matrix300" in
  let _, truth = ground_truth_writes w ~var:"c" in
  let session, r =
    record_session ~interval:5_000 ~checkpoint_budget:200_000 w
  in
  check_bool "eviction happened" true
    (Journal.evictions (Replay.journal r) > 0);
  let addr = Option.get (Session.resolve_addr session "c") in
  match Session.last_write session ~addr with
  | None -> Alcotest.fail "last_write found nothing after eviction"
  | Some { Session.wr_hit = h; _ } ->
    let final = List.nth truth (List.length truth - 1) in
    check_int "insn unchanged by eviction" final.g_insn h.Replay.h_insn;
    check_int "pc unchanged by eviction" final.g_pc h.Replay.h_pc;
    check_int "value unchanged by eviction" final.g_new h.Replay.h_new

(* --- session plumbing --------------------------------------------------------- *)

let test_session_without_journal () =
  let session = Session.create "int main() { return 3; }" in
  let _ = Session.run session in
  check_bool "no replay engine" true (Session.replay session = None);
  Alcotest.check_raises "last_write refused"
    (Invalid_argument
       "Session.last_write: session was created without ?checkpoint_every — \
        no journal") (fun () ->
      ignore (Session.last_write session ~addr:0x40_0000))

let test_resolve_addr_forms () =
  let session = Session.create "int g; int main() { g = 5; return g; }" in
  let g = Option.get (Session.resolve_addr session "g") in
  check_bool "global resolves to data space" true (g >= 0x40_0000);
  check_bool "hex form" true
    (Session.resolve_addr session (Printf.sprintf "0x%x" g) = Some g);
  check_bool "decimal form" true
    (Session.resolve_addr session (string_of_int g) = Some g);
  check_bool "unknown name" true (Session.resolve_addr session "zzz" = None)

let test_replay_observability () =
  (* Checkpoint counters land in the session registry; replay lifecycle
     events land in the audit journal and survive the JSON round trip
     (dbp-audit/2). *)
  let telemetry = Telemetry.create () in
  let audit = Audit.create () in
  let options =
    { Instrument.default_options with
      strategy = Strategy.Bitmap_inline_registers }
  in
  let session =
    Session.create ~options ~telemetry ~audit ~checkpoint_every:200
      "int g; int main() { int i; for (i = 0; i < 500; i = i + 1) { g = g + \
       i; } return g % 256; }"
  in
  Mrs.enable session.Session.mrs;
  let _ = Session.run session in
  let r = Option.get (Session.replay session) in
  let taken = Telemetry.get telemetry Telemetry.Checkpoints_taken in
  check_int "checkpoints counted = journal length"
    (Journal.length (Replay.journal r))
    taken;
  check_bool "pages accounted" true
    (Telemetry.get telemetry Telemetry.Checkpoint_bytes > 0);
  let g = Option.get (Session.resolve_addr session "g") in
  (match Session.last_write session ~addr:g with
  | Some { Session.wr_hit = h; _ } -> check_bool "hit found" true (h.Replay.h_new > 0)
  | None -> Alcotest.fail "no hit");
  check_bool "restores counted" true (Telemetry.get telemetry Telemetry.Restores > 0);
  check_int "replayed instrs counter tracks the engine"
    (Replay.replayed_insns r)
    (Telemetry.get telemetry Telemetry.Replayed_instrs);
  (* Audit: checkpoint_taken events recorded and round-trippable. *)
  let rep = Audit.report audit in
  let count k =
    List.length
      (List.filter (fun (e : Audit.replay_event) -> e.rp_kind = k) rep.Audit.a_replay)
  in
  check_int "one checkpoint_taken event per checkpoint" taken
    (count Audit.Checkpoint_taken);
  check_bool "restore events present" true (count Audit.State_restored > 0);
  check_bool "replay_finished events present" true
    (count Audit.Replay_finished > 0);
  let json = Audit.to_json_string rep in
  let rep2 = Audit.of_json_string json in
  check_int "replay events survive the JSON round trip"
    (List.length rep.Audit.a_replay)
    (List.length rep2.Audit.a_replay)

let suites =
  [
    ( "replay.snapshot",
      [
        Alcotest.test_case "COW sharing + exact restore" `Quick
          test_memory_cow_sharing;
        Alcotest.test_case "cpu checkpoint is bit-exact" `Quick
          test_cpu_checkpoint_exact;
      ] );
    ( "replay.journal",
      [
        Alcotest.test_case "record/nearest/find" `Quick test_journal_basics;
        Alcotest.test_case "budgeted eviction" `Quick test_journal_eviction;
      ] );
    ( "replay.determinism",
      [
        Alcotest.test_case "matrix300: every window, +/- watch" `Slow
          test_determinism_matrix300;
        Alcotest.test_case "li: every window, +/- watch" `Slow
          test_determinism_li;
        Alcotest.test_case "guard fires on divergence" `Quick
          test_guard_fires_on_divergence;
      ] );
    ( "replay.queries",
      [
        Alcotest.test_case "matrix300 c vs full trace" `Quick
          test_last_write_matrix300;
        Alcotest.test_case "li mark_count vs full trace" `Quick
          test_last_write_li;
        Alcotest.test_case "answers survive eviction" `Quick
          test_queries_survive_eviction;
      ] );
    ( "replay.session",
      [
        Alcotest.test_case "refuses without a journal" `Quick
          test_session_without_journal;
        Alcotest.test_case "resolve_addr forms" `Quick test_resolve_addr_forms;
        Alcotest.test_case "telemetry + audit plumbing" `Quick
          test_replay_observability;
      ] );
  ]
