open Dbp

(* Tests for the telemetry subsystem: the ring buffer, the report
   export round-trip, counter parity between the registry and the
   session/MRS recounts, and the repo-hygiene guard. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let counter rep name =
  match List.assoc_opt name rep.Telemetry.r_counters with
  | Some v -> v
  | None -> Alcotest.failf "report has no counter %S" name

(* --- ring buffer ------------------------------------------------------------ *)

let test_ring_basic () =
  let r = Ring.create ~capacity:4 in
  check_int "empty length" 0 (Ring.length r);
  List.iter (Ring.push r) [ 1; 2; 3 ];
  check_int "length" 3 (Ring.length r);
  check_int "pushed" 3 (Ring.pushed r);
  check_int "dropped" 0 (Ring.dropped r);
  Alcotest.(check (list int)) "oldest first" [ 1; 2; 3 ] (Ring.to_list r)

let test_ring_wraparound () =
  let r = Ring.create ~capacity:3 in
  for i = 1 to 10 do
    Ring.push r i
  done;
  check_int "length capped" 3 (Ring.length r);
  check_int "pushed counts everything" 10 (Ring.pushed r);
  check_int "dropped = pushed - length" 7 (Ring.dropped r);
  Alcotest.(check (list int)) "last three, oldest first" [ 8; 9; 10 ]
    (Ring.to_list r);
  Ring.clear r;
  check_int "clear resets" 0 (Ring.pushed r);
  Alcotest.(check (list int)) "cleared" [] (Ring.to_list r)

let test_ring_zero_capacity () =
  let r = Ring.create ~capacity:0 in
  for i = 1 to 5 do
    Ring.push r i
  done;
  check_int "holds nothing" 0 (Ring.length r);
  check_int "still counts pushes" 5 (Ring.pushed r);
  check_int "all dropped" 5 (Ring.dropped r);
  check_bool "negative capacity rejected" true
    (match Ring.create ~capacity:(-1) with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- JSON round-trip --------------------------------------------------------- *)

(* A registry exercised enough that every report section is non-trivial:
   tags, scalar counters, typed counters, sites, read sites, events and
   a non-zero dropped count. *)
let busy_report () =
  let t = Telemetry.create ~ring_capacity:2 () in
  Telemetry.set_tag t "workload" "unit \"test\"\n";
  Telemetry.set_tag t "strategy" "bitmap";
  Telemetry.incr t Telemetry.User_hits;
  Telemetry.add t Telemetry.Regions_created 3;
  Telemetry.incr_typed t Telemetry.Cache_misses_by_type 1;
  Telemetry.alloc_sites t
    [| (0, Telemetry.site_kind_checked); (1, Telemetry.site_kind_sym) |];
  Telemetry.alloc_read_sites t [| 2 |];
  Telemetry.bump_site t 0;
  Telemetry.bump_site t 0;
  Telemetry.bump_site_hit t 0;
  Telemetry.bump_read_site t 0;
  for i = 0 to 2 do
    Telemetry.record_event t
      {
        Telemetry.ev_pc = 0x10000 + i;
        ev_addr = 0x400000 + (4 * i);
        ev_region_lo = 0x400000;
        ev_region_hi = 0x400010;
        ev_region_kind = "user";
        ev_access = (if i = 1 then Telemetry.Read else Telemetry.Write);
        ev_write_type = "BSS";
        ev_insn = 100 * i;
      }
  done;
  Telemetry.report t

let test_json_round_trip () =
  let rep = busy_report () in
  let s = Export.to_json_string rep in
  let rep' = Export.of_json_string s in
  check_bool "report survives JSON round-trip" true (rep = rep');
  (* Pretty-printing parses back to the same value too. *)
  let pretty = Export.to_json_string ~indent:2 rep in
  check_bool "pretty round-trip" true (Export.of_json_string pretty = rep);
  check_bool "schema recorded" true
    (rep.Telemetry.r_schema = Telemetry.schema_version)

let test_json_rejects_bad_schema () =
  let rep = busy_report () in
  let broken =
    match Export.to_json rep with
    | Export.Obj fields ->
      Export.Obj
        (List.map
           (fun (k, v) ->
             if k = "schema" then (k, Export.Str "dbp-telemetry/999")
             else (k, v))
           fields)
    | _ -> Alcotest.fail "report JSON is not an object"
  in
  check_bool "wrong schema rejected" true
    (match Export.of_json broken with
    | exception Export.Parse_error _ -> true
    | _ -> false)

let test_merge_deterministic () =
  let mk hits regions =
    let t = Telemetry.create () in
    Telemetry.set_tag t "strategy" "bitmap";
    Telemetry.add t Telemetry.User_hits hits;
    Telemetry.add t Telemetry.Regions_created regions;
    Telemetry.report t
  in
  let a = mk 2 1 and b = mk 5 0 and c = mk 1 4 in
  let m1 = Telemetry.merge [ a; b; c ] and m2 = Telemetry.merge [ c; a; b ] in
  check_bool "merge is order-independent" true (m1 = m2);
  check_int "counters sum" 8 (counter m1 "user_hits");
  check_int "regions sum" 5 (counter m1 "regions_created");
  check_bool "common tags survive" true
    (List.assoc_opt "strategy" m1.Telemetry.r_tags = Some "bitmap")

(* --- counter parity: registry vs session/MRS recounts ------------------------ *)

let sum_site_hits rep =
  List.fold_left
    (fun acc (s : Telemetry.site_report) -> acc + s.Telemetry.sr_hits)
    0 rep.Telemetry.r_sites
  + List.fold_left
      (fun acc (s : Telemetry.site_report) -> acc + s.Telemetry.sr_hits)
      0 rep.Telemetry.r_read_sites

let parity_checks (session : Session.t) =
  let rep = Session.report session in
  let c = Mrs.counters session.Session.mrs in
  check_int "check_execs = session recount"
    (Session.total_site_executions session)
    (counter rep "check_execs");
  check_int "user_hits mirror" c.Mrs.user_hits (counter rep "user_hits");
  check_int "read_hits mirror" c.Mrs.read_hits (counter rep "read_hits");
  check_int "internal_hits mirror" c.Mrs.internal_hits
    (counter rep "internal_hits");
  check_int "loop_entries mirror" c.Mrs.loop_entries
    (counter rep "loop_entries");
  check_int "patches mirror" c.Mrs.patches_inserted
    (counter rep "patches_inserted");
  (* Conservation: every hit lands on exactly one site, or is counted
     unattributed — never both, never twice. *)
  check_int "hit attribution conserves totals"
    (c.Mrs.user_hits + c.Mrs.internal_hits)
    (sum_site_hits rep + counter rep "unattributed_hits");
  rep

(* matrix300, with its output matrix watched: per-site check and hit
   counts in the telemetry report must match the MRS counter totals
   exactly (the acceptance check of this PR). *)
let test_matrix300_parity () =
  let w =
    match Workloads.Spec.find "030.matrix300" with
    | Some w -> w
    | None -> Alcotest.fail "030.matrix300 missing"
  in
  let session = Session.create w.Workloads.Workload.source in
  let dbg = Debugger.create session in
  ignore (Debugger.watch dbg "c");
  let code, _ = Session.run ~fuel:50_000_000 session in
  (match w.Workloads.Workload.expected_exit with
  | Some e -> check_int "exit code" e code
  | None -> ());
  let rep = parity_checks session in
  let c = Mrs.counters session.Session.mrs in
  check_bool "watch produced hits" true (c.Mrs.user_hits > 0);
  check_int "no unattributed hits" 0 (counter rep "unattributed_hits")

(* Optimized + read-monitored run: eliminated sites, patches, loop
   machinery and read hits all flowing through the same attribution. *)
let test_optimized_readwrite_parity () =
  let src =
    {|
int g[32];
int total;
int main() {
  int i;
  int s;
  s = 0;
  for (i = 0; i < 32; i = i + 1) { g[i] = i * 3; }
  for (i = 0; i < 32; i = i + 1) { s = s + g[i]; }
  total = s;
  return total & 255;
}
|}
  in
  let options =
    { Instrument.default_options with opt = Instrument.O_full;
      monitor_reads = true }
  in
  let session = Session.create ~options src in
  let dbg = Debugger.create session in
  ignore (Debugger.watch dbg "g");
  let _code, _ = Session.run ~fuel:5_000_000 session in
  let rep = parity_checks session in
  let c = Mrs.counters session.Session.mrs in
  check_bool "saw read hits" true (c.Mrs.read_hits > 0);
  (* read_hits is a subset of user_hits, counted exactly once: write
     hits (attributed to write sites) and read hits partition the user
     total. *)
  check_bool "read subset" true (c.Mrs.read_hits <= c.Mrs.user_hits);
  let write_site_hits =
    List.fold_left
      (fun acc (s : Telemetry.site_report) -> acc + s.Telemetry.sr_hits)
      0 rep.Telemetry.r_sites
  in
  let read_site_hits =
    List.fold_left
      (fun acc (s : Telemetry.site_report) -> acc + s.Telemetry.sr_hits)
      0 rep.Telemetry.r_read_sites
  in
  check_int "read hits attributed to read sites" c.Mrs.read_hits
    read_site_hits;
  check_int "write + read partition user hits (none double-counted)"
    (c.Mrs.user_hits + c.Mrs.internal_hits)
    (write_site_hits + read_site_hits + counter rep "unattributed_hits")

let test_reset_counters () =
  let src = {|
int g;
int main() {
  int i;
  for (i = 0; i < 5; i = i + 1) { g = i; }
  return g;
}
|} in
  let session = Session.create src in
  let dbg = Debugger.create session in
  ignore (Debugger.watch dbg "g");
  ignore (Session.run ~fuel:1_000_000 session);
  let c = Mrs.counters session.Session.mrs in
  check_bool "phase one produced hits" true (c.Mrs.user_hits > 0);
  Mrs.reset_counters c;
  check_int "user_hits zeroed" 0 c.Mrs.user_hits;
  check_int "read_hits zeroed" 0 c.Mrs.read_hits;
  check_int "internal zeroed" 0 c.Mrs.internal_hits;
  check_int "loop_entries zeroed" 0 c.Mrs.loop_entries;
  check_int "loop_triggers zeroed" 0 c.Mrs.loop_triggers;
  check_int "patches zeroed" 0 c.Mrs.patches_inserted;
  check_int "violations zeroed" 0 c.Mrs.violations

(* --- fuzz: registry on/off parity -------------------------------------------- *)

(* The registry must be observation-only: running the same program with
   telemetry enabled and disabled yields bit-identical simulations
   (exit code, stats, output), the enabled counters agree with the
   session/MRS recounts, and the disabled registry records nothing on
   the bump paths. *)
let prop_registry_parity =
  QCheck.Test.make
    ~name:"random programs: telemetry on/off parity, counters match recounts"
    ~count:10 Test_fuzz.arb_program (fun src ->
      let run enabled =
        let telemetry = Telemetry.create ~enabled ~ring_capacity:8 () in
        let options =
          { Instrument.default_options with opt = Instrument.O_full;
            monitor_reads = true }
        in
        let session = Session.create ~options ~telemetry src in
        let dbg = Debugger.create session in
        ignore (Debugger.watch dbg "g0");
        ignore (Debugger.watch dbg "ga");
        let code, out = Session.run ~fuel:20_000_000 session in
        (code, out, Session.stats session, session)
      in
      let code_on, out_on, stats_on, s_on = run true in
      let code_off, out_off, stats_off, s_off = run false in
      let rep_on = Session.report s_on and rep_off = Session.report s_off in
      let c_on = Mrs.counters s_on.Session.mrs in
      code_on = code_off && out_on = out_off && stats_on = stats_off
      && counter rep_on "check_execs" = Session.total_site_executions s_on
      && counter rep_on "user_hits" = c_on.Mrs.user_hits
      && counter rep_on "read_hits" = c_on.Mrs.read_hits
      && sum_site_hits rep_on + counter rep_on "unattributed_hits"
         = c_on.Mrs.user_hits + c_on.Mrs.internal_hits
      (* the MRS itself behaves identically with the registry off *)
      && (Mrs.counters s_off.Session.mrs).Mrs.user_hits = c_on.Mrs.user_hits
      (* ... but its bump-path counters record nothing *)
      && counter rep_off "check_execs" = 0
      && counter rep_off "user_hits" = 0
      && rep_off.Telemetry.r_events = [])

(* A session's check sites carry probes and so execute through the
   generic interpreter; everything else runs the pre-decoded fast path.
   Pinning a no-op probe on *every* text pc forces the whole run down
   the generic path — and the telemetry counts (check/hit/site arrays)
   must come out identical, the telemetry face of the interpreter's
   differential property.  Dispatch counters are excluded: the extra
   probes dispatch by design. *)
let comparable rep =
  let drop =
    [ "probe_dispatches"; "store_hook_dispatches"; "load_hook_dispatches" ]
  in
  ( List.filter (fun (n, _) -> not (List.mem n drop)) rep.Telemetry.r_counters,
    rep.Telemetry.r_typed,
    rep.Telemetry.r_sites,
    rep.Telemetry.r_read_sites )

let prop_fast_generic_count_parity =
  QCheck.Test.make
    ~name:"random programs: fast vs generic paths report identical counts"
    ~count:10 Test_fuzz.arb_program (fun src ->
      let run all_pcs_probed =
        let options =
          { Instrument.default_options with opt = Instrument.O_symbol;
            monitor_reads = true }
        in
        let session = Session.create ~options src in
        if all_pcs_probed then begin
          let image = session.Session.image in
          for i = 0 to Array.length image.Sparc.Assembler.text - 1 do
            Machine.Cpu.add_probe session.Session.cpu
              (image.Sparc.Assembler.text_base + (4 * i))
              (fun _ -> ())
          done
        end;
        let dbg = Debugger.create session in
        ignore (Debugger.watch dbg "g0");
        ignore (Debugger.watch dbg "ga");
        let code, out = Session.run ~fuel:20_000_000 session in
        (code, out, Session.stats session, Session.report session)
      in
      let code_f, out_f, stats_f, rep_f = run false in
      let code_g, out_g, stats_g, rep_g = run true in
      code_f = code_g && out_f = out_g && stats_f = stats_g
      && comparable rep_f = comparable rep_g)

(* --- repo hygiene: no build artifacts under version control ------------------- *)

(* [git ls-files] from the repository root must not list anything under
   _build/ (or .merlin-style build droppings).  Skipped when git is not
   available — e.g. a release tarball. *)
let test_no_build_artifacts_tracked () =
  let tmp = Filename.temp_file "dbp_lsfiles" ".txt" in
  let cmd =
    Printf.sprintf "git ls-files --full-name -- ':/' > %s 2>/dev/null"
      (Filename.quote tmp)
  in
  let status = Sys.command cmd in
  if status <> 0 then ()  (* not a git checkout: nothing to check *)
  else begin
    let ic = open_in tmp in
    let offenders = ref [] in
    (try
       while true do
         let line = input_line ic in
         let is_build =
           String.length line >= 7 && String.sub line 0 7 = "_build/"
         in
         let has_build =
           let needle = "/_build/" in
           let n = String.length needle and l = String.length line in
           let rec scan i =
             i + n <= l && (String.sub line i n = needle || scan (i + 1))
           in
           scan 0
         in
         if is_build || has_build then offenders := line :: !offenders
       done
     with End_of_file -> ());
    close_in ic;
    Sys.remove tmp;
    match !offenders with
    | [] -> ()
    | l ->
      Alcotest.failf "build artifacts under version control: %s"
        (String.concat ", " l)
  end

let suites =
  [
    ( "telemetry.ring",
      [
        Alcotest.test_case "basic" `Quick test_ring_basic;
        Alcotest.test_case "wraparound" `Quick test_ring_wraparound;
        Alcotest.test_case "zero capacity" `Quick test_ring_zero_capacity;
      ] );
    ( "telemetry.export",
      [
        Alcotest.test_case "JSON round-trip" `Quick test_json_round_trip;
        Alcotest.test_case "bad schema rejected" `Quick
          test_json_rejects_bad_schema;
        Alcotest.test_case "merge deterministic" `Quick
          test_merge_deterministic;
      ] );
    ( "telemetry.parity",
      [
        Alcotest.test_case "matrix300 counts = MRS totals" `Quick
          test_matrix300_parity;
        Alcotest.test_case "optimized read/write attribution" `Quick
          test_optimized_readwrite_parity;
        Alcotest.test_case "Mrs.reset_counters" `Quick test_reset_counters;
        QCheck_alcotest.to_alcotest prop_registry_parity;
        QCheck_alcotest.to_alcotest prop_fast_generic_count_parity;
      ] );
    ( "repo.hygiene",
      [
        Alcotest.test_case "no _build files tracked" `Quick
          test_no_build_artifacts_tracked;
      ] );
  ]
