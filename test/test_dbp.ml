open Dbp

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- region sets ----------------------------------------------------------- *)

let test_region_basics () =
  let r = Region.v ~addr:0x1000 ~size_bytes:8 () in
  check_int "size" 8 (Region.size_bytes r);
  check_bool "contains lo" true (Region.contains r 0x1000);
  check_bool "contains last byte" true (Region.contains r 0x1007);
  check_bool "not past end" false (Region.contains r 0x1008);
  Alcotest.check_raises "misaligned" (Region.Invalid "region address not word aligned")
    (fun () -> ignore (Region.v ~addr:0x1002 ~size_bytes:4 ()));
  Alcotest.check_raises "bad size" (Region.Invalid "region size not a positive word multiple")
    (fun () -> ignore (Region.v ~addr:0x1000 ~size_bytes:6 ()))

let test_region_set () =
  let s = Region.empty in
  let r1 = Region.v ~addr:0x1000 ~size_bytes:4 () in
  let r2 = Region.v ~addr:0x2000 ~size_bytes:16 () in
  let s = Region.add (Region.add s r1) r2 in
  check_int "cardinal" 2 (Region.cardinal s);
  (match Region.find_containing s 0x2008 with
  | Some r -> check_bool "found r2" true (Region.equal r r2)
  | None -> Alcotest.fail "lookup failed");
  check_bool "no hit" true (Region.find_containing s 0x1800 = None);
  check_bool "range intersect" true (Region.intersects_range s ~lo:0x1F00 ~hi:0x2003);
  check_bool "range miss" false (Region.intersects_range s ~lo:0x1004 ~hi:0x1FFF);
  (try
     ignore (Region.add s (Region.v ~addr:0x2004 ~size_bytes:4 ()));
     Alcotest.fail "overlap accepted"
   with Region.Invalid _ -> ());
  let s = Region.remove s r1 in
  check_bool "removed" true (Region.find_containing s 0x1000 = None)

(* --- segmented bitmap --------------------------------------------------------- *)

let test_segbitmap_basic () =
  let layout = Layout.v () in
  let mem = Machine.Memory.create () in
  let bm = Segbitmap.create layout mem in
  let r = Region.v ~addr:0x40_0000 ~size_bytes:12 () in
  check_bool "initially unmonitored" false (Segbitmap.monitored bm 0x40_0000);
  Segbitmap.add_region bm r;
  check_bool "lo monitored" true (Segbitmap.monitored bm 0x40_0000);
  check_bool "mid monitored" true (Segbitmap.monitored bm 0x40_0004);
  check_bool "hi monitored" true (Segbitmap.monitored bm 0x40_0008);
  check_bool "past end" false (Segbitmap.monitored bm 0x40_000C);
  check_bool "segment flagged" true (Segbitmap.segment_monitored bm 0x40_0000);
  Segbitmap.remove_region bm r;
  check_bool "cleared" false (Segbitmap.monitored bm 0x40_0004);
  check_bool "segment unflagged" false (Segbitmap.segment_monitored bm 0x40_0000)

let test_segbitmap_byte_addresses () =
  let layout = Layout.v () in
  let bm = Segbitmap.create layout (Machine.Memory.create ()) in
  Segbitmap.add_region bm (Region.v ~addr:0x40_0000 ~size_bytes:4 ());
  (* Any byte of the word maps to the same bit. *)
  check_bool "byte 1" true (Segbitmap.monitored bm 0x40_0001);
  check_bool "byte 3" true (Segbitmap.monitored bm 0x40_0003)

let test_segbitmap_cross_segment () =
  let layout = Layout.v () in
  let bm = Segbitmap.create layout (Machine.Memory.create ()) in
  (* Region spanning a 512-byte segment boundary. *)
  let r = Region.v ~addr:0x40_01FC ~size_bytes:8 () in
  Segbitmap.add_region bm r;
  check_bool "last word of seg" true (Segbitmap.monitored bm 0x40_01FC);
  check_bool "first word of next" true (Segbitmap.monitored bm 0x40_0200);
  check_bool "both segments flagged" true
    (Segbitmap.segment_monitored bm 0x40_01FC
    && Segbitmap.segment_monitored bm 0x40_0200)

(* Segment-boundary edges of the 128-word (512-byte) default segment:
   the first and last word of a segment flip only their own bit, a
   monitored doubleword straddling two segments marks one word in
   each, and the "segment has monitored words" flag really is packed
   into the low bit of the table entry (the pointer bits survive flag
   churn). *)
let test_segbitmap_segment_edges () =
  let layout = Layout.v () in
  let mem = Machine.Memory.create () in
  let bm = Segbitmap.create layout mem in
  let seg_bytes = 1 lsl layout.Layout.seg_bits in
  check_int "default segment is 128 words" 128 (Layout.segment_words layout);
  let seg_start = 0x40_0000 in
  let last_word = seg_start + seg_bytes - 4 in
  (* First word of the segment: neighbours stay clear. *)
  let r_first = Region.v ~addr:seg_start ~size_bytes:4 () in
  Segbitmap.add_region bm r_first;
  check_bool "first word set" true (Segbitmap.monitored bm seg_start);
  check_bool "second word clear" false (Segbitmap.monitored bm (seg_start + 4));
  check_bool "previous segment's last word clear" false
    (Segbitmap.monitored bm (seg_start - 4));
  (* Last word of the segment: the next segment is untouched. *)
  let r_last = Region.v ~addr:last_word ~size_bytes:4 () in
  Segbitmap.add_region bm r_last;
  check_bool "last word set" true (Segbitmap.monitored bm last_word);
  check_bool "word 126 clear" false (Segbitmap.monitored bm (last_word - 4));
  check_bool "next segment start clear" false
    (Segbitmap.monitored bm (last_word + 4));
  check_bool "next segment unflagged" false
    (Segbitmap.segment_monitored bm (last_word + 4));
  (* Doubleword straddling two segments: one word in each. *)
  let straddle_lo = seg_start + (2 * seg_bytes) - 4 in
  let r_dw = Region.v ~addr:straddle_lo ~size_bytes:8 () in
  Segbitmap.add_region bm r_dw;
  check_bool "straddle low half" true (Segbitmap.monitored bm straddle_lo);
  check_bool "straddle high half" true (Segbitmap.monitored bm (straddle_lo + 4));
  check_bool "straddle flags both segments" true
    (Segbitmap.segment_monitored bm straddle_lo
    && Segbitmap.segment_monitored bm (straddle_lo + 4));
  (* The monitored flag is the low bit of the packed table entry;
     clearing the last monitored word clears the flag but leaves the
     segment pointer allocated (§3.1's no-initialization trick works
     because a zero entry reads as unmonitored). *)
  let entry () =
    Sparc.Word.to_unsigned
      (Machine.Memory.read_word mem (Layout.table_entry_addr layout seg_start))
  in
  let flagged = entry () in
  check_bool "low bit set while monitored" true (flagged land 1 = 1);
  check_bool "pointer bits present" true (flagged land lnot 1 <> 0);
  Segbitmap.remove_region bm r_first;
  check_bool "still flagged (last word remains)" true (entry () land 1 = 1);
  Segbitmap.remove_region bm r_last;
  let unflagged = entry () in
  check_bool "low bit cleared when empty" true (unflagged land 1 = 0);
  check_int "pointer bits preserved across flag churn"
    (flagged land lnot 1) (unflagged land lnot 1);
  check_bool "segment_monitored mirrors the bit" false
    (Segbitmap.segment_monitored bm seg_start)

let prop_segbitmap_matches_model =
  QCheck.Test.make ~name:"segmented bitmap agrees with a naive model" ~count:100
    QCheck.(
      pair
        (small_list (pair (int_range 0 2000) (int_range 1 8)))
        (small_list (int_range 0 9000)))
    (fun (region_specs, queries) ->
      let layout = Layout.v () in
      let bm = Segbitmap.create layout (Machine.Memory.create ()) in
      let model = Hashtbl.create 64 in
      let base = 0x40_0000 in
      (* Build non-overlapping regions from slot indices. *)
      let used = Hashtbl.create 64 in
      let regions =
        List.filter_map
          (fun (slot, words) ->
            let addr = base + (slot * 64) in
            if words * 4 <= 64 && not (Hashtbl.mem used slot) then begin
              Hashtbl.replace used slot ();
              Some (Region.v ~addr ~size_bytes:(words * 4) ())
            end
            else None)
          region_specs
      in
      List.iter
        (fun (r : Region.t) ->
          Segbitmap.add_region bm r;
          let rec mark a = if a <= r.hi then (Hashtbl.replace model (a lsr 2) (); mark (a + 4)) in
          mark r.lo)
        regions;
      (* Remove every other region. *)
      List.iteri
        (fun i (r : Region.t) ->
          if i mod 2 = 0 then begin
            Segbitmap.remove_region bm r;
            let rec unmark a =
              if a <= r.hi then (Hashtbl.remove model (a lsr 2); unmark (a + 4))
            in
            unmark r.lo
          end)
        regions;
      List.for_all
        (fun q ->
          let addr = base + (q * 4) in
          Segbitmap.monitored bm addr = Hashtbl.mem model (addr lsr 2))
        queries)

(* --- write types ------------------------------------------------------------ *)

let classify_stores ?(fortran_idiom = false) src =
  let out = Minic.Compile.compile src in
  let items = Array.of_list out.Minic.Codegen.program.text in
  let types = ref [] in
  Array.iteri
    (fun idx item ->
      match item with
      | Sparc.Asm.Insn (Sparc.Insn.St _) ->
        types := Write_type.classify ~fortran_idiom items idx :: !types
      | _ -> ())
    items;
  List.rev !types

let test_write_types () =
  (* Local scalar writes: STACK. *)
  let types = classify_stores "int main() { int x; x = 1; return x; }" in
  check_bool "stack write present" true (List.mem Write_type.Stack types);
  (* Global scalar: BSS. *)
  let types = classify_stores "int g; int main() { g = 1; return g; }" in
  check_bool "bss write present" true (List.mem Write_type.Bss types);
  (* Global array with register index: BSS-VAR for FORTRAN-class. *)
  let src =
    "int a[10]; int main() { register int i; for (i = 0; i < 10; i = i + 1) \
     { a[i] = i; } return 0; }"
  in
  let types = classify_stores ~fortran_idiom:true src in
  check_bool "bss-var present" true (List.mem Write_type.Bss_var types);
  let types = classify_stores ~fortran_idiom:false src in
  check_bool "degrades to heap for C" true
    ((not (List.mem Write_type.Bss_var types)) && List.mem Write_type.Heap types);
  (* Pointer write: HEAP. *)
  let types =
    classify_stores
      "int main() { int *p; p = malloc(8); *p = 1; return *p; }"
  in
  check_bool "heap present" true (List.mem Write_type.Heap types)

(* --- end-to-end helpers ---------------------------------------------------------- *)

let options ?(strategy = Strategy.Bitmap_inline_registers) ?(opt = Instrument.O0)
    ?(check_aliases = false) () =
  { Instrument.default_options with strategy; opt; check_aliases }

let run_plain src =
  let code, out = Minic.Compile.run ~fuel:20_000_000 src in
  (code, out)

let run_session ?options:(o = options ()) ?watch ?(fuel = 20_000_000) src =
  let session = Session.create ~options:o src in
  Session.install_oracle session;
  let dbg = Debugger.create session in
  let watches = Option.map (fun f -> f dbg) watch in
  let code, out = Session.run ~fuel session in
  (session, dbg, watches, code, out)

let semantics_programs =
  [
    "int main() { return 42; }";
    "int g; int main() { int i; for (i = 0; i < 50; i = i + 1) { g = g + i; \
     } return g % 256; }";
    "int a[32]; int main() { register int i; int s; for (i = 0; i < 32; i = \
     i + 1) { a[i] = i * i; } s = 0; for (i = 0; i < 32; i = i + 1) { s = s \
     + a[i]; } return s % 251; }";
    "struct node { int v; struct node *next; }; int main() { struct node *h; \
     struct node *n; int i; int s; h = 0; for (i = 1; i <= 8; i = i + 1) { n \
     = malloc(8); n->v = i; n->next = h; h = n; } s = 0; n = h; while (n != \
     0) { s = s + n->v; n = n->next; } return s; }";
    "int fib(int n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - \
     2); } int main() { return fib(12); }";
  ]

let all_option_sets =
  List.concat_map
    (fun strategy ->
      [ options ~strategy (); options ~strategy ~opt:Instrument.O_symbol () ])
    (Strategy.all @ [ Strategy.Hash_table ])
  @ [
      options ~opt:Instrument.O_full ();
      options ~strategy:Strategy.Cache ~opt:Instrument.O_full ();
      options ~opt:Instrument.O_full ~check_aliases:true ();
    ]

(* Instrumentation must never change program behaviour. *)
let test_semantics_preserved () =
  List.iter
    (fun src ->
      let expect_code, expect_out = run_plain src in
      List.iter
        (fun o ->
          let _, _, _, code, out = run_session ~options:o src in
          check_int ("exit: " ^ Strategy.to_string o.Instrument.strategy) expect_code code;
          Alcotest.(check string) "output" expect_out out)
        all_option_sets)
    semantics_programs

(* And with monitoring armed on a heavily-written global, behaviour is
   still unchanged and every write is caught. *)
let watched_src =
  "int g; int main() { int i; for (i = 0; i < 25; i = i + 1) { g = g + 2; } \
   return g; }"

let test_hits_all_strategies () =
  List.iter
    (fun o ->
      let session, _, _, code, _ =
        run_session ~options:o ~watch:(fun dbg -> Debugger.watch dbg "g") watched_src
      in
      check_int ("exit " ^ Strategy.to_string o.Instrument.strategy) 50 code;
      let c = Mrs.counters session.Session.mrs in
      check_int
        ("hits with " ^ Strategy.to_string o.Instrument.strategy
        ^ (match o.Instrument.opt with
          | Instrument.O0 -> "/O0"
          | Instrument.O_symbol -> "/sym"
          | Instrument.O_full -> "/full"))
        25 c.Mrs.user_hits;
      check_int "oracle: no missed hits" 0 (Session.missed_hits session))
    all_option_sets

let test_disabled_no_hits () =
  (* Region exists but MRS disabled: no hits, and the disabled-flag
     guard keeps overhead small. *)
  let o = options () in
  let session = Session.create ~options:o watched_src in
  let dbg = Debugger.create session in
  let w = Debugger.watch dbg "g" in
  Mrs.disable session.Session.mrs;
  ignore w;
  let code, _ = Session.run session in
  check_int "exit" 50 code;
  check_int "no hits while disabled" 0 (Mrs.counters session.Session.mrs).Mrs.user_hits

let test_alias_writes_detected () =
  (* Writes through a pointer alias must be caught even with symbol
     optimization (the matched-store rewrite must not hide them). *)
  let src =
    "int g; int h; int main() { int *p; p = &g; *p = 7; p = &h; *p = 9; \
     return g + h; }"
  in
  List.iter
    (fun o ->
      let session, _, _, code, _ =
        run_session ~options:o ~watch:(fun dbg -> Debugger.watch dbg "g") src
      in
      check_int "exit" 16 code;
      check_int "alias write caught" 1
        (Mrs.counters session.Session.mrs).Mrs.user_hits)
    [ options (); options ~opt:Instrument.O_symbol (); options ~opt:Instrument.O_full () ]

let test_symbol_elimination_and_premonitor () =
  let o = options ~opt:Instrument.O_symbol () in
  let session = Session.create ~options:o watched_src in
  let plan = session.Session.plan in
  (* The loop writes to g and i are matched. *)
  check_bool "some sites eliminated" true
    (List.exists
       (fun (s : Instrument.site) ->
         match s.status with Instrument.Sym_eliminated _ -> true | _ -> false)
       plan.Instrument.sites);
  check_bool "g has a patch list" true
    (List.mem_assoc "g" plan.Instrument.sites_by_pseudo);
  (* Without PreMonitor, matched writes are invisible (by design): *)
  let session2 = Session.create ~options:o watched_src in
  let mrs2 = session2.Session.mrs in
  (match Sparc.Symtab.lookup session2.Session.symtab "g" with
  | Some { Sparc.Symtab.location = Sparc.Symtab.Absolute a; _ } ->
    Mrs.create_region mrs2 (Region.v ~addr:a ~size_bytes:4 ());
    Mrs.enable mrs2
  | _ -> Alcotest.fail "no symbol g");
  ignore (Session.run session2);
  check_int "region alone misses matched writes" 0
    (Mrs.counters mrs2).Mrs.user_hits;
  (* With the full debugger interface (region + PreMonitor): *)
  let session3, _, _, _, _ =
    run_session ~options:o ~watch:(fun dbg -> Debugger.watch dbg "g") watched_src
  in
  check_int "premonitor restores detection" 25
    (Mrs.counters session3.Session.mrs).Mrs.user_hits

let test_loop_elimination_and_reinsertion () =
  let src =
    "int a[40]; int main() { register int i; for (i = 0; i < 40; i = i + 1) \
     { a[i] = i; } return a[13]; }"
  in
  let o = options ~opt:Instrument.O_full () in
  let session = Session.create ~options:o src in
  let plan = session.Session.plan in
  check_bool "loop-eliminated site exists" true
    (List.exists
       (fun (s : Instrument.site) ->
         match s.status with Instrument.Loop_eliminated _ -> true | _ -> false)
       plan.Instrument.sites);
  (* Watching the array: the pre-header range check must trigger and
     re-insert the eliminated check, catching all 40 writes. *)
  let session2, _, _, code, _ =
    run_session ~options:o ~watch:(fun dbg -> Debugger.watch dbg "a") src
  in
  check_int "exit" 13 code;
  let c = Mrs.counters session2.Session.mrs in
  check_int "all elements caught" 40 c.Mrs.user_hits;
  check_bool "range check triggered" true (c.Mrs.loop_triggers > 0);
  check_bool "patch inserted" true (c.Mrs.patches_inserted > 0);
  check_int "oracle" 0 (Session.missed_hits session2)

let test_loop_not_triggered_when_unwatched () =
  let src =
    "int a[40]; int b; int main() { register int i; for (i = 0; i < 40; i = \
     i + 1) { a[i] = i; } b = 1; return b; }"
  in
  let o = options ~opt:Instrument.O_full () in
  (* Watch only b: the range check runs but never triggers. *)
  let session, _, _, _, _ =
    run_session ~options:o ~watch:(fun dbg -> Debugger.watch dbg "b") src
  in
  let c = Mrs.counters session.Session.mrs in
  check_int "b caught" 1 c.Mrs.user_hits;
  check_bool "loop entry checked" true (c.Mrs.loop_entries > 0);
  check_int "never triggered" 0 c.Mrs.loop_triggers;
  check_int "oracle" 0 (Session.missed_hits session)

let test_cache_invalidation () =
  (* With segment caches, a region created mid-run (from a hit callback)
     must invalidate the caches so later hits are seen. *)
  let src =
    "int g; int h; int main() { int i; for (i = 0; i < 10; i = i + 1) { g = \
     i; } for (i = 0; i < 10; i = i + 1) { h = i; } return 0; }"
  in
  let o = options ~strategy:Strategy.Cache_inline () in
  let session = Session.create ~options:o src in
  let dbg = Debugger.create session in
  ignore (Debugger.watch dbg "g");
  let armed_h = ref false in
  Debugger.set_on_event dbg (fun _ ->
      if not !armed_h then begin
        armed_h := true;
        ignore (Debugger.watch dbg "h")
      end);
  ignore (Session.run session);
  let c = Mrs.counters session.Session.mrs in
  check_int "hits on both" 20 c.Mrs.user_hits

let test_check_in_progress_flag () =
  (* The %g7 flag must be clear again after every call-based check. *)
  let o = options ~strategy:Strategy.Bitmap () in
  let session, _, _, _, _ =
    run_session ~options:o ~watch:(fun dbg -> Debugger.watch dbg "g") watched_src
  in
  check_int "g7 clear at exit" 0 (Machine.Cpu.get session.Session.cpu (Sparc.Reg.g 7))

let test_fault_isolation () =
  let src =
    "int shared; int good() { shared = 1; return 0; } int evil() { shared = \
     2; return 0; } int main() { good(); evil(); return shared; }"
  in
  (* Hit attribution must name the right function under both inline and
     call-based checks (the latter resolve the site through %i7). *)
  List.iter
    (fun strategy ->
      let session = Session.create ~options:(options ~strategy ()) src in
      let dbg = Debugger.create session in
      let w = Debugger.watch dbg "shared" in
      Debugger.restrict_writers dbg w ~writers:[ "good" ];
      ignore (Session.run session);
      match Debugger.violations dbg with
      | [ (_, Some f) ] ->
        Alcotest.(check string)
          ("culprit under " ^ Strategy.to_string strategy)
          "evil" f
      | _ -> Alcotest.failf "bad violations under %s" (Strategy.to_string strategy))
    [ Strategy.Bitmap; Strategy.Cache; Strategy.Hash_table ];
  let session = Session.create ~options:(options ()) src in
  let dbg = Debugger.create session in
  let w = Debugger.watch dbg "shared" in
  Debugger.restrict_writers dbg w ~writers:[ "good" ];
  let code, _ = Session.run session in
  check_int "exit" 2 code;
  check_int "two writes seen" 2 (List.length (Debugger.events dbg));
  (match Debugger.violations dbg with
  | [ (name, Some f) ] ->
    Alcotest.(check string) "watch name" "shared" name;
    Alcotest.(check string) "culprit" "evil" f
  | _ -> Alcotest.fail "expected exactly one violation from evil")

let test_watch_struct_field () =
  let src =
    "struct s { int a; int f; int b; }; struct s x; int main() { x.a = 1; \
     x.f = 2; x.b = 3; x.f = 4; return x.f; }"
  in
  let session, dbg, _, code, _ =
    run_session ~options:(options ())
      ~watch:(fun dbg -> Debugger.watch_field dbg "x" "f")
      src
  in
  check_int "exit" 4 code;
  check_int "only f's writes hit" 2 (Mrs.counters session.Session.mrs).Mrs.user_hits;
  ignore dbg

let test_watch_heap_object () =
  let src =
    "int *leak_ptr; int main() { int *p; int i; p = malloc(32); leak_ptr = \
     p; for (i = 0; i < 8; i = i + 1) { p[i] = i; } return p[5]; }"
  in
  (* Arm the watch from the first hit on leak_ptr (the debugger learns
     the heap address at runtime, as a real session would). *)
  let session = Session.create ~options:(options ()) src in
  Session.install_oracle session;
  let dbg = Debugger.create session in
  ignore (Debugger.watch dbg "leak_ptr");
  let armed = ref false in
  Debugger.set_on_event dbg (fun e ->
      if (not !armed) && e.Debugger.watch.Debugger.wname = "leak_ptr" then begin
        armed := true;
        let addr =
          Machine.Memory.read_word (Machine.Cpu.mem session.Session.cpu) e.Debugger.addr
        in
        ignore (Debugger.watch_addr dbg ~name:"heap" ~addr ~size_bytes:32 ())
      end);
  let code, _ = Session.run session in
  check_int "exit" 5 code;
  let events = Debugger.events dbg in
  let heap_hits =
    List.length
      (List.filter (fun e -> e.Debugger.watch.Debugger.wname = "heap") events)
  in
  check_int "heap writes caught" 8 heap_hits

let test_read_monitoring () =
  let src =
    "int g; int main() { int i; int s; g = 5; s = 0; for (i = 0; i < 10; i =      i + 1) { s = s + g; } g = s; return s; }"
  in
  (* With read monitoring: 2 writes + 10 reads of g hit. *)
  List.iter
    (fun strategy ->
      let o =
        { (options ~strategy ()) with Instrument.monitor_reads = true }
      in
      let session, _, _, code, _ =
        run_session ~options:o ~watch:(fun dbg -> Debugger.watch dbg "g") src
      in
      check_int "exit" 50 code;
      let c = Mrs.counters session.Session.mrs in
      check_int
        ("hits w+r under " ^ Strategy.to_string strategy)
        12 c.Mrs.user_hits;
      check_int ("read hits under " ^ Strategy.to_string strategy) 10 c.Mrs.read_hits;
      check_int ("read oracle under " ^ Strategy.to_string strategy) 0
        (Session.missed_hits session))
    [ Strategy.Bitmap; Strategy.Bitmap_inline; Strategy.Bitmap_inline_registers;
      Strategy.Cache; Strategy.Cache_inline; Strategy.Hash_table ];
  (* Without: only the 2 writes. *)
  let session, _, _, _, _ =
    run_session ~options:(options ()) ~watch:(fun dbg -> Debugger.watch dbg "g") src
  in
  check_int "write-only hits" 2 (Mrs.counters session.Session.mrs).Mrs.user_hits;
  check_int "no read hits" 0 (Mrs.counters session.Session.mrs).Mrs.read_hits

let test_read_monitoring_semantics () =
  (* Read checks must not perturb results, including through pointer
     chains and scratch-register-sensitive address patterns. *)
  List.iter
    (fun src ->
      let expect, _ = run_plain src in
      List.iter
        (fun strategy ->
          let o = { (options ~strategy ()) with Instrument.monitor_reads = true } in
          let _, _, _, code, _ = run_session ~options:o src in
          check_int ("read-mon " ^ Strategy.to_string strategy) expect code)
        [ Strategy.Bitmap_inline_registers; Strategy.Cache_inline; Strategy.Bitmap ])
    semantics_programs

let test_nop_padding () =
  let o = { (options ()) with Instrument.nop_padding = 4 } in
  let _, _, _, code, _ = run_session ~options:o watched_src in
  check_int "padded run works" 50 code

let test_oracle_detects_sabotage () =
  (* Failure injection: silently clear the variable's bit in the
     in-memory bitmap after arming the watch.  Checks then miss, and
     the oracle MUST report the misses — proving the soundness tests
     are not vacuous. *)
  let session = Session.create ~options:(options ()) watched_src in
  Session.install_oracle session;
  let dbg = Debugger.create session in
  ignore (Debugger.watch dbg "g");
  (match Sparc.Symtab.lookup session.Session.symtab "g" with
  | Some { Sparc.Symtab.location = Sparc.Symtab.Absolute a; _ } ->
    let layout = session.Session.plan.Instrument.options.Instrument.layout in
    let mem = Machine.Cpu.mem session.Session.cpu in
    let entry_addr = Layout.table_entry_addr layout a in
    let entry =
      Sparc.Word.to_unsigned (Machine.Memory.read_word mem entry_addr)
    in
    let segptr = entry land lnot 1 in
    let widx = Layout.word_in_segment layout a in
    let word_addr = segptr + (4 * (widx lsr 5)) in
    let w = Sparc.Word.to_unsigned (Machine.Memory.read_word mem word_addr) in
    Machine.Memory.write_word mem word_addr (w land lnot (1 lsl (widx land 31)))
  | _ -> Alcotest.fail "no g");
  ignore (Session.run session);
  check_int "no hits after sabotage" 0
    (Mrs.counters session.Session.mrs).Mrs.user_hits;
  check_bool "oracle reports the misses" true (Session.missed_hits session > 0)

let test_checkpoint_replay () =
  (* §5: checkpoint at a hit, run to completion, roll back, replay —
     the second run must reproduce the first exactly. *)
  let src =
    "int g; int trace; int main() { int i; for (i = 0; i < 12; i = i + 1) {      g = g * 3 + i; trace = trace ^ g; } return trace & 65535; }"
  in
  let session = Session.create ~options:(options ()) src in
  let dbg = Debugger.create session in
  ignore (Debugger.watch dbg "g");
  let cp = ref None in
  Debugger.set_on_event dbg (fun _ ->
      if !cp = None then cp := Some (Machine.Cpu.checkpoint session.Session.cpu));
  let code1, out1 = Session.run session in
  let hits1 = (Mrs.counters session.Session.mrs).Mrs.user_hits in
  (match !cp with
  | None -> Alcotest.fail "no checkpoint taken"
  | Some cp ->
    Machine.Cpu.rollback session.Session.cpu cp;
    let code2, out2 = Session.run session in
    check_int "replayed exit" code1 code2;
    Alcotest.(check string) "replayed output" out1 out2;
    (* The replay sees the post-checkpoint hits again. *)
    check_int "replayed hits" (2 * hits1 - 1)
      (Mrs.counters session.Session.mrs).Mrs.user_hits)

let test_trap_check_strategy () =
  let session, _, _, code, _ =
    run_session
      ~options:(options ~strategy:Strategy.Trap_check ())
      ~watch:(fun dbg -> Debugger.watch dbg "g")
      watched_src
  in
  check_int "exit" 50 code;
  check_int "hits via traps" 25 (Mrs.counters session.Session.mrs).Mrs.user_hits;
  check_int "oracle" 0 (Session.missed_hits session)

let test_hardware_watch_strategy () =
  (* Detection works and costs nothing, but capacity is 4 words. *)
  let o = options ~strategy:(Strategy.Hardware_watch 4) () in
  let session, _, _, code, _ =
    run_session ~options:o ~watch:(fun dbg -> Debugger.watch dbg "g") watched_src
  in
  check_int "exit" 50 code;
  check_int "hits" 25 (Mrs.counters session.Session.mrs).Mrs.user_hits;
  (* Zero overhead: no checks were inserted at all. *)
  let plain_instrs =
    let s2 = Session.create ~options:(options ~strategy:Strategy.Nocheck ()) watched_src in
    ignore (Session.run s2);
    (Session.stats s2).Machine.Cpu.instrs
  in
  check_int "no extra instructions" plain_instrs (Session.stats session).Machine.Cpu.instrs;
  (* Watching a 64-word array exceeds the registers. *)
  let src = "int big[64]; int main() { big[0] = 1; return big[0]; }" in
  let session2 = Session.create ~options:o src in
  let dbg2 = Debugger.create session2 in
  (try
     ignore (Debugger.watch dbg2 "big");
     Alcotest.fail "expected capacity failure"
   with Mrs.Hardware_capacity 4 -> ())

let test_overhead_independent_of_breakpoints () =
  (* The abstract's claim: checking overhead is independent of the
     number of breakpoints in use.  Cycles with 0 vs 16 armed regions
     (none of them hit) must agree almost exactly. *)
  let src =
    "int g; int main() { int i; for (i = 0; i < 2000; i = i      + 1) { g = g + i; } return g & 255; }"
  in
  (* Regions in address space the program never touches (a different
     bitmap segment): per-check cost must not depend on how many there
     are.  (Regions sharing a segment with hot data do cost more — the
     full-lookup effect the break-even analysis of §3.3.3 quantifies.) *)
  let cycles nregions =
    let session = Session.create ~options:(options ()) src in
    for k = 0 to nregions - 1 do
      Mrs.create_region session.Session.mrs
        (Region.v ~addr:(0x5000_0000 + (1024 * k)) ~size_bytes:4 ())
    done;
    Mrs.enable session.Session.mrs;
    ignore (Session.run session);
    (Session.stats session).Machine.Cpu.cycles
  in
  let c0 = cycles 0 and c16 = cycles 16 in
  let drift = abs (c16 - c0) in
  check_bool
    (Printf.sprintf "cycles drift %d of %d" drift c0)
    true
    (float_of_int drift < 0.02 *. float_of_int c0)

let test_mrs_self_protection () =
  (* A wild pointer smashing the MRS shadow stack is caught as an
     internal hit (§2.1), without disturbing the program. *)
  let src =
    {|int main() { int *p; p = 0xB0000000; *p = 7; return 5; }|}
  in
  let session = Session.create ~options:(options ()) ~protect_mrs:true src in
  Mrs.enable session.Session.mrs;
  let code, _ = Session.run session in
  check_int "exit" 5 code;
  check_bool "corruption detected" true
    ((Mrs.counters session.Session.mrs).Mrs.internal_hits > 0);
  (* Without self-protection it goes unnoticed. *)
  let session2 = Session.create ~options:(options ()) src in
  Mrs.enable session2.Session.mrs;
  ignore (Session.run session2);
  check_int "undetected without protection" 0
    (Mrs.counters session2.Session.mrs).Mrs.internal_hits

let test_conditional_watch () =
  (* "stop when g > 100": only the qualifying writes produce events. *)
  let src =
    "int g; int main() { int i; for (i = 0; i < 10; i = i + 1) { g = i * 30;      } return g; }"
  in
  let session = Session.create ~options:(options ()) src in
  let dbg = Debugger.create session in
  ignore (Debugger.watch dbg ~condition:(fun v -> v > 100) "g");
  let code, _ = Session.run session in
  check_int "exit" 270 code;
  (* writes: 0,30,...,270; > 100 are 120..270 = 6 events *)
  check_int "conditional events" 6 (List.length (Debugger.events dbg));
  (* values visible in events (checks run after the store) *)
  check_bool "values recorded" true
    (List.for_all (fun (e : Debugger.event) -> e.Debugger.value > 100)
       (Debugger.events dbg))

let test_control_breakpoints () =
  let src =
    "int f(int x) { return x * 2; } int main() { int i; int s; s = 0; for (i      = 0; i < 5; i = i + 1) { s = s + f(i); } return s; }"
  in
  let session = Session.create ~options:(options ()) src in
  let dbg = Debugger.create session in
  let args = ref [] in
  Debugger.break_at dbg "f" (fun _ cpu ->
      args := Machine.Cpu.get cpu (Sparc.Reg.o 0) :: !args);
  let code, _ = Session.run session in
  check_int "exit" 20 code;
  check_int "break count" 5 (Debugger.break_count dbg "f");
  check_bool "arguments observed" true (List.rev !args = [ 0; 1; 2; 3; 4 ])

let test_watch_local_from_breakpoint () =
  (* Arm a watch on a local of a specific frame from a control
     breakpoint — the classic combined use the paper motivates. *)
  let src =
    "int f(int x) { int acc; int i; acc = x; for (i = 0; i < 3; i = i + 1) {      acc = acc + i; } return acc; } int main() { return f(10) + f(20); }"
  in
  let session = Session.create ~options:(options ()) src in
  let dbg = Debugger.create session in
  let armed = ref false in
  let wp = ref None in
  Debugger.break_at dbg "f" (fun (e : Debugger.breakpoint_event) cpu ->
      if e.Debugger.count = 2 && not !armed then begin
        armed := true;
        (* At function entry the frame is not yet pushed; %sp will
           become %fp after the save, so compute the callee fp = current
           %sp. *)
        let fp = Machine.Cpu.get cpu Sparc.Reg.sp in
        wp := Some (Debugger.watch_local dbg ~func:"f" ~var:"acc" ~fp ())
      end);
  let code, _ = Session.run session in
  check_int "exit" (13 + 23) code;
  (* Only the second call's acc updates are seen: acc = x, then 3
     increments = 4 writes. *)
  check_int "second-frame writes only" 4 (List.length (Debugger.events dbg));
  check_bool "final value seen" true
    (List.exists (fun (e : Debugger.event) -> e.Debugger.value = 23)
       (Debugger.events dbg))

let suites =
  [
    ( "dbp.region",
      [
        Alcotest.test_case "basics" `Quick test_region_basics;
        Alcotest.test_case "sets" `Quick test_region_set;
      ] );
    ( "dbp.segbitmap",
      [
        Alcotest.test_case "basic" `Quick test_segbitmap_basic;
        Alcotest.test_case "byte addresses" `Quick test_segbitmap_byte_addresses;
        Alcotest.test_case "cross segment" `Quick test_segbitmap_cross_segment;
        Alcotest.test_case "segment edges + packed flag" `Quick
          test_segbitmap_segment_edges;
        QCheck_alcotest.to_alcotest prop_segbitmap_matches_model;
      ] );
    ("dbp.write_type", [ Alcotest.test_case "classification" `Quick test_write_types ]);
    ( "dbp.end_to_end",
      [
        Alcotest.test_case "semantics preserved" `Slow test_semantics_preserved;
        Alcotest.test_case "hits, all strategies" `Quick test_hits_all_strategies;
        Alcotest.test_case "disabled flag" `Quick test_disabled_no_hits;
        Alcotest.test_case "alias writes detected" `Quick test_alias_writes_detected;
        Alcotest.test_case "nop padding" `Quick test_nop_padding;
        Alcotest.test_case "read monitoring hits" `Quick test_read_monitoring;
        Alcotest.test_case "read monitoring semantics" `Slow
          test_read_monitoring_semantics;
      ] );
    ( "dbp.optimizations",
      [
        Alcotest.test_case "symbol elimination + PreMonitor" `Quick
          test_symbol_elimination_and_premonitor;
        Alcotest.test_case "loop elimination + reinsertion" `Quick
          test_loop_elimination_and_reinsertion;
        Alcotest.test_case "range check no trigger" `Quick
          test_loop_not_triggered_when_unwatched;
        Alcotest.test_case "segment cache invalidation" `Quick test_cache_invalidation;
        Alcotest.test_case "check-in-progress flag" `Quick test_check_in_progress_flag;
      ] );
    ( "dbp.debugger",
      [
        Alcotest.test_case "fault isolation" `Quick test_fault_isolation;
        Alcotest.test_case "watch struct field" `Quick test_watch_struct_field;
        Alcotest.test_case "watch heap object" `Quick test_watch_heap_object;
        Alcotest.test_case "oracle detects sabotage" `Quick test_oracle_detects_sabotage;
        Alcotest.test_case "checkpoint and replay" `Quick test_checkpoint_replay;
        Alcotest.test_case "trap-check strategy" `Quick test_trap_check_strategy;
        Alcotest.test_case "hardware watch strategy" `Quick test_hardware_watch_strategy;
        Alcotest.test_case "overhead independent of breakpoints" `Quick
          test_overhead_independent_of_breakpoints;
        Alcotest.test_case "MRS self-protection" `Quick test_mrs_self_protection;
        Alcotest.test_case "conditional watchpoints" `Quick test_conditional_watch;
        Alcotest.test_case "control breakpoints" `Quick test_control_breakpoints;
        Alcotest.test_case "watch local from breakpoint" `Quick
          test_watch_local_from_breakpoint;
      ] );
  ]
