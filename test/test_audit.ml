open Dbp

(* Provenance & tracing (PR 3): the audit journal's verdicts must agree
   with the optimizer statistics they summarize, the patched-check
   telemetry must obey the conservation law the journal implies, and
   the phase tracer's Chrome export must be a well-formed, well-nested
   trace. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains s needle =
  let n = String.length needle and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
  n = 0 || go 0

let replace s ~sub ~by =
  let n = String.length sub in
  let buf = Buffer.create (String.length s) in
  let i = ref 0 in
  while !i <= String.length s - n do
    if String.sub s !i n = sub then begin
      Buffer.add_string buf by;
      i := !i + n
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.add_string buf (String.sub s !i (String.length s - !i));
  Buffer.contents buf

let counter (rep : Telemetry.report) name =
  match List.assoc_opt name rep.Telemetry.r_counters with
  | Some v -> v
  | None -> 0

let summary_count (summary : (string * int) list) name =
  match List.assoc_opt name summary with
  | Some v -> v
  | None -> Alcotest.failf "verdict %S missing from summary" name

let workload name =
  match Workloads.Spec.find name with
  | Some w -> w
  | None -> Alcotest.failf "%s missing from the registry" name

let o_full =
  { Instrument.default_options with opt = Instrument.O_full }

(* --- verdict partition ---------------------------------------------------------- *)

(* The audit summary is a partition of the site table, and each verdict
   class must agree exactly with the statistic the optimizer that
   produced it reports: sym_matched sites = Symopt's matched stores
   (= the PreMonitor patch list), loop verdicts = Loopopt's
   invariant/range check counts (no alias filtering under the default
   options), and everything else is Kept. *)
let partition_checks name =
  let w = workload name in
  let session =
    Session.create ~options:o_full w.Workloads.Workload.source
  in
  let plan = session.Session.plan in
  let summary = Audit.summary session.Session.audit in
  let n_sites = List.length plan.Instrument.sites in
  check_bool "workload has write sites" true (n_sites > 0);
  check_int "summary partitions the site table" n_sites
    (List.fold_left (fun acc (_, c) -> acc + c) 0 summary);
  check_int "sym_matched = Symopt.matched_store_sites"
    plan.Instrument.sym_stats.Instrument.matched_store_sites
    (summary_count summary "sym_matched");
  check_int "sym_matched = PreMonitor patch list"
    (List.fold_left
       (fun acc (_, origins) -> acc + List.length origins)
       0 plan.Instrument.sites_by_pseudo)
    (summary_count summary "sym_matched");
  check_int "loop_invariant = Loopopt.invariant_checks"
    plan.Instrument.loop_stats.Loopopt.invariant_checks
    (summary_count summary "loop_invariant");
  check_int "loop_range = Loopopt.range_checks"
    plan.Instrument.loop_stats.Loopopt.range_checks
    (summary_count summary "loop_range");
  (* Per-site agreement, not just counts: the journal's verdict class
     must match the plan's status for every site, in slot order. *)
  let rep = Audit.report session.Session.audit in
  check_int "one journal entry per site" n_sites
    (List.length rep.Audit.a_sites);
  List.iter2
    (fun (s : Instrument.site) (a : Audit.site) ->
      check_int "slots align" s.Instrument.slot a.Audit.a_slot;
      check_int "origins align" s.Instrument.origin a.Audit.a_origin;
      let ok =
        match s.Instrument.status, a.Audit.a_verdict with
        | Instrument.Checked, Audit.Kept -> true
        | Instrument.Sym_eliminated p, Audit.Sym_matched { pseudo; _ } ->
          String.equal p pseudo
        | Instrument.Loop_eliminated id,
          ( Audit.Loop_invariant { loop_id; _ }
          | Audit.Loop_range { loop_id; _ } ) ->
          id = loop_id
        | _, _ -> false
      in
      check_bool
        (Printf.sprintf "site %d verdict matches plan status"
           s.Instrument.slot)
        true ok)
    plan.Instrument.sites rep.Audit.a_sites

let test_partition_matrix300 () = partition_checks "030.matrix300"
let test_partition_li () = partition_checks "022.li"

(* --- conservation ----------------------------------------------------------------- *)

(* Phase A: with nothing monitored, no eliminated check is ever patched
   back in, so every site's patched-execution cell stays zero even
   though the (eliminated) sites themselves execute.  That is exactly
   the §4.2/§4.3 claim the journal records: the elimination is real. *)
let test_conservation_unmonitored () =
  let w = workload "030.matrix300" in
  let session =
    Session.create ~options:o_full w.Workloads.Workload.source
  in
  Mrs.enable session.Session.mrs;
  let _code, _ = Session.run ~fuel:50_000_000 session in
  let tel = session.Session.telemetry in
  for slot = 0 to Telemetry.n_sites tel - 1 do
    check_int
      (Printf.sprintf "slot %d: no patched executions while unmonitored" slot)
      0
      (Telemetry.site_patched tel slot)
  done;
  check_bool "eliminated sites did execute" true
    (Session.eliminated_site_executions session > 0);
  let rep = Session.report session in
  check_int "patched_check_execs counter agrees" 0
    (counter rep "patched_check_execs");
  check_int "no patches were inserted" 0
    (Mrs.counters session.Session.mrs).Mrs.patches_inserted

(* Phase B: watch a sym-matched global before running.  PreMonitor
   patches its known writes in up front, so for exactly those origins
   every execution runs the patched check (patched = exec > 0); every
   other site stays at zero.  The journal's patch events account for
   each armed origin. *)
let test_conservation_premonitor () =
  let src =
    {|
int g;
int other;
int main() {
  int i;
  for (i = 0; i < 10; i = i + 1) { g = i; other = i + 1; }
  return g + other;
}
|}
  in
  let options =
    { Instrument.default_options with opt = Instrument.O_symbol }
  in
  let session = Session.create ~options src in
  let plan = session.Session.plan in
  let g_origins =
    match List.assoc_opt "g" plan.Instrument.sites_by_pseudo with
    | Some l -> l
    | None -> Alcotest.fail "g was not sym-matched"
  in
  let dbg = Debugger.create session in
  ignore (Debugger.watch dbg "g");
  let _code, _ = Session.run ~fuel:5_000_000 session in
  let tel = session.Session.telemetry in
  let slot_of origin =
    match Hashtbl.find_opt session.Session.site_slot origin with
    | Some s -> s
    | None -> Alcotest.failf "no slot for origin %d" origin
  in
  List.iter
    (fun origin ->
      let slot = slot_of origin in
      let execs = Telemetry.site_exec tel slot in
      check_bool "armed site executed" true (execs > 0);
      check_int
        (Printf.sprintf "origin %d: patched = exec while armed" origin)
        execs
        (Telemetry.site_patched tel slot))
    g_origins;
  List.iter
    (fun (s : Instrument.site) ->
      if not (List.mem s.Instrument.origin g_origins) then
        check_int
          (Printf.sprintf "origin %d: unarmed site never patched"
             s.Instrument.origin)
          0
          (Telemetry.site_patched tel s.Instrument.slot))
    plan.Instrument.sites;
  (* Each armed origin has a Patch_inserted journal event naming the
     watched pseudo. *)
  let rep = Audit.report session.Session.audit in
  List.iter
    (fun origin ->
      check_bool
        (Printf.sprintf "journal has insert event for origin %d" origin)
        true
        (List.exists
           (fun (p : Audit.patch_event) ->
             p.Audit.p_kind = Audit.Patch_inserted
             && p.Audit.p_origin = origin
             && String.equal p.Audit.p_pseudo "g")
           rep.Audit.a_patches))
    g_origins

(* Workload-scale bound: under a real watch, patched executions never
   exceed total executions, and every site with patched executions has
   a matching insert event in the journal. *)
let conservation_bound_checks name watch =
  let w = workload name in
  let session =
    Session.create ~options:o_full w.Workloads.Workload.source
  in
  let dbg = Debugger.create session in
  ignore (Debugger.watch dbg watch);
  let _code, _ = Session.run ~fuel:50_000_000 session in
  let tel = session.Session.telemetry in
  let rep = Audit.report session.Session.audit in
  List.iter
    (fun (s : Instrument.site) ->
      let slot = s.Instrument.slot in
      let patched = Telemetry.site_patched tel slot in
      check_bool
        (Printf.sprintf "slot %d: patched <= exec" slot)
        true
        (patched <= Telemetry.site_exec tel slot);
      if patched > 0 then
        check_bool
          (Printf.sprintf "slot %d: patched execs imply an insert event" slot)
          true
          (List.exists
             (fun (p : Audit.patch_event) ->
               p.Audit.p_kind = Audit.Patch_inserted
               && p.Audit.p_origin = s.Instrument.origin)
             rep.Audit.a_patches))
    session.Session.plan.Instrument.sites

let test_conservation_matrix300 () = conservation_bound_checks "030.matrix300" "c"

(* --- journal JSON round-trip ------------------------------------------------------ *)

let test_audit_json_round_trip () =
  let w = workload "030.matrix300" in
  let session =
    Session.create ~options:o_full w.Workloads.Workload.source
  in
  let dbg = Debugger.create session in
  ignore (Debugger.watch dbg "c");
  let _code, _ = Session.run ~fuel:50_000_000 session in
  let rep = Audit.report session.Session.audit in
  check_bool "journal has sites" true (rep.Audit.a_sites <> []);
  check_bool "journal has lattice bindings" true (rep.Audit.a_lattice <> []);
  let s = Audit.to_json_string rep in
  check_bool "compact round-trip" true (Audit.of_json_string s = rep);
  let pretty = Audit.to_json_string ~indent:2 rep in
  check_bool "pretty round-trip" true (Audit.of_json_string pretty = rep);
  check_bool "schema recorded" true
    (rep.Audit.a_schema = Audit.schema_version)

let test_audit_json_rejects_bad_schema () =
  let rep = Audit.report (Audit.create ()) in
  let s = Audit.to_json_string rep in
  let broken = replace s ~sub:Audit.schema_version ~by:"dbp-audit/99" in
  match Audit.of_json_string broken with
  | _ -> Alcotest.fail "bad schema accepted"
  | exception Export.Parse_error _ -> ()

(* --- explain ---------------------------------------------------------------------- *)

let test_explain () =
  let src =
    {|
int g;
int main() {
  int i;
  for (i = 0; i < 4; i = i + 1) { g = i; }
  return g;
}
|}
  in
  let options =
    { Instrument.default_options with opt = Instrument.O_symbol }
  in
  let session = Session.create ~options src in
  let dbg = Debugger.create session in
  ignore (Debugger.watch dbg "g");
  let _code, _ = Session.run ~fuel:1_000_000 session in
  let rep = Audit.report session.Session.audit in
  (match Audit.explain rep "g" with
  | Some text ->
    check_bool "explain names the verdict" true (contains text "sym_matched");
    check_bool "explain shows the patch history" true
      (contains text "re-inserted")
  | None -> Alcotest.fail "explain found nothing for g");
  check_bool "unknown target explains to nothing" true
    (Audit.explain rep "no_such_pseudo" = None)

(* --- chrome trace ----------------------------------------------------------------- *)

(* Spans are stack-bracketed at the recording layer, so well-nesting is
   structural; this checks the exported artifact: every event parses,
   carries non-negative integer ts/dur, and events on one tid are
   either disjoint or properly contained. *)
let test_chrome_trace_well_formed () =
  let w = workload "030.matrix300" in
  let trace = Trace.create () in
  let session =
    Session.create ~options:o_full ~trace w.Workloads.Workload.source
  in
  Mrs.enable session.Session.mrs;
  let _code, _ = Session.run ~fuel:50_000_000 session in
  let names = List.map (fun (s : Trace.span) -> s.Trace.sp_name) (Trace.spans trace) in
  List.iter
    (fun phase ->
      check_bool (phase ^ " span recorded") true (List.mem phase names))
    [ "compile"; "lift"; "symopt"; "loopopt"; "cfg-ssa"; "bounds"; "plan";
      "instrument"; "run" ];
  let s = Trace.to_chrome_string [ trace ] in
  match Export.json_of_string s with
  | Export.List events ->
    check_int "one event per span" (List.length names) (List.length events);
    let field name = function
      | Export.Obj fields -> (
        match List.assoc_opt name fields with
        | Some v -> v
        | None -> Alcotest.failf "event missing %S" name)
      | _ -> Alcotest.fail "event is not an object"
    in
    let int_field name ev =
      match field name ev with
      | Export.Int i -> i
      | _ -> Alcotest.failf "%S is not an int" name
    in
    let spans =
      List.map
        (fun ev ->
          let ts = int_field "ts" ev and dur = int_field "dur" ev in
          check_bool "ts >= 0" true (ts >= 0);
          check_bool "dur >= 0" true (dur >= 0);
          (match field "ph" ev with
          | Export.Str "X" -> ()
          | _ -> Alcotest.fail "not a complete event");
          (int_field "tid" ev, ts, ts + dur))
        events
    in
    (* Pairwise: same-tid intervals nest or are disjoint — no partial
       overlap survives the monotone microsecond quantization. *)
    List.iteri
      (fun i (tid_a, s_a, e_a) ->
        List.iteri
          (fun j (tid_b, s_b, e_b) ->
            if i < j && tid_a = tid_b then
              check_bool "no partial overlap" true
                (e_a <= s_b || e_b <= s_a
                || (s_a <= s_b && e_b <= e_a)
                || (s_b <= s_a && e_a <= e_b)))
          spans)
      spans
  | _ -> Alcotest.fail "chrome trace is not a JSON array"

(* The span-name multiset over a batch of sessions does not depend on
   how the sessions are distributed over tracers — the property the
   bench harness's -j1 / -j4 diff rule checks end-to-end. *)
let test_span_set_scheduling_independent () =
  let src = {|
int g;
int main() { g = 7; return g; }
|} in
  let run_batch tracers pick =
    List.iteri
      (fun i () ->
        let trace = List.nth tracers (pick i) in
        let session = Session.create ~options:o_full ~trace src in
        let _ = Session.run ~fuel:1_000_000 session in
        ())
      [ (); (); (); () ];
    Trace.span_set tracers
  in
  let serial = run_batch [ Trace.create () ] (fun _ -> 0) in
  let sharded =
    run_batch [ Trace.create (); Trace.create (); Trace.create () ] (fun i ->
        i mod 3)
  in
  check_bool "span multiset is scheduling-independent" true (serial = sharded)

(* Disabled registry ⇒ disabled journal and tracer: a session created
   with telemetry off must leave both empty (the gating the telemetry
   ablation experiment relies on). *)
let test_disabled_gating () =
  let src = {|
int g;
int main() { g = 7; return g; }
|} in
  let tel = Telemetry.create ~enabled:false () in
  let session = Session.create ~options:o_full ~telemetry:tel src in
  let _ = Session.run ~fuel:1_000_000 session in
  let rep = Audit.report session.Session.audit in
  check_int "no sites journalled" 0 (List.length rep.Audit.a_sites);
  check_int "no spans recorded" 0
    (List.length (Trace.spans session.Session.trace))

let suites =
  [
    ( "audit.partition",
      [
        Alcotest.test_case "matrix300 verdicts partition the plan" `Quick
          test_partition_matrix300;
        Alcotest.test_case "li verdicts partition the plan" `Quick
          test_partition_li;
      ] );
    ( "audit.conservation",
      [
        Alcotest.test_case "unmonitored: zero patched executions" `Quick
          test_conservation_unmonitored;
        Alcotest.test_case "PreMonitor: patched = exec while armed" `Quick
          test_conservation_premonitor;
        Alcotest.test_case "matrix300: patched <= exec, events account"
          `Quick test_conservation_matrix300;
      ] );
    ( "audit.journal",
      [
        Alcotest.test_case "JSON round-trip" `Quick test_audit_json_round_trip;
        Alcotest.test_case "bad schema rejected" `Quick
          test_audit_json_rejects_bad_schema;
        Alcotest.test_case "explain" `Quick test_explain;
        Alcotest.test_case "disabled registry gates audit and trace" `Quick
          test_disabled_gating;
      ] );
    ( "trace.chrome",
      [
        Alcotest.test_case "export well-formed and well-nested" `Quick
          test_chrome_trace_well_formed;
        Alcotest.test_case "span set scheduling-independent" `Quick
          test_span_set_scheduling_independent;
      ] );
  ]
