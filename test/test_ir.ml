open Sparc

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Full front-end pipeline used by several tests: compile mini-C, slice
   out one function, lift, build the CFG with asserts, dominators,
   loops, SSA. *)
type pipeline = {
  tac : Ir.Tac.instr list;
  cfg : Ir.Cfg.t;
  dom : Ir.Dominance.t;
  loops : Ir.Loops.loop list;
  ssa : Ir.Ssa.t;
}

let analyze ?(fname = "main") src =
  let out = Minic.Compile.compile src in
  let slices =
    Ir.Lift.slice_program
      ~function_labels:("_start" :: out.functions)
      out.program.text
  in
  let slice = List.find (fun s -> s.Ir.Lift.fname = fname) slices in
  let tac = Ir.Lift.lift_slice slice in
  let cfg = Ir.Cfg.insert_asserts (Ir.Cfg.build tac) in
  let dom = Ir.Dominance.compute cfg in
  let loops = Ir.Loops.find cfg dom in
  let ssa = Ir.Ssa.construct cfg dom in
  { tac; cfg; dom; loops; ssa }

(* --- lift ----------------------------------------------------------------- *)

let test_lift_shapes () =
  let p = analyze "int g; int main() { g = 1 + 2; return g; }" in
  let stores =
    List.filter (function Ir.Tac.Store _ -> true | _ -> false) p.tac
  in
  check_int "one store" 1 (List.length stores);
  (* Every non-label instruction has an origin. *)
  List.iter
    (fun i ->
      match i with
      | Ir.Tac.Label _ -> ()
      | i -> check_bool "has origin" true (Ir.Tac.origin i <> None))
    p.tac

let test_lift_compare_tracking () =
  let p = analyze "int main() { int i; i = 0; while (i < 9) { i = i + 1; } return i; }" in
  let branches =
    List.filter_map
      (function Ir.Tac.Branch { compare; _ } -> Some compare | _ -> None)
      p.tac
  in
  check_bool "at least one conditional branch" true (branches <> []);
  check_bool "loop branch carries compare" true
    (List.exists (fun c -> c <> None) branches)

let test_lift_save_is_fp_arith () =
  let p = analyze "int main() { return 0; }" in
  let has_sp_def =
    List.exists
      (function
        | Ir.Tac.Def { dst = Ir.Tac.Machine r; rhs = Ir.Tac.Bin (Insn.Add, Ir.Tac.Name (Ir.Tac.Machine r2), Ir.Tac.Imm n); _ }
          ->
          Reg.equal r Reg.sp && Reg.equal r2 Reg.fp && n < 0
        | _ -> false)
      p.tac
  in
  check_bool "save lifted to %sp := %fp - frame" true has_sp_def

(* --- cfg -------------------------------------------------------------------- *)

let test_cfg_diamond () =
  let p =
    analyze "int main() { int x; if (1 < 2) { x = 1; } else { x = 2; } return x; }"
  in
  (* Entry block must reach a block with two successors (the branch). *)
  let has_diamond =
    Array.exists (fun (b : Ir.Cfg.block) -> List.length b.succs = 2) p.cfg.blocks
  in
  check_bool "conditional produces two successors" true has_diamond;
  (* preds/succs must be mutually consistent. *)
  Array.iter
    (fun (b : Ir.Cfg.block) ->
      List.iter
        (fun s ->
          check_bool "succ lists pred" true
            (List.mem b.id (Ir.Cfg.block p.cfg s).preds))
        b.succs;
      List.iter
        (fun pr ->
          check_bool "pred lists succ" true
            (List.mem b.id (Ir.Cfg.block p.cfg pr).succs))
        b.preds)
    p.cfg.blocks

let test_cfg_asserts_present () =
  let p = analyze "int main() { int i; i = 0; while (i < 9) { i = i + 1; } return i; }" in
  let asserts = ref 0 in
  Array.iter
    (fun (b : Ir.Cfg.block) ->
      List.iter
        (function Ir.Tac.Assert _ -> incr asserts | _ -> ())
        b.body)
    p.cfg.blocks;
  check_bool "assert blocks inserted" true (!asserts > 0)

(* --- dominance ---------------------------------------------------------------- *)

let test_dominance_basic () =
  let p =
    analyze
      "int main() { int x; x = 0; if (x < 1) { x = 1; } else { x = 2; } return x; }"
  in
  let entry = p.cfg.entry in
  Array.iter
    (fun (b : Ir.Cfg.block) ->
      if Ir.Dominance.reachable p.dom b.id then begin
        check_bool "entry dominates all" true (Ir.Dominance.dominates p.dom entry b.id);
        check_bool "self domination" true (Ir.Dominance.dominates p.dom b.id b.id)
      end)
    p.cfg.blocks;
  (* The two arms of the diamond do not dominate each other. *)
  let branch_block =
    Array.to_list p.cfg.blocks
    |> List.find (fun (b : Ir.Cfg.block) -> List.length b.succs = 2)
  in
  (match branch_block.succs with
  | [ a; b ] ->
    check_bool "arms do not dominate each other" false
      (Ir.Dominance.dominates p.dom a b || Ir.Dominance.dominates p.dom b a)
  | _ -> Alcotest.fail "expected two successors")

(* --- loops --------------------------------------------------------------------- *)

let test_loops_single () =
  let p = analyze "int main() { int i; for (i = 0; i < 5; i = i + 1) { } return i; }" in
  check_int "one loop" 1 (List.length p.loops);
  let l = List.hd p.loops in
  check_int "depth" 1 l.Ir.Loops.depth;
  check_bool "header in body" true (Ir.Loops.in_loop l l.Ir.Loops.header);
  check_bool "has outside pred" true (l.Ir.Loops.outside_preds <> [])

let test_loops_nested () =
  let p =
    analyze
      "int main() { int i; int j; int n; n = 0; for (i = 0; i < 3; i = i + 1) \
       { for (j = 0; j < 3; j = j + 1) { n = n + 1; } } return n; }"
  in
  check_int "two loops" 2 (List.length p.loops);
  (match p.loops with
  | [ inner; outer ] ->
    check_int "inner depth" 2 inner.Ir.Loops.depth;
    check_int "outer depth" 1 outer.Ir.Loops.depth;
    check_bool "inner first (inside-out order)" true
      (inner.Ir.Loops.depth > outer.Ir.Loops.depth);
    check_bool "nesting" true
      (List.for_all (fun b -> List.mem b outer.Ir.Loops.body) inner.Ir.Loops.body)
  | _ -> Alcotest.fail "expected two loops")

(* --- SSA well-formedness --------------------------------------------------------- *)

let ssa_programs =
  [
    "int main() { int x; x = 1; if (x < 2) { x = 2; } return x; }";
    "int g; int f(int a) { return a + g; } int main() { g = 3; return f(4); }";
    "int main() { int i; int s; s = 0; for (i = 0; i < 9; i = i + 1) { if (i \
     % 2 == 0) { s = s + i; } else { s = s - 1; } } return s; }";
    "int a[10]; int main() { register int i; for (i = 0; i < 10; i = i + 1) \
     { a[i] = i * 3; } return a[5]; }";
    "int main() { int *p; p = malloc(8); *p = 1; while (*p < 5) { *p = *p + \
     2; } return *p; }";
  ]

let test_ssa_unique_defs () =
  List.iter
    (fun src ->
      let p = analyze src in
      let seen = Hashtbl.create 64 in
      Ir.Ssa.iter_instrs p.ssa (fun _ item ->
          let defs =
            match item with
            | `Phi ph -> [ ph.Ir.Ssa.dst ]
            | `Instr i -> Ir.Ssa.instr_defs i
          in
          List.iter
            (fun (v : Ir.Ssa.var) ->
              check_bool "no duplicate definition" false (Hashtbl.mem seen v);
              Hashtbl.replace seen v ())
            defs))
    ssa_programs

let test_ssa_uses_dominated () =
  List.iter
    (fun src ->
      let p = analyze src in
      let def_block = Hashtbl.create 64 in
      Ir.Ssa.iter_instrs p.ssa (fun blk item ->
          let defs =
            match item with
            | `Phi ph -> [ ph.Ir.Ssa.dst ]
            | `Instr i -> Ir.Ssa.instr_defs i
          in
          List.iter (fun v -> Hashtbl.replace def_block v blk) defs);
      Ir.Ssa.iter_instrs p.ssa (fun blk item ->
          match item with
          | `Phi ph ->
            (* A phi argument's definition must dominate the predecessor. *)
            List.iter
              (fun (pred, v) ->
                match Hashtbl.find_opt def_block v with
                | Some db ->
                  check_bool "phi arg def dominates pred" true
                    (Ir.Dominance.dominates p.dom db pred)
                | None -> check_int "entry version" 0 v.Ir.Ssa.version)
              ph.Ir.Ssa.args
          | `Instr i ->
            List.iter
              (fun (v : Ir.Ssa.var) ->
                match Hashtbl.find_opt def_block v with
                | Some db ->
                  check_bool "use dominated by def" true
                    (Ir.Dominance.dominates p.dom db blk)
                | None -> check_int "entry version" 0 v.Ir.Ssa.version)
              (Ir.Ssa.instr_uses i)))
    ssa_programs

let test_ssa_phi_args_match_preds () =
  List.iter
    (fun src ->
      let p = analyze src in
      Array.iteri
        (fun id (b : Ir.Ssa.block) ->
          let preds =
            List.filter
              (fun pr -> Ir.Dominance.reachable p.dom pr)
              (Ir.Cfg.block p.cfg id).preds
          in
          List.iter
            (fun (ph : Ir.Ssa.phi) ->
              check_int "one arg per reachable pred" (List.length preds)
                (List.length ph.args);
              List.iter
                (fun (pred, _) -> check_bool "arg pred is a pred" true (List.mem pred preds))
                ph.args)
            b.phis)
        p.ssa.blocks)
    ssa_programs

(* --- bounds ------------------------------------------------------------------ *)

let test_monotonic_register_loop () =
  let p =
    analyze
      "int a[100]; int main() { register int i; for (i = 0; i < 100; i = i + \
       1) { a[i] = i; } return 0; }"
  in
  check_int "one loop" 1 (List.length p.loops);
  let l = List.hd p.loops in
  let groups = Ir.Bounds.monotonic_groups p.ssa l in
  check_bool "induction variable found" true
    (List.exists (fun g -> g.Ir.Bounds.direction = Ir.Bounds.Increasing) groups)

let test_monotonic_decreasing () =
  let p =
    analyze
      "int a[100]; int main() { register int i; for (i = 99; i >= 0; i = i - \
       1) { a[i] = i; } return 0; }"
  in
  let l = List.hd p.loops in
  let groups = Ir.Bounds.monotonic_groups p.ssa l in
  check_bool "decreasing induction found" true
    (List.exists (fun g -> g.Ir.Bounds.direction = Ir.Bounds.Decreasing) groups)

let dispositions_of p l =
  let env, _ = Ir.Bounds.propagate p.ssa l in
  Ir.Bounds.dispositions p.ssa l env

let test_range_disposition () =
  let p =
    analyze
      "int a[100]; int main() { register int i; for (i = 0; i < 100; i = i + \
       1) { a[i] = 7; } return 0; }"
  in
  let decisions = dispositions_of p (List.hd p.loops) in
  let ranges =
    List.filter
      (fun (d : Ir.Bounds.store_decision) ->
        match d.disposition with Ir.Bounds.Range _ -> true | _ -> false)
      decisions
  in
  check_bool "array store gets a range check" true (ranges <> [])

let test_invariant_disposition () =
  let p =
    analyze
      "int g; int main() { register int i; for (i = 0; i < 50; i = i + 1) { \
       g = i; } return g; }"
  in
  let decisions = dispositions_of p (List.hd p.loops) in
  let invariants =
    List.filter
      (fun (d : Ir.Bounds.store_decision) ->
        match d.disposition with Ir.Bounds.Invariant _ -> true | _ -> false)
      decisions
  in
  check_bool "global store in loop is invariant-movable" true (invariants <> [])

let test_keep_disposition () =
  (* Address loaded from memory every iteration: unknown, must keep. *)
  let p =
    analyze
      "int main() { int *p; register int i; p = malloc(400); for (i = 0; i < \
       100; i = i + 1) { p[i] = i; p = p; } return 0; }"
  in
  let decisions = dispositions_of p (List.hd p.loops) in
  check_bool "stores through reloaded pointer kept" true
    (List.exists
       (fun (d : Ir.Bounds.store_decision) -> d.disposition = Ir.Bounds.Keep)
       decisions)

let test_range_bounds_shape () =
  (* The range expressions must be evaluable in the pre-header. *)
  let p =
    analyze
      "int a[64]; int main() { register int i; for (i = 0; i < 64; i = i + \
       1) { a[i] = 1; } return 0; }"
  in
  let l = List.hd p.loops in
  let decisions = dispositions_of p l in
  List.iter
    (fun (d : Ir.Bounds.store_decision) ->
      match d.disposition with
      | Ir.Bounds.Range { lo; hi; _ } ->
        check_bool "lo evaluable" true (Ir.Bounds.evaluable p.ssa l lo);
        check_bool "hi evaluable" true (Ir.Bounds.evaluable p.ssa l hi)
      | Ir.Bounds.Invariant { expr; _ } ->
        check_bool "inv evaluable" true (Ir.Bounds.evaluable p.ssa l expr)
      | Ir.Bounds.Keep -> ())
    decisions

let test_no_bound_without_assert () =
  (* Infinite loop: i has no upper bound, so a[i] cannot be ranged. *)
  let p =
    analyze
      "int a[8]; int main() { register int i; i = 0; while (1) { a[i & 7] = \
       i; i = i + 1; if (i == 3) { return 0; } } }"
  in
  match p.loops with
  | [] -> ()  (* acceptable: loop may be broken by the return *)
  | l :: _ ->
    let decisions = dispositions_of p l in
    (* a[i & 7] is range-checkable via the And rule even without an
       assert on i; the raw store to a[i] would not be.  Just require
       no crash and evaluable bounds. *)
    List.iter
      (fun (d : Ir.Bounds.store_decision) ->
        match d.disposition with
        | Ir.Bounds.Range { lo; hi; _ } ->
          check_bool "lo evaluable" true (Ir.Bounds.evaluable p.ssa l lo);
          check_bool "hi evaluable" true (Ir.Bounds.evaluable p.ssa l hi)
        | _ -> ())
      decisions

let test_call_in_loop_blocks_motion () =
  (* A call inside the loop may rewrite matched globals, so a store
     whose bound depends on one must stay checked when the analysis is
     given the global as a call-clobbered pseudo.  Here the array write
     is still range-checkable (its bounds come from the loop bounds),
    but a store through a pointer loaded from a global is not. *)
  let src =
    "int g; int bump() { g = g + 1; return g; } int main() { register int      i; int a[8]; for (i = 0; i < 8; i = i + 1) { a[i & 7] = bump(); }      return a[0]; }"
  in
  let p = analyze src in
  match p.loops with
  | [] -> Alcotest.fail "expected a loop"
  | l :: _ ->
    let decisions = dispositions_of p l in
    (* The a[i&7] store's address does not depend on the call. *)
    check_bool "some disposition computed" true (decisions <> [])

let test_nested_inner_then_outer () =
  (* The inner loop's stores get range checks from the inner analysis;
     re-analyzing the outer loop must not double-count them (the driver
     passes the already-eliminated set). *)
  let p =
    analyze
      "int a[64]; int main() { register int i; register int j; for (i = 0;        i < 8; i = i + 1) { for (j = 0; j < 8; j = j + 1) { a[i * 8 + j] = j;        } } return a[9]; }"
  in
  (match p.loops with
  | [ inner; outer ] ->
    check_bool "inner first" true (inner.Ir.Loops.depth > outer.Ir.Loops.depth);
    let inner_dec = dispositions_of p inner in
    let ranged =
      List.filter
        (fun (d : Ir.Bounds.store_decision) ->
          match d.disposition with Ir.Bounds.Range _ -> true | _ -> false)
        inner_dec
    in
    check_bool "inner loop ranges the store" true (ranged <> [])
  | _ -> Alcotest.fail "expected two loops")

let test_monotonic_stride () =
  (* Non-unit uniform strides are monotonic too (nasker's GMTRY). *)
  let p =
    analyze
      "int a[100]; int main() { register int i; for (i = 0; i < 100; i = i        + 3) { a[i] = i; } return 0; }"
  in
  let l = List.hd p.loops in
  check_bool "stride-3 induction found" true
    (List.exists
       (fun g -> g.Ir.Bounds.direction = Ir.Bounds.Increasing)
       (Ir.Bounds.monotonic_groups p.ssa l))

let test_non_uniform_not_monotonic () =
  (* A variable that sometimes decreases is not monotonic. *)
  let p =
    analyze
      "int a[100]; int main() { register int i; register int k; k = 0; for        (i = 0; i < 50; i = i + 1) { if (i & 1) { k = k + 3; } else { k = k -        1; } a[k & 63] = i; } return 0; }"
  in
  let l = List.hd p.loops in
  let groups = Ir.Bounds.monotonic_groups p.ssa l in
  (* i is monotonic; k must not be reported as a group. *)
  check_int "only the loop counter" 1 (List.length groups)

(* --- bound-expression normal form ----------------------------------------- *)

(* [Bounds.normalize] claims a canonical linear-combination form under
   the machine's wrapping 32-bit arithmetic; these properties pin the
   two halves of that claim on random expressions: the form is a fixed
   point, and it preserves (and [bexpr_equal] respects) the
   expression's value as a Word-valued function of its atoms. *)

let bexpr_atoms = [ "a"; "b"; "c" ]

let bexpr_var name version =
  Ir.Bounds.Bvar { Ir.Ssa.name = Ir.Tac.Pseudo name; version }

let bexpr_gen =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map (fun c -> Ir.Bounds.Bconst c) (int_range (-2048) 2048);
        map2
          (fun l o -> Ir.Bounds.Blab (l, o))
          (oneofl bexpr_atoms) (int_range (-64) 64);
        map2 bexpr_var (oneofl bexpr_atoms) (int_range 0 2);
      ]
  in
  sized
  @@ fix (fun self n ->
         if n <= 0 then leaf
         else
           frequency
             [
               (1, leaf);
               ( 2,
                 map2
                   (fun a b -> Ir.Bounds.Badd (a, b))
                   (self (n / 2)) (self (n / 2)) );
               ( 2,
                 map2
                   (fun a b -> Ir.Bounds.Bsub (a, b))
                   (self (n / 2)) (self (n / 2)) );
               ( 1,
                 map2
                   (fun a c -> Ir.Bounds.Bmul (a, c))
                   (self (n / 2)) (int_range (-16) 16) );
               ( 1,
                 map2
                   (fun a c -> Ir.Bounds.Bshl (a, c))
                   (self (n / 2)) (int_range 0 8) );
             ])

let bexpr_arb =
  QCheck.make ~print:(Fmt.str "%a" Ir.Bounds.pp_bexpr) bexpr_gen

(* An environment assigns one Word to each atom: label [l] evaluates
   to env(l), and every version of variable [v] to env(v) — the same
   value space normalize's coefficient arithmetic lives in. *)
let bexpr_eval env e =
  let module W = Sparc.Word in
  let atom name = List.assoc name env in
  let rec go = function
    | Ir.Bounds.Bconst c -> W.norm c
    | Ir.Bounds.Blab (l, o) -> W.add (atom l) o
    | Ir.Bounds.Bvar v -> (
      match v.Ir.Ssa.name with
      | Ir.Tac.Pseudo n -> atom n
      | Ir.Tac.Machine _ -> 0)
    | Ir.Bounds.Badd (a, b) -> W.add (go a) (go b)
    | Ir.Bounds.Bsub (a, b) -> W.sub (go a) (go b)
    | Ir.Bounds.Bmul (a, c) -> W.mul (go a) c
    | Ir.Bounds.Bshl (a, c) -> W.sll (go a) c
  in
  go e

let env_gen =
  QCheck.Gen.(
    map
      (fun vals -> List.combine bexpr_atoms vals)
      (flatten_l
         (List.map (fun _ -> int_range (-1073741824) 1073741823) bexpr_atoms)))

let prop_normalize_idempotent =
  QCheck.Test.make ~name:"normalize is idempotent" ~count:500 bexpr_arb
    (fun e ->
      let n = Ir.Bounds.normalize e in
      n = Ir.Bounds.normalize n)

let prop_normalize_preserves_value =
  QCheck.Test.make ~name:"normalize preserves evaluation" ~count:500
    (QCheck.make
       QCheck.Gen.(pair bexpr_gen env_gen)
       ~print:(fun (e, _) -> Fmt.str "%a" Ir.Bounds.pp_bexpr e))
    (fun (e, env) ->
      bexpr_eval env e = bexpr_eval env (Ir.Bounds.normalize e))

(* bexpr_equal must identify rearrangements (sound completeness on the
   linear fragment) and must never identify expressions an evaluation
   can tell apart. *)
let prop_bexpr_equal_commutes =
  QCheck.Test.make ~name:"bexpr_equal identifies rearrangements" ~count:500
    (QCheck.make QCheck.Gen.(pair bexpr_gen bexpr_gen))
    (fun (a, b) ->
      Ir.Bounds.bexpr_equal
        (Ir.Bounds.Badd (a, b))
        (Ir.Bounds.Bsub (Ir.Bounds.Badd (b, Ir.Bounds.Badd (a, a)), a)))

let prop_bexpr_equal_sound =
  QCheck.Test.make ~name:"bexpr_equal agrees with evaluation" ~count:500
    (QCheck.make QCheck.Gen.(triple bexpr_gen bexpr_gen env_gen))
    (fun (a, b, env) ->
      (not (Ir.Bounds.bexpr_equal a b))
      || bexpr_eval env a = bexpr_eval env b)

let normalize_qchecks =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_normalize_idempotent;
      prop_normalize_preserves_value;
      prop_bexpr_equal_commutes;
      prop_bexpr_equal_sound;
    ]

let suites =
  [
    ( "ir.lift",
      [
        Alcotest.test_case "shapes and origins" `Quick test_lift_shapes;
        Alcotest.test_case "compare tracking" `Quick test_lift_compare_tracking;
        Alcotest.test_case "save becomes fp arithmetic" `Quick test_lift_save_is_fp_arith;
      ] );
    ( "ir.cfg",
      [
        Alcotest.test_case "diamond consistency" `Quick test_cfg_diamond;
        Alcotest.test_case "asserts inserted" `Quick test_cfg_asserts_present;
      ] );
    ("ir.dominance", [ Alcotest.test_case "basics" `Quick test_dominance_basic ]);
    ( "ir.loops",
      [
        Alcotest.test_case "single loop" `Quick test_loops_single;
        Alcotest.test_case "nested loops" `Quick test_loops_nested;
      ] );
    ( "ir.ssa",
      [
        Alcotest.test_case "unique definitions" `Quick test_ssa_unique_defs;
        Alcotest.test_case "uses dominated by defs" `Quick test_ssa_uses_dominated;
        Alcotest.test_case "phi args match preds" `Quick test_ssa_phi_args_match_preds;
      ] );
    ( "ir.bounds",
      [
        Alcotest.test_case "monotonic increasing" `Quick test_monotonic_register_loop;
        Alcotest.test_case "monotonic decreasing" `Quick test_monotonic_decreasing;
        Alcotest.test_case "range disposition" `Quick test_range_disposition;
        Alcotest.test_case "invariant disposition" `Quick test_invariant_disposition;
        Alcotest.test_case "keep disposition" `Quick test_keep_disposition;
        Alcotest.test_case "bounds evaluable in preheader" `Quick test_range_bounds_shape;
        Alcotest.test_case "masked index bounded" `Quick test_no_bound_without_assert;
        Alcotest.test_case "call in loop" `Quick test_call_in_loop_blocks_motion;
        Alcotest.test_case "nested inner-then-outer" `Quick test_nested_inner_then_outer;
        Alcotest.test_case "stride-3 monotonic" `Quick test_monotonic_stride;
        Alcotest.test_case "non-uniform not monotonic" `Quick
          test_non_uniform_not_monotonic;
      ] );
    ("ir.bounds.normalize", normalize_qchecks);
  ]
