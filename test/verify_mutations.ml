(* The verifier's own gate: on a pristine pipeline every obligation is
   proved, the verifier's covered-site set agrees exactly with the
   audit journal, and every seeded mutation of the plan (or of its
   journal) is refuted.  A surviving mutant means a missing proof
   obligation; an Unknown on a pristine workload means the candidate
   engine lost precision. *)

open Dbp

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let o_full = { Instrument.default_options with opt = Instrument.O_full }

let workload name =
  match Workloads.Spec.find name with
  | Some w -> w
  | None -> Alcotest.failf "no workload named %s" name

(* Instrumenting a workload at O_full is pure analysis (no execution)
   but still costs a compile + pipeline; share one session per
   workload across the whole suite. *)
let sessions : (string, Session.t) Hashtbl.t = Hashtbl.create 16

let session_for name =
  match Hashtbl.find_opt sessions name with
  | Some s -> s
  | None ->
    let w = workload name in
    let s = Session.create ~options:o_full w.Workloads.Workload.source in
    Hashtbl.add sessions name s;
    s

let verified name =
  let s = session_for name in
  Verify.run ~audit:(Audit.report s.Session.audit) s.Session.plan

let all_names =
  List.map (fun (w : Workloads.Workload.t) -> w.name) Workloads.Spec.all

(* --- pristine proofs -------------------------------------------------------------- *)

let test_pristine name () =
  let rep = verified name in
  check_bool "has obligations" true (rep.Verify.v_obligations <> []);
  List.iter
    (fun (o : Verify.obligation) ->
      match o.Verify.o_verdict with
      | Verify.Proved -> ()
      | v ->
        Alcotest.failf "%s: obligation %d (%s) %s" name o.Verify.o_id
          o.Verify.o_kind
          (Verify.verdict_name v))
    rep.Verify.v_obligations;
  check_bool "report ok" true (Verify.ok rep)

let test_summary_shape () =
  let rep = verified "030.matrix300" in
  let line = Verify.summary_line rep in
  check_bool "clean summary names zero failures" true
    (let sub = "refuted=0 unknown=0" in
     let rec find i =
       i + String.length sub <= String.length line
       && (String.equal (String.sub line i (String.length sub)) sub
          || find (i + 1))
     in
     find 0);
  check_string "schema pinned" "dbp-verify/1" rep.Verify.v_schema

(* --- audit cross-check ------------------------------------------------------------ *)

(* The verifier's per-site obligations (sym/inv/rng origins) must name
   exactly the sites the journal says lost their checks — no site
   verified that was not eliminated, none eliminated but unverified. *)
let test_audit_crosscheck name () =
  let s = session_for name in
  let rep = verified name in
  let journal = Audit.report s.Session.audit in
  let eliminated =
    List.filter_map
      (fun (a : Audit.site) ->
        match a.Audit.a_verdict with
        | Audit.Kept -> None
        | _ -> Some a.Audit.a_origin)
      journal.Audit.a_sites
    |> List.sort_uniq compare
  in
  check_int
    (name ^ ": one covered origin per non-Kept journal site")
    (List.length eliminated)
    (List.length (Verify.covered_origins rep));
  List.iter2
    (fun a b -> check_int (name ^ ": covered origin") a b)
    eliminated
    (Verify.covered_origins rep)

(* --- mutation kills --------------------------------------------------------------- *)

(* Workloads chosen so that every operator applies on at least one:
   matrix300 has range checks, loop plans and sym matches; espresso
   adds invariant checks and multiple plans; li is the sym-heavy,
   no-loop-plan case. *)
let mutation_workloads = [ "030.matrix300"; "008.espresso"; "022.li" ]

let test_mutant_killed (m : Verify_mutate.mutant) () =
  let applied =
    List.filter_map
      (fun name ->
        let s = session_for name in
        let audit = Some (Audit.report s.Session.audit) in
        match m.Verify_mutate.m_apply s.Session.plan audit with
        | None -> None
        | Some (inst', audit') ->
          let rep = Verify.run ?audit:audit' inst' in
          Some (name, rep))
      mutation_workloads
  in
  check_bool
    (m.Verify_mutate.m_name ^ " applies to some mutation workload")
    true (applied <> []);
  List.iter
    (fun (name, (rep : Verify.report)) ->
      if rep.Verify.v_refuted = 0 then
        Alcotest.failf "mutant %s survived on %s: %s"
          m.Verify_mutate.m_name name (Verify.summary_line rep))
    applied

(* --- golden renderings ------------------------------------------------------------ *)

let render_checks (inst : Instrument.t) =
  List.concat_map
    (fun (p : Loopopt.loop_plan) ->
      List.map
        (fun c ->
          Fmt.str "%s/%d: %a" p.Loopopt.fname p.Loopopt.loop_id
            Loopopt.pp_check c)
        p.Loopopt.checks)
    inst.Instrument.loop_plans

(* matrix300's three pre-header checks, exactly as the planner renders
   them (the same strings the audit journal and --explain print). *)
let test_golden_checks_matrix300 () =
  let s = session_for "030.matrix300" in
  let got = render_checks s.Session.plan in
  let want =
    [
      "init/1: rng@28((&b + ($init.i.1 << 2))@Lm, &b+1932@La)";
      "init/1: rng@20((&a + ($init.i.1 << 2))@Lm, &a+1932@La)";
      "matmul/2: rng@102((&c + ((($matmul.i.3 * 22) + $matmul.j.2) << 2))@Lm, \
       (&c + ((($matmul.i.3 * 22) + 21) << 2))@La)";
    ]
  in
  check_int "three checks" (List.length want) (List.length got);
  List.iter2 (fun w g -> check_string "check rendering" w g) want got

let obligation_lines rep n =
  List.filteri (fun i _ -> i < n) rep.Verify.v_obligations
  |> List.map (Fmt.str "%a" Verify.pp_obligation)

let test_golden_obligations_matrix300 () =
  let rep = verified "030.matrix300" in
  let want =
    [
      "#000 preheader  loop=1: proved [init: guarded entry trap 1 before \
       header item 10]";
      "#001 coverage   loop=1: proved [2 eliminated site(s), 2 pre-header \
       check(s)]";
      "#002 dominance  loop=1: proved [header 1 covers 2 store(s)]";
      "#003 alias      loop=1: proved [alias pseudos: [init.i]]";
      "#004 rng        origin=28 loop=1: proved [rng@28((&b + ($init.i.1 \
       << 2))@Lm, &b+1932@La)]";
    ]
  in
  List.iter2
    (fun w g -> check_string "obligation rendering" w g)
    want
    (obligation_lines rep (List.length want))

let test_golden_obligations_li () =
  let rep = verified "022.li" in
  let want =
    [
      "#000 sym        origin=15 pseudo=seed: proved [slot 0 in next_rand]";
      "#001 sym        origin=30 pseudo=num_ptr.v: proved [slot 1 in num_ptr]";
      "#002 sym        origin=36 pseudo=num_ptr.c: proved [slot 2 in num_ptr]";
    ]
  in
  List.iter2
    (fun w g -> check_string "obligation rendering" w g)
    want
    (obligation_lines rep (List.length want))

(* --- JSON round-trip shape -------------------------------------------------------- *)

let test_json_shape () =
  let rep = verified "030.matrix300" in
  match Export.json_of_string (Verify.to_json_string ~indent:1 rep) with
  | Export.Obj fields ->
    check_bool "schema field" true
      (List.assoc_opt "schema" fields = Some (Export.Str "dbp-verify/1"));
    (match List.assoc_opt "obligations" fields with
    | Some (Export.List obs) ->
      check_int "one JSON entry per obligation"
        (List.length rep.Verify.v_obligations)
        (List.length obs)
    | _ -> Alcotest.fail "obligations list missing")
  | _ -> Alcotest.fail "verify JSON is not an object"

let suites =
  [
    ( "verify.pristine",
      List.map
        (fun name ->
          Alcotest.test_case name `Quick (test_pristine name))
        all_names
      @ [ Alcotest.test_case "summary shape" `Quick test_summary_shape ] );
    ( "verify.audit",
      List.map
        (fun name ->
          Alcotest.test_case ("crosscheck " ^ name) `Quick
            (test_audit_crosscheck name))
        all_names );
    ( "verify.mutation",
      List.map
        (fun (m : Verify_mutate.mutant) ->
          Alcotest.test_case
            ("kills " ^ m.Verify_mutate.m_name)
            `Quick (test_mutant_killed m))
        Verify_mutate.all );
    ( "verify.golden",
      [
        Alcotest.test_case "matrix300 checks" `Quick
          test_golden_checks_matrix300;
        Alcotest.test_case "matrix300 obligations" `Quick
          test_golden_obligations_matrix300;
        Alcotest.test_case "li obligations" `Quick
          test_golden_obligations_li;
        Alcotest.test_case "json shape" `Quick test_json_shape;
      ] );
  ]
