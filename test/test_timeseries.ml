open Dbp

(* Tests for the time-series telemetry subsystem: sample-ring
   conservation against the end-of-run registry, sampler/heatmap
   pause around replay queries, the zero-added-work contract when
   sampling is off, the v5 report round-trip and the sample-ring merge
   invariant (concatenate, then sort), windowed rate summaries, the
   address-space heatmap's page accounting and renders, the Prometheus
   exposition lint, and the in-process scrape endpoint. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let counter rep name =
  match List.assoc_opt name rep.Telemetry.r_counters with
  | Some v -> v
  | None -> Alcotest.failf "report has no counter %S" name

let options =
  { Instrument.default_options with strategy = Strategy.Bitmap_inline_registers }

let loop_src =
  "int g; int a[64];\n\
   int main() {\n\
  \  int i; int j;\n\
  \  for (j = 0; j < 40; j = j + 1) {\n\
  \    for (i = 0; i < 64; i = i + 1) { a[i] = a[i] + j; g = g + 1; }\n\
  \  }\n\
  \  return 0;\n\
   }\n"

let run_sampled ?checkpoint_every ?(sample_every = 1_000) ?(heatmap = true) src
    =
  let session =
    Session.create ~options ?checkpoint_every ~sample_every ~heatmap src
  in
  Mrs.enable session.Session.mrs;
  let code, _ = Session.run ~fuel:20_000_000 session in
  check_int "exit" 0 code;
  session

(* --- conservation ------------------------------------------------------------ *)

(* The ring's last sample must equal the end-of-run registry values for
   every sampled metric, and the heatmap's per-page write counts must
   sum to the machine's store total (published as [store_execs]). *)
let test_conservation () =
  let session = run_sampled loop_src in
  let rep = Session.report session in
  let t = session.Session.telemetry in
  check_int "sample interval in report" 1_000 rep.Telemetry.r_sample_every;
  Alcotest.(check (list string))
    "metric set"
    [ "check_execs"; "user_hits"; "cache_misses"; "checkpoint_bytes";
      "replayed_instrs" ]
    rep.Telemetry.r_sample_metrics;
  let samples = rep.Telemetry.r_samples in
  check_bool "has samples" true (samples <> []);
  (* Samples land on the interval grid (except the final closing one)
     and are strictly increasing. *)
  let rec strictly_increasing = function
    | a :: (b :: _ as rest) ->
      (a : Telemetry.sample).s_insn < b.Telemetry.s_insn
      && strictly_increasing rest
    | _ -> true
  in
  check_bool "strictly increasing" true (strictly_increasing samples);
  let rec all_but_last = function
    | [] | [ _ ] -> []
    | x :: rest -> x :: all_but_last rest
  in
  List.iter
    (fun (s : Telemetry.sample) ->
      check_int
        (Printf.sprintf "sample at insn %d on the grid" s.s_insn)
        0 (s.s_insn mod 1_000))
    (all_but_last samples);
  (* Last sample = end-of-run registry values, metric by metric. *)
  let last = List.nth samples (List.length samples - 1) in
  let expect =
    [
      ("check_execs", Telemetry.current t Telemetry.Check_execs);
      ("user_hits", Telemetry.current t Telemetry.User_hits);
      ("cache_misses", Telemetry.typed_total t Telemetry.Cache_misses_by_type);
      ("checkpoint_bytes", Telemetry.current t Telemetry.Checkpoint_bytes);
      ("replayed_instrs", Telemetry.current t Telemetry.Replayed_instrs);
    ]
  in
  List.iter
    (fun (name, v) ->
      check_int ("last sample " ^ name) v
        (match List.assoc_opt name last.Telemetry.s_values with
        | Some x -> x
        | None -> Alcotest.failf "last sample has no metric %S" name))
    expect;
  check_int "last sample closes at the final instruction"
    (Machine.Cpu.instr_count session.Session.cpu)
    last.Telemetry.s_insn;
  (* Ring accounting: every push is either retained or counted dropped. *)
  check_int "samples_taken = retained + dropped"
    (counter rep "samples_taken")
    (List.length samples + rep.Telemetry.r_samples_dropped);
  (* Heatmap conservation: page-painted stores sum to the machine's
     store total, and hit density to the MRS's user hits. *)
  let hm = Option.get session.Session.heatmap in
  let stats = Session.stats session in
  check_int "heatmap writes = stats.stores" stats.Machine.Cpu.stores
    (Heatmap.total_writes hm);
  check_int "heatmap writes = store_execs counter"
    (counter rep "store_execs")
    (Heatmap.total_writes hm);
  check_int "heatmap hits = user hits"
    (Telemetry.current t Telemetry.User_hits)
    (Heatmap.total_hits hm);
  check_bool "checks painted" true (Heatmap.total_checks hm > 0);
  check_bool "checks never exceed writes" true
    (Heatmap.total_checks hm <= Heatmap.total_writes hm);
  (* Monitored marks: the watched globals' page carries hits, so no
     monitored page is silent on this workload. *)
  Session.heatmap_sync_regions session;
  check_int "no monitored page is silent" 0
    (List.length (Heatmap.never_fired hm));
  (* Reports are idempotent: a second freeze adds no phantom samples. *)
  let rep2 = Session.report session in
  check_bool "second report identical" true (rep = rep2)

(* --- replay queries leave the series alone ----------------------------------- *)

(* A retroactive query rolls the machine back and re-executes; the
   sampler and heatmap pause, so the sample ring and page counts are
   byte-identical before and after — and the monotonic [store_execs]
   gauge keeps conserving against the heatmap. *)
let test_replay_pauses_observers () =
  let session = run_sampled ~checkpoint_every:2_000 loop_src in
  let rep1 = Session.report session in
  let hm = Option.get session.Session.heatmap in
  let writes1 = Heatmap.total_writes hm in
  let addr =
    match Session.resolve_addr session "g" with
    | Some a -> a
    | None -> Alcotest.fail "cannot resolve g"
  in
  (match Session.last_write session ~addr with
  | Some { Session.wr_hit = h; _ } ->
    check_bool "last write found a store" true (h.Replay.h_new > 0)
  | None -> Alcotest.fail "g was written but last_write found nothing");
  let rep2 = Session.report session in
  check_bool "sample ring unchanged by replay" true
    (rep1.Telemetry.r_samples = rep2.Telemetry.r_samples);
  check_int "heatmap writes unchanged by replay" writes1
    (Heatmap.total_writes hm);
  check_int "store_execs gauge survives the rollback"
    (counter rep1 "store_execs")
    (counter rep2 "store_execs");
  check_bool "replayed instructions were counted" true
    (counter rep2 "replayed_instrs" > 0)

(* --- zero added work when disabled ------------------------------------------- *)

(* Sampling and the heatmap must not perturb the simulated machine: a
   sampled and an unsampled run agree on every architectural stat. *)
let test_stats_parity () =
  let run sample =
    let session =
      if sample then
        Session.create ~options ~sample_every:500 ~heatmap:true loop_src
      else Session.create ~options loop_src
    in
    Mrs.enable session.Session.mrs;
    let code, _ = Session.run ~fuel:20_000_000 session in
    (code, Machine.Cpu.stats session.Session.cpu)
  in
  let code_on, on = run true in
  let code_off, off = run false in
  check_int "exit" code_off code_on;
  check_bool "stats identical with sampling on" true (on = off)

let test_bad_intervals_rejected () =
  let t = Telemetry.create () in
  check_bool "every = 0 rejected" true
    (match
       Timeseries.create ~every:0 ~registry:t ~metrics:[] ()
     with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let rep = Telemetry.report t in
  check_bool "window = 0 rejected" true
    (match Timeseries.summarize ~window:0 rep with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- windowed summaries ------------------------------------------------------- *)

let report_with_samples ?(capacity = 16) ?(every = 50)
    ?(metrics = [ "m" ]) samples =
  let t = Telemetry.create () in
  Telemetry.set_sample_capacity t capacity;
  Telemetry.set_sample_meta t ~every ~metrics;
  List.iter
    (fun (insn, values) ->
      Telemetry.record_sample t { Telemetry.s_insn = insn; s_values = values })
    samples;
  Telemetry.report t

let test_summarize_windows () =
  let rep =
    report_with_samples
      [
        (50, [ ("m", 5) ]);
        (100, [ ("m", 10) ]);
        (150, [ ("m", 25) ]);
        (250, [ ("m", 30) ]);
      ]
  in
  match Timeseries.summarize ~window:100 rep with
  | [ s ] ->
    check_string "metric" "m" s.Timeseries.ws_metric;
    check_int "window" 100 s.Timeseries.ws_window;
    check_int "windows cover the run" 3 s.Timeseries.ws_windows;
    check_int "total is the final value" 30 s.Timeseries.ws_total;
    (* Window 1 holds samples at insn 100 and 150; its boundary value
       25 minus window 0's 5 is the peak increment. *)
    check_int "peak increment" 20 s.Timeseries.ws_peak;
    check_int "peak window" 1 s.Timeseries.ws_peak_window;
    check_bool "mean = total / windows" true
      (Timeseries.mean_per_window s = 10.)
  | l -> Alcotest.failf "expected one summary, got %d" (List.length l)

let test_summarize_empty () =
  let rep = report_with_samples [] in
  check_bool "no samples, no summaries" true
    (Timeseries.summarize rep = [])

let test_timeseries_json () =
  let rep =
    report_with_samples [ (50, [ ("m", 5) ]); (100, [ ("m", 9) ]) ]
  in
  let s = Timeseries.to_json_string rep in
  check_bool "schema stamped" true
    (match Timeseries.to_json rep with
    | Export.Obj fields ->
      List.assoc_opt "schema" fields
      = Some (Export.Str Timeseries.schema_version)
    | _ -> false);
  check_string "rendering is deterministic" s (Timeseries.to_json_string rep)

(* --- v5 report round-trip and merge ------------------------------------------ *)

let test_v5_round_trip () =
  let t = Telemetry.create ~ring_capacity:2 () in
  Telemetry.set_tag t "strategy" "bitmap";
  Telemetry.incr t Telemetry.User_hits;
  Telemetry.incr_typed t Telemetry.Cache_misses_by_type 1;
  Telemetry.set_sample_capacity t 2;
  Telemetry.set_sample_meta t ~every:50 ~metrics:[ "m"; "n" ];
  (* Three pushes into a 2-slot ring: one sample drops, so the dropped
     count round-trips too. *)
  List.iter
    (fun (insn, v) ->
      Telemetry.record_sample t
        { Telemetry.s_insn = insn; s_values = [ ("m", v); ("n", 2 * v) ] })
    [ (50, 1); (100, 2); (150, 3) ];
  let rep = Telemetry.report t in
  check_string "schema is v5 or later" "dbp-telemetry/6" rep.Telemetry.r_schema;
  check_int "one sample dropped" 1 rep.Telemetry.r_samples_dropped;
  check_int "two retained" 2 (List.length rep.Telemetry.r_samples);
  let s = Export.to_json_string ~indent:1 rep in
  check_bool "v5 report survives JSON round-trip" true
    (Export.of_json_string s = rep);
  (* A prior-version document must be rejected, not half-parsed. *)
  let broken =
    match Export.to_json rep with
    | Export.Obj fields ->
      Export.Obj
        (List.map
           (fun (k, v) ->
             if k = "schema" then (k, Export.Str "dbp-telemetry/4") else (k, v))
           fields)
    | _ -> Alcotest.fail "report JSON is not an object"
  in
  check_bool "v4 schema rejected" true
    (match Export.of_json broken with
    | exception Export.Parse_error _ -> true
    | _ -> false)

let test_merge_samples () =
  let a =
    report_with_samples ~every:50 [ (100, [ ("m", 2) ]); (200, [ ("m", 4) ]) ]
  in
  let b =
    report_with_samples ~every:50 [ (50, [ ("m", 1) ]); (150, [ ("m", 3) ]) ]
  in
  let m1 = Telemetry.merge [ a; b ] and m2 = Telemetry.merge [ b; a ] in
  check_bool "merge order-independent" true (m1 = m2);
  Alcotest.(check (list int))
    "samples sorted by instruction count" [ 50; 100; 150; 200 ]
    (List.map (fun (s : Telemetry.sample) -> s.s_insn) m1.Telemetry.r_samples);
  check_int "agreeing intervals survive" 50 m1.Telemetry.r_sample_every;
  (* Disagreeing intervals collapse to 0 (unset). *)
  let c = report_with_samples ~every:75 [ (75, [ ("m", 1) ]) ] in
  check_int "disagreeing intervals collapse" 0
    (Telemetry.merge [ a; c ]).Telemetry.r_sample_every;
  (* Dropped counts add. *)
  let d =
    report_with_samples ~capacity:1 ~every:50
      [ (10, [ ("m", 1) ]); (20, [ ("m", 2) ]) ]
  in
  check_int "dropped counts add" 1
    (Telemetry.merge [ a; d ]).Telemetry.r_samples_dropped

(* --- heatmap unit behavior ---------------------------------------------------- *)

let test_heatmap_pages () =
  let hm = Heatmap.create ~page_bits:12 () in
  check_int "page bytes" 4096 (Heatmap.page_bytes hm);
  Heatmap.record_write hm 0x1000;
  Heatmap.record_write hm 0x1fff;
  Heatmap.record_write hm 0x2000;
  Heatmap.record_check hm 0x1004;
  Heatmap.record_hit hm 0x2004;
  check_int "two touched pages" 2 (Heatmap.n_pages hm);
  check_int "writes" 3 (Heatmap.total_writes hm);
  check_int "checks" 1 (Heatmap.total_checks hm);
  check_int "hits" 1 (Heatmap.total_hits hm);
  (* A monitored range spanning a page boundary paints both pages; the
     one without hits is reported never-fired. *)
  Heatmap.mark_monitored hm ~lo:0x1ff0 ~hi:0x2008;
  Alcotest.(check (list int)) "never-fired monitored page" [ 1 ]
    (Heatmap.never_fired hm);
  check_bool "bad page_bits rejected" true
    (match Heatmap.create ~page_bits:0 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_heatmap_renders () =
  let hm = Heatmap.create ~page_bits:12 () in
  Heatmap.record_write hm 0x1000;
  Heatmap.record_write hm 0x5000;
  Heatmap.record_check hm 0x1000;
  Heatmap.record_hit hm 0x5008;
  Heatmap.mark_monitored hm ~lo:0x5000 ~hi:0x5fff;
  let text = Heatmap.to_text hm in
  let ppm = Heatmap.to_ppm hm in
  let json = Heatmap.to_json_string hm in
  check_string "text render deterministic" text (Heatmap.to_text hm);
  check_string "ppm render deterministic" ppm (Heatmap.to_ppm hm);
  check_string "json render deterministic" json (Heatmap.to_json_string hm);
  check_bool "ppm is plain P3" true
    (String.length ppm > 3 && String.sub ppm 0 3 = "P3\n");
  check_bool "json carries the schema" true
    (match Export.json_of_string json with
    | Export.Obj fields ->
      List.assoc_opt "schema" fields = Some (Export.Str Heatmap.schema_version)
    | _ -> false);
  check_bool "text mentions the monitored page" true
    (let rec contains i =
       i + 9 <= String.length text
       && (String.sub text i 9 = "monitored" || contains (i + 1))
     in
     contains 0)

(* --- Prometheus exposition lint ----------------------------------------------- *)

(* Structural lint over the exposition text: families are declared with
   a HELP line immediately followed by a TYPE line of a legal type, no
   family is declared twice, every sample line belongs to the family
   declared above it (no interleaving), metric names use the legal
   charset, values parse as integers, and the text ends with a
   newline. *)
let lint_prometheus text =
  check_bool "non-empty" true (text <> "");
  check_bool "ends with newline" true (text.[String.length text - 1] = '\n');
  let legal_name n =
    n <> ""
    && (match n.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
    && String.for_all
         (function
           | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
           | _ -> false)
         n
  in
  let lines =
    String.split_on_char '\n' text |> List.filter (fun l -> l <> "")
  in
  let declared = Hashtbl.create 16 in
  let current = ref "" in
  let expect_type = ref None in
  List.iter
    (fun line ->
      match !expect_type with
      | Some name ->
        let prefix = "# TYPE " ^ name ^ " " in
        let plen = String.length prefix in
        check_bool
          (Printf.sprintf "HELP for %s is followed by its TYPE" name)
          true
          (String.length line > plen && String.sub line 0 plen = prefix);
        let typ = String.sub line plen (String.length line - plen) in
        check_bool
          (Printf.sprintf "%s has a legal type (%s)" name typ)
          true
          (typ = "counter" || typ = "gauge");
        expect_type := None;
        current := name
      | None ->
        if String.length line > 7 && String.sub line 0 7 = "# HELP " then begin
          let rest = String.sub line 7 (String.length line - 7) in
          let name =
            match String.index_opt rest ' ' with
            | Some i -> String.sub rest 0 i
            | None -> rest
          in
          check_bool ("legal family name " ^ name) true (legal_name name);
          check_bool ("family declared once: " ^ name) false
            (Hashtbl.mem declared name);
          Hashtbl.replace declared name ();
          expect_type := Some name
        end
        else if line.[0] = '#' then
          (* Plain comments are legal anywhere; a TYPE line is only
             legal immediately after its HELP (handled above). *)
          check_bool ("no orphan TYPE: " ^ line) false
            (String.length line > 7 && String.sub line 0 7 = "# TYPE ")
        else begin
          let name =
            match (String.index_opt line '{', String.index_opt line ' ') with
            | Some i, Some j -> String.sub line 0 (min i j)
            | Some i, None -> String.sub line 0 i
            | None, Some j -> String.sub line 0 j
            | None, None -> line
          in
          check_string ("sample under its own family: " ^ line) !current name;
          match String.rindex_opt line ' ' with
          | None -> Alcotest.failf "sample line has no value: %s" line
          | Some i ->
            let v = String.sub line (i + 1) (String.length line - i - 1) in
            check_bool ("integer value: " ^ line) true
              (match int_of_string_opt v with Some _ -> true | None -> false)
        end)
    lines;
  check_bool "trailing HELP has its TYPE" true (!expect_type = None)

let test_prometheus_lint_session () =
  let session = run_sampled loop_src in
  let rep = Session.report session in
  let text = Export.to_prometheus rep in
  lint_prometheus text;
  (* Spot-check the families a dashboard keys on, old and new. *)
  List.iter
    (fun family ->
      let needle = "\n# HELP " ^ family ^ " " in
      let rec contains i =
        i + String.length needle <= String.length text
        && (String.sub text i (String.length needle) = needle
           || contains (i + 1))
      in
      check_bool ("family present: " ^ family) true (contains 0))
    [
      "dbp_check_execs"; "dbp_user_hits"; "dbp_store_execs";
      "dbp_samples_taken"; "dbp_timeseries_interval_instrs";
      "dbp_timeseries_samples_retained"; "dbp_timeseries_last";
    ]

let test_prometheus_lint_synthetic () =
  (* A report with every section non-trivial, including sites whose
     names become labels. *)
  let t = Telemetry.create ~ring_capacity:2 () in
  Telemetry.set_tag t "strategy" "cache";
  Telemetry.incr t Telemetry.User_hits;
  Telemetry.incr_typed t Telemetry.Cache_misses_by_type 2;
  Telemetry.alloc_sites t
    [| (0, Telemetry.site_kind_checked); (1, Telemetry.site_kind_sym) |];
  Telemetry.alloc_read_sites t [| 2 |];
  Telemetry.bump_site t 0;
  Telemetry.bump_site_hit t 0;
  Telemetry.bump_read_site t 0;
  Telemetry.set_sample_capacity t 4;
  Telemetry.set_sample_meta t ~every:10 ~metrics:[ "m" ];
  Telemetry.record_sample t { Telemetry.s_insn = 10; s_values = [ ("m", 1) ] };
  lint_prometheus (Export.to_prometheus (Telemetry.report t))

(* --- scrape endpoint ----------------------------------------------------------- *)

(* Drive the server in-process: connect, queue a request, let [poll]
   answer it, read the response off the socket.  Single-threaded —
   exactly how the dispatch-loop hook drives it in dbreak. *)
let http_get srv request =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with _ -> ())
    (fun () ->
      Unix.connect sock
        (Unix.ADDR_INET (Unix.inet_addr_loopback, Scrape.port srv));
      ignore (Unix.write_substring sock request 0 (String.length request));
      let handled = Scrape.poll srv in
      check_int "poll answered the pending request" 1 handled;
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        let k = Unix.read sock chunk 0 (Bytes.length chunk) in
        if k > 0 then begin
          Buffer.add_subbytes buf chunk 0 k;
          drain ()
        end
      in
      (try drain () with Unix.Unix_error _ -> ());
      Buffer.contents buf)

let has_substring hay needle =
  let n = String.length needle in
  let rec go i =
    i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1))
  in
  go 0

let test_scrape_endpoint () =
  let session = run_sampled loop_src in
  let srv =
    Scrape.create ~port:0
      ~metrics:(fun () -> Export.to_prometheus (Session.report session))
      ()
  in
  Fun.protect
    ~finally:(fun () -> Scrape.close srv)
    (fun () ->
      check_bool "ephemeral port assigned" true (Scrape.port srv > 0);
      check_int "idle poll answers nothing" 0 (Scrape.poll srv);
      let resp = http_get srv "GET /metrics HTTP/1.0\r\n\r\n" in
      check_bool "200" true (has_substring resp "HTTP/1.0 200 OK");
      check_bool "exposition content type" true
        (has_substring resp "text/plain; version=0.0.4");
      check_bool "serves the live counters" true
        (has_substring resp "dbp_user_hits");
      check_bool "serves the time-series gauges" true
        (has_substring resp "dbp_timeseries_interval_instrs");
      (* The body itself must pass the exposition lint. *)
      (match String.index_opt resp '\r' with
      | None -> Alcotest.fail "no status line"
      | Some _ ->
        let marker = "\r\n\r\n" in
        let rec find i =
          if i + 4 > String.length resp then None
          else if String.sub resp i 4 = marker then Some (i + 4)
          else find (i + 1)
        in
        (match find 0 with
        | Some body_at ->
          lint_prometheus
            (String.sub resp body_at (String.length resp - body_at))
        | None -> Alcotest.fail "no header/body separator"));
      check_bool "unknown path is 404" true
        (has_substring
           (http_get srv "GET /nope HTTP/1.0\r\n\r\n")
           "HTTP/1.0 404 Not Found");
      check_bool "index lists the endpoint" true
        (has_substring (http_get srv "GET / HTTP/1.0\r\n\r\n") "/metrics");
      check_bool "malformed request is 400" true
        (has_substring (http_get srv "BOGUS\r\n\r\n") "HTTP/1.0 400");
      check_int "requests counted" 4 (Scrape.served srv));
  (* Close is idempotent and polls become no-ops. *)
  Scrape.close srv;
  check_int "poll after close" 0 (Scrape.poll srv)

let suites =
  [
    ( "timeseries.sampler",
      [
        Alcotest.test_case "ring conserves end-of-run counters" `Quick
          test_conservation;
        Alcotest.test_case "replay pauses sampler and heatmap" `Quick
          test_replay_pauses_observers;
        Alcotest.test_case "no added work when off" `Quick test_stats_parity;
        Alcotest.test_case "bad intervals rejected" `Quick
          test_bad_intervals_rejected;
      ] );
    ( "timeseries.windows",
      [
        Alcotest.test_case "windowed peaks and totals" `Quick
          test_summarize_windows;
        Alcotest.test_case "empty report" `Quick test_summarize_empty;
        Alcotest.test_case "dbp-timeseries/1 document" `Quick
          test_timeseries_json;
      ] );
    ( "timeseries.export",
      [
        Alcotest.test_case "v5 round-trip and reject" `Quick test_v5_round_trip;
        Alcotest.test_case "sample merge: concat then sort" `Quick
          test_merge_samples;
      ] );
    ( "timeseries.heatmap",
      [
        Alcotest.test_case "page accounting" `Quick test_heatmap_pages;
        Alcotest.test_case "renders deterministic" `Quick test_heatmap_renders;
      ] );
    ( "timeseries.prometheus",
      [
        Alcotest.test_case "session exposition lints" `Quick
          test_prometheus_lint_session;
        Alcotest.test_case "synthetic exposition lints" `Quick
          test_prometheus_lint_synthetic;
      ] );
    ( "timeseries.scrape",
      [
        Alcotest.test_case "GET /metrics end to end" `Quick
          test_scrape_endpoint;
      ] );
  ]
