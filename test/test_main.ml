let () =
  Alcotest.run "dbp"
    (Test_sparc.suites @ Test_machine.suites @ Test_minic.suites @ Test_ir.suites @ Test_dbp.suites @ Test_core_units.suites @ Test_workloads.suites @ Test_fuzz.suites @ Test_telemetry.suites @ Test_audit.suites @ Test_replay.suites @ Test_profile.suites @ Test_timeseries.suites @ Test_serve.suites @ Verify_mutations.suites)
