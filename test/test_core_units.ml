open Dbp
open Sparc

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Checkgen: emitted instruction budgets ---------------------------------- *)

let count_insns items =
  List.length
    (List.filter (function Asm.Insn _ | Asm.Set_label _ -> true | _ -> false) items)

let loads_in items =
  List.length
    (List.filter (function Asm.Insn (Insn.Ld _) -> true | _ -> false) items)

let stores_in items =
  List.length
    (List.filter (function Asm.Insn (Insn.St _) -> true | _ -> false) items)

let sample_store = Asm.st (Reg.o 0) Reg.fp (Insn.Imm (-20))

let checkgen_items strategy =
  let env = Checkgen.make_env ~layout:(Layout.v ()) ~strategy () in
  Checkgen.check_items env ~write_type:Write_type.Stack sample_store

let test_checkgen_bir_budget () =
  (* §3.3.3: BitmapInlineRegisters executes 12 register instructions and
     2 loads on the full-lookup path (plus guard + address + trap). *)
  let items = checkgen_items Strategy.Bitmap_inline_registers in
  check_int "two loads" 2 (loads_in items);
  check_int "no stores" 0 (stores_in items);
  (* The paper's budget counts the address computation plus the lookup's
     ALU work: 12 register instructions and 2 loads.  On top sit the
     2-instruction disabled guard, the lookup's two conditional
     branches, and the hit trap: 19 instructions in all. *)
  let alu =
    List.length
      (List.filter
         (function
           | Asm.Insn (Insn.Alu _) | Asm.Insn (Insn.Sethi _) | Asm.Set_label _ ->
             true
           | _ -> false)
         items)
  in
  let branches =
    List.length
      (List.filter (function Asm.Insn (Insn.Branch _) -> true | _ -> false) items)
  in
  (* alu = guard tst (1) + address (1) + 11 lookup ALU ops = 13;
     paper's "12 register instructions" = address + lookup ALU + guard
     tst, minus the cc-setting ops it folds into the branches. *)
  check_int "ALU instructions" 13 alu;
  check_int "branches" 3 branches;
  check_int "instruction budget" 19 (count_insns items)

let test_checkgen_bitmap_is_call () =
  let items = checkgen_items Strategy.Bitmap in
  check_bool "calls the library" true
    (List.exists
       (function
         | Asm.Insn (Insn.Call { target = Insn.Sym "__dbp_check_word" }) -> true
         | _ -> false)
       items);
  (* guard 2 + addr 1 + call + nop *)
  check_int "five instructions inline" 5 (count_insns items)

let test_checkgen_inline_spills () =
  (* The no-reserved-registers variant must save and restore its three
     temporaries around the lookup. *)
  let items = checkgen_items Strategy.Bitmap_inline in
  check_int "three spill stores" 3 (stores_in items);
  check_bool "three reloads" true (loads_in items >= 3 + 2)

let test_checkgen_cache_inline_test () =
  (* §3.1: the cache test itself is a handful of instructions ending in
     a branch; misses call per-write-type handlers. *)
  let items = checkgen_items Strategy.Cache in
  check_bool "calls the stack-cache miss handler" true
    (List.exists
       (function
         | Asm.Insn (Insn.Call { target = Insn.Sym "__dbp_cache_miss_stack" }) ->
           true
         | _ -> false)
       items);
  check_bool "inline part is small" true (count_insns items <= 8)

let test_checkgen_double_checks_both_words () =
  let env =
    Checkgen.make_env ~layout:(Layout.v ())
      ~strategy:Strategy.Bitmap_inline_registers ()
  in
  let std = Asm.st ~width:Insn.Double (Reg.o 0) Reg.fp (Insn.Imm (-24)) in
  let items = Checkgen.check_items env ~write_type:Write_type.Stack std in
  (* Two full lookups -> four loads. *)
  check_int "four loads" 4 (loads_in items)

let test_checkgen_read_before_load () =
  let env =
    Checkgen.make_env ~layout:(Layout.v ())
      ~strategy:Strategy.Bitmap_inline_registers ()
  in
  let ld = Asm.ld (Reg.l 0) (Insn.Imm 8) (Reg.l 0) in
  let items = Checkgen.read_check_items env ~write_type:Write_type.Heap ld in
  (* Address is computed from the base register, so the sequence must
     be placeable before a load that overwrites its own base. *)
  check_bool "uses read-hit trap" true
    (List.exists
       (function
         | Asm.Insn (Insn.Trap { number }) -> number = Traps.read_hit
         | _ -> false)
       items)

let test_monitor_library_contents () =
  let lib strategy ~reads =
    let env = Checkgen.make_env ~layout:(Layout.v ()) ~strategy () in
    Checkgen.monitor_library env ~control_checks:false ~monitor_reads:reads
  in
  let labels items =
    List.filter_map (function Asm.Label l -> Some l | _ -> None) items
  in
  check_bool "bitmap routine present" true
    (List.mem "__dbp_check_word" (labels (lib Strategy.Bitmap ~reads:false)));
  check_bool "read variant on demand" true
    (List.mem "__dbp_check_word_rd" (labels (lib Strategy.Bitmap ~reads:true)));
  check_int "four cache handlers" 4
    (List.length
       (List.filter
          (fun l -> String.length l > 17 && String.sub l 0 17 = "__dbp_cache_miss_")
          (labels (lib Strategy.Cache ~reads:false))));
  check_int "inline strategies need no library" 0
    (List.length (lib Strategy.Bitmap_inline_registers ~reads:false))

(* --- Symopt: escape analysis and matching rules -------------------------------- *)

let symopt_of src =
  let out = Minic.Compile.compile src in
  let slices =
    Ir.Lift.slice_program
      ~function_labels:("_start" :: out.Minic.Codegen.functions)
      out.Minic.Codegen.program.text
  in
  let lifted = List.map Ir.Lift.lift_slice slices in
  let escaped = Symopt.escaped_globals lifted in
  let results =
    List.map2
      (fun (s : Ir.Lift.slice) tac ->
        (s.fname, Symopt.rewrite out.Minic.Codegen.symtab ~fname:s.fname ~escaped tac))
      slices lifted
  in
  (escaped, results)

let test_symopt_escapes () =
  (* &g stored into a pointer: g escapes, must not be matched. *)
  let escaped, results =
    symopt_of "int g; int main() { int *p; p = &g; *p = 1; g = 2; return g; }"
  in
  check_bool "g escaped" true (Symopt.SS.mem "g" escaped);
  let main_r = List.assoc "main" results in
  check_bool "no store matched to g" true
    (List.for_all (fun (s : Symopt.store_site) -> s.pseudo <> "g") main_r.Symopt.matched_stores);
  (* Plain global use: no escape, matched. *)
  let escaped, results = symopt_of "int g; int main() { g = 2; return g; }" in
  check_bool "g not escaped" false (Symopt.SS.mem "g" escaped);
  let main_r = List.assoc "main" results in
  check_bool "store matched to g" true
    (List.exists (fun (s : Symopt.store_site) -> s.pseudo = "g") main_r.Symopt.matched_stores)

let test_symopt_escape_via_call () =
  let escaped, _ =
    symopt_of
      "int g; int f(int *p) { *p = 1; return 0; } int main() { f(&g); return \
       g; }"
  in
  check_bool "argument escape" true (Symopt.SS.mem "g" escaped)

let test_symopt_addr_taken_local () =
  let _, results =
    symopt_of "int main() { int x; int *p; p = &x; *p = 3; x = 4; return x; }"
  in
  let main_r = List.assoc "main" results in
  check_bool "x not matched (address taken)" true
    (List.for_all
       (fun (s : Symopt.store_site) -> s.pseudo <> "main.x")
       main_r.Symopt.matched_stores);
  (* p itself is a plain local pointer: matched. *)
  check_bool "p matched" true
    (List.exists
       (fun (s : Symopt.store_site) -> s.pseudo = "main.p")
       main_r.Symopt.matched_stores)

let test_symopt_arrays_not_matched () =
  let _, results =
    symopt_of "int a[4]; int main() { a[0] = 1; a[1] = 2; return a[0]; }"
  in
  let main_r = List.assoc "main" results in
  check_bool "array stores unmatched" true
    (List.for_all
       (fun (s : Symopt.store_site) -> s.pseudo <> "a")
       main_r.Symopt.matched_stores)

let test_symopt_premonitor_lists () =
  let _, results =
    symopt_of
      "int g; int main() { int i; for (i = 0; i < 3; i = i + 1) { g = g + 1; \
       } return g; }"
  in
  let main_r = List.assoc "main" results in
  (match List.assoc_opt "g" main_r.Symopt.sites_by_pseudo with
  | Some origins -> check_int "one g store site" 1 (List.length origins)
  | None -> Alcotest.fail "no PreMonitor list for g");
  check_bool "i has sites too" true
    (List.mem_assoc "main.i" main_r.Symopt.sites_by_pseudo)

(* --- Instrument plumbing ---------------------------------------------------------- *)

let test_instrument_patch_stubs () =
  let out =
    Minic.Compile.compile
      "int g; int main() { int i; for (i = 0; i < 3; i = i + 1) { g = i; } \
       return g; }"
  in
  let plan =
    Instrument.run
      { Instrument.default_options with opt = Instrument.O_symbol }
      out
  in
  let labels =
    List.filter_map
      (function Asm.Label l -> Some l | _ -> None)
      plan.Instrument.program.text
  in
  List.iter
    (fun (s : Instrument.site) ->
      match s.status with
      | Instrument.Sym_eliminated _ | Instrument.Loop_eliminated _ ->
        check_bool "patch stub exists" true
          (List.mem (Instrument.patch_label s.origin) labels);
        check_bool "back label exists" true
          (List.mem (Instrument.back_label s.origin) labels)
      | Instrument.Checked -> ())
    plan.Instrument.sites;
  (* Labels are unique (the assembler would reject duplicates anyway). *)
  let sorted = List.sort String.compare labels in
  let rec dup = function
    | a :: (b :: _ as r) -> if a = b then Some a else dup r
    | _ -> None
  in
  check_bool "no duplicate labels" true (dup sorted = None)

let test_instrument_exclude () =
  let out =
    Minic.Compile.compile
      "int g; int lib() { g = 1; return 0; } int main() { lib(); g = 2; \
       return g; }"
  in
  let plan =
    Instrument.run { Instrument.default_options with exclude = [ "lib" ] } out
  in
  (* lib's store has no site; main's does. *)
  let sites = plan.Instrument.sites in
  let items = Array.of_list out.Minic.Codegen.program.text in
  let in_lib origin =
    (* find enclosing function by scanning back for a function label *)
    let rec back i =
      if i < 0 then false
      else
        match items.(i) with
        | Asm.Label "lib" -> true
        | Asm.Label "main" | Asm.Label "_start" -> false
        | _ -> back (i - 1)
    in
    back origin
  in
  check_bool "no site inside lib" true
    (List.for_all (fun (s : Instrument.site) -> not (in_lib s.origin)) sites);
  check_bool "main still instrumented" true (sites <> [])

let test_instrument_nop_padding_counts () =
  let out = Minic.Compile.compile "int g; int main() { g = 1; return g; }" in
  let count_nops n =
    let plan =
      Instrument.run { Instrument.default_options with nop_padding = n } out
    in
    List.length
      (List.filter
         (function Asm.Insn Insn.Nop -> true | _ -> false)
         plan.Instrument.program.text)
  in
  let base = count_nops 0 in
  let padded = count_nops 8 in
  let stores = List.length (Instrument.run Instrument.default_options out).Instrument.sites in
  check_int "8 nops per store" (base + (8 * stores)) padded

(* The instrumented program's textual form must survive a print/parse
   round trip — exercising the printer and parser on real output. *)
let test_instrumented_print_parse () =
  let out =
    Minic.Compile.compile
      "int g; int main() { int i; for (i = 0; i < 4; i = i + 1) { g = g + i; \
       } return g; }"
  in
  let plan =
    Instrument.run
      { Instrument.default_options with opt = Instrument.O_full }
      out
  in
  let printed = Printer.program_to_string plan.Instrument.program in
  let reparsed = Parser.program_of_string printed in
  let strip =
    List.filter (function Asm.Comment _ -> false | _ -> true)
  in
  check_int "same item count"
    (List.length (strip plan.Instrument.program.text))
    (List.length (strip reparsed.Asm.text));
  (* And it must still assemble. *)
  ignore (Assembler.assemble reparsed)

(* --- Mrs internals ------------------------------------------------------------------ *)

let test_mrs_eval_bexpr () =
  let src = "int g; int main() { g = 7; return g; }" in
  let session = Session.create src in
  let mrs = session.Session.mrs in
  ignore (Session.run session);
  (* constants and label addresses *)
  check_int "const" 5 (Mrs.eval_bexpr mrs (Ir.Bounds.Bconst 5));
  let g_addr =
    match Sparc.Symtab.lookup session.Session.symtab "g" with
    | Some { Sparc.Symtab.location = Sparc.Symtab.Absolute a; _ } -> a
    | _ -> Alcotest.fail "no g"
  in
  check_int "label" g_addr (Mrs.eval_bexpr mrs (Ir.Bounds.Blab ("g", 0)));
  check_int "label + offset" (g_addr + 8) (Mrs.eval_bexpr mrs (Ir.Bounds.Blab ("g", 8)));
  check_int "arith"
    ((g_addr * 2) + 4)
    (Mrs.eval_bexpr mrs
       (Ir.Bounds.Badd
          (Ir.Bounds.Bmul (Ir.Bounds.Blab ("g", 0), 2), Ir.Bounds.Bconst 4)));
  check_int "shift" (g_addr * 4)
    (Mrs.eval_bexpr mrs (Ir.Bounds.Bshl (Ir.Bounds.Blab ("g", 0), 2)));
  (try
     ignore (Mrs.eval_bexpr mrs (Ir.Bounds.Blab ("nonexistent", 0)));
     Alcotest.fail "expected Unresolved"
   with Mrs.Unresolved _ -> ())

let test_mrs_patch_toggling () =
  let src =
    "int g; int main() { int i; for (i = 0; i < 5; i = i + 1) { g = i; } \
     return g; }"
  in
  let options = { Instrument.default_options with opt = Instrument.O_symbol } in
  let session = Session.create ~options src in
  let mrs = session.Session.mrs in
  let g_site =
    List.find_map
      (fun (s : Instrument.site) ->
        match s.status with
        | Instrument.Sym_eliminated "g" -> Some s.origin
        | _ -> None)
      session.Session.plan.Instrument.sites
  in
  let origin = Option.get g_site in
  check_bool "not inserted initially" false (Mrs.check_inserted mrs origin);
  Mrs.pre_monitor mrs "g";
  check_bool "inserted by PreMonitor" true (Mrs.check_inserted mrs origin);
  Mrs.pre_monitor mrs "g";
  check_bool "idempotent" true (Mrs.check_inserted mrs origin);
  Mrs.post_monitor mrs "g";
  check_bool "removed by PostMonitor" false (Mrs.check_inserted mrs origin)

let test_mrs_pseudo_home () =
  let symtab =
    Symtab.of_list
      [
        Symtab.scalar ~name:"g" (Symtab.Absolute 0x400010);
        Symtab.scalar ~func:"f" ~name:"x" (Symtab.Fp_offset (-20));
      ]
  in
  (match Mrs.pseudo_home_of_symtab symtab "g" with
  | Some (`Global 0x400010) -> ()
  | _ -> Alcotest.fail "global home");
  (match Mrs.pseudo_home_of_symtab symtab "f.x" with
  | Some (`Local ("f", -20)) -> ()
  | _ -> Alcotest.fail "local home");
  check_bool "unknown" true (Mrs.pseudo_home_of_symtab symtab "zzz" = None)

(* --- Strategy: string round trip --------------------------------------------- *)

(* Every constructor — including [Hardware_watch n] for arbitrary
   positive register counts, not just the 1 and 4 real hardware ships
   with — must survive [to_string]/[of_string], and garbage must be
   rejected rather than defaulted. *)
let strategy_arb =
  QCheck.make ~print:Strategy.to_string
    QCheck.Gen.(
      frequency
        [
          ( 4,
            oneofl
              [
                Strategy.Nocheck;
                Strategy.Bitmap;
                Strategy.Bitmap_inline;
                Strategy.Bitmap_inline_registers;
                Strategy.Cache;
                Strategy.Cache_inline;
                Strategy.Hash_table;
                Strategy.Trap_check;
              ] );
          (1, map (fun n -> Strategy.Hardware_watch n) (int_range 1 1024));
        ])

let prop_strategy_roundtrip =
  QCheck.Test.make ~count:500
    ~name:"Strategy.of_string inverts to_string over every constructor"
    strategy_arb
    (fun s -> Strategy.of_string (Strategy.to_string s) = s)

let test_strategy_parsing_pinned () =
  (* The CLI's lowercase aliases keep working... *)
  List.iter
    (fun (txt, expect) ->
      check_bool ("alias " ^ txt) true (Strategy.of_string txt = expect))
    [
      ("none", Strategy.Nocheck);
      ("bitmap", Strategy.Bitmap);
      ("bitmap-inline", Strategy.Bitmap_inline);
      ("bitmap-inline-registers", Strategy.Bitmap_inline_registers);
      ("cache", Strategy.Cache);
      ("cache-inline", Strategy.Cache_inline);
      ("hash", Strategy.Hash_table);
      ("trap", Strategy.Trap_check);
      ("HardwareWatch1", Strategy.Hardware_watch 1);
      ("HardwareWatch4", Strategy.Hardware_watch 4);
      (* ...any positive all-digit count parses, leading zeros and all. *)
      ("HardwareWatch7", Strategy.Hardware_watch 7);
      ("HardwareWatch007", Strategy.Hardware_watch 7);
      ("HardwareWatch1024", Strategy.Hardware_watch 1024);
    ];
  (* Garbage is rejected, never defaulted. *)
  List.iter
    (fun txt ->
      match Strategy.of_string txt with
      | _ -> Alcotest.failf "accepted garbage %S" txt
      | exception Invalid_argument _ -> ())
    [
      "";
      "bogus";
      "BITMAP";
      "Bitmap ";
      " Bitmap";
      "HardwareWatch";
      "HardwareWatch0";
      "HardwareWatch00";
      "HardwareWatch-1";
      "HardwareWatch+1";
      "HardwareWatch4x";
      "HardwareWatch 4";
      "hardwarewatch4";
      "HardwareWatch99999999999999999999999";
    ]

let suites =
  [
    ( "dbp.checkgen",
      [
        Alcotest.test_case "BIR budget (12 regs + 2 loads)" `Quick test_checkgen_bir_budget;
        Alcotest.test_case "Bitmap is a call" `Quick test_checkgen_bitmap_is_call;
        Alcotest.test_case "BitmapInline spills" `Quick test_checkgen_inline_spills;
        Alcotest.test_case "Cache inline test" `Quick test_checkgen_cache_inline_test;
        Alcotest.test_case "double-word stores" `Quick test_checkgen_double_checks_both_words;
        Alcotest.test_case "read checks" `Quick test_checkgen_read_before_load;
        Alcotest.test_case "monitor library" `Quick test_monitor_library_contents;
      ] );
    ( "dbp.symopt",
      [
        Alcotest.test_case "escape via store" `Quick test_symopt_escapes;
        Alcotest.test_case "escape via call" `Quick test_symopt_escape_via_call;
        Alcotest.test_case "address-taken locals" `Quick test_symopt_addr_taken_local;
        Alcotest.test_case "arrays unmatched" `Quick test_symopt_arrays_not_matched;
        Alcotest.test_case "PreMonitor site lists" `Quick test_symopt_premonitor_lists;
      ] );
    ( "dbp.instrument",
      [
        Alcotest.test_case "patch stubs" `Quick test_instrument_patch_stubs;
        Alcotest.test_case "exclude list" `Quick test_instrument_exclude;
        Alcotest.test_case "nop padding counts" `Quick test_instrument_nop_padding_counts;
        Alcotest.test_case "print/parse round trip" `Quick test_instrumented_print_parse;
      ] );
    ( "dbp.mrs",
      [
        Alcotest.test_case "eval_bexpr" `Quick test_mrs_eval_bexpr;
        Alcotest.test_case "patch toggling" `Quick test_mrs_patch_toggling;
        Alcotest.test_case "pseudo homes" `Quick test_mrs_pseudo_home;
      ] );
    ( "dbp.strategy",
      [
        QCheck_alcotest.to_alcotest prop_strategy_roundtrip;
        Alcotest.test_case "parsing pinned" `Quick test_strategy_parsing_pinned;
      ] );
  ]
