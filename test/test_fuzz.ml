(* Randomized end-to-end property: for arbitrary (terminating) mini-C
   programs, instrumentation under every strategy/optimization level
   must preserve behaviour exactly, and with a region armed the oracle
   must see no missed hits.

   The generator builds structured programs from a fixed variable pool:
   bounded [for] loops only, no recursion, indices masked into range —
   so every generated program terminates and never faults. *)

open Dbp

type genv = { loop_vars : string list; depth : int }

let scalars = [ "g0"; "g1"; "a"; "b"; "c" ]

let rec gen_expr env fuel st =
  let open QCheck.Gen in
  let atom =
    oneof
      [
        map string_of_int (int_range (-20) 20);
        oneofl (scalars @ env.loop_vars);
        (if env.loop_vars = [] then oneofl scalars else oneofl env.loop_vars);
      ]
  in
  if fuel = 0 then atom st
  else
    (frequency
       [
         (2, atom);
         ( 3,
           let* op = oneofl [ "+"; "-"; "*"; "&"; "|"; "^" ] in
           let* l = gen_expr env (fuel - 1) in
           let* r = gen_expr env (fuel - 1) in
           return (Printf.sprintf "(%s %s %s)" l op r) );
         ( 1,
           (* safe division: divisor forced non-zero *)
           let* l = gen_expr env (fuel - 1) in
           let* r = gen_expr env (fuel - 1) in
           return (Printf.sprintf "(%s / ((%s & 7) + 1))" l r) );
         ( 1,
           let* op = oneofl [ "<"; "<="; "=="; "!=" ] in
           let* l = gen_expr env (fuel - 1) in
           let* r = gen_expr env (fuel - 1) in
           return (Printf.sprintf "(%s %s %s)" l op r) );
         ( 1,
           let* idx = gen_expr env (fuel - 1) in
           return (Printf.sprintf "ga[(%s) & 15]" idx) );
       ])
      st

let gen_lvalue env st =
  let open QCheck.Gen in
  (oneof
     [
       oneofl (List.filter (fun v -> not (List.mem v env.loop_vars)) scalars);
       (let* idx = gen_expr env 1 in
        return (Printf.sprintf "ga[(%s) & 15]" idx));
     ])
    st

let rec gen_stmt env st =
  let open QCheck.Gen in
  (frequency
     [
       ( 4,
         let* lv = gen_lvalue env in
         let* e = gen_expr env 2 in
         return (Printf.sprintf "%s = %s;" lv e) );
       ( 1,
         let* e = gen_expr env 2 in
         return (Printf.sprintf "c = helper(%s, b);" e) );
       ( (if env.depth > 0 then 2 else 0),
         let* cond = gen_expr env 1 in
         let* then_ = gen_block { env with depth = env.depth - 1 } in
         let* else_ = gen_block { env with depth = env.depth - 1 } in
         return (Printf.sprintf "if (%s) { %s } else { %s }" cond then_ else_) );
       ( (if env.depth > 0 && List.length env.loop_vars < 3 then 2 else 0),
         let v = Printf.sprintf "i%d" (List.length env.loop_vars) in
         let* n = int_range 1 6 in
         let* body =
           gen_block { loop_vars = v :: env.loop_vars; depth = env.depth - 1 }
         in
         return
           (Printf.sprintf "for (%s = 0; %s < %d; %s = %s + 1) { %s }" v v n v v
              body) );
     ])
    st

and gen_block env st =
  let open QCheck.Gen in
  (let* n = int_range 1 3 in
   let* stmts = list_repeat n (gen_stmt env) in
   return (String.concat " " stmts))
    st

let gen_program st =
  let open QCheck.Gen in
  (let* helper_body = gen_expr { loop_vars = []; depth = 0 } 2 in
   let* body = gen_block { loop_vars = []; depth = 2 } in
   return
     (Printf.sprintf
        {|
int g0;
int g1;
int ga[16];
int helper(int a, int b) {
  int c;
  c = %s;
  return c;
}
int main() {
  int a; int b; int c;
  int i0; int i1; int i2;
  a = 3; b = 5; c = 7;
  %s
  return (g0 ^ g1 ^ a ^ b ^ c ^ ga[3]) & 65535;
}
|}
        helper_body body))
    st

let arb_program = QCheck.make ~print:(fun s -> s) gen_program

let configurations =
  [
    { Instrument.default_options with strategy = Strategy.Bitmap_inline_registers };
    { Instrument.default_options with strategy = Strategy.Cache_inline };
    { Instrument.default_options with strategy = Strategy.Bitmap;
      opt = Instrument.O_symbol };
    { Instrument.default_options with opt = Instrument.O_full };
    { Instrument.default_options with monitor_reads = true };
    { Instrument.default_options with strategy = Strategy.Cache;
      single_cache = true; disabled_guard = false };
  ]

let prop_semantics_and_soundness =
  QCheck.Test.make ~name:"random programs: instrumentation preserves semantics, oracle sound"
    ~count:40 arb_program (fun src ->
      let expect, _ = Minic.Compile.run ~fuel:5_000_000 src in
      List.for_all
        (fun options ->
          let session = Session.create ~options src in
          Session.install_oracle session;
          let dbg = Debugger.create session in
          ignore (Debugger.watch dbg "g0");
          ignore (Debugger.watch dbg "ga");
          let code, _ = Session.run ~fuel:20_000_000 session in
          code = expect && Session.missed_hits session = 0)
        configurations)

(* Differential check for the interpreter's two execution paths: a
   plain run takes the pre-decoded closure fast path on every step,
   while a no-op probe on every text pc forces every step through the
   probe slow path (the generic [execute] interpreter), with no-op
   store/load hooks exercising the hook dispatch as well.  The two runs
   must agree bit-for-bit: exit code, every stat counter (including
   cache hits/misses and cycles), program output, and final memory. *)

let memory_dump cpu =
  let words = ref [] in
  Machine.Memory.iter_written (Machine.Cpu.mem cpu) (fun addr v ->
      words := (addr, v) :: !words);
  List.sort compare !words

let prop_fast_path_differential =
  QCheck.Test.make
    ~name:"random programs: pre-decoded fast path == generic interpreter"
    ~count:30 arb_program (fun src ->
      let linked = Minic.Compile.compile_and_link src in
      let image = linked.Minic.Compile.image in
      let fuel = 20_000_000 in
      (* Fast path: empty probe table, no hooks. *)
      let fast = Machine.Cpu.create image in
      Machine.Cpu.install_basic_services fast;
      let fast_code = Machine.Cpu.run ~fuel fast in
      (* Slow path: a no-op probe on every pc and no-op hooks. *)
      let slow = Machine.Cpu.create image in
      Machine.Cpu.install_basic_services slow;
      for i = 0 to Array.length image.Sparc.Assembler.text - 1 do
        Machine.Cpu.add_probe slow
          (image.Sparc.Assembler.text_base + (4 * i))
          (fun _ -> ())
      done;
      Machine.Cpu.set_store_hook slow (fun _ ~addr:_ ~width:_ -> ());
      Machine.Cpu.set_load_hook slow (fun _ ~addr:_ ~width:_ -> ());
      let slow_code = Machine.Cpu.run ~fuel slow in
      fast_code = slow_code
      && Machine.Cpu.stats fast = Machine.Cpu.stats slow
      && Machine.Cpu.output fast = Machine.Cpu.output slow
      && memory_dump fast = memory_dump slow)

let suites =
  [
    ( "dbp.fuzz",
      [
        QCheck_alcotest.to_alcotest prop_semantics_and_soundness;
        QCheck_alcotest.to_alcotest prop_fast_path_differential;
      ] );
  ]
