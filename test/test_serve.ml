(* The service layer: dbp-wire/1 codec round-trips, the shard
   scheduler's ordering/merge guarantees, the daemon engine's
   transcript and telemetry determinism across shard counts, and the
   scrape endpoint's malformed-request hardening. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* --- proto: escaping ---------------------------------------------------- *)

let test_escape_edges () =
  check_string "empty is %z" "%z" (Proto.escape "");
  check_string "unescape %z" "" (Result.get_ok (Proto.unescape "%z"));
  check_string "plain survives" "abc_123" (Proto.escape "abc_123");
  check_string "space escaped" "a%20b" (Proto.escape "a b");
  check_string "percent escaped" "100%25" (Proto.escape "100%");
  check_string "newline escaped" "l1%0Al2" (Proto.escape "l1\nl2");
  check_bool "no spaces in any escape" true
    (String.for_all (fun c -> c <> ' ')
       (Proto.escape "a b\tc\nd\re\x7f\xff %"));
  List.iter
    (fun bad ->
      check_bool
        (Printf.sprintf "unescape rejects %S" bad)
        true
        (Result.is_error (Proto.unescape bad)))
    [ "%"; "%2"; "%2g"; "%g2"; "trail%"; "a%zz" ]

let gen_bytes =
  QCheck.Gen.(string_size ~gen:(map Char.chr (int_range 0 255)) (0 -- 40))

let prop_escape_roundtrip =
  QCheck.Test.make ~name:"escape/unescape round-trips any byte string"
    ~count:500
    (QCheck.make ~print:String.escaped gen_bytes)
    (fun s -> Proto.unescape (Proto.escape s) = Ok s)

(* --- proto: command/reply round-trips ----------------------------------- *)

let gen_command =
  let open QCheck.Gen in
  let str = gen_bytes in
  let sid = map (fun s -> "s" ^ s) str in
  oneof
    [
      return Proto.Hello;
      (let* sid = sid and* body = str and* strategy = str and* opt = str in
       let* source =
         oneof
           [
             return (Proto.Workload body); return (Proto.Program body);
           ]
       in
       return (Proto.Open { sid; source; strategy; opt }));
      (let* sid = sid and* v = str in
       return (Proto.Arm { sid; target = Proto.Var v }));
      (let* sid = sid and* lo = nat and* len = nat in
       return (Proto.Arm { sid; target = Proto.Region { lo; len } }));
      (let* sid = sid and* name = str in
       return (Proto.Disarm { sid; name }));
      (let* sid = sid and* fuel = int_range (-5) 1_000_000 in
       return (Proto.Run { sid; fuel }));
      (let* sid = sid and* target = str in
       return (Proto.Query_last_write { sid; target }));
      (let* sid = sid and* target = str and* len = nat in
       return (Proto.Query_history { sid; target; len }));
      (let* sid = sid and* insn = nat in
       return (Proto.Travel { sid; insn }));
      map (fun sid -> Proto.Report { sid }) sid;
      map (fun sid -> Proto.Verify { sid }) sid;
      map (fun sid -> Proto.Close { sid }) sid;
    ]

let prop_command_roundtrip =
  QCheck.Test.make ~name:"every command constructor round-trips the wire"
    ~count:1000
    (QCheck.make
       ~print:(fun c -> Proto.encode_command c)
       gen_command)
    (fun c -> Proto.decode_command (Proto.encode_command c) = Ok c)

let gen_reply =
  let open QCheck.Gen in
  let str = gen_bytes in
  let* r_sid = map (fun s -> "s" ^ s) str in
  let* r_seq = nat in
  let* r_body =
    oneof
      [
        return Proto.Hello_ok;
        (let* name = str and* strategy = str and* opt = str in
         return (Proto.Opened { name; strategy; opt }));
        (let* name = str and* lo = nat and* len = nat in
         return (Proto.Armed { name; lo; len }));
        map (fun name -> Proto.Disarmed { name }) str;
        map (fun executed -> Proto.Running { executed }) nat;
        (let* code = int_range (-255) 255 and* executed = nat
         and* output = str in
         return (Proto.Exited { code; executed; output }));
        (let* name = str and* insn = nat and* pc = nat and* addr = nat
         and* value = int_range (-1000) 1000 and* func = str in
         return (Proto.Hit { name; insn; pc; addr; value; func }));
        (let* target = str and* addr = nat and* insn = nat and* pc = nat
         and* old_v = int_range (-1000) 1000
         and* new_v = int_range (-1000) 1000 and* wtype = str
         and* func = str in
         return
           (Proto.Last_write
              { target; addr; insn; pc; old_v; new_v; wtype; func }));
        (let* target = str and* addr = nat in
         return (Proto.Never_written { target; addr }));
        map (fun count -> Proto.History { count }) nat;
        (let* insn = nat and* pc = nat and* addr = nat
         and* old_v = int_range (-1000) 1000
         and* new_v = int_range (-1000) 1000 and* wtype = str in
         return (Proto.Write { insn; pc; addr; old_v; new_v; wtype }));
        (let* insn = nat and* reexecuted = nat and* pc = nat in
         return (Proto.Traveled { insn; reexecuted; pc }));
        map (fun j -> Proto.Report_json j) str;
        (let* total = nat and* proved = nat and* refuted = nat
         and* unknown = nat in
         return (Proto.Verified { total; proved; refuted; unknown }));
        return Proto.Closed;
        map (fun m -> Proto.Error m) str;
      ]
  in
  return { Proto.r_sid; r_seq; r_body }

let prop_reply_roundtrip =
  QCheck.Test.make ~name:"every reply constructor round-trips the wire"
    ~count:1000
    (QCheck.make ~print:Proto.encode_reply gen_reply)
    (fun r -> Proto.decode_reply (Proto.encode_reply r) = Ok r)

let test_malformed_frames () =
  List.iter
    (fun frame ->
      check_bool
        (Printf.sprintf "command rejected: %S" frame)
        true
        (Result.is_error (Proto.decode_command frame)))
    [
      "";
      "bogus";
      "hello extra";
      "open s1";                          (* arity *)
      "open s1 tarball src strat opt";    (* bad source kind *)
      "open s1 program %2g strat opt";    (* bad escape *)
      "arm s1 var";                       (* arity *)
      "arm s1 blob a b";                  (* bad target kind *)
      "arm s1 region 10 xyz";             (* bad integer *)
      "run s1 12-3";                      (* embedded dash *)
      "run s1 -";                         (* bare dash *)
      "query s1 last-write";              (* arity *)
      "query s1 nonsense t";              (* bad query kind *)
      "travel s1 1 2";                    (* arity *)
    ];
  List.iter
    (fun frame ->
      check_bool
        (Printf.sprintf "reply rejected: %S" frame)
        true
        (Result.is_error (Proto.decode_reply frame)))
    [ ""; "s1"; "s1 x opened a b c"; "s1 1 nonsense"; "s1 1 armed a b" ]

(* --- sched --------------------------------------------------------------- *)

let test_sched_ordering () =
  let sched = Sched.create ~shards:3 () in
  Fun.protect
    ~finally:(fun () -> Sched.shutdown sched)
    (fun () ->
      check_int "shard count" 3 (Sched.shards sched);
      check_int "stable hash" (Sched.shard_of sched "k")
        (Sched.shard_of sched "k");
      (* Same-key jobs run in post order even when they re-post.  A
         gate job holds the worker until all five are queued, so the
         continuation's position is deterministic. *)
      let log = ref [] in
      let mu = Mutex.create () in
      let note x =
        Mutex.lock mu;
        log := x :: !log;
        Mutex.unlock mu
      in
      let gate = Mutex.create () in
      Mutex.lock gate;
      Sched.post sched ~key:"k" (fun () ->
          Mutex.lock gate;
          Mutex.unlock gate);
      for i = 1 to 5 do
        Sched.post sched ~key:"k" (fun () ->
            note i;
            if i = 1 then Sched.post sched ~key:"k" (fun () -> note 100))
      done;
      Mutex.unlock gate;
      Sched.drain sched;
      check_bool "FIFO per key, continuation behind queued work" true
        (List.rev !log = [ 1; 2; 3; 4; 5; 100 ]);
      (* A raising job bumps the backstop counter, shard survives. *)
      Sched.post sched ~key:"k" (fun () -> failwith "boom");
      Sched.post sched ~key:"k" (fun () -> note 7);
      Sched.drain sched;
      check_int "failure counted" 1 (Sched.failures sched);
      check_bool "shard survived the failure" true
        (List.hd !log = 7))

let test_sched_merge_determinism () =
  (* The same per-session contributions produce the same merged report
     whatever the shard count (sessions hash differently, merge is
     commutative). *)
  let merged shards =
    let sched = Sched.create ~shards () in
    Fun.protect
      ~finally:(fun () -> Sched.shutdown sched)
      (fun () ->
        List.iter
          (fun (key, hits) ->
            Sched.post sched ~key (fun () ->
                let sink = Sched.sink sched ~shard:(Sched.shard_of sched key) in
                for _ = 1 to hits do
                  Telemetry.incr sink Telemetry.Hits_streamed
                done;
                Telemetry.incr sink Telemetry.User_hits))
          [ ("a", 3); ("b", 5); ("c", 7); ("d", 11) ];
        Sched.drain sched;
        Export.to_json_string (Sched.merged_report sched))
  in
  let one = merged 1 in
  check_string "merged telemetry independent of shard count" one (merged 4);
  check_string "merged telemetry independent of shard count (j3)" one
    (merged 3)

(* --- daemon engine ------------------------------------------------------- *)

let program = {|
int counter;

int bump(int k) {
  counter = counter + k;
  return counter;
}

int main() {
  int i;
  i = 0;
  while (i < 50) {
    i = bump(1) - counter + i + 1;
  }
  return counter;
}
|}

let script sid =
  [
    Proto.encode_command
      (Proto.Open
         {
           sid;
           source = Proto.Program program;
           strategy = "BitmapInlineRegisters";
           opt = "none";
         });
    Proto.encode_command (Proto.Arm { sid; target = Proto.Var "counter" });
    (* Undersized fuel first: the slice machinery must answer [running]
       and leave the session resumable. *)
    Proto.encode_command (Proto.Run { sid; fuel = 500 });
    Proto.encode_command (Proto.Run { sid; fuel = 100_000_000 });
    Proto.encode_command (Proto.Query_last_write { sid; target = "counter" });
    Proto.encode_command (Proto.Query_history { sid; target = "counter"; len = 4 });
    Proto.encode_command (Proto.Travel { sid; insn = 100 });
    Proto.encode_command (Proto.Report { sid });
    Proto.encode_command (Proto.Verify { sid });
    Proto.encode_command (Proto.Close { sid });
  ]

(* Run the same three-session workload on an engine with [shards]
   domains (tiny slice so [run] needs many quanta) and return each
   session's reply stream plus the merged telemetry JSON. *)
let run_engine shards =
  let t = Daemon.create ~shards ~slice:700 () in
  Fun.protect
    ~finally:(fun () -> Daemon.shutdown t)
    (fun () ->
      let c = Daemon.client t in
      let sids = [ "alpha"; "beta"; "gamma" ] in
      Daemon.submit t c "hello";
      List.iter
        (fun sid -> List.iter (Daemon.submit t c) (script sid))
        sids;
      Daemon.drain t;
      let lines = Daemon.output c in
      let stream_of sid =
        String.concat "\n"
          (List.filter
             (fun l ->
               match Proto.decode_reply l with
               | Ok { Proto.r_sid; _ } -> r_sid = sid
               | Error _ -> false)
             lines)
      in
      let streams = List.map (fun sid -> stream_of sid) ("-" :: sids) in
      check_int "all sessions closed" 0 (Daemon.sessions_open t);
      (streams, Export.to_json_string (Daemon.merged_report t)))

let test_engine_transcripts () =
  let streams, _ = run_engine 1 in
  (match streams with
  | [ client_level; alpha; _; _ ] ->
    check_string "hello handshake" "- 1 hello dbp-wire/1" client_level;
    let lines = String.split_on_char '\n' alpha in
    let kinds =
      List.map
        (fun l ->
          match Proto.decode_reply l with
          | Ok { Proto.r_body; _ } -> (
            match r_body with
            | Proto.Opened _ -> "opened"
            | Proto.Armed _ -> "armed"
            | Proto.Running _ -> "running"
            | Proto.Exited _ -> "exited"
            | Proto.Hit _ -> "hit"
            | Proto.Last_write _ -> "last-write"
            | Proto.History _ -> "history"
            | Proto.Write _ -> "write"
            | Proto.Traveled _ -> "traveled"
            | Proto.Report_json _ -> "report"
            | Proto.Verified _ -> "verified"
            | Proto.Closed -> "closed"
            | _ -> "?")
          | Error _ -> "!")
        lines
    in
    check_string "session opens then arms" "opened,armed"
      (String.concat "," (List.filteri (fun i _ -> i < 2) kinds));
    check_bool "undersized fuel answers running" true
      (List.mem "running" kinds);
    check_bool "hits streamed during run" true (List.mem "hit" kinds);
    check_bool "terminal exited" true (List.mem "exited" kinds);
    check_bool "last-write answered" true (List.mem "last-write" kinds);
    check_bool "history answered" true (List.mem "history" kinds);
    check_bool "travel answered" true (List.mem "traveled" kinds);
    check_bool "verify answered" true (List.mem "verified" kinds);
    check_string "closed last" "closed" (List.nth kinds (List.length kinds - 1));
    (* Sequence numbers are 1..n with no gaps. *)
    List.iteri
      (fun i l ->
        match Proto.decode_reply l with
        | Ok { Proto.r_seq; _ } -> check_int "monotone seq" (i + 1) r_seq
        | Error m -> Alcotest.fail m)
      lines
  | _ -> Alcotest.fail "unexpected stream count")

let test_engine_shard_determinism () =
  (* Same script, different shard counts: every session's transcript
     and the merged telemetry must be byte-identical. *)
  let s1, t1 = run_engine 1 in
  let s3, t3 = run_engine 3 in
  List.iteri
    (fun i (a, b) ->
      check_string (Printf.sprintf "stream %d identical across shards" i) a b)
    (List.combine s1 s3);
  check_string "merged telemetry identical across shards" t1 t3

let test_engine_errors_and_gauges () =
  let t = Daemon.create ~shards:2 () in
  Fun.protect
    ~finally:(fun () -> Daemon.shutdown t)
    (fun () ->
      let c = Daemon.client t in
      Daemon.submit t c "run nosuch 5";
      Daemon.submit t c "open - program %z Bitmap none";
      Daemon.submit t c "garbage frame here";
      Daemon.submit t c
        (Proto.encode_command
           (Proto.Open
              {
                sid = "e1";
                source = Proto.Program program;
                strategy = "Bitmap";
                opt = "none";
              }));
      (* Duplicate open and a second client touching e1 both refuse. *)
      Daemon.submit t c
        (Proto.encode_command
           (Proto.Open
              {
                sid = "e1";
                source = Proto.Workload "nope";
                strategy = "Bitmap";
                opt = "none";
              }));
      let c2 = Daemon.client t in
      Daemon.submit t c2 (Proto.encode_command (Proto.Report { sid = "e1" }));
      Daemon.drain t;
      let errors lines =
        List.length
          (List.filter
             (fun l ->
               match Proto.decode_reply l with
               | Ok { Proto.r_body = Proto.Error _; _ } -> true
               | _ -> false)
             lines)
      in
      check_int "unknown session, bad sid, parse error, dup open" 4
        (errors (Daemon.output c));
      check_int "foreign session refused" 1 (errors (Daemon.output c2));
      check_int "one session live" 1 (Daemon.sessions_open t);
      let rep = Daemon.merged_report t in
      let counter name =
        match List.assoc_opt name rep.Telemetry.r_counters with
        | Some v -> v
        | None -> -1
      in
      check_int "sessions_open gauge" 1 (counter "sessions_open");
      (* Six frames submitted, one unparseable: only decoded commands
         are counted. *)
      check_int "commands_served counts every decoded frame" 5
        (counter "commands_served");
      (* Disconnect closes the orphan and its telemetry is absorbed. *)
      Daemon.close_client t c;
      Daemon.drain t;
      check_int "disconnect closed the orphan" 0 (Daemon.sessions_open t);
      let rep = Daemon.merged_report t in
      check_bool "closed session's counters absorbed" true
        (List.assoc "store_execs" rep.Telemetry.r_counters >= 0))

(* --- scrape hardening ---------------------------------------------------- *)

let http_roundtrip srv ~shutdown_after request =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with _ -> ())
    (fun () ->
      Unix.connect sock
        (Unix.ADDR_INET (Unix.inet_addr_loopback, Scrape.port srv));
      ignore (Unix.write_substring sock request 0 (String.length request));
      if shutdown_after then Unix.shutdown sock Unix.SHUTDOWN_SEND;
      ignore (Scrape.poll srv);
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 4096 in
      (try
         let rec drain () =
           let k = Unix.read sock chunk 0 (Bytes.length chunk) in
           if k > 0 then begin
             Buffer.add_subbytes buf chunk 0 k;
             drain ()
           end
         in
         drain ()
       with Unix.Unix_error _ -> ());
      Buffer.contents buf)

let has_substring hay needle =
  let n = String.length needle in
  let rec go i =
    i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1))
  in
  go 0

let test_scrape_hardening () =
  let srv = Scrape.create ~port:0 ~metrics:(fun () -> "m 1\n") () in
  Fun.protect
    ~finally:(fun () -> Scrape.close srv)
    (fun () ->
      (* An oversized head with no terminator fills the 2 KiB cap: 400,
         and the metrics callback never runs. *)
      let resp =
        http_roundtrip srv ~shutdown_after:false (String.make 4096 'A')
      in
      check_bool "oversized head is 400" true
        (has_substring resp "HTTP/1.0 400");
      (* Ditto when the flood starts with a plausible request line:
         completeness, not luck of the buffer boundary, decides. *)
      let resp =
        http_roundtrip srv ~shutdown_after:false
          ("GET /metrics HTTP/1.0\r\nX-Pad: " ^ String.make 4096 'B')
      in
      check_bool "oversized header block is 400" true
        (has_substring resp "HTTP/1.0 400");
      (* A slow-loris that stalls mid-head hits the receive timeout:
         400, bounded wait, never dispatched. *)
      let resp = http_roundtrip srv ~shutdown_after:false "GET /met" in
      check_bool "stalled partial head is 400" true
        (has_substring resp "HTTP/1.0 400");
      (* A sloppy client that closes after a complete request line (no
         terminating blank line) is still served. *)
      let resp =
        http_roundtrip srv ~shutdown_after:true "GET /metrics HTTP/1.0\r\n"
      in
      check_bool "clean-EOF request still served" true
        (has_substring resp "HTTP/1.0 200 OK");
      check_bool "clean-EOF request got the body" true
        (has_substring resp "m 1");
      (* A fully terminated request is unaffected by the hardening. *)
      let resp =
        http_roundtrip srv ~shutdown_after:false "GET / HTTP/1.0\r\n\r\n"
      in
      check_bool "terminated request still served" true
        (has_substring resp "HTTP/1.0 200 OK"))

(* --- suites -------------------------------------------------------------- *)

let suites =
  [
    ( "serve.proto",
      [
        Alcotest.test_case "escape edges" `Quick test_escape_edges;
        QCheck_alcotest.to_alcotest prop_escape_roundtrip;
        QCheck_alcotest.to_alcotest prop_command_roundtrip;
        QCheck_alcotest.to_alcotest prop_reply_roundtrip;
        Alcotest.test_case "malformed frames rejected" `Quick
          test_malformed_frames;
      ] );
    ( "serve.sched",
      [
        Alcotest.test_case "per-key FIFO and failure backstop" `Quick
          test_sched_ordering;
        Alcotest.test_case "merge determinism across shard counts" `Quick
          test_sched_merge_determinism;
      ] );
    ( "serve.daemon",
      [
        Alcotest.test_case "full-session transcript" `Slow
          test_engine_transcripts;
        Alcotest.test_case "transcripts and telemetry shard-invariant" `Slow
          test_engine_shard_determinism;
        Alcotest.test_case "errors, gauges, disconnect" `Quick
          test_engine_errors_and_gauges;
      ] );
    ( "serve.scrape",
      [
        Alcotest.test_case "malformed-head hardening" `Slow
          test_scrape_hardening;
      ] );
  ]
