open Sparc
open Machine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Memory -------------------------------------------------------------- *)

let test_memory_words () =
  let m = Memory.create () in
  check_int "uninitialized" 0 (Memory.read_word m 0x1000);
  Memory.write_word m 0x1000 0xDEADBEEF;
  check_int "read back" (Word.norm 0xDEADBEEF) (Memory.read_word m 0x1000);
  Memory.write_word m 0xFFFF_FFFC (-1);
  check_int "top of memory" (-1) (Memory.read_word m 0xFFFF_FFFC);
  Alcotest.check_raises "misaligned"
    (Memory.Misaligned { addr = 0x1002; width = 4 })
    (fun () -> ignore (Memory.read_word m 0x1002))

let test_memory_bytes () =
  let m = Memory.create () in
  Memory.write_word m 0x2000 0x11223344;
  (* Big-endian: byte 0 is the most significant. *)
  check_int "byte 0" 0x11 (Memory.read_byte m 0x2000);
  check_int "byte 3" 0x44 (Memory.read_byte m 0x2003);
  Memory.write_byte m 0x2001 0xAB;
  check_int "after byte write" (Word.norm 0x11AB3344) (Memory.read_word m 0x2000);
  check_int "half 0" 0x11AB (Memory.read_half m 0x2000);
  Memory.write_half m 0x2002 0xCDEF;
  check_int "after half write" (Word.norm 0x11ABCDEF) (Memory.read_word m 0x2000)

let test_memory_page_offsets () =
  (* Regression: addresses 1 KiB apart within the same 4 KiB page must
     not alias (a precedence bug in the page-offset mask once made
     0x4003F0 and 0x4007F0 share a cell). *)
  let m = Memory.create () in
  List.iter
    (fun (a, v) -> Memory.write_word m a v)
    [ (0x4003F0, 1); (0x4007F0, 2); (0x400BF0, 3); (0x400FF0, 4) ];
  check_int "1k apart" 1 (Memory.read_word m 0x4003F0);
  check_int "2k apart" 2 (Memory.read_word m 0x4007F0);
  check_int "3k apart" 3 (Memory.read_word m 0x400BF0);
  check_int "4k apart" 4 (Memory.read_word m 0x400FF0);
  (* Dense fill of a whole page round-trips. *)
  for i = 0 to 1023 do
    Memory.write_word m (0x80_0000 + (4 * i)) (i * 7)
  done;
  let ok = ref true in
  for i = 0 to 1023 do
    if Memory.read_word m (0x80_0000 + (4 * i)) <> i * 7 then ok := false
  done;
  check_bool "page fill round trip" true !ok

let test_memory_signed () =
  let m = Memory.create () in
  Memory.write_byte m 0x3000 0xFF;
  check_int "signed byte" (-1) (Memory.read_signed m 0x3000 Insn.Byte);
  check_int "unsigned byte" 0xFF (Memory.read_unsigned m 0x3000 Insn.Byte);
  Memory.write_half m 0x3002 0x8000;
  check_int "signed half" (-32768) (Memory.read_signed m 0x3002 Insn.Half);
  check_int "unsigned half" 0x8000 (Memory.read_unsigned m 0x3002 Insn.Half)

(* --- Cache --------------------------------------------------------------- *)

let test_cache_basic () =
  let c = Cache.create ~size_bytes:1024 ~line_bytes:32 () in
  check_bool "cold miss" false (Cache.access c 0x1000);
  check_bool "hit same line" true (Cache.access c 0x101C);
  check_bool "miss next line" false (Cache.access c 0x1020);
  (* Direct-mapped conflict: 0x1000 and 0x1000+1024 map to the same line. *)
  check_bool "conflict evicts" false (Cache.access c 0x1400);
  check_bool "original now misses" false (Cache.access c 0x1000);
  check_int "hits" 1 (Cache.hits c);
  check_int "misses" 4 (Cache.misses c)

let test_cache_flush () =
  let c = Cache.create ~size_bytes:1024 ~line_bytes:32 () in
  ignore (Cache.access c 0x1000);
  Cache.flush c;
  check_bool "miss after flush" false (Cache.access c 0x1000);
  check_int "counters reset" 1 (Cache.misses c)

(* --- Windows -------------------------------------------------------------- *)

let test_windows_overlap () =
  let w = Windows.create () in
  Windows.set w (Reg.o 0) 42;
  Windows.save w;
  check_int "out becomes in" 42 (Windows.get w (Reg.i_ 0));
  Windows.set w (Reg.i_ 0) 43;
  Windows.restore w;
  check_int "in writes propagate back" 43 (Windows.get w (Reg.o 0))

let test_windows_g0 () =
  let w = Windows.create () in
  Windows.set w Reg.g0 99;
  check_int "g0 reads zero" 0 (Windows.get w Reg.g0)

let test_windows_oscillation () =
  (* Oscillating save/restore at a fixed depth beyond the window count
     must spill only on the first crossing, as on real hardware. *)
  let w = Windows.create ~nwindows:4 () in
  for _ = 1 to 6 do Windows.save w done;
  (* depth 1 -> 7 with 4 windows: saves past the 3rd spill. *)
  let spills_after_dive = Windows.spills w in
  check_int "three spills on the dive" 3 spills_after_dive;
  for _ = 1 to 20 do
    Windows.restore w;
    Windows.save w
  done;
  check_int "oscillation adds no spills" spills_after_dive (Windows.spills w);
  check_int "nor fills" 0 (Windows.fills w);
  (* Returning all the way up fills the spilled windows back. *)
  for _ = 1 to 5 do Windows.restore w done;
  check_int "fills on the climb" 2 (Windows.fills w)

let test_windows_spill () =
  let w = Windows.create ~nwindows:4 () in
  for _ = 1 to 6 do Windows.save w done;
  check_bool "spills counted" true (Windows.spills w >= 3);
  for _ = 1 to 6 do Windows.restore w done;
  Alcotest.check_raises "underflow" Windows.Underflow (fun () ->
      Windows.restore w)

(* --- Cpu ------------------------------------------------------------------- *)

let run_program ?config items data =
  let prog = { Asm.text = Asm.Label "main" :: items; data; entry = "main" } in
  let image = Assembler.assemble prog in
  let cpu = Cpu.create ?config image in
  Cpu.install_basic_services cpu;
  let code = Cpu.run cpu in
  (cpu, code, image)

let exit_with reg = [ Asm.Insn (Asm.mov (Insn.Reg reg) (Reg.o 0)); Asm.Insn (Asm.trap 0) ]

let test_cpu_arith () =
  let items =
    Asm.insns
      [
        Asm.mov (Insn.Imm 6) (Reg.l 0);
        Asm.mov (Insn.Imm 7) (Reg.l 1);
        Asm.smul (Reg.l 0) (Insn.Reg (Reg.l 1)) (Reg.l 2);
      ]
    @ exit_with (Reg.l 2)
  in
  let _, code, _ = run_program items [] in
  check_int "6*7" 42 code

let test_cpu_memory_and_set () =
  let items =
    [
      Asm.Set_label { label = "x"; offset = 0; rd = Reg.l 0 };
      Asm.Insn (Asm.ld (Reg.l 0) (Insn.Imm 0) (Reg.l 1));
      Asm.Insn (Asm.add (Reg.l 1) (Insn.Imm 1) (Reg.l 1));
      Asm.Insn (Asm.st (Reg.l 1) (Reg.l 0) (Insn.Imm 0));
      Asm.Insn (Asm.ld (Reg.l 0) (Insn.Imm 0) (Reg.l 2));
    ]
    @ exit_with (Reg.l 2)
  in
  let _, code, _ = run_program items [ { Asm.name = "x"; size = 4; init = [ 41 ] } ] in
  check_int "increment global" 42 code

let test_cpu_loop_and_branch () =
  (* sum 1..10 *)
  let items =
    Asm.insns
      [
        Asm.mov (Insn.Imm 0) (Reg.l 0);
        Asm.mov (Insn.Imm 1) (Reg.l 1);
      ]
    @ [
        Asm.Label "loop";
        Asm.Insn (Asm.add (Reg.l 0) (Insn.Reg (Reg.l 1)) (Reg.l 0));
        Asm.Insn (Asm.add (Reg.l 1) (Insn.Imm 1) (Reg.l 1));
        Asm.Insn (Asm.cmp (Reg.l 1) (Insn.Imm 10));
        Asm.Insn (Asm.branch Cond.Le "loop");
      ]
    @ exit_with (Reg.l 0)
  in
  let _, code, _ = run_program items [] in
  check_int "sum 1..10" 55 code

let test_cpu_call_save_restore () =
  (* main calls double(21) which returns its argument doubled. *)
  let items =
    [
      Asm.Insn (Asm.mov (Insn.Imm 21) (Reg.o 0));
      Asm.Insn (Asm.call "double");
      Asm.Insn Asm.nop;
      Asm.Insn (Asm.trap 0);
      Asm.Label "double";
      Asm.Insn (Asm.save 96);
      Asm.Insn (Asm.add (Reg.i_ 0) (Insn.Reg (Reg.i_ 0)) (Reg.i_ 0));
      Asm.Insn Asm.ret;
      Asm.Insn Asm.restore;
    ]
  in
  (* Note: ret jumps to %i7+8, skipping the padding nop after call; the
     restore after ret is never executed in this ordering (ret;restore
     is the usual SPARC idiom where restore sits in the delay slot — we
     instead restore before ret below). *)
  let items =
    List.map
      (fun item ->
        match item with
        | Asm.Insn (Insn.Jmpl _) -> item
        | _ -> item)
      items
  in
  (* Rewrite: use restore before ret to match no-delay-slot semantics. *)
  let items =
    [
      Asm.Insn (Asm.mov (Insn.Imm 21) (Reg.o 0));
      Asm.Insn (Asm.call "double");
      Asm.Insn Asm.nop;
      Asm.Insn (Asm.trap 0);
      Asm.Label "double";
      Asm.Insn (Asm.save 96);
      Asm.Insn (Asm.add (Reg.i_ 0) (Insn.Reg (Reg.i_ 0)) (Reg.o 0));
      Asm.Insn (Insn.Restore { rs1 = Reg.o 0; op2 = Insn.Imm 0; rd = Reg.o 0 });
      Asm.Insn Asm.retl;
    ]
    |> fun l -> ignore items; l
  in
  let _, code, _ = run_program items [] in
  check_int "double(21)" 42 code

let test_cpu_output () =
  let items =
    Asm.insns
      [
        Asm.mov (Insn.Imm 123) (Reg.o 0);
        Asm.trap 1;
        Asm.mov (Insn.Imm (Char.code '\n')) (Reg.o 0);
        Asm.trap 2;
        Asm.mov (Insn.Imm 0) (Reg.o 0);
        Asm.trap 0;
      ]
  in
  let cpu, code, _ = run_program items [] in
  check_int "exit 0" 0 code;
  Alcotest.(check string) "output" "123\n" (Cpu.output cpu)

let test_cpu_sbrk () =
  let items =
    Asm.insns
      [
        Asm.mov (Insn.Imm 64) (Reg.o 0);
        Asm.trap 3;
        Asm.mov (Insn.Reg (Reg.o 0)) (Reg.l 0);
        Asm.mov (Insn.Imm 64) (Reg.o 0);
        Asm.trap 3;
        Asm.sub (Reg.o 0) (Insn.Reg (Reg.l 0)) (Reg.o 0);
        Asm.trap 0;
      ]
  in
  let _, code, _ = run_program items [] in
  check_int "sbrk spacing" 64 code

let test_cpu_store_hook () =
  let stores = ref [] in
  let items =
    Asm.insns
      [
        Asm.mov (Insn.Imm 7) (Reg.l 0);
      ]
    @ [ Asm.Set_label { label = "x"; offset = 0; rd = Reg.l 1 } ]
    @ Asm.insns
        [
          Asm.st (Reg.l 0) (Reg.l 1) (Insn.Imm 0);
          Asm.st ~width:Insn.Byte (Reg.l 0) (Reg.l 1) (Insn.Imm 5);
          Asm.mov (Insn.Imm 0) (Reg.o 0);
          Asm.trap 0;
        ]
  in
  let prog =
    { Asm.text = Asm.Label "main" :: items;
      data = [ { Asm.name = "x"; size = 8; init = [] } ];
      entry = "main" }
  in
  let image = Assembler.assemble prog in
  let cpu = Cpu.create image in
  Cpu.install_basic_services cpu;
  Cpu.set_store_hook cpu (fun _ ~addr ~width -> stores := (addr, width) :: !stores);
  ignore (Cpu.run cpu);
  let x = Option.get (Assembler.addr_of_label image "x") in
  check_bool "word store seen" true (List.mem (x, Insn.Word) !stores);
  check_bool "byte store seen" true (List.mem (x + 5, Insn.Byte) !stores)

let test_cpu_hook_order () =
  (* Hooks and probes fire strictly in registration order (the counted
     hook arrays and the per-pc probe slots both append), and
     registering many must stay cheap — the seed's list-append
     registration was quadratic. *)
  let fired = ref [] in
  let items =
    [ Asm.Set_label { label = "x"; offset = 0; rd = Reg.l 1 } ]
    @ Asm.insns
        [
          Asm.mov (Insn.Imm 7) (Reg.l 0);
          Asm.st (Reg.l 0) (Reg.l 1) (Insn.Imm 0);
          Asm.ld (Reg.l 1) (Insn.Imm 0) (Reg.l 2);
          Asm.mov (Insn.Imm 0) (Reg.o 0);
          Asm.trap 0;
        ]
  in
  let prog =
    { Asm.text = Asm.Label "main" :: items;
      data = [ { Asm.name = "x"; size = 4; init = [] } ];
      entry = "main" }
  in
  let image = Assembler.assemble prog in
  let cpu = Cpu.create image in
  Cpu.install_basic_services cpu;
  let n = 100 in
  for i = 1 to n do
    Cpu.set_store_hook cpu (fun _ ~addr:_ ~width:_ -> fired := ("s", i) :: !fired);
    Cpu.set_load_hook cpu (fun _ ~addr:_ ~width:_ -> fired := ("l", i) :: !fired);
    Cpu.add_probe cpu image.entry (fun _ -> fired := ("p", i) :: !fired)
  done;
  ignore (Cpu.run cpu);
  let order tag =
    List.rev (List.filter_map (fun (t, i) -> if t = tag then Some i else None) !fired)
  in
  let expect = List.init n (fun i -> i + 1) in
  Alcotest.(check (list int)) "store hooks in registration order" expect (order "s");
  Alcotest.(check (list int)) "load hooks in registration order" expect (order "l");
  Alcotest.(check (list int)) "probes in registration order" expect (order "p")

let test_cpu_patch () =
  let items =
    Asm.insns [ Asm.mov (Insn.Imm 1) (Reg.o 0); Asm.trap 0 ]
  in
  let prog = { Asm.text = Asm.Label "main" :: items; data = []; entry = "main" } in
  let image = Assembler.assemble prog in
  let cpu = Cpu.create image in
  Cpu.install_basic_services cpu;
  (* Patch the mov to load 99 instead. *)
  Cpu.patch cpu image.entry (Asm.mov (Insn.Imm 99) (Reg.o 0));
  check_int "patched exit code" 99 (Cpu.run cpu)

let test_cpu_probe () =
  let count = ref 0 in
  let items =
    Asm.insns
      [
        Asm.mov (Insn.Imm 0) (Reg.l 0);
      ]
    @ [
        Asm.Label "loop";
        Asm.Insn (Asm.add (Reg.l 0) (Insn.Imm 1) (Reg.l 0));
        Asm.Insn (Asm.cmp (Reg.l 0) (Insn.Imm 5));
        Asm.Insn (Asm.branch Cond.L "loop");
      ]
    @ Asm.insns [ Asm.mov (Insn.Imm 0) (Reg.o 0); Asm.trap 0 ]
  in
  let prog = { Asm.text = Asm.Label "main" :: items; data = []; entry = "main" } in
  let image = Assembler.assemble prog in
  let cpu = Cpu.create image in
  Cpu.install_basic_services cpu;
  let loop_addr = Option.get (Assembler.addr_of_label image "loop") in
  Cpu.add_probe cpu loop_addr (fun _ -> incr count);
  ignore (Cpu.run cpu);
  check_int "probe fired per iteration" 5 !count

let test_cpu_fuel () =
  let items = [ Asm.Label "spin"; Asm.Insn (Asm.ba "spin") ] in
  let prog = { Asm.text = Asm.Label "main" :: items; data = []; entry = "main" } in
  let image = Assembler.assemble prog in
  let cpu = Cpu.create image in
  (try
     ignore (Cpu.run ~fuel:1000 cpu);
     Alcotest.fail "expected Out_of_fuel"
   with Cpu.Out_of_fuel { executed } -> check_int "fuel" 1000 executed)

let test_cpu_cycles_accumulate () =
  let items =
    Asm.insns
      [ Asm.mov (Insn.Imm 0) (Reg.o 0); Asm.trap 0 ]
  in
  let _, _, _ = run_program items [] in
  let cpu, _, _ = run_program items [] in
  let s = Cpu.stats cpu in
  check_bool "cycles > instrs" true (s.Cpu.cycles > s.Cpu.instrs);
  check_int "instrs" 2 s.Cpu.instrs

let test_cpu_unhandled_trap () =
  let items = Asm.insns [ Asm.trap 77 ] in
  let prog = { Asm.text = Asm.Label "main" :: items; data = []; entry = "main" } in
  let image = Assembler.assemble prog in
  let cpu = Cpu.create image in
  (try
     ignore (Cpu.run cpu);
     Alcotest.fail "expected fault"
   with Cpu.Fault _ -> ())

let suites =
  [
    ( "machine.memory",
      [
        Alcotest.test_case "words" `Quick test_memory_words;
        Alcotest.test_case "bytes and halves" `Quick test_memory_bytes;
        Alcotest.test_case "page offsets do not alias" `Quick test_memory_page_offsets;
        Alcotest.test_case "sign extension" `Quick test_memory_signed;
      ] );
    ( "machine.cache",
      [
        Alcotest.test_case "hits and conflicts" `Quick test_cache_basic;
        Alcotest.test_case "flush" `Quick test_cache_flush;
      ] );
    ( "machine.windows",
      [
        Alcotest.test_case "overlap" `Quick test_windows_overlap;
        Alcotest.test_case "g0" `Quick test_windows_g0;
        Alcotest.test_case "spill accounting" `Quick test_windows_spill;
        Alcotest.test_case "oscillation is free" `Quick test_windows_oscillation;
      ] );
    ( "machine.cpu",
      [
        Alcotest.test_case "arithmetic" `Quick test_cpu_arith;
        Alcotest.test_case "memory + set_label" `Quick test_cpu_memory_and_set;
        Alcotest.test_case "loop and branch" `Quick test_cpu_loop_and_branch;
        Alcotest.test_case "call/save/restore" `Quick test_cpu_call_save_restore;
        Alcotest.test_case "print traps" `Quick test_cpu_output;
        Alcotest.test_case "sbrk" `Quick test_cpu_sbrk;
        Alcotest.test_case "store hook" `Quick test_cpu_store_hook;
        Alcotest.test_case "hook registration order" `Quick test_cpu_hook_order;
        Alcotest.test_case "patching" `Quick test_cpu_patch;
        Alcotest.test_case "probes" `Quick test_cpu_probe;
        Alcotest.test_case "fuel" `Quick test_cpu_fuel;
        Alcotest.test_case "cycle accounting" `Quick test_cpu_cycles_accumulate;
        Alcotest.test_case "unhandled trap" `Quick test_cpu_unhandled_trap;
      ] );
  ]
