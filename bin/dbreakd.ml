(* dbreakd — the data-breakpoint service daemon.

   Server mode: listen for dbp-wire/1 clients, multiplex their debug
   sessions across a shard pool, optionally expose live aggregated
   telemetry on a Prometheus scrape port.

     dbreakd --port 7070 --shards 4 --metrics-port 9090 --serve-for 60

   Client mode: drive a scripted session against a running daemon and
   print every reply line verbatim (the transcript is deterministic, so
   CI can diff it).

     dbreakd --connect 7070 --script session.dbp

   Script files hold one dbp-wire/1 command per line ('#' comments and
   blank lines skipped), plus one client-side convenience:

     !open SID FILE STRATEGY OPT

   which reads mini-C source from FILE and sends the equivalent
   [open SID program <escaped source> STRATEGY OPT] frame. *)

open Cmdliner

let fail msg =
  Printf.eprintf "dbreakd: %s\n" msg;
  1

(* --- client mode ------------------------------------------------------- *)

(* One command in flight at a time: send a line, then read replies
   until the command completes — a terminal reply ([opened], [exited],
   [closed], [error], ...), or, for [query history], the [history C]
   header followed by its C [write] frames.  Async [hit] frames are
   part of the stream and never terminate a command. *)

let read_reply_line inb = try Some (input_line inb) with End_of_file -> None

let command_done line pending_writes =
  match Proto.decode_reply line with
  | Error _ -> true (* unparseable traffic: stop rather than hang *)
  | Ok { Proto.r_body; _ } -> (
    match r_body with
    | Proto.History { count } ->
      pending_writes := count;
      !pending_writes = 0
    | Proto.Write _ ->
      decr pending_writes;
      !pending_writes <= 0
    | body -> Proto.terminal body)

let expand_script_line line =
  match String.split_on_char ' ' line with
  | "!open" :: sid :: rest -> (
    (* FILE may contain escaped spaces? No — script sugar keeps it
       simple: FILE is a plain path token. *)
    match rest with
    | [ file; strategy; opt ] ->
      let src = Exporter.read_file file in
      Proto.encode_command
        (Proto.Open { sid; source = Proto.Program src; strategy; opt })
    | _ -> raise (Sys_error "usage: !open SID FILE STRATEGY OPT")
    )
  | _ -> line

let run_client host port script =
  let lines =
    Exporter.read_file script |> String.split_on_char '\n'
    |> List.filter_map (fun l ->
           let l = String.trim l in
           if l = "" || l.[0] = '#' then None else Some l)
  in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with _ -> ())
    (fun () ->
      Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
      let inb = Unix.in_channel_of_descr sock in
      let outb = Unix.out_channel_of_descr sock in
      let ok = ref true in
      List.iter
        (fun line ->
          if !ok then begin
            let frame = expand_script_line line in
            output_string outb frame;
            output_char outb '\n';
            flush outb;
            let pending_writes = ref (-1) in
            let rec await () =
              match read_reply_line inb with
              | None ->
                ok := false;
                prerr_endline "dbreakd: server closed the connection"
              | Some reply ->
                print_endline reply;
                if not (command_done reply pending_writes) then await ()
            in
            await ()
          end)
        lines;
      if !ok then 0 else 1)

(* --- server mode ------------------------------------------------------- *)

let run_server port shards slice metrics_port serve_seconds =
  let engine = Daemon.create ~shards ~slice () in
  let srv = Daemon.listen engine ~port () in
  Printf.printf "dbreakd listening on 127.0.0.1:%d (%d shards)\n%!"
    (Daemon.server_port srv) (Daemon.shards engine);
  let scrape =
    match metrics_port with
    | None -> None
    | Some p ->
      let s = Scrape.create ~port:p ~metrics:(fun () -> Daemon.metrics_body engine) () in
      Printf.printf "serving metrics on http://127.0.0.1:%d/metrics\n%!"
        (Scrape.port s);
      Some s
  in
  let deadline = Unix.gettimeofday () +. serve_seconds in
  let rec loop () =
    let now = Unix.gettimeofday () in
    if now < deadline then begin
      (try
         ignore
           (Unix.select (Daemon.server_fds srv) [] []
              (min 0.05 (deadline -. now)))
       with Unix.Unix_error (Unix.EINTR, _, _) -> ());
      Daemon.server_poll srv;
      Option.iter (fun s -> ignore (Scrape.poll s)) scrape;
      loop ()
    end
  in
  loop ();
  Daemon.server_close srv;
  Option.iter Scrape.close scrape;
  Daemon.drain engine;
  Daemon.shutdown engine;
  0

(* --- command line ------------------------------------------------------ *)

let run_cmd port shards slice metrics_port serve_seconds connect host script =
  try
    match (connect, script) with
    | Some cport, Some s -> run_client host cport s
    | Some _, None -> fail "--connect requires --script FILE"
    | None, Some _ -> fail "--script requires --connect PORT"
    | None, None -> run_server port shards slice metrics_port serve_seconds
  with
  | Sys_error m -> fail m
  | Invalid_argument m -> fail m
  | Unix.Unix_error (e, fn, _) ->
    fail (Printf.sprintf "%s: %s" fn (Unix.error_message e))

let port_arg =
  Arg.(value & opt int 0 & info [ "p"; "port" ] ~docv:"PORT"
       ~doc:"Listen port for the wire protocol (0 binds an ephemeral \
             port, announced on stdout).")

let shards_arg =
  Arg.(value & opt int 1 & info [ "j"; "shards" ] ~docv:"N"
       ~doc:"Worker domains; sessions are hashed to a shard.  Merged \
             telemetry and per-session transcripts do not depend on \
             $(docv).")

let slice_arg =
  Arg.(value & opt int Daemon.default_slice & info [ "slice" ] ~docv:"INSTRS"
       ~doc:"Fairness quantum: instructions one session may run before \
             other sessions on its shard get a turn.")

let metrics_port_arg =
  Arg.(value & opt (some int) None & info [ "metrics-port" ] ~docv:"PORT"
       ~doc:"Also serve aggregated live telemetry as Prometheus text at \
             http://127.0.0.1:$(docv)/metrics (0 for ephemeral).")

let serve_for_arg =
  Arg.(value & opt float 30. & info [ "serve-for" ] ~docv:"SECONDS"
       ~doc:"Run the daemon loop for $(docv) seconds, then close \
             remaining sessions and exit.")

let connect_arg =
  Arg.(value & opt (some int) None & info [ "connect" ] ~docv:"PORT"
       ~doc:"Client mode: connect to a daemon on $(docv) and drive the \
             --script session, printing each reply line verbatim.")

let host_arg =
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR"
       ~doc:"Daemon address for --connect.")

let script_arg =
  Arg.(value & opt (some file) None & info [ "script" ] ~docv:"FILE"
       ~doc:"dbp-wire/1 command script: one command per line, '#' \
             comments; «!open SID FILE STRATEGY OPT» reads mini-C \
             source from FILE client-side.")

let cmd =
  let doc = "data-breakpoint service daemon (dbp-wire/1)" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Multiplexes concurrent debug sessions over a line-delimited \
         wire protocol: open a program under an instrumentation \
         strategy, arm data breakpoints, run with fuel slicing (one \
         session cannot starve the rest), stream hit events, answer \
         retroactive last-writer/history/time-travel queries, and \
         report per-session or aggregated telemetry.";
      `P
        "Every reply carries the session id and a per-session sequence \
         number, so a session's transcript is deterministic and \
         byte-identical for every shard count.";
    ]
  in
  Cmd.v
    (Cmd.info "dbreakd" ~version:"1.4" ~doc ~man)
    Term.(
      const run_cmd $ port_arg $ shards_arg $ slice_arg $ metrics_port_arg
      $ serve_for_arg $ connect_arg $ host_arg $ script_arg)

(* Same exit-code contract as dbreak: 0 for --help/--version, 1 for a
   runtime failure reported by the tool itself ({!fail}), 2 for a
   usage error. *)
let () =
  exit
    (match Cmd.eval_value cmd with
    | Ok (`Ok code) -> code
    | Ok `Version | Ok `Help -> 0
    | Error (`Parse | `Term) -> 2
    | Error `Exn -> 3)
