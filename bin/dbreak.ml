(* dbreak — command-line front end to the data-breakpoint system.

   Compiles a mini-C source file, instruments its writes with the
   chosen strategy and optimization level, runs it under the monitored
   region service, and reports every update of the watched variables.

   Examples:
     dbreak program.mc --watch counter
     dbreak program.mc --watch cfg.max_depth --opt full --strategy Cache
     dbreak program.mc --dump-asm
     dbreak program.mc --stats
     dbreak program.mc --watch counter --metrics metrics.prom --trace 16
     dbreak program.mc --profile prof.json --flamegraph prof.folded
     dbreak program.mc --timeseries ts.json --heatmap heat.ppm
     dbreak program.mc --serve-metrics 9090 --serve-linger 30 *)

open Cmdliner
open Dbp

(* Every export flag funnels through the shared [Exporter.export]:
   render only when the flag was given, and let [Sys_error] escape to
   the single handler below, which turns an unwritable path into the
   same one-line exit-1 failure for all of them (the contract pinned by
   bin/dune's runtest rules).  dbreakd uses the same funnel. *)
let read_file = Exporter.read_file
let export = Exporter.export

let strategy_conv =
  let parse s =
    try Ok (Strategy.of_string s)
    with Invalid_argument m -> Error (`Msg m)
  in
  Arg.conv (parse, fun ppf s -> Strategy.pp ppf s)

let opt_conv =
  let parse = function
    | "none" | "0" -> Ok Instrument.O0
    | "symbol" | "sym" -> Ok Instrument.O_symbol
    | "full" | "loop" -> Ok Instrument.O_full
    | s -> Error (`Msg (Printf.sprintf "unknown optimization level %S" s))
  in
  let print ppf = function
    | Instrument.O0 -> Fmt.string ppf "none"
    | Instrument.O_symbol -> Fmt.string ppf "symbol"
    | Instrument.O_full -> Fmt.string ppf "full"
  in
  Arg.conv (parse, print)

(* Runtime failures are reported here (message to stderr, exit 1) so
   that everything cmdliner itself rejects — unknown flags, missing
   option arguments — is unambiguously a usage error (exit 2). *)
let fail msg =
  Printf.eprintf "dbreak: %s\n" msg;
  1

let run_cmd source_file watches strategy opt check_aliases monitor_reads dump_asm
    stats metrics trace fuel audit_file explain verify_target chrome_trace
    checkpoint_every
    last_write travel profile_file flamegraph_file timeseries_file heatmap_file
    sample_every serve_port serve_linger =
  try
    let source = read_file source_file in
    let options =
      { Instrument.default_options with strategy; opt; check_aliases;
        monitor_reads }
    in
    if dump_asm then begin
      let out = Minic.Compile.compile source in
      let plan = Instrument.run options out in
      print_string (Sparc.Printer.program_to_string plan.Instrument.program);
      0
    end
    else begin
      let telemetry = Telemetry.create ~ring_capacity:trace () in
      Telemetry.set_tag telemetry "source"
        (Filename.basename source_file);
      let audit = Audit.create () in
      Audit.set_tag audit "source" (Filename.basename source_file);
      let tracer = Trace.create ~clock:Unix.gettimeofday () in
      (* Retroactive queries need a checkpoint journal; arm one at the
         default interval if the user asked for a query without giving
         --checkpoint-every explicitly. *)
      let checkpoint_every =
        match checkpoint_every with
        | Some _ as n -> n
        | None ->
          if last_write <> None || travel <> None then Some 10_000 else None
      in
      let profile = profile_file <> None || flamegraph_file <> None in
      (* The sampler is armed whenever something consumes samples: a
         --timeseries export or a live scrape endpoint. *)
      let sample_every =
        if timeseries_file <> None || serve_port <> None then Some sample_every
        else None
      in
      let session =
        Session.create ~options ~telemetry ~audit ~trace:tracer
          ?checkpoint_every ~profile ~profile_clock:Unix.gettimeofday
          ?sample_every ~sample_clock:Unix.gettimeofday
          ~heatmap:(heatmap_file <> None) source
      in
      Session.install_oracle session;
      let server =
        match serve_port with
        | None -> None
        | Some port ->
          let srv =
            Scrape.create ~port
              ~metrics:(fun () -> Export.to_prometheus (Session.report session))
              ()
          in
          Printf.printf "serving metrics on http://127.0.0.1:%d/metrics\n%!"
            (Scrape.port srv);
          (* Pending scrapes are answered from the sampler hook, so a
             request waits at most one sampling interval. *)
          Session.set_on_sample session (fun _ -> ignore (Scrape.poll srv));
          Some srv
      in
      let dbg = Debugger.create session in
      List.iter
        (fun spec ->
          match String.index_opt spec '.' with
          | Some i ->
            let s = String.sub spec 0 i in
            let f = String.sub spec (i + 1) (String.length spec - i - 1) in
            ignore (Debugger.watch_field dbg s f)
          | None -> ignore (Debugger.watch dbg spec))
        watches;
      if watches = [] then Mrs.enable session.Session.mrs;
      Debugger.set_on_event dbg (fun e ->
          Printf.printf "%-20s %s %-10d in %s (pc 0x%x)\n"
            e.Debugger.watch.Debugger.wname
            (match e.Debugger.access with Mrs.Write -> "<-" | Mrs.Read -> "->")
            e.Debugger.value
            (Option.value ~default:"?" e.Debugger.in_function)
            e.Debugger.pc);
      let code, output = Session.run ~fuel session in
      if output <> "" then Printf.printf "--- program output ---\n%s\n" output;
      Printf.printf "--- exited with %d ---\n" code;
      (* Snapshot the profile now: the retroactive queries below roll
         the machine's counters back and would skew the totals. *)
      let profile_rep =
        if profile then Some (Session.profile_report session) else None
      in
      (match profile_rep with
      | None -> ()
      | Some rep ->
        Printf.printf "--- profile ---\n";
        (match rep.Profile.p_functions with
        | f :: _ ->
          Printf.printf "hottest function:  %s (%d instrs exclusive, %d calls)\n"
            f.Profile.fr_name f.Profile.fr_excl_instrs f.Profile.fr_calls
        | [] -> ());
        match rep.Profile.p_backedges with
        | be :: _ ->
          Printf.printf "hottest back-edge: 0x%x -> 0x%x%s (%d taken)\n"
            be.Profile.be_from_pc be.Profile.be_to_pc
            (match Debugger.function_of_pc session be.Profile.be_from_pc with
            | Some f -> " in " ^ f
            | None -> "")
            be.Profile.be_count
        | [] -> ());
      (match (session.Session.timeseries, timeseries_file) with
      | Some _, Some _ ->
        let rep = Session.report session in
        Printf.printf "--- timeseries (every %d instrs, %d samples) ---\n%s"
          rep.Telemetry.r_sample_every
          (List.length rep.Telemetry.r_samples)
          (Timeseries.summary_text rep)
      | _ -> ());
      (match session.Session.heatmap with
      | None -> ()
      | Some hm ->
        Session.heatmap_sync_regions session;
        Printf.printf
          "--- heatmap (%d-byte pages): %d touched, writes %d, checks %d, \
           hits %d; monitored pages never hit: %d ---\n"
          (Heatmap.page_bytes hm) (Heatmap.n_pages hm)
          (Heatmap.total_writes hm) (Heatmap.total_checks hm)
          (Heatmap.total_hits hm)
          (List.length (Heatmap.never_fired hm)));
      if stats then begin
        let s = Session.stats session in
        let c = Mrs.counters session.Session.mrs in
        Printf.printf "instructions: %d\ncycles:       %d\nstores:       %d\n"
          s.Machine.Cpu.instrs s.Machine.Cpu.cycles s.Machine.Cpu.stores;
        Printf.printf "checked write executions:    %d\n"
          (Session.total_site_executions session
          - Session.eliminated_site_executions session);
        Printf.printf "eliminated write executions: %d\n"
          (Session.eliminated_site_executions session);
        Printf.printf "monitor hits: %d user, %d internal\n" c.Mrs.user_hits
          c.Mrs.internal_hits;
        Printf.printf "pre-header checks: %d (%d triggered)\n" c.Mrs.loop_entries
          c.Mrs.loop_triggers;
        Printf.printf "patches inserted: %d\n" c.Mrs.patches_inserted;
        Printf.printf "missed hits (oracle): %d\n" (Session.missed_hits session)
      end;
      if trace > 0 then begin
        let rep = Session.report session in
        Printf.printf "--- trace (last %d of %d hits) ---\n"
          (List.length rep.Telemetry.r_events)
          (List.length rep.Telemetry.r_events + rep.Telemetry.r_events_dropped);
        List.iter
          (fun (e : Telemetry.event) ->
            Printf.printf
              "insn %-10d %s %-8s addr 0x%-8x pc 0x%-8x region [0x%x,0x%x) %s\n"
              e.Telemetry.ev_insn
              (match e.Telemetry.ev_access with
              | Telemetry.Write -> "W"
              | Telemetry.Read -> "R")
              (if e.Telemetry.ev_write_type = "" then "?"
               else e.Telemetry.ev_write_type)
              e.Telemetry.ev_addr e.Telemetry.ev_pc e.Telemetry.ev_region_lo
              e.Telemetry.ev_region_hi e.Telemetry.ev_region_kind)
          rep.Telemetry.r_events
      end;
      let replay_failed = ref None in
      let replay_fail msg = replay_failed := Some (fail msg) in
      (match last_write with
      | None -> ()
      | Some target -> (
        match Session.resolve_addr session target with
        | None ->
          replay_fail
            (Printf.sprintf
               "cannot resolve %S to a data address (expected 0x-hex, \
                decimal, or a global variable name)"
               target)
        | Some addr -> (
          match Session.last_write session ~addr with
          | None ->
            Printf.printf "--- last-write %s (0x%x): never written ---\n"
              target addr
          | Some { Session.wr_hit = h; wr_write_type } ->
            Printf.printf
              "--- last-write %s (0x%x) ---\n\
               insn %-10d pc 0x%-8x %d -> %d  (%s write%s)\n"
              target addr h.Replay.h_insn h.Replay.h_pc h.Replay.h_old
              h.Replay.h_new
              (match wr_write_type with
              | Some wt -> Write_type.to_string wt
              | None -> "untyped")
              (match Debugger.function_of_pc session h.Replay.h_pc with
              | Some f -> " in " ^ f
              | None -> ""))));
      (match travel with
      | None -> ()
      | Some insn ->
        let re = Session.time_travel session ~insn in
        let s = Session.stats session in
        Printf.printf
          "--- travel to insn %d: re-executed %d instructions, now at pc \
           0x%x after %d instructions ---\n"
          insn re
          (Machine.Cpu.pc session.Session.cpu)
          s.Machine.Cpu.instrs);
      (* Exports come after the retroactive queries so the metrics and
         audit journal include the checkpoint/replay lifecycle they
         triggered.  All of them go through [export] for the shared
         unwritable-path failure behavior. *)
      export metrics (fun () -> Export.to_prometheus (Session.report session));
      export audit_file (fun () ->
          Audit.to_json_string ~indent:1 (Audit.report audit));
      export chrome_trace (fun () ->
          let counters =
            (match session.Session.profiler with
            | Some p -> Profile.chrome_counters p
            | None -> [])
            @
            match session.Session.timeseries with
            | Some ts -> Timeseries.chrome_counters ts
            | None -> []
          in
          Trace.to_chrome_string ~counters [ tracer ]);
      (match profile_rep with
      | None -> ()
      | Some rep ->
        export profile_file (fun () -> Profile.to_json_string ~indent:1 rep);
        export flamegraph_file (fun () -> Profile.folded_to_string rep));
      export timeseries_file (fun () ->
          Timeseries.to_json_string (Session.report session));
      (match (heatmap_file, session.Session.heatmap) with
      | Some path, Some hm ->
        Session.heatmap_sync_regions session;
        let render =
          (* Pick the render from the extension: an image for .ppm,
             machine-readable JSON for .json, the table otherwise. *)
          if Filename.check_suffix path ".ppm" then Heatmap.to_ppm
          else if Filename.check_suffix path ".json" then Heatmap.to_json_string
          else Heatmap.to_text
        in
        export heatmap_file (fun () -> render hm)
      | _ -> ());
      (* Translation validation of the plan itself: re-prove every
         check elimination from the pipeline outputs, independent of
         the analyses that decided it.  Runs after the exports so a
         refuted plan still leaves its artifacts behind for debugging;
         any Refuted or Unknown obligation fails the run (exit 1). *)
      let verify_rep = ref None in
      let verify_failed = ref None in
      (match verify_target with
      | None -> ()
      | Some vfile ->
        let rep =
          Verify.run
            ~audit:(Audit.report audit)
            ~tags:[ ("source", Filename.basename source_file) ]
            session.Session.plan
        in
        verify_rep := Some rep;
        Printf.printf "--- verify ---\n%s\n" (Verify.summary_line rep);
        List.iter
          (fun (o : Verify.obligation) ->
            match o.Verify.o_verdict with
            | Verify.Proved -> ()
            | Verify.Refuted _ | Verify.Unknown _ ->
              Format.printf "%a@." Verify.pp_obligation o)
          rep.Verify.v_obligations;
        if vfile <> "" then
          export (Some vfile) (fun () -> Verify.to_json_string ~indent:1 rep);
        if not (Verify.ok rep) then
          verify_failed :=
            Some
              (fail
                 (Printf.sprintf
                    "plan verification failed: %d refuted, %d undecided \
                     obligation(s)"
                    rep.Verify.v_refuted rep.Verify.v_unknown)));
      (match server with
      | None -> ()
      | Some srv ->
        (* Linger after the run (and after the exports, so files never
           wait on a scrape window) for one-shot scrapers like CI curl,
           then shut the endpoint down. *)
        if serve_linger > 0. then Scrape.serve_for srv ~seconds:serve_linger;
        Scrape.close srv);
      match !replay_failed with
      | Some code -> code
      | None -> (
      match !verify_failed with
      | Some code -> code
      | None -> (
      match explain with
      | None -> 0
      | Some target -> (
        let rep = Audit.report audit in
        (* Join the verifier's view when --verify ran: the same site's
           proof obligations, right after its journal provenance. *)
        let vtext =
          Option.bind !verify_rep (fun r -> Verify.explain r target)
        in
        match (Audit.explain rep target, vtext) with
        | None, None ->
          fail
            (Printf.sprintf
               "no write site matches %S (expected a site address or a \
                sym-matched pseudo; try --audit to list them)"
               target)
        | atext, vtext ->
          Option.iter print_string atext;
          Option.iter
            (fun t -> Printf.printf "--- verify obligations ---\n%s\n" t)
            vtext;
          0)))
    end
  with
  | Sys_error m -> fail m
  | Invalid_argument m -> fail m
  | Replay.Determinism_violation { insn; expected; actual } ->
    fail
      (Printf.sprintf
         "replay diverged from the recorded run at insn %d (digest %s, \
          expected %s)"
         insn actual expected)
  | Minic.Compile.Error e ->
    fail (Printf.sprintf "%s error: %s" e.Minic.Compile.phase e.message)
  | Machine.Cpu.Fault { pc; reason } ->
    fail (Printf.sprintf "machine fault at 0x%x: %s" pc reason)
  | Machine.Cpu.Out_of_fuel { executed } ->
    fail (Printf.sprintf "out of fuel after %d instructions" executed)
  | Debugger.No_such_variable v ->
    fail (Printf.sprintf "no such variable: %s" v)

let source_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"SOURCE.mc"
       ~doc:"Mini-C source file to debug.")

let watch_arg =
  Arg.(value & opt_all string [] & info [ "w"; "watch" ] ~docv:"VAR[.FIELD]"
       ~doc:"Set a data breakpoint on a global variable or struct field. \
             Repeatable.")

let strategy_arg =
  Arg.(value & opt strategy_conv Strategy.Bitmap_inline_registers
       & info [ "s"; "strategy" ] ~docv:"STRATEGY"
           ~doc:"Write-check strategy: Bitmap, BitmapInline, \
                 BitmapInlineRegisters, Cache, CacheInline, HashTable, \
                 TrapCheck, HardwareWatch1, HardwareWatch4, none.")

let opt_arg =
  Arg.(value & opt opt_conv Instrument.O0 & info [ "O"; "opt" ] ~docv:"LEVEL"
       ~doc:"Check elimination: none, symbol, or full (symbol + loop).")

let reads_arg =
  Arg.(value & flag & info [ "reads" ]
       ~doc:"Also monitor read instructions (the paper's sec 5 extension).")

let aliases_arg =
  Arg.(value & flag & info [ "check-aliases" ]
       ~doc:"Guard loop-optimized checks with alias regions (sec 4.5).")

let dump_asm_arg =
  Arg.(value & flag & info [ "dump-asm" ]
       ~doc:"Print the instrumented assembly instead of running.")

let stats_arg =
  Arg.(value & flag & info [ "stats" ] ~doc:"Print execution statistics.")

let metrics_arg =
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE"
       ~doc:"Write the telemetry report as Prometheus-style exposition \
             text to $(docv) after the run.")

let trace_arg =
  Arg.(value & opt int 0 & info [ "trace" ] ~docv:"N"
       ~doc:"Keep the last $(docv) monitor-hit events in a ring buffer \
             and dump them after the run.")

let fuel_arg =
  Arg.(value & opt int 500_000_000 & info [ "fuel" ] ~docv:"N"
       ~doc:"Instruction budget before giving up.")

let audit_file_arg =
  Arg.(value & opt (some string) None & info [ "audit" ] ~docv:"FILE"
       ~doc:"Write the analysis-provenance journal (one verdict per write \
             site, patch and region lifecycle events, bound-lattice \
             fixpoints, checkpoint/replay lifecycle) as versioned \
             dbp-audit/2 JSON to $(docv) after the run.")

let explain_arg =
  Arg.(value & opt (some string) None & info [ "explain" ]
       ~docv:"ADDR|PSEUDO"
       ~doc:"After the run, explain why the matching write sites kept or \
             lost their checks: the sec 4.2/4.3 verdict, its bound \
             expressions and lattice derivation, and any runtime patch \
             events.  $(docv) is a site address (0x-hex or decimal) or a \
             sym-matched pseudo name such as 'g' or 'main.i'.")

let verify_arg =
  Arg.(value & opt ~vopt:(Some "") (some string) None & info [ "verify" ]
       ~docv:"FILE"
       ~doc:"Translation-validate the instrumentation plan: re-prove \
             every eliminated check (sec 4.2 symbol-table re-match, sec \
             4.3 invariant/range interval arguments, pre-header \
             placement, dominance, alias obligations, patch-stub and \
             frame integrity) from the pipeline outputs alone, \
             cross-checked against the audit journal.  Prints the \
             obligation summary; with $(docv), also writes the \
             dbp-verify/1 JSON report there.  Any refuted or undecided \
             obligation fails the run (exit 1).")

let chrome_trace_arg =
  Arg.(value & opt (some string) None & info [ "chrome-trace" ] ~docv:"FILE"
       ~doc:"Write the pipeline phase spans (compile, lift, symopt, \
             loopopt, plan, instrument, run) as a Chrome trace_event JSON \
             array to $(docv) — loadable in Perfetto or chrome://tracing.")

let checkpoint_every_arg =
  Arg.(value & opt (some int) None & info [ "checkpoint-every" ] ~docv:"N"
       ~doc:"Record the run through the time-travel engine, taking a \
             copy-on-write checkpoint every $(docv) executed instructions \
             (enables --last-write and --travel; implied at N=10000 when \
             either is given without it).")

let last_write_arg =
  Arg.(value & opt (some string) None & info [ "last-write" ]
       ~docv:"ADDR|VAR"
       ~doc:"After the run, answer \"who wrote this word last?\" \
             retroactively: restore the nearest checkpoint and re-execute \
             under an invisible watch, reporting the exact instruction \
             index, pc, old/new value and write type of the final store \
             to $(docv) (0x-hex, decimal, or a global variable name).")

let travel_arg =
  Arg.(value & opt (some int) None & info [ "travel" ] ~docv:"N"
       ~doc:"After the run, move the machine back to its state just \
             after instruction $(docv) of the recorded execution \
             (restore the latest checkpoint at or before it, re-execute \
             the gap under the determinism guard).")

let profile_arg =
  Arg.(value & opt (some string) None & info [ "profile" ] ~docv:"FILE"
       ~doc:"Enable the hot-path profiler and write its dbp-profile/1 \
             JSON report (basic blocks, edges, functions, hottest \
             back-edges with loop bodies, per-block check density) to \
             $(docv) after the run.")

let flamegraph_arg =
  Arg.(value & opt (some string) None & info [ "flamegraph" ] ~docv:"FILE"
       ~doc:"Enable the hot-path profiler and write folded call stacks \
             ('main;f;g <instrs>' lines, loadable by flamegraph.pl and \
             speedscope) to $(docv) after the run.")

let timeseries_arg =
  Arg.(value & opt (some string) None & info [ "timeseries" ] ~docv:"FILE"
       ~doc:"Arm the time-series sampler (see --sample-every) and write \
             its dbp-timeseries/1 JSON document — sampling metadata, the \
             cumulative counter snapshots along the instruction axis, and \
             windowed peak/mean rate summaries — to $(docv) after the run.")

let heatmap_arg =
  Arg.(value & opt (some string) None & info [ "heatmap" ] ~docv:"FILE"
       ~doc:"Record an address-space heatmap (per-page write/check/hit \
             density plus monitored-page marks) and render it to $(docv) \
             after the run.  The extension picks the format: .ppm a \
             plain-text PPM image (red writes, green checks, blue hits), \
             .json the dbp-heatmap/1 document, anything else an aligned \
             text table.")

let sample_every_arg =
  Arg.(value & opt int 100_000 & info [ "sample-every" ] ~docv:"N"
       ~doc:"Sampling interval in executed instructions for --timeseries \
             and --serve-metrics (default 100000).")

let serve_metrics_arg =
  Arg.(value & opt (some int) None & info [ "serve-metrics" ] ~docv:"PORT"
       ~doc:"Serve the live telemetry report as Prometheus exposition \
             text at http://127.0.0.1:$(docv)/metrics while the program \
             runs (0 binds an ephemeral port, printed at startup).  \
             Scrapes are answered from the sampling hook, within one \
             --sample-every interval.")

let serve_linger_arg =
  Arg.(value & opt float 0. & info [ "serve-linger" ] ~docv:"SECONDS"
       ~doc:"Keep answering --serve-metrics scrapes for $(docv) seconds \
             after the run and its exports finish — a window for one-shot \
             scrapers to collect the final counters.")

let cmd =
  let doc = "practical data breakpoints for mini-C programs" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Compiles a mini-C program with a naive debug compiler, patches a \
         write check after every store instruction (Wahbe, Lucco & Graham, \
         PLDI 1993), and runs it on a cycle-counting SPARC-subset \
         simulator.  Each update of a watched variable is reported with \
         the writing function, including writes through pointers.";
    ]
  in
  Cmd.v
    (Cmd.info "dbreak" ~version:"1.3" ~doc ~man)
    Term.(
      const run_cmd $ source_arg $ watch_arg $ strategy_arg $ opt_arg
      $ aliases_arg $ reads_arg $ dump_asm_arg $ stats_arg $ metrics_arg
      $ trace_arg $ fuel_arg $ audit_file_arg $ explain_arg $ verify_arg
      $ chrome_trace_arg $ checkpoint_every_arg $ last_write_arg
      $ travel_arg $ profile_arg $ flamegraph_arg $ timeseries_arg
      $ heatmap_arg $ sample_every_arg $ serve_metrics_arg
      $ serve_linger_arg)

(* Conventional exit codes: 0 success (including --help/--version), 1 a
   runtime failure reported by the tool itself ({!fail}), 2 a
   command-line usage error (unknown flag, missing option argument) —
   cmdliner's default of 124 for the latter surprises shell scripts and
   CI alike.  Since [run_cmd] never errors through cmdliner, every
   [Error] from [eval_value] is a usage error. *)
let () =
  exit
    (match Cmd.eval_value cmd with
    | Ok (`Ok code) -> code
    | Ok `Version | Ok `Help -> 0
    | Error (`Parse | `Term) -> 2
    | Error `Exn -> 3)
