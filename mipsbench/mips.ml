(* Interpreter throughput microbenchmark: simulated MIPS
   (instructions/second) of the uninstrumented hot loop, median and
   best of 9 runs on two workloads — matrix300 (the Table-1 analogue
   with the densest inner loop) and a 60M-instruction synthetic loop
   that amortizes startup.  This is the evidence harness for the
   fast-path speedup documented in DESIGN.md section 6:

     dune exec mipsbench/mips.exe
*)

let measure name (linked : Minic.Compile.linked) =
  let times = ref [] in
  let instrs = ref 0 in
  for _ = 1 to 9 do
    let cpu = Machine.Cpu.create linked.image in
    Machine.Cpu.install_basic_services cpu;
    let t0 = Unix.gettimeofday () in
    ignore (Machine.Cpu.run cpu);
    let dt = Unix.gettimeofday () -. t0 in
    let s = Machine.Cpu.stats cpu in
    instrs := s.Machine.Cpu.instrs;
    times := dt :: !times
  done;
  let sorted = List.sort compare !times in
  let median = List.nth sorted 4 in
  let best = List.hd sorted in
  Printf.printf "%-12s instrs=%8d  median %6.2f MIPS  best %6.2f MIPS\n%!" name
    !instrs
    (float_of_int !instrs /. median /. 1e6)
    (float_of_int !instrs /. best /. 1e6)

let () =
  let w = List.find (fun w -> w.Workloads.Workload.name = "030.matrix300") Workloads.Spec.all in
  measure "matrix300" (Minic.Compile.compile_and_link w.Workloads.Workload.source);
  let big = {|
int a[256];
int main() {
  int i; int k; int s;
  s = 0;
  for (k = 0; k < 8000; k = k + 1) {
    for (i = 0; i < 250; i = i + 1) {
      a[i] = a[i] + i;
      s = s + a[i];
    }
  }
  return s & 255;
}
|} in
  measure "big-loop" (Minic.Compile.compile_and_link big)
