open Sparc
open Machine

(* The monitored region service runtime (§2).

   Owns the OCaml mirrors of the in-memory structures (segmented
   bitmap, hash table, shadow stack), installs the trap handlers the
   check code raises, and implements the service interface:
   CreateMonitoredRegion / DeleteMonitoredRegion / NotificationCallBack
   plus PreMonitor / PostMonitor (§4.2) and the dynamic re-insertion of
   eliminated checks via Kessler-style patches (§4). *)

type access = Write | Read

type hit = { addr : int; pc : int; region : Region.t; access : access }

type counters = {
  mutable user_hits : int;
  mutable read_hits : int;
  mutable internal_hits : int;
  mutable loop_entries : int;
  mutable loop_triggers : int;
  mutable patches_inserted : int;
  mutable violations : int;
}

let reset_counters (c : counters) =
  c.user_hits <- 0;
  c.read_hits <- 0;
  c.internal_hits <- 0;
  c.loop_entries <- 0;
  c.loop_triggers <- 0;
  c.patches_inserted <- 0;
  c.violations <- 0

type t = {
  layout : Layout.t;
  plan : Instrument.t;
  image : Assembler.image;
  cpu : Cpu.t;
  bitmap : Segbitmap.t;
  mutable regions : Region.set;
  mutable enabled : bool;
  mutable callback : (hit -> unit) option;
  (* Passive hit observers (heatmaps, tooling): all run after the
     user callback, never replace it. *)
  mutable observers : (hit -> unit) list;
  patched : (int, unit) Hashtbl.t;  (* origins with inserted checks *)
  site_addr : (int, int) Hashtbl.t;     (* origin -> text address *)
  patch_addr : (int, int) Hashtbl.t;
  original : (int, Insn.t) Hashtbl.t;
  loops : (int, Loopopt.loop_plan) Hashtbl.t;
  mutable alias_regions : ((int * int) * Region.t list) list;
      (* (loop id, %fp) -> internal regions created at loop entry *)
  mutable hash_bump : int;
  counters : counters;
  entries_by_loop : (int, int) Hashtbl.t;
  loop_check_cycles : int;
  pseudo_home : string -> [ `Global of int | `Local of string * int ] option;
  telemetry : Telemetry.t option;
  audit : Audit.t option;
  (* Hit → site attribution maps, built once at install time from the
     resolved site/patch/read-site labels: parallel arrays sorted by
     label address.  A write hit's trap pc lies inside the check
     sequence that follows its site label (or inside its patch stub), so
     the owning site is the one with the greatest label address <= pc; a
     read check precedes its label, so a read hit belongs to the site
     with the least label address >= pc. *)
  mutable w_attr_addrs : int array;
  mutable w_attr_slots : int array;
  mutable w_attr_types : int array;
  mutable r_attr_addrs : int array;
  mutable r_attr_slots : int array;
  mutable r_attr_types : int array;
}

let g6 = Reg.g 6

let counters t = t.counters

(* --- telemetry glue ----------------------------------------------------------- *)

let tel_incr t c =
  match t.telemetry with Some tel -> Telemetry.incr tel c | None -> ()

(* --- audit glue ---------------------------------------------------------------- *)

let aud t f = match t.audit with Some a -> f a | None -> ()

let aud_patch t kind ~why origin =
  aud t (fun a ->
      Audit.patch a ~kind ~pseudo:why ~origin ~insn:(Cpu.instr_count t.cpu))

let aud_region t kind ~why (r : Region.t) =
  aud t (fun a ->
      Audit.region a ~kind ~lo:r.Region.lo ~hi:r.Region.hi ~why
        ~insn:(Cpu.instr_count t.cpu))

(* Greatest index with [addrs.(i) <= pc]. *)
let attr_last_le addrs pc =
  let n = Array.length addrs in
  if n = 0 || pc < addrs.(0) then None
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if addrs.(mid) <= pc then lo := mid else hi := mid - 1
    done;
    Some !lo
  end

(* Least index with [addrs.(i) >= pc]. *)
let attr_first_ge addrs pc =
  let n = Array.length addrs in
  if n = 0 || pc > addrs.(n - 1) then None
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if addrs.(mid) >= pc then hi := mid else lo := mid + 1
    done;
    Some !lo
  end

(* Attribute a monitor hit to its check site, bump the per-site hit
   cell, and append a trace event.  When the pc matches no known site
   label the hit is still conserved under [Unattributed_hits]. *)
let tel_hit t cpu ~(access : access) ~addr ~pc (region : Region.t option) =
  match t.telemetry with
  | None -> ()
  | Some tel ->
    if Telemetry.enabled tel then begin
      let write_type =
        match access with
        | Write -> (
          match attr_last_le t.w_attr_addrs pc with
          | Some i ->
            Telemetry.bump_site_hit tel t.w_attr_slots.(i);
            Telemetry.write_type_name t.w_attr_types.(i)
          | None ->
            Telemetry.incr tel Telemetry.Unattributed_hits;
            "")
        | Read -> (
          match attr_first_ge t.r_attr_addrs pc with
          | Some i ->
            Telemetry.bump_read_site_hit tel t.r_attr_slots.(i);
            Telemetry.write_type_name t.r_attr_types.(i)
          | None ->
            Telemetry.incr tel Telemetry.Unattributed_hits;
            "")
      in
      let lo, hi, kind =
        match region with
        | Some r ->
          ( r.Region.lo,
            r.Region.hi,
            match r.Region.kind with
            | Region.User -> "user"
            | Region.Internal -> "internal" )
        | None -> (0, 0, "")
      in
      Telemetry.record_event tel
        {
          Telemetry.ev_pc = pc;
          ev_addr = addr;
          ev_region_lo = lo;
          ev_region_hi = hi;
          ev_region_kind = kind;
          ev_access = (match access with Write -> Telemetry.Write | Read -> Telemetry.Read);
          ev_write_type = write_type;
          ev_insn = Cpu.instr_count cpu;
        }
    end

let loop_entry_count t id =
  Option.value ~default:0 (Hashtbl.find_opt t.entries_by_loop id)

let regions t = t.regions

let pseudo_home_of_symtab symtab pseudo =
  match String.index_opt pseudo '.' with
  | None -> (
    match Symtab.lookup symtab pseudo with
    | Some { Symtab.location = Symtab.Absolute a; _ } -> Some (`Global a)
    | Some _ | None -> None)
  | Some dot -> (
    let fname = String.sub pseudo 0 dot in
    let var = String.sub pseudo (dot + 1) (String.length pseudo - dot - 1) in
    match Symtab.lookup symtab ~func:fname var with
    | Some { Symtab.location = Symtab.Fp_offset off; _ } ->
      Some (`Local (fname, off))
    | Some _ | None -> None)

(* --- bexpr evaluation against live machine state ----------------------------- *)

exception Unresolved of string

exception Hardware_capacity of int
(* Raised by create_region under the Hardware_watch strategy when the
   processor's watchpoint registers are exhausted (§1). *)

let rec eval_bexpr t (e : Ir.Bounds.bexpr) : int =
  match e with
  | Ir.Bounds.Bconst c -> c
  | Ir.Bounds.Blab (l, o) -> (
    match Assembler.addr_of_label t.image l with
    | Some a -> Word.add a o
    | None -> raise (Unresolved l))
  | Ir.Bounds.Bvar v -> (
    match v.Ir.Ssa.name with
    | Ir.Tac.Machine r -> Cpu.get t.cpu r
    | Ir.Tac.Pseudo p -> (
      match t.pseudo_home p with
      | Some (`Global a) -> Memory.read_word (Cpu.mem t.cpu) a
      | Some (`Local (_, off)) ->
        Memory.read_word (Cpu.mem t.cpu) (Word.add (Cpu.get t.cpu Reg.fp) off)
      | None -> raise (Unresolved p)))
  | Ir.Bounds.Badd (a, b) -> Word.add (eval_bexpr t a) (eval_bexpr t b)
  | Ir.Bounds.Bsub (a, b) -> Word.sub (eval_bexpr t a) (eval_bexpr t b)
  | Ir.Bounds.Bmul (a, c) -> Word.mul (eval_bexpr t a) c
  | Ir.Bounds.Bshl (a, c) -> Word.sll (eval_bexpr t a) c

(* --- hash table structure (Hash_table strategy) ------------------------------- *)

let hash_bucket t addr =
  let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2) in
  let h = Word.to_unsigned (Word.umul (Word.to_unsigned addr lsr 2) 0x9E3779B1) in
  h lsr (32 - log2 t.layout.Layout.hash_buckets)

let hash_add_region t (r : Region.t) =
  let mem = Cpu.mem t.cpu in
  let rec go addr =
    if addr <= r.hi then begin
      let b = t.layout.Layout.hash_base + (4 * hash_bucket t addr) in
      let node = t.hash_bump in
      t.hash_bump <- t.hash_bump + 12;
      Memory.write_word mem node r.lo;
      Memory.write_word mem (node + 4) r.hi;
      Memory.write_word mem (node + 8) (Memory.read_word mem b);
      Memory.write_word mem b node;
      go (addr + 4)
    end
  in
  go r.lo

let hash_remove_region t (r : Region.t) =
  let mem = Cpu.mem t.cpu in
  let rec go addr =
    if addr <= r.hi then begin
      let b = t.layout.Layout.hash_base + (4 * hash_bucket t addr) in
      (* Unlink the first node with matching bounds. *)
      let rec unlink prev node =
        if node = 0 then ()
        else begin
          let lo = Word.to_unsigned (Memory.read_word mem node) in
          let hi = Word.to_unsigned (Memory.read_word mem (node + 4)) in
          let next = Memory.read_word mem (node + 8) in
          if lo = r.lo && hi = r.hi then Memory.write_word mem prev next
          else unlink (node + 8) next
        end
      in
      unlink b (Memory.read_word mem b);
      go (addr + 4)
    end
  in
  go r.lo

(* --- segment cache maintenance ------------------------------------------------- *)

let invalidate_caches t =
  if Strategy.uses_segment_caches t.plan.Instrument.options.strategy then
    List.iter
      (fun wt -> Cpu.set t.cpu (Write_type.cache_reg wt) (-1))
      Write_type.all

(* --- patches (Kessler fast breakpoints, §4) ------------------------------------ *)

let insert_check ?(why = "") t origin =
  if not (Hashtbl.mem t.patched origin) then begin
    match Hashtbl.find_opt t.site_addr origin, Hashtbl.find_opt t.patch_addr origin with
    | Some site, Some patch ->
      Hashtbl.replace t.patched origin ();
      t.counters.patches_inserted <- t.counters.patches_inserted + 1;
      tel_incr t Telemetry.Patches_inserted;
      aud_patch t Audit.Patch_inserted ~why origin;
      Cpu.patch t.cpu site (Insn.Branch { cond = Cond.A; target = Insn.Abs patch })
    | _, _ -> ()
  end

let remove_check ?(why = "") t origin =
  if Hashtbl.mem t.patched origin then begin
    match Hashtbl.find_opt t.site_addr origin, Hashtbl.find_opt t.original origin with
    | Some site, Some insn ->
      Hashtbl.remove t.patched origin;
      tel_incr t Telemetry.Patches_removed;
      aud_patch t Audit.Patch_removed ~why origin;
      Cpu.patch t.cpu site insn
    | _, _ -> ()
  end

let check_inserted t origin = Hashtbl.mem t.patched origin

(* Snapshot gauges: occupancy numbers whose current value (not a sum of
   bumps) is the interesting quantity; written unconditionally at report
   time via {!Telemetry.set}. *)
let record_gauges t =
  match t.telemetry with
  | None -> ()
  | Some tel ->
    Telemetry.set tel Telemetry.Seg_words_monitored
      (Segbitmap.monitored_words t.bitmap);
    Telemetry.set tel Telemetry.Seg_arena_bytes (Segbitmap.space_bytes t.bitmap)

(* --- the service interface ------------------------------------------------------ *)

let create_region ?(why = "user") t region =
  (match t.plan.Instrument.options.strategy with
  | Strategy.Hardware_watch n ->
    let words set =
      List.fold_left (fun a r -> a + (Region.size_bytes r / 4)) 0 (Region.elements set)
    in
    if words t.regions + (Region.size_bytes region / 4) > n then
      raise (Hardware_capacity n)
  | _ -> ());
  t.regions <- Region.add t.regions region;
  Segbitmap.add_region t.bitmap region;
  tel_incr t Telemetry.Regions_created;
  aud_region t Audit.Region_created ~why region;
  if t.plan.Instrument.options.strategy = Strategy.Hash_table then
    hash_add_region t region;
  invalidate_caches t

let delete_region ?(why = "user") t region =
  t.regions <- Region.remove t.regions region;
  Segbitmap.remove_region t.bitmap region;
  tel_incr t Telemetry.Regions_deleted;
  aud_region t Audit.Region_deleted ~why region;
  if t.plan.Instrument.options.strategy = Strategy.Hash_table then
    hash_remove_region t region

let set_callback t f = t.callback <- Some f

let add_hit_observer t f = t.observers <- t.observers @ [ f ]

let enable t =
  t.enabled <- true;
  Cpu.set t.cpu g6 0

let disable t =
  t.enabled <- false;
  Cpu.set t.cpu g6 1

let pre_monitor t pseudo =
  List.iter
    (fun (p, origins) ->
      if String.equal p pseudo then List.iter (insert_check ~why:pseudo t) origins)
    t.plan.Instrument.sites_by_pseudo

let post_monitor t pseudo =
  List.iter
    (fun (p, origins) ->
      if String.equal p pseudo then List.iter (remove_check ~why:pseudo t) origins)
    t.plan.Instrument.sites_by_pseudo

(* --- trap handlers ---------------------------------------------------------------- *)

let on_hit ?(access = Write) t cpu =
  let addr = Word.to_unsigned (Cpu.get cpu (Reg.g 5)) in
  (* Attribute the hit to the checked instruction: for inline checks
     that is just behind the trap; call-based checks run with the
     check-in-progress flag raised and the call site in their %i7. *)
  let pc =
    if Cpu.get cpu (Reg.g 7) <> 0 then Cpu.get cpu Reg.i7 else Cpu.pc cpu - 4
  in
  match Region.find_containing t.regions addr with
  | Some ({ Region.kind = Region.User; _ } as region) ->
    t.counters.user_hits <- t.counters.user_hits + 1;
    if access = Read then t.counters.read_hits <- t.counters.read_hits + 1;
    tel_incr t Telemetry.User_hits;
    if access = Read then tel_incr t Telemetry.Read_hits;
    tel_hit t cpu ~access ~addr ~pc (Some region);
    let h = { addr; pc; region; access } in
    (match t.callback with Some f -> f h | None -> ());
    List.iter (fun f -> f h) t.observers
  | Some ({ Region.kind = Region.Internal; _ } as region) ->
    t.counters.internal_hits <- t.counters.internal_hits + 1;
    tel_incr t Telemetry.Internal_hits;
    tel_hit t cpu ~access ~addr ~pc (Some region);
    (* An alias home changed: conservatively re-insert every check the
       region was protecting. *)
    Hashtbl.iter
      (fun _ (p : Loopopt.loop_plan) ->
        if
          List.exists
            (fun (key, rs) ->
              fst key = p.loop_id && List.exists (Region.equal region) rs)
            t.alias_regions
        then
          List.iter
            (insert_check ~why:("alias:" ^ string_of_int p.loop_id) t)
            p.eliminated)
      t.loops
  | None ->
    (* Stale bitmap bit cannot happen: bits are only set by regions. *)
    ()

let loop_of_trap t cpu = Hashtbl.find_opt t.loops (Word.to_unsigned (Cpu.get cpu (Reg.g 5)))

let on_loop_entry t cpu =
  t.counters.loop_entries <- t.counters.loop_entries + 1;
  tel_incr t Telemetry.Loop_entries;
  (let id = Word.to_unsigned (Cpu.get cpu (Reg.g 5)) in
   Hashtbl.replace t.entries_by_loop id
     (1 + Option.value ~default:0 (Hashtbl.find_opt t.entries_by_loop id)));
  (* Model the pre-header check as inline code rather than a full trap:
     refund the trap cost beyond the modelled check cost. *)
  match loop_of_trap t cpu with
  | None -> ()
  | Some plan ->
    (* Charge the modelled inline cost instead of the full trap cost. *)
    Cpu.add_cycles cpu
      (5 + (t.loop_check_cycles * List.length plan.checks)
      - (Cpu.config cpu).Cpu.trap_cycles);
    let triggered =
      List.exists
        (fun (c : Loopopt.check) ->
          try
            match c with
            | Loopopt.Inv { expr; width; _ } ->
              let a = Word.to_unsigned (eval_bexpr t expr) in
              Region.intersects_range t.regions ~lo:a
                ~hi:(a + Insn.width_bytes width - 1)
            | Loopopt.Rng { lo; hi; width; _ } ->
              let lo = Word.to_unsigned (eval_bexpr t lo) in
              let hi = Word.to_unsigned (eval_bexpr t hi) + Insn.width_bytes width - 1 in
              (* A degenerate (empty-trip) range never triggers. *)
              lo <= hi && Region.intersects_range t.regions ~lo ~hi
          with Unresolved _ -> true)
        plan.checks
    in
    if triggered then begin
      t.counters.loop_triggers <- t.counters.loop_triggers + 1;
      tel_incr t Telemetry.Loop_triggers;
      List.iter
        (insert_check ~why:("loop:" ^ string_of_int plan.loop_id) t)
        plan.eliminated
    end;
    if t.plan.Instrument.options.check_aliases && plan.alias_pseudos <> [] then begin
      let fp = Cpu.get cpu Reg.fp in
      let rs =
        List.filter_map
          (fun p ->
            match t.pseudo_home p with
            | Some (`Global a) ->
              Some (Region.v ~kind:Region.Internal ~addr:a ~size_bytes:4 ())
            | Some (`Local (_, off)) ->
              Some
                (Region.v ~kind:Region.Internal ~addr:(Word.add fp off)
                   ~size_bytes:4 ())
            | None -> None)
          plan.alias_pseudos
      in
      let rs =
        List.filter_map
          (fun r ->
            try
              create_region ~why:"loop-preheader" t r;
              Some r
            with Region.Invalid _ -> None)
          rs
      in
      t.alias_regions <- ((plan.loop_id, fp), rs) :: t.alias_regions
    end

let on_loop_exit t cpu =
  match loop_of_trap t cpu with
  | None -> ()
  | Some plan ->
    let fp = Cpu.get cpu Reg.fp in
    let key = (plan.loop_id, fp) in
    (match List.assoc_opt key t.alias_regions with
    | Some rs ->
      List.iter
        (fun r ->
          try delete_region ~why:"loop-exit" t r with Region.Invalid _ -> ())
        rs;
      t.alias_regions <- List.remove_assoc key t.alias_regions
    | None -> ());
    Cpu.add_cycles cpu (4 - (Cpu.config cpu).Cpu.trap_cycles)

let on_violation t cpu =
  t.counters.violations <- t.counters.violations + 1;
  tel_incr t Telemetry.Violations;
  ignore cpu

(* --- installation -------------------------------------------------------------------- *)

let install ?(protect_self = false) ?telemetry ?audit ~(plan : Instrument.t)
    ~(image : Assembler.image) ~symtab cpu =
  let layout = plan.Instrument.options.layout in
  let t =
    {
      layout;
      plan;
      image;
      cpu;
      bitmap = Segbitmap.create ?telemetry layout (Cpu.mem cpu);
      regions = Region.empty;
      enabled = false;
      callback = None;
      observers = [];
      patched = Hashtbl.create 64;
      site_addr = Hashtbl.create 256;
      patch_addr = Hashtbl.create 64;
      original = Hashtbl.create 64;
      loops = Hashtbl.create 16;
      alias_regions = [];
      hash_bump = layout.Layout.hash_base + (4 * layout.Layout.hash_buckets);
      entries_by_loop = Hashtbl.create 16;
      counters =
        {
          user_hits = 0;
          read_hits = 0;
          internal_hits = 0;
          loop_entries = 0;
          loop_triggers = 0;
          patches_inserted = 0;
          violations = 0;
        };
      loop_check_cycles = 12;
      pseudo_home = (fun p -> pseudo_home_of_symtab symtab p);
      telemetry;
      audit;
      w_attr_addrs = [||];
      w_attr_slots = [||];
      w_attr_types = [||];
      r_attr_addrs = [||];
      r_attr_slots = [||];
      r_attr_types = [||];
    }
  in
  (* Resolve site/patch labels and squirrel away original stores. *)
  List.iter
    (fun (s : Instrument.site) ->
      (match Assembler.addr_of_label image (Instrument.site_label s.origin) with
      | Some a -> Hashtbl.replace t.site_addr s.origin a
      | None -> ());
      (match Assembler.addr_of_label image (Instrument.patch_label s.origin) with
      | Some a -> Hashtbl.replace t.patch_addr s.origin a
      | None -> ());
      Hashtbl.replace t.original s.origin s.insn)
    plan.Instrument.sites;
  List.iter
    (fun (p : Loopopt.loop_plan) -> Hashtbl.replace t.loops p.loop_id p)
    plan.Instrument.loop_plans;
  (* Build the hit → site attribution maps (sorted label-address arrays;
     a patched-out site's check executes in its patch stub, so both the
     site label and the patch label map to the same slot). *)
  (match telemetry with
  | None -> ()
  | Some _ ->
    let wentries = ref [] in
    List.iter
      (fun (s : Instrument.site) ->
        let wt = Write_type.index s.Instrument.write_type in
        (match Hashtbl.find_opt t.site_addr s.Instrument.origin with
        | Some a -> wentries := (a, s.Instrument.slot, wt) :: !wentries
        | None -> ());
        match Hashtbl.find_opt t.patch_addr s.Instrument.origin with
        | Some a -> wentries := (a, s.Instrument.slot, wt) :: !wentries
        | None -> ())
      plan.Instrument.sites;
    let w = Array.of_list (List.sort compare !wentries) in
    t.w_attr_addrs <- Array.map (fun (a, _, _) -> a) w;
    t.w_attr_slots <- Array.map (fun (_, s, _) -> s) w;
    t.w_attr_types <- Array.map (fun (_, _, wt) -> wt) w;
    let rentries = ref [] in
    List.iter
      (fun (r : Instrument.read_site) ->
        match
          Assembler.addr_of_label image
            (Instrument.read_site_label r.Instrument.r_origin)
        with
        | Some a ->
          rentries :=
            (a, r.Instrument.r_slot, Write_type.index r.Instrument.r_write_type)
            :: !rentries
        | None -> ())
      plan.Instrument.read_sites;
    let r = Array.of_list (List.sort compare !rentries) in
    t.r_attr_addrs <- Array.map (fun (a, _, _) -> a) r;
    t.r_attr_slots <- Array.map (fun (_, s, _) -> s) r;
    t.r_attr_types <- Array.map (fun (_, _, wt) -> wt) r);
  (* §2.1: the MRS protects the integrity of its own structures with
     internal monitored regions (the shadow stack and the hash-table
     bucket array; the segment table itself is too large to cover and a
     corruption there is caught by the test oracle instead). *)
  if protect_self then begin
    create_region ~why:"mrs-self" t
      (Region.v ~kind:Region.Internal ~addr:layout.Layout.shadow_base
         ~size_bytes:4096 ());
    create_region ~why:"mrs-self" t
      (Region.v ~kind:Region.Internal ~addr:layout.Layout.hash_base
         ~size_bytes:(4 * layout.Layout.hash_buckets) ())
  end;
  Cpu.on_trap cpu Traps.monitor_hit (fun cpu -> on_hit t cpu);
  Cpu.on_trap cpu Traps.read_hit (fun cpu -> on_hit ~access:Read t cpu);
  (* The trap-per-write baseline: the check runs "in the kernel"; the
     context switch into the debugger costs far more than the trap
     instruction itself (§1). *)
  Cpu.on_trap cpu Traps.trap_check (fun cpu ->
      Cpu.add_cycles cpu 400;
      on_hit t cpu);
  (* Hardware watchpoint registers: the comparison is free, done by the
     simulated processor on every store. *)
  (match plan.Instrument.options.strategy with
  | Strategy.Hardware_watch _ ->
    Cpu.set_store_hook cpu (fun cpu ~addr ~width ->
        if t.enabled then begin
          let bytes = Insn.width_bytes width in
          let rec covered a =
            if a >= addr + bytes then None
            else
              match Region.find_containing t.regions a with
              | Some r -> Some r
              | None -> covered (a + 1)
          in
          match covered addr with
          | Some ({ Region.kind = Region.User; _ } as region) ->
            t.counters.user_hits <- t.counters.user_hits + 1;
            tel_incr t Telemetry.User_hits;
            (* The watchpoint comparison fires on the store itself, whose
               pc is exactly its site label's address. *)
            tel_hit t cpu ~access:Write ~addr:(Word.to_unsigned addr)
              ~pc:(Cpu.pc cpu) (Some region);
            let h =
              { addr = Word.to_unsigned addr; pc = Cpu.pc cpu;
                region; access = Write }
            in
            (match t.callback with Some f -> f h | None -> ());
            List.iter (fun f -> f h) t.observers
          | Some _ | None -> ()
        end)
  | _ -> ());
  Cpu.on_trap cpu Traps.loop_entry (on_loop_entry t);
  Cpu.on_trap cpu Traps.loop_exit (on_loop_exit t);
  Cpu.on_trap cpu Traps.control_violation (on_violation t);
  (* Reserved-register initialization. *)
  Cpu.set cpu g6 1;
  (match plan.Instrument.options.strategy with
  | Strategy.Bitmap_inline_registers ->
    Cpu.set cpu (Reg.g 4) layout.Layout.table_base
  | _ -> ());
  invalidate_caches t;
  t
