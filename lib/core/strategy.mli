(** Write-check implementation strategies (§3.3, Table 1).

    - {!Bitmap}: segmented-bitmap lookup via a procedure call (window
      push in the callee).
    - {!Bitmap_inline}: the lookup inlined, but without reserved
      registers — temporaries spill to the stack and the table base is
      rematerialized at every check.
    - {!Bitmap_inline_registers}: inlined with reserved registers
      ([%g1]-[%g3] temporaries, [%g4] table base): 12 register
      instructions + 2 loads on the full path, as in §3.3.3.
    - {!Cache}: four per-write-type segment caches in [%g1]-[%g4]; the
      cache test is always inlined, a miss calls the library.
    - {!Cache_inline}: cache test and full lookup both inlined.
    - {!Hash_table}: the hash-table lookup of Wahbe's earlier study,
      via procedure call — the 209-642%-overhead baseline.
    - {!Trap_check}: each store raises an OS trap and the address check
      runs in the kernel/debugger — the pilot study's too-slow variant.
    - {!Hardware_watch}: processor watchpoint registers — free but
      limited to N monitored words (SPARC/R4000 N=1, i386 N=4).

    All software strategies share the reserved trio: [%g5] target
    address, [%g6] disabled flag, [%g7] check-in-progress (§2.1). *)

type t =
  | Nocheck
  | Bitmap
  | Bitmap_inline
  | Bitmap_inline_registers
  | Cache
  | Cache_inline
  | Hash_table
  | Trap_check
  | Hardware_watch of int

val all : t list
(** The five Table 1 variants (excluding [Nocheck]/[Hash_table]). *)

val to_string : t -> string

val of_string : string -> t
(** Inverse of {!to_string} (also accepting the lowercase CLI aliases):
    [of_string (to_string t) = t] for every constructor, including
    [Hardware_watch n] for any [n >= 1] — ["HardwareWatch%d"] parses
    for any positive all-digit suffix, not just the 1 and 4 the
    hardware ships with.
    @raise Invalid_argument on anything else. *)

val tag : t -> string
(** Stable lowercase snake_case identifier (e.g.
    ["bitmap_inline_registers"]) for telemetry report tags and metric
    labels. *)

val uses_segment_caches : t -> bool
val pp : Format.formatter -> t -> unit
