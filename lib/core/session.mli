(** End-to-end sessions: compile → instrument → assemble → load →
    install the MRS, with per-site execution counters (zero-cost
    probes) and an optional store oracle. *)

type t = {
  plan : Instrument.t;
  image : Sparc.Assembler.image;
  symtab : Sparc.Symtab.t;  (** resolved against the instrumented image *)
  cpu : Machine.Cpu.t;
  mrs : Mrs.t;
  telemetry : Telemetry.t;
  audit : Audit.t;  (** provenance journal threaded through the pipeline *)
  trace : Trace.t;  (** phase-span tracer (compile → … → run) *)
  site_slot : (int, int) Hashtbl.t;
      (** write-site origin → telemetry array slot *)
  mutable expected_hits : (int * int) list;
  functions : string list;
}

val create :
  ?config:Machine.Cpu.config ->
  ?options:Instrument.options ->
  ?protect_mrs:bool ->
  ?telemetry:Telemetry.t ->
  ?audit:Audit.t ->
  ?trace:Trace.t ->
  string ->
  t
(** Build a session from mini-C source.  [protect_mrs] arms the MRS's
    self-protection regions (§2.1).  [telemetry] supplies the registry
    backing the per-site counters (default: a fresh enabled one); its
    site arrays are (re)allocated to this plan's shape, a ["strategy"]
    tag is attached, and the session's probes/MRS bump it from then on.

    [audit] and [trace] (defaults: fresh instances gated on the
    registry's enabled flag) receive the pipeline's provenance record
    and phase spans: the journal gets one verdict per write site from
    {!Instrument.run}, patch/region lifecycle events from the MRS, and
    a mirrored ["strategy"] tag; the tracer brackets ["compile"], the
    instrumenter's stages and ["run"].  Probes at the patch-stub labels
    count patched-check executions into the registry's [site_patched]
    cells — the conservation quantity [--audit] reconciles against the
    journal.
    @raise Failure if the instrumented program fails to assemble.
    @raise Minic.Compile.Error on compilation errors. *)

val run : ?fuel:int -> t -> int * string
(** Execute to completion; returns (exit code, captured output). *)

val site_executions : t -> int -> int
(** Dynamic executions of one write site (by origin). *)

val total_site_executions : t -> int
val eliminated_site_executions : t -> int
val sym_eliminated_site_executions : t -> int
val loop_eliminated_site_executions : t -> int

val install_oracle : t -> unit
(** Record every program store that lands in a user region; after the
    run, {!missed_hits} is the number of such stores that produced no
    notification.  Zero for a correctly armed debugger — the soundness
    property the test suite checks for every strategy. *)

val missed_hits : t -> int

val stats : t -> Machine.Cpu.stats

val report : t -> Telemetry.report
(** Freeze the session's registry into a report, first folding in the
    snapshot gauges (segment-arena occupancy) and the interpreter's
    probe/hook/trap dispatch counts. *)
