(** End-to-end sessions: compile → instrument → assemble → load →
    install the MRS, with per-site execution counters (zero-cost
    probes) and an optional store oracle. *)

type t = {
  plan : Instrument.t;
  image : Sparc.Assembler.image;
  symtab : Sparc.Symtab.t;  (** resolved against the instrumented image *)
  cpu : Machine.Cpu.t;
  mrs : Mrs.t;
  telemetry : Telemetry.t;
  audit : Audit.t;  (** provenance journal threaded through the pipeline *)
  trace : Trace.t;  (** phase-span tracer (compile → … → run) *)
  replay : Replay.t option;
      (** time-travel engine, present iff [checkpoint_every] was given *)
  store_pc_type : (int, Write_type.t) Hashtbl.t;
      (** store pc (site or patch-stub label) → write type *)
  site_slot : (int, int) Hashtbl.t;
      (** write-site origin → telemetry array slot *)
  mutable expected_hits : (int * int) list;
  functions : string list;
  profiler : Profile.t option;
      (** hot-path profiler, present iff [profile] was given *)
  timeseries : Timeseries.t option;
      (** time-series sampler, present iff [sample_every] was given *)
  heatmap : Heatmap.t option;
      (** address-space heatmap, present iff [heatmap] was given *)
  on_sample : (int -> unit) ref;
      (** extra per-sample callback — see {!set_on_sample} *)
  observers_live : bool ref;
      (** heatmap recording gate, lowered around replay re-execution *)
}

val create :
  ?config:Machine.Cpu.config ->
  ?options:Instrument.options ->
  ?protect_mrs:bool ->
  ?telemetry:Telemetry.t ->
  ?audit:Audit.t ->
  ?trace:Trace.t ->
  ?checkpoint_every:int ->
  ?checkpoint_budget:int ->
  ?profile:bool ->
  ?profile_clock:(unit -> float) ->
  ?sample_every:int ->
  ?sample_clock:(unit -> float) ->
  ?heatmap:bool ->
  string ->
  t
(** Build a session from mini-C source.  [protect_mrs] arms the MRS's
    self-protection regions (§2.1).  [telemetry] supplies the registry
    backing the per-site counters (default: a fresh enabled one); its
    site arrays are (re)allocated to this plan's shape, a ["strategy"]
    tag is attached, and the session's probes/MRS bump it from then on.

    [audit] and [trace] (defaults: fresh instances gated on the
    registry's enabled flag) receive the pipeline's provenance record
    and phase spans: the journal gets one verdict per write site from
    {!Instrument.run}, patch/region lifecycle events from the MRS, and
    a mirrored ["strategy"] tag; the tracer brackets ["compile"], the
    instrumenter's stages and ["run"].  Probes at the patch-stub labels
    count patched-check executions into the registry's [site_patched]
    cells — the conservation quantity [--audit] reconciles against the
    journal.

    [checkpoint_every] arms time travel: {!run} records the execution
    through a {!Replay.t} that checkpoints (copy-on-write) every N
    executed instructions, enabling {!last_write}/{!write_history}/
    {!time_travel} afterwards.  Its checkpoint counters and lifecycle
    events land in the session's registry and audit journal, gated by
    the registry's enabled flag like everything else.
    [checkpoint_budget] bounds the journal's retained bytes
    (exponential-thinning eviction).

    [profile] (default false) attaches the hot-path profiler: basic
    blocks are discovered from the instrumented text, the interpreter
    bumps the per-instruction exec/taken arrays inline, and call/return
    transfers maintain the shadow call stack — read the result with
    {!profile_report} (or the [profiler] field for folded/Perfetto
    exports).  Replay queries pause it, so replayed instructions are
    never double-counted.  [profile_clock] timestamps its Perfetto
    counter samples (pass [Unix.gettimeofday]; default: a constant).

    [sample_every] arms the time-series sampler: every N executed
    instructions the dispatch-loop hook snapshots the registry's vital
    signs (check executions, MRS hits, segment-cache misses, checkpoint
    bytes, replayed instructions) into the registry's sample ring —
    read them from {!report}'s [r_samples] or via {!Timeseries}'s
    exports.  [sample_clock] timestamps the sampler's Perfetto counter
    tracks only (default: a constant; samples themselves never carry
    wall-clock time).  Replay queries pause the sampler.

    [heatmap] (default false) attaches the address-space heatmap: a
    store hook paints per-page write/check density and an MRS observer
    paints hit density — render with the [heatmap] field's
    {!Heatmap.to_text}/[to_json_string]/[to_ppm] after calling
    {!heatmap_sync_regions}.  Replay queries pause heatmap recording.
    @raise Failure if the instrumented program fails to assemble.
    @raise Minic.Compile.Error on compilation errors. *)

val run : ?fuel:int -> t -> int * string
(** Execute to completion; returns (exit code, captured output).  With
    [checkpoint_every] set, execution is recorded through the replay
    engine (same result, plus a checkpoint journal). *)

val run_slice : ?fuel:int -> t -> [ `Exited of int * string | `Running of int ]
(** Fuel-bounded resumable execution — the service daemon's fairness
    quantum.  [`Running n] means [n] instructions were executed and the
    program has not halted (call again to resume; armed watchpoints
    keep firing across slices).  [`Exited (code, output)] is terminal
    and idempotent.  With [checkpoint_every] set, slices record through
    {!Replay.record_slice}, whose checkpoint placement is identical to
    a one-shot {!run} — slicing never changes the answers of
    {!last_write}/{!write_history}/{!time_travel} or the telemetry. *)

(** {1 Time travel}

    All of these raise [Invalid_argument] on a session created without
    [checkpoint_every], and {!Replay.Determinism_violation} if a replay
    diverges from the recorded run. *)

val replay : t -> Replay.t option

type write_record = {
  wr_hit : Replay.hit;
  wr_write_type : Write_type.t option;
      (** [None] when the pc matches no known write site (runtime or
          monitor-library stores) *)
}

val last_write : ?guard:bool -> t -> addr:int -> write_record option
(** The final store of the recorded run to the word containing [addr]:
    restores the latest checkpoint whose window contains a write and
    re-executes under an invisible watch.  Returns the exact
    (instruction index, pc, old/new value, write type). *)

val write_history :
  ?guard:bool -> t -> lo:int -> hi:int -> write_record list
(** Every recorded store landing in [[lo, hi)], in execution order. *)

val time_travel : ?guard:bool -> t -> insn:int -> int
(** Move the machine to its state just after instruction [insn];
    returns the number of re-executed instructions. *)

val resolve_addr : t -> string -> int option
(** Resolve a CLI target — [0x]-hex or decimal numeral, or a global
    variable name — to a data address. *)

val site_executions : t -> int -> int
(** Dynamic executions of one write site (by origin). *)

val total_site_executions : t -> int
val eliminated_site_executions : t -> int
val sym_eliminated_site_executions : t -> int
val loop_eliminated_site_executions : t -> int

val install_oracle : t -> unit
(** Record every program store that lands in a user region; after the
    run, {!missed_hits} is the number of such stores that produced no
    notification.  Zero for a correctly armed debugger — the soundness
    property the test suite checks for every strategy. *)

val missed_hits : t -> int

val stats : t -> Machine.Cpu.stats

val report : t -> Telemetry.report
(** Freeze the session's registry into a report, first folding in the
    snapshot gauges (segment-arena occupancy), the interpreter's
    probe/hook/trap dispatch counts, the store-execution total and —
    when profiling — the profiler's instruction/transfer totals.  With
    a sampler armed, the sample ring is finalized first: its last entry
    equals the end-of-run counter values (idempotent across repeated
    reports). *)

val set_on_sample : t -> (int -> unit) -> unit
(** Register an extra callback fired on every time-series sample with
    the live instruction count — the scrape server's poll point.
    No-op unless the session was created with [sample_every]. *)

val heatmap_sync_regions : t -> unit
(** Paint the MRS's current [User] regions into the heatmap's
    monitored-page marks (so renders can flag monitored pages that
    never fired).  Call before rendering; no-op without [heatmap]. *)

val profile_report : t -> Profile.report
(** Freeze the profiler at the machine's current instruction/cycle
    totals, joining per-block MRS check density from the telemetry
    per-site exec arrays.  Take it right after {!run}: replay queries
    roll the machine's counters back and would skew the totals.
    @raise Invalid_argument on a session created without [profile]. *)
