(** The segmented bitmap (§3, Figure 2): one bit per monitored word,
    organized as lazily-allocated segments reached through a segment
    table whose entries pack the "this segment has monitored regions"
    flag into the pointer's low bit (§3.1).

    The structure lives in the debugged program's simulated memory;
    this module is the OCaml writer/reader the MRS uses on
    [CreateMonitoredRegion]/[DeleteMonitoredRegion], while the generated
    check code reads the same words with ordinary loads. *)

type t

val create : ?telemetry:Telemetry.t -> Layout.t -> Machine.Memory.t -> t
(** [telemetry] (when given) counts lazy segment allocations on
    [Telemetry.Seg_segments_allocated]. *)

val add_region : t -> Region.t -> unit
val remove_region : t -> Region.t -> unit

val monitored : t -> int -> bool
(** Is the word containing [addr] monitored?  Reads the in-memory
    structures exactly as the check code does. *)

val segment_monitored : t -> int -> bool
(** The unmonitored-flag test (low bit of the segment table entry). *)

val allocated_segments : t -> int

val monitored_words : t -> int
(** Occupancy snapshot: monitored words across all segments (the
    [Telemetry.Seg_words_monitored] gauge). *)

val space_bytes : t -> int
(** Bytes of bitmap segment arena in use (for the ~3% space figure). *)
