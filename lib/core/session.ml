open Sparc
open Machine

(* End-to-end orchestration: compile mini-C, instrument, assemble,
   load, install the MRS, and run — with per-site execution counters
   (zero-cost probes) and an optional store oracle for validation. *)

type t = {
  plan : Instrument.t;
  image : Assembler.image;
  symtab : Symtab.t;
  cpu : Cpu.t;
  mrs : Mrs.t;
  telemetry : Telemetry.t;
  audit : Audit.t;
  trace : Trace.t;
  replay : Replay.t option;
      (* present iff [checkpoint_every] was given: the time-travel
         engine that [run] records through *)
  store_pc_type : (int, Write_type.t) Hashtbl.t;
      (* store pc (site or patch-stub label) -> write type, for
         enriching replay hits *)
  site_slot : (int, int) Hashtbl.t;  (* origin -> telemetry array slot *)
  mutable expected_hits : (int * int) list;  (* oracle: addr, access pc *)
  functions : string list;
  profiler : Profile.t option;  (* present iff [~profile:true] *)
  timeseries : Timeseries.t option;  (* present iff [?sample_every] *)
  heatmap : Heatmap.t option;  (* present iff [~heatmap:true] *)
  on_sample : (int -> unit) ref;
      (* extra per-sample callback (scrape-server polling) *)
  observers_live : bool ref;
      (* heatmap recording gate; lowered around replay re-execution *)
}

let site_kind_of_status = function
  | Instrument.Checked -> Telemetry.site_kind_checked
  | Instrument.Sym_eliminated _ -> Telemetry.site_kind_sym
  | Instrument.Loop_eliminated _ -> Telemetry.site_kind_loop

let create ?config ?(options = Instrument.default_options) ?(protect_mrs = false)
    ?telemetry ?audit ?trace ?checkpoint_every ?checkpoint_budget
    ?(profile = false) ?profile_clock ?sample_every ?sample_clock
    ?(heatmap = false) source =
  let telemetry =
    match telemetry with Some tel -> tel | None -> Telemetry.create ()
  in
  (* The provenance journal and phase tracer default to fresh instances
     gated on the registry's flag, so a registry-off session emits
     nothing anywhere. *)
  let audit =
    match audit with
    | Some a -> a
    | None -> Audit.create ~enabled:(fun () -> Telemetry.enabled telemetry) ()
  in
  let trace =
    match trace with
    | Some tr -> tr
    | None -> Trace.create ~enabled:(fun () -> Telemetry.enabled telemetry) ()
  in
  let out = Trace.with_span trace "compile" (fun () -> Minic.Compile.compile source) in
  let plan = Instrument.run ~audit ~trace options out in
  let image =
    try Assembler.assemble plan.Instrument.program
    with Assembler.Error m ->
      failwith ("Session.create: assembly of instrumented program failed: " ^ m)
  in
  let symtab =
    Symtab.resolve_data_labels
      ~addr_of_label:(Assembler.addr_of_label image)
      out.Minic.Codegen.symtab
  in
  let cpu = Cpu.create ?config image in
  Cpu.install_basic_services cpu;
  Telemetry.set_tag telemetry "strategy" (Strategy.tag options.Instrument.strategy);
  Audit.set_tag audit "strategy" (Strategy.tag options.Instrument.strategy);
  (* Size the per-site arrays off the plan: slot [i] is the i-th site in
     program order — the probes below are the only writers of the exec
     cells, so the fast path is one array increment. *)
  Telemetry.alloc_sites telemetry
    (Array.of_list
       (List.map
          (fun (s : Instrument.site) ->
            (Write_type.index s.write_type, site_kind_of_status s.status))
          plan.Instrument.sites));
  Telemetry.alloc_read_sites telemetry
    (Array.of_list
       (List.map
          (fun (r : Instrument.read_site) -> Write_type.index r.r_write_type)
          plan.Instrument.read_sites));
  let mrs =
    Mrs.install ~protect_self:protect_mrs ~telemetry ~audit ~plan ~image ~symtab
      cpu
  in
  let site_slot = Hashtbl.create 256 in
  List.iter
    (fun (s : Instrument.site) ->
      Hashtbl.replace site_slot s.origin s.slot;
      (match Assembler.addr_of_label image (Instrument.site_label s.origin) with
      | Some addr ->
        let slot = s.slot in
        Cpu.add_probe cpu addr (fun _ -> Telemetry.bump_site telemetry slot)
      | None -> ());
      (* Conservation accounting: an eliminated site's check, once
         patched back in, executes in its patch stub — a probe at the
         stub label counts exactly the patched-check executions, so
         [site_patched <= site_exec] always, with equality while the
         patch is armed and zero while the variable is unmonitored. *)
      match Assembler.addr_of_label image (Instrument.patch_label s.origin) with
      | Some addr ->
        let slot = s.slot in
        Cpu.add_probe cpu addr (fun _ ->
            Telemetry.bump_site_patched telemetry slot)
      | None -> ())
    plan.Instrument.sites;
  List.iter
    (fun (r : Instrument.read_site) ->
      match
        Assembler.addr_of_label image (Instrument.read_site_label r.r_origin)
      with
      | Some addr ->
        let slot = r.r_slot in
        Cpu.add_probe cpu addr (fun _ -> Telemetry.bump_read_site telemetry slot)
      | None -> ())
    plan.Instrument.read_sites;
  (* Segment-cache miss accounting: probe the per-write-type miss
     handlers (and their read variants) so Figure 3 and the telemetry
     reports draw from one counter.  Probes cost no simulated cycles,
     so every table number is unchanged. *)
  if Strategy.uses_segment_caches options.Instrument.strategy then
    List.iter
      (fun wt ->
        let idx = Write_type.index wt in
        List.iter
          (fun label ->
            match Assembler.addr_of_label image label with
            | Some addr ->
              Cpu.add_probe cpu addr (fun _ ->
                  Telemetry.incr_typed telemetry Telemetry.Cache_misses_by_type
                    idx)
            | None -> ())
          [
            Checkgen.cache_miss_routine wt;
            Checkgen.cache_miss_routine wt ^ "_rd";
          ])
      Write_type.all;
  (* Time travel: when an interval is given, attach the replay engine —
     its checkpoint/restore emissions flow into the same registry and
     provenance journal, gated exactly like the rest of telemetry.  The
     pc -> write-type map mirrors the oracle's: a replay hit's pc is
     either a site label (inline store) or a patch-stub label
     (re-inserted check), and both identify the write type recorded in
     the plan. *)
  let store_pc_type = Hashtbl.create 256 in
  List.iter
    (fun (s : Instrument.site) ->
      List.iter
        (fun label ->
          match Assembler.addr_of_label image label with
          | Some a -> Hashtbl.replace store_pc_type a s.Instrument.write_type
          | None -> ())
        [
          Instrument.site_label s.Instrument.origin;
          Instrument.patch_label s.Instrument.origin;
        ])
    plan.Instrument.sites;
  let replay =
    match checkpoint_every with
    | None -> None
    | Some interval ->
      Some
        (Replay.create ~telemetry ~audit ?budget_bytes:checkpoint_budget
           ~checkpoint_every:interval cpu)
  in
  (* Hot-path profiler: block discovery over the instrumented text's
     static classification, counter arrays handed to the interpreter
     (one increment per step when on, one boolean test when off), and
     call/return transfers feeding the shadow stack.  The function
     table is the compiler's function list plus every named call target
     in the image (runtime and check-stub routines), so monitoring
     overhead shows up attributed in the flamegraph. *)
  let profiler =
    if not profile then None
    else begin
      let seen = Hashtbl.create 32 in
      let add acc addr name =
        if addr >= 0 && not (Hashtbl.mem seen addr) then begin
          Hashtbl.add seen addr ();
          (addr, name) :: acc
        end
        else acc
      in
      let acc =
        List.fold_left
          (fun acc f ->
            match Assembler.addr_of_label image f with
            | Some a -> add acc a f
            | None -> acc)
          [] ("_start" :: plan.Instrument.functions)
      in
      let acc =
        Array.fold_left
          (fun acc insn ->
            match insn with
            | Insn.Call { target = Insn.Abs a } ->
              let name =
                match Assembler.label_of_addr image a with
                | Some l -> l
                | None -> Printf.sprintf "0x%x" a
              in
              add acc a name
            | _ -> acc)
          acc image.Assembler.text
      in
      let p =
        Profile.create ?clock:profile_clock
          ~text_base:image.Assembler.text_base ~info:(Cpu.profile_static cpu)
          ~functions:acc ~entry:image.Assembler.entry ()
      in
      Cpu.profile_install cpu ~exec:(Profile.exec_array p)
        ~taken:(Profile.taken_array p)
        ~transfer:(fun kind _slot ->
          Profile.transfer p ~kind ~pc:(Cpu.pc cpu)
            ~instrs:(Cpu.instr_count cpu) ~cycles:(Cpu.cycle_count cpu));
      Some p
    end
  in
  (* Address-space heatmap: a store hook paints per-page write density
     (plus check density where the store's pc is a site or patch-stub
     label — the same pc → site identification the oracle uses), and an
     MRS hit observer paints hit density.  The [observers_live] gate is
     lowered around replay re-execution so replayed stores are not
     double-counted. *)
  let observers_live = ref true in
  let heatmap =
    if not heatmap then None
    else begin
      let hm = Heatmap.create ~page_bits:Memory.page_bits () in
      (* The hook runs on every store, so the pc → is-check-site test
         is a flat bitmap over the (fixed) site/patch-stub pc range
         rather than a hash lookup.  [store_pc_type] is fully built
         above and never grows afterwards. *)
      let check_lo, check_hi =
        Hashtbl.fold
          (fun pc _ (lo, hi) -> (min lo pc, max hi pc))
          store_pc_type (max_int, -1)
      in
      let check_bm =
        if check_hi < check_lo then Bytes.empty
        else begin
          let bm = Bytes.make (((check_hi - check_lo) lsr 2) + 1) '\000' in
          Hashtbl.iter
            (fun pc _ -> Bytes.set bm ((pc - check_lo) lsr 2) '\001')
            store_pc_type;
          bm
        end
      in
      Cpu.set_store_hook cpu (fun cpu ~addr ~width:_ ->
          if !observers_live then begin
            Heatmap.record_write hm addr;
            let pc = Cpu.pc cpu in
            if
              pc >= check_lo && pc <= check_hi
              && Bytes.unsafe_get check_bm ((pc - check_lo) lsr 2) <> '\000'
            then Heatmap.record_check hm addr
          end);
      Mrs.add_hit_observer mrs (fun (h : Mrs.hit) ->
          if !observers_live then Heatmap.record_hit hm h.Mrs.addr);
      Some hm
    end
  in
  (* Time-series sampler: the dispatch-loop hook snapshots the live
     registry counters every [sample_every] executed instructions.  The
     metric set is the run's vital signs: check executions, MRS hits,
     segment-cache misses, checkpoint bytes and replayed instructions. *)
  let on_sample = ref (fun (_ : int) -> ()) in
  let timeseries =
    match sample_every with
    | None -> None
    | Some every ->
      let metrics =
        [
          { Timeseries.m_name = "check_execs";
            m_read = (fun () -> Telemetry.current telemetry Telemetry.Check_execs) };
          { Timeseries.m_name = "user_hits";
            m_read = (fun () -> Telemetry.current telemetry Telemetry.User_hits) };
          { Timeseries.m_name = "cache_misses";
            m_read =
              (fun () ->
                Telemetry.typed_total telemetry Telemetry.Cache_misses_by_type) };
          { Timeseries.m_name = "checkpoint_bytes";
            m_read =
              (fun () -> Telemetry.current telemetry Telemetry.Checkpoint_bytes) };
          { Timeseries.m_name = "replayed_instrs";
            m_read =
              (fun () -> Telemetry.current telemetry Telemetry.Replayed_instrs) };
        ]
      in
      let ts =
        Timeseries.create ?clock:sample_clock ~every ~registry:telemetry
          ~metrics ()
      in
      Cpu.sample_install cpu ~every ~hook:(fun insn ->
          Timeseries.sample ts ~insn;
          !on_sample insn);
      Some ts
  in
  {
    plan;
    image;
    symtab;
    cpu;
    mrs;
    telemetry;
    audit;
    trace;
    replay;
    store_pc_type;
    site_slot;
    expected_hits = [];
    functions = plan.Instrument.functions;
    profiler;
    timeseries;
    heatmap;
    on_sample;
    observers_live;
  }

let site_executions t origin =
  match Hashtbl.find_opt t.site_slot origin with
  | Some slot -> Telemetry.site_exec t.telemetry slot
  | None -> 0

let total_site_executions t =
  let acc = ref 0 in
  for slot = 0 to Telemetry.n_sites t.telemetry - 1 do
    acc := !acc + Telemetry.site_exec t.telemetry slot
  done;
  !acc

let eliminated_site_executions t =
  List.fold_left
    (fun acc (s : Instrument.site) ->
      match s.status with
      | Instrument.Checked -> acc
      | Instrument.Sym_eliminated _ | Instrument.Loop_eliminated _ ->
        acc + site_executions t s.origin)
    0 t.plan.Instrument.sites

let sym_eliminated_site_executions t =
  List.fold_left
    (fun acc (s : Instrument.site) ->
      match s.status with
      | Instrument.Sym_eliminated _ -> acc + site_executions t s.origin
      | Instrument.Checked | Instrument.Loop_eliminated _ -> acc)
    0 t.plan.Instrument.sites

let loop_eliminated_site_executions t =
  List.fold_left
    (fun acc (s : Instrument.site) ->
      match s.status with
      | Instrument.Loop_eliminated _ -> acc + site_executions t s.origin
      | Instrument.Checked | Instrument.Sym_eliminated _ -> acc)
    0 t.plan.Instrument.sites

(* The oracle: record every program store that lands in a user region;
   at the end of the run, every one of them must have produced a
   notification (assuming the debugger armed the regions through the
   proper interface).  Patched-out stores execute inside their patch
   stub, so stub addresses count as program stores too. *)
let install_oracle t =
  let covered addr bytes =
    let rec go a =
      if a >= addr + bytes then false
      else
        match Region.find_containing (Mrs.regions t.mrs) a with
        | Some { Region.kind = Region.User; _ } -> true
        | Some _ | None -> go (a + 1)
    in
    go addr
  in
  let program_store_pcs = Hashtbl.create 256 in
  List.iter
    (fun (s : Instrument.site) ->
      (match Assembler.addr_of_label t.image (Instrument.site_label s.origin) with
      | Some a -> Hashtbl.replace program_store_pcs a ()
      | None -> ());
      match Assembler.addr_of_label t.image (Instrument.patch_label s.origin) with
      | Some a -> Hashtbl.replace program_store_pcs a ()
      | None -> ())
    t.plan.Instrument.sites;
  Cpu.set_store_hook t.cpu (fun cpu ~addr ~width ->
      if Hashtbl.mem program_store_pcs (Cpu.pc cpu) then begin
        if covered addr (Insn.width_bytes width) then
          t.expected_hits <- (addr, Cpu.pc cpu) :: t.expected_hits
      end);
  if t.plan.Instrument.options.monitor_reads then begin
    let program_load_pcs = Hashtbl.create 256 in
    List.iter
      (fun (r : Instrument.read_site) ->
        match
          Assembler.addr_of_label t.image (Instrument.read_site_label r.r_origin)
        with
        | Some a -> Hashtbl.replace program_load_pcs a ()
        | None -> ())
      t.plan.Instrument.read_sites;
    Cpu.set_load_hook t.cpu (fun cpu ~addr ~width ->
        if Hashtbl.mem program_load_pcs (Cpu.pc cpu) then begin
          if covered addr (Insn.width_bytes width) then
            t.expected_hits <- (addr, Cpu.pc cpu) :: t.expected_hits
        end)
  end

let run ?fuel t =
  let code =
    Trace.with_span t.trace "run" (fun () ->
        match t.replay with
        | None -> Cpu.run ?fuel t.cpu
        | Some r -> Replay.record ?fuel r)
  in
  (code, Cpu.output t.cpu)

(* Fuel-bounded, resumable execution — the service daemon's `run` verb.
   Each slice advances by at most [fuel] instructions so a scheduler
   can round-robin many sessions on one domain without letting any of
   them starve the loop.  With a checkpoint journal armed the slices go
   through {!Replay.record_slice}, which places checkpoints exactly
   where a one-shot run would — so slicing is invisible to
   {!last_write}/{!write_history}/{!time_travel} and to telemetry.
   No ["run"] span is recorded per slice (span multisets would then
   depend on the slice quantum); the daemon brackets its own spans. *)
let run_slice ?fuel t =
  match Cpu.halted t.cpu with
  | Some code -> `Exited (code, Cpu.output t.cpu)
  | None -> (
    match t.replay with
    | None -> (
      match Cpu.run ?fuel t.cpu with
      | code -> `Exited (code, Cpu.output t.cpu)
      | exception Cpu.Out_of_fuel { executed } -> `Running executed)
    | Some r -> (
      match Replay.record_slice ?fuel r with
      | `Exited code -> `Exited (code, Cpu.output t.cpu)
      | `Out_of_fuel executed -> `Running executed))

(* --- time travel ------------------------------------------------------ *)

let replay t = t.replay

let require_replay t fn =
  match t.replay with
  | Some r -> r
  | None ->
    invalid_arg
      (fn ^ ": session was created without ?checkpoint_every — no journal")

type write_record = {
  wr_hit : Replay.hit;
  wr_write_type : Write_type.t option;
      (* [None] when the pc matches no known site (runtime/monitor
         stores) *)
}

let enrich t (h : Replay.hit) =
  { wr_hit = h; wr_write_type = Hashtbl.find_opt t.store_pc_type h.Replay.h_pc }

(* Replay queries roll the machine back and re-execute recorded
   instructions; pausing the profiler, the time-series sampler and the
   heatmap hooks around them keeps the replayed steps from being
   double-counted into their arrays (and keeps rolled-back instruction
   counts from producing phantom samples). *)
let without_observers t f =
  let prof = t.profiler <> None && Cpu.profile_enabled t.cpu in
  let samp = t.timeseries <> None && Cpu.sample_enabled t.cpu in
  let live = !(t.observers_live) in
  if prof then Cpu.profile_set_enabled t.cpu false;
  if samp then Cpu.sample_set_enabled t.cpu false;
  t.observers_live := false;
  Fun.protect
    ~finally:(fun () ->
      if prof then Cpu.profile_set_enabled t.cpu true;
      if samp then Cpu.sample_set_enabled t.cpu true;
      t.observers_live := live)
    f

let last_write ?guard t ~addr =
  let r = require_replay t "Session.last_write" in
  without_observers t (fun () ->
      Option.map (enrich t) (Replay.last_write_word ?guard r ~addr))

let write_history ?guard t ~lo ~hi =
  let r = require_replay t "Session.write_history" in
  without_observers t (fun () ->
      List.map (enrich t) (Replay.write_history ?guard r ~lo ~hi))

let time_travel ?guard t ~insn =
  let r = require_replay t "Session.time_travel" in
  without_observers t (fun () -> Replay.travel ?guard r ~insn)

(* Resolve a CLI watch target to an address: a 0x-hex or decimal
   numeral, or a global variable name from the symbol table. *)
let resolve_addr t target =
  let numeral =
    let is_hex =
      String.length target > 2
      && target.[0] = '0'
      && (target.[1] = 'x' || target.[1] = 'X')
    in
    let is_dec =
      target <> "" && String.for_all (fun c -> c >= '0' && c <= '9') target
    in
    if is_hex || is_dec then int_of_string_opt target else None
  in
  match numeral with
  | Some a -> Some a
  | None -> (
    match Symtab.lookup t.symtab target with
    | Some { Symtab.location = Symtab.Absolute a; _ } -> Some a
    | Some _ | None -> None)

let missed_hits t =
  let actual = (Mrs.counters t.mrs).Mrs.user_hits in
  max 0 (List.length t.expected_hits - actual)

let stats t = Cpu.stats t.cpu

let report t =
  (* Fold in the snapshot gauges and interpreter dispatch counts before
     freezing: these are current-value reads, not bump streams. *)
  Mrs.record_gauges t.mrs;
  Telemetry.set t.telemetry Telemetry.Probe_dispatches
    (Cpu.probe_dispatches t.cpu);
  Telemetry.set t.telemetry Telemetry.Store_hook_dispatches
    (Cpu.store_hook_dispatches t.cpu);
  Telemetry.set t.telemetry Telemetry.Load_hook_dispatches
    (Cpu.load_hook_dispatches t.cpu);
  Telemetry.set t.telemetry Telemetry.Trap_dispatches (Cpu.trap_count t.cpu);
  (* Monotonic, like the sample-ring finalize below: replay queries
     roll the machine's stats back, but the end-of-run store total is
     what the heatmap's per-page write counts conserve against. *)
  Telemetry.set t.telemetry Telemetry.Store_execs
    (max
       (Telemetry.get t.telemetry Telemetry.Store_execs)
       (Cpu.stats t.cpu).Cpu.stores);
  (match t.profiler with
  | Some p ->
    (* The exec-array sum, not [instr_count]: replay queries run with
       the profiler paused, so the two legitimately differ. *)
    Telemetry.set t.telemetry Telemetry.Profiled_instrs
      (Profile.profiled_instrs p);
    Telemetry.set t.telemetry Telemetry.Prof_transfers (Profile.transfers p)
  | None -> ());
  (* Close the sample ring: the final sample makes the last ring entry
     equal the end-of-run counter values (idempotent — [sample] ignores
     non-increasing instruction counts, so repeated reports and
     post-travel rollbacks add nothing). *)
  (match t.timeseries with
  | Some ts -> Timeseries.finalize ts ~insn:(Cpu.instr_count t.cpu)
  | None -> ());
  Telemetry.report t.telemetry

let set_on_sample t f = t.on_sample := f

(* Paint the current MRS region set into the heatmap's monitored marks
   (call before rendering: regions armed then deleted re-paint on the
   next call only if still present — the map answers "which monitored
   pages never fired" for the regions armed now). *)
let heatmap_sync_regions t =
  match t.heatmap with
  | None -> ()
  | Some hm ->
    Region.iter
      (fun r ->
        if r.Region.kind = Region.User then
          Heatmap.mark_monitored hm ~lo:r.Region.lo ~hi:r.Region.hi)
      (Mrs.regions t.mrs)

let profile_report t =
  match t.profiler with
  | None ->
    invalid_arg "Session.profile_report: session was created without ~profile"
  | Some p ->
    let site_checks =
      List.filter_map
        (fun (s : Instrument.site) ->
          match
            Assembler.addr_of_label t.image (Instrument.site_label s.origin)
          with
          | Some addr -> Some (addr, Telemetry.site_exec t.telemetry s.slot)
          | None -> None)
        t.plan.Instrument.sites
    in
    Profile.report p ~site_checks ~instrs:(Cpu.instr_count t.cpu)
      ~cycles:(Cpu.cycle_count t.cpu) ()
