type t =
  | Nocheck
  | Bitmap
  | Bitmap_inline
  | Bitmap_inline_registers
  | Cache
  | Cache_inline
  | Hash_table
  | Trap_check
  | Hardware_watch of int

let all = [ Bitmap; Bitmap_inline; Bitmap_inline_registers; Cache; Cache_inline ]

let to_string = function
  | Nocheck -> "none"
  | Bitmap -> "Bitmap"
  | Bitmap_inline -> "BitmapInline"
  | Bitmap_inline_registers -> "BitmapInlineRegisters"
  | Cache -> "Cache"
  | Cache_inline -> "CacheInline"
  | Hash_table -> "HashTable"
  | Trap_check -> "TrapCheck"
  | Hardware_watch n -> Printf.sprintf "HardwareWatch%d" n

let of_string = function
  | "none" -> Nocheck
  | "Bitmap" | "bitmap" -> Bitmap
  | "BitmapInline" | "bitmap-inline" -> Bitmap_inline
  | "BitmapInlineRegisters" | "bitmap-inline-registers" -> Bitmap_inline_registers
  | "Cache" | "cache" -> Cache
  | "CacheInline" | "cache-inline" -> Cache_inline
  | "HashTable" | "hash" -> Hash_table
  | "TrapCheck" | "trap" -> Trap_check
  | "HardwareWatch1" -> Hardware_watch 1
  | "HardwareWatch4" -> Hardware_watch 4
  | s -> invalid_arg (Printf.sprintf "Strategy.of_string: %S" s)

(* Stable lowercase snake_case identifier for report tags and metric
   labels: unlike [to_string] it never needs quoting or sanitizing in
   the Prometheus exposition format. *)
let tag = function
  | Nocheck -> "none"
  | Bitmap -> "bitmap"
  | Bitmap_inline -> "bitmap_inline"
  | Bitmap_inline_registers -> "bitmap_inline_registers"
  | Cache -> "cache"
  | Cache_inline -> "cache_inline"
  | Hash_table -> "hash_table"
  | Trap_check -> "trap_check"
  | Hardware_watch n -> Printf.sprintf "hardware_watch_%d" n

let uses_segment_caches = function
  | Cache | Cache_inline -> true
  | Nocheck | Bitmap | Bitmap_inline | Bitmap_inline_registers | Hash_table
  | Trap_check | Hardware_watch _ ->
    false

let pp ppf t = Fmt.string ppf (to_string t)
