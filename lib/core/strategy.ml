type t =
  | Nocheck
  | Bitmap
  | Bitmap_inline
  | Bitmap_inline_registers
  | Cache
  | Cache_inline
  | Hash_table
  | Trap_check
  | Hardware_watch of int

let all = [ Bitmap; Bitmap_inline; Bitmap_inline_registers; Cache; Cache_inline ]

let to_string = function
  | Nocheck -> "none"
  | Bitmap -> "Bitmap"
  | Bitmap_inline -> "BitmapInline"
  | Bitmap_inline_registers -> "BitmapInlineRegisters"
  | Cache -> "Cache"
  | Cache_inline -> "CacheInline"
  | Hash_table -> "HashTable"
  | Trap_check -> "TrapCheck"
  | Hardware_watch n -> Printf.sprintf "HardwareWatch%d" n

(* [HardwareWatch%d] parses for any positive register count — i386 has
   4, SPARC/R4000 have 1, and the CLI should not hard-code the list —
   but only all-digit suffixes with no sign, leading zeros allowed
   (["HardwareWatch007"] is 7; ["HardwareWatch+1"], ["HardwareWatch"],
   ["HardwareWatch0"] are rejected). *)
let hardware_watch_of_string s =
  let prefix = "HardwareWatch" in
  let plen = String.length prefix in
  if String.length s > plen && String.sub s 0 plen = prefix then
    let digits = String.sub s plen (String.length s - plen) in
    if String.for_all (fun c -> c >= '0' && c <= '9') digits then
      match int_of_string_opt digits with
      | Some n when n >= 1 -> Some (Hardware_watch n)
      | _ -> None
    else None
  else None

let of_string = function
  | "none" -> Nocheck
  | "Bitmap" | "bitmap" -> Bitmap
  | "BitmapInline" | "bitmap-inline" -> Bitmap_inline
  | "BitmapInlineRegisters" | "bitmap-inline-registers" -> Bitmap_inline_registers
  | "Cache" | "cache" -> Cache
  | "CacheInline" | "cache-inline" -> Cache_inline
  | "HashTable" | "hash" -> Hash_table
  | "TrapCheck" | "trap" -> Trap_check
  | s -> (
    match hardware_watch_of_string s with
    | Some t -> t
    | None -> invalid_arg (Printf.sprintf "Strategy.of_string: %S" s))

(* Stable lowercase snake_case identifier for report tags and metric
   labels: unlike [to_string] it never needs quoting or sanitizing in
   the Prometheus exposition format. *)
let tag = function
  | Nocheck -> "none"
  | Bitmap -> "bitmap"
  | Bitmap_inline -> "bitmap_inline"
  | Bitmap_inline_registers -> "bitmap_inline_registers"
  | Cache -> "cache"
  | Cache_inline -> "cache_inline"
  | Hash_table -> "hash_table"
  | Trap_check -> "trap_check"
  | Hardware_watch n -> Printf.sprintf "hardware_watch_%d" n

let uses_segment_caches = function
  | Cache | Cache_inline -> true
  | Nocheck | Bitmap | Bitmap_inline | Bitmap_inline_registers | Hash_table
  | Trap_check | Hardware_watch _ ->
    false

let pp ppf t = Fmt.string ppf (to_string t)
