(** Write-check code generation (§3) and the monitor library.

    Emits, per store instruction, the inline check sequence of the
    selected {!Strategy}: a disabled-flag guard, recomputation of the
    target address into [%g5] (checks sit {e after} the store, §2.1),
    and either an inline segmented-bitmap lookup or a call into the
    monitor library.  Also emits the library routines themselves:
    call-based lookup, per-write-type cache-miss handlers, the
    hash-table baseline, and the shadow-stack frame checks used by the
    symbol-table optimization. *)

type env

val make_env :
  ?disabled_guard:bool ->
  ?single_cache:bool ->
  layout:Layout.t ->
  strategy:Strategy.t ->
  unit ->
  env
(** [disabled_guard:false] and [single_cache:true] are ablations of the
    paper's design choices (§2.1's branch-around guard; §3.1's
    per-write-type caches), used by the ablation benchmarks. *)

val fresh : env -> string -> string
(** A program-unique label. *)

val cache_miss_routine : Write_type.t -> string
(** Entry label of the per-write-type segment-cache miss handler, e.g.
    ["__dbp_cache_miss_stack"] — the label the telemetry layer probes to
    count {!Telemetry.Cache_misses_by_type}. *)

val check_items :
  env -> write_type:Write_type.t -> Sparc.Insn.t -> Sparc.Asm.item list
(** The full check sequence for one store instruction (two lookups for
    a double-word store).
    @raise Invalid_argument if the instruction is not a store. *)

val read_check_items :
  env -> write_type:Write_type.t -> Sparc.Insn.t -> Sparc.Asm.item list
(** The check sequence for one load, placed {e before} it (§5's read
    monitoring extension); hits raise {!Traps.read_hit}.
    @raise Invalid_argument if the instruction is not a load. *)

val monitor_library :
  env -> control_checks:bool -> monitor_reads:bool -> Sparc.Asm.item list
(** Library routines needed by [env]'s strategy; [control_checks] adds
    the [__dbp_frame_enter]/[__dbp_frame_exit] shadow-stack routines,
    [monitor_reads] the read-hit lookup variants. *)
