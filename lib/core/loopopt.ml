(* Loop optimization driver (§4.3): runs the IR pipeline per function,
   applies bound propagation to each loop from the innermost out, and
   plans pre-header checks for the eliminated in-loop write checks. *)

type check =
  | Inv of {
      expr : Ir.Bounds.bexpr;
      width : Sparc.Insn.width;
      origin : int;
      level : Ir.Bounds.level;
    }
  | Rng of {
      lo : Ir.Bounds.bexpr;
      hi : Ir.Bounds.bexpr;
      width : Sparc.Insn.width;
      origin : int;
      lo_level : Ir.Bounds.level;
      hi_level : Ir.Bounds.level;
    }

(* The canonical debug rendering of a planned pre-header check — the
   same pretty-printers back the audit journal and `dbreak --explain`. *)
let pp_check ppf = function
  | Inv { expr; origin; level; _ } ->
    Fmt.pf ppf "inv@%d(%a@%a)" origin Ir.Bounds.pp_bexpr expr
      Ir.Bounds.pp_level level
  | Rng { lo; hi; origin; lo_level; hi_level; _ } ->
    Fmt.pf ppf "rng@%d(%a@%a, %a@%a)" origin Ir.Bounds.pp_bexpr lo
      Ir.Bounds.pp_level lo_level Ir.Bounds.pp_bexpr hi Ir.Bounds.pp_level
      hi_level

type loop_plan = {
  loop_id : int;
  fname : string;
  header_item : int;      (* item index of the header label *)
  checks : check list;
  eliminated : int list;  (* origins of stores whose checks move out *)
  alias_pseudos : string list;
  exit_items : int list;  (* item indices of exit-target labels *)
  contains_ret : bool;
      (* a return inside the loop bypasses exit bookkeeping; alias-
         checked runs refuse to optimize such loops *)
  lattice : (string * string) list;
      (* the Figure-4 fixpoint at this loop: rendered SSA variable ->
         rendered bounds, deterministically ordered — provenance for
         the audit journal *)
}

type stats = {
  loops_seen : int;
  loops_optimized : int;
  invariant_checks : int;
  range_checks : int;
}

let pseudos_of_bexpr e =
  Ir.Bounds.bexpr_vars e
  |> List.filter_map (fun (v : Ir.Ssa.var) ->
         match v.name with
         | Ir.Tac.Pseudo p -> Some p
         | Ir.Tac.Machine _ -> None)

(* The pre-header insertion point is just before the header's label —
   valid only when every entry to the loop falls through into it (a
   jump to the header label from outside would skip inserted code). *)
let fallthrough_entry (cfg : Ir.Cfg.t) (loop : Ir.Loops.loop) =
  let header = Ir.Cfg.block cfg loop.header in
  header.labels <> []
  && List.for_all
       (fun p ->
         p = loop.header - 1
         &&
         match List.rev (Ir.Cfg.block cfg p).body with
         | (Ir.Tac.Jump _ | Ir.Tac.Ret _) :: _ -> false
         | Ir.Tac.Branch { target; _ } :: _ ->
           not (List.mem target header.labels)
         | _ -> true)
       loop.outside_preds

let exit_targets (cfg : Ir.Cfg.t) (loop : Ir.Loops.loop) =
  List.concat_map
    (fun b ->
      List.filter (fun s -> not (Ir.Loops.in_loop loop s)) (Ir.Cfg.block cfg b).succs)
    loop.body
  |> List.sort_uniq compare

type fn_input = {
  fname : string;
  tac : Ir.Tac.instr list;       (* post symbol matching *)
  items : (int * Sparc.Asm.item) list;  (* the function's slice *)
  extra_call_defs : Ir.Tac.name list;
}

let analyze ~next_loop_id ?trace (input : fn_input) : loop_plan list * stats =
  let span name f =
    match trace with Some t -> Trace.with_span t name f | None -> f ()
  in
  let cfg, loops, ssa =
    span "cfg-ssa" (fun () ->
        let cfg = Ir.Cfg.insert_asserts (Ir.Cfg.build input.tac) in
        let dom = Ir.Dominance.compute cfg in
        let loops = Ir.Loops.find cfg dom in
        let ssa =
          Ir.Ssa.construct ~extra_call_defs:input.extra_call_defs cfg dom
        in
        (cfg, loops, ssa))
  in
  let label_item =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (idx, item) ->
        match item with
        | Sparc.Asm.Label l -> Hashtbl.replace tbl l idx
        | _ -> ())
      input.items;
    tbl
  in
  let eliminated_so_far = Hashtbl.create 32 in
  let stats =
    ref { loops_seen = List.length loops; loops_optimized = 0;
          invariant_checks = 0; range_checks = 0 }
  in
  let plans =
    span "bounds" @@ fun () ->
    List.filter_map
      (fun (loop : Ir.Loops.loop) ->
        if not (fallthrough_entry cfg loop) then None
        else begin
          let env, _groups = Ir.Bounds.propagate ssa loop in
          let decisions = Ir.Bounds.dispositions ssa loop env in
          let checks, eliminated, alias =
            List.fold_left
              (fun (checks, elim, alias) (d : Ir.Bounds.store_decision) ->
                if Hashtbl.mem eliminated_so_far d.origin then (checks, elim, alias)
                else
                  match d.disposition with
                  | Ir.Bounds.Keep -> (checks, elim, alias)
                  | Ir.Bounds.Invariant { expr; level } ->
                    ( Inv { expr; width = d.width; origin = d.origin; level }
                      :: checks,
                      d.origin :: elim,
                      pseudos_of_bexpr expr @ alias )
                  | Ir.Bounds.Range { lo; hi; lo_level; hi_level } ->
                    ( Rng
                        { lo; hi; width = d.width; origin = d.origin;
                          lo_level; hi_level }
                      :: checks,
                      d.origin :: elim,
                      pseudos_of_bexpr lo @ pseudos_of_bexpr hi @ alias ))
              ([], [], []) decisions
          in
          if eliminated = [] then None
          else begin
            List.iter (fun o -> Hashtbl.replace eliminated_so_far o ()) eliminated;
            let header_label = List.hd (Ir.Cfg.block cfg loop.header).labels in
            let header_item =
              match Hashtbl.find_opt label_item header_label with
              | Some i -> i
              | None -> -1
            in
            if header_item < 0 then None
            else begin
              let exit_items =
                exit_targets cfg loop
                |> List.filter_map (fun b ->
                       match (Ir.Cfg.block cfg b).labels with
                       | l :: _ -> Hashtbl.find_opt label_item l
                       | [] -> None)
              in
              let n_inv =
                List.length (List.filter (function Inv _ -> true | Rng _ -> false) checks)
              in
              let n_rng = List.length checks - n_inv in
              stats :=
                {
                  !stats with
                  loops_optimized = !stats.loops_optimized + 1;
                  invariant_checks = !stats.invariant_checks + n_inv;
                  range_checks = !stats.range_checks + n_rng;
                };
              let id = next_loop_id () in
              let contains_ret =
                List.exists
                  (fun b ->
                    List.exists
                      (function Ir.Tac.Ret _ -> true | _ -> false)
                      (Ir.Cfg.block cfg b).body)
                  loop.body
              in
              let lattice =
                List.map
                  (fun (v, b) ->
                    ( Fmt.str "%a" Ir.Ssa.pp_var v,
                      Fmt.str "%a" Ir.Bounds.pp_bounds b ))
                  (Ir.Bounds.env_bindings env)
              in
              Some
                {
                  loop_id = id;
                  fname = input.fname;
                  header_item;
                  checks;
                  eliminated;
                  alias_pseudos = List.sort_uniq compare alias;
                  exit_items;
                  contains_ret;
                  lattice;
                }
            end
          end
        end)
      loops
  in
  (plans, !stats)
