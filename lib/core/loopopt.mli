(** Loop check-elimination planning (§4.3).

    Runs the IR pipeline (CFG + asserts, dominators, natural loops,
    SSA, Figure-4 bound propagation) on one function and turns each
    optimizable loop into a {!loop_plan}: which store sites lose their
    in-loop checks, and which invariant/range checks the pre-header
    must run instead.  Loops are processed innermost-first, and a loop
    qualifies only when every entry falls through into its header (so
    pre-header code inserted before the header label runs exactly on
    entry). *)

type check =
  | Inv of {
      expr : Ir.Bounds.bexpr;
      width : Sparc.Insn.width;
      origin : int;
      level : Ir.Bounds.level;
    }  (** a loop-invariant address: one standard check per entry *)
  | Rng of {
      lo : Ir.Bounds.bexpr;
      hi : Ir.Bounds.bexpr;
      width : Sparc.Insn.width;
      origin : int;
      lo_level : Ir.Bounds.level;
      hi_level : Ir.Bounds.level;
    }  (** a monotonic/bounded address: one range check per entry *)

val pp_check : Format.formatter -> check -> unit
(** Canonical debug rendering (via {!Ir.Bounds.pp_bexpr} /
    {!Ir.Bounds.pp_level}), shared with the audit journal. *)

val pseudos_of_bexpr : Ir.Bounds.bexpr -> string list
(** The symbol-table pseudo homes a bound expression reads — the
    memory locations whose mutation could invalidate a pre-header
    check, i.e. the alias-pseudo obligations of §4.5. *)

type loop_plan = {
  loop_id : int;
  fname : string;
  header_item : int;
  checks : check list;
  eliminated : int list;
  alias_pseudos : string list;
      (** memory homes the bound expressions depend on; alias-checked
          runs create internal regions over them for the loop's
          duration (§4.5) *)
  exit_items : int list;
  contains_ret : bool;
  lattice : (string * string) list;
      (** the Figure-4 fixpoint: rendered SSA variable → rendered
          bounds ({!Ir.Bounds.pp_bounds}), deterministically ordered —
          the provenance the audit journal records per loop *)
}

type stats = {
  loops_seen : int;
  loops_optimized : int;
  invariant_checks : int;
  range_checks : int;
}

type fn_input = {
  fname : string;
  tac : Ir.Tac.instr list;  (** after symbol-table rewriting *)
  items : (int * Sparc.Asm.item) list;
  extra_call_defs : Ir.Tac.name list;
}

val analyze :
  next_loop_id:(unit -> int) -> ?trace:Trace.t -> fn_input ->
  loop_plan list * stats
(** [trace] brackets the per-function pipeline stages in
    ["cfg-ssa"] / ["bounds"] spans. *)
