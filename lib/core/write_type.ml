open Sparc

type t = Bss | Stack | Heap | Bss_var

let to_string = function
  | Bss -> "BSS"
  | Stack -> "STACK"
  | Heap -> "HEAP"
  | Bss_var -> "BSS-VAR"

(* The segment cache register dedicated to each write type (§3.1). *)
let cache_reg = function
  | Bss -> Reg.g 1
  | Stack -> Reg.g 2
  | Heap -> Reg.g 3
  | Bss_var -> Reg.g 4

let all = [ Bss; Stack; Heap; Bss_var ]

(* Stable id used to index the telemetry layer's 4-wide per-write-type
   counter arrays ({!Telemetry.n_write_types}); must stay aligned with
   [Telemetry.write_type_name]. *)
let index = function Bss -> 0 | Stack -> 1 | Heap -> 2 | Bss_var -> 3

(* Walk backwards from [idx] to find the in-block definition of [r];
   stops at labels, branches and calls.  Returns the defining position
   so chained lookups continue from there. *)
let rec def_before (items : Asm.item array) idx r =
  if idx < 0 then None
  else
    match items.(idx) with
    | Asm.Label _ -> None
    | Asm.Insn i when Insn.is_control i -> None
    | Asm.Set_label { label; offset; rd } when Reg.equal rd r ->
      Some (idx, `Set_label (label, offset))
    | Asm.Insn (Insn.Alu { op; rs1; op2; rd; _ }) when Reg.equal rd r ->
      Some (idx, `Alu (op, rs1, op2))
    | Asm.Insn insn when List.exists (Reg.equal r) (Insn.defs insn) ->
      Some (idx, `Other)
    | Asm.Insn _ | Asm.Set_label _ | Asm.Comment _ ->
      def_before items (idx - 1) r

(* Classify the store at [idx] (§3.1): frame/stack-pointer addresses are
   STACK; constant addresses (a sethi/or pair) are BSS; the Sun FORTRAN
   idiom — a register offset from a global base materialized in the same
   block — is BSS-VAR; everything else is HEAP.  Without
   [fortran_idiom], BSS-VAR degrades to HEAP as for the paper's C
   programs. *)
let classify_base ?(fortran_idiom = false) (items : Asm.item array) idx rs1 off =
  let degrade = function Bss_var when not fortran_idiom -> Heap | t -> t in
  if Reg.equal rs1 Reg.fp || Reg.equal rs1 Reg.sp then Stack
  else begin
    let base_class =
      match def_before items (idx - 1) rs1 with
      | Some (_, `Set_label _) -> (
        match off with Insn.Imm _ -> Bss | Insn.Reg _ -> Bss_var)
      | Some (pos, `Alu ((Insn.Add | Insn.Or), rs1', _)) -> (
        if Reg.equal rs1' Reg.fp || Reg.equal rs1' Reg.sp then Stack
        else
          match def_before items (pos - 1) rs1' with
          | Some (_, `Set_label _) -> Bss_var
          | Some (_, (`Alu _ | `Other)) | None -> Heap)
      | Some (_, (`Alu _ | `Other)) | None -> Heap
    in
    degrade base_class
  end

let classify ?fortran_idiom (items : Asm.item array) idx =
  match items.(idx) with
  | Asm.Insn (Insn.St { rs1; off; _ }) ->
    classify_base ?fortran_idiom items idx rs1 off
  | Asm.Insn _ | Asm.Label _ | Asm.Set_label _ | Asm.Comment _ ->
    invalid_arg "Write_type.classify: not a store"

let classify_load ?fortran_idiom (items : Asm.item array) idx =
  match items.(idx) with
  | Asm.Insn (Insn.Ld { rs1; off; _ }) ->
    classify_base ?fortran_idiom items idx rs1 off
  | Asm.Insn _ | Asm.Label _ | Asm.Set_label _ | Asm.Comment _ ->
    invalid_arg "Write_type.classify_load: not a load"

let pp ppf t = Fmt.string ppf (to_string t)
