(** The analysis-and-patching tool (§2.1): the extra processing stage
    between the compiler and the assembler.

    Given a compiled program, inserts a write check after every store
    of every instrumented function; when optimization is on, first runs
    symbol-table matching ({!Symopt}) and loop analysis ({!Loopopt}) and
    instead emits, for each eliminated site, a labelled patch stub that
    the MRS can swing into place at runtime (Kessler fast breakpoints).
    Pre-header checks, frame-integrity calls (§4.2) and the monitor
    library are spliced into the same item stream. *)

type opt_level =
  | O0        (** check every write *)
  | O_symbol  (** + symbol-table pattern matching (§4.2) *)
  | O_full    (** + loop-invariant and monotonic elimination (§4.3) *)

type options = {
  strategy : Strategy.t;
  opt : opt_level;
  check_aliases : bool;
      (** guard loop-optimized loops with alias regions (§4.5); off by
          default, matching the paper's measurements *)
  layout : Layout.t;
  fortran_idiom : bool;  (** enable the BSS-VAR write type (§3.1) *)
  instrument_runtime : bool;
  nop_padding : int;
      (** >0: insert that many nops per store instead of checks — the
          cache-effects experiment of §3.3.1 *)
  exclude : string list;
      (** functions left unpatched, like the paper's standard libraries *)
  monitor_reads : bool;
      (** also check every load — the read-monitoring extension of §5,
          needed for access-anomaly detection; read hits raise
          {!Traps.read_hit} *)
  disabled_guard : bool;
      (** ablation: [false] drops §2.1's branch-around-when-disabled
          guard from every check *)
  single_cache : bool;
      (** ablation: one shared segment cache instead of §3.1's four
          per-write-type caches *)
}

val default_options : options
(** BitmapInlineRegisters, no optimization, 128-word segments. *)

type status =
  | Checked
  | Sym_eliminated of string  (** the matched pseudo (PreMonitor key) *)
  | Loop_eliminated of int    (** owning loop id *)

type site = {
  origin : int;  (** item index of the store in the original program *)
  slot : int;
      (** dense program-order index — the telemetry layer's per-site
          array slot, assigned at instrument time *)
  width : Sparc.Insn.width;
  write_type : Write_type.t;
  status : status;
  insn : Sparc.Insn.t;
}

type read_site = {
  r_origin : int;
  r_slot : int;  (** dense program-order index among read sites *)
  r_width : Sparc.Insn.width;
  r_write_type : Write_type.t;
}

type sym_stats = { matched_store_sites : int; matched_loads : int }

type t = {
  program : Sparc.Asm.program;
  options : options;
  sites : site list;
  read_sites : read_site list;
  sites_by_pseudo : (string * int list) list;
  loop_plans : Loopopt.loop_plan list;
  sym_stats : sym_stats;
  loop_stats : Loopopt.stats;
  control_checks : bool;
  functions : string list;
  symtab : Sparc.Symtab.t;
      (** the compiler's symbol table, pre-assembly — what §4.2
          matching consumed *)
  fn_inputs : Loopopt.fn_input list;
      (** per instrumented function: the post-symopt TAC and the raw
          item slice the analyses consumed, retained so an independent
          checker ({!Verify}) can re-derive every elimination from the
          plan alone *)
}

val run : ?audit:Audit.t -> ?trace:Trace.t -> options -> Minic.Codegen.output -> t
(** With [audit], the journal receives one provenance verdict per write
    site: [Sym_matched] decisions are emitted by {!Symopt.rewrite},
    loop decisions (with their bound expressions, lattice levels and
    the per-loop Figure-4 fixpoint) are recorded from the surviving
    loop plans after alias filtering, and every site is finalized with
    its slot, origin, enclosing function and write type.  With [trace],
    the pipeline stages are bracketed in spans:
    ["lift"], ["symopt"], ["loopopt"] (with per-function ["cfg-ssa"] /
    ["bounds"] children), ["plan"] and ["instrument"]. *)

(** Label naming scheme used to find sites after assembly: *)

val site_label : int -> string
(** Placed immediately before each original store. *)

val read_site_label : int -> string
(** Placed immediately before each original load (after its check). *)

val back_label : int -> string
(** Placed immediately after an eliminated store (patch return target). *)

val patch_label : int -> string
(** Start of an eliminated store's patch stub. *)
