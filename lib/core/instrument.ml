open Sparc

(* The analysis-and-patching tool (§2.1): an extra stage between the
   compiler and the assembler that inserts a check after every write
   instruction — except those the optimizations of §4 eliminate. *)

type opt_level = O0 | O_symbol | O_full

type options = {
  strategy : Strategy.t;
  opt : opt_level;
  check_aliases : bool;
  layout : Layout.t;
  fortran_idiom : bool;
  instrument_runtime : bool;
  nop_padding : int;
  exclude : string list;
      (* functions left unpatched, like the paper's standard libraries *)
  monitor_reads : bool;
      (* also check every load (§5's read-monitoring extension) *)
  disabled_guard : bool;
  single_cache : bool;
      (* ablations of the §2.1 guard and §3.1 per-type caches *)
}

let default_options =
  {
    strategy = Strategy.Bitmap_inline_registers;
    opt = O0;
    check_aliases = false;
    layout = Layout.v ();
    fortran_idiom = false;
    instrument_runtime = true;
    nop_padding = 0;
    exclude = [];
    monitor_reads = false;
    disabled_guard = true;
    single_cache = false;
  }

type status =
  | Checked
  | Sym_eliminated of string  (* pseudo the site belongs to *)
  | Loop_eliminated of int    (* loop id *)

type site = {
  origin : int;
  slot : int;  (* dense index into the telemetry per-site arrays *)
  width : Insn.width;
  write_type : Write_type.t;
  status : status;
  insn : Insn.t;  (* the original store, for patch stubs *)
}

type read_site = {
  r_origin : int;
  r_slot : int;
  r_width : Insn.width;
  r_write_type : Write_type.t;
}

type sym_stats = { matched_store_sites : int; matched_loads : int }

type t = {
  program : Asm.program;
  options : options;
  sites : site list;
  read_sites : read_site list;
  sites_by_pseudo : (string * int list) list;
  loop_plans : Loopopt.loop_plan list;
  sym_stats : sym_stats;
  loop_stats : Loopopt.stats;
  control_checks : bool;
  functions : string list;
  symtab : Symtab.t;
  fn_inputs : Loopopt.fn_input list;
      (* per-function analysis inputs (post-symopt TAC + raw slice),
         retained so lib/verify can re-derive the plan independently *)
}

let site_label origin = Printf.sprintf "__dbp_site_%d" origin
let read_site_label origin = Printf.sprintf "__dbp_rsite_%d" origin
let back_label origin = Printf.sprintf "__dbp_back_%d" origin
let patch_label origin = Printf.sprintf "__dbp_patch_%d" origin

let i insn = Asm.Insn insn

let loop_trap ~env ~trap id =
  let skip = Checkgen.fresh env "ltrap" in
  [ i (Asm.tst (Reg.g 6)); i (Asm.branch Cond.Ne skip) ]
  @ List.map i (Asm.set id (Reg.g 5))
  @ [ i (Asm.trap trap); Asm.Label skip ]

let run ?audit ?trace (options : options) (out : Minic.Codegen.output) : t =
  let span name f =
    match trace with Some tr -> Trace.with_span tr name f | None -> f ()
  in
  let items = Array.of_list out.program.text in
  let function_labels = "_start" :: out.functions in
  let instrumented_functions =
    let fs =
      if options.instrument_runtime then function_labels
      else
        List.filter
          (fun f -> not (List.mem f Minic.Runtime.function_names))
          function_labels
    in
    List.filter (fun f -> not (List.mem f options.exclude)) fs
  in
  let slices, lifted =
    span "lift" (fun () ->
        let slices = Ir.Lift.slice_program ~function_labels out.program.text in
        let slices =
          List.filter
            (fun s -> List.mem s.Ir.Lift.fname instrumented_functions)
            slices
        in
        (slices, List.map (fun s -> (s, Ir.Lift.lift_slice s)) slices))
  in
  (* --- analysis --------------------------------------------------------- *)
  let sym_results, extra_call_defs =
    if options.opt = O0 then ([], [])
    else
      span "symopt" @@ fun () ->
      let escaped = Symopt.escaped_globals (List.map snd lifted) in
      let results =
        List.map
          (fun ((s : Ir.Lift.slice), tac) ->
            (s, Symopt.rewrite ?audit out.symtab ~fname:s.fname ~escaped tac))
          lifted
      in
      let globals =
        List.concat_map (fun (_, r) -> r.Symopt.global_pseudos) results
        |> List.sort_uniq compare
        |> List.map (fun p -> Ir.Tac.Pseudo p)
      in
      (results, globals)
  in
  let loop_plans, loop_stats =
    if options.opt <> O_full then
      ([], { Loopopt.loops_seen = 0; loops_optimized = 0; invariant_checks = 0;
             range_checks = 0 })
    else begin
      let counter = ref 0 in
      let next_loop_id () = incr counter; !counter in
      span "loopopt" @@ fun () ->
      List.fold_left
        (fun (plans, stats) ((s : Ir.Lift.slice), r) ->
          if s.fname = "_start" then (plans, stats)
          else begin
            let p, st =
              Loopopt.analyze ~next_loop_id ?trace
                { Loopopt.fname = s.fname; tac = r.Symopt.tac;
                  items = s.items; extra_call_defs }
            in
            ( plans @ p,
              {
                Loopopt.loops_seen = stats.Loopopt.loops_seen + st.Loopopt.loops_seen;
                loops_optimized = stats.loops_optimized + st.loops_optimized;
                invariant_checks = stats.invariant_checks + st.invariant_checks;
                range_checks = stats.range_checks + st.range_checks;
              } )
          end)
        ( [],
          { Loopopt.loops_seen = 0; loops_optimized = 0; invariant_checks = 0;
            range_checks = 0 } )
        sym_results
    end
  in
  (* Alias-checked runs refuse loops whose exits cannot be tracked. *)
  let loop_plans =
    if options.check_aliases then
      List.filter
        (fun (p : Loopopt.loop_plan) ->
          not p.contains_ret || p.alias_pseudos = [])
        loop_plans
    else loop_plans
  in
  (* Provenance: the surviving plans carry the final §4.3 verdicts —
     recorded only now, after alias filtering, so the journal never
     claims an elimination the emitted program does not perform. *)
  (match audit with
  | Some a ->
    List.iter
      (fun (p : Loopopt.loop_plan) ->
        List.iter
          (fun (c : Loopopt.check) ->
            match c with
            | Loopopt.Inv { expr; origin; level; _ } ->
              Audit.loop_invariant a ~origin ~loop_id:p.loop_id
                ~bexpr:(Fmt.str "%a" Ir.Bounds.pp_bexpr expr)
                ~level:(Ir.Bounds.level_name level)
            | Loopopt.Rng { lo; hi; origin; lo_level; hi_level; _ } ->
              Audit.loop_range a ~origin ~loop_id:p.loop_id
                ~lo:(Fmt.str "%a" Ir.Bounds.pp_bexpr lo)
                ~hi:(Fmt.str "%a" Ir.Bounds.pp_bexpr hi)
                ~levels:
                  (Ir.Bounds.level_name lo_level ^ "/"
                  ^ Ir.Bounds.level_name hi_level))
          p.checks;
        List.iter
          (fun (var, bounds) ->
            Audit.lattice a ~fn:p.fname ~loop_id:p.loop_id ~var ~bounds)
          p.lattice)
      loop_plans
  | None -> ());
  (* --- site table -------------------------------------------------------- *)
  let sym_eliminated : (int, string) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (_, (r : Symopt.result)) ->
      List.iter
        (fun (s : Symopt.store_site) ->
          Hashtbl.replace sym_eliminated s.origin s.pseudo)
        r.Symopt.matched_stores)
    sym_results;
  let loop_eliminated : (int, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (p : Loopopt.loop_plan) ->
      List.iter (fun o -> Hashtbl.replace loop_eliminated o p.loop_id) p.eliminated)
    loop_plans;
  let in_instrumented =
    let ranges =
      List.map
        (fun (s : Ir.Lift.slice) ->
          match s.items with
          | (first, _) :: _ ->
            let last = List.fold_left (fun _ (k, _) -> k) first s.items in
            (first, last)
          | [] -> (0, -1))
        slices
    in
    fun idx -> List.exists (fun (a, b) -> idx >= a && idx <= b) ranges
  in
  let sites = ref [] in
  span "plan" (fun () ->
      Array.iteri
        (fun idx item ->
          match item with
          | Asm.Insn (Insn.St { width; _ } as st) when in_instrumented idx ->
            let write_type =
              Write_type.classify ~fortran_idiom:options.fortran_idiom items idx
            in
            let status =
              match Hashtbl.find_opt sym_eliminated idx with
              | Some pseudo -> Sym_eliminated pseudo
              | None -> (
                match Hashtbl.find_opt loop_eliminated idx with
                | Some id -> Loop_eliminated id
                | None -> Checked)
            in
            sites :=
              { origin = idx; slot = 0; width; write_type; status; insn = st }
              :: !sites
          | _ -> ())
        items);
  (* Slots are dense indices in program order: the telemetry layer sizes
     its per-site exec/hit arrays off them at instrument time. *)
  let sites = List.mapi (fun i s -> { s with slot = i }) (List.rev !sites) in
  let site_of : (int, site) Hashtbl.t = Hashtbl.create 256 in
  List.iter (fun s -> Hashtbl.replace site_of s.origin s) sites;
  (* Finalize the journal's site entries: join each slot against the
     decisions the optimizers recorded by origin. *)
  (match audit with
  | Some a ->
    let fn_of =
      let ranges =
        List.map
          (fun (s : Ir.Lift.slice) ->
            match s.items with
            | (first, _) :: _ ->
              let last = List.fold_left (fun _ (k, _) -> k) first s.items in
              (s.Ir.Lift.fname, first, last)
            | [] -> (s.Ir.Lift.fname, 0, -1))
          slices
      in
      fun idx ->
        match
          List.find_opt (fun (_, a, b) -> idx >= a && idx <= b) ranges
        with
        | Some (f, _, _) -> f
        | None -> "?"
    in
    List.iter
      (fun s ->
        Audit.record_site a ~slot:s.slot ~origin:s.origin ~fn:(fn_of s.origin)
          ~write_type:(Write_type.to_string s.write_type))
      sites
  | None -> ());
  let read_sites = ref [] in
  if options.monitor_reads then
    Array.iteri
      (fun idx item ->
        match item with
        | Asm.Insn (Insn.Ld { width; _ }) when in_instrumented idx ->
          let r_write_type =
            Write_type.classify_load ~fortran_idiom:options.fortran_idiom items idx
          in
          read_sites :=
            { r_origin = idx; r_slot = 0; r_width = width; r_write_type }
            :: !read_sites
        | _ -> ())
      items;
  let read_sites =
    List.mapi (fun i r -> { r with r_slot = i }) (List.rev !read_sites)
  in
  let read_site_of : (int, read_site) Hashtbl.t = Hashtbl.create 256 in
  List.iter (fun r -> Hashtbl.replace read_site_of r.r_origin r) read_sites;
  (* --- emission ----------------------------------------------------------- *)
  let env =
    Checkgen.make_env ~disabled_guard:options.disabled_guard
      ~single_cache:options.single_cache ~layout:options.layout
      ~strategy:options.strategy ()
  in
  let control_checks = options.opt <> O0 && options.nop_padding = 0 in
  let entry_at : (int, Loopopt.loop_plan list) Hashtbl.t = Hashtbl.create 16 in
  let exit_at : (int, Loopopt.loop_plan list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (p : Loopopt.loop_plan) ->
      Hashtbl.replace entry_at p.header_item
        (p :: Option.value ~default:[] (Hashtbl.find_opt entry_at p.header_item));
      if options.check_aliases && p.alias_pseudos <> [] then
        List.iter
          (fun e ->
            Hashtbl.replace exit_at e
              (p :: Option.value ~default:[] (Hashtbl.find_opt exit_at e)))
          p.exit_items)
    loop_plans;
  let buf = ref [] in
  let emit item = buf := item :: !buf in
  let emit_all l = List.iter emit l in
  span "instrument" (fun () ->
  Array.iteri
    (fun idx item ->
      (match Hashtbl.find_opt entry_at idx with
      | Some plans ->
        List.iter
          (fun (p : Loopopt.loop_plan) ->
            emit_all (loop_trap ~env ~trap:Traps.loop_entry p.loop_id))
          plans
      | None -> ());
      (match Hashtbl.find_opt read_site_of idx, item with
      | Some r, Asm.Insn ld when options.nop_padding = 0 ->
        emit_all (Checkgen.read_check_items env ~write_type:r.r_write_type ld);
        emit (Asm.Label (read_site_label idx))
      | _, _ -> ());
      emit item;
      (match Hashtbl.find_opt exit_at idx with
      | Some plans ->
        List.iter
          (fun (p : Loopopt.loop_plan) ->
            emit_all (loop_trap ~env ~trap:Traps.loop_exit p.loop_id))
          plans
      | None -> ());
      match Hashtbl.find_opt site_of idx with
      | Some site ->
        (* The store itself was just emitted; move it behind its site
           label by re-emitting: labels are free, so place the label
           before the store instead. *)
        (match !buf with
        | store :: rest ->
          buf := store :: Asm.Label (site_label idx) :: rest
        | [] -> assert false);
        if options.nop_padding > 0 then
          for _ = 1 to options.nop_padding do emit (i Asm.nop) done
        else begin
          match site.status with
          | Checked ->
            emit_all (Checkgen.check_items env ~write_type:site.write_type site.insn)
          | Sym_eliminated _ | Loop_eliminated _ ->
            emit (Asm.Label (back_label idx))
        end
      | None ->
        (* Frame checks around window operations (§4.2). *)
        if control_checks && in_instrumented idx then begin
          match item with
          | Asm.Insn (Insn.Save _) ->
            emit (i (Asm.call "__dbp_frame_enter"));
            emit (i Asm.nop)
          | Asm.Insn (Insn.Restore _) ->
            (* The call must precede the restore: re-order. *)
            (match !buf with
            | restore :: rest ->
              buf := restore :: i Asm.nop :: i (Asm.call "__dbp_frame_exit") :: rest
            | [] -> assert false)
          | _ -> ()
        end)
    items);
  (* Patch stubs for every eliminated site. *)
  let stubs =
    List.concat_map
      (fun site ->
        match site.status with
        | Checked -> []
        | Sym_eliminated _ | Loop_eliminated _ ->
          (Asm.Label (patch_label site.origin) :: i site.insn
           :: Checkgen.check_items env ~write_type:site.write_type site.insn)
          @ [ i (Asm.ba (back_label site.origin)) ])
      sites
  in
  let library =
    if options.nop_padding > 0 then []
    else Checkgen.monitor_library env ~control_checks ~monitor_reads:options.monitor_reads
  in
  let text = List.rev !buf @ stubs @ library in
  let sites_by_pseudo =
    List.concat_map (fun (_, r) -> r.Symopt.sites_by_pseudo) sym_results
  in
  let sym_stats =
    {
      matched_store_sites = Hashtbl.length sym_eliminated;
      matched_loads =
        List.fold_left (fun a (_, r) -> a + r.Symopt.matched_loads) 0 sym_results;
    }
  in
  let fn_inputs =
    if options.opt = O0 then
      List.map
        (fun ((s : Ir.Lift.slice), tac) ->
          { Loopopt.fname = s.fname; tac; items = s.items; extra_call_defs = [] })
        lifted
    else
      List.map
        (fun ((s : Ir.Lift.slice), (r : Symopt.result)) ->
          { Loopopt.fname = s.fname; tac = r.Symopt.tac; items = s.items;
            extra_call_defs })
        sym_results
  in
  {
    program = { out.program with text };
    options;
    sites;
    read_sites;
    sites_by_pseudo;
    loop_plans;
    sym_stats;
    loop_stats;
    control_checks;
    functions = out.functions;
    symtab = out.symtab;
    fn_inputs;
  }
