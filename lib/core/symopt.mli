(** Symbol-table pattern matching (§4.2).

    Rewrites loads/stores whose address expressions match debugger
    symbol-table entries into moves of pseudo-operands.  Matched store
    checks are eliminated statically and re-inserted at runtime by
    [PreMonitor] when the variable becomes monitored; the rewrite also
    exposes memory-homed induction variables to the loop optimizer.

    Only unaliasable one-word homes are matched: locals whose address
    is never taken, and globals whose address never escapes. *)

module SS : Set.S with type elt = string

type store_site = { origin : int; pseudo : string }

type result = {
  tac : Ir.Tac.instr list;
  matched_stores : store_site list;
  matched_loads : int;
  global_pseudos : string list;
      (** pseudo names a call may redefine (matched globals) *)
  sites_by_pseudo : (string * int list) list;
      (** pseudo -> store origins: the PreMonitor patch list *)
}

val escaped_globals : Ir.Tac.instr list list -> SS.t
(** Whole-program escape analysis over all functions' TAC. *)

val addr_taken_offsets : Ir.Tac.instr list -> int list

val rewrite :
  ?audit:Audit.t ->
  Sparc.Symtab.t -> fname:string -> escaped:SS.t -> Ir.Tac.instr list -> result
(** With [audit], every matched store emits a [Sym_matched] provenance
    decision (origin, pseudo, rendered symbol-table entry) into the
    journal. *)
