(** The monitored region service runtime (§2).

    The OCaml half of the MRS: it owns the mirrors of the in-memory
    structures the check code reads (segmented bitmap, hash table),
    installs the trap handlers the checks raise, and implements the
    service interface of §2 —

    {ul
    {- [CreateMonitoredRegion] / [DeleteMonitoredRegion]
       ({!create_region} / {!delete_region});}
    {- [NotificationCallBack] ({!set_callback});}
    {- [PreMonitor] / [PostMonitor] (§4.2), which patch a matched
       variable's known writes in and out via Kessler fast
       breakpoints;}
    {- dynamic re-insertion of loop-eliminated checks when a pre-header
       check intersects a region (§4.3).}}

    The reserved registers are maintained here too: the [%g6] disabled
    flag, the [%g4] table base (BitmapInlineRegisters) and the four
    segment cache registers, which are invalidated on every region
    creation. *)

type access = Write | Read

type hit = { addr : int; pc : int; region : Region.t; access : access }

type counters = {
  mutable user_hits : int;
  mutable read_hits : int;  (** subset of [user_hits] from read checks *)
  mutable internal_hits : int;
  mutable loop_entries : int;
  mutable loop_triggers : int;
  mutable patches_inserted : int;
  mutable violations : int;
}

type t

val install :
  ?protect_self:bool ->
  ?telemetry:Telemetry.t ->
  ?audit:Audit.t ->
  plan:Instrument.t ->
  image:Sparc.Assembler.image ->
  symtab:Sparc.Symtab.t ->
  Machine.Cpu.t ->
  t
(** Install trap handlers and initialize reserved registers.  The MRS
    starts disabled.  With [protect_self], internal monitored regions
    cover the MRS's own in-memory structures (§2.1); stray program
    writes into them surface as [internal_hits].

    With [telemetry], every service-interface action and monitor hit is
    mirrored into the registry: hits are attributed back to their check
    site (by binary search over the site/patch/read-site label
    addresses) and bump that slot's hit cell, a trace event is appended
    to the registry's ring, and region/patch/loop/violation counters
    are kept alongside {!counters}.

    With [audit], patch insert/remove and region create/delete are
    journalled as lifecycle events carrying the reason ([why]) and the
    instruction count at which they happened — the runtime half of the
    provenance record started at instrument time. *)

val create_region : ?why:string -> t -> Region.t -> unit
(** [why] labels the audit event (defaults to ["user"]; internal callers
    pass ["loop-preheader"], ["mrs-self"], ...).
    @raise Region.Invalid on overlap or misalignment. *)

val delete_region : ?why:string -> t -> Region.t -> unit

val regions : t -> Region.set

val set_callback : t -> (hit -> unit) -> unit
(** The NotificationCallBack; fired for every hit on a [User] region. *)

val add_hit_observer : t -> (hit -> unit) -> unit
(** Register a passive observer (heatmaps, tooling) fired for every
    [User]-region hit after the callback.  Observers accumulate —
    unlike {!set_callback} they never replace each other. *)

val enable : t -> unit
val disable : t -> unit

val pre_monitor : t -> string -> unit
(** Patch in the checks of every known write of a matched pseudo
    (["g"] for a global, ["f.x"] for a local of [f]). *)

val post_monitor : t -> string -> unit

val insert_check : ?why:string -> t -> int -> unit
(** Patch in the check for one eliminated site (by origin).  [why]
    labels the audit event: the pseudo name for PreMonitor patches,
    ["loop:N"] / ["alias:N"] for dynamic loop re-insertion. *)

val remove_check : ?why:string -> t -> int -> unit

val check_inserted : t -> int -> bool

val counters : t -> counters

val reset_counters : counters -> unit
(** Zero every field — for reusing a session across measurement
    phases. *)

val record_gauges : t -> unit
(** Write the occupancy gauges ({!Telemetry.Seg_words_monitored},
    {!Telemetry.Seg_arena_bytes}) into the installed telemetry registry;
    no-op without one.  Call just before taking a report. *)

val loop_entry_count : t -> int -> int
(** Dynamic executions of a loop's pre-header check. *)

val eval_bexpr : t -> Ir.Bounds.bexpr -> int
(** Evaluate a bound expression against live machine state (registers,
    pseudo memory homes, label addresses).
    @raise Unresolved when a name cannot be resolved. *)

exception Unresolved of string

exception Hardware_capacity of int
(** Raised by {!create_region} under {!Strategy.Hardware_watch} when
    the watchpoint registers are exhausted — the capacity failure mode
    of §1. *)

val pseudo_home_of_symtab :
  Sparc.Symtab.t -> string -> [ `Global of int | `Local of string * int ] option
