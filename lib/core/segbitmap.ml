open Machine

(* The segmented bitmap (§3, Figure 2), maintained in the debugged
   program's simulated memory so the generated check code can consult
   it with ordinary loads.

   Segment table entry layout: [segment_pointer | monitored_flag] with
   the flag in the otherwise-unused low bit.  A zero entry means "no
   segment allocated" and reads as unmonitored, so the table needs no
   initialization (fresh simulated memory is zero).  An OCaml-side
   count of monitored words per segment supports efficient flag
   maintenance on create/delete (§3.1). *)

type t = {
  layout : Layout.t;
  mem : Memory.t;
  mutable next_segment : int;
  counts : (int, int) Hashtbl.t;  (* segment number -> monitored words *)
  telemetry : Telemetry.t option;
}

let create ?telemetry layout mem =
  {
    layout;
    mem;
    next_segment = layout.Layout.segments_base;
    counts = Hashtbl.create 64;
    telemetry;
  }

let entry_addr t addr = Layout.table_entry_addr t.layout addr

(* Segment pointer for the segment containing [addr], allocating (and
   installing) a zeroed segment on first use. *)
let segment_ptr t addr =
  let ea = entry_addr t addr in
  let entry = Sparc.Word.to_unsigned (Memory.read_word t.mem ea) in
  if entry land lnot 1 <> 0 then entry land lnot 1
  else begin
    let ptr = t.next_segment in
    t.next_segment <- t.next_segment + Layout.segment_bitmap_bytes t.layout;
    Memory.write_word t.mem ea (ptr lor (entry land 1));
    (match t.telemetry with
    | Some tel -> Telemetry.incr tel Telemetry.Seg_segments_allocated
    | None -> ());
    ptr
  end

let set_flag t addr flag =
  let ea = entry_addr t addr in
  let entry = Sparc.Word.to_unsigned (Memory.read_word t.mem ea) in
  let entry = if flag then entry lor 1 else entry land lnot 1 in
  Memory.write_word t.mem ea entry

let bit_location t addr =
  let widx = Layout.word_in_segment t.layout addr in
  (4 * (widx lsr 5), widx land 31)

let set_word_bit t addr value =
  let seg = Layout.segment_of t.layout addr in
  let ptr = segment_ptr t addr in
  let word_off, bit = bit_location t addr in
  let w = Sparc.Word.to_unsigned (Memory.read_word t.mem (ptr + word_off)) in
  let already = w land (1 lsl bit) <> 0 in
  let w' = if value then w lor (1 lsl bit) else w land lnot (1 lsl bit) in
  Memory.write_word t.mem (ptr + word_off) w';
  (* Maintain the per-segment monitored-word count and flag. *)
  let delta =
    match value, already with
    | true, false -> 1
    | false, true -> -1
    | true, true | false, false -> 0
  in
  if delta <> 0 then begin
    let c = Option.value ~default:0 (Hashtbl.find_opt t.counts seg) + delta in
    Hashtbl.replace t.counts seg c;
    set_flag t addr (c > 0)
  end

let iter_region_words (region : Region.t) f =
  let lo = region.lo and hi = region.hi in
  let rec go a = if a <= hi then (f a; go (a + 4)) in
  go lo

let add_region t region = iter_region_words region (fun a -> set_word_bit t a true)

let remove_region t region =
  iter_region_words region (fun a -> set_word_bit t a false)

(* Reference query, reading the same in-memory structures the check
   code reads — the oracle for the instruction-level tests. *)
let monitored t addr =
  let ea = entry_addr t addr in
  let entry = Sparc.Word.to_unsigned (Memory.read_word t.mem ea) in
  if entry land 1 = 0 then false
  else begin
    let ptr = entry land lnot 1 in
    let word_off, bit = bit_location t addr in
    let w = Sparc.Word.to_unsigned (Memory.read_word t.mem (ptr + word_off)) in
    w land (1 lsl bit) <> 0
  end

let segment_monitored t addr =
  let entry = Sparc.Word.to_unsigned (Memory.read_word t.mem (entry_addr t addr)) in
  entry land 1 <> 0

let allocated_segments t = Hashtbl.length t.counts

let monitored_words t = Hashtbl.fold (fun _ c acc -> acc + c) t.counts 0

let space_bytes t = t.next_segment - t.layout.Layout.segments_base
