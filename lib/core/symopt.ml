open Sparc

(* Symbol-table pattern matching (§4.2).

   Address expressions of loads/stores are matched against symbol-table
   entries; matched accesses are rewritten to moves of pseudo-operands,
   which both eliminates those write checks (re-inserted dynamically by
   PreMonitor) and exposes memory-homed induction variables to the loop
   optimizer.

   We only match one-word scalar/pointer homes that cannot be aliased:
   locals whose address is never taken and globals whose address never
   escapes (used only as a load/store base).  Aliased homes keep their
   checks, which — together with the monitored region the debugger
   always creates — preserves hit detection exactly as the paper
   describes. *)

module SS = Set.Make (String)

type store_site = { origin : int; pseudo : string }

type result = {
  tac : Ir.Tac.instr list;
  matched_stores : store_site list;
  matched_loads : int;
  global_pseudos : string list;  (** pseudos a call may redefine *)
  sites_by_pseudo : (string * int list) list;
      (** pseudo -> store origins, the PreMonitor patch list *)
}

(* --- escape analysis --------------------------------------------------------- *)

(* Globals whose address escapes: a register holding &g (or a copy) is
   used other than as a load/store base or as the base of an
   add-immediate.  Conservative and flow-insensitive per block. *)
let escaped_globals (functions : Ir.Tac.instr list list) : SS.t =
  let escaped = ref SS.empty in
  let escape name = escaped := SS.add name !escaped in
  let scan instrs =
    (* reg -> global label it currently holds *)
    let holds : (Reg.t, string) Hashtbl.t = Hashtbl.create 8 in
    let clear_reg r = Hashtbl.remove holds r in
    let clear_all () = Hashtbl.reset holds in
    let label_of = function
      | Ir.Tac.Name (Ir.Tac.Machine r) -> Hashtbl.find_opt holds r
      | Ir.Tac.Name (Ir.Tac.Pseudo _) | Ir.Tac.Imm _ -> None
      | Ir.Tac.Lab (l, _) -> Some l
    in
    let escape_op op = Option.iter escape (label_of op) in
    List.iter
      (fun instr ->
        match instr with
        | Ir.Tac.Label _ -> clear_all ()
        | Ir.Tac.Branch _ | Ir.Tac.Jump _ | Ir.Tac.Ret _ -> clear_all ()
        | Ir.Tac.Call _ ->
          (* Outgoing argument registers may carry addresses into the
             callee. *)
          List.iter
            (fun k ->
              match Hashtbl.find_opt holds (Reg.o k) with
              | Some l -> escape l
              | None -> ())
            [ 0; 1; 2; 3; 4; 5 ];
          clear_all ()
        | Ir.Tac.Effect _ ->
          (* Traps read only %o0. *)
          (match Hashtbl.find_opt holds (Reg.o 0) with
          | Some l -> escape l
          | None -> ());
          clear_all ()
        | Ir.Tac.Assert { dst = Ir.Tac.Machine r; _ } -> clear_reg r
        | Ir.Tac.Assert _ -> ()
        | Ir.Tac.Store { base = _; off; src; _ } ->
          (* Using a tracked address as the stored value or as a
             register offset escapes it; using it as the base is the
             normal pattern.  The compiler materializes global addresses
             into its scratch registers for exactly one access, so their
             holds die here — without this, a stale scratch register
             would spuriously escape the global at the next call. *)
          escape_op src;
          escape_op off;
          List.iter clear_reg [ Reg.o 3; Reg.o 4; Reg.o 5 ]
        | Ir.Tac.Def { dst; rhs; _ } -> (
          (match dst with
          | Ir.Tac.Machine r -> clear_reg r
          | Ir.Tac.Pseudo _ -> ());
          match rhs, dst with
          | Ir.Tac.Mov (Ir.Tac.Lab (l, _)), Ir.Tac.Machine r ->
            Hashtbl.replace holds r l
          | Ir.Tac.Mov (Ir.Tac.Name (Ir.Tac.Machine src)), Ir.Tac.Machine r -> (
            match Hashtbl.find_opt holds src with
            | Some l -> Hashtbl.replace holds r l
            | None -> ())
          | Ir.Tac.Mov _, _ -> ()
          | Ir.Tac.Bin (Insn.Add, a, Ir.Tac.Imm _), Ir.Tac.Machine r -> (
            (* &g + c stays an address of g. *)
            match label_of a with
            | Some l -> Hashtbl.replace holds r l
            | None -> ())
          | Ir.Tac.Bin (_, a, b), _ ->
            (* Any other arithmetic on a tracked address (indexing,
               comparisons feeding stores, ...) escapes it. *)
            escape_op a;
            escape_op b
          | Ir.Tac.Load { base = _; off; _ }, _ ->
            (* A register offset that is an address escapes. *)
            escape_op off;
            List.iter clear_reg [ Reg.o 3; Reg.o 4; Reg.o 5 ]
          | Ir.Tac.Callret, _ -> ()))
      instrs
  in
  List.iter scan functions;
  !escaped

(* --- address-taken locals ----------------------------------------------------- *)

(* Frame offsets whose address is materialized ([add %fp, c, r]): any
   symbol whose home range intersects one is excluded. *)
let addr_taken_offsets instrs =
  List.filter_map
    (fun instr ->
      match instr with
      | Ir.Tac.Def
          { rhs = Ir.Tac.Bin (Insn.Add, Ir.Tac.Name (Ir.Tac.Machine r), Ir.Tac.Imm c); _ }
        when Reg.equal r Reg.fp ->
        Some c
      | _ -> None)
    instrs

(* --- matching ------------------------------------------------------------------ *)

type matchable = {
  m_pseudo : string;
  m_global : bool;
  m_entry : Symtab.entry;  (* the matched symbol-table entry *)
}

let matchable_local symtab ~fname ~addr_taken off : matchable option =
  let covers (e : Symtab.entry) o =
    match e.location with
    | Symtab.Fp_offset base -> o >= base && o < base + Symtab.size_bytes e
    | Symtab.Absolute _ | Symtab.Data_label _ -> false
  in
  let entry =
    List.find_opt
      (fun (e : Symtab.entry) ->
        e.func = Some fname && covers e off)
      (Symtab.entries symtab)
  in
  match entry with
  | Some e
    when e.size_words = 1
         && (match e.ctype with
            | Symtab.Scalar | Symtab.Pointer -> true
            | Symtab.Array _ | Symtab.Struct _ -> false)
         && (match e.location with Symtab.Fp_offset b -> b = off | _ -> false)
         && not (List.exists (fun o -> covers e o) addr_taken) ->
    Some { m_pseudo = fname ^ "." ^ e.name; m_global = false; m_entry = e }
  | Some _ | None -> None

let matchable_global symtab ~escaped label off : matchable option =
  match Symtab.lookup symtab label with
  | Some e
    when e.func = None && off = 0 && e.size_words = 1
         && (match e.ctype with
            | Symtab.Scalar | Symtab.Pointer -> true
            | Symtab.Array _ | Symtab.Struct _ -> false)
         && not (SS.mem label escaped) ->
    Some { m_pseudo = label; m_global = true; m_entry = e }
  | Some _ | None -> None

let rewrite ?audit symtab ~fname ~escaped (instrs : Ir.Tac.instr list) : result =
  let addr_taken = addr_taken_offsets instrs in
  (* Track which register holds which global address, per block, to
     resolve [set g, r; st v, [r]] patterns. *)
  let holds : (Reg.t, string * int) Hashtbl.t = Hashtbl.create 8 in
  let matched_stores = ref [] in
  let matched_loads = ref 0 in
  let globals = ref SS.empty in
  let match_address base off : matchable option =
    match base, off with
    | Ir.Tac.Name (Ir.Tac.Machine r), Ir.Tac.Imm c when Reg.equal r Reg.fp ->
      matchable_local symtab ~fname ~addr_taken c
    | Ir.Tac.Name (Ir.Tac.Machine r), Ir.Tac.Imm c -> (
      match Hashtbl.find_opt holds r with
      | Some (label, base_off) ->
        matchable_global symtab ~escaped label (base_off + c)
      | None -> None)
    | Ir.Tac.Lab (label, base_off), Ir.Tac.Imm c ->
      matchable_global symtab ~escaped label (base_off + c)
    | (Ir.Tac.Name _ | Ir.Tac.Imm _ | Ir.Tac.Lab _), _ -> None
  in
  let out =
    List.map
      (fun instr ->
        match instr with
        | Ir.Tac.Label _ | Ir.Tac.Branch _ | Ir.Tac.Jump _ | Ir.Tac.Ret _
        | Ir.Tac.Call _ | Ir.Tac.Effect _ ->
          Hashtbl.reset holds;
          instr
        | Ir.Tac.Assert _ -> instr
        | Ir.Tac.Store { base; off; src; width; origin } -> (
          match match_address base off with
          | Some m when width = Insn.Word ->
            matched_stores := { origin; pseudo = m.m_pseudo } :: !matched_stores;
            (* Provenance: record the §4.2 argument for this elimination
               — which symbol-table entry the address expression matched. *)
            Option.iter
              (fun a ->
                Audit.sym_matched a ~origin ~pseudo:m.m_pseudo
                  ~symtab_entry:(Fmt.str "%a" Symtab.pp_entry m.m_entry))
              audit;
            if m.m_global then globals := SS.add m.m_pseudo !globals;
            Ir.Tac.Def { dst = Ir.Tac.Pseudo m.m_pseudo; rhs = Ir.Tac.Mov src; origin }
          | Some _ | None -> instr)
        | Ir.Tac.Def { dst; rhs; origin } -> (
          (match dst with
          | Ir.Tac.Machine r -> Hashtbl.remove holds r
          | Ir.Tac.Pseudo _ -> ());
          match rhs, dst with
          | Ir.Tac.Mov (Ir.Tac.Lab (l, o)), Ir.Tac.Machine r ->
            Hashtbl.replace holds r (l, o);
            instr
          | Ir.Tac.Mov (Ir.Tac.Name (Ir.Tac.Machine s)), Ir.Tac.Machine r -> (
            match Hashtbl.find_opt holds s with
            | Some lo ->
              Hashtbl.replace holds r lo;
              instr
            | None -> instr)
          | Ir.Tac.Load { base; off; width }, _ -> (
            match match_address base off with
            | Some m when width = Insn.Word ->
              incr matched_loads;
              if m.m_global then globals := SS.add m.m_pseudo !globals;
              Ir.Tac.Def
                { dst; rhs = Ir.Tac.Mov (Ir.Tac.Name (Ir.Tac.Pseudo m.m_pseudo)); origin }
            | Some _ | None -> instr)
          | (Ir.Tac.Mov _ | Ir.Tac.Bin _ | Ir.Tac.Callret), _ -> instr))
      instrs
  in
  let sites = Hashtbl.create 16 in
  List.iter
    (fun { origin; pseudo } ->
      Hashtbl.replace sites pseudo
        (origin :: Option.value ~default:[] (Hashtbl.find_opt sites pseudo)))
    !matched_stores;
  {
    tac = out;
    matched_stores = List.rev !matched_stores;
    matched_loads = !matched_loads;
    global_pseudos = SS.elements !globals;
    sites_by_pseudo = Hashtbl.fold (fun k v acc -> (k, v) :: acc) sites [];
  }
