(** Write types for segment caching (§3.1).

    Each store instruction is statically assigned a type predicting the
    spatial locality of its targets; each type gets its own segment
    cache register.  [BSS-VAR] recognizes the Sun FORTRAN global-array
    idiom and is only used for FORTRAN-class programs. *)

type t = Bss | Stack | Heap | Bss_var

val to_string : t -> string
val cache_reg : t -> Sparc.Reg.t
val all : t list

val index : t -> int
(** Stable id 0–3 (BSS, STACK, HEAP, BSS-VAR) indexing the telemetry
    layer's per-write-type counter slots; [Telemetry.write_type_name
    (index wt)] agrees with [to_string wt]. *)

val classify : ?fortran_idiom:bool -> Sparc.Asm.item array -> int -> t
(** Classify the store at an item index by scanning its basic block
    backwards for the address base's definition.
    @raise Invalid_argument if the item is not a store. *)

val classify_load : ?fortran_idiom:bool -> Sparc.Asm.item array -> int -> t
(** Same classification for a load (read monitoring, §5).
    @raise Invalid_argument if the item is not a load. *)

val pp : Format.formatter -> t -> unit
