(** Mutation operators for the verifier's kill gate.

    Each mutant is one small, plausible corruption of a finished
    instrumentation plan, its emitted program, or its audit journal —
    the shapes of wrong answer a buggy analysis could produce.  The
    mutation-testing gate requires {!Verify.run} to refute every
    applicable mutant on the benchmark workloads; a surviving mutant
    means a proof obligation is missing. *)

type mutant = {
  m_name : string;
  m_apply :
    Dbp.Instrument.t ->
    Audit.report option ->
    (Dbp.Instrument.t * Audit.report option) option;
      (** [None] when the mutation does not apply to this plan (e.g.
          no range checks to corrupt). *)
}

val all : mutant list
