(** Translation validation for check elimination (the static mirror of
    the audit journal's dynamic conservation law).

    The verifier is an independent checker: it consumes only the
    pipeline's *outputs* — the final {!Dbp.Instrument.t} plan, the
    retained per-function slices ([fn_inputs]), the compiler symbol
    table and the emitted program — and re-derives, without reusing the
    analyses' internal state, one proof obligation per eliminated
    check.  Every §4.2 symbol-table match is re-established against the
    symbol table and a fresh escape/address-taken walk; every §4.3
    pre-header check is re-proved from a fresh CFG/SSA build by a
    candidate-expression engine with its own interval argument; and a
    set of whole-plan obligations pin down pre-header placement,
    dominance, alias-pseudo resolvability, patch-stub fidelity, frame
    integrity, [%fp] discipline and indirect-jump restrictions.  When
    an audit journal is supplied, the plan is also cross-checked
    against the journal's recorded verdicts, expression by expression.

    A pristine pipeline must prove every obligation; any mutation of
    the plan (see {!Verify_mutate}) must leave at least one obligation
    [Refuted]. *)

type verdict =
  | Proved
  | Refuted of string  (** the plan is wrong: elimination is unsound *)
  | Unknown of string  (** the verifier could not decide; treated as a
                           failure by the [--verify] gate *)

type obligation = {
  o_id : int;          (** dense, stable within one report *)
  o_kind : string;
      (** ["sym"], ["inv"], ["rng"], ["preheader"], ["coverage"],
          ["dominance"], ["alias"], ["premonitor"], ["patch"],
          ["fpdef"], ["indirect"], ["frame"] or ["audit"] *)
  o_origin : int option;  (** item index of the store site, if any *)
  o_loop : int option;    (** owning loop id, if any *)
  o_pseudo : string option;  (** symbol-table pseudo, if any *)
  o_detail : string;
      (** human-readable statement of the obligation (for checks, the
          canonical {!Dbp.Loopopt.pp_check} rendering) *)
  o_verdict : verdict;
}

type report = {
  v_schema : string;
  v_tags : (string * string) list;
  v_obligations : obligation list;
  v_proved : int;
  v_refuted : int;
  v_unknown : int;
}

val schema_version : string
(** ["dbp-verify/1"]. *)

val run :
  ?audit:Audit.report -> ?tags:(string * string) list ->
  Dbp.Instrument.t -> report
(** Discharge every obligation the plan owes.  [audit] additionally
    cross-checks the plan against the journal's recorded verdicts. *)

val ok : report -> bool
(** No [Refuted] and no [Unknown] obligations. *)

val covered_origins : report -> int list
(** Sorted origins of all per-site elimination obligations
    (["sym"] / ["inv"] / ["rng"]) — the verifier's independent view of
    which stores lost their inline checks. *)

val verdict_name : verdict -> string
val pp_obligation : Format.formatter -> obligation -> unit

val summary_line : report -> string
(** One line: [verify: obligations=N proved=N refuted=N unknown=N]. *)

val to_text : report -> string
(** The summary line followed by one rendered line per obligation. *)

val explain : report -> string -> string option
(** Obligations touching the given site: the target parses as an
    origin item index (decimal or [0x] hex) or names a pseudo.  [None]
    when nothing matches — callers join this into [--explain] output. *)

val to_json : report -> Export.json
val to_json_string : ?indent:int -> report -> string
