open Sparc

(* Translation validation of the check-elimination plan (the static
   mirror of PR 3's runtime conservation law): every check the
   optimizers eliminated is re-justified here from the pipeline's
   *outputs* alone — the retained per-function analysis inputs, the
   symbol table, the plan and the emitted program — never from the
   analyses' internal state.  One proof obligation per eliminated
   site plus whole-plan structural obligations; a [Refuted] verdict
   means the emitted program can miss a data breakpoint. *)

module I = Dbp.Instrument
module L = Dbp.Loopopt
module B = Ir.Bounds
module S = Ir.Ssa
module T = Ir.Tac
module SS = Set.Make (String)

type verdict = Proved | Refuted of string | Unknown of string

type obligation = {
  o_id : int;
  o_kind : string;
  o_origin : int option;
  o_loop : int option;
  o_pseudo : string option;
  o_detail : string;
  o_verdict : verdict;
}

type report = {
  v_schema : string;
  v_tags : (string * string) list;
  v_obligations : obligation list;
  v_proved : int;
  v_refuted : int;
  v_unknown : int;
}

let schema_version = "dbp-verify/1"

let mk ?origin ?loop ?pseudo kind detail verdict =
  { o_id = 0; o_kind = kind; o_origin = origin; o_loop = loop;
    o_pseudo = pseudo; o_detail = detail; o_verdict = verdict }

(* --- per-function pipeline rebuild ------------------------------------- *)

(* The IR pipeline is deterministic, so rebuilding it from the retained
   inputs yields block ids and SSA versions identical to the ones the
   plan's bound expressions mention — without trusting any value the
   optimizer computed. *)
type ctx = {
  fi : L.fn_input;
  raw : T.instr list;  (* re-lifted pre-symopt TAC, for §4.2 re-matching *)
  cfg : Ir.Cfg.t;
  dom : Ir.Dominance.t;
  loops : Ir.Loops.loop list;
  ssa : S.t;
}

let build_ctx (fi : L.fn_input) : (ctx, string) result =
  try
    let raw =
      Ir.Lift.lift_slice { Ir.Lift.fname = fi.L.fname; items = fi.L.items }
    in
    let cfg = Ir.Cfg.insert_asserts (Ir.Cfg.build fi.L.tac) in
    let dom = Ir.Dominance.compute cfg in
    let loops = Ir.Loops.find cfg dom in
    let ssa = S.construct ~extra_call_defs:fi.L.extra_call_defs cfg dom in
    Ok { fi; raw; cfg; dom; loops; ssa }
  with
  | Ir.Lift.Error m -> Error ("lift: " ^ m)
  | Ir.Cfg.Error m -> Error ("cfg: " ^ m)
  | e -> Error (Printexc.to_string e)

(* --- symbolic candidate engine ----------------------------------------- *)

(* For a variable used in a store address we derive candidate
   pre-header-evaluable expressions in four senses: [Exact] (equal on
   every iteration), [Lo]/[Hi] (bounds over every iteration) and
   [Entry] (the value attained on the first iteration — the refutation
   direction).  Derivation walks SSA def sites backwards and never
   consults the optimizer's bound environment. *)
type mode = Exact | Lo | Hi | Entry

let mode_idx = function Exact -> 0 | Lo -> 1 | Hi -> 2 | Entry -> 3

type cstate = {
  c : ctx;
  loop : Ir.Loops.loop;
  groups : B.group list;
  memo : B.bexpr list option array B.VarTbl.t;
  mutable cut : bool;  (* a cycle guard fired below: don't memoize *)
}

let cstate c (loop : Ir.Loops.loop) =
  { c; loop; groups = B.monotonic_groups c.ssa loop;
    memo = B.VarTbl.create 64; cut = false }

let rec bdepth = function
  | B.Bconst _ | B.Blab _ | B.Bvar _ -> 1
  | B.Badd (a, b) | B.Bsub (a, b) -> 1 + max (bdepth a) (bdepth b)
  | B.Bmul (a, _) | B.Bshl (a, _) -> 1 + bdepth a

let cand_cap = 24

let tidy cands =
  let rec dedup acc = function
    | [] -> List.rev acc
    | e :: rest ->
      if List.exists (fun e' -> B.bexpr_equal e e') acc then dedup acc rest
      else dedup (e :: acc) rest
  in
  let kept =
    List.map B.normalize cands |> List.filter (fun e -> bdepth e <= 16)
  in
  let kept = dedup [] kept in
  List.filteri (fun i _ -> i < cand_cap) kept

(* Invariant for our purposes = defined outside the loop *and* being
   the version live at the header's entry, i.e. evaluable in the
   pre-header — the same test {!Ir.Bounds.evaluable} encodes, applied
   independently per variable. *)
let invariant_var st (v : S.var) =
  (match S.def_site st.c.ssa v with
  | Some (S.Dphi (b, _)) | Some (S.Dinstr (b, _)) ->
    not (Ir.Loops.in_loop st.loop b)
  | Some S.Dentry | None -> true)
  && S.var_equal (S.live_in_var st.c.ssa st.loop.Ir.Loops.header v.S.name) v

let alu_word (op : Insn.alu) x y =
  match op with
  | Insn.Add -> Some (Word.add x y)
  | Insn.Sub -> Some (Word.sub x y)
  | Insn.And -> Some (Word.logand x y)
  | Insn.Or -> Some (Word.logor x y)
  | Insn.Xor -> Some (Word.logxor x y)
  | Insn.Andn -> Some (Word.logand x (Word.lognot y))
  | Insn.Orn -> Some (Word.logor x (Word.lognot y))
  | Insn.Xnor -> Some (Word.lognot (Word.logxor x y))
  | Insn.Sll -> Some (Word.sll x y)
  | Insn.Srl -> Some (Word.srl x y)
  | Insn.Sra -> Some (Word.sra x y)
  | Insn.Smul -> Some (Word.mul x y)
  | Insn.Umul -> Some (Word.umul x y)
  | Insn.Sdiv -> if y = 0 then None else Some (Word.sdiv x y)
  | Insn.Udiv -> if y = 0 then None else Some (Word.udiv x y)

let rec var_cands st visiting mode (v : S.var) : B.bexpr list =
  let slot =
    match B.VarTbl.find_opt st.memo v with
    | Some arr -> arr
    | None ->
      let arr = Array.make 4 None in
      B.VarTbl.replace st.memo v arr;
      arr
  in
  match slot.(mode_idx mode) with
  | Some cs -> cs
  | None ->
    if
      List.exists
        (fun (m, v') -> m = mode_idx mode && S.var_equal v v')
        visiting
    then begin
      st.cut <- true;
      []
    end
    else begin
      let visiting = (mode_idx mode, v) :: visiting in
      let saved = st.cut in
      st.cut <- false;
      let base = if invariant_var st v then [ B.Bvar v ] else [] in
      let extra =
        (* an exact candidate is also a bound and the entry value *)
        if mode = Exact then [] else var_cands st visiting Exact v
      in
      let cs = tidy (base @ extra @ derive st visiting mode v) in
      if not st.cut then slot.(mode_idx mode) <- Some cs;
      st.cut <- saved || st.cut;
      cs
    end

and derive st visiting mode v =
  match S.def_site st.c.ssa v with
  | None | Some S.Dentry -> []
  | Some (S.Dphi (b, phi)) -> phi_cands st visiting mode b phi
  | Some (S.Dinstr (_, ins)) -> instr_cands st visiting mode v ins

and phi_cands st visiting mode b (phi : S.phi) =
  let loop = st.loop in
  let header_phi = b = loop.Ir.Loops.header in
  let outside_args =
    List.filter (fun (p, _) -> not (Ir.Loops.in_loop loop p)) phi.S.args
  in
  let mono =
    (* §4.3's monotonic groups: an increasing induction variable is
       bounded below (and first takes the value of) its loop-entry
       version; dually for decreasing. *)
    if not header_phi then []
    else
      List.concat_map
        (fun (g : B.group) ->
          if S.var_equal g.B.phi_var phi.S.dst then
            match (mode, g.B.direction) with
            | Lo, B.Increasing | Hi, B.Decreasing | Entry, _ ->
              var_cands st visiting Exact g.B.init
            | _ -> []
          else [])
        st.groups
  in
  let entry_c =
    if mode = Entry && header_phi then
      match outside_args with
      | [] -> []
      | (_, v0) :: rest ->
        List.filter
          (fun e ->
            List.for_all
              (fun (_, a) ->
                List.exists
                  (fun e' -> B.bexpr_equal e e')
                  (var_cands st visiting Exact a))
              rest)
          (var_cands st visiting Exact v0)
    else []
  in
  let common =
    (* a candidate every incoming argument shares *)
    match phi.S.args with
    | [] -> []
    | (_, a0) :: rest ->
      List.filter
        (fun e ->
          List.for_all
            (fun (_, a) ->
              List.exists
                (fun e' -> B.bexpr_equal e e')
                (var_cands st visiting mode a))
            rest)
        (var_cands st visiting mode a0)
  in
  mono @ entry_c @ common

and instr_cands st visiting mode v ins =
  match ins with
  | S.Def { dst; rhs; _ } when S.var_equal dst v -> (
    match rhs with
    | S.Mov op -> op_cands st visiting mode op
    | S.Bin (op, a, b) -> bin_cands st visiting mode op a b
    | S.Load _ | S.Callret -> [])
  | S.Assert { dst; src; rel; bound; _ } when S.var_equal dst v ->
    let pass = var_cands st visiting mode src in
    let refine =
      let bexact = op_cands st visiting Exact bound in
      let plus k =
        List.map (fun e -> B.normalize (B.Badd (e, B.Bconst k))) bexact
      in
      match (mode, rel) with
      | Hi, T.Rle -> bexact
      | Hi, T.Rlt -> plus (-1)
      | Lo, T.Rge -> bexact
      | Lo, T.Rgt -> plus 1
      | _, T.Req -> bexact
      | _, _ -> []
    in
    pass @ refine
  | _ -> []

and op_cands st visiting mode (op : S.operand) =
  match op with
  | S.Oimm k -> [ B.Bconst (Word.norm k) ]
  | S.Olab (l, o) -> [ B.Blab (l, o) ]
  | S.Ovar v -> var_cands st visiting mode v

and bin_cands st visiting mode op a b =
  let cross f xs ys =
    List.concat_map (fun x -> List.map (fun y -> f x y) ys) xs
  in
  let cands m o = op_cands st visiting m o in
  let consts o =
    List.filter_map
      (fun e -> match B.normalize e with B.Bconst c -> Some c | _ -> None)
      (cands Exact o)
  in
  let both_const () =
    cross (fun x y -> alu_word op x y) (consts a) (consts b)
    |> List.filter_map (fun r -> Option.map (fun c -> B.Bconst c) r)
  in
  match op with
  | Insn.Add -> cross (fun x y -> B.Badd (x, y)) (cands mode a) (cands mode b)
  | Insn.Sub ->
    let ma, mb =
      match mode with
      | Exact -> (Exact, Exact)
      | Entry -> (Entry, Entry)
      | Lo -> (Lo, Hi)
      | Hi -> (Hi, Lo)
    in
    cross (fun x y -> B.Bsub (x, y)) (cands ma a) (cands mb b)
  | Insn.Smul | Insn.Umul ->
    (* only constant scaling is linear; sign flips the bound sense *)
    let scale co other =
      let src =
        match mode with
        | Exact -> Exact
        | Entry -> Entry
        | Lo -> if co >= 0 then Lo else Hi
        | Hi -> if co >= 0 then Hi else Lo
      in
      List.map (fun e -> B.Bmul (e, co)) (cands src other)
    in
    both_const ()
    @ List.concat_map (fun c -> scale c a) (consts b)
    @ List.concat_map (fun c -> scale c b) (consts a)
  | Insn.Sll ->
    let shifts = List.filter (fun c -> c >= 0 && c <= 30) (consts b) in
    both_const ()
    @ List.concat_map
        (fun c -> List.map (fun e -> B.Bshl (e, c)) (cands mode a))
        shifts
  | Insn.And -> (
    (* masking with a non-negative constant pins the result to [0, c] *)
    match mode with
    | Lo ->
      both_const ()
      @ (if List.exists (fun c -> c >= 0) (consts b) then [ B.Bconst 0 ] else [])
    | Hi ->
      both_const ()
      @ List.filter_map
          (fun c -> if c >= 0 then Some (B.Bconst c) else None)
          (consts b)
    | Exact | Entry -> both_const ())
  | _ -> both_const ()

(* --- decision procedures ------------------------------------------------ *)

(* Two linear combinations differ by a constant iff their difference
   normalizes to one — the workhorse comparison of every proof. *)
let const_diff a b =
  match B.normalize (B.Bsub (a, b)) with B.Bconst d -> Some d | _ -> None

(* Grounding fallback: chase invariant definition chains down to
   literal constants, for addresses built by materializing immediates. *)
let rec ground_var st depth (v : S.var) : int option =
  if depth <= 0 then None
  else
    match S.def_site st.c.ssa v with
    | Some (S.Dinstr (_, S.Def { dst; rhs; _ })) when S.var_equal dst v -> (
      match rhs with
      | S.Mov op -> ground_op st depth op
      | S.Bin (op, a, b) -> (
        match (ground_op st (depth - 1) a, ground_op st (depth - 1) b) with
        | Some x, Some y -> alu_word op x y
        | _ -> None)
      | S.Load _ | S.Callret -> None)
    | Some (S.Dinstr (_, S.Assert { dst; src; _ })) when S.var_equal dst v ->
      ground_var st (depth - 1) src
    | _ -> None

and ground_op st depth = function
  | S.Oimm k -> Some (Word.norm k)
  | S.Olab _ -> None
  | S.Ovar v -> ground_var st (depth - 1) v

let rec ground_expr st depth (e : B.bexpr) : int option =
  let two f x y =
    match (ground_expr st depth x, ground_expr st depth y) with
    | Some a, Some b -> Some (f a b)
    | _ -> None
  in
  match e with
  | B.Bconst c -> Some (Word.norm c)
  | B.Blab _ -> None
  | B.Bvar v -> ground_var st depth v
  | B.Badd (x, y) -> two Word.add x y
  | B.Bsub (x, y) -> two Word.sub x y
  | B.Bmul (x, c) -> Option.map (fun a -> Word.mul a c) (ground_expr st depth x)
  | B.Bshl (x, c) -> Option.map (fun a -> Word.sll a c) (ground_expr st depth x)

(* [geq a b]: [Some true] when a >= b provably, [Some false] when a < b
   provably, [None] otherwise. *)
let geq st a b =
  match const_diff a b with
  | Some d -> Some (d >= 0)
  | None -> (
    match (ground_expr st 16 a, ground_expr st 16 b) with
    | Some x, Some y -> Some (x >= y)
    | _ -> None)

let find_store st origin =
  List.find_map
    (fun b ->
      List.find_map
        (fun ins ->
          match ins with
          | S.Store { base; off; width; origin = o; _ } when o = origin ->
            Some (b, base, off, width)
          | _ -> None)
        (S.block st.c.ssa b).S.body)
    st.loop.Ir.Loops.body

let addr_cands st mode base off =
  List.concat_map
    (fun x ->
      List.map (fun y -> B.Badd (x, y)) (op_cands st [] mode off))
    (op_cands st [] mode base)
  |> tidy

let ground_addr st base off =
  match (ground_op st 16 base, ground_op st 16 off) with
  | Some x, Some y -> Some (Word.add x y)
  | _ -> None

(* --- per-check obligations (§4.3) -------------------------------------- *)

let check_origin = function
  | L.Inv { origin; _ } | L.Rng { origin; _ } -> origin

let verify_check st (p : L.loop_plan) (chk : L.check) : obligation =
  let detail = Fmt.str "%a" L.pp_check chk in
  let origin = check_origin chk in
  let verdict =
    match find_store st origin with
    | None ->
      Refuted
        (Printf.sprintf "no store at origin %d inside loop %d" origin
           p.L.loop_id)
    | Some (_, base, off, w) -> (
      match chk with
      | L.Inv { expr; width; _ } ->
        if w <> width then Refuted "check width differs from the store's width"
        else if not (List.for_all (invariant_var st) (B.bexpr_vars expr)) then
          Refuted "check expression is not evaluable at the pre-header"
        else begin
          let exact = addr_cands st Exact base off in
          if List.exists (fun a -> const_diff a expr = Some 0) exact then
            Proved
          else
            match
              List.find_map
                (fun a ->
                  match const_diff a expr with
                  | Some d when d <> 0 -> Some d
                  | _ -> None)
                exact
            with
            | Some d ->
              Refuted
                (Printf.sprintf
                   "store address differs from the checked expression by %d" d)
            | None -> (
              match (ground_addr st base off, ground_expr st 16 expr) with
              | Some x, Some y when x = y -> Proved
              | Some x, Some y ->
                Refuted
                  (Printf.sprintf "store address %d but the check covers %d" x y)
              | _ -> Unknown "could not derive the store address symbolically")
        end
      | L.Rng { lo; hi; width; _ } ->
        if w <> width then Refuted "check width differs from the store's width"
        else if
          not
            (List.for_all (invariant_var st)
               (B.bexpr_vars lo @ B.bexpr_vars hi))
        then Refuted "range bounds are not evaluable at the pre-header"
        else begin
          let empty =
            match const_diff hi lo with
            | Some d -> d < 0
            | None -> (
              match (ground_expr st 16 hi, ground_expr st 16 lo) with
              | Some h, Some l -> h < l
              | _ -> false)
          in
          if empty then
            Refuted "claimed range is empty (hi < lo): overflow or bound swap"
          else begin
            let lo_c = addr_cands st Lo base off in
            let hi_c = addr_cands st Hi base off in
            let ent_c = addr_cands st Entry base off in
            let lo_ok = List.exists (fun c -> geq st c lo = Some true) lo_c in
            let hi_ok = List.exists (fun c -> geq st hi c = Some true) hi_c in
            (* first-iteration refutation: the entry address is attained,
               so it must already lie inside the claimed range *)
            if List.exists (fun e -> geq st e lo = Some false) ent_c then
              Refuted
                "first-iteration store address falls below the claimed lower \
                 bound"
            else if List.exists (fun e -> geq st hi e = Some false) ent_c then
              Refuted
                "first-iteration store address exceeds the claimed upper bound"
            else if lo_ok && hi_ok then Proved
            else if (not lo_ok) && not hi_ok then
              Unknown "could not bound the store address on either side"
            else if not lo_ok then
              Unknown "could not prove the claimed lower bound covers the sweep"
            else
              Unknown "could not prove the claimed upper bound covers the sweep"
          end
        end)
  in
  mk ~origin ~loop:p.L.loop_id
    (match chk with L.Inv _ -> "inv" | L.Rng _ -> "rng")
    detail verdict

(* --- whole-plan obligations --------------------------------------------- *)

(* Re-derivation of Loopopt's entry condition: pre-header code inserted
   before the header label runs exactly on entry only when every
   outside predecessor falls through into the header. *)
let fallthrough_entry (cfg : Ir.Cfg.t) (loop : Ir.Loops.loop) =
  let header = Ir.Cfg.block cfg loop.header in
  header.Ir.Cfg.labels <> []
  && List.for_all
       (fun p ->
         p = loop.header - 1
         &&
         match List.rev (Ir.Cfg.block cfg p).Ir.Cfg.body with
         | (T.Jump _ | T.Ret _) :: _ -> false
         | T.Branch { target; _ } :: _ ->
           not (List.mem target header.Ir.Cfg.labels)
         | _ -> true)
       loop.outside_preds

let loop_for_plan (c : ctx) (p : L.loop_plan) : (Ir.Loops.loop, string) result
    =
  match List.assoc_opt p.L.header_item c.fi.L.items with
  | None ->
    Error
      (Printf.sprintf "plan header item %d lies outside the function slice"
         p.L.header_item)
  | Some (Asm.Label l) -> (
    match Hashtbl.find_opt c.cfg.Ir.Cfg.by_label l with
    | None -> Error (Printf.sprintf "label %s is not in the CFG" l)
    | Some b -> (
      let covers (lp : Ir.Loops.loop) o =
        List.exists
          (fun blk ->
            List.exists
              (fun ins ->
                match ins with
                | S.Store { origin; _ } -> origin = o
                | _ -> false)
              (S.block c.ssa blk).S.body)
          lp.body
      in
      match
        List.filter (fun (lp : Ir.Loops.loop) -> lp.header = b) c.loops
      with
      | [] ->
        Error
          (Printf.sprintf "item %d (label %s) is not a loop header"
             p.L.header_item l)
      | [ lp ] -> Ok lp
      | lps -> (
        match
          List.find_opt
            (fun lp -> List.for_all (covers lp) p.L.eliminated)
            lps
        with
        | Some lp -> Ok lp
        | None -> Error "no loop at this header contains every covered store")))
  | Some _ ->
    Error (Printf.sprintf "plan header item %d is not a label" p.L.header_item)

(* The guarded loop-entry trap the MRS arms at runtime must sit
   immediately before the header label so back edges skip it. *)
let has_entry_trap text_arr label loop_id =
  let n = Array.length text_arr in
  let rec find i =
    if i >= n then None
    else
      match text_arr.(i) with
      | Asm.Label l when l = label -> Some i
      | _ -> find (i + 1)
  in
  match find 0 with
  | None -> Error "header label is missing from the emitted program"
  | Some li ->
    let benign = function
      | Asm.Insn
          (Insn.Alu _ | Insn.Sethi _ | Insn.Branch _ | Insn.Trap _ | Insn.Nop)
        ->
        true
      | Asm.Label _ | Asm.Comment _ -> true
      | _ -> false
    in
    let start =
      let rec back i k =
        if i < 0 || k = 0 || not (benign text_arr.(i)) then i + 1
        else back (i - 1) (k - 1)
      in
      back (li - 1) 64
    in
    let rec seek i =
      if i >= li - 1 then false
      else
        match (text_arr.(i), text_arr.(i + 1)) with
        | ( Asm.Insn
              (Insn.Alu
                 { op = Insn.Or; cc = false; rs1; op2 = Insn.Imm k; rd }),
            Asm.Insn (Insn.Trap { number }) )
          when Reg.equal rs1 Reg.g0
               && Reg.equal rd (Reg.g 5)
               && k = loop_id
               && number = Dbp.Traps.loop_entry ->
          true
        | _ -> seek (i + 1)
    in
    if seek start then Ok ()
    else Error "no loop-entry trap sequence precedes the header label"

let verify_preheader text_arr (c : ctx) (lp : Ir.Loops.loop)
    (p : L.loop_plan) =
  let verdict =
    if not (fallthrough_entry c.cfg lp) then
      Refuted "a loop entry does not fall through the pre-header insertion point"
    else
      match (Ir.Cfg.block c.cfg lp.header).Ir.Cfg.labels with
      | [] -> Refuted "loop header has no label"
      | header_label :: _ -> (
        match has_entry_trap text_arr header_label p.L.loop_id with
        | Ok () -> Proved
        | Error m -> Refuted m)
  in
  mk ~loop:p.L.loop_id "preheader"
    (Printf.sprintf "%s: guarded entry trap %d before header item %d"
       p.L.fname p.L.loop_id p.L.header_item)
    verdict

let verify_plan_coverage (inst : I.t) (p : L.loop_plan) =
  let chk_origins =
    List.sort_uniq compare (List.map check_origin p.L.checks)
  in
  let elim = List.sort_uniq compare p.L.eliminated in
  let verdict =
    if chk_origins <> elim then
      Refuted
        (Printf.sprintf
           "pre-header checks cover origins [%s] but the plan eliminates [%s]"
           (String.concat ", " (List.map string_of_int chk_origins))
           (String.concat ", " (List.map string_of_int elim)))
    else
      match
        List.find_opt
          (fun o ->
            not
              (List.exists
                 (fun (s : I.site) ->
                   s.I.origin = o && s.I.status = I.Loop_eliminated p.L.loop_id)
                 inst.I.sites))
          elim
      with
      | Some o ->
        Refuted
          (Printf.sprintf
             "origin %d is in the plan but its site is not marked \
              loop-eliminated by loop %d"
             o p.L.loop_id)
      | None -> Proved
  in
  mk ~loop:p.L.loop_id "coverage"
    (Printf.sprintf "%d eliminated site(s), %d pre-header check(s)"
       (List.length p.L.eliminated)
       (List.length p.L.checks))
    verdict

let verify_dominance st (p : L.loop_plan) =
  let bad =
    List.filter_map
      (fun o ->
        match find_store st o with
        | None ->
          Some (Printf.sprintf "origin %d: store not found in the loop body" o)
        | Some (b, _, _, _) ->
          if Ir.Dominance.dominates st.c.dom st.loop.Ir.Loops.header b then
            None
          else
            Some
              (Printf.sprintf "origin %d: block %d is not dominated by header %d"
                 o b st.loop.Ir.Loops.header))
      p.L.eliminated
  in
  mk ~loop:p.L.loop_id "dominance"
    (Printf.sprintf "header %d covers %d store(s)" st.loop.Ir.Loops.header
       (List.length p.L.eliminated))
    (match bad with [] -> Proved | m :: _ -> Refuted m)

let pseudo_resolvable symtab q =
  match String.index_opt q '.' with
  | Some i when i > 0 ->
    let fname = String.sub q 0 i in
    let name = String.sub q (i + 1) (String.length q - i - 1) in
    Symtab.lookup symtab ~func:fname name <> None
  | _ -> Symtab.lookup symtab q <> None

let verify_alias (inst : I.t) (c : ctx) (lp : Ir.Loops.loop)
    (p : L.loop_plan) =
  let used =
    List.sort_uniq compare
      (List.concat_map
         (function
           | L.Inv { expr; _ } -> L.pseudos_of_bexpr expr
           | L.Rng { lo; hi; _ } ->
             L.pseudos_of_bexpr lo @ L.pseudos_of_bexpr hi)
         p.L.checks)
  in
  let missing =
    List.filter (fun q -> not (List.mem q p.L.alias_pseudos)) used
  in
  let unresolved =
    List.filter
      (fun q -> not (pseudo_resolvable inst.I.symtab q))
      p.L.alias_pseudos
  in
  let contains_ret =
    List.exists
      (fun b ->
        List.exists
          (function T.Ret _ -> true | _ -> false)
          (Ir.Cfg.block c.cfg b).Ir.Cfg.body)
      lp.body
  in
  let verdict =
    if missing <> [] then
      Refuted
        ("pre-header checks read pseudo home(s) not listed as alias \
          obligations: "
        ^ String.concat ", " missing)
    else if unresolved <> [] then
      Refuted
        ("alias pseudo(s) have no symbol-table home: "
        ^ String.concat ", " unresolved)
    else if contains_ret <> p.L.contains_ret then
      Refuted "plan misrecords whether the loop contains a return"
    else if
      inst.I.options.I.check_aliases && contains_ret
      && p.L.alias_pseudos <> []
    then
      Refuted
        "alias-checked run kept a loop whose exits cannot be tracked (return \
         inside the loop)"
    else Proved
  in
  mk ~loop:p.L.loop_id "alias"
    (Printf.sprintf "alias pseudos: [%s]"
       (String.concat ", " p.L.alias_pseudos))
    verdict

(* --- §4.2 re-matching (sym obligations) --------------------------------- *)

(* Independent mirror of the published matching rules, run over the raw
   re-lifted TAC: a matched home must be a one-word scalar/pointer that
   is provably unaliasable — a local whose address is never taken or a
   global whose address never escapes. *)

let escaped_globals_raw (fns : T.instr list list) : SS.t =
  let escaped = ref SS.empty in
  let escape l = escaped := SS.add l !escaped in
  let scan instrs =
    let holds : (Reg.t, string) Hashtbl.t = Hashtbl.create 8 in
    let label_of = function
      | T.Name (T.Machine r) -> Hashtbl.find_opt holds r
      | T.Name (T.Pseudo _) | T.Imm _ -> None
      | T.Lab (l, _) -> Some l
    in
    let escape_op op = Option.iter escape (label_of op) in
    List.iter
      (fun ins ->
        match ins with
        | T.Label _ | T.Branch _ | T.Jump _ | T.Ret _ -> Hashtbl.reset holds
        | T.Call _ ->
          List.iter
            (fun k ->
              match Hashtbl.find_opt holds (Reg.o k) with
              | Some l -> escape l
              | None -> ())
            [ 0; 1; 2; 3; 4; 5 ];
          Hashtbl.reset holds
        | T.Effect _ ->
          (match Hashtbl.find_opt holds (Reg.o 0) with
          | Some l -> escape l
          | None -> ());
          Hashtbl.reset holds
        | T.Assert { dst = T.Machine r; _ } -> Hashtbl.remove holds r
        | T.Assert _ -> ()
        | T.Store { off; src; _ } ->
          escape_op src;
          escape_op off;
          List.iter (fun k -> Hashtbl.remove holds (Reg.o k)) [ 3; 4; 5 ]
        | T.Def { dst; rhs; _ } -> (
          (match dst with
          | T.Machine r -> Hashtbl.remove holds r
          | T.Pseudo _ -> ());
          match (rhs, dst) with
          | T.Mov (T.Lab (l, _)), T.Machine r -> Hashtbl.replace holds r l
          | T.Mov (T.Name (T.Machine s)), T.Machine r -> (
            match Hashtbl.find_opt holds s with
            | Some l -> Hashtbl.replace holds r l
            | None -> ())
          | T.Mov _, _ -> ()
          | T.Bin (Insn.Add, a, T.Imm _), T.Machine r -> (
            match label_of a with
            | Some l -> Hashtbl.replace holds r l
            | None -> ())
          | T.Bin (_, a, b), _ ->
            escape_op a;
            escape_op b
          | T.Load { off; _ }, _ ->
            escape_op off;
            List.iter (fun k -> Hashtbl.remove holds (Reg.o k)) [ 3; 4; 5 ]
          | T.Callret, _ -> ()))
      instrs
  in
  List.iter scan fns;
  !escaped

let addr_taken_raw instrs =
  List.filter_map
    (function
      | T.Def
          { rhs = T.Bin (Insn.Add, T.Name (T.Machine r), T.Imm c); _ }
        when Reg.equal r Reg.fp ->
        Some c
      | _ -> None)
    instrs

type home = Hlocal of int | Hglobal of string * int | Hnone

(* Walk the raw TAC with the same register-holds discipline the §4.2
   matcher used, classifying the address of the store at [origin]. *)
let store_home (instrs : T.instr list) origin : (home * Insn.width) option =
  let holds : (Reg.t, string * int) Hashtbl.t = Hashtbl.create 8 in
  let result = ref None in
  List.iter
    (fun ins ->
      (match ins with
      | T.Store { base; off; width; origin = o; _ }
        when o = origin && !result = None ->
        let h =
          match (base, off) with
          | T.Name (T.Machine r), T.Imm c when Reg.equal r Reg.fp -> Hlocal c
          | T.Name (T.Machine r), T.Imm c -> (
            match Hashtbl.find_opt holds r with
            | Some (l, b) -> Hglobal (l, b + c)
            | None -> Hnone)
          | T.Lab (l, b), T.Imm c -> Hglobal (l, b + c)
          | _ -> Hnone
        in
        result := Some (h, width)
      | _ -> ());
      match ins with
      | T.Label _ | T.Branch _ | T.Jump _ | T.Ret _ | T.Call _ | T.Effect _ ->
        Hashtbl.reset holds
      | T.Def { dst; rhs; _ } -> (
        (match dst with
        | T.Machine r -> Hashtbl.remove holds r
        | T.Pseudo _ -> ());
        match (rhs, dst) with
        | T.Mov (T.Lab (l, o)), T.Machine r -> Hashtbl.replace holds r (l, o)
        | T.Mov (T.Name (T.Machine s)), T.Machine r -> (
          match Hashtbl.find_opt holds s with
          | Some lo -> Hashtbl.replace holds r lo
          | None -> ())
        | _ -> ())
      | _ -> ())
    instrs;
  !result

let scalar_or_pointer (e : Symtab.entry) =
  match e.Symtab.ctype with
  | Symtab.Scalar | Symtab.Pointer -> true
  | Symtab.Array _ | Symtab.Struct _ -> false

let verify_sym_site symtab ~fname ~addr_taken ~escaped ~premonitored ~raw
    (s : I.site) claimed : obligation =
  let local_verdict off (e : Symtab.entry) =
    let covers o =
      match e.Symtab.location with
      | Symtab.Fp_offset base -> o >= base && o < base + Symtab.size_bytes e
      | Symtab.Absolute _ | Symtab.Data_label _ -> false
    in
    if e.Symtab.size_words <> 1 then
      Refuted
        (Printf.sprintf "symbol %s is %d words; only one-word homes match"
           e.Symtab.name e.Symtab.size_words)
    else if not (scalar_or_pointer e) then
      Refuted
        (Printf.sprintf "symbol %s is not a scalar or pointer" e.Symtab.name)
    else if
      not (match e.Symtab.location with Symtab.Fp_offset b -> b = off | _ -> false)
    then
      Refuted
        (Printf.sprintf "store targets the interior of %s, not its base"
           e.Symtab.name)
    else if List.exists covers addr_taken then
      Refuted
        (Printf.sprintf "the address of %s is taken; its home is aliasable"
           e.Symtab.name)
    else
      let derived = fname ^ "." ^ e.Symtab.name in
      if derived <> claimed then
        Refuted
          (Printf.sprintf "address re-matches %s but the plan claims %s"
             derived claimed)
      else Proved
  in
  let global_verdict l off =
    match Symtab.lookup symtab l with
    | None -> Refuted (Printf.sprintf "no global symbol-table entry for %s" l)
    | Some e ->
      if e.Symtab.func <> None then
        Refuted (Printf.sprintf "%s resolves to a local, not a global" l)
      else if off <> 0 then
        Refuted
          (Printf.sprintf "store targets %s%+d, not the variable's base" l off)
      else if e.Symtab.size_words <> 1 then
        Refuted
          (Printf.sprintf "global %s is %d words; only one-word homes match" l
             e.Symtab.size_words)
      else if not (scalar_or_pointer e) then
        Refuted (Printf.sprintf "global %s is not a scalar or pointer" l)
      else if SS.mem l escaped then
        Refuted
          (Printf.sprintf "the address of %s escapes; its home is aliasable" l)
      else if l <> claimed then
        Refuted
          (Printf.sprintf "address re-matches %s but the plan claims %s" l
             claimed)
      else Proved
  in
  let verdict =
    match store_home raw s.I.origin with
    | None ->
      Refuted
        (Printf.sprintf "no store at origin %d in the raw slice of %s"
           s.I.origin fname)
    | Some (_, w) when w <> Insn.Word ->
      Refuted "matched store is not word-width"
    | Some (Hnone, _) ->
      Refuted "store address does not re-match an unaliasable symbol-table home"
    | Some (Hlocal off, _) -> (
      let covers (e : Symtab.entry) o =
        match e.Symtab.location with
        | Symtab.Fp_offset base -> o >= base && o < base + Symtab.size_bytes e
        | Symtab.Absolute _ | Symtab.Data_label _ -> false
      in
      match
        List.find_opt
          (fun (e : Symtab.entry) -> e.Symtab.func = Some fname && covers e off)
          (Symtab.entries symtab)
      with
      | None ->
        Refuted
          (Printf.sprintf "no symbol of %s covers frame offset %d" fname off)
      | Some e -> local_verdict off e)
    | Some (Hglobal (l, off), _) -> global_verdict l off
  in
  let verdict =
    match verdict with
    | Proved when not premonitored ->
      Refuted
        (Printf.sprintf
           "origin %d is missing from the PreMonitor patch list of %s"
           s.I.origin claimed)
    | v -> v
  in
  mk ~origin:s.I.origin ~pseudo:claimed "sym"
    (Printf.sprintf "slot %d in %s" s.I.slot fname)
    verdict

(* --- whole-program structural obligations ------------------------------- *)

let verify_global_coverage (inst : I.t) =
  let bad =
    List.filter_map
      (fun (s : I.site) ->
        match s.I.status with
        | I.Loop_eliminated id ->
          if
            List.exists
              (fun (p : L.loop_plan) ->
                p.L.loop_id = id && List.mem s.I.origin p.L.eliminated)
              inst.I.loop_plans
          then None
          else
            Some
              (Printf.sprintf
                 "site at origin %d claims loop %d, but no plan of that loop \
                  covers it"
                 s.I.origin id)
        | I.Checked | I.Sym_eliminated _ -> None)
      inst.I.sites
  in
  let n_elim =
    List.length
      (List.filter
         (fun (s : I.site) ->
           match s.I.status with I.Loop_eliminated _ -> true | _ -> false)
         inst.I.sites)
  in
  mk "coverage"
    (Printf.sprintf "%d loop-eliminated site(s) across %d plan(s)" n_elim
       (List.length inst.I.loop_plans))
    (match bad with [] -> Proved | m :: _ -> Refuted m)

let verify_premonitor (inst : I.t) =
  let from_sites =
    List.filter_map
      (fun (s : I.site) ->
        match s.I.status with
        | I.Sym_eliminated p -> Some (p, s.I.origin)
        | _ -> None)
      inst.I.sites
    |> List.sort_uniq compare
  in
  let from_table =
    List.concat_map
      (fun (p, os) -> List.map (fun o -> (p, o)) os)
      inst.I.sites_by_pseudo
    |> List.sort_uniq compare
  in
  let missing =
    List.filter (fun pr -> not (List.mem pr from_table)) from_sites
  in
  let extra =
    List.filter (fun pr -> not (List.mem pr from_sites)) from_table
  in
  let verdict =
    match (missing, extra) with
    | (p, o) :: _, _ ->
      Refuted
        (Printf.sprintf
           "matched site at origin %d (pseudo %s) is missing from the \
            PreMonitor patch list"
           o p)
    | [], (p, o) :: _ ->
      Refuted
        (Printf.sprintf
           "PreMonitor patch list names origin %d (pseudo %s) that is not a \
            matched site"
           o p)
    | [], [] -> Proved
  in
  mk "premonitor"
    (Printf.sprintf "%d matched site(s), %d patch-list entr(ies)"
       (List.length from_sites) (List.length from_table))
    verdict

(* Every eliminated site needs a Kessler patch stub the MRS can swing
   into place: its label, a faithful copy of the original store, and a
   branch back to just after the site. *)
let verify_patches text_arr (inst : I.t) =
  let label_index : (string, int) Hashtbl.t = Hashtbl.create 256 in
  Array.iteri
    (fun i item ->
      match item with
      | Asm.Label l ->
        if not (Hashtbl.mem label_index l) then Hashtbl.add label_index l i
      | _ -> ())
    text_arr;
  let n = Array.length text_arr in
  let check_site (s : I.site) =
    let pl = I.patch_label s.I.origin in
    let bl = I.back_label s.I.origin in
    match s.I.status with
    | I.Checked ->
      if Hashtbl.mem label_index pl || Hashtbl.mem label_index bl then
        Some
          (Printf.sprintf "checked site at origin %d has a patch stub"
             s.I.origin)
      else None
    | I.Sym_eliminated _ | I.Loop_eliminated _ -> (
      if not (Hashtbl.mem label_index bl) then
        Some
          (Printf.sprintf "eliminated site at origin %d has no return label"
             s.I.origin)
      else
        match Hashtbl.find_opt label_index pl with
        | None ->
          Some
            (Printf.sprintf "eliminated site at origin %d has no patch stub"
               s.I.origin)
        | Some pi -> (
          let first_insn =
            let rec go i =
              if i >= n then None
              else
                match text_arr.(i) with
                | Asm.Insn ins -> Some ins
                | Asm.Label _ | Asm.Comment _ -> go (i + 1)
                | Asm.Set_label _ -> None
            in
            go (pi + 1)
          in
          match first_insn with
          | Some ins when Insn.equal ins s.I.insn -> (
            let rec find_back i k =
              if i >= n || k = 0 then false
              else
                match text_arr.(i) with
                | Asm.Insn (Insn.Branch { cond = Cond.A; target = Insn.Sym l })
                  when l = bl ->
                  true
                | Asm.Label l when String.length l > 11
                                   && String.sub l 0 12 = "__dbp_patch_" ->
                  false
                | _ -> find_back (i + 1) (k - 1)
            in
            if find_back (pi + 1) 256 then None
            else
              Some
                (Printf.sprintf
                   "patch stub at origin %d never branches back to the site"
                   s.I.origin))
          | _ ->
            Some
              (Printf.sprintf
                 "patch stub at origin %d does not start with the original \
                  store"
                 s.I.origin)))
  in
  let bad = List.filter_map check_site inst.I.sites in
  let n_stubs =
    List.length
      (List.filter
         (fun (s : I.site) -> s.I.status <> I.Checked)
         inst.I.sites)
  in
  mk "patch"
    (Printf.sprintf "%d patch stub(s) audited" n_stubs)
    (match bad with [] -> Proved | m :: _ -> Refuted m)

(* §4.2 frame integrity: no instruction other than save/restore may
   define %fp, and indirect jumps are returns only. *)
let verify_fpdef text_arr =
  let bad = ref None in
  let count = ref 0 in
  Array.iter
    (fun item ->
      match item with
      | Asm.Insn ins ->
        if List.exists (Reg.equal Reg.fp) (Insn.defs ins) then begin
          incr count;
          match ins with
          | Insn.Save _ | Insn.Restore _ -> ()
          | _ ->
            if !bad = None then
              bad := Some "an instruction outside save/restore defines %fp"
        end
      | _ -> ())
    text_arr;
  mk "fpdef"
    (Printf.sprintf "%d %%fp definition(s), all window operations" !count)
    (match !bad with None -> Proved | Some m -> Refuted m)

let verify_indirect text_arr =
  let bad = ref None in
  let count = ref 0 in
  Array.iter
    (fun item ->
      match item with
      | Asm.Insn (Insn.Jmpl { rs1; _ }) ->
        incr count;
        if not (Reg.equal rs1 Reg.i7 || Reg.equal rs1 Reg.o7) then
          if !bad = None then
            bad :=
              Some
                (Printf.sprintf
                   "indirect jump through %s is not a return"
                   (Reg.to_string rs1))
      | _ -> ())
    text_arr;
  mk "indirect"
    (Printf.sprintf "%d indirect jump(s), returns only" !count)
    (match !bad with None -> Proved | Some m -> Refuted m)

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* Every save/restore inside instrumented code must be bracketed by
   the frame-integrity calls (§4.2); the scan tracks label scope so
   the monitor library's and patch stubs' own code is exempt. *)
let verify_frame text_arr (inst : I.t) =
  if not inst.I.control_checks then
    mk "frame" "control checks disabled; vacuously discharged" Proved
  else begin
    let fnames = List.map (fun (fi : L.fn_input) -> fi.L.fname) inst.I.fn_inputs in
    let n = Array.length text_arr in
    let in_scope = ref false in
    let bad = ref None in
    let saves = ref 0 in
    Array.iteri
      (fun idx item ->
        match item with
        | Asm.Label l ->
          if String.length l > 0 && l.[0] = '.' then ()
          else if
            starts_with "__dbp_site_" l
            || starts_with "__dbp_back_" l
            || starts_with "__dbp_rsite_" l
          then ()
          else if starts_with "__dbp_" l then in_scope := false
          else in_scope := List.mem l fnames
        | Asm.Insn (Insn.Save _) when !in_scope ->
          incr saves;
          let ok =
            idx + 2 < n
            &&
            match (text_arr.(idx + 1), text_arr.(idx + 2)) with
            | ( Asm.Insn (Insn.Call { target = Insn.Sym "__dbp_frame_enter" }),
                Asm.Insn Insn.Nop ) ->
              true
            | _ -> false
          in
          if (not ok) && !bad = None then
            bad :=
              Some
                (Printf.sprintf "save at item %d lacks the frame-entry call" idx)
        | Asm.Insn (Insn.Restore _) when !in_scope ->
          incr saves;
          let ok =
            idx >= 2
            &&
            match (text_arr.(idx - 2), text_arr.(idx - 1)) with
            | ( Asm.Insn (Insn.Call { target = Insn.Sym "__dbp_frame_exit" }),
                Asm.Insn Insn.Nop ) ->
              true
            | _ -> false
          in
          if (not ok) && !bad = None then
            bad :=
              Some
                (Printf.sprintf "restore at item %d lacks the frame-exit call"
                   idx)
        | _ -> ())
      text_arr;
    mk "frame"
      (Printf.sprintf "%d window operation(s) bracketed" !saves)
      (match !bad with None -> Proved | Some m -> Refuted m)
  end

(* --- audit-journal consistency ------------------------------------------ *)

let verify_audit (inst : I.t) (r : Audit.report) =
  let sites = inst.I.sites in
  let plan_check id origin =
    List.find_map
      (fun (p : L.loop_plan) ->
        if p.L.loop_id <> id then None
        else
          List.find_opt (fun chk -> check_origin chk = origin) p.L.checks)
      inst.I.loop_plans
  in
  let mismatch (s : I.site) (a : Audit.site) =
    if a.Audit.a_slot <> s.I.slot || a.Audit.a_origin <> s.I.origin then
      Some
        (Printf.sprintf "journal slot %d/origin %d vs plan slot %d/origin %d"
           a.Audit.a_slot a.Audit.a_origin s.I.slot s.I.origin)
    else
      match (s.I.status, a.Audit.a_verdict) with
      | I.Checked, Audit.Kept -> None
      | I.Sym_eliminated p, Audit.Sym_matched { pseudo; _ } ->
        if p = pseudo then None
        else
          Some
            (Printf.sprintf "origin %d: journal pseudo %s vs plan pseudo %s"
               s.I.origin pseudo p)
      | I.Loop_eliminated id, Audit.Loop_invariant { loop_id; bexpr; level }
        -> (
        if id <> loop_id then
          Some
            (Printf.sprintf "origin %d: journal loop %d vs plan loop %d"
               s.I.origin loop_id id)
        else
          match plan_check id s.I.origin with
          | Some (L.Inv { expr; level = lv; _ }) ->
            if
              bexpr = Fmt.str "%a" B.pp_bexpr expr
              && level = B.level_name lv
            then None
            else
              Some
                (Printf.sprintf
                   "origin %d: journal records inv %s@%s but the plan checks \
                    %s@%s"
                   s.I.origin bexpr level
                   (Fmt.str "%a" B.pp_bexpr expr)
                   (B.level_name lv))
          | _ ->
            Some
              (Printf.sprintf
                 "origin %d: journal says loop-invariant but the plan has no \
                  matching check"
                 s.I.origin))
      | I.Loop_eliminated id, Audit.Loop_range { loop_id; lo; hi; levels } -> (
        if id <> loop_id then
          Some
            (Printf.sprintf "origin %d: journal loop %d vs plan loop %d"
               s.I.origin loop_id id)
        else
          match plan_check id s.I.origin with
          | Some (L.Rng { lo = plo; hi = phi; lo_level; hi_level; _ }) ->
            if
              lo = Fmt.str "%a" B.pp_bexpr plo
              && hi = Fmt.str "%a" B.pp_bexpr phi
              && levels
                 = B.level_name lo_level ^ "/" ^ B.level_name hi_level
            then None
            else
              Some
                (Printf.sprintf
                   "origin %d: journal records range [%s, %s]@%s but the plan \
                    checks [%s, %s]@%s/%s"
                   s.I.origin lo hi levels
                   (Fmt.str "%a" B.pp_bexpr plo)
                   (Fmt.str "%a" B.pp_bexpr phi)
                   (B.level_name lo_level) (B.level_name hi_level))
          | _ ->
            Some
              (Printf.sprintf
                 "origin %d: journal says loop-range but the plan has no \
                  matching check"
                 s.I.origin))
      | _, v ->
        Some
          (Printf.sprintf "origin %d: journal verdict %s contradicts the plan"
             s.I.origin (Audit.verdict_name v))
  in
  let verdict =
    if List.length r.Audit.a_sites <> List.length sites then
      Refuted
        (Printf.sprintf "journal records %d site(s) but the plan has %d"
           (List.length r.Audit.a_sites)
           (List.length sites))
    else
      match
        List.find_map
          (fun (s, a) -> mismatch s a)
          (List.combine sites r.Audit.a_sites)
      with
      | Some m -> Refuted m
      | None -> Proved
  in
  mk "audit"
    (Printf.sprintf "%d journal site(s) joined against the plan"
       (List.length r.Audit.a_sites))
    verdict

(* --- the verifier -------------------------------------------------------- *)

let fn_of_origin (inst : I.t) origin =
  List.find_opt
    (fun (fi : L.fn_input) ->
      List.exists (fun (idx, _) -> idx = origin) fi.L.items)
    inst.I.fn_inputs

let run ?audit ?(tags = []) (inst : I.t) : report =
  let ctx_cache : (string, (ctx, string) result) Hashtbl.t =
    Hashtbl.create 8
  in
  let ctx_of fname =
    match Hashtbl.find_opt ctx_cache fname with
    | Some r -> r
    | None ->
      let r =
        match
          List.find_opt
            (fun (fi : L.fn_input) -> fi.L.fname = fname)
            inst.I.fn_inputs
        with
        | None -> Error ("no analysis inputs retained for function " ^ fname)
        | Some fi -> build_ctx fi
      in
      Hashtbl.replace ctx_cache fname r;
      r
  in
  let text_arr = Array.of_list inst.I.program.Asm.text in
  let plan_obs =
    List.concat_map
      (fun (p : L.loop_plan) ->
        let unknown_checks m =
          List.map
            (fun chk ->
              mk ~origin:(check_origin chk) ~loop:p.L.loop_id
                (match chk with L.Inv _ -> "inv" | L.Rng _ -> "rng")
                (Fmt.str "%a" L.pp_check chk)
                (Unknown m))
            p.L.checks
        in
        match ctx_of p.L.fname with
        | Error m ->
          mk ~loop:p.L.loop_id "preheader" p.L.fname
            (Unknown ("function pipeline rebuild failed: " ^ m))
          :: unknown_checks "function pipeline rebuild failed"
        | Ok c -> (
          match loop_for_plan c p with
          | Error m ->
            mk ~loop:p.L.loop_id "preheader" p.L.fname (Refuted m)
            :: unknown_checks "enclosing loop not identified"
          | Ok lp ->
            let st = cstate c lp in
            verify_preheader text_arr c lp p
            :: verify_plan_coverage inst p
            :: verify_dominance st p
            :: verify_alias inst c lp p
            :: List.map (verify_check st p) p.L.checks))
      inst.I.loop_plans
  in
  let sym_obs =
    let escaped =
      lazy
        (escaped_globals_raw
           (List.filter_map
              (fun (fi : L.fn_input) ->
                match ctx_of fi.L.fname with
                | Ok c -> Some c.raw
                | Error _ -> None)
              inst.I.fn_inputs))
    in
    List.filter_map
      (fun (s : I.site) ->
        match s.I.status with
        | I.Sym_eliminated claimed -> (
          match fn_of_origin inst s.I.origin with
          | None ->
            Some
              (mk ~origin:s.I.origin ~pseudo:claimed "sym" ""
                 (Refuted "site lies outside every retained function slice"))
          | Some fi -> (
            match ctx_of fi.L.fname with
            | Error m ->
              Some
                (mk ~origin:s.I.origin ~pseudo:claimed "sym" fi.L.fname
                   (Unknown ("function pipeline rebuild failed: " ^ m)))
            | Ok c ->
              (* [sites_by_pseudo] concatenates per-function results, so
                 the same pseudo can key several entries. *)
              let premonitored =
                List.exists
                  (fun (q, os) ->
                    String.equal q claimed && List.mem s.I.origin os)
                  inst.I.sites_by_pseudo
              in
              Some
                (verify_sym_site inst.I.symtab ~fname:fi.L.fname
                   ~addr_taken:(addr_taken_raw c.raw)
                   ~escaped:(Lazy.force escaped) ~premonitored ~raw:c.raw s
                   claimed)))
        | I.Checked | I.Loop_eliminated _ -> None)
      inst.I.sites
  in
  let whole_obs =
    [
      verify_global_coverage inst;
      verify_premonitor inst;
      verify_patches text_arr inst;
      verify_fpdef text_arr;
      verify_indirect text_arr;
      verify_frame text_arr inst;
    ]
    @ (match audit with Some r -> [ verify_audit inst r ] | None -> [])
  in
  let obs =
    List.mapi
      (fun i o -> { o with o_id = i })
      (plan_obs @ sym_obs @ whole_obs)
  in
  let count p = List.length (List.filter p obs) in
  {
    v_schema = schema_version;
    v_tags = List.sort compare tags;
    v_obligations = obs;
    v_proved = count (fun o -> match o.o_verdict with Proved -> true | _ -> false);
    v_refuted =
      count (fun o -> match o.o_verdict with Refuted _ -> true | _ -> false);
    v_unknown =
      count (fun o -> match o.o_verdict with Unknown _ -> true | _ -> false);
  }

let ok r = r.v_refuted = 0 && r.v_unknown = 0

let covered_origins r =
  List.filter_map
    (fun o ->
      match (o.o_kind, o.o_origin) with
      | ("sym" | "inv" | "rng"), Some origin -> Some origin
      | _ -> None)
    r.v_obligations
  |> List.sort_uniq compare

(* --- rendering ----------------------------------------------------------- *)

let verdict_name = function
  | Proved -> "proved"
  | Refuted _ -> "refuted"
  | Unknown _ -> "unknown"

let verdict_reason = function Proved -> "" | Refuted m | Unknown m -> m

let pp_obligation ppf o =
  let where =
    String.concat ""
      [
        (match o.o_origin with
        | Some x -> Printf.sprintf " origin=%d" x
        | None -> "");
        (match o.o_loop with
        | Some x -> Printf.sprintf " loop=%d" x
        | None -> "");
        (match o.o_pseudo with Some p -> " pseudo=" ^ p | None -> "");
      ]
  in
  Fmt.pf ppf "#%03d %-10s%s: %s%s" o.o_id o.o_kind where
    (match o.o_verdict with
    | Proved -> "proved"
    | Refuted m -> "REFUTED — " ^ m
    | Unknown m -> "unknown — " ^ m)
    (if o.o_detail = "" then "" else " [" ^ o.o_detail ^ "]")

let summary_line r =
  Printf.sprintf "verify: obligations=%d proved=%d refuted=%d unknown=%d"
    (List.length r.v_obligations)
    r.v_proved r.v_refuted r.v_unknown

let to_text r =
  String.concat "\n"
    (summary_line r
    :: List.map (fun o -> Fmt.str "%a" pp_obligation o) r.v_obligations)

let find_obligations r target =
  match int_of_string_opt target with
  | Some n -> List.filter (fun o -> o.o_origin = Some n) r.v_obligations
  | None -> List.filter (fun o -> o.o_pseudo = Some target) r.v_obligations

let explain r target =
  match find_obligations r target with
  | [] -> None
  | obs ->
    Some (String.concat "\n" (List.map (Fmt.str "%a" pp_obligation) obs))

(* --- JSON ---------------------------------------------------------------- *)

let obligation_to_json o : Export.json =
  Export.Obj
    [
      ("id", Export.Int o.o_id);
      ("kind", Export.Str o.o_kind);
      ("origin",
       match o.o_origin with Some x -> Export.Int x | None -> Export.Null);
      ("loop",
       match o.o_loop with Some x -> Export.Int x | None -> Export.Null);
      ("pseudo",
       match o.o_pseudo with Some p -> Export.Str p | None -> Export.Null);
      ("detail", Export.Str o.o_detail);
      ("verdict", Export.Str (verdict_name o.o_verdict));
      ("reason", Export.Str (verdict_reason o.o_verdict));
    ]

let to_json r : Export.json =
  Export.Obj
    [
      ("schema", Export.Str r.v_schema);
      ("tags", Export.Obj (List.map (fun (k, v) -> (k, Export.Str v)) r.v_tags));
      ( "summary",
        Export.Obj
          [
            ("obligations", Export.Int (List.length r.v_obligations));
            ("proved", Export.Int r.v_proved);
            ("refuted", Export.Int r.v_refuted);
            ("unknown", Export.Int r.v_unknown);
          ] );
      ("obligations", Export.List (List.map obligation_to_json r.v_obligations));
    ]

let to_json_string ?indent r = Export.json_to_string ?indent (to_json r)
