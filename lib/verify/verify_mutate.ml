(* Mutation operators for the verifier's kill gate.  Each mutant makes
   one small, plausible-looking corruption of a finished instrumentation
   plan (or of its audit journal) — the kind of wrong answer a buggy
   analysis or a bad merge could produce.  The gate requires that
   {!Verify.run} refutes every applicable mutant; a mutant that still
   proves clean means an obligation is missing. *)

open Sparc
module I = Dbp.Instrument
module L = Dbp.Loopopt
module B = Ir.Bounds

type mutant = {
  m_name : string;
  m_apply :
    I.t -> Audit.report option -> (I.t * Audit.report option) option;
}

(* --- helpers ---------------------------------------------------------------------- *)

let replace_plan (inst : I.t) (old_p : L.loop_plan) (new_p : L.loop_plan) =
  {
    inst with
    I.loop_plans =
      List.map
        (fun p -> if p == old_p then new_p else p)
        inst.I.loop_plans;
  }

let first_plan_with f (inst : I.t) = List.find_opt f inst.I.loop_plans

(* A plan mutation that leaves the audit journal untouched: the
   journal still records the truth, so even mutations the core proof
   engine cannot decide are caught by the audit cross-check. *)
let plan_mutant name pick =
  {
    m_name = name;
    m_apply =
      (fun inst audit ->
        Option.map (fun inst' -> (inst', audit)) (pick inst));
  }

let map_first f xs =
  let rec go = function
    | [] -> None
    | x :: rest -> (
      match f x with
      | Some x' -> Some (x' :: rest)
      | None -> Option.map (fun rest' -> x :: rest') (go rest))
  in
  go xs

let bump e k = B.normalize (B.Badd (e, B.Bconst k))

(* --- check-expression mutants ----------------------------------------------------- *)

let mutate_check name f =
  plan_mutant name (fun inst ->
      first_plan_with
        (fun p -> List.exists (fun c -> f c <> None) p.L.checks)
        inst
      |> Option.map (fun p ->
             let checks =
               match map_first f p.L.checks with
               | Some cs -> cs
               | None -> assert false
             in
             replace_plan inst p { p with L.checks }))

let swap_rng_bounds =
  mutate_check "swap_rng_bounds" (function
    | L.Rng r ->
      Some
        (L.Rng
           {
             r with
             lo = r.hi;
             hi = r.lo;
             lo_level = r.hi_level;
             hi_level = r.lo_level;
           })
    | L.Inv _ -> None)

let retarget_inv_expr =
  mutate_check "retarget_inv_expr" (function
    | L.Inv i -> Some (L.Inv { i with expr = bump i.expr 4 })
    | L.Rng _ -> None)

let inflate_rng_lo =
  mutate_check "inflate_rng_lo" (function
    | L.Rng r -> Some (L.Rng { r with lo = bump r.lo 8 })
    | L.Inv _ -> None)

let shrink_rng_hi =
  mutate_check "shrink_rng_hi" (function
    | L.Rng r -> Some (L.Rng { r with hi = bump r.hi (-8) })
    | L.Inv _ -> None)

(* --- plan-structure mutants ------------------------------------------------------- *)

(* Claim one more store than the checks cover: pull a Checked site of
   the same function into the plan's eliminated list. *)
let widen_eliminated =
  plan_mutant "widen_eliminated" (fun inst ->
      List.find_map
        (fun (p : L.loop_plan) ->
          List.find_map
            (fun (s : I.site) ->
              match s.I.status with
              | I.Checked when not (List.mem s.I.origin p.L.eliminated)
                ->
                Some
                  (replace_plan inst p
                     {
                       p with
                       L.eliminated = s.I.origin :: p.L.eliminated;
                     })
              | _ -> None)
            inst.I.sites)
        inst.I.loop_plans)

let drop_preheader_check =
  plan_mutant "drop_preheader_check" (fun inst ->
      first_plan_with (fun p -> p.L.checks <> []) inst
      |> Option.map (fun p ->
             replace_plan inst p { p with L.checks = List.tl p.L.checks }))

let forget_alias_pseudo =
  plan_mutant "forget_alias_pseudo" (fun inst ->
      first_plan_with (fun p -> p.L.alias_pseudos <> []) inst
      |> Option.map (fun p ->
             replace_plan inst p
               { p with L.alias_pseudos = List.tl p.L.alias_pseudos }))

let move_preheader =
  plan_mutant "move_preheader" (fun inst ->
      first_plan_with (fun _ -> true) inst
      |> Option.map (fun p ->
             replace_plan inst p
               { p with L.header_item = p.L.header_item + 1 }))

(* Transplant an eliminated store into a loop that never contains it. *)
let cross_loop_eliminate =
  plan_mutant "cross_loop_eliminate" (fun inst ->
      match
        List.filter (fun p -> p.L.eliminated <> []) inst.I.loop_plans
      with
      | a :: b :: _ ->
        let moved = List.hd a.L.eliminated in
        let inst = replace_plan inst a
            { a with L.eliminated = List.tl a.L.eliminated }
        in
        let b' =
          List.find
            (fun p -> p.L.loop_id = b.L.loop_id)
            inst.I.loop_plans
        in
        Some
          (replace_plan inst b'
             { b' with L.eliminated = moved :: b'.L.eliminated })
      | _ -> None)

(* --- symbol-table mutants --------------------------------------------------------- *)

(* Claim a §4.2 match for a store the matcher (rightly) kept. *)
let mark_escaped_matched =
  plan_mutant "mark_escaped_matched" (fun inst ->
      let pseudo =
        List.find_map
          (fun (s : I.site) ->
            match s.I.status with
            | I.Sym_eliminated p -> Some p
            | _ -> None)
          inst.I.sites
      in
      Option.bind pseudo (fun pseudo ->
          map_first
            (fun (s : I.site) ->
              match s.I.status with
              | I.Checked ->
                Some { s with I.status = I.Sym_eliminated pseudo }
              | _ -> None)
            inst.I.sites
          |> Option.map (fun sites -> { inst with I.sites })))

let bogus_sym_pseudo =
  plan_mutant "bogus_sym_pseudo" (fun inst ->
      map_first
        (fun (s : I.site) ->
          match s.I.status with
          | I.Sym_eliminated p ->
            Some { s with I.status = I.Sym_eliminated (p ^ "_x") }
          | _ -> None)
        inst.I.sites
      |> Option.map (fun sites -> { inst with I.sites }))

let forget_premonitor_entry =
  plan_mutant "forget_premonitor_entry" (fun inst ->
      map_first
        (fun (pseudo, origins) ->
          match origins with
          | _ :: rest -> Some (pseudo, rest)
          | [] -> None)
        inst.I.sites_by_pseudo
      |> Option.map (fun sites_by_pseudo ->
             { inst with I.sites_by_pseudo }))

(* --- emitted-program mutants ------------------------------------------------------ *)

let set_text (inst : I.t) text =
  { inst with I.program = { inst.I.program with Asm.text } }

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

(* Delete a patch stub: everything from its label through the [ba]
   back to the site. *)
let drop_patch_stub =
  plan_mutant "drop_patch_stub" (fun inst ->
      let text = inst.I.program.Asm.text in
      let rec split acc = function
        | Asm.Label l :: rest when starts_with "__dbp_patch_" l ->
          let rec drop = function
            | Asm.Insn (Insn.Branch { cond = Cond.A; target = Insn.Sym b })
              :: rest'
              when starts_with "__dbp_back_" b ->
              rest'
            | _ :: rest' -> drop rest'
            | [] -> []
          in
          Some (List.rev_append acc (drop rest))
        | item :: rest -> split (item :: acc) rest
        | [] -> None
      in
      Option.map (set_text inst) (split [] text))

(* Delete one §4.2 frame-integrity call (and its delay nop). *)
let drop_frame_call =
  {
    m_name = "drop_frame_call";
    m_apply =
      (fun inst audit ->
        if not inst.I.control_checks then None
        else
          let rec split acc = function
            | Asm.Insn (Insn.Call { target = Insn.Sym f })
              :: Asm.Insn Insn.Nop :: rest
              when String.equal f "__dbp_frame_enter" ->
              Some (List.rev_append acc rest)
            | item :: rest -> split (item :: acc) rest
            | [] -> None
          in
          Option.map
            (fun text -> (set_text inst text, audit))
            (split [] inst.I.program.Asm.text));
  }

(* --- journal mutant --------------------------------------------------------------- *)

(* Rewrite the journal to deny an elimination the plan performed. *)
let flip_audit_verdict =
  {
    m_name = "flip_audit_verdict";
    m_apply =
      (fun inst audit ->
        Option.bind audit (fun (r : Audit.report) ->
            map_first
              (fun (a : Audit.site) ->
                match a.Audit.a_verdict with
                | Audit.Kept -> None
                | _ -> Some { a with Audit.a_verdict = Audit.Kept })
              r.Audit.a_sites
            |> Option.map (fun a_sites ->
                   (inst, Some { r with Audit.a_sites }))));
  }

let all =
  [
    widen_eliminated;
    drop_preheader_check;
    swap_rng_bounds;
    retarget_inv_expr;
    inflate_rng_lo;
    shrink_rng_hi;
    move_preheader;
    cross_loop_eliminate;
    forget_alias_pseudo;
    mark_escaped_matched;
    bogus_sym_pseudo;
    forget_premonitor_entry;
    drop_patch_stub;
    drop_frame_call;
    flip_audit_verdict;
  ]
