(** Bounded checkpoint journal, keyed by executed-instruction count.

    The replay engine appends one {!Snapshot.t} every N executed
    instructions ([--checkpoint-every N]).  Under an optional byte
    budget the journal evicts interior entries by {e exponential
    thinning}: the victim is the entry whose removal creates the
    smallest gap relative to its age, so recent history stays densely
    checkpointed while old history gets sparse — the expected
    re-execution distance to a target grows with the target's age
    instead of with total run length.  The first and the most recent
    entry are never evicted.

    Accounting is COW-aware: each entry is attributed the pages it does
    {e not} share with the previous retained entry (plus the fixed
    per-checkpoint overhead), and eviction re-derives the successor's
    attribution against its new predecessor — mirroring exactly what
    the garbage collector can reclaim. *)

type entry = {
  snap : Snapshot.t;
  mutable delta_pages : int;
      (** pages captured fresh vs the previous retained entry *)
  mutable shared_pages : int;  (** pages shared with that entry *)
  mutable bytes : int;  (** attributed retention cost *)
}

type t

val create :
  ?on_evict:(Snapshot.t -> unit) -> ?budget_bytes:int -> ?interval:int ->
  unit -> t
(** [interval] (default 1) is the checkpoint spacing in executed
    instructions — recorded here as policy metadata; the replay engine
    consults it.  [budget_bytes] bounds the retained attributed bytes;
    omitted means unbounded.  [on_evict] observes each thinned
    snapshot (audit/telemetry).
    @raise Invalid_argument on a non-positive interval or budget. *)

val interval : t -> int
val length : t -> int
val evictions : t -> int

val retained_bytes : t -> int
(** Attributed bytes across retained entries — what the budget bounds. *)

val captured_delta_pages : t -> int
(** Cumulative pages physically copied across all captures (the true
    O(dirty) work done), regardless of later eviction. *)

val captured_shared_pages : t -> int
(** Cumulative pages captures shared with their predecessors — the
    deep-copy work COW avoided. *)

val captured_bytes : t -> int
(** Cumulative attributed bytes at capture time. *)

val record : t -> Snapshot.t -> unit
(** Append a snapshot (instruction counts must be non-decreasing), then
    thin until back under budget.
    @raise Invalid_argument on out-of-order instruction counts. *)

val entries : t -> entry list
(** Oldest first. *)

val snapshots : t -> Snapshot.t list
(** Oldest first. *)

val nearest : t -> insn:int -> Snapshot.t option
(** Latest retained snapshot taken at or before [insn] — the replay
    starting point for a travel to [insn]. *)

val find : t -> insn:int -> Snapshot.t option
(** The retained snapshot taken exactly at [insn], if any. *)
