(* Bounded checkpoint journal, keyed by executed-instruction count.

   Entries are appended in instruction order by the replay engine's
   interval policy (one checkpoint every [interval] instructions).
   Under a byte budget the journal thins itself exponentially: old
   history keeps sparse checkpoints, recent history keeps dense ones,
   so the expected re-execution distance to any target stays roughly
   proportional to the target's age — the classic checkpointing
   trade-off (Transition Watchpoints; Feldman & Brown's IGOR). *)

type entry = {
  snap : Snapshot.t;
  mutable delta_pages : int;
      (* pages captured fresh vs the previous *retained* entry *)
  mutable shared_pages : int;  (* pages shared with that entry *)
  mutable bytes : int;  (* attributed retention cost *)
}

type t = {
  interval : int;
  budget_bytes : int option;
  mutable entries : entry list;  (* newest first *)
  mutable n : int;
  mutable evictions : int;
  (* Capture-time statistics (cumulative; unaffected by eviction). *)
  mutable captured_delta_pages : int;
  mutable captured_shared_pages : int;
  mutable captured_bytes : int;
  on_evict : Snapshot.t -> unit;
}

let create ?(on_evict = fun _ -> ()) ?budget_bytes ?(interval = 1) () =
  if interval <= 0 then invalid_arg "Journal.create: interval must be positive";
  (match budget_bytes with
  | Some b when b <= 0 -> invalid_arg "Journal.create: budget must be positive"
  | _ -> ());
  {
    interval;
    budget_bytes;
    entries = [];
    n = 0;
    evictions = 0;
    captured_delta_pages = 0;
    captured_shared_pages = 0;
    captured_bytes = 0;
    on_evict;
  }

let interval t = t.interval
let length t = t.n
let evictions t = t.evictions
let captured_delta_pages t = t.captured_delta_pages
let captured_shared_pages t = t.captured_shared_pages
let captured_bytes t = t.captured_bytes

let retained_bytes t =
  List.fold_left (fun acc e -> acc + e.bytes) 0 t.entries

let entries t = List.rev t.entries
let snapshots t = List.rev_map (fun e -> e.snap) t.entries

(* Thinning: evict the interior entry whose removal creates the
   smallest gap *relative to its age*.  With gap_i = insn_{i+1} -
   insn_{i-1} and age_i = latest - insn_i, minimizing gap_i / age_i
   keeps the retained checkpoint density roughly proportional to 1/age
   — exponential thinning: recent history stays dense, old history gets
   sparse.  Scores are compared by integer cross-multiplication
   (gap_i * age_j vs gap_j * age_i), so eviction is exact and
   platform-independent; ties break toward the oldest capture
   (smallest {!Snapshot.seq}).  The first and last entries are never
   evicted. *)
let pick_victim arr =
  let n = Array.length arr in
  if n < 3 then None
  else begin
    let latest = Snapshot.insn arr.(n - 1).snap in
    let gap i =
      Snapshot.insn arr.(i + 1).snap - Snapshot.insn arr.(i - 1).snap
    in
    let age i = max 1 (latest - Snapshot.insn arr.(i).snap) in
    let best = ref 1 in
    for i = 2 to n - 2 do
      let better =
        let gi = gap i and ai = age i in
        let gb = gap !best and ab = age !best in
        let cmp = compare (gi * ab) (gb * ai) in
        cmp < 0
        || (cmp = 0 && Snapshot.seq arr.(i).snap < Snapshot.seq arr.(!best).snap)
      in
      if better then best := i
    done;
    Some !best
  end

let evict_one t =
  let arr = Array.of_list (entries t) in
  match pick_victim arr with
  | None -> false
  | Some idx ->
    let victim = arr.(idx) in
    (* The victim's neighbours now bound a wider gap; the successor's
       retention cost is re-derived against its new predecessor, so
       pages the victim shared with both neighbours stay counted once
       and pages only the victim held drop off the books — exactly
       mirroring what the garbage collector reclaims. *)
    let pred = arr.(idx - 1) and succ = arr.(idx + 1) in
    succ.delta_pages <- Snapshot.delta_pages ~prev:(Some pred.snap) succ.snap;
    succ.shared_pages <- Snapshot.shared_pages ~prev:(Some pred.snap) succ.snap;
    succ.bytes <- Snapshot.bytes ~prev:(Some pred.snap) succ.snap;
    t.entries <-
      List.rev (List.filteri (fun i _ -> i <> idx) (Array.to_list arr));
    t.n <- t.n - 1;
    t.evictions <- t.evictions + 1;
    t.on_evict victim.snap;
    true

let record t snap =
  (match t.entries with
  | prev :: _ when Snapshot.insn prev.snap > Snapshot.insn snap ->
    invalid_arg "Journal.record: instruction counts must be non-decreasing"
  | _ -> ());
  let prev = match t.entries with e :: _ -> Some e.snap | [] -> None in
  let delta_pages = Snapshot.delta_pages ~prev snap in
  let shared_pages = Snapshot.shared_pages ~prev snap in
  let bytes = Snapshot.bytes ~prev snap in
  t.entries <- { snap; delta_pages; shared_pages; bytes } :: t.entries;
  t.n <- t.n + 1;
  t.captured_delta_pages <- t.captured_delta_pages + delta_pages;
  t.captured_shared_pages <- t.captured_shared_pages + shared_pages;
  t.captured_bytes <- t.captured_bytes + bytes;
  match t.budget_bytes with
  | None -> ()
  | Some budget ->
    let continue = ref (retained_bytes t > budget) in
    while !continue do
      if evict_one t then continue := retained_bytes t > budget
      else continue := false
    done

let nearest t ~insn =
  (* Latest retained snapshot at or before [insn]; entries are newest
     first, so the first qualifying hit wins. *)
  let rec go = function
    | [] -> None
    | e :: rest ->
      if Snapshot.insn e.snap <= insn then Some e.snap else go rest
  in
  go t.entries

let find t ~insn =
  let rec go = function
    | [] -> None
    | e :: rest -> if Snapshot.insn e.snap = insn then Some e.snap else go rest
  in
  go t.entries
