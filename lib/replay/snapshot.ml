open Machine

(* A checkpoint plus the metadata the journal and the determinism guard
   need: capture-order sequence number, instruction-count key, and the
   architectural digest recorded at capture time.  The heavy lifting is
   {!Cpu.checkpoint}, which is copy-on-write — pages are shared between
   snapshots until a write separates them, so holding many snapshots
   costs O(total dirty pages), not O(snapshots x allocated memory). *)

type t = {
  cp : Cpu.checkpoint;
  insn : int;
  seq : int;
  digest : string option;
}

(* [seq] is assigned by the caller (the replay engine keeps a
   per-instance counter) so that parallel bench domains never share
   mutable state through this module. *)
let capture ?(digest = true) ~seq cpu =
  {
    cp = Cpu.checkpoint cpu;
    insn = Cpu.instr_count cpu;
    seq;
    digest = (if digest then Some (Cpu.state_digest cpu) else None);
  }

let restore cpu t = Cpu.rollback cpu t.cp

let insn t = t.insn
let seq t = t.seq
let digest t = t.digest
let view t = Cpu.checkpoint_view t.cp

let pages t = Memory.view_pages (view t)

let delta_pages ~prev t =
  match prev with
  | None -> pages t
  | Some p -> Memory.view_diff (view p) (view t)

let shared_pages ~prev t = pages t - delta_pages ~prev t

let bytes ~prev t =
  (delta_pages ~prev t * Memory.page_bytes) + Cpu.checkpoint_overhead_bytes t.cp
