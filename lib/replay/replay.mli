(** Time-travel data breakpoints: record a run under interval
    checkpointing, then answer "who wrote this word, and when?"
    retroactively by restoring the nearest checkpoint and re-executing
    under a watch (§5's replayed-execution application; the search
    strategy of Arya et al.'s Transition Watchpoints).

    The replay watch is {e host-side} — a store hook observing
    effective addresses, like the hardware-watchpoint strategy's
    oracle.  It writes nothing into simulated memory and triggers no
    trap instruction, so the replayed program's architectural outcome
    is byte-identical with or without a watch armed (Price's
    virtual-breakpoint invisibility property).  The determinism guard
    leans on this: whenever a re-execution lands on a retained
    checkpoint, its {!Machine.Cpu.state_digest} must equal the digest
    recorded during the original run, or {!Determinism_violation} is
    raised. *)

type hit = {
  h_insn : int;  (** instruction count {e including} the store *)
  h_pc : int;  (** pc of the store instruction *)
  h_addr : int;  (** word-aligned address written *)
  h_old : int;  (** word value before the store *)
  h_new : int;  (** word value after *)
  h_width : Sparc.Insn.width;
}

exception Determinism_violation of {
  insn : int;
  expected : string;
  actual : string;
}
(** Re-execution reached a checkpointed instruction count with a
    different architectural digest than the original run. *)

type t

val create :
  ?telemetry:Telemetry.t ->
  ?audit:Audit.t ->
  ?budget_bytes:int ->
  ?digests:bool ->
  ?checkpoint_every:int ->
  Machine.Cpu.t ->
  t
(** Attach a replay engine to a machine.  One store hook is installed
    immediately (disarmed: one flag test per store until a query arms
    it).  [checkpoint_every] (default 10000) is the journal interval in
    executed instructions; [budget_bytes] enables exponential-thinning
    eviction; [digests:false] skips per-checkpoint digests (cheaper
    recording, no guard).  [telemetry]/[audit] receive checkpoint and
    replay lifecycle counters/events, gated by their own flags
    (defaults: disabled instances). *)

val record_slice : ?fuel:int -> t -> [ `Exited of int | `Out_of_fuel of int ]
(** Advance the recording by at most [fuel] instructions (the service
    daemon's fairness quantum).  Checkpoints land exactly where a
    one-shot {!record} would put them — interval boundaries and the
    halt — so a run recorded in N slices yields the same journal, the
    same telemetry and the same retroactive-query answers as a run
    recorded in one.  [`Out_of_fuel n] means [n] instructions were
    executed and the program is still running (call again to resume);
    [`Exited code] finalizes the recording.  Once recorded, further
    calls return [`Exited code] without touching the machine. *)

val record : ?fuel:int -> t -> int
(** Run the program to completion, checkpointing at the interval plus
    once at start and once at halt; returns the exit code.
    @raise Machine.Cpu.Out_of_fuel after [fuel] instructions
    (default 2·10{^8}).
    @raise Invalid_argument if already recorded. *)

val cpu : t -> Machine.Cpu.t
val journal : t -> Journal.t
val interval : t -> int
val recorded : t -> bool

val end_insn : t -> int
(** Instruction count at the recorded halt. *)

val exit_code : t -> int option
val replayed_insns : t -> int
(** Total instructions re-executed by travels and queries so far. *)

(** {1 Time travel} *)

val travel : ?guard:bool -> t -> insn:int -> int
(** Move the machine to its state just after instruction [insn] of the
    recorded run: restore the latest checkpoint at or before [insn] and
    re-execute the gap.  Returns the number of re-executed
    instructions.  [guard] (default true) applies the determinism check
    when [insn] is itself a retained checkpoint.
    @raise Determinism_violation on digest mismatch.
    @raise Invalid_argument if the run is unrecorded or [insn] is
    outside it. *)

val replay_from : ?guard:bool -> t -> Snapshot.t -> insn:int -> int
(** Like {!travel} but from an explicit starting checkpoint — the
    determinism-guard test replays every checkpoint-to-checkpoint
    window with this. *)

(** {1 Retroactive queries} *)

val last_write : ?guard:bool -> t -> lo:int -> hi:int -> hit option
(** The final store of the recorded run that landed in byte range
    [[lo, hi)]: scans checkpoint windows newest-first, replaying each
    under an armed watch until one contains a hit.  Returns the exact
    (instruction index, pc, old/new value) of that store, or [None] if
    the range was never written.  Leaves the machine at the recorded
    end state. *)

val last_write_word : ?guard:bool -> t -> addr:int -> hit option
(** {!last_write} over the word containing [addr]. *)

val write_history : ?guard:bool -> t -> lo:int -> hi:int -> hit list
(** Every store of the recorded run landing in [[lo, hi)], in execution
    order — one full replay from the first checkpoint.  Leaves the
    machine at the recorded end state. *)

(** {1 Low-level watch control}

    Exposed for tests; queries above manage these themselves. *)

val arm : t -> lo:int -> hi:int -> unit
(** Reset hit collection and watch [[lo, hi)] from now on; old values
    seed from current memory. *)

val disarm : t -> unit

val hits : t -> hit list
(** Hits collected since the last {!arm}, in execution order. *)
