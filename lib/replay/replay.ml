open Sparc
open Machine

(* Time-travel engine: record a run while checkpointing it at an
   instruction-count interval, then answer retroactive queries by
   restoring the nearest checkpoint and re-executing.

   The watchpoint used during re-execution is *host-side*: a store
   hook that observes effective addresses after each store, exactly
   like the hardware-watchpoint strategy's oracle.  Nothing is written
   into simulated memory and no trap instruction runs, so the replayed
   program's architectural outcome is byte-identical whether or not a
   watch is armed (Price's virtual-breakpoint invisibility property) —
   which is precisely what lets the determinism guard hold during
   queries. *)

type hit = {
  h_insn : int;  (* instruction count including the store *)
  h_pc : int;  (* pc of the store instruction *)
  h_addr : int;  (* word-aligned address written *)
  h_old : int;
  h_new : int;
  h_width : Insn.width;
}

exception Determinism_violation of {
  insn : int;
  expected : string;
  actual : string;
}

type t = {
  cpu : Cpu.t;
  journal : Journal.t;
  telemetry : Telemetry.t;
  audit : Audit.t;
  digests : bool;
  mutable seq : int;
  mutable end_insn : int;
  mutable exit_code : int option;
  mutable recorded : bool;
  (* Incremental-recording frontier ({!record_slice}): whether the
     initial checkpoint was taken, and the instruction count at which
     the next interval checkpoint is due. *)
  mutable started : bool;
  mutable next_boundary : int;
  (* Watch state shared with the store hook installed at [create]
     (hooks are append-only, so one hook with an [armed] flag). *)
  mutable armed : bool;
  mutable watch_lo : int;
  mutable watch_hi : int;  (* exclusive *)
  shadow : (int, int) Hashtbl.t;  (* watched word -> current value *)
  mutable hits : hit list;  (* newest first; reset on arm *)
  mutable replayed : int;
}

let off_telemetry () = Telemetry.create ~enabled:false ()
let off_audit () = Audit.create ~enabled:(fun () -> false) ()

let create ?telemetry ?audit ?budget_bytes ?(digests = true)
    ?(checkpoint_every = 10_000) cpu =
  let telemetry =
    match telemetry with Some t -> t | None -> off_telemetry ()
  in
  let audit = match audit with Some a -> a | None -> off_audit () in
  let on_evict snap =
    Telemetry.incr telemetry Telemetry.Checkpoint_evictions;
    Audit.replay audit ~kind:Audit.Checkpoint_evicted
      ~insn:(Snapshot.insn snap)
      ~detail:(Printf.sprintf "seq=%d" (Snapshot.seq snap))
  in
  let journal =
    Journal.create ~on_evict ?budget_bytes ~interval:checkpoint_every ()
  in
  let t =
    {
      cpu;
      journal;
      telemetry;
      audit;
      digests;
      seq = 0;
      end_insn = 0;
      exit_code = None;
      recorded = false;
      started = false;
      next_boundary = 0;
      armed = false;
      watch_lo = 0;
      watch_hi = 0;
      shadow = Hashtbl.create 64;
      hits = [];
      replayed = 0;
    }
  in
  Cpu.set_store_hook cpu (fun cpu ~addr ~width ->
      if t.armed then begin
        let last = addr + Insn.width_bytes width in
        let w = ref (addr land lnot 3) in
        while !w < last do
          (* Word [w] overlaps the watched byte range [lo, hi)? *)
          if !w + 4 > t.watch_lo && !w < t.watch_hi then begin
            let nv = Memory.read_word (Cpu.mem cpu) !w in
            let ov =
              match Hashtbl.find_opt t.shadow !w with Some v -> v | None -> 0
            in
            t.hits <-
              {
                h_insn = Cpu.instr_count cpu;
                h_pc = Cpu.pc cpu;
                h_addr = !w;
                h_old = ov;
                h_new = nv;
                h_width = width;
              }
              :: t.hits;
            Hashtbl.replace t.shadow !w nv
          end;
          w := !w + 4
        done
      end);
  t

let cpu t = t.cpu
let journal t = t.journal
let end_insn t = t.end_insn
let exit_code t = t.exit_code
let recorded t = t.recorded
let replayed_insns t = t.replayed
let interval t = Journal.interval t.journal

(* --- recording -------------------------------------------------------- *)

let take_checkpoint t =
  let snap = Snapshot.capture ~digest:t.digests ~seq:t.seq t.cpu in
  t.seq <- t.seq + 1;
  let d0 = Journal.captured_delta_pages t.journal in
  let s0 = Journal.captured_shared_pages t.journal in
  let b0 = Journal.captured_bytes t.journal in
  Journal.record t.journal snap;
  Telemetry.incr t.telemetry Telemetry.Checkpoints_taken;
  Telemetry.add t.telemetry Telemetry.Checkpoint_pages_copied
    (Journal.captured_delta_pages t.journal - d0);
  Telemetry.add t.telemetry Telemetry.Checkpoint_pages_shared
    (Journal.captured_shared_pages t.journal - s0);
  Telemetry.add t.telemetry Telemetry.Checkpoint_bytes
    (Journal.captured_bytes t.journal - b0);
  Audit.replay t.audit ~kind:Audit.Checkpoint_taken ~insn:(Snapshot.insn snap)
    ~detail:
      (Printf.sprintf "pages=%d shared=%d bytes=%d"
         (Journal.captured_delta_pages t.journal - d0)
         (Journal.captured_shared_pages t.journal - s0)
         (Journal.captured_bytes t.journal - b0));
  snap

(* Incremental recording: each slice advances the machine by at most
   [fuel] instructions, checkpointing at exactly the same places a
   one-shot {!record} would — interval boundaries and the halt — so a
   run recorded in N slices produces the same journal (and the same
   checkpoint telemetry) as a run recorded in one.  A slice that
   exhausts its fuel mid-interval takes no checkpoint; the next slice
   resumes toward the same boundary.  That is what makes the daemon's
   round-robin fairness slicing invisible to every retroactive query
   and to the cross-shard telemetry diffs. *)
let record_slice ?(fuel = 200_000_000) t =
  if t.recorded then `Exited (Option.get t.exit_code)
  else begin
    if not t.started then begin
      t.started <- true;
      ignore (take_checkpoint t);
      t.next_boundary <- Cpu.instr_count t.cpu + Journal.interval t.journal
    end;
    let executed = ref 0 in
    while Cpu.halted t.cpu = None && !executed < fuel do
      while
        Cpu.halted t.cpu = None
        && Cpu.instr_count t.cpu < t.next_boundary
        && !executed < fuel
      do
        Cpu.step t.cpu;
        incr executed
      done;
      if Cpu.halted t.cpu <> None || Cpu.instr_count t.cpu >= t.next_boundary
      then begin
        ignore (take_checkpoint t);
        t.next_boundary <- Cpu.instr_count t.cpu + Journal.interval t.journal
      end
    done;
    match Cpu.halted t.cpu with
    | None -> `Out_of_fuel !executed
    | Some code ->
      t.end_insn <- Cpu.instr_count t.cpu;
      t.exit_code <- Some code;
      t.recorded <- true;
      `Exited code
  end

let record ?(fuel = 200_000_000) t =
  if t.recorded then invalid_arg "Replay.record: run already recorded";
  match record_slice ~fuel t with
  | `Exited code -> code
  | `Out_of_fuel executed ->
    (* Parity with the pre-slice behavior: the one-shot recorder always
       checkpointed the frontier before giving up (unless a boundary
       checkpoint already landed on this exact instruction). *)
    if Cpu.instr_count t.cpu + Journal.interval t.journal <> t.next_boundary
    then ignore (take_checkpoint t);
    raise (Cpu.Out_of_fuel { executed })

(* --- travel ----------------------------------------------------------- *)

let restore_to t snap ~target =
  Snapshot.restore t.cpu snap;
  Telemetry.incr t.telemetry Telemetry.Restores;
  Audit.replay t.audit ~kind:Audit.State_restored ~insn:(Snapshot.insn snap)
    ~detail:(Printf.sprintf "target=%d" target)

(* Step to [insn]; if a retained checkpoint exists exactly there, check
   the digest (the determinism guard). *)
let exec_to ?(guard = true) t ~insn =
  let replayed = ref 0 in
  while Cpu.instr_count t.cpu < insn && Cpu.halted t.cpu = None do
    Cpu.step t.cpu;
    incr replayed
  done;
  t.replayed <- t.replayed + !replayed;
  Telemetry.add t.telemetry Telemetry.Replayed_instrs !replayed;
  if Cpu.instr_count t.cpu <> insn then
    failwith
      (Printf.sprintf
         "Replay: re-execution diverged: halted at insn %d before target %d"
         (Cpu.instr_count t.cpu) insn);
  if guard then begin
    match Journal.find t.journal ~insn with
    | Some target_snap -> (
      match Snapshot.digest target_snap with
      | Some expected ->
        let actual = Cpu.state_digest t.cpu in
        if actual <> expected then
          raise (Determinism_violation { insn; expected; actual })
      | None -> ())
    | None -> ()
  end;
  Audit.replay t.audit ~kind:Audit.Replay_finished ~insn
    ~detail:(Printf.sprintf "replayed=%d" !replayed);
  !replayed

let replay_from ?guard t snap ~insn =
  if not t.recorded then invalid_arg "Replay.replay_from: record the run first";
  if insn < Snapshot.insn snap || insn > t.end_insn then
    invalid_arg "Replay.replay_from: target outside [snapshot, end]";
  restore_to t snap ~target:insn;
  exec_to ?guard t ~insn

let travel ?guard t ~insn =
  if not t.recorded then invalid_arg "Replay.travel: record the run first";
  if insn < 0 || insn > t.end_insn then
    invalid_arg "Replay.travel: target outside the recorded run";
  match Journal.nearest t.journal ~insn with
  | None -> invalid_arg "Replay.travel: no checkpoint at or before target"
  | Some snap ->
    restore_to t snap ~target:insn;
    exec_to ?guard t ~insn

(* --- retroactive queries ---------------------------------------------- *)

let arm t ~lo ~hi =
  if lo >= hi then invalid_arg "Replay.arm: empty range";
  Hashtbl.reset t.shadow;
  let w = ref (lo land lnot 3) in
  while !w < hi do
    Hashtbl.replace t.shadow !w (Memory.read_word (Cpu.mem t.cpu) !w);
    w := !w + 4
  done;
  t.watch_lo <- lo;
  t.watch_hi <- hi;
  t.hits <- [];
  t.armed <- true

let disarm t = t.armed <- false

let hits t = List.rev t.hits

(* Scan checkpoint windows newest-first; the first window containing a
   hit holds the final write (Transition-Watchpoints search order).
   The machine is left at the recorded end state. *)
let last_write ?guard t ~lo ~hi =
  if not t.recorded then invalid_arg "Replay.last_write: record the run first";
  let snaps = Array.of_list (Journal.snapshots t.journal) in
  let n = Array.length snaps in
  let result = ref None in
  let i = ref (n - 1) in
  while !result = None && !i >= 1 do
    let start = snaps.(!i - 1) in
    let stop = Snapshot.insn snaps.(!i) in
    restore_to t start ~target:stop;
    arm t ~lo ~hi;
    let fin () = disarm t in
    (try ignore (exec_to ?guard t ~insn:stop)
     with e ->
       fin ();
       raise e);
    fin ();
    (match t.hits with [] -> () | newest :: _ -> result := Some newest);
    decr i
  done;
  ignore (travel ?guard t ~insn:t.end_insn);
  !result

let last_write_word ?guard t ~addr =
  let lo = addr land lnot 3 in
  last_write ?guard t ~lo ~hi:(lo + 4)

(* Full history: replay the whole run once with the watch armed. *)
let write_history ?guard t ~lo ~hi =
  if not t.recorded then
    invalid_arg "Replay.write_history: record the run first";
  match Journal.snapshots t.journal with
  | [] -> []
  | first :: _ ->
    restore_to t first ~target:t.end_insn;
    arm t ~lo ~hi;
    (try ignore (exec_to ?guard t ~insn:t.end_insn)
     with e ->
       disarm t;
       raise e);
    disarm t;
    let collected = hits t in
    t.hits <- [];
    collected
