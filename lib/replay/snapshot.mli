(** One checkpoint of the whole machine, tagged for the replay journal.

    Wraps {!Machine.Cpu.checkpoint} — a copy-on-write capture of memory
    (O(1); pages are generation-tagged and shared between snapshots
    until a write separates them), register windows, cache tags and
    counters, patched text and output — with the metadata the journal
    and the determinism guard need: the executed-instruction count at
    capture (the journal key), a capture-order sequence number, and the
    architectural {!Machine.Cpu.state_digest}.

    Because the MRS keeps all its visible state (segment bitmap,
    region table, enable word) in simulated memory, a snapshot captures
    the MRS for free: restoring one restores the monitoring state the
    original run had at that instant. *)

type t

val capture : ?digest:bool -> seq:int -> Machine.Cpu.t -> t
(** Snapshot the machine now.  [digest] (default true) records the
    architectural digest for the replay determinism guard; pass [false]
    to skip the O(memory) hash when only rollback is needed.  [seq] is
    the caller-assigned capture order (kept per replay instance so
    parallel bench domains share no state). *)

val restore : Machine.Cpu.t -> t -> unit
(** Exact rollback, including cache state — replay from here reproduces
    the original run's {!Machine.Cpu.stats} bit-for-bit. *)

val insn : t -> int
(** Executed-instruction count at capture — the journal key. *)

val seq : t -> int
(** Global capture order (deterministic eviction tie-break). *)

val digest : t -> string option

val view : t -> Machine.Memory.view

val pages : t -> int
(** Pages resident in the captured view (shared or private). *)

val delta_pages : prev:t option -> t -> int
(** Pages not physically shared with [prev] — what this snapshot
    actually cost to retain, given its predecessor is retained too. *)

val shared_pages : prev:t option -> t -> int
(** [pages t - delta_pages ~prev t]. *)

val bytes : prev:t option -> t -> int
(** Attributed size: delta pages plus the fixed per-checkpoint overhead
    (cache tags, windows, output, scalars). *)
