(** Integer condition codes and branch conditions.

    The [icc] record mirrors the SPARC integer condition-code register:
    negative, zero, overflow and carry, set by the [cc]-modifying ALU
    instructions ([addcc], [subcc], ...) and consumed by conditional
    branches. *)

type t =
  | A    (** always *)
  | N    (** never *)
  | E    (** equal *)
  | Ne   (** not equal *)
  | G    (** signed greater *)
  | Ge   (** signed greater or equal *)
  | L    (** signed less *)
  | Le   (** signed less or equal *)
  | Gu   (** unsigned greater *)
  | Leu  (** unsigned less or equal *)
  | Cc   (** carry clear, i.e. unsigned greater or equal *)
  | Cs   (** carry set, i.e. unsigned less *)
  | Pos  (** non-negative *)
  | Neg  (** negative *)
  | Vc   (** overflow clear *)
  | Vs   (** overflow set *)

type icc = { n : bool; z : bool; v : bool; c : bool }

val icc_zero : icc

val eval : t -> icc -> bool
(** Whether a branch on this condition is taken given the flags. *)

(** Packed flags for the simulator's hot loop (bit 3 = n, bit 2 = z,
    bit 1 = v, bit 0 = c): setting flags writes one immediate integer
    instead of allocating an [icc] record per cc-setting instruction. *)

val packed_zero : int

val pack : icc -> int

val unpack : int -> icc

val eval_packed : t -> int -> bool
(** [eval_packed t bits = eval t (unpack bits)], allocation-free. *)

val negate : t -> t
(** The complementary condition: [eval (negate t) icc = not (eval t icc)]. *)

val to_string : t -> string
(** Branch mnemonic suffix, e.g. [Ge] is ["ge"] as in [bge]. *)

val of_string : string -> t
(** Accepts the synonyms [z]/[nz]/[geu]/[lu].
    @raise Invalid_argument on unknown mnemonics. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val all : t list
