type t =
  | A    (* always *)
  | N    (* never *)
  | E    (* equal: Z *)
  | Ne   (* not equal: !Z *)
  | G    (* signed greater: !(Z | (N ^ V)) *)
  | Ge   (* signed greater or equal: !(N ^ V) *)
  | L    (* signed less: N ^ V *)
  | Le   (* signed less or equal: Z | (N ^ V) *)
  | Gu   (* unsigned greater: !(C | Z) *)
  | Leu  (* unsigned less or equal: C | Z *)
  | Cc   (* carry clear (unsigned >=): !C *)
  | Cs   (* carry set (unsigned <): C *)
  | Pos  (* positive: !N *)
  | Neg  (* negative: N *)
  | Vc   (* overflow clear: !V *)
  | Vs   (* overflow set: V *)

type icc = { n : bool; z : bool; v : bool; c : bool }

let icc_zero = { n = false; z = false; v = false; c = false }

(* Packed flags, used by the simulator's hot loop: updating the flags
   writes one immediate integer instead of allocating a record per
   cc-setting instruction.  Bit 3 = n, bit 2 = z, bit 1 = v, bit 0 = c. *)

let packed_zero = 0

let pack { n; z; v; c } =
  (if n then 8 else 0) lor (if z then 4 else 0) lor (if v then 2 else 0)
  lor (if c then 1 else 0)

let unpack bits =
  {
    n = bits land 8 <> 0;
    z = bits land 4 <> 0;
    v = bits land 2 <> 0;
    c = bits land 1 <> 0;
  }

let eval_packed t bits =
  match t with
  | A -> true
  | N -> false
  | E -> bits land 4 <> 0
  | Ne -> bits land 4 = 0
  | G -> not (bits land 4 <> 0 || (bits land 8 <> 0) <> (bits land 2 <> 0))
  | Ge -> (bits land 8 <> 0) = (bits land 2 <> 0)
  | L -> (bits land 8 <> 0) <> (bits land 2 <> 0)
  | Le -> bits land 4 <> 0 || (bits land 8 <> 0) <> (bits land 2 <> 0)
  | Gu -> bits land 5 = 0
  | Leu -> bits land 5 <> 0
  | Cc -> bits land 1 = 0
  | Cs -> bits land 1 <> 0
  | Pos -> bits land 8 = 0
  | Neg -> bits land 8 <> 0
  | Vc -> bits land 2 = 0
  | Vs -> bits land 2 <> 0

let eval t { n; z; v; c } =
  match t with
  | A -> true
  | N -> false
  | E -> z
  | Ne -> not z
  | G -> not (z || n <> v)
  | Ge -> n = v
  | L -> n <> v
  | Le -> z || n <> v
  | Gu -> not (c || z)
  | Leu -> c || z
  | Cc -> not c
  | Cs -> c
  | Pos -> not n
  | Neg -> n
  | Vc -> not v
  | Vs -> v

let negate = function
  | A -> N
  | N -> A
  | E -> Ne
  | Ne -> E
  | G -> Le
  | Le -> G
  | Ge -> L
  | L -> Ge
  | Gu -> Leu
  | Leu -> Gu
  | Cc -> Cs
  | Cs -> Cc
  | Pos -> Neg
  | Neg -> Pos
  | Vc -> Vs
  | Vs -> Vc

let to_string = function
  | A -> "a"
  | N -> "n"
  | E -> "e"
  | Ne -> "ne"
  | G -> "g"
  | Ge -> "ge"
  | L -> "l"
  | Le -> "le"
  | Gu -> "gu"
  | Leu -> "leu"
  | Cc -> "cc"
  | Cs -> "cs"
  | Pos -> "pos"
  | Neg -> "neg"
  | Vc -> "vc"
  | Vs -> "vs"

let of_string = function
  | "a" -> A
  | "n" -> N
  | "e" | "z" -> E
  | "ne" | "nz" -> Ne
  | "g" -> G
  | "ge" -> Ge
  | "l" -> L
  | "le" -> Le
  | "gu" -> Gu
  | "leu" -> Leu
  | "cc" | "geu" -> Cc
  | "cs" | "lu" -> Cs
  | "pos" -> Pos
  | "neg" -> Neg
  | "vc" -> Vc
  | "vs" -> Vs
  | s -> invalid_arg (Printf.sprintf "Cond.of_string: %S" s)

let equal (a : t) b = a = b

let pp ppf t = Fmt.string ppf (to_string t)

let all = [ A; N; E; Ne; G; Ge; L; Le; Gu; Leu; Cc; Cs; Pos; Neg; Vc; Vs ]
