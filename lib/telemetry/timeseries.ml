(* In-run time-series sampling over the telemetry registry.  The
   sampler itself is a closure handed to the interpreter's dispatch
   hook; everything here is bookkeeping around it: reading the metric
   set, pushing samples into the registry's ring, accumulating
   wall-clock counter tracks for the Chrome trace, and rendering the
   windowed-rate summaries.  Nothing wall-clock-dependent ever enters a
   {!Telemetry.report} — samples carry instruction counts only, so
   merged exports stay byte-identical across worker scheduling. *)

type metric = {
  m_name : string;
  m_read : unit -> int;
}

type t = {
  registry : Telemetry.t;
  metrics : metric list;
  every : int;
  clock : unit -> float;
  mutable chrome : (string * float * int) list;  (* reversed *)
  mutable last_insn : int;
}

let default_window = 100_000

let create ?(clock = fun () -> 0.) ?(capacity = 4096) ~every ~registry
    ~metrics () =
  if every < 1 then invalid_arg "Timeseries.create: every must be >= 1";
  Telemetry.set_sample_capacity registry capacity;
  Telemetry.set_sample_meta registry ~every
    ~metrics:(List.map (fun m -> m.m_name) metrics);
  { registry; metrics; every; clock; chrome = []; last_insn = -1 }

let every t = t.every

(* One snapshot.  Monotonic guard: [Session.report] finalizes on every
   call and replay rollbacks move the instruction count backwards, so
   only strictly newer instruction counts produce a sample. *)
let sample t ~insn =
  if insn > t.last_insn then begin
    t.last_insn <- insn;
    let values = List.map (fun m -> (m.m_name, m.m_read ())) t.metrics in
    Telemetry.record_sample t.registry { Telemetry.s_insn = insn; s_values = values };
    let now = t.clock () in
    t.chrome <-
      List.fold_left
        (fun acc (name, v) -> ("ts:" ^ name, now, v) :: acc)
        t.chrome values
  end

let finalize t ~insn = sample t ~insn

let chrome_counters t = List.rev t.chrome

(* --- windowed rate summaries -------------------------------------------------- *)

type summary = {
  ws_metric : string;
  ws_window : int;
  ws_windows : int;
  ws_total : int;
  ws_peak : int;
  ws_peak_window : int;
}

let mean_per_window s =
  if s.ws_windows = 0 then 0. else float_of_int s.ws_total /. float_of_int s.ws_windows

let summarize ?(window = default_window) (r : Telemetry.report) =
  if window < 1 then invalid_arg "Timeseries.summarize: window must be >= 1";
  let samples =
    List.sort
      (fun (a : Telemetry.sample) b -> compare a.s_insn b.s_insn)
      r.Telemetry.r_samples
  in
  match samples with
  | [] -> []
  | _ ->
    let max_insn =
      List.fold_left (fun acc (s : Telemetry.sample) -> max acc s.s_insn) 0 samples
    in
    let nwin = (max_insn / window) + 1 in
    let metric_names =
      if r.Telemetry.r_sample_metrics <> [] then r.Telemetry.r_sample_metrics
      else
        match samples with
        | s :: _ -> List.map fst s.Telemetry.s_values
        | [] -> []
    in
    List.map
      (fun name ->
        (* Boundary value of each window = the last sample that falls
           inside it, carried forward over empty windows. *)
        let bounds = Array.make nwin 0 in
        let seen = Array.make nwin false in
        List.iter
          (fun (s : Telemetry.sample) ->
            match List.assoc_opt name s.s_values with
            | None -> ()
            | Some v ->
              let w = s.s_insn / window in
              if w >= 0 && w < nwin then begin
                bounds.(w) <- v;
                seen.(w) <- true
              end)
          samples;
        let prev = ref 0 in
        for w = 0 to nwin - 1 do
          if not seen.(w) then bounds.(w) <- !prev else prev := bounds.(w)
        done;
        let total = bounds.(nwin - 1) in
        let peak = ref 0 and peak_w = ref 0 in
        let prev = ref 0 in
        Array.iteri
          (fun w v ->
            let d = v - !prev in
            prev := v;
            if d > !peak then begin
              peak := d;
              peak_w := w
            end)
          bounds;
        {
          ws_metric = name;
          ws_window = window;
          ws_windows = nwin;
          ws_total = total;
          ws_peak = !peak;
          ws_peak_window = !peak_w;
        })
      metric_names

(* --- dbp-timeseries/1 JSON ----------------------------------------------------- *)

let schema_version = "dbp-timeseries/1"

let to_json ?window (r : Telemetry.report) =
  let summaries = summarize ?window r in
  let win =
    match window with Some w -> w | None -> default_window
  in
  Export.Obj
    [
      ("schema", Export.Str schema_version);
      ("sample_every", Export.Int r.Telemetry.r_sample_every);
      ( "metrics",
        Export.List
          (List.map (fun m -> Export.Str m) r.Telemetry.r_sample_metrics) );
      ( "samples",
        Export.List
          (List.map
             (fun (s : Telemetry.sample) ->
               Export.Obj
                 [
                   ("insn", Export.Int s.s_insn);
                   ( "values",
                     Export.Obj
                       (List.map (fun (k, v) -> (k, Export.Int v)) s.s_values)
                   );
                 ])
             r.Telemetry.r_samples) );
      ("samples_dropped", Export.Int r.Telemetry.r_samples_dropped);
      ("window_instrs", Export.Int win);
      ( "windows",
        Export.List
          (List.map
             (fun s ->
               Export.Obj
                 [
                   ("metric", Export.Str s.ws_metric);
                   ("windows", Export.Int s.ws_windows);
                   ("total", Export.Int s.ws_total);
                   ("peak", Export.Int s.ws_peak);
                   ("peak_window", Export.Int s.ws_peak_window);
                 ])
             summaries) );
    ]

let to_json_string ?window r = Export.json_to_string ~indent:1 (to_json ?window r)

let summary_text ?window (r : Telemetry.report) =
  let b = Buffer.create 256 in
  let p fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let summaries = summarize ?window r in
  List.iter
    (fun s ->
      p "  %-20s total=%-10d peak/window=%-8d (window %d) windows=%d\n"
        s.ws_metric s.ws_total s.ws_peak s.ws_peak_window s.ws_windows)
    summaries;
  Buffer.contents b
