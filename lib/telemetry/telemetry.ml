(* Metrics + tracing registry.  See the interface for the model; the
   implementation notes here are about cost: every counter lives in a
   preallocated int array, so the bump functions are one bounds-checked
   array increment behind one [enabled] test — cheap enough to sit on
   the interpreter's probe path. *)

type counter =
  | Check_execs
  | Read_check_execs
  | Sym_eliminated_execs
  | Loop_eliminated_execs
  | User_hits
  | Read_hits
  | Internal_hits
  | Unattributed_hits
  | Loop_entries
  | Loop_triggers
  | Patches_inserted
  | Patches_removed
  | Regions_created
  | Regions_deleted
  | Violations
  | Seg_segments_allocated
  | Seg_words_monitored
  | Seg_arena_bytes
  | Sites_total
  | Sites_checked
  | Sites_sym_eliminated
  | Sites_loop_eliminated
  | Patched_check_execs
  | Probe_dispatches
  | Store_hook_dispatches
  | Load_hook_dispatches
  | Trap_dispatches
  (* Checkpoint/replay subsystem (v3). *)
  | Checkpoints_taken
  | Checkpoint_pages_copied
  | Checkpoint_pages_shared
  | Checkpoint_bytes
  | Checkpoint_evictions
  | Restores
  | Replayed_instrs
  (* Hot-path profiler (v4). *)
  | Profiled_instrs
  | Prof_transfers
  (* Time-series sampler / heatmap (v5). *)
  | Store_execs
  | Samples_taken
  (* Service daemon (v6). *)
  | Sessions_open
  | Commands_served
  | Hits_streamed

let all_counters =
  [
    Check_execs; Read_check_execs; Sym_eliminated_execs; Loop_eliminated_execs;
    User_hits; Read_hits; Internal_hits; Unattributed_hits; Loop_entries;
    Loop_triggers; Patches_inserted; Patches_removed; Regions_created;
    Regions_deleted; Violations; Seg_segments_allocated; Seg_words_monitored;
    Seg_arena_bytes; Sites_total; Sites_checked; Sites_sym_eliminated;
    Sites_loop_eliminated; Patched_check_execs; Probe_dispatches;
    Store_hook_dispatches; Load_hook_dispatches; Trap_dispatches;
    Checkpoints_taken; Checkpoint_pages_copied; Checkpoint_pages_shared;
    Checkpoint_bytes; Checkpoint_evictions; Restores; Replayed_instrs;
    Profiled_instrs; Prof_transfers; Store_execs; Samples_taken;
    Sessions_open; Commands_served; Hits_streamed;
  ]

let counter_name = function
  | Check_execs -> "check_execs"
  | Read_check_execs -> "read_check_execs"
  | Sym_eliminated_execs -> "sym_eliminated_execs"
  | Loop_eliminated_execs -> "loop_eliminated_execs"
  | User_hits -> "user_hits"
  | Read_hits -> "read_hits"
  | Internal_hits -> "internal_hits"
  | Unattributed_hits -> "unattributed_hits"
  | Loop_entries -> "loop_entries"
  | Loop_triggers -> "loop_triggers"
  | Patches_inserted -> "patches_inserted"
  | Patches_removed -> "patches_removed"
  | Regions_created -> "regions_created"
  | Regions_deleted -> "regions_deleted"
  | Violations -> "violations"
  | Seg_segments_allocated -> "seg_segments_allocated"
  | Seg_words_monitored -> "seg_words_monitored"
  | Seg_arena_bytes -> "seg_arena_bytes"
  | Sites_total -> "sites_total"
  | Sites_checked -> "sites_checked"
  | Sites_sym_eliminated -> "sites_sym_eliminated"
  | Sites_loop_eliminated -> "sites_loop_eliminated"
  | Patched_check_execs -> "patched_check_execs"
  | Probe_dispatches -> "probe_dispatches"
  | Store_hook_dispatches -> "store_hook_dispatches"
  | Load_hook_dispatches -> "load_hook_dispatches"
  | Trap_dispatches -> "trap_dispatches"
  | Checkpoints_taken -> "checkpoints_taken"
  | Checkpoint_pages_copied -> "checkpoint_pages_copied"
  | Checkpoint_pages_shared -> "checkpoint_pages_shared"
  | Checkpoint_bytes -> "checkpoint_bytes"
  | Checkpoint_evictions -> "checkpoint_evictions"
  | Restores -> "restores"
  | Replayed_instrs -> "replayed_instrs"
  | Profiled_instrs -> "profiled_instrs"
  | Prof_transfers -> "prof_transfers"
  | Store_execs -> "store_execs"
  | Samples_taken -> "samples_taken"
  | Sessions_open -> "sessions_open"
  | Commands_served -> "commands_served"
  | Hits_streamed -> "hits_streamed"

let counter_index =
  let tbl = Hashtbl.create 32 in
  List.iteri (fun i c -> Hashtbl.replace tbl c i) all_counters;
  fun c -> Hashtbl.find tbl c

let counter_of_name =
  let tbl = Hashtbl.create 32 in
  List.iter (fun c -> Hashtbl.replace tbl (counter_name c) c) all_counters;
  fun n -> Hashtbl.find_opt tbl n

let n_counters = List.length all_counters

type typed =
  | Checks_by_type
  | Read_checks_by_type
  | Hits_by_type
  | Read_hits_by_type
  | Cache_misses_by_type

let all_typed =
  [ Checks_by_type; Read_checks_by_type; Hits_by_type; Read_hits_by_type;
    Cache_misses_by_type ]

let typed_name = function
  | Checks_by_type -> "checks_by_type"
  | Read_checks_by_type -> "read_checks_by_type"
  | Hits_by_type -> "hits_by_type"
  | Read_hits_by_type -> "read_hits_by_type"
  | Cache_misses_by_type -> "cache_misses_by_type"

let typed_index = function
  | Checks_by_type -> 0
  | Read_checks_by_type -> 1
  | Hits_by_type -> 2
  | Read_hits_by_type -> 3
  | Cache_misses_by_type -> 4

let typed_of_name = function
  | "checks_by_type" -> Some Checks_by_type
  | "read_checks_by_type" -> Some Read_checks_by_type
  | "hits_by_type" -> Some Hits_by_type
  | "read_hits_by_type" -> Some Read_hits_by_type
  | "cache_misses_by_type" -> Some Cache_misses_by_type
  | _ -> None

let n_typed = List.length all_typed

let n_write_types = 4

let write_type_names = [| "BSS"; "STACK"; "HEAP"; "BSS-VAR" |]

let write_type_name i =
  if i < 0 || i >= n_write_types then
    invalid_arg "Telemetry.write_type_name: bad write-type id"
  else write_type_names.(i)

type access = Write | Read

type event = {
  ev_pc : int;
  ev_addr : int;
  ev_region_lo : int;
  ev_region_hi : int;
  ev_region_kind : string;
  ev_access : access;
  ev_write_type : string;
  ev_insn : int;
}

let site_kind_checked = 0
let site_kind_sym = 1
let site_kind_loop = 2

type sample = {
  s_insn : int;
  s_values : (string * int) list;
}

type t = {
  mutable on : bool;
  scalars : int array;
  typed : int array array;
  mutable site_exec : int array;
  mutable site_hit : int array;
  mutable site_patched : int array;
  mutable site_type : int array;
  mutable site_kind : int array;
  mutable rsite_exec : int array;
  mutable rsite_hit : int array;
  mutable rsite_type : int array;
  mutable ring : event Ring.t;
  mutable sample_ring : sample Ring.t;
  mutable sample_metrics : string list;
  mutable sample_every : int;
  (* Samples dropped before they reached this registry (folded in by
     [absorb] from upstream reports); the ring tracks its own drops. *)
  mutable sample_dropped_extra : int;
  mutable tags : (string * string) list;
}

let create ?(enabled = true) ?(ring_capacity = 0) () =
  {
    on = enabled;
    scalars = Array.make n_counters 0;
    typed = Array.init n_typed (fun _ -> Array.make n_write_types 0);
    site_exec = [||];
    site_hit = [||];
    site_patched = [||];
    site_type = [||];
    site_kind = [||];
    rsite_exec = [||];
    rsite_hit = [||];
    rsite_type = [||];
    ring = Ring.create ~capacity:ring_capacity;
    sample_ring = Ring.create ~capacity:0;
    sample_metrics = [];
    sample_every = 0;
    sample_dropped_extra = 0;
    tags = [];
  }

let enabled t = t.on
let set_enabled t b = t.on <- b

let set_tag t k v =
  t.tags <- (k, v) :: List.remove_assoc k t.tags

let incr t c =
  if t.on then begin
    let i = counter_index c in
    t.scalars.(i) <- t.scalars.(i) + 1
  end

let add t c n =
  if t.on then begin
    let i = counter_index c in
    t.scalars.(i) <- t.scalars.(i) + n
  end

let set t c n = t.scalars.(counter_index c) <- n

let get t c = t.scalars.(counter_index c)

let incr_typed t c wt =
  if t.on then begin
    let a = t.typed.(typed_index c) in
    a.(wt) <- a.(wt) + 1
  end

let get_typed t c = Array.copy t.typed.(typed_index c)

let alloc_sites t spec =
  let n = Array.length spec in
  t.site_exec <- Array.make n 0;
  t.site_hit <- Array.make n 0;
  t.site_patched <- Array.make n 0;
  t.site_type <- Array.map fst spec;
  t.site_kind <- Array.map snd spec

let alloc_read_sites t types =
  let n = Array.length types in
  t.rsite_exec <- Array.make n 0;
  t.rsite_hit <- Array.make n 0;
  t.rsite_type <- Array.copy types

let n_sites t = Array.length t.site_exec
let n_read_sites t = Array.length t.rsite_exec

(* The probe fast path: one test, one increment. *)
let[@inline] bump_site t slot =
  if t.on then t.site_exec.(slot) <- t.site_exec.(slot) + 1

let[@inline] bump_site_hit t slot =
  if t.on then t.site_hit.(slot) <- t.site_hit.(slot) + 1

(* One increment at a patch-stub entry: counts executions of a
   dynamically re-inserted (Kessler-patched) check. *)
let[@inline] bump_site_patched t slot =
  if t.on then t.site_patched.(slot) <- t.site_patched.(slot) + 1

let[@inline] bump_read_site t slot =
  if t.on then t.rsite_exec.(slot) <- t.rsite_exec.(slot) + 1

let[@inline] bump_read_site_hit t slot =
  if t.on then t.rsite_hit.(slot) <- t.rsite_hit.(slot) + 1

let site_exec t slot = t.site_exec.(slot)
let site_hits t slot = t.site_hit.(slot)
let site_patched t slot = t.site_patched.(slot)

let set_ring_capacity t capacity = t.ring <- Ring.create ~capacity

let record_event t ev = if t.on then Ring.push t.ring ev

let events t = Ring.to_list t.ring
let events_dropped t = Ring.dropped t.ring

(* --- time-series samples (v5) ------------------------------------------------ *)

let set_sample_capacity t capacity = t.sample_ring <- Ring.create ~capacity

let set_sample_meta t ~every ~metrics =
  t.sample_every <- every;
  t.sample_metrics <- metrics

let record_sample t s =
  if t.on then begin
    Ring.push t.sample_ring s;
    let i = counter_index Samples_taken in
    t.scalars.(i) <- t.scalars.(i) + 1
  end

let samples t = Ring.to_list t.sample_ring
let samples_dropped t = Ring.dropped t.sample_ring + t.sample_dropped_extra

(* --- reports ----------------------------------------------------------------- *)

let schema_version = "dbp-telemetry/6"

type site_report = {
  sr_site : int;
  sr_write_type : string;
  sr_kind : string;
  sr_exec : int;
  sr_hits : int;
  sr_patched : int;
}

type report = {
  r_schema : string;
  r_tags : (string * string) list;
  r_counters : (string * int) list;
  r_typed : (string * (string * int) list) list;
  r_sites : site_report list;
  r_read_sites : site_report list;
  r_events : event list;
  r_events_dropped : int;
  r_sample_every : int;
  r_sample_metrics : string list;
  r_samples : sample list;
  r_samples_dropped : int;
}

let kind_name k =
  if k = site_kind_sym then "sym"
  else if k = site_kind_loop then "loop"
  else "checked"

let sum = Array.fold_left ( + ) 0

let sum_where pred values tags =
  let acc = ref 0 in
  Array.iteri (fun i v -> if pred tags.(i) then acc := !acc + v) values;
  !acc

let by_type values tags =
  let a = Array.make n_write_types 0 in
  Array.iteri
    (fun i v ->
      let wt = tags.(i) in
      if wt >= 0 && wt < n_write_types then a.(wt) <- a.(wt) + v)
    values;
  a

let count_kind t k =
  sum_where (fun x -> x = k) (Array.map (fun _ -> 1) t.site_kind) t.site_kind

(* Scalar cells plus the components derived from the per-site arrays;
   computed at report/sample time rather than on the bump paths. *)
let derived t c =
  match c with
  | Check_execs -> sum t.site_exec
  | Read_check_execs -> sum t.rsite_exec
  | Sym_eliminated_execs ->
    sum_where (fun k -> k = site_kind_sym) t.site_exec t.site_kind
  | Loop_eliminated_execs ->
    sum_where (fun k -> k = site_kind_loop) t.site_exec t.site_kind
  | Patched_check_execs -> sum t.site_patched
  | Sites_total -> Array.length t.site_exec
  | Sites_checked -> count_kind t site_kind_checked
  | Sites_sym_eliminated -> count_kind t site_kind_sym
  | Sites_loop_eliminated -> count_kind t site_kind_loop
  | _ -> 0

let current t c = get t c + derived t c

let typed_total t c = sum t.typed.(typed_index c)

let report t =
  let counters =
    List.map (fun c -> (counter_name c, current t c)) all_counters
  in
  let derived_typed c =
    match c with
    | Checks_by_type -> by_type t.site_exec t.site_type
    | Read_checks_by_type -> by_type t.rsite_exec t.rsite_type
    | Hits_by_type -> by_type t.site_hit t.site_type
    | Read_hits_by_type -> by_type t.rsite_hit t.rsite_type
    | Cache_misses_by_type -> Array.make n_write_types 0
  in
  let typed =
    List.map
      (fun c ->
        let d = derived_typed c and raw = t.typed.(typed_index c) in
        ( typed_name c,
          List.init n_write_types (fun i ->
              (write_type_names.(i), raw.(i) + d.(i))) ))
      all_typed
  in
  let site i =
    {
      sr_site = i;
      sr_write_type = write_type_name t.site_type.(i);
      sr_kind = kind_name t.site_kind.(i);
      sr_exec = t.site_exec.(i);
      sr_hits = t.site_hit.(i);
      sr_patched = t.site_patched.(i);
    }
  in
  let rsite i =
    {
      sr_site = i;
      sr_write_type = write_type_name t.rsite_type.(i);
      sr_kind = "read";
      sr_exec = t.rsite_exec.(i);
      sr_hits = t.rsite_hit.(i);
      sr_patched = 0;
    }
  in
  {
    r_schema = schema_version;
    r_tags = List.sort (fun (a, _) (b, _) -> String.compare a b) t.tags;
    r_counters = counters;
    r_typed = typed;
    r_sites = List.init (Array.length t.site_exec) site;
    r_read_sites = List.init (Array.length t.rsite_exec) rsite;
    r_events = events t;
    r_events_dropped = events_dropped t;
    r_sample_every = t.sample_every;
    r_sample_metrics = t.sample_metrics;
    r_samples = samples t;
    r_samples_dropped = samples_dropped t;
  }

(* Merge association lists by key, preserving first-seen key order (so
   canonical inputs yield canonical output). *)
let merge_assoc combine lists =
  let order = ref [] and acc = Hashtbl.create 32 in
  List.iter
    (List.iter (fun (k, v) ->
         match Hashtbl.find_opt acc k with
         | None ->
           order := k :: !order;
           Hashtbl.replace acc k v
         | Some v0 -> Hashtbl.replace acc k (combine v0 v)))
    lists;
  List.rev_map (fun k -> (k, Hashtbl.find acc k)) !order

let merge reports =
  let counters = merge_assoc ( + ) (List.map (fun r -> r.r_counters) reports) in
  let typed =
    merge_assoc
      (fun a b -> merge_assoc ( + ) [ a; b ])
      (List.map (fun r -> r.r_typed) reports)
  in
  let tags =
    match reports with
    | [] -> []
    | first :: rest ->
      List.filter
        (fun (k, v) ->
          List.for_all (fun r -> List.assoc_opt k r.r_tags = Some v) rest)
        first.r_tags
  in
  (* Samples survive a merge as the sorted concatenation: sorting by
     (insn, values) gives a canonical multiset order, so the merged
     ring does not depend on which domain produced which sample. *)
  let samples =
    List.concat_map (fun r -> r.r_samples) reports
    |> List.sort (fun a b ->
           match compare a.s_insn b.s_insn with
           | 0 -> compare a.s_values b.s_values
           | c -> c)
  in
  let sample_metrics =
    List.concat_map (fun r -> r.r_sample_metrics) reports
    |> List.fold_left
         (fun acc m -> if List.mem m acc then acc else m :: acc)
         []
    |> List.rev
  in
  let sample_every =
    let everies =
      List.filter_map
        (fun r -> if r.r_sample_every > 0 then Some r.r_sample_every else None)
        reports
    in
    match everies with
    | [] -> 0
    | e :: rest -> if List.for_all (fun x -> x = e) rest then e else 0
  in
  {
    r_schema = schema_version;
    r_tags = tags;
    r_counters = counters;
    r_typed = typed;
    r_sites = [];
    r_read_sites = [];
    r_events = [];
    r_events_dropped =
      List.fold_left
        (fun a r -> a + r.r_events_dropped + List.length r.r_events)
        0 reports;
    r_sample_every = sample_every;
    r_sample_metrics = sample_metrics;
    r_samples = samples;
    r_samples_dropped =
      List.fold_left (fun a r -> a + r.r_samples_dropped) 0 reports;
  }

let absorb t r =
  List.iter
    (fun (name, v) ->
      match counter_of_name name with
      | Some c ->
        let i = counter_index c in
        t.scalars.(i) <- t.scalars.(i) + v
      | None -> ())
    r.r_counters;
  List.iter
    (fun (name, cells) ->
      match typed_of_name name with
      | Some c ->
        let a = t.typed.(typed_index c) in
        List.iter
          (fun (wt_name, v) ->
            match
              Array.to_list
                (Array.mapi (fun i n -> (n, i)) write_type_names)
              |> List.assoc_opt wt_name
            with
            | Some i -> a.(i) <- a.(i) + v
            | None -> ())
          cells
      | None -> ())
    r.r_typed;
  (* Sample rings fold like the counters: every retained sample is
     pushed into this registry's ring (its capacity decides further
     drops), upstream drop counts accumulate, and sampler metadata is
     kept when the inputs agree. *)
  List.iter (fun s -> Ring.push t.sample_ring s) r.r_samples;
  t.sample_dropped_extra <- t.sample_dropped_extra + r.r_samples_dropped;
  if t.sample_metrics = [] then t.sample_metrics <- r.r_sample_metrics
  else if r.r_sample_metrics <> [] && r.r_sample_metrics <> t.sample_metrics
  then
    t.sample_metrics <-
      t.sample_metrics
      @ List.filter (fun m -> not (List.mem m t.sample_metrics)) r.r_sample_metrics;
  if t.sample_every = 0 then t.sample_every <- r.r_sample_every
  else if r.r_sample_every > 0 && r.r_sample_every <> t.sample_every then
    t.sample_every <- 0
