(** Analysis-provenance journal for the check-elimination pipeline.

    PR 2's {!Telemetry} registry made the MRS {e runtime} observable;
    this module records {e why} the static pipeline decided what it
    decided.  Every write site in an instrumentation plan gets one
    provenance {!verdict} — the symbolic argument (Wahbe, Lucco &
    Graham §4.2/§4.3) that justified keeping or eliminating its check —
    and the runtime appends Kessler patch-lifecycle and alias-region
    events so a missed watchpoint can be audited after the fact.

    The journal is append-only during analysis and execution, snapshot
    into an immutable {!report} afterwards, and rendered as versioned
    ["dbp-audit/2"] JSON that round-trips through {!of_json_string}.
    All analysis payloads (bound expressions, lattice values, symbol
    table entries) are carried as pre-rendered strings so this library
    stays dependency-free.

    Emission is gated exactly like telemetry: {!create} takes an
    [enabled] thunk (the session passes [Telemetry.enabled registry]),
    and every record is a no-op when it returns [false]. *)

(** {1 Verdicts}

    One per write site.  [Kept] means no analysis could discharge the
    check; the rest name the §4.2/§4.3 argument that eliminated it. *)
type verdict =
  | Kept
      (** no elimination argument applied; check emitted inline *)
  | Sym_matched of { pseudo : string; symtab_entry : string }
      (** §4.2: the store's address expression matched symbol-table
          entry [symtab_entry]; the check moved behind pseudo register
          [pseudo] and is re-inserted on demand by PreMonitor *)
  | Loop_invariant of { loop_id : int; bexpr : string; level : string }
      (** §4.3: the store address is loop-invariant at [level]; one
          pre-header check of [bexpr] covers every iteration *)
  | Loop_range of {
      loop_id : int;
      lo : string;
      hi : string;
      levels : string;
    }
      (** §4.3 Figure 4: the address sweeps [[lo, hi]]; a pre-header
          range check covers the whole sweep ([levels] names the
          lattice levels of the two bounds) *)

val verdict_name : verdict -> string
(** ["kept"] / ["sym_matched"] / ["loop_invariant"] / ["loop_range"]. *)

val all_verdict_names : string list
(** Canonical summary order. *)

(** {1 Journal entries} *)

type site = {
  a_slot : int;  (** telemetry site slot (index into the site arrays) *)
  a_origin : int;  (** address of the original store instruction *)
  a_fn : string;  (** enclosing function *)
  a_write_type : string;  (** BSS / STACK / HEAP / BSS-VAR *)
  a_verdict : verdict;
}

type patch_kind = Patch_inserted | Patch_removed

type patch_event = {
  p_kind : patch_kind;
  p_pseudo : string;  (** pseudo register whose monitoring changed *)
  p_origin : int;  (** patched site address *)
  p_insn : int;  (** machine instruction count at the event *)
}

type region_kind = Region_created | Region_deleted

type region_event = {
  rg_kind : region_kind;
  rg_lo : int;
  rg_hi : int;  (** exclusive *)
  rg_why : string;  (** e.g. ["loop-preheader"] *)
  rg_insn : int;
}

type lattice_binding = {
  lb_fn : string;
  lb_loop : int;
  lb_var : string;  (** SSA variable, pre-rendered *)
  lb_bounds : string;  (** fixpoint lattice value, pre-rendered *)
}

(** Checkpoint/replay lifecycle (v2): one event per journal mutation
    and per time-travel, so a surprising query answer can be traced to
    the checkpoints and re-executions that produced it. *)
type replay_kind =
  | Checkpoint_taken
  | Checkpoint_evicted  (** thinned out of the journal under budget *)
  | State_restored  (** rollback to a checkpoint *)
  | Replay_finished  (** a travel/query re-execution reached its target *)

val replay_kind_name : replay_kind -> string

type replay_event = {
  rp_kind : replay_kind;
  rp_insn : int;  (** instruction count the event refers to *)
  rp_detail : string;  (** pre-rendered payload, e.g. ["pages=12 bytes=49320"] *)
}

(** {1 Journals} *)

type t

val create : ?enabled:(unit -> bool) -> unit -> t
(** A fresh journal.  [enabled] (default: always on) is consulted on
    every emission; pass the telemetry registry's flag to keep audit
    and metrics gated together. *)

val enabled : t -> bool

val set_tag : t -> string -> string -> unit
(** Report metadata (workload, strategy, …), merged like telemetry
    tags. *)

(** {2 Analysis-time emission}

    The optimizers record decisions keyed by the store's {e origin}
    label; {!record_site} later joins slot numbers against them when
    the plan is laid out. *)

val sym_matched : t -> origin:int -> pseudo:string -> symtab_entry:string -> unit

val loop_invariant :
  t -> origin:int -> loop_id:int -> bexpr:string -> level:string -> unit

val loop_range :
  t -> origin:int -> loop_id:int -> lo:string -> hi:string -> levels:string ->
  unit

val lattice : t -> fn:string -> loop_id:int -> var:string -> bounds:string -> unit
(** One SSA variable's bound-lattice value at the §4.3 fixpoint. *)

val record_site :
  t -> slot:int -> origin:int -> fn:string -> write_type:string -> unit
(** Finalize one write site: looks up the decision previously recorded
    for [origin] (default {!Kept}) and appends the {!site} entry. *)

(** {2 Run-time emission} *)

val patch : t -> kind:patch_kind -> pseudo:string -> origin:int -> insn:int -> unit

val region :
  t -> kind:region_kind -> lo:int -> hi:int -> why:string -> insn:int -> unit

val replay : t -> kind:replay_kind -> insn:int -> detail:string -> unit

(** {1 Reports} *)

val schema_version : string
(** ["dbp-audit/2"] — v2 added the [replay] lifecycle events. *)

type report = {
  a_schema : string;
  a_tags : (string * string) list;  (** sorted by key *)
  a_sites : site list;  (** in slot order *)
  a_patches : patch_event list;
  a_regions : region_event list;
  a_lattice : lattice_binding list;
  a_replay : replay_event list;
  a_summary : (string * int) list;
      (** verdict-name [->] site count, canonical order, all four
          present *)
}

val report : t -> report

val summary : t -> (string * int) list
(** Just the verdict counts (cheap; used by the bench harness). *)

val merge_summaries : (string * int) list list -> (string * int) list
(** Pointwise sum in canonical order — commutative, so per-domain
    bench summaries merge deterministically. *)

val find_sites : report -> string -> site list
(** [find_sites r target] resolves an [--explain] query: [target] is
    either an origin address ([0x]-hex or decimal) or a pseudo
    register name from a {!Sym_matched} verdict.  Returns matching
    sites in slot order. *)

val explain : report -> string -> string option
(** Human-readable provenance for {!find_sites}'s matches: the
    verdict, its bound expressions, the loop's lattice derivation and
    any patch events touching the site.  [None] when nothing
    matches. *)

(** {2 JSON} *)

val to_json : report -> Export.json
val of_json : Export.json -> report
(** @raise Export.Parse_error when the value does not match
    {!schema_version}'s layout. *)

val to_json_string : ?indent:int -> report -> string
val of_json_string : string -> report
