(** Fixed-capacity ring buffer for trace events.

    A bounded, allocation-light event store: pushes beyond the capacity
    silently overwrite the oldest entries, so the buffer always holds
    the most recent [capacity] events.  The total number of pushes ever
    made is retained, letting readers compute how many events were
    dropped ([pushed - length]) — the property the wraparound test
    checks. *)

type 'a t

val create : capacity:int -> 'a t
(** A fresh ring.  [capacity = 0] is legal and drops every push.
    @raise Invalid_argument on negative capacity. *)

val capacity : 'a t -> int

val length : 'a t -> int
(** Events currently held: [min pushed capacity]. *)

val pushed : 'a t -> int
(** Total events ever pushed, including overwritten ones. *)

val dropped : 'a t -> int
(** [pushed - length]: events lost to wraparound. *)

val push : 'a t -> 'a -> unit

val clear : 'a t -> unit
(** Forget all events and reset {!pushed} to zero. *)

val to_list : 'a t -> 'a list
(** Retained events, oldest first. *)

val iter : ('a -> unit) -> 'a t -> unit
(** [iter f t] applies [f] to retained events, oldest first. *)
