(** In-run time-series sampling: periodic snapshots of registry
    counters along the instruction-count axis.

    A sampler is armed over a {!Telemetry.t} registry with a metric
    set — named closures reading live counter values — and an interval
    in executed instructions.  The interpreter's dispatch hook calls
    {!sample} every [every]th instruction; each call appends one
    {!Telemetry.sample} (instruction count → metric values) to the
    registry's preallocated sample ring and one point per metric to a
    wall-clock Perfetto counter track ({!chrome_counters}, mergeable
    into the Chrome trace via [Trace.to_chrome_json ~counters]).

    Samples carry instruction counts only — wall-clock time never
    enters a {!Telemetry.report}, so merged exports stay byte-identical
    across [-j] worker scheduling.  The windowed summaries
    ({!summarize}) derive peak/mean rates per fixed instruction window
    from a report after the fact. *)

type metric = {
  m_name : string;          (** stable snake_case series name *)
  m_read : unit -> int;     (** live value, read at each sample *)
}

type t

val create :
  ?clock:(unit -> float) ->
  ?capacity:int ->
  every:int ->
  registry:Telemetry.t ->
  metrics:metric list ->
  unit ->
  t
(** Arm a sampler: replaces [registry]'s sample ring with one of
    [capacity] slots (default 4096) and records the interval/metric-set
    metadata.  [clock] feeds only the Chrome counter tracks and
    defaults to a constant (deterministic exports).
    @raise Invalid_argument when [every < 1]. *)

val every : t -> int

val sample : t -> insn:int -> unit
(** Take one snapshot at instruction count [insn].  Monotonic: calls
    with [insn] not above the last sampled count are no-ops, which
    makes {!finalize} idempotent and keeps replay rollbacks (which move
    the instruction count backwards) from producing phantom samples. *)

val finalize : t -> insn:int -> unit
(** Record the end-of-run sample so the ring's last entry equals the
    final registry values (the conservation property the tests check).
    Safe to call repeatedly. *)

val chrome_counters : t -> (string * float * int) list
(** Accumulated counter-track points [("ts:<metric>", seconds, value)]
    for [Trace.to_chrome_json ~counters]. *)

(** {1 Windowed rate summaries} *)

type summary = {
  ws_metric : string;
  ws_window : int;       (** instructions per window *)
  ws_windows : int;      (** windows covering the sampled run *)
  ws_total : int;        (** final cumulative value *)
  ws_peak : int;         (** largest per-window increment *)
  ws_peak_window : int;  (** index of the peak window *)
}

val default_window : int
(** 100_000 instructions. *)

val summarize : ?window:int -> Telemetry.report -> summary list
(** Per-metric windowed rates derived from a report's sample ring, one
    summary per metric in [r_sample_metrics] order.  Empty when the
    report holds no samples.  @raise Invalid_argument when
    [window < 1]. *)

val mean_per_window : summary -> float
(** [ws_total / ws_windows] (0 with no windows) — presentation only;
    deterministic outputs should print the integer fields. *)

val schema_version : string
(** ["dbp-timeseries/1"]. *)

val to_json : ?window:int -> Telemetry.report -> Export.json
val to_json_string : ?window:int -> Telemetry.report -> string
(** The [dbp-timeseries/1] document: sampling metadata, the full sample
    ring, and the windowed summaries.  Integer-only and derived from
    the report alone, so it is byte-identical across [-j]. *)

val summary_text : ?window:int -> Telemetry.report -> string
(** Aligned integer-only summary lines (one per metric) for stdout. *)
