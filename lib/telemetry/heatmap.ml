(* Address-space heatmap: per-page write/check/hit counters over the
   simulated sparse memory.  The page size comes in as [page_bits]
   (the machine layer passes its own — telemetry takes no dependency
   on it); pages materialize on first touch, so an untouched address
   space costs nothing.  All renders sort by page index, making every
   export deterministic regardless of hash-table iteration order. *)

type cell = {
  mutable writes : int;   (* store instructions landing in the page *)
  mutable checks : int;   (* instrumented check executions *)
  mutable hits : int;     (* monitored-region hits *)
  mutable monitored : bool;
}

type t = {
  page_bits : int;
  pages : (int, cell) Hashtbl.t;
  (* One-entry lookup cache: the recorder sits on the interpreter's
     store path, and consecutive stores overwhelmingly land in the
     same page, so this turns the common case into two loads and a
     compare. *)
  mutable last_page : int;
  mutable last_cell : cell;
}

let dummy_cell () = { writes = 0; checks = 0; hits = 0; monitored = false }

let create ~page_bits () =
  if page_bits < 1 || page_bits > 30 then
    invalid_arg "Heatmap.create: page_bits out of range";
  {
    page_bits;
    pages = Hashtbl.create 64;
    last_page = -1;
    last_cell = dummy_cell ();
  }

let page_bits t = t.page_bits
let page_bytes t = 1 lsl t.page_bits

let cell t addr =
  let page = addr lsr t.page_bits in
  if page = t.last_page then t.last_cell
  else begin
    let c =
      match Hashtbl.find_opt t.pages page with
      | Some c -> c
      | None ->
        let c = dummy_cell () in
        Hashtbl.add t.pages page c;
        c
    in
    t.last_page <- page;
    t.last_cell <- c;
    c
  end

let record_write t addr =
  let c = cell t addr in
  c.writes <- c.writes + 1

let record_check t addr =
  let c = cell t addr in
  c.checks <- c.checks + 1

let record_hit t addr =
  let c = cell t addr in
  c.hits <- c.hits + 1

let mark_monitored t ~lo ~hi =
  if hi >= lo then
    for page = lo lsr t.page_bits to hi lsr t.page_bits do
      let c = cell t (page lsl t.page_bits) in
      c.monitored <- true
    done

let n_pages t = Hashtbl.length t.pages

let fold f t acc =
  (* Sorted page order: the deterministic spine of every render. *)
  Hashtbl.fold (fun page c acc -> (page, c) :: acc) t.pages []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.fold_left (fun acc (page, c) -> f acc page c) acc

let total_writes t = fold (fun acc _ c -> acc + c.writes) t 0
let total_checks t = fold (fun acc _ c -> acc + c.checks) t 0
let total_hits t = fold (fun acc _ c -> acc + c.hits) t 0

let never_fired t =
  fold
    (fun acc page c -> if c.monitored && c.hits = 0 then page :: acc else acc)
    t []
  |> List.rev

(* --- renders ------------------------------------------------------------------- *)

let schema_version = "dbp-heatmap/1"

let to_json t =
  Export.Obj
    [
      ("schema", Export.Str schema_version);
      ("page_bytes", Export.Int (page_bytes t));
      ("pages", Export.Int (n_pages t));
      ("total_writes", Export.Int (total_writes t));
      ("total_checks", Export.Int (total_checks t));
      ("total_hits", Export.Int (total_hits t));
      ( "cells",
        Export.List
          (List.rev
             (fold
                (fun acc page c ->
                  Export.Obj
                    [
                      ("page", Export.Int page);
                      ("addr", Export.Int (page lsl t.page_bits));
                      ("writes", Export.Int c.writes);
                      ("checks", Export.Int c.checks);
                      ("hits", Export.Int c.hits);
                      ("monitored", Export.Bool c.monitored);
                    ]
                  :: acc)
                t [])) );
      ( "never_fired_pages",
        Export.List (List.map (fun p -> Export.Int p) (never_fired t)) );
    ]

let to_json_string t = Export.json_to_string ~indent:1 (to_json t)

let to_text t =
  let b = Buffer.create 512 in
  let p fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  p "heatmap (%s): %d pages of %d bytes, writes=%d checks=%d hits=%d\n"
    schema_version (n_pages t) (page_bytes t) (total_writes t) (total_checks t)
    (total_hits t);
  p "  %-12s %-10s %-10s %-10s %s\n" "page" "writes" "checks" "hits" "flags";
  ignore
    (fold
       (fun () page c ->
         p "  0x%08x   %-10d %-10d %-10d %s%s\n" (page lsl t.page_bits)
           c.writes c.checks c.hits
           (if c.monitored then "monitored" else "")
           (if c.monitored && c.hits = 0 then " never-fired" else ""))
       t ());
  (match never_fired t with
  | [] -> ()
  | pages ->
    p "  monitored pages that never fired: %s\n"
      (String.concat ", "
         (List.map
            (fun page -> Printf.sprintf "0x%08x" (page lsl t.page_bits))
            pages)));
  Buffer.contents b

(* Plain-text PPM (P3): one pixel per touched page in sorted order,
   row-major over a near-square grid.  Channels scale linearly against
   the per-channel maximum: red = writes, green = checks, blue = hits.
   Integer arithmetic only, so the image is byte-stable. *)
let to_ppm t =
  let cells =
    List.rev (fold (fun acc page c -> (page, c) :: acc) t [])
  in
  let n = List.length cells in
  let width =
    let rec grow w = if w * w >= n then w else grow (w + 1) in
    if n = 0 then 1 else grow 1
  in
  let height = if n = 0 then 1 else (n + width - 1) / width in
  let maxw = List.fold_left (fun a (_, c) -> max a c.writes) 0 cells in
  let maxc = List.fold_left (fun a (_, c) -> max a c.checks) 0 cells in
  let maxh = List.fold_left (fun a (_, c) -> max a c.hits) 0 cells in
  let scale v m = if m = 0 then 0 else 255 * v / m in
  let b = Buffer.create (32 + (n * 12)) in
  Buffer.add_string b (Printf.sprintf "P3\n%d %d\n255\n" width height);
  let emitted = ref 0 in
  List.iter
    (fun (_, c) ->
      Buffer.add_string b
        (Printf.sprintf "%d %d %d\n" (scale c.writes maxw)
           (scale c.checks maxc) (scale c.hits maxh));
      incr emitted)
    cells;
  (* Pad the final row so the raster matches the header. *)
  for _ = !emitted + 1 to width * height do
    Buffer.add_string b "0 0 0\n"
  done;
  Buffer.contents b
