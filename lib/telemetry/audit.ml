(* Provenance journal.  Analysis decisions land in a hashtable keyed
   by store origin; [record_site] joins them into the slot-ordered site
   list when the plan is laid out.  Runtime patch/region events are
   plain growing lists (bounded in practice by the number of watch
   toggles and loop entries; the bench harness runs with audit off). *)

type verdict =
  | Kept
  | Sym_matched of { pseudo : string; symtab_entry : string }
  | Loop_invariant of { loop_id : int; bexpr : string; level : string }
  | Loop_range of {
      loop_id : int;
      lo : string;
      hi : string;
      levels : string;
    }

let verdict_name = function
  | Kept -> "kept"
  | Sym_matched _ -> "sym_matched"
  | Loop_invariant _ -> "loop_invariant"
  | Loop_range _ -> "loop_range"

let all_verdict_names = [ "kept"; "sym_matched"; "loop_invariant"; "loop_range" ]

type site = {
  a_slot : int;
  a_origin : int;
  a_fn : string;
  a_write_type : string;
  a_verdict : verdict;
}

type patch_kind = Patch_inserted | Patch_removed

type patch_event = {
  p_kind : patch_kind;
  p_pseudo : string;
  p_origin : int;
  p_insn : int;
}

type region_kind = Region_created | Region_deleted

type region_event = {
  rg_kind : region_kind;
  rg_lo : int;
  rg_hi : int;
  rg_why : string;
  rg_insn : int;
}

type lattice_binding = {
  lb_fn : string;
  lb_loop : int;
  lb_var : string;
  lb_bounds : string;
}

type replay_kind =
  | Checkpoint_taken
  | Checkpoint_evicted
  | State_restored
  | Replay_finished

let replay_kind_name = function
  | Checkpoint_taken -> "checkpoint_taken"
  | Checkpoint_evicted -> "checkpoint_evicted"
  | State_restored -> "state_restored"
  | Replay_finished -> "replay_finished"

type replay_event = {
  rp_kind : replay_kind;
  rp_insn : int;
  rp_detail : string;
}

type t = {
  on : unit -> bool;
  decisions : (int, verdict) Hashtbl.t;  (* origin -> pending verdict *)
  mutable sites : site list;  (* newest first *)
  mutable patches : patch_event list;  (* newest first *)
  mutable regions : region_event list;  (* newest first *)
  mutable lattice : lattice_binding list;  (* newest first *)
  mutable replay : replay_event list;  (* newest first *)
  mutable tags : (string * string) list;
}

let create ?(enabled = fun () -> true) () =
  {
    on = enabled;
    decisions = Hashtbl.create 64;
    sites = [];
    patches = [];
    regions = [];
    lattice = [];
    replay = [];
    tags = [];
  }

let enabled t = t.on ()

let set_tag t k v = t.tags <- (k, v) :: List.remove_assoc k t.tags

let sym_matched t ~origin ~pseudo ~symtab_entry =
  if t.on () then
    Hashtbl.replace t.decisions origin (Sym_matched { pseudo; symtab_entry })

let loop_invariant t ~origin ~loop_id ~bexpr ~level =
  if t.on () then
    Hashtbl.replace t.decisions origin (Loop_invariant { loop_id; bexpr; level })

let loop_range t ~origin ~loop_id ~lo ~hi ~levels =
  if t.on () then
    Hashtbl.replace t.decisions origin (Loop_range { loop_id; lo; hi; levels })

let lattice t ~fn ~loop_id ~var ~bounds =
  if t.on () then
    t.lattice <-
      { lb_fn = fn; lb_loop = loop_id; lb_var = var; lb_bounds = bounds }
      :: t.lattice

let record_site t ~slot ~origin ~fn ~write_type =
  if t.on () then begin
    let verdict =
      match Hashtbl.find_opt t.decisions origin with
      | Some v -> v
      | None -> Kept
    in
    t.sites <-
      { a_slot = slot; a_origin = origin; a_fn = fn; a_write_type = write_type;
        a_verdict = verdict }
      :: t.sites
  end

let patch t ~kind ~pseudo ~origin ~insn =
  if t.on () then
    t.patches <-
      { p_kind = kind; p_pseudo = pseudo; p_origin = origin; p_insn = insn }
      :: t.patches

let region t ~kind ~lo ~hi ~why ~insn =
  if t.on () then
    t.regions <-
      { rg_kind = kind; rg_lo = lo; rg_hi = hi; rg_why = why; rg_insn = insn }
      :: t.regions

let replay t ~kind ~insn ~detail =
  if t.on () then
    t.replay <- { rp_kind = kind; rp_insn = insn; rp_detail = detail } :: t.replay

(* --- reports ----------------------------------------------------------------- *)

let schema_version = "dbp-audit/2"

type report = {
  a_schema : string;
  a_tags : (string * string) list;
  a_sites : site list;
  a_patches : patch_event list;
  a_regions : region_event list;
  a_lattice : lattice_binding list;
  a_replay : replay_event list;
  a_summary : (string * int) list;
}

let summary_of_sites sites =
  List.map
    (fun name ->
      ( name,
        List.length
          (List.filter (fun s -> verdict_name s.a_verdict = name) sites) ))
    all_verdict_names

let summary t = summary_of_sites t.sites

let merge_summaries summaries =
  List.map
    (fun name ->
      ( name,
        List.fold_left
          (fun acc s ->
            acc + Option.value ~default:0 (List.assoc_opt name s))
          0 summaries ))
    all_verdict_names

let report t =
  let sites =
    List.sort (fun a b -> compare a.a_slot b.a_slot) (List.rev t.sites)
  in
  {
    a_schema = schema_version;
    a_tags = List.sort (fun (a, _) (b, _) -> String.compare a b) t.tags;
    a_sites = sites;
    a_patches = List.rev t.patches;
    a_regions = List.rev t.regions;
    a_lattice = List.rev t.lattice;
    a_replay = List.rev t.replay;
    a_summary = summary_of_sites sites;
  }

(* --- explain ------------------------------------------------------------------ *)

(* Only unambiguous numerals count as addresses, so a pseudo register
   that happens to spell a hex digit string (e.g. "c") still resolves
   by name. *)
let parse_addr s =
  let is_hex =
    String.length s > 2 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X')
  in
  let is_dec = s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s in
  if is_hex || is_dec then int_of_string_opt s else None

let site_pseudo s =
  match s.a_verdict with Sym_matched { pseudo; _ } -> Some pseudo | _ -> None

let find_sites r target =
  let by_addr =
    match parse_addr target with
    | Some a -> List.filter (fun s -> s.a_origin = a) r.a_sites
    | None -> []
  in
  if by_addr <> [] then by_addr
  else List.filter (fun s -> site_pseudo s = Some target) r.a_sites

let explain_site r b (s : site) =
  let p fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  p "site %d: store at 0x%x in %s (%s write)\n" s.a_slot s.a_origin s.a_fn
    s.a_write_type;
  (match s.a_verdict with
  | Kept ->
    p "  verdict: kept — no elimination argument applied; the write\n";
    p "  check runs inline at every execution of this store.\n"
  | Sym_matched { pseudo; symtab_entry } ->
    p "  verdict: sym_matched (§4.2) — address expression matched the\n";
    p "  symbol-table entry:\n";
    p "    %s\n" symtab_entry;
    p "  check eliminated; monitoring pseudo %S re-inserts it via a\n" pseudo;
    p "  Kessler patch (PreMonitor).\n"
  | Loop_invariant { loop_id; bexpr; level } ->
    p "  verdict: loop_invariant (§4.3) — address invariant in loop %d\n"
      loop_id;
    p "  at lattice level %s; covered by one pre-header check of\n" level;
    p "    %s\n" bexpr
  | Loop_range { loop_id; lo; hi; levels } ->
    p "  verdict: loop_range (§4.3, Fig. 4) — address sweeps loop %d\n" loop_id;
    p "  over the range (bound levels %s):\n" levels;
    p "    lo = %s\n" lo;
    p "    hi = %s\n" hi);
  let loop_id =
    match s.a_verdict with
    | Loop_invariant { loop_id; _ } | Loop_range { loop_id; _ } -> Some loop_id
    | _ -> None
  in
  (match loop_id with
  | Some id ->
    let bindings =
      List.filter (fun l -> l.lb_loop = id && l.lb_fn = s.a_fn) r.a_lattice
    in
    if bindings <> [] then begin
      p "  lattice fixpoint (loop %d):\n" id;
      List.iter (fun l -> p "    %-12s : %s\n" l.lb_var l.lb_bounds) bindings
    end
  | None -> ());
  let patches = List.filter (fun e -> e.p_origin = s.a_origin) r.a_patches in
  if patches <> [] then begin
    p "  patch history:\n";
    List.iter
      (fun e ->
        p "    insn %-10d %s (pseudo %s)\n" e.p_insn
          (match e.p_kind with
          | Patch_inserted -> "check re-inserted"
          | Patch_removed -> "check removed")
          e.p_pseudo)
      patches
  end

let explain r target =
  match find_sites r target with
  | [] -> None
  | sites ->
    let b = Buffer.create 256 in
    List.iteri
      (fun i s ->
        if i > 0 then Buffer.add_char b '\n';
        explain_site r b s)
      sites;
    Some (Buffer.contents b)

(* --- json --------------------------------------------------------------------- *)

open Export

let verdict_to_json = function
  | Kept -> Obj [ ("verdict", Str "kept") ]
  | Sym_matched { pseudo; symtab_entry } ->
    Obj
      [
        ("verdict", Str "sym_matched");
        ("pseudo", Str pseudo);
        ("symtab_entry", Str symtab_entry);
      ]
  | Loop_invariant { loop_id; bexpr; level } ->
    Obj
      [
        ("verdict", Str "loop_invariant");
        ("loop", Int loop_id);
        ("bexpr", Str bexpr);
        ("level", Str level);
      ]
  | Loop_range { loop_id; lo; hi; levels } ->
    Obj
      [
        ("verdict", Str "loop_range");
        ("loop", Int loop_id);
        ("lo", Str lo);
        ("hi", Str hi);
        ("levels", Str levels);
      ]

let get_field name fields =
  match List.assoc_opt name fields with
  | Some v -> v
  | None -> raise (Parse_error ("missing field " ^ name))

let as_int = function
  | Int n -> n
  | _ -> raise (Parse_error "expected integer")

let as_str = function
  | Str s -> s
  | _ -> raise (Parse_error "expected string")

let as_obj = function
  | Obj kvs -> kvs
  | _ -> raise (Parse_error "expected object")

let as_list = function
  | List xs -> xs
  | _ -> raise (Parse_error "expected array")

let verdict_of_json v =
  let f = as_obj v in
  match as_str (get_field "verdict" f) with
  | "kept" -> Kept
  | "sym_matched" ->
    Sym_matched
      {
        pseudo = as_str (get_field "pseudo" f);
        symtab_entry = as_str (get_field "symtab_entry" f);
      }
  | "loop_invariant" ->
    Loop_invariant
      {
        loop_id = as_int (get_field "loop" f);
        bexpr = as_str (get_field "bexpr" f);
        level = as_str (get_field "level" f);
      }
  | "loop_range" ->
    Loop_range
      {
        loop_id = as_int (get_field "loop" f);
        lo = as_str (get_field "lo" f);
        hi = as_str (get_field "hi" f);
        levels = as_str (get_field "levels" f);
      }
  | s -> raise (Parse_error ("bad verdict " ^ s))

let site_to_json s =
  Obj
    [
      ("slot", Int s.a_slot);
      ("origin", Int s.a_origin);
      ("fn", Str s.a_fn);
      ("write_type", Str s.a_write_type);
      ("provenance", verdict_to_json s.a_verdict);
    ]

let site_of_json v =
  let f = as_obj v in
  {
    a_slot = as_int (get_field "slot" f);
    a_origin = as_int (get_field "origin" f);
    a_fn = as_str (get_field "fn" f);
    a_write_type = as_str (get_field "write_type" f);
    a_verdict = verdict_of_json (get_field "provenance" f);
  }

let patch_to_json e =
  Obj
    [
      ( "event",
        Str
          (match e.p_kind with
          | Patch_inserted -> "patch_inserted"
          | Patch_removed -> "patch_removed") );
      ("pseudo", Str e.p_pseudo);
      ("origin", Int e.p_origin);
      ("insn", Int e.p_insn);
    ]

let patch_of_json v =
  let f = as_obj v in
  {
    p_kind =
      (match as_str (get_field "event" f) with
      | "patch_inserted" -> Patch_inserted
      | "patch_removed" -> Patch_removed
      | s -> raise (Parse_error ("bad patch event " ^ s)));
    p_pseudo = as_str (get_field "pseudo" f);
    p_origin = as_int (get_field "origin" f);
    p_insn = as_int (get_field "insn" f);
  }

let region_to_json e =
  Obj
    [
      ( "event",
        Str
          (match e.rg_kind with
          | Region_created -> "region_created"
          | Region_deleted -> "region_deleted") );
      ("lo", Int e.rg_lo);
      ("hi", Int e.rg_hi);
      ("why", Str e.rg_why);
      ("insn", Int e.rg_insn);
    ]

let region_of_json v =
  let f = as_obj v in
  {
    rg_kind =
      (match as_str (get_field "event" f) with
      | "region_created" -> Region_created
      | "region_deleted" -> Region_deleted
      | s -> raise (Parse_error ("bad region event " ^ s)));
    rg_lo = as_int (get_field "lo" f);
    rg_hi = as_int (get_field "hi" f);
    rg_why = as_str (get_field "why" f);
    rg_insn = as_int (get_field "insn" f);
  }

let lattice_to_json l =
  Obj
    [
      ("fn", Str l.lb_fn);
      ("loop", Int l.lb_loop);
      ("var", Str l.lb_var);
      ("bounds", Str l.lb_bounds);
    ]

let lattice_of_json v =
  let f = as_obj v in
  {
    lb_fn = as_str (get_field "fn" f);
    lb_loop = as_int (get_field "loop" f);
    lb_var = as_str (get_field "var" f);
    lb_bounds = as_str (get_field "bounds" f);
  }

let replay_to_json e =
  Obj
    [
      ("event", Str (replay_kind_name e.rp_kind));
      ("insn", Int e.rp_insn);
      ("detail", Str e.rp_detail);
    ]

let replay_of_json v =
  let f = as_obj v in
  {
    rp_kind =
      (match as_str (get_field "event" f) with
      | "checkpoint_taken" -> Checkpoint_taken
      | "checkpoint_evicted" -> Checkpoint_evicted
      | "state_restored" -> State_restored
      | "replay_finished" -> Replay_finished
      | s -> raise (Parse_error ("bad replay event " ^ s)));
    rp_insn = as_int (get_field "insn" f);
    rp_detail = as_str (get_field "detail" f);
  }

let to_json r =
  Obj
    [
      ("schema", Str r.a_schema);
      ("tags", Obj (List.map (fun (k, v) -> (k, Str v)) r.a_tags));
      ("summary", Obj (List.map (fun (k, v) -> (k, Int v)) r.a_summary));
      ("sites", List (List.map site_to_json r.a_sites));
      ("patches", List (List.map patch_to_json r.a_patches));
      ("regions", List (List.map region_to_json r.a_regions));
      ("lattice", List (List.map lattice_to_json r.a_lattice));
      ("replay", List (List.map replay_to_json r.a_replay));
    ]

let of_json v =
  let f = as_obj v in
  let schema = as_str (get_field "schema" f) in
  if schema <> schema_version then
    raise (Parse_error ("unsupported audit schema " ^ schema));
  {
    a_schema = schema;
    a_tags = List.map (fun (k, v) -> (k, as_str v)) (as_obj (get_field "tags" f));
    a_summary =
      List.map (fun (k, v) -> (k, as_int v)) (as_obj (get_field "summary" f));
    a_sites = List.map site_of_json (as_list (get_field "sites" f));
    a_patches = List.map patch_of_json (as_list (get_field "patches" f));
    a_regions = List.map region_of_json (as_list (get_field "regions" f));
    a_lattice = List.map lattice_of_json (as_list (get_field "lattice" f));
    a_replay = List.map replay_of_json (as_list (get_field "replay" f));
  }

let to_json_string ?indent r = json_to_string ?indent (to_json r)
let of_json_string s = of_json (json_of_string s)
