(** Rendering of telemetry {!Telemetry.report} snapshots.

    Three formats: human-readable text (for [dbreak --stats] and the
    bench telemetry table), versioned JSON (embedded in the bench
    [--json] output and [BENCH_*.json] snapshots), and Prometheus-style
    exposition text ([dbreak --metrics FILE]).

    The JSON side is a self-contained mini JSON library (the repository
    takes no external dependencies): objects preserve key order, so a
    report survives [to_json] → [print] → [parse] → [of_json]
    unchanged — the round-trip property the test suite checks. *)

(** {1 Minimal JSON} *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Str of string
  | List of json list
  | Obj of (string * json) list  (** key order is significant *)

exception Parse_error of string

val json_to_string : ?indent:int -> json -> string
(** [indent] > 0 pretty-prints with that step; default compact. *)

val json_of_string : string -> json
(** @raise Parse_error on malformed input.  Accepts the subset this
    module emits (no floats, no unicode escapes beyond [\uXXXX] of
    ASCII). *)

(** {1 Report renderers} *)

val to_json : Telemetry.report -> json

val of_json : json -> Telemetry.report
(** @raise Parse_error when the value does not match
    {!Telemetry.schema_version}'s layout. *)

val to_json_string : ?indent:int -> Telemetry.report -> string
val of_json_string : string -> Telemetry.report

val to_prometheus : Telemetry.report -> string
(** Prometheus exposition text: one family per scalar counter,
    write-type-keyed counters with a [write_type] label, per-site
    counters with [site]/[write_type]/[kind] labels, and the v5
    time-series families ([dbp_timeseries_interval_instrs],
    [dbp_timeseries_samples_retained]/[_dropped] and one
    [dbp_timeseries_last{metric="…"}] gauge per sampled metric).
    Report tags become labels on every line.  Each family is announced
    by [# HELP]/[# TYPE] lines and emits its samples contiguously, per
    the exposition format. *)

val to_text : Telemetry.report -> string
(** Aligned human-readable summary: tags, non-zero counters, write-type
    breakdowns, hot sites and the retained trace events. *)
