(** Zero-dependency metrics and tracing registry for the MRS stack.

    A registry is a set of preallocated integer counters — scalar
    counters, write-type-keyed counters (4-wide arrays indexed by the
    BSS/STACK/HEAP/BSS-VAR write-type id), and per-check-site
    execution/hit arrays sized at instrument time — plus a fixed-size
    ring buffer of monitor-hit events.  Every bump is a single array
    increment guarded by the registry's [enabled] flag, mirroring the
    paper's reserved {e disabled} register: with telemetry off, the
    instrumented fast paths pay one boolean test and nothing else.

    Reports ({!report}) are immutable snapshots rendered by {!Export}
    as human text, versioned JSON ({!schema_version}) or
    Prometheus-style metrics.  Reports from independent registries
    (e.g. one per benchmark worker domain) merge deterministically:
    counter addition is commutative, so a merged report does not depend
    on domain scheduling. *)

(** {1 Counters} *)

type counter =
  | Check_execs           (** dynamic write-check site executions *)
  | Read_check_execs      (** dynamic read-check site executions (§5) *)
  | Sym_eliminated_execs  (** executions of symbol-eliminated sites (§4.2) *)
  | Loop_eliminated_execs (** executions of loop-eliminated sites (§4.3) *)
  | User_hits
  | Read_hits             (** subset of [User_hits] raised by read checks *)
  | Internal_hits
  | Unattributed_hits     (** hits whose pc matched no known check site *)
  | Loop_entries
  | Loop_triggers
  | Patches_inserted
  | Patches_removed
  | Regions_created
  | Regions_deleted
  | Violations
  | Seg_segments_allocated  (** segmented-bitmap segments ever allocated *)
  | Seg_words_monitored     (** occupancy snapshot: monitored words *)
  | Seg_arena_bytes         (** segment-arena bytes in use *)
  | Sites_total             (** static: write sites in the plan *)
  | Sites_checked
  | Sites_sym_eliminated
  | Sites_loop_eliminated
  | Patched_check_execs     (** executions of checks re-inserted by a
                                Kessler patch (PreMonitor) *)
  | Probe_dispatches        (** interpreter probe invocations *)
  | Store_hook_dispatches
  | Load_hook_dispatches
  | Trap_dispatches
  | Checkpoints_taken       (** COW checkpoints captured (v3) *)
  | Checkpoint_pages_copied (** pages physically captured (COW deltas) *)
  | Checkpoint_pages_shared (** pages shared with the previous checkpoint *)
  | Checkpoint_bytes        (** attributed checkpoint bytes at capture *)
  | Checkpoint_evictions    (** journal entries thinned under budget *)
  | Restores                (** checkpoint rollbacks performed *)
  | Replayed_instrs         (** instructions re-executed by travels/queries *)
  | Profiled_instrs         (** instructions seen by the hot-path profiler (v4) *)
  | Prof_transfers          (** profiler call/return transfer events *)
  | Store_execs             (** store instructions executed (v5 gauge, set at
                                report time from the interpreter's stats; the
                                heatmap conservation denominator) *)
  | Samples_taken           (** time-series samples recorded (v5) *)
  | Sessions_open           (** daemon gauge: live debug sessions, set at
                                report time (v6) *)
  | Commands_served         (** daemon: wire commands dispatched (v6) *)
  | Hits_streamed           (** daemon: async hit events streamed (v6) *)

val all_counters : counter list
(** Canonical order used by every report and export format. *)

val counter_name : counter -> string
(** Stable snake_case identifier, e.g. ["user_hits"]. *)

val counter_of_name : string -> counter option

(** Write-type-keyed counters; each holds one slot per write-type id
    0–3 ({!write_type_name}). *)
type typed =
  | Checks_by_type
  | Read_checks_by_type
  | Hits_by_type
  | Read_hits_by_type
  | Cache_misses_by_type  (** segment-cache misses (§3.1) *)

val all_typed : typed list
val typed_name : typed -> string
val typed_of_name : string -> typed option

val n_write_types : int
(** 4: BSS, STACK, HEAP, BSS-VAR (§3.1). *)

val write_type_name : int -> string
(** @raise Invalid_argument outside [0, n_write_types). *)

(** {1 Hit-trace events} *)

type access = Write | Read

type event = {
  ev_pc : int;
  ev_addr : int;
  ev_region_lo : int;
  ev_region_hi : int;
  ev_region_kind : string;  (** ["user"] or ["internal"] *)
  ev_access : access;
  ev_write_type : string;   (** [""] when unattributed *)
  ev_insn : int;            (** instruction count at the hit *)
}

(** {1 Registries} *)

type t

val create : ?enabled:bool -> ?ring_capacity:int -> unit -> t
(** A fresh registry; [ring_capacity] defaults to [0] (tracing off,
    pushes only counted). *)

val enabled : t -> bool

val set_enabled : t -> bool -> unit
(** The global disabled flag: with [false], every bump and event record
    is a no-op (one boolean test). *)

val set_tag : t -> string -> string -> unit
(** Attach report metadata (workload, strategy, …); keys are unique and
    reported in sorted order. *)

val incr : t -> counter -> unit
val add : t -> counter -> int -> unit

val set : t -> counter -> int -> unit
(** Unconditional (ignores [enabled]) — for snapshot gauges like
    {!Seg_words_monitored} written once at report time. *)

val get : t -> counter -> int
(** The raw scalar cell; derived components (per-site sums) are folded
    in by {!report}, not here. *)

val current : t -> counter -> int
(** Live value as {!report} would publish it: the scalar cell plus the
    derived per-site components.  This is what the time-series sampler
    snapshots mid-run. *)

val incr_typed : t -> typed -> int -> unit
(** [incr_typed t c wt] bumps write-type [wt]'s slot of [c]. *)

val get_typed : t -> typed -> int array
(** Copy of the raw 4-wide array. *)

val typed_total : t -> typed -> int
(** Live sum over the 4 write-type slots (raw cells only). *)

(** {2 Per-site arrays (sized at instrument time)} *)

val site_kind_checked : int
val site_kind_sym : int
val site_kind_loop : int

val alloc_sites : t -> (int * int) array -> unit
(** [alloc_sites t spec] sizes the write-site arrays: slot [i] has
    [(write_type_id, site_kind)] [spec.(i)].  Resets previous site
    counts. *)

val alloc_read_sites : t -> int array -> unit
(** Same for read sites; the spec holds write-type ids. *)

val n_sites : t -> int
val n_read_sites : t -> int

val bump_site : t -> int -> unit
(** One increment on the check fast path; no-op when disabled. *)

val bump_site_hit : t -> int -> unit

val bump_site_patched : t -> int -> unit
(** One increment at a patch-stub entry: counts executions of an
    eliminated site's check after PreMonitor re-inserted it (Kessler
    patch).  Always [<= site_exec] for the same slot. *)

val bump_read_site : t -> int -> unit
val bump_read_site_hit : t -> int -> unit

val site_exec : t -> int -> int
val site_hits : t -> int -> int
val site_patched : t -> int -> int

(** {2 Tracing} *)

val set_ring_capacity : t -> int -> unit
(** Replace the ring with a fresh one of the given capacity. *)

val record_event : t -> event -> unit
val events : t -> event list
val events_dropped : t -> int

(** {2 Time-series samples (v5)}

    A sample is one snapshot of a fixed set of counter values, taken
    every [sample_every] executed instructions by the dispatch-loop
    sampler.  Samples live in their own preallocated ring (capacity 0 =
    sampling off, pushes only counted), and survive {!merge} as a
    sorted concatenation — the canonical multiset order that makes
    cross-domain merges deterministic. *)

type sample = {
  s_insn : int;                   (** instruction count at the snapshot *)
  s_values : (string * int) list; (** metric name → live counter value *)
}

val set_sample_capacity : t -> int -> unit
(** Replace the sample ring with a fresh one of the given capacity. *)

val set_sample_meta : t -> every:int -> metrics:string list -> unit
(** Record the sampling interval and metric-name set published in
    reports ([every = 0] means unset/mixed). *)

val record_sample : t -> sample -> unit
(** Push a sample (and bump {!Samples_taken}); no-op when disabled. *)

val samples : t -> sample list
val samples_dropped : t -> int

(** {1 Reports} *)

val schema_version : string
(** ["dbp-telemetry/6"] — bumped on any layout change (v2 added the
    per-site [patched] field and the [patched_check_execs] counter; v3
    the checkpoint/replay counters [checkpoints_taken],
    [checkpoint_pages_copied]/[_shared], [checkpoint_bytes],
    [checkpoint_evictions], [restores] and [replayed_instrs]; v4 the
    profiler counters [profiled_instrs]/[prof_transfers]; v5 the
    time-series sample ring [samples]/[sample_every]/[sample_metrics]/
    [samples_dropped] and the [store_execs]/[samples_taken] counters;
    v6 the service-daemon gauges [sessions_open]/[commands_served]/
    [hits_streamed]). *)

type site_report = {
  sr_site : int;
  sr_write_type : string;
  sr_kind : string;  (** ["checked"] / ["sym"] / ["loop"] / ["read"] *)
  sr_exec : int;
  sr_hits : int;
  sr_patched : int;  (** executions while a patch re-inserted the check *)
}

type report = {
  r_schema : string;
  r_tags : (string * string) list;            (** sorted by key *)
  r_counters : (string * int) list;           (** canonical order *)
  r_typed : (string * (string * int) list) list;
  r_sites : site_report list;
  r_read_sites : site_report list;
  r_events : event list;
  r_events_dropped : int;
  r_sample_every : int;           (** 0 when sampling was off or mixed *)
  r_sample_metrics : string list; (** metric-name order within samples *)
  r_samples : sample list;
  r_samples_dropped : int;
}

val report : t -> report
(** Snapshot: scalar cells plus the derived per-site sums (total and
    eliminated check executions, hits by write type, static site
    counts). *)

val merge : report list -> report
(** Deterministic aggregate: counters and typed counters sum pointwise
    (by name, first-seen order — canonical when every input is
    canonical); tags keep only the key/value pairs common to all
    inputs; per-site detail and events are dropped (their totals
    survive in the counters); [r_events_dropped] adds every input's
    retained and dropped events.  Samples are concatenated then sorted
    by [(s_insn, s_values)] (the canonical multiset order), metric
    names merge in first-seen order, [r_sample_every] is kept only when
    every sampling input agrees, and drop counts sum.  [merge []] is an
    empty report. *)

val absorb : t -> report -> unit
(** Fold a report's counters into this registry's scalar cells (the
    per-domain sink used by the benchmark pool), push its retained
    samples into this registry's sample ring, and accumulate its sample
    drop count.  Unknown counter names are ignored.  Ignores
    [enabled]. *)
