(* Fixed-capacity ring buffer.

   Represented as an option array plus a monotone push counter; the
   write cursor is [pushed mod capacity].  [None] marks never-written
   slots, so [to_list] needs no separate validity bookkeeping.  The
   [Some] boxing costs one allocation per push, which only happens on
   monitor hits — never on the interpreter fast path. *)

type 'a t = {
  mutable slots : 'a option array;
  mutable pushed : int;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Ring.create: negative capacity";
  { slots = Array.make capacity None; pushed = 0 }

let capacity t = Array.length t.slots

let length t = min t.pushed (Array.length t.slots)

let pushed t = t.pushed

let dropped t = t.pushed - length t

let push t x =
  let cap = Array.length t.slots in
  if cap > 0 then t.slots.(t.pushed mod cap) <- Some x;
  (* Even a zero-capacity ring counts pushes: the "how many events did
     I miss" question stays answerable with tracing sized off. *)
  t.pushed <- t.pushed + 1

let clear t =
  Array.fill t.slots 0 (Array.length t.slots) None;
  t.pushed <- 0

let to_list t =
  let cap = Array.length t.slots in
  if cap = 0 || t.pushed = 0 then []
  else begin
    let n = length t in
    let first = if t.pushed <= cap then 0 else t.pushed mod cap in
    List.init n (fun i ->
        match t.slots.((first + i) mod cap) with
        | Some x -> x
        | None -> assert false)
  end

let iter f t = List.iter f (to_list t)
