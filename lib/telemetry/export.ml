(* Report rendering: text, JSON, Prometheus.  The JSON printer/parser
   is deliberately tiny — just the subset the telemetry schema needs —
   so the library stays dependency-free. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Str of string
  | List of json list
  | Obj of (string * json) list

exception Parse_error of string

(* --- printing ----------------------------------------------------------------- *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_to_string ?(indent = 0) v =
  let b = Buffer.create 256 in
  let pad depth =
    if indent > 0 then begin
      Buffer.add_char b '\n';
      Buffer.add_string b (String.make (depth * indent) ' ')
    end
  in
  let rec go depth = function
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (if x then "true" else "false")
    | Int n -> Buffer.add_string b (string_of_int n)
    | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
    | List [] -> Buffer.add_string b "[]"
    | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          pad (depth + 1);
          go (depth + 1) x)
        xs;
      pad depth;
      Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_char b ',';
          pad (depth + 1);
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b (if indent > 0 then "\": " else "\":");
          go (depth + 1) x)
        kvs;
      pad depth;
      Buffer.add_char b '}'
  in
  go 0 v;
  Buffer.contents b

(* --- parsing ------------------------------------------------------------------ *)

let json_of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char b '"'; advance ()
             | '\\' -> Buffer.add_char b '\\'; advance ()
             | '/' -> Buffer.add_char b '/'; advance ()
             | 'n' -> Buffer.add_char b '\n'; advance ()
             | 't' -> Buffer.add_char b '\t'; advance ()
             | 'r' -> Buffer.add_char b '\r'; advance ()
             | 'b' -> Buffer.add_char b '\b'; advance ()
             | 'f' -> Buffer.add_char b '\012'; advance ()
             | 'u' ->
               advance ();
               if !pos + 4 > n then fail "truncated \\u escape";
               let hex = String.sub s !pos 4 in
               (match int_of_string_opt ("0x" ^ hex) with
               | Some code when code < 0x80 -> Buffer.add_char b (Char.chr code)
               | Some _ -> fail "non-ASCII \\u escape unsupported"
               | None -> fail "bad \\u escape");
               pos := !pos + 4
             | c -> fail (Printf.sprintf "bad escape \\%c" c));
          go ()
        | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_int () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let rec digits () =
      match peek () with
      | Some ('0' .. '9') ->
        advance ();
        digits ()
      | _ -> ()
    in
    digits ();
    if !pos = start then fail "expected number";
    match int_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> Int v
    | None -> fail "bad integer"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elems (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected , or ]"
        in
        List (elems [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let member () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let rec members acc =
          let kv = member () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members (kv :: acc)
          | Some '}' ->
            advance ();
            List.rev (kv :: acc)
          | _ -> fail "expected , or }"
        in
        Obj (members [])
      end
    | Some ('-' | '0' .. '9') -> parse_int ()
    | Some c -> fail (Printf.sprintf "unexpected %c" c)
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* --- report <-> json ----------------------------------------------------------- *)

open Telemetry

let access_name = function Write -> "write" | Read -> "read"

let access_of_name = function
  | "write" -> Write
  | "read" -> Read
  | s -> raise (Parse_error ("bad access " ^ s))

let event_to_json (e : event) =
  Obj
    [
      ("pc", Int e.ev_pc);
      ("addr", Int e.ev_addr);
      ("region_lo", Int e.ev_region_lo);
      ("region_hi", Int e.ev_region_hi);
      ("region_kind", Str e.ev_region_kind);
      ("access", Str (access_name e.ev_access));
      ("write_type", Str e.ev_write_type);
      ("insn", Int e.ev_insn);
    ]

let sample_to_json (s : sample) =
  Obj
    [
      ("insn", Int s.s_insn);
      ("values", Obj (List.map (fun (k, v) -> (k, Int v)) s.s_values));
    ]

let site_to_json (s : site_report) =
  Obj
    [
      ("site", Int s.sr_site);
      ("write_type", Str s.sr_write_type);
      ("kind", Str s.sr_kind);
      ("exec", Int s.sr_exec);
      ("hits", Int s.sr_hits);
      ("patched", Int s.sr_patched);
    ]

let to_json (r : report) =
  Obj
    [
      ("schema", Str r.r_schema);
      ("tags", Obj (List.map (fun (k, v) -> (k, Str v)) r.r_tags));
      ("counters", Obj (List.map (fun (k, v) -> (k, Int v)) r.r_counters));
      ( "by_write_type",
        Obj
          (List.map
             (fun (k, cells) ->
               (k, Obj (List.map (fun (wt, v) -> (wt, Int v)) cells)))
             r.r_typed) );
      ("sites", List (List.map site_to_json r.r_sites));
      ("read_sites", List (List.map site_to_json r.r_read_sites));
      ("events", List (List.map event_to_json r.r_events));
      ("events_dropped", Int r.r_events_dropped);
      ("sample_every", Int r.r_sample_every);
      ("sample_metrics", List (List.map (fun m -> Str m) r.r_sample_metrics));
      ("samples", List (List.map sample_to_json r.r_samples));
      ("samples_dropped", Int r.r_samples_dropped);
    ]

let get_field name fields =
  match List.assoc_opt name fields with
  | Some v -> v
  | None -> raise (Parse_error ("missing field " ^ name))

let as_int = function
  | Int n -> n
  | _ -> raise (Parse_error "expected integer")

let as_str = function
  | Str s -> s
  | _ -> raise (Parse_error "expected string")

let as_obj = function
  | Obj kvs -> kvs
  | _ -> raise (Parse_error "expected object")

let as_list = function
  | List xs -> xs
  | _ -> raise (Parse_error "expected array")

let event_of_json v =
  let f = as_obj v in
  {
    ev_pc = as_int (get_field "pc" f);
    ev_addr = as_int (get_field "addr" f);
    ev_region_lo = as_int (get_field "region_lo" f);
    ev_region_hi = as_int (get_field "region_hi" f);
    ev_region_kind = as_str (get_field "region_kind" f);
    ev_access = access_of_name (as_str (get_field "access" f));
    ev_write_type = as_str (get_field "write_type" f);
    ev_insn = as_int (get_field "insn" f);
  }

let sample_of_json v =
  let f = as_obj v in
  {
    s_insn = as_int (get_field "insn" f);
    s_values =
      List.map (fun (k, v) -> (k, as_int v)) (as_obj (get_field "values" f));
  }

let site_of_json v =
  let f = as_obj v in
  {
    sr_site = as_int (get_field "site" f);
    sr_write_type = as_str (get_field "write_type" f);
    sr_kind = as_str (get_field "kind" f);
    sr_exec = as_int (get_field "exec" f);
    sr_hits = as_int (get_field "hits" f);
    sr_patched = as_int (get_field "patched" f);
  }

let of_json v =
  let f = as_obj v in
  let schema = as_str (get_field "schema" f) in
  if schema <> schema_version then
    raise (Parse_error ("unsupported telemetry schema " ^ schema));
  {
    r_schema = schema;
    r_tags = List.map (fun (k, v) -> (k, as_str v)) (as_obj (get_field "tags" f));
    r_counters =
      List.map (fun (k, v) -> (k, as_int v)) (as_obj (get_field "counters" f));
    r_typed =
      List.map
        (fun (k, v) -> (k, List.map (fun (wt, n) -> (wt, as_int n)) (as_obj v)))
        (as_obj (get_field "by_write_type" f));
    r_sites = List.map site_of_json (as_list (get_field "sites" f));
    r_read_sites = List.map site_of_json (as_list (get_field "read_sites" f));
    r_events = List.map event_of_json (as_list (get_field "events" f));
    r_events_dropped = as_int (get_field "events_dropped" f);
    r_sample_every = as_int (get_field "sample_every" f);
    r_sample_metrics =
      List.map as_str (as_list (get_field "sample_metrics" f));
    r_samples = List.map sample_of_json (as_list (get_field "samples" f));
    r_samples_dropped = as_int (get_field "samples_dropped" f);
  }

let to_json_string ?indent r = json_to_string ?indent (to_json r)
let of_json_string s = of_json (json_of_string s)

(* --- prometheus ---------------------------------------------------------------- *)

(* Metric and label names: [a-zA-Z0-9_] with letters first; everything
   else maps to '_'. *)
let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    name

let label_string labels =
  match labels with
  | [] -> ""
  | _ ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" (sanitize k) (escape v)) labels)
    ^ "}"

(* Exposition-format families: every family is announced by one HELP
   and one TYPE line and emits all its samples contiguously (the format
   forbids interleaving samples of different families).  Scalar report
   counters that are point-in-time snapshots rather than monotonic
   totals are typed as gauges. *)
let prometheus_gauges =
  [
    "seg_words_monitored"; "seg_arena_bytes"; "sites_total"; "sites_checked";
    "sites_sym_eliminated"; "sites_loop_eliminated";
  ]

let to_prometheus (r : report) =
  let b = Buffer.create 4096 in
  let family name ~help ~typ samples =
    if samples <> [] then begin
      let name = "dbp_" ^ sanitize name in
      Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name help);
      Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name typ);
      List.iter
        (fun (labels, v) ->
          Buffer.add_string b
            (Printf.sprintf "%s%s %d\n" name
               (label_string (r.r_tags @ labels))
               v))
        samples
    end
  in
  Buffer.add_string b (Printf.sprintf "# dbp telemetry %s\n" r.r_schema);
  List.iter
    (fun (k, v) ->
      let typ =
        if List.mem k prometheus_gauges then "gauge" else "counter"
      in
      family k ~help:(Printf.sprintf "Telemetry counter %s." k) ~typ
        [ ([], v) ])
    r.r_counters;
  List.iter
    (fun (k, cells) ->
      family k
        ~help:(Printf.sprintf "Telemetry counter %s keyed by write type." k)
        ~typ:"counter"
        (List.map (fun (wt, v) -> ([ ("write_type", wt) ], v)) cells))
    r.r_typed;
  let site_families prefix what (sites : site_report list) =
    let labels (s : site_report) =
      [
        ("site", string_of_int s.sr_site);
        ("write_type", s.sr_write_type);
        ("kind", s.sr_kind);
      ]
    in
    family (prefix ^ "_exec")
      ~help:(Printf.sprintf "Check executions per %s site." what)
      ~typ:"counter"
      (List.map (fun s -> (labels s, s.sr_exec)) sites);
    family (prefix ^ "_hits")
      ~help:(Printf.sprintf "Monitored-region hits per %s site." what)
      ~typ:"counter"
      (List.map (fun s -> (labels s, s.sr_hits)) sites);
    family (prefix ^ "_patched")
      ~help:
        (Printf.sprintf "Kessler-patched check executions per %s site." what)
      ~typ:"counter"
      (List.filter_map
         (fun (s : site_report) ->
           if s.sr_patched > 0 then Some (labels s, s.sr_patched) else None)
         sites)
  in
  site_families "site" "write" r.r_sites;
  site_families "read_site" "read" r.r_read_sites;
  family "trace_events_retained"
    ~help:"Hit-trace events retained in the ring buffer." ~typ:"gauge"
    [ ([], List.length r.r_events) ];
  family "trace_events_dropped"
    ~help:"Hit-trace events dropped by the ring buffer." ~typ:"counter"
    [ ([], r.r_events_dropped) ];
  (* Time-series sampler families (v5). *)
  family "timeseries_interval_instrs"
    ~help:"Instructions between time-series samples (0 when off)."
    ~typ:"gauge"
    [ ([], r.r_sample_every) ];
  family "timeseries_samples_retained"
    ~help:"Time-series samples retained in the sample ring." ~typ:"gauge"
    [ ([], List.length r.r_samples) ];
  family "timeseries_samples_dropped"
    ~help:"Time-series samples dropped by the sample ring." ~typ:"counter"
    [ ([], r.r_samples_dropped) ];
  (match List.rev r.r_samples with
  | [] -> ()
  | last :: _ ->
    family "timeseries_last"
      ~help:"Most recent time-series sample, one series per metric."
      ~typ:"gauge"
      (([ ("metric", "insn") ], last.s_insn)
      :: List.map (fun (m, v) -> ([ ("metric", m) ], v)) last.s_values));
  Buffer.contents b

(* --- human text ----------------------------------------------------------------- *)

let to_text (r : report) =
  let b = Buffer.create 1024 in
  let p fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  p "telemetry (%s)\n" r.r_schema;
  if r.r_tags <> [] then
    p "  tags: %s\n"
      (String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) r.r_tags));
  p "  counters:\n";
  List.iter
    (fun (k, v) -> if v <> 0 then p "    %-26s %12d\n" k v)
    r.r_counters;
  let typed_nonzero =
    List.filter (fun (_, cells) -> List.exists (fun (_, v) -> v <> 0) cells) r.r_typed
  in
  if typed_nonzero <> [] then begin
    p "  by write type:\n";
    List.iter
      (fun (k, cells) ->
        p "    %-26s %s\n" k
          (String.concat " "
             (List.map (fun (wt, v) -> Printf.sprintf "%s=%d" wt v) cells)))
      typed_nonzero
  end;
  let hot =
    List.filter (fun (s : site_report) -> s.sr_hits > 0) r.r_sites
  in
  if hot <> [] then begin
    p "  sites with hits:\n";
    List.iter
      (fun (s : site_report) ->
        p "    site %-4d %-8s %-8s exec=%-10d hits=%d\n" s.sr_site
          s.sr_write_type s.sr_kind s.sr_exec s.sr_hits)
      hot
  end;
  if r.r_samples <> [] || r.r_samples_dropped > 0 then begin
    p "  samples (%d retained, %d dropped, every %d instrs):\n"
      (List.length r.r_samples) r.r_samples_dropped r.r_sample_every;
    match List.rev r.r_samples with
    | [] -> ()
    | last :: _ ->
      p "    last @ insn %d: %s\n" last.s_insn
        (String.concat " "
           (List.map (fun (m, v) -> Printf.sprintf "%s=%d" m v) last.s_values))
  end;
  if r.r_events <> [] || r.r_events_dropped > 0 then begin
    p "  trace (%d retained, %d dropped):\n" (List.length r.r_events)
      r.r_events_dropped;
    List.iter
      (fun (e : event) ->
        p "    insn %-10d %s 0x%08x pc 0x%x %s region [0x%x,0x%x] %s\n"
          e.ev_insn
          (match e.ev_access with Write -> "W" | Read -> "R")
          e.ev_addr e.ev_pc e.ev_region_kind e.ev_region_lo e.ev_region_hi
          e.ev_write_type)
      r.r_events
  end;
  Buffer.contents b
