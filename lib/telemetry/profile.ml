(* Hot-path profiler: basic-block discovery over a machine-neutral
   instruction classification, direct-indexed exec/taken counter arrays
   bumped by the interpreter, and a shadow call stack fed by transfer
   events.  See profile.mli for the cost contract. *)

let kind_plain = 0
let kind_branch = 1
let kind_call = 2
let kind_ret = 3

let schema_version = "dbp-profile/1"

(* Call-tree node: one per distinct call path, keyed by function id.
   Self counts accumulate here so the folded export reads paths off the
   tree instead of materializing strings per transfer. *)
type node = {
  n_fn : int;
  n_parent : node option;
  n_children : (int, node) Hashtbl.t;
  mutable n_self : int;
  (* Last child fetched; loops calling the same callee repeatedly hit
     this instead of the hashtable. *)
  mutable n_cache : node option;
}

type t = {
  text_base : int;
  info : (int * int) array;        (* (kind, static target idx or -1) *)
  exec : int array;
  taken : int array;
  block_of : int array;            (* insn idx -> block id *)
  block_lo : int array;            (* block id -> leader idx *)
  block_hi : int array;            (* block id -> last idx (inclusive) *)
  (* Function table; grows when an unknown call target is entered. *)
  mutable fn_name : string array;
  mutable nfns : int;
  fn_by_addr : (int, int) Hashtbl.t;
  static_fns : (int * int) array;  (* (entry addr, id), sorted, static *)
  mutable fn_calls : int array;
  mutable fn_excl_i : int array;
  mutable fn_excl_c : int array;
  mutable fn_incl_i : int array;
  mutable fn_incl_c : int array;
  mutable fn_depth : int array;    (* live recursion depth per fn *)
  (* Shadow stack (parallel arrays, frame 0 = entry function). *)
  mutable st_fn : int array;
  mutable st_entry_i : int array;
  mutable st_entry_c : int array;
  mutable st_node : node array;
  mutable depth : int;
  root : node;
  mutable cur : node;
  mutable last_i : int;            (* machine totals at last flush *)
  mutable last_c : int;
  mutable ntransfers : int;
  (* Call-target memo: the same site (a loop around one call) resolves
     its function id without touching [fn_by_addr]. *)
  mutable last_call_pc : int;
  mutable last_call_fn : int;
  (* Perfetto counter sampling. *)
  clock : unit -> float;
  sample_every : int;
  mutable next_sample : int;
  mutable samples : (float * int * int * int) list;  (* newest first *)
}

let exec_array t = t.exec

(* [exec] slots are packed: count in the bits above the interpreter's
   two kind bits (see [exec_array]'s doc), so counts decode as [lsr 2]. *)
let exec_count t i = t.exec.(i) lsr 2
let profiled_instrs t = Array.fold_left (fun acc v -> acc + (v lsr 2)) 0 t.exec
let taken_array t = t.taken
let transfers t = t.ntransfers

(* ---------- construction ---------- *)

let mk_node fn parent =
  { n_fn = fn; n_parent = parent; n_children = Hashtbl.create 4; n_self = 0;
    n_cache = None }

let grow a len init =
  if Array.length a >= len then a
  else begin
    let b = Array.make (max len (2 * Array.length a + 8)) init in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

let register_fn t addr name =
  match Hashtbl.find_opt t.fn_by_addr addr with
  | Some id -> id
  | None ->
    let id = t.nfns in
    t.fn_name <- grow t.fn_name (id + 1) "";
    t.fn_calls <- grow t.fn_calls (id + 1) 0;
    t.fn_excl_i <- grow t.fn_excl_i (id + 1) 0;
    t.fn_excl_c <- grow t.fn_excl_c (id + 1) 0;
    t.fn_incl_i <- grow t.fn_incl_i (id + 1) 0;
    t.fn_incl_c <- grow t.fn_incl_c (id + 1) 0;
    t.fn_depth <- grow t.fn_depth (id + 1) 0;
    t.fn_name.(id) <- name;
    t.nfns <- id + 1;
    Hashtbl.add t.fn_by_addr addr id;
    id

(* Greatest static function entry <= pc; the entry function when pc
   precedes every known function. *)
let fn_of_pc t pc =
  let a = t.static_fns in
  let n = Array.length a in
  if n = 0 then 0
  else begin
    let lo = ref 0 and hi = ref (n - 1) and best = ref (snd a.(0)) in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let addr, id = a.(mid) in
      if addr <= pc then begin best := id; lo := mid + 1 end
      else hi := mid - 1
    done;
    !best
  end

let create ?(clock = fun () -> 0.) ?(sample_every = 65536) ~text_base ~info
    ~functions ~entry () =
  let n = Array.length info in
  let leader = Array.make (max n 1) false in
  let mark i = if i >= 0 && i < n then leader.(i) <- true in
  if n > 0 then leader.(0) <- true;
  mark ((entry - text_base) asr 2);
  List.iter (fun (addr, _) -> mark ((addr - text_base) asr 2)) functions;
  Array.iteri
    (fun i (k, tgt) ->
      if k = kind_branch then begin mark tgt; mark (i + 1) end
      else if k = kind_call then begin
        (* The word after a call is dead padding; the return point is
           call + 8.  Both start fresh blocks so neither gets charged
           to the caller's pre-call block. *)
        mark tgt; mark (i + 1); mark (i + 2)
      end
      else if k = kind_ret then mark (i + 1))
    info;
  let block_of = Array.make (max n 1) 0 in
  let nblocks = ref 0 in
  for i = 0 to n - 1 do
    if leader.(i) then incr nblocks;
    block_of.(i) <- !nblocks - 1
  done;
  let nb = max !nblocks 1 in
  let block_lo = Array.make nb 0 and block_hi = Array.make nb 0 in
  for i = 0 to n - 1 do
    let b = block_of.(i) in
    if leader.(i) then block_lo.(b) <- i;
    block_hi.(b) <- i
  done;
  let t =
    {
      text_base;
      info;
      exec = Array.make (max n 1) 0;
      taken = Array.make (max n 1) 0;
      block_of;
      block_lo;
      block_hi;
      fn_name = [||];
      nfns = 0;
      fn_by_addr = Hashtbl.create 16;
      static_fns = [||];
      fn_calls = [||];
      fn_excl_i = [||];
      fn_excl_c = [||];
      fn_incl_i = [||];
      fn_incl_c = [||];
      fn_depth = [||];
      st_fn = Array.make 64 0;
      st_entry_i = Array.make 64 0;
      st_entry_c = Array.make 64 0;
      st_node = Array.make 64 (mk_node 0 None);
      depth = 0;
      root = mk_node 0 None;
      cur = mk_node 0 None;
      last_i = 0;
      last_c = 0;
      ntransfers = 0;
      last_call_pc = -1;
      last_call_fn = 0;
      clock;
      sample_every = max 1 sample_every;
      next_sample = max 1 sample_every;
      samples = [];
    }
  in
  (* Register static functions sorted by entry address so ids are
     deterministic, then seed the stack with the entry function. *)
  let fns = List.sort_uniq compare functions in
  let statics =
    List.map (fun (addr, name) -> (addr, register_fn t addr name)) fns
  in
  let t = { t with static_fns = Array.of_list statics } in
  let entry_fn = fn_of_pc t entry in
  let root = mk_node entry_fn None in
  let t = { t with root; cur = root } in
  t.st_fn.(0) <- entry_fn;
  t.st_node.(0) <- root;
  t.depth <- 1;
  t.fn_calls.(entry_fn) <- 1;
  t.fn_depth.(entry_fn) <- 1;
  t

(* ---------- shadow stack ---------- *)

let flush t ~instrs ~cycles =
  let di = instrs - t.last_i and dc = cycles - t.last_c in
  if di <> 0 || dc <> 0 then begin
    let fn = t.st_fn.(t.depth - 1) in
    t.fn_excl_i.(fn) <- t.fn_excl_i.(fn) + di;
    t.fn_excl_c.(fn) <- t.fn_excl_c.(fn) + dc;
    t.cur.n_self <- t.cur.n_self + di;
    t.last_i <- instrs;
    t.last_c <- cycles
  end

let sample t ~instrs ~cycles =
  if instrs >= t.next_sample then begin
    t.samples <- (t.clock (), instrs, cycles, t.depth) :: t.samples;
    t.next_sample <- instrs + t.sample_every
  end

let transfer t ~kind ~pc ~instrs ~cycles =
  flush t ~instrs ~cycles;
  t.ntransfers <- t.ntransfers + 1;
  if kind = kind_call then begin
    let fn =
      if pc = t.last_call_pc then t.last_call_fn
      else begin
        let id =
          match Hashtbl.find t.fn_by_addr pc with
          | id -> id
          | exception Not_found -> register_fn t pc (Printf.sprintf "0x%x" pc)
        in
        t.last_call_pc <- pc;
        t.last_call_fn <- id;
        id
      end
    in
    let d = t.depth in
    t.st_fn <- grow t.st_fn (d + 1) 0;
    t.st_entry_i <- grow t.st_entry_i (d + 1) 0;
    t.st_entry_c <- grow t.st_entry_c (d + 1) 0;
    t.st_node <- grow t.st_node (d + 1) t.root;
    t.st_fn.(d) <- fn;
    t.st_entry_i.(d) <- instrs;
    t.st_entry_c.(d) <- cycles;
    let node =
      match t.cur.n_cache with
      | Some nd when nd.n_fn = fn -> nd
      | _ ->
        let nd =
          match Hashtbl.find t.cur.n_children fn with
          | nd -> nd
          | exception Not_found ->
            let nd = mk_node fn (Some t.cur) in
            Hashtbl.add t.cur.n_children fn nd;
            nd
        in
        t.cur.n_cache <- Some nd;
        nd
    in
    t.st_node.(d) <- node;
    t.cur <- node;
    t.depth <- d + 1;
    t.fn_calls.(fn) <- t.fn_calls.(fn) + 1;
    t.fn_depth.(fn) <- t.fn_depth.(fn) + 1
  end
  else if kind = kind_ret && t.depth > 1 then begin
    let d = t.depth - 1 in
    let fn = t.st_fn.(d) in
    t.depth <- d;
    t.fn_depth.(fn) <- t.fn_depth.(fn) - 1;
    if t.fn_depth.(fn) = 0 then begin
      (* Outermost activation ends: charge the inclusive interval.
         Recursive re-entries inside it are covered by this span. *)
      t.fn_incl_i.(fn) <- t.fn_incl_i.(fn) + (instrs - t.st_entry_i.(d));
      t.fn_incl_c.(fn) <- t.fn_incl_c.(fn) + (cycles - t.st_entry_c.(d))
    end;
    t.cur <-
      (match t.st_node.(d).n_parent with Some p -> p | None -> t.root)
  end;
  sample t ~instrs ~cycles

(* ---------- reporting ---------- *)

type fn_report = {
  fr_name : string;
  fr_calls : int;
  fr_excl_instrs : int;
  fr_excl_cycles : int;
  fr_incl_instrs : int;
  fr_incl_cycles : int;
}

type block = {
  bb_id : int;
  bb_lo : int;
  bb_hi : int;
  bb_fn : string;
  bb_execs : int;
  bb_instrs : int;
  bb_check_execs : int;
  bb_check_sites : int;
}

type edge = {
  ed_from : int;
  ed_to : int;
  ed_kind : string;
  ed_count : int;
}

type backedge = {
  be_from_pc : int;
  be_to_pc : int;
  be_count : int;
  be_blocks : int list;
  be_check_execs : int;
}

type report = {
  p_schema : string;
  p_total_instrs : int;
  p_total_cycles : int;
  p_functions : fn_report list;
  p_blocks : block list;
  p_edges : edge list;
  p_backedges : backedge list;
  p_folded : (string * int) list;
}

let addr_of t i = t.text_base + (i lsl 2)

let folded_of_tree t =
  let acc = ref [] in
  let rec walk node path =
    let path =
      if path = "" then t.fn_name.(node.n_fn)
      else path ^ ";" ^ t.fn_name.(node.n_fn)
    in
    if node.n_self > 0 then acc := (path, node.n_self) :: !acc;
    let kids = Hashtbl.fold (fun _ nd l -> nd :: l) node.n_children [] in
    let kids =
      List.sort (fun a b -> compare t.fn_name.(a.n_fn) t.fn_name.(b.n_fn)) kids
    in
    List.iter (fun k -> walk k path) kids
  in
  walk t.root "";
  List.sort compare !acc

let report t ?(site_checks = []) ~instrs ~cycles () =
  flush t ~instrs ~cycles;
  let n = Array.length t.info in
  let nb = Array.length t.block_lo in
  (* Inclusive totals for still-live frames: first (outermost)
     activation of each function on the stack, without unwinding. *)
  let incl_i = Array.sub t.fn_incl_i 0 t.nfns in
  let incl_c = Array.sub t.fn_incl_c 0 t.nfns in
  let seen = Hashtbl.create 16 in
  for d = 0 to t.depth - 1 do
    let fn = t.st_fn.(d) in
    if not (Hashtbl.mem seen fn) then begin
      Hashtbl.add seen fn ();
      incl_i.(fn) <- incl_i.(fn) + (instrs - t.st_entry_i.(d));
      incl_c.(fn) <- incl_c.(fn) + (cycles - t.st_entry_c.(d))
    end
  done;
  let functions =
    List.init t.nfns (fun id ->
        {
          fr_name = t.fn_name.(id);
          fr_calls = t.fn_calls.(id);
          fr_excl_instrs = t.fn_excl_i.(id);
          fr_excl_cycles = t.fn_excl_c.(id);
          fr_incl_instrs = incl_i.(id);
          fr_incl_cycles = incl_c.(id);
        })
    |> List.filter (fun f -> f.fr_calls > 0 || f.fr_excl_instrs > 0)
    |> List.sort (fun a b ->
           match compare b.fr_excl_instrs a.fr_excl_instrs with
           | 0 -> compare a.fr_name b.fr_name
           | c -> c)
  in
  (* Per-block MRS check density from the per-site exec join. *)
  let check_e = Array.make nb 0 and check_s = Array.make nb 0 in
  List.iter
    (fun (pc, execs) ->
      let i = (pc - t.text_base) asr 2 in
      if i >= 0 && i < n then begin
        let b = t.block_of.(i) in
        check_e.(b) <- check_e.(b) + execs;
        check_s.(b) <- check_s.(b) + 1
      end)
    site_checks;
  let block_instrs = Array.make nb 0 in
  for i = 0 to n - 1 do
    let b = t.block_of.(i) in
    block_instrs.(b) <- block_instrs.(b) + exec_count t i
  done;
  let blocks = ref [] in
  for b = nb - 1 downto 0 do
    if n > 0 && exec_count t t.block_lo.(b) > 0 then
      blocks :=
        {
          bb_id = b;
          bb_lo = addr_of t t.block_lo.(b);
          bb_hi = addr_of t t.block_hi.(b);
          bb_fn = t.fn_name.(fn_of_pc t (addr_of t t.block_lo.(b)));
          bb_execs = exec_count t t.block_lo.(b);
          bb_instrs = block_instrs.(b);
          bb_check_execs = check_e.(b);
          bb_check_sites = check_s.(b);
        }
        :: !blocks
  done;
  (* Edges read off each executed block's terminator. *)
  let edges = ref [] in
  let add_edge from_b to_i kind count =
    if count > 0 && to_i >= 0 && to_i < n then
      edges :=
        { ed_from = from_b; ed_to = t.block_of.(to_i); ed_kind = kind;
          ed_count = count }
        :: !edges
  in
  for b = 0 to nb - 1 do
    if n > 0 then begin
      let i = t.block_hi.(b) in
      let execs = exec_count t i in
      if execs > 0 then begin
        let k, tgt = t.info.(i) in
        if k = kind_branch then begin
          add_edge b tgt "taken" t.taken.(i);
          add_edge b (i + 1) "fall" (execs - t.taken.(i))
        end
        else if k = kind_call then add_edge b tgt "call" execs
        else if k <> kind_ret then add_edge b (i + 1) "fall" execs
      end
    end
  done;
  let edges =
    List.sort
      (fun a b ->
        compare (a.ed_from, a.ed_to, a.ed_kind) (b.ed_from, b.ed_to, b.ed_kind))
      !edges
  in
  (* Hottest back-edges: taken edges whose target precedes the branch;
     the loop body is the address range [target, branch]. *)
  let backedges = ref [] in
  for i = 0 to n - 1 do
    let k, tgt = t.info.(i) in
    if k = kind_branch && tgt >= 0 && tgt <= i && t.taken.(i) > 0 then begin
      let body = ref [] and ce = ref 0 in
      for b = t.block_of.(i) downto t.block_of.(tgt) do
        body := b :: !body;
        ce := !ce + check_e.(b)
      done;
      backedges :=
        {
          be_from_pc = addr_of t i;
          be_to_pc = addr_of t tgt;
          be_count = t.taken.(i);
          be_blocks = !body;
          be_check_execs = !ce;
        }
        :: !backedges
    end
  done;
  let backedges =
    List.sort
      (fun a b ->
        match compare b.be_count a.be_count with
        | 0 -> compare a.be_from_pc b.be_from_pc
        | c -> c)
      !backedges
  in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: tl -> x :: take (k - 1) tl
  in
  {
    p_schema = schema_version;
    p_total_instrs = instrs;
    p_total_cycles = cycles;
    p_functions = functions;
    p_blocks = !blocks;
    p_edges = edges;
    p_backedges = take 10 backedges;
    p_folded = folded_of_tree t;
  }

let folded_to_string r =
  let buf = Buffer.create 256 in
  List.iter
    (fun (path, count) ->
      if count > 0 then Buffer.add_string buf (Printf.sprintf "%s %d\n" path count))
    r.p_folded;
  Buffer.contents buf

let merge_folded profiles =
  let tbl = Hashtbl.create 64 in
  List.iter
    (List.iter (fun (path, count) ->
         Hashtbl.replace tbl path
           (count + Option.value ~default:0 (Hashtbl.find_opt tbl path))))
    profiles;
  Hashtbl.fold (fun path count acc -> (path, count) :: acc) tbl []
  |> List.sort compare

(* ---------- JSON ---------- *)

let to_json r =
  let open Export in
  Obj
    [
      ("schema", Str r.p_schema);
      ("total_instrs", Int r.p_total_instrs);
      ("total_cycles", Int r.p_total_cycles);
      ( "functions",
        List
          (List.map
             (fun f ->
               Obj
                 [
                   ("name", Str f.fr_name);
                   ("calls", Int f.fr_calls);
                   ("excl_instrs", Int f.fr_excl_instrs);
                   ("excl_cycles", Int f.fr_excl_cycles);
                   ("incl_instrs", Int f.fr_incl_instrs);
                   ("incl_cycles", Int f.fr_incl_cycles);
                 ])
             r.p_functions) );
      ( "blocks",
        List
          (List.map
             (fun b ->
               Obj
                 [
                   ("id", Int b.bb_id);
                   ("lo", Int b.bb_lo);
                   ("hi", Int b.bb_hi);
                   ("fn", Str b.bb_fn);
                   ("execs", Int b.bb_execs);
                   ("instrs", Int b.bb_instrs);
                   ("check_execs", Int b.bb_check_execs);
                   ("check_sites", Int b.bb_check_sites);
                 ])
             r.p_blocks) );
      ( "edges",
        List
          (List.map
             (fun e ->
               Obj
                 [
                   ("from", Int e.ed_from);
                   ("to", Int e.ed_to);
                   ("kind", Str e.ed_kind);
                   ("count", Int e.ed_count);
                 ])
             r.p_edges) );
      ( "hottest_backedges",
        List
          (List.map
             (fun be ->
               Obj
                 [
                   ("from_pc", Int be.be_from_pc);
                   ("to_pc", Int be.be_to_pc);
                   ("count", Int be.be_count);
                   ("blocks", List (List.map (fun b -> Int b) be.be_blocks));
                   ("check_execs", Int be.be_check_execs);
                 ])
             r.p_backedges) );
      ( "folded",
        Obj (List.map (fun (path, count) -> (path, Int count)) r.p_folded) );
    ]

let to_json_string ?indent r = Export.json_to_string ?indent (to_json r)

let chrome_counters t =
  let samples = List.rev t.samples in
  List.concat_map
    (fun (ts, instrs, cycles, depth) ->
      [
        ("sim_instrs", ts, instrs);
        ("sim_cycles", ts, cycles);
        ("call_depth", ts, depth);
      ])
    samples
