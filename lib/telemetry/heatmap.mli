(** Address-space heatmap: per-page write/check/hit density over the
    simulated memory.

    Pages materialize on first touch (sparse, like the memory they
    mirror) and carry three counters — store executions, instrumented
    check executions, monitored-region hits — plus a [monitored] mark
    painted from the MRS region set.  The three renders answer "which
    pages are hot and which monitored regions never fire": an aligned
    text table, a [dbp-heatmap/1] JSON document, and a plain-text PPM
    image (one pixel per touched page, red = writes, green = checks,
    blue = hits).  All renders walk pages in sorted index order, so
    they are byte-deterministic.

    The page size is injected as [page_bits] (the session layer passes
    the machine's [Memory.page_bits]); this module takes no dependency
    on the machine layer. *)

type t

val create : page_bits:int -> unit -> t
(** @raise Invalid_argument when [page_bits] is outside [1, 30]. *)

val page_bits : t -> int
val page_bytes : t -> int

val record_write : t -> int -> unit
(** Count one store landing at the address. *)

val record_check : t -> int -> unit
(** Count one instrumented check covering the address. *)

val record_hit : t -> int -> unit
(** Count one monitored-region hit at the address. *)

val mark_monitored : t -> lo:int -> hi:int -> unit
(** Paint every page overlapping [\[lo, hi\]] as monitored (inclusive
    bounds; no-op when [hi < lo]). *)

val n_pages : t -> int
(** Touched (materialized) pages. *)

val total_writes : t -> int
(** Σ per-page writes — equals the registry's [store_execs] when every
    store is recorded (the conservation property the tests check). *)

val total_checks : t -> int
val total_hits : t -> int

val never_fired : t -> int list
(** Monitored pages with zero hits, in ascending page order. *)

val schema_version : string
(** ["dbp-heatmap/1"]. *)

val to_json : t -> Export.json
val to_json_string : t -> string

val to_text : t -> string
(** Aligned per-page table plus the never-fired monitored pages. *)

val to_ppm : t -> string
(** Plain-text PPM (P3) raster over touched pages in sorted order,
    channels scaled linearly to the per-channel maximum. *)
