(* Span tracer.  The open-span stack enforces bracketing; completed
   spans accumulate newest-first and are reversed on read. *)

type span = {
  sp_name : string;
  sp_cat : string;
  sp_tid : int;
  sp_depth : int;
  sp_start : float;
  sp_dur : float;
  sp_args : (string * string) list;
}

type open_span = {
  o_name : string;
  o_cat : string;
  o_args : (string * string) list;
  o_start : float;
}

type t = {
  on : unit -> bool;
  clock : unit -> float;
  t_tid : int;
  mutable stack : open_span list;
  mutable done_ : span list;  (* newest first *)
}

let next_tid = Atomic.make 0

let create ?(enabled = fun () -> true) ?(clock = Sys.time) ?tid () =
  let t_tid =
    match tid with Some i -> i | None -> Atomic.fetch_and_add next_tid 1
  in
  { on = enabled; clock; t_tid; stack = []; done_ = [] }

let enabled t = t.on ()
let tid t = t.t_tid

let begin_span t ?(cat = "pipeline") ?(args = []) name =
  if t.on () then
    t.stack <-
      { o_name = name; o_cat = cat; o_args = args; o_start = t.clock () }
      :: t.stack

let end_span t =
  match t.stack with
  | [] -> ()
  | o :: rest ->
    let now = t.clock () in
    t.stack <- rest;
    t.done_ <-
      {
        sp_name = o.o_name;
        sp_cat = o.o_cat;
        sp_tid = t.t_tid;
        sp_depth = List.length rest;
        sp_start = o.o_start;
        sp_dur = Float.max 0. (now -. o.o_start);
        sp_args = o.o_args;
      }
      :: t.done_

let with_span t ?cat ?args name f =
  if not (t.on ()) then f ()
  else begin
    begin_span t ?cat ?args name;
    Fun.protect ~finally:(fun () -> end_span t) f
  end

let spans t = List.rev t.done_

let span_set traces =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun t ->
      List.iter
        (fun s ->
          Hashtbl.replace tbl s.sp_name
            (1 + Option.value ~default:0 (Hashtbl.find_opt tbl s.sp_name)))
        (spans t))
    traces;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Chrome trace_event export: complete events ("ph":"X"), integer
   microseconds relative to the earliest span start.  Floor-rounding
   both endpoints through the same monotone map preserves nesting. *)
let to_chrome_json ?(pid = 1) ?(counters = []) traces =
  let all = List.concat_map spans traces in
  let t0 =
    List.fold_left (fun acc s -> Float.min acc s.sp_start) infinity all
  in
  let t0 =
    List.fold_left (fun acc (_, ts, _) -> Float.min acc ts) t0 counters
  in
  let us x = int_of_float (Float.floor ((x -. t0) *. 1e6)) in
  let event s =
    let ts = us s.sp_start in
    let te = us (s.sp_start +. s.sp_dur) in
    Export.Obj
      ([
         ("name", Export.Str s.sp_name);
         ("cat", Export.Str s.sp_cat);
         ("ph", Export.Str "X");
         ("ts", Export.Int ts);
         ("dur", Export.Int (te - ts));
         ("pid", Export.Int pid);
         ("tid", Export.Int s.sp_tid);
       ]
      @
      if s.sp_args = [] then []
      else
        [
          ( "args",
            Export.Obj
              (List.map (fun (k, v) -> (k, Export.Str v)) s.sp_args) );
        ])
  in
  (* Emit parents before children at equal timestamps so viewers that
     resolve ties by order nest correctly: sort by (tid, start, -depth). *)
  let ordered =
    List.sort
      (fun a b ->
        match compare a.sp_tid b.sp_tid with
        | 0 -> (
          match compare a.sp_start b.sp_start with
          | 0 -> compare a.sp_depth b.sp_depth
          | c -> c)
        | c -> c)
      all
  in
  (* Counter samples ("ph":"C") ride on a reserved tid after the spans;
     stable (name, ts) order keeps the export deterministic. *)
  let counter_events =
    List.stable_sort
      (fun (na, ta, _) (nb, tb, _) ->
        match String.compare na nb with 0 -> compare ta tb | c -> c)
      counters
    |> List.map (fun (name, ts, value) ->
           Export.Obj
             [
               ("name", Export.Str name);
               ("cat", Export.Str "profile");
               ("ph", Export.Str "C");
               ("ts", Export.Int (us ts));
               ("pid", Export.Int pid);
               ("tid", Export.Int 0);
               ("args", Export.Obj [ ("value", Export.Int value) ]);
             ])
  in
  Export.List (List.map event ordered @ counter_events)

let to_chrome_string ?pid ?counters traces =
  Export.json_to_string ~indent:1 (to_chrome_json ?pid ?counters traces)
