(** Phase-span tracer with Chrome [trace_event] export.

    Records begin/end spans for the pipeline phases
    (compile → lift → CFG/SSA → bounds → plan → instrument → run) and
    for per-domain benchmark work, then renders them as a Chrome
    trace-event JSON array — the format Perfetto and [chrome://tracing]
    load directly.

    Spans are strictly stack-bracketed per tracer ({!begin_span} /
    {!end_span} or the exceptions-safe {!with_span}), which makes
    well-nesting a structural invariant rather than a property to
    check.  One tracer per domain; {!to_chrome_json} merges several
    tracers into a single trace with one [tid] each.

    The clock is injected ([create ?clock]) so this library takes no
    Unix dependency; callers pass [Unix.gettimeofday] when they have
    it.  Timestamps are exported in integer microseconds relative to
    the earliest span, floor-rounded — a monotone mapping, so nesting
    survives quantization. *)

type span = {
  sp_name : string;
  sp_cat : string;  (** Chrome event category, e.g. ["pipeline"] *)
  sp_tid : int;
  sp_depth : int;  (** nesting depth at emission, 0 = top level *)
  sp_start : float;  (** clock value at {!begin_span} *)
  sp_dur : float;  (** seconds; always [>= 0] *)
  sp_args : (string * string) list;
}

type t

val create : ?enabled:(unit -> bool) -> ?clock:(unit -> float) -> ?tid:int ->
  unit -> t
(** A fresh tracer.  [enabled] gates every record (pass the telemetry
    registry's flag); [clock] defaults to [Sys.time]; [tid] defaults to
    a fresh small integer (atomic counter), distinct per tracer. *)

val enabled : t -> bool
val tid : t -> int

val begin_span : t -> ?cat:string -> ?args:(string * string) list -> string ->
  unit
(** Open a span.  Disabled tracers ignore the call (and the matching
    {!end_span}). *)

val end_span : t -> unit
(** Close the innermost open span and record it.  Unbalanced calls are
    ignored. *)

val with_span : t -> ?cat:string -> ?args:(string * string) list -> string ->
  (unit -> 'a) -> 'a
(** [with_span t name f] brackets [f] in a span; the span is recorded
    even when [f] raises. *)

val spans : t -> span list
(** Completed spans in completion order (children before parents). *)

val span_set : t list -> (string * int) list
(** Sorted [(name, count)] multiset of completed span names across
    tracers — the scheduling-independent shape used by the [-j1] vs
    [-j4] parity check. *)

val to_chrome_json :
  ?pid:int -> ?counters:(string * float * int) list -> t list -> Export.json
(** One Chrome trace: a JSON array of complete ([ph = "X"]) events,
    [ts]/[dur] in integer microseconds relative to the earliest span
    across all tracers {e and} counter samples.  [pid] defaults to [1].

    [counters] are [(track name, clock value, value)] samples —
    e.g. {!Profile.chrome_counters} — rendered as Chrome counter
    ([ph = "C"]) events on [tid 0] after the spans, sorted by
    [(name, ts)]; they share the span rebasing so [ts >= 0] holds
    across the whole trace. *)

val to_chrome_string :
  ?pid:int -> ?counters:(string * float * int) list -> t list -> string
