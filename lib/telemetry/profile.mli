(** Hot-path execution profiler for the simulated machine.

    Discovers basic blocks from a machine-neutral description of the
    text segment (one [(kind, target)] pair per instruction), owns the
    direct-indexed per-instruction execution and branch-taken counter
    arrays that the interpreter bumps inline, and maintains a shadow
    call stack fed by the interpreter's call/return transfer events —
    from which it derives per-block and per-edge counts, per-function
    inclusive/exclusive instruction and cycle totals, a folded-stack
    profile (flamegraph.pl / speedscope loadable), a versioned
    [dbp-profile/1] JSON report (the superblock-candidate report of
    ROADMAP item 1), and sampled Perfetto counter tracks.

    This module is deliberately independent of the machine library
    (which depends on this one): the interpreter pays for profiling
    only through the two counter arrays and the transfer callback, and
    everything symbolic (function names, block structure) lives here.

    Counter-array cost contract: with the profiler detached the
    interpreter pays one boolean test per step; attached, one array
    increment per step plus one compare-and-increment per executed
    branch, with the (rare) call/return transfers going through a
    closure. *)

(** {1 Instruction kinds}

    The per-instruction classification the interpreter derives from
    the decoded text.  [kind_branch] is any conditional or
    unconditional pc-relative branch (taken-ness observed by comparing
    the post-step pc against the fall-through); [kind_call] is a
    direct call or an indirect [jmpl] that links the return address;
    [kind_ret] is a non-linking [jmpl] (function return). *)

(** [kind_plain = 0] straight-line instruction. *)
val kind_plain : int

(** [kind_branch = 1] conditional/unconditional branch. *)
val kind_branch : int

(** [kind_call = 2] call (direct, or address-linking jmpl). *)
val kind_call : int

(** [kind_ret = 3] return (non-linking jmpl). *)
val kind_ret : int

type t

val create :
  ?clock:(unit -> float) ->
  ?sample_every:int ->
  text_base:int ->
  info:(int * int) array ->
  functions:(int * string) list ->
  entry:int ->
  unit ->
  t
(** [create ~text_base ~info ~functions ~entry ()] builds a profiler
    for a text segment of [Array.length info] instructions, where
    [info.(i)] is the [(kind, target index)] classification of the
    instruction at [text_base + 4i] ([-1] when there is no static
    target).  Block leaders are computed here: the entry point, every
    static branch/call target, every function entry, the instruction
    after a branch or return, and — because a call returns to
    [call address + 8] (the padding-word convention) — both words
    following a call.

    [functions] maps entry addresses to names; call targets outside it
    are registered lazily under their hex address.  [sample_every]
    (default 65536) is the instruction interval between Perfetto
    counter samples taken at transfer events; [clock] (default: a
    constant) timestamps them. *)

val exec_array : t -> int array
(** The per-instruction execution counter array, owned by the
    interpreter once installed.  Slots are {e packed}: the interpreter
    seeds each slot's low two bits with the instruction's control
    classification ([kind_*]) and bumps the count stored above them
    (increment step 4), so its step path reads one word for both the
    count and the branch-vs-transfer decision.  Decode counts with
    {!exec_count}. *)

val exec_count : t -> int -> int
(** [exec_count t i] is the number of times instruction slot [i]
    executed (the packed [exec_array] slot shifted past the kind
    bits). *)

val profiled_instrs : t -> int
(** Sum of {!exec_count} over all slots — the total number of
    instructions the profiler observed (equals the machine's retired
    count unless profiling was paused, e.g. during replay queries). *)

val taken_array : t -> int array
(** The per-instruction branch-taken counter array (a branch that
    leaves pc at its fall-through is counted as not taken; a branch
    whose target {e is} its fall-through is indistinguishable and
    counts as not taken, which merges two identical edges). *)

val transfer : t -> kind:int -> pc:int -> instrs:int -> cycles:int -> unit
(** Control-transfer event from the interpreter, fired {e after} the
    call/return instruction executed: [pc] is the destination (callee
    entry for a call, return point for a return), [instrs]/[cycles]
    the machine totals.  Maintains the shadow stack, attributes the
    instructions and cycles since the previous transfer to the
    function that executed them, and takes counter samples. *)

val transfers : t -> int
(** Total transfer events processed (call + return). *)

(** {1 Reports} *)

val schema_version : string
(** ["dbp-profile/1"] *)

type fn_report = {
  fr_name : string;
  fr_calls : int;  (** invocations (the entry function counts one) *)
  fr_excl_instrs : int;  (** instructions executed in the function itself *)
  fr_excl_cycles : int;
  fr_incl_instrs : int;  (** including callees; recursion counted once *)
  fr_incl_cycles : int;
}

type block = {
  bb_id : int;
  bb_lo : int;  (** address of the leader *)
  bb_hi : int;  (** address of the last instruction (inclusive) *)
  bb_fn : string;  (** enclosing function (greatest entry <= leader) *)
  bb_execs : int;  (** times the leader executed *)
  bb_instrs : int;  (** dynamic instructions executed inside the block *)
  bb_check_execs : int;
      (** MRS check-site executions attributed to this block (joined
          from the telemetry per-site exec arrays) *)
  bb_check_sites : int;  (** static check sites inside the block *)
}

type edge = {
  ed_from : int;  (** source block id *)
  ed_to : int;  (** destination block id *)
  ed_kind : string;  (** ["taken"], ["fall"] or ["call"] *)
  ed_count : int;
}

type backedge = {
  be_from_pc : int;  (** branch address *)
  be_to_pc : int;  (** target address (<= branch address) *)
  be_count : int;  (** times taken *)
  be_blocks : int list;  (** loop body: block ids in [target, branch] *)
  be_check_execs : int;  (** check executions inside the body *)
}

type report = {
  p_schema : string;
  p_total_instrs : int;
  p_total_cycles : int;
  p_functions : fn_report list;  (** hottest (exclusive instrs) first *)
  p_blocks : block list;  (** in address order, executed blocks only *)
  p_edges : edge list;  (** in (from, to, kind) order, non-zero only *)
  p_backedges : backedge list;  (** hottest first, top 10 *)
  p_folded : (string * int) list;
      (** folded call stacks: ["a;b;c", exclusive instrs], sorted by
          path — the flamegraph.pl / speedscope input *)
}

val report :
  t -> ?site_checks:(int * int) list -> instrs:int -> cycles:int -> unit ->
  report
(** Freeze a report at machine totals [instrs]/[cycles].
    [site_checks] joins MRS check density into the blocks: a list of
    [(site pc, dynamic check executions)].  Idempotent — the live
    shadow stack is read, not unwound. *)

val folded_to_string : report -> string
(** One ["path count\n"] line per folded stack with a non-zero
    exclusive count. *)

val merge_folded : (string * int) list list -> (string * int) list
(** Commutative multiset sum of folded profiles, sorted by path — the
    benchmark harness's cross-domain merge. *)

val to_json : report -> Export.json
val to_json_string : ?indent:int -> report -> string

val chrome_counters : t -> (string * float * int) list
(** Sampled Perfetto counter tracks, in sample order:
    [("sim_instrs" | "sim_cycles" | "call_depth", clock seconds,
    value)] — feed to {!Trace.to_chrome_json}'s [?counters]. *)
